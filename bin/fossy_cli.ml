(* FOSSY synthesis driver: SystemC-subset IDWT cores -> VHDL +
   synthesis report + EDK platform files. *)

open Cmdliner

let core_of_name = function
  | "idwt53" -> Ok Models.Idwt_cores.idwt53_systemc
  | "idwt97" -> Ok Models.Idwt_cores.idwt97_systemc
  | other -> Error (Printf.sprintf "unknown core %S (idwt53 | idwt97)" other)

let reference_of_name = function
  | "idwt53" -> Models.Idwt_cores.idwt53_reference
  | "idwt97" -> Models.Idwt_cores.idwt97_reference
  | _ -> assert false

let write_file path data =
  let oc = open_out path in
  output_string oc data;
  close_out oc;
  Printf.printf "wrote %s (%d lines)\n" path
    (List.length
       (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' data)))

let synth_cmd =
  let run core_name out_dir show_systemc with_reference =
    match core_of_name core_name with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok hir -> (
      match Fossy.Synthesis.synthesise hir with
      | Error es ->
        List.iter prerr_endline es;
        exit 1
      | Ok r ->
        List.iter prerr_endline r.Fossy.Synthesis.warnings;
        if show_systemc then print_string (Fossy.Hir_pp.emit hir);
        (match out_dir with
        | Some dir ->
          write_file (Filename.concat dir (core_name ^ ".vhd")) r.Fossy.Synthesis.vhdl_text;
          write_file
            (Filename.concat dir (core_name ^ "_behavioural.cpp"))
            (Fossy.Hir_pp.emit hir);
          if with_reference then
            write_file
              (Filename.concat dir (core_name ^ "_ref.vhd"))
              (Rtl.Vhdl_pp.emit (reference_of_name core_name))
        | None -> ());
        Printf.printf
          "%s: %d FSM states, SystemC %d LoC -> VHDL %d LoC\n\
           area: FF=%d LUT=%d slices=%d gates=%d\n\
           estimated frequency: %.1f MHz%s\n"
          r.Fossy.Synthesis.module_name
          (Fossy.Fsm.state_count r.Fossy.Synthesis.fsm)
          r.Fossy.Synthesis.systemc_loc r.Fossy.Synthesis.vhdl_loc
          r.Fossy.Synthesis.area.Rtl.Area.flip_flops
          r.Fossy.Synthesis.area.Rtl.Area.luts r.Fossy.Synthesis.area.Rtl.Area.slices
          r.Fossy.Synthesis.area.Rtl.Area.gates r.Fossy.Synthesis.fmax_mhz
          (if Rtl.Area.fits_lx25 r.Fossy.Synthesis.area then " (fits Virtex-4 LX25)"
           else ""))
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesise an IDWT core to VHDL.")
    Term.(
      const run
      $ Arg.(
          required & pos 0 (some string) None & info [] ~docv:"CORE" ~doc:"idwt53 or idwt97.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Write VHDL and behavioural model here.")
      $ Arg.(value & flag & info [ "systemc" ] ~doc:"Print the behavioural model.")
      $ Arg.(
          value & flag
          & info [ "reference" ] ~doc:"Also write the hand-crafted reference VHDL."))

let testbench_cmd =
  let run core_name out_dir =
    match core_of_name core_name with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok hir ->
      (* A short line of coefficients exercises the load/compute/drain
         phases; the reference stream is the behavioural model's. *)
      let stimulus =
        [
          ("start", [ 1 ]);
          ("data_in", List.init 64 (fun i -> ((i * 37) mod 211) - 105));
        ]
      in
      (match
         Fossy.Testbench.generate_for_module hir ~stimulus ~max_outputs:65 ()
       with
      | Error es ->
        List.iter prerr_endline es;
        exit 1
      | Ok tb -> (
        match out_dir with
        | Some dir -> write_file (Filename.concat dir (core_name ^ "_tb.vhd")) tb
        | None -> print_string tb))
  in
  Cmd.v
    (Cmd.info "testbench"
       ~doc:"Generate a self-checking VHDL testbench for an IDWT core.")
    Term.(
      const run
      $ Arg.(
          required & pos 0 (some string) None & info [] ~docv:"CORE" ~doc:"idwt53 or idwt97.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Write the testbench here."))

let json_of_diag (d : Analysis.Diagnostic.t) =
  Telemetry.Json.Obj
    [
      ("code", Telemetry.Json.Str d.Analysis.Diagnostic.code);
      ( "severity",
        Telemetry.Json.Str
          (Analysis.Diagnostic.severity_label d.Analysis.Diagnostic.severity) );
      ("path", Telemetry.Json.Str d.Analysis.Diagnostic.path);
      ("message", Telemetry.Json.Str d.Analysis.Diagnostic.message);
    ]

let lint_cmd =
  let run with_models json =
    let cores =
      [
        ("idwt53", Models.Idwt_cores.idwt53_systemc);
        ("idwt97", Models.Idwt_cores.idwt97_systemc);
      ]
    in
    let diagnostics = ref [] in
    let collect ds = diagnostics := !diagnostics @ ds in
    (* Behavioural models and their extracted FSMs. *)
    List.iter (fun (_, hir) -> collect (Analysis.Lint.lint_module hir)) cores;
    (* Generated VHDL plus the hand-crafted Table 2 references. *)
    List.iter
      (fun (_, hir) ->
        match Fossy.Synthesis.synthesise hir with
        | Ok r -> collect (Analysis.Lint.lint_design r.Fossy.Synthesis.vhdl)
        | Error _ -> ())
      cores;
    List.iter
      (fun d -> collect (Analysis.Lint.lint_design d))
      [ Models.Idwt_cores.idwt53_reference; Models.Idwt_cores.idwt97_reference ];
    (* Shared-Object wait-for graphs of every platform mapping. *)
    List.iter
      (fun (sw_tasks, idwt_p2p) ->
        collect
          (Analysis.Lint.lint_vta (Models.Vta_models.mapping ~sw_tasks ~idwt_p2p)))
      [ (1, false); (1, true); (4, false); (4, true) ];
    (* Optionally simulate all nine decoder variants with the kernels
       set to fault on same-delta conflicting writes. *)
    if with_models then
      List.iter
        (fun mode ->
          List.iter
            (fun version ->
              match Models.Experiment.run ~payload:false version mode with
              | (_ : Models.Outcome.t) -> ()
              | exception Sim.Kernel.Delta_race race ->
                collect [ Analysis.Concurrency.diag_of_race race ])
            Models.Experiment.all_versions)
        [ Jpeg2000.Codestream.Lossless; Jpeg2000.Codestream.Lossy ];
    let ds = List.sort_uniq Analysis.Diagnostic.compare !diagnostics in
    let errors = Analysis.Diagnostic.errors ds in
    if json then
      print_endline
        (Telemetry.Json.to_string
           (Telemetry.Json.Obj
              [
                ("findings", Telemetry.Json.List (List.map json_of_diag ds));
                ("count", Telemetry.Json.Int (List.length ds));
                ("errors", Telemetry.Json.Int (List.length errors));
              ]))
    else begin
      List.iter (fun d -> print_endline (Analysis.Diagnostic.render d)) ds;
      Printf.printf "lint: %d finding(s), %d error(s)\n" (List.length ds)
        (List.length errors)
    end;
    if errors <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the analysis-layer diagnostic suite over the IDWT cores (HIR, \
          FSM and generated VHDL), the reference designs and the VTA \
          mappings. Exits non-zero on error-severity findings.")
    Term.(
      const run
      $ Arg.(
          value & flag
          & info [ "models" ]
              ~doc:
                "Also simulate the nine decoder variants with delta-race \
                 checking enabled.")
      $ Arg.(
          value & flag
          & info [ "json" ]
              ~doc:
                "Emit the findings as a JSON document (code, severity, \
                 path, message) instead of rendered lines."))

let area_cmd =
  let run json check =
    let json_of_report (a : Rtl.Area.report) =
      Telemetry.Json.Obj
        [
          ("flip_flops", Telemetry.Json.Int a.Rtl.Area.flip_flops);
          ("luts", Telemetry.Json.Int a.Rtl.Area.luts);
          ("slices", Telemetry.Json.Int a.Rtl.Area.slices);
          ("gates", Telemetry.Json.Int a.Rtl.Area.gates);
        ]
    in
    let failures = ref [] in
    let rows =
      List.map
        (fun (name, hir) ->
          match Fossy.Synthesis.synthesise hir with
          | Error es ->
            List.iter prerr_endline es;
            exit 1
          | Ok r ->
            let reference =
              Fossy.Synthesis.analyse_reference (reference_of_name name)
            in
            if check then
              List.iter
                (fun (metric, pct) ->
                  failures :=
                    Printf.sprintf "%s: optimised %s regressed %.2f%%" name
                      metric pct
                    :: !failures)
                (Rtl.Area.regressions ~tolerance_pct:2.0
                   ~baseline:r.Fossy.Synthesis.unopt_area
                   r.Fossy.Synthesis.area);
            ( name,
              Telemetry.Json.Obj
                [
                  ("core", Telemetry.Json.Str name);
                  ("optimised", json_of_report r.Fossy.Synthesis.area);
                  ("unoptimised", json_of_report r.Fossy.Synthesis.unopt_area);
                  ("reference", json_of_report reference.Fossy.Synthesis.ref_area);
                  ( "fsm_states",
                    Telemetry.Json.Int
                      (Fossy.Fsm.state_count r.Fossy.Synthesis.fsm) );
                ],
              r ))
        [
          ("idwt53", Models.Idwt_cores.idwt53_systemc);
          ("idwt97", Models.Idwt_cores.idwt97_systemc);
        ]
    in
    if json then
      print_endline
        (Telemetry.Json.to_string
           (Telemetry.Json.Obj
              [
                ( "cores",
                  Telemetry.Json.List (List.map (fun (_, j, _) -> j) rows) );
              ]))
    else
      List.iter
        (fun (name, _, r) ->
          Printf.printf "%s: opt FF=%d LUT=%d | unopt FF=%d LUT=%d (%+.2f%% FF, %+.2f%% LUT)\n"
            name r.Fossy.Synthesis.area.Rtl.Area.flip_flops
            r.Fossy.Synthesis.area.Rtl.Area.luts
            r.Fossy.Synthesis.unopt_area.Rtl.Area.flip_flops
            r.Fossy.Synthesis.unopt_area.Rtl.Area.luts
            (Rtl.Area.delta_pct
               ~baseline:r.Fossy.Synthesis.unopt_area.Rtl.Area.flip_flops
               r.Fossy.Synthesis.area.Rtl.Area.flip_flops)
            (Rtl.Area.delta_pct
               ~baseline:r.Fossy.Synthesis.unopt_area.Rtl.Area.luts
               r.Fossy.Synthesis.area.Rtl.Area.luts))
        rows;
    match !failures with
    | [] -> ()
    | fs ->
      List.iter prerr_endline (List.rev fs);
      exit 1
  in
  Cmd.v
    (Cmd.info "area"
       ~doc:
         "Report optimised, unoptimised and reference LUT/FF figures for \
          the built-in cores. With --check, exit non-zero if the \
          value-analysis optimiser regresses LUT or FF beyond 2% of the \
          unoptimised baseline. CI diffs the --json output against the \
          committed AREA_baseline.json.")
    Term.(
      const run
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON document.")
      $ Arg.(
          value & flag
          & info [ "check" ]
              ~doc:"Gate: fail on optimised-vs-unoptimised regression."))

let table2_cmd =
  let run () = print_string (Models.Tables.table2 ()) in
  Cmd.v
    (Cmd.info "table2" ~doc:"Regenerate the Table 2 synthesis comparison.")
    Term.(const run $ const ())

let platgen_cmd =
  let run sw_tasks idwt_p2p out_dir =
    let vta = Models.Vta_models.mapping ~sw_tasks ~idwt_p2p in
    let mhs = Fossy.Platgen.mhs vta ~hw_cores:[ "idwt2d"; "idwt53"; "idwt97" ] in
    let mss = Fossy.Platgen.mss vta in
    match out_dir with
    | Some dir ->
      write_file (Filename.concat dir "system.mhs") mhs;
      write_file (Filename.concat dir "system.mss") mss
    | None ->
      print_string mhs;
      print_string mss
  in
  Cmd.v
    (Cmd.info "platgen" ~doc:"Generate the EDK platform files (MHS/MSS).")
    Term.(
      const run
      $ Arg.(value & opt int 4 & info [ "tasks" ] ~docv:"N" ~doc:"SW task count.")
      $ Arg.(value & flag & info [ "p2p" ] ~doc:"IDWT blocks on point-to-point channels.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Write files here instead of stdout."))

let swgen_cmd =
  let run sw_tasks mode out_dir =
    let mode =
      match mode with
      | "lossless" -> Jpeg2000.Codestream.Lossless
      | _ -> Jpeg2000.Codestream.Lossy
    in
    let words = Models.Profile.nominal_tile_words mode in
    List.iter
      (fun i ->
        let spec =
          {
            Fossy.Sw_codegen.task_name = Printf.sprintf "decoder%d" i;
            processor = Printf.sprintf "microblaze%d" i;
            shared_objects =
              [
                ( "hwsw_so",
                  [
                    { Fossy.Sw_codegen.stub_name = "put_pending";
                      args_words = words + 3; ret_words = 3 };
                    { Fossy.Sw_codegen.stub_name = "take_ready";
                      args_words = 3; ret_words = words + 3 };
                  ] );
              ];
            body_include = Printf.sprintf "decoder%d_main.h" i;
          }
        in
        let code = Fossy.Sw_codegen.emit_c spec in
        match out_dir with
        | Some dir ->
          write_file (Filename.concat dir (Printf.sprintf "decoder%d.c" i)) code
        | None -> print_string code)
      (List.init sw_tasks (fun i -> i))
  in
  Cmd.v
    (Cmd.info "swgen"
       ~doc:
         "Generate the C RMI stubs of the decoder Software Tasks (the SW side \
          of the synthesis flow).")
    Term.(
      const run
      $ Arg.(value & opt int 4 & info [ "tasks" ] ~docv:"N" ~doc:"SW task count.")
      $ Arg.(
          value & opt string "lossless"
          & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"lossless or lossy.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Write files here instead of stdout."))

let () =
  Analysis.Lint.install ();
  let doc = "FOSSY high-level synthesis flow" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "fossy_cli" ~doc)
          [
            synth_cmd; testbench_cmd; lint_cmd; area_cmd; table2_cmd;
            platgen_cmd; swgen_cmd;
          ]))
