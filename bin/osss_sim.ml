(* Run the OSSS decoder system models and print the paper's tables. *)

open Cmdliner

let mode_conv =
  let parse = function
    | "lossless" -> Ok Jpeg2000.Codestream.Lossless
    | "lossy" -> Ok Jpeg2000.Codestream.Lossy
    | other -> Error (`Msg (Printf.sprintf "unknown mode %S" other))
  in
  Arg.conv (parse, Jpeg2000.Codestream.pp_mode)

let payload_arg =
  Arg.(
    value & flag
    & info [ "no-payload" ]
        ~doc:
          "Skip the functional payload (timing-only simulation; faster, no \
           bit-exactness check).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the result as JSON instead of text.")

let mode_arg =
  Arg.(value & opt mode_conv Jpeg2000.Codestream.Lossless
       & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"lossless or lossy.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel decode engine (default 1 = \
           sequential). Results are bit-identical at any job count.")

(* [with_jobs] validates the flag and guarantees pool shutdown. *)
let with_jobs jobs f =
  if jobs < 1 then begin
    Printf.eprintf "osss_sim: --jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  Par.Pool.with_jobs jobs f

let parse_version name =
  match Models.Experiment.version_of_name name with
  | Some v -> v
  | None ->
    Printf.eprintf "unknown version %S (use 1..5, 6a, 6b, 7a, 7b)\n" name;
    exit 1

let run_cmd =
  let run version_name mode no_payload json jobs =
    let version = parse_version version_name in
    let r =
      with_jobs jobs (fun pool ->
          Models.Experiment.run ~payload:(not no_payload) ~pool version mode)
    in
    if json then
      print_endline (Telemetry.Json.to_string (Models.Outcome.to_json r))
    else Format.printf "%a@." Models.Outcome.pp r;
    if r.Models.Outcome.functional_ok = Some false then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one model version.")
    Term.(
      const run
      $ Arg.(
          required & pos 0 (some string) None & info [] ~docv:"VERSION" ~doc:"Model version.")
      $ mode_arg
      $ payload_arg
      $ json_arg
      $ jobs_arg)

let trace_cmd =
  let run version_name mode no_payload trace_path metrics_path vcd_path
      capacity =
    let version = parse_version version_name in
    let sink, r =
      Telemetry.Sink.with_sink ?capacity (fun () ->
          Models.Experiment.run ~payload:(not no_payload) version mode)
    in
    let events = Telemetry.Sink.events sink in
    Telemetry.Chrome.save trace_path events;
    (match metrics_path with
    | None -> ()
    | Some path -> Telemetry.Json.save path (Models.Outcome.to_json r));
    (match vcd_path with
    | None -> ()
    | Some path -> Telemetry.Vcd_export.save path events);
    Format.printf "%a@." Models.Outcome.pp r;
    let decode_ps =
      int_of_float (r.Models.Outcome.decode_ms *. 1e9 +. 0.5)
    in
    let coverage =
      if decode_ps = 0 then 0.0
      else
        100.0
        *. float_of_int (Telemetry.Event.union_ps events)
        /. float_of_int decode_ps
    in
    Format.printf "trace: %d events on %d tracks -> %s (%.1f%% of decode time covered)@."
      (List.length events)
      (List.length (Telemetry.Event.tracks events))
      trace_path coverage;
    if Telemetry.Sink.dropped sink > 0 then
      Format.printf "trace: %d events dropped by --capacity ring@."
        (Telemetry.Sink.dropped sink);
    (match metrics_path with
    | None -> ()
    | Some path -> Format.printf "metrics: %s@." path);
    (match vcd_path with
    | None -> ()
    | Some path -> Format.printf "vcd: %s@." path);
    if r.Models.Outcome.functional_ok = Some false then exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one model version with telemetry enabled and export a \
          Chrome-trace JSON (open in ui.perfetto.dev or chrome://tracing).")
    Term.(
      const run
      $ Arg.(
          required
          & opt (some string) None
          & info [ "version" ] ~docv:"VERSION" ~doc:"Model version to trace.")
      $ mode_arg
      $ payload_arg
      $ Arg.(
          value & opt string "trace.json"
          & info [ "trace" ] ~docv:"FILE" ~doc:"Chrome-trace output path.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics" ] ~docv:"FILE"
              ~doc:"Also write the outcome (with metrics) as JSON.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "vcd" ] ~docv:"FILE"
              ~doc:"Also write per-track span depth as a VCD dump.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "capacity" ] ~docv:"N"
              ~doc:"Keep only the most recent N events (ring buffer)."))

let compare_cmd =
  let run version_names mode no_payload json jobs =
    let versions =
      match version_names with
      | [] -> Models.Experiment.all_versions
      | names -> List.map parse_version names
    in
    let results =
      with_jobs jobs (fun pool ->
          Models.Experiment.run_many ~payload:(not no_payload) ~pool versions
            mode)
    in
    (if json then
       print_endline
         (Telemetry.Json.to_string
            (Telemetry.Json.List (List.map Models.Outcome.to_json results)))
     else
       let baseline = List.hd results in
       let header =
         [ "version"; "decode [ms]"; "IDWT [ms]"; "speedup"; "functional" ]
       in
       let rows =
         List.map
           (fun (r : Models.Outcome.t) ->
             [
               r.Models.Outcome.version;
               Osss.Report.fmt_ms r.Models.Outcome.decode_ms;
               Osss.Report.fmt_ms r.Models.Outcome.idwt_ms;
               Osss.Report.fmt_factor (Models.Outcome.speedup_vs baseline r);
               (match r.Models.Outcome.functional_ok with
               | Some true -> "ok"
               | Some false -> "MISMATCH"
               | None -> "-");
             ])
           results
       in
       print_string (Osss.Report.render ~header rows));
    if
      List.exists
        (fun r -> r.Models.Outcome.functional_ok = Some false)
        results
    then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run several model versions on the same workload and tabulate \
          decode times and speedups (first version is the baseline).")
    Term.(
      const run
      $ Arg.(
          value & pos_all string []
          & info [] ~docv:"VERSION" ~doc:"Versions to compare (default: all nine).")
      $ mode_arg
      $ payload_arg
      $ json_arg
      $ jobs_arg)

let table1_cmd =
  let run no_payload = print_string (Models.Tables.table1 ~payload:(not no_payload) ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1.") Term.(const run $ payload_arg)

let fig1_cmd =
  let run no_payload = print_string (Models.Tables.figure1 ~payload:(not no_payload) ()) in
  Cmd.v (Cmd.info "fig1" ~doc:"Regenerate the Figure 1 profile.") Term.(const run $ payload_arg)

let relations_cmd =
  let run no_payload =
    let report = Models.Tables.relations_report ~payload:(not no_payload) () in
    print_string report;
    if Str_contains.contains report "FAIL" then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Evaluate the paper's in-text claims against the simulation.")
    Term.(const run $ payload_arg)

let campaign_cmd =
  let run seed rates mode versions unprotected ingest json jobs =
    if ingest then begin
      let rows =
        with_jobs jobs (fun pool ->
            Models.Campaign.run_ingest ~pool ~seed ?rates ~mode ())
      in
      if json then
        print_endline
          (Telemetry.Json.to_string (Models.Campaign.ingest_to_json rows))
      else print_string (Models.Campaign.render_ingest rows)
    end
    else
    let versions =
      match versions with
      | [] -> Models.Experiment.all_versions
      | names ->
        List.map
          (fun name ->
            match Models.Experiment.version_of_name name with
            | Some v -> v
            | None ->
              Printf.eprintf "unknown version %S (use 1..5, 6a, 6b, 7a, 7b)\n"
                name;
              exit 1)
          names
    in
    let protection =
      if unprotected then Some Osss.Channel.Unprotected else None
    in
    let config =
      Models.Campaign.default ~seed ?rates ~mode ~versions ?protection ()
    in
    let rows = with_jobs jobs (fun pool -> Models.Campaign.run ~pool config) in
    if json then
      print_endline
        (Telemetry.Json.to_string (Models.Campaign.to_json config rows))
    else print_string (Models.Campaign.render config rows);
    let aborted =
      List.exists (fun r -> Result.is_error r.Models.Campaign.row_result) rows
    in
    let mismatch =
      List.exists
        (fun r ->
          match r.Models.Campaign.row_result with
          | Ok o -> o.Models.Outcome.functional_ok = Some false
          | Error _ -> false)
        rows
    in
    if mismatch then exit 1;
    ignore aborted
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run the seeded fault-injection campaign and print the resilience \
          table. Deterministic: equal seeds print equal tables.")
    Term.(
      const run
      $ Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")
      $ Arg.(
          value
          & opt (some (list float)) None
          & info [ "rates" ] ~docv:"R1,R2,..."
              ~doc:"Fault rates to sweep (default 0,0.001,0.01,0.05).")
      $ Arg.(value & opt mode_conv Jpeg2000.Codestream.Lossless
             & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"lossless or lossy.")
      $ Arg.(
          value
          & opt (list string) []
          & info [ "versions" ] ~docv:"V1,V2,..."
              ~doc:"Model versions to include (default: all nine).")
      $ Arg.(
          value & flag
          & info [ "unprotected" ]
              ~doc:"Disable the CRC/retry channel hardening.")
      $ Arg.(
          value & flag
          & info [ "ingest" ]
              ~doc:
                "Sweep the ingest-fault axis instead: chunk \
                 loss/dup/reorder/stall on the byte-arrival path through \
                 the decode service (--versions and --unprotected are \
                 ignored).")
      $ json_arg
      $ jobs_arg)

let serve_cmd =
  let run workload streams mode queue policy cache batch ingest trace_path json
      jobs =
    let spec =
      match Serve.Request.parse_spec workload with
      | Ok spec -> spec
      | Error msg ->
        Printf.eprintf "osss_sim: bad --workload: %s\n" msg;
        exit 2
    in
    let overload =
      match Serve.Service.overload_of_string policy with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "osss_sim: bad --policy: %s\n" msg;
        exit 2
    in
    if streams < 1 then begin
      Printf.eprintf "osss_sim: --streams must be >= 1 (got %d)\n" streams;
      exit 2
    end;
    if queue < 1 then begin
      Printf.eprintf "osss_sim: --queue must be >= 1 (got %d)\n" queue;
      exit 2
    end;
    if batch < 1 then begin
      Printf.eprintf "osss_sim: --batch must be >= 1 (got %d)\n" batch;
      exit 2
    end;
    if cache < 0 then begin
      Printf.eprintf "osss_sim: --cache must be >= 0 (got %d)\n" cache;
      exit 2
    end;
    let ingest =
      match ingest with
      | None -> None
      | Some s -> (
        match Faults.Ingest.parse_spec s with
        | Ok spec -> Some spec
        | Error msg ->
          Printf.eprintf "osss_sim: bad --ingest: %s\n" msg;
          exit 2)
    in
    let config =
      {
        Serve.Service.queue_capacity = queue;
        overload;
        cache_capacity = cache;
        max_batch = batch;
        ingest;
      }
    in
    let corpus =
      Array.init streams (fun i ->
          Models.Workload.codestream ~seed:(2008 + i) mode)
    in
    let service =
      try Serve.Service.create ~config corpus
      with Invalid_argument msg ->
        Printf.eprintf "osss_sim: %s\n" msg;
        exit 2
    in
    let serve pool = Serve.Service.run ~pool service spec in
    let report =
      match trace_path with
      | None -> with_jobs jobs serve
      | Some path ->
        let sink, report =
          Telemetry.Sink.with_sink (fun () -> with_jobs jobs serve)
        in
        Telemetry.Chrome.save path (Telemetry.Sink.events sink);
        report
    in
    if json then
      print_endline
        (Telemetry.Json.to_string (Serve.Service.report_to_json report))
    else Format.printf "%a@." Serve.Service.pp_report report
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a seeded request workload through the deterministic decode \
          service (admission control, EDF batching, tile cache). Equal seeds \
          print equal reports at any --jobs.")
    Term.(
      const run
      $ Arg.(
          value & opt string "open:n=64,rate=400,seed=11"
          & info [ "workload" ] ~docv:"SPEC"
              ~doc:
                "Workload spec: open:n=N,rate=RPS,seed=S[,deadline=MS]\
                 [,region=F][,reduced=F] or \
                 closed:n=N,clients=C,think=MS,seed=S[,...].")
      $ Arg.(
          value & opt int 3
          & info [ "streams" ] ~docv:"N"
              ~doc:"Distinct codestreams in the corpus.")
      $ mode_arg
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.queue_capacity
          & info [ "queue" ] ~docv:"N" ~doc:"Request queue capacity.")
      $ Arg.(
          value & opt string "reject"
          & info [ "policy" ] ~docv:"POLICY"
              ~doc:"Overload policy: reject, drop-oldest or degrade.")
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.cache_capacity
          & info [ "cache" ] ~docv:"N"
              ~doc:"Decoded-tile cache capacity (0 disables).")
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.max_batch
          & info [ "batch" ] ~docv:"N" ~doc:"Max requests coalesced per dispatch.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "ingest" ] ~docv:"SPEC"
              ~doc:
                "Stream request bytes chunk by chunk instead of whole: \
                 chunk=BYTES,gap_us=US,loss=P,dup=P,reorder=P,window=N,\
                 stall=P,stall_us=US (every key optional; empty string = \
                 fault-free streaming). Stalled requests are flushed \
                 best-effort at their deadline.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:"Export the service timeline as Chrome-trace JSON.")
      $ json_arg
      $ jobs_arg)

let mapping_cmd =
  let run sw_tasks idwt_p2p =
    let vta = Models.Vta_models.mapping ~sw_tasks ~idwt_p2p in
    Format.printf "%a@." Osss.Vta.pp vta
  in
  Cmd.v
    (Cmd.info "mapping" ~doc:"Show the VTA mapping registry.")
    Term.(
      const run
      $ Arg.(value & opt int 1 & info [ "tasks" ] ~docv:"N" ~doc:"SW task count.")
      $ Arg.(value & flag & info [ "p2p" ] ~doc:"IDWT blocks on point-to-point channels."))

let () =
  let doc = "OSSS JPEG 2000 decoder system simulation" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "osss_sim" ~doc)
          [ run_cmd; trace_cmd; compare_cmd; table1_cmd; fig1_cmd;
            relations_cmd; campaign_cmd; serve_cmd; mapping_cmd ]))
