(* Run the OSSS decoder system models and print the paper's tables. *)

open Cmdliner

let mode_conv =
  let parse = function
    | "lossless" -> Ok Jpeg2000.Codestream.Lossless
    | "lossy" -> Ok Jpeg2000.Codestream.Lossy
    | other -> Error (`Msg (Printf.sprintf "unknown mode %S" other))
  in
  Arg.conv (parse, Jpeg2000.Codestream.pp_mode)

let payload_arg =
  Arg.(
    value & flag
    & info [ "no-payload" ]
        ~doc:
          "Skip the functional payload (timing-only simulation; faster, no \
           bit-exactness check).")

let run_cmd =
  let run version_name mode no_payload =
    match Models.Experiment.version_of_name version_name with
    | None ->
      Printf.eprintf "unknown version %S (use 1..5, 6a, 6b, 7a, 7b)\n" version_name;
      exit 1
    | Some version ->
      let r = Models.Experiment.run ~payload:(not no_payload) version mode in
      Format.printf "%a@." Models.Outcome.pp r;
      if r.Models.Outcome.functional_ok = Some false then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one model version.")
    Term.(
      const run
      $ Arg.(
          required & pos 0 (some string) None & info [] ~docv:"VERSION" ~doc:"Model version.")
      $ Arg.(value & opt mode_conv Jpeg2000.Codestream.Lossless
             & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"lossless or lossy.")
      $ payload_arg)

let table1_cmd =
  let run no_payload = print_string (Models.Tables.table1 ~payload:(not no_payload) ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1.") Term.(const run $ payload_arg)

let fig1_cmd =
  let run no_payload = print_string (Models.Tables.figure1 ~payload:(not no_payload) ()) in
  Cmd.v (Cmd.info "fig1" ~doc:"Regenerate the Figure 1 profile.") Term.(const run $ payload_arg)

let relations_cmd =
  let run no_payload =
    let report = Models.Tables.relations_report ~payload:(not no_payload) () in
    print_string report;
    if Str_contains.contains report "FAIL" then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Evaluate the paper's in-text claims against the simulation.")
    Term.(const run $ payload_arg)

let campaign_cmd =
  let run seed rates mode versions unprotected =
    let versions =
      match versions with
      | [] -> Models.Experiment.all_versions
      | names ->
        List.map
          (fun name ->
            match Models.Experiment.version_of_name name with
            | Some v -> v
            | None ->
              Printf.eprintf "unknown version %S (use 1..5, 6a, 6b, 7a, 7b)\n"
                name;
              exit 1)
          names
    in
    let protection =
      if unprotected then Some Osss.Channel.Unprotected else None
    in
    let config =
      Models.Campaign.default ~seed ?rates ~mode ~versions ?protection ()
    in
    let rows = Models.Campaign.run config in
    print_string (Models.Campaign.render config rows);
    let aborted =
      List.exists (fun r -> Result.is_error r.Models.Campaign.row_result) rows
    in
    let mismatch =
      List.exists
        (fun r ->
          match r.Models.Campaign.row_result with
          | Ok o -> o.Models.Outcome.functional_ok = Some false
          | Error _ -> false)
        rows
    in
    if mismatch then exit 1;
    ignore aborted
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run the seeded fault-injection campaign and print the resilience \
          table. Deterministic: equal seeds print equal tables.")
    Term.(
      const run
      $ Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")
      $ Arg.(
          value
          & opt (some (list float)) None
          & info [ "rates" ] ~docv:"R1,R2,..."
              ~doc:"Fault rates to sweep (default 0,0.001,0.01,0.05).")
      $ Arg.(value & opt mode_conv Jpeg2000.Codestream.Lossless
             & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"lossless or lossy.")
      $ Arg.(
          value
          & opt (list string) []
          & info [ "versions" ] ~docv:"V1,V2,..."
              ~doc:"Model versions to include (default: all nine).")
      $ Arg.(
          value & flag
          & info [ "unprotected" ]
              ~doc:"Disable the CRC/retry channel hardening."))

let mapping_cmd =
  let run sw_tasks idwt_p2p =
    let vta = Models.Vta_models.mapping ~sw_tasks ~idwt_p2p in
    Format.printf "%a@." Osss.Vta.pp vta
  in
  Cmd.v
    (Cmd.info "mapping" ~doc:"Show the VTA mapping registry.")
    Term.(
      const run
      $ Arg.(value & opt int 1 & info [ "tasks" ] ~docv:"N" ~doc:"SW task count.")
      $ Arg.(value & flag & info [ "p2p" ] ~doc:"IDWT blocks on point-to-point channels."))

let () =
  let doc = "OSSS JPEG 2000 decoder system simulation" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "osss_sim" ~doc)
          [ run_cmd; table1_cmd; fig1_cmd; relations_cmd; campaign_cmd; mapping_cmd ]))
