(* Run the OSSS decoder system models and print the paper's tables. *)

open Cmdliner

let mode_conv =
  let parse = function
    | "lossless" -> Ok Jpeg2000.Codestream.Lossless
    | "lossy" -> Ok Jpeg2000.Codestream.Lossy
    | other -> Error (`Msg (Printf.sprintf "unknown mode %S" other))
  in
  Arg.conv (parse, Jpeg2000.Codestream.pp_mode)

let payload_arg =
  Arg.(
    value & flag
    & info [ "no-payload" ]
        ~doc:
          "Skip the functional payload (timing-only simulation; faster, no \
           bit-exactness check).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the result as JSON instead of text.")

let mode_arg =
  Arg.(value & opt mode_conv Jpeg2000.Codestream.Lossless
       & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"lossless or lossy.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel decode engine (default 1 = \
           sequential). Results are bit-identical at any job count.")

(* [with_jobs] validates the flag and guarantees pool shutdown. *)
let with_jobs jobs f =
  if jobs < 1 then begin
    Printf.eprintf "osss_sim: --jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  Par.Pool.with_jobs jobs f

(* Shared flag validation: every subcommand names the offending flag
   and value the same way and exits 2 on bad usage. *)
let require_min flag lo n =
  if n < lo then begin
    Printf.eprintf "osss_sim: --%s must be >= %d (got %d)\n" flag lo n;
    exit 2
  end

let parse_spec_flag flag parse s =
  match parse s with
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "osss_sim: bad --%s: %s\n" flag msg;
    exit 2

let parse_version name =
  match Models.Experiment.version_of_name name with
  | Some v -> v
  | None ->
    Printf.eprintf "unknown version %S (use 1..5, 6a, 6b, 7a, 7b)\n" name;
    exit 1

let run_cmd =
  let run version_name mode no_payload json jobs =
    let version = parse_version version_name in
    let r =
      with_jobs jobs (fun pool ->
          Models.Experiment.run ~payload:(not no_payload) ~pool version mode)
    in
    if json then
      print_endline (Telemetry.Json.to_string (Models.Outcome.to_json r))
    else Format.printf "%a@." Models.Outcome.pp r;
    if r.Models.Outcome.functional_ok = Some false then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one model version.")
    Term.(
      const run
      $ Arg.(
          required & pos 0 (some string) None & info [] ~docv:"VERSION" ~doc:"Model version.")
      $ mode_arg
      $ payload_arg
      $ json_arg
      $ jobs_arg)

let trace_cmd =
  let run version_name mode no_payload trace_path metrics_path vcd_path
      capacity =
    let version = parse_version version_name in
    let sink, r =
      Telemetry.Sink.with_sink ?capacity (fun () ->
          Models.Experiment.run ~payload:(not no_payload) version mode)
    in
    let events = Telemetry.Sink.events sink in
    Telemetry.Chrome.save trace_path events;
    (match metrics_path with
    | None -> ()
    | Some path -> Telemetry.Json.save path (Models.Outcome.to_json r));
    (match vcd_path with
    | None -> ()
    | Some path -> Telemetry.Vcd_export.save path events);
    Format.printf "%a@." Models.Outcome.pp r;
    let decode_ps =
      int_of_float (r.Models.Outcome.decode_ms *. 1e9 +. 0.5)
    in
    let coverage =
      if decode_ps = 0 then 0.0
      else
        100.0
        *. float_of_int (Telemetry.Event.union_ps events)
        /. float_of_int decode_ps
    in
    Format.printf "trace: %d events on %d tracks -> %s (%.1f%% of decode time covered)@."
      (List.length events)
      (List.length (Telemetry.Event.tracks events))
      trace_path coverage;
    if Telemetry.Sink.dropped sink > 0 then
      Format.printf
        "trace: WARNING %d events dropped by the --capacity ring — the \
         exported trace is incomplete (telemetry.dropped_events in the \
         metrics report)@."
        (Telemetry.Sink.dropped sink);
    (match metrics_path with
    | None -> ()
    | Some path -> Format.printf "metrics: %s@." path);
    (match vcd_path with
    | None -> ()
    | Some path -> Format.printf "vcd: %s@." path);
    if r.Models.Outcome.functional_ok = Some false then exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one model version with telemetry enabled and export a \
          Chrome-trace JSON (open in ui.perfetto.dev or chrome://tracing).")
    Term.(
      const run
      $ Arg.(
          required
          & opt (some string) None
          & info [ "version" ] ~docv:"VERSION" ~doc:"Model version to trace.")
      $ mode_arg
      $ payload_arg
      $ Arg.(
          value & opt string "trace.json"
          & info [ "trace" ] ~docv:"FILE" ~doc:"Chrome-trace output path.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "metrics" ] ~docv:"FILE"
              ~doc:"Also write the outcome (with metrics) as JSON.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "vcd" ] ~docv:"FILE"
              ~doc:"Also write per-track span depth as a VCD dump.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "capacity" ] ~docv:"N"
              ~doc:"Keep only the most recent N events (ring buffer)."))

let compare_cmd =
  let run version_names mode no_payload json jobs =
    let versions =
      match version_names with
      | [] -> Models.Experiment.all_versions
      | names -> List.map parse_version names
    in
    let results =
      with_jobs jobs (fun pool ->
          Models.Experiment.run_many ~payload:(not no_payload) ~pool versions
            mode)
    in
    (if json then
       print_endline
         (Telemetry.Json.to_string
            (Telemetry.Json.List (List.map Models.Outcome.to_json results)))
     else
       let baseline = List.hd results in
       let header =
         [ "version"; "decode [ms]"; "IDWT [ms]"; "speedup"; "functional" ]
       in
       let rows =
         List.map
           (fun (r : Models.Outcome.t) ->
             [
               r.Models.Outcome.version;
               Osss.Report.fmt_ms r.Models.Outcome.decode_ms;
               Osss.Report.fmt_ms r.Models.Outcome.idwt_ms;
               Osss.Report.fmt_factor (Models.Outcome.speedup_vs baseline r);
               (match r.Models.Outcome.functional_ok with
               | Some true -> "ok"
               | Some false -> "MISMATCH"
               | None -> "-");
             ])
           results
       in
       print_string (Osss.Report.render ~header rows));
    if
      List.exists
        (fun r -> r.Models.Outcome.functional_ok = Some false)
        results
    then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run several model versions on the same workload and tabulate \
          decode times and speedups (first version is the baseline).")
    Term.(
      const run
      $ Arg.(
          value & pos_all string []
          & info [] ~docv:"VERSION" ~doc:"Versions to compare (default: all nine).")
      $ mode_arg
      $ payload_arg
      $ json_arg
      $ jobs_arg)

let table1_cmd =
  let run no_payload = print_string (Models.Tables.table1 ~payload:(not no_payload) ()) in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1.") Term.(const run $ payload_arg)

let fig1_cmd =
  let run no_payload = print_string (Models.Tables.figure1 ~payload:(not no_payload) ()) in
  Cmd.v (Cmd.info "fig1" ~doc:"Regenerate the Figure 1 profile.") Term.(const run $ payload_arg)

let relations_cmd =
  let run no_payload =
    let report = Models.Tables.relations_report ~payload:(not no_payload) () in
    print_string report;
    if Str_contains.contains report "FAIL" then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Evaluate the paper's in-text claims against the simulation.")
    Term.(const run $ payload_arg)

let campaign_cmd =
  let run seed rates mode versions unprotected ingest fleet json jobs =
    if fleet then begin
      let rows =
        with_jobs jobs (fun pool ->
            Models.Campaign.run_fleet ~pool ~seed ~mode ())
      in
      if json then
        print_endline
          (Telemetry.Json.to_string (Models.Campaign.fleet_to_json rows))
      else print_string (Models.Campaign.render_fleet rows)
    end
    else if ingest then begin
      let rows =
        with_jobs jobs (fun pool ->
            Models.Campaign.run_ingest ~pool ~seed ?rates ~mode ())
      in
      if json then
        print_endline
          (Telemetry.Json.to_string (Models.Campaign.ingest_to_json rows))
      else print_string (Models.Campaign.render_ingest rows)
    end
    else
    let versions =
      match versions with
      | [] -> Models.Experiment.all_versions
      | names ->
        List.map
          (fun name ->
            match Models.Experiment.version_of_name name with
            | Some v -> v
            | None ->
              Printf.eprintf "unknown version %S (use 1..5, 6a, 6b, 7a, 7b)\n"
                name;
              exit 1)
          names
    in
    let protection =
      if unprotected then Some Osss.Channel.Unprotected else None
    in
    let config =
      Models.Campaign.default ~seed ?rates ~mode ~versions ?protection ()
    in
    let rows = with_jobs jobs (fun pool -> Models.Campaign.run ~pool config) in
    if json then
      print_endline
        (Telemetry.Json.to_string (Models.Campaign.to_json config rows))
    else print_string (Models.Campaign.render config rows);
    let aborted =
      List.exists (fun r -> Result.is_error r.Models.Campaign.row_result) rows
    in
    let mismatch =
      List.exists
        (fun r ->
          match r.Models.Campaign.row_result with
          | Ok o -> o.Models.Outcome.functional_ok = Some false
          | Error _ -> false)
        rows
    in
    if mismatch then exit 1;
    ignore aborted
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run the seeded fault-injection campaign and print the resilience \
          table. Deterministic: equal seeds print equal tables.")
    Term.(
      const run
      $ Arg.(value & opt int 2008 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")
      $ Arg.(
          value
          & opt (some (list float)) None
          & info [ "rates" ] ~docv:"R1,R2,..."
              ~doc:"Fault rates to sweep (default 0,0.001,0.01,0.05).")
      $ Arg.(value & opt mode_conv Jpeg2000.Codestream.Lossless
             & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"lossless or lossy.")
      $ Arg.(
          value
          & opt (list string) []
          & info [ "versions" ] ~docv:"V1,V2,..."
              ~doc:"Model versions to include (default: all nine).")
      $ Arg.(
          value & flag
          & info [ "unprotected" ]
              ~doc:"Disable the CRC/retry channel hardening.")
      $ Arg.(
          value & flag
          & info [ "ingest" ]
              ~doc:
                "Sweep the ingest-fault axis instead: chunk \
                 loss/dup/reorder/stall on the byte-arrival path through \
                 the decode service (--versions and --unprotected are \
                 ignored).")
      $ Arg.(
          value & flag
          & info [ "fleet" ]
              ~doc:
                "Sweep the fleet-scaling axis instead: one fixed workload \
                 over a (replica count x shared-L2 size) grid (--rates, \
                 --versions and --unprotected are ignored).")
      $ json_arg
      $ jobs_arg)

let serve_cmd =
  let run workload streams mode queue policy cache batch ingest trace_path json
      jobs =
    let spec = parse_spec_flag "workload" Serve.Request.parse_spec workload in
    let overload =
      parse_spec_flag "policy" Serve.Service.overload_of_string policy
    in
    require_min "streams" 1 streams;
    require_min "queue" 1 queue;
    require_min "batch" 1 batch;
    require_min "cache" 0 cache;
    let ingest =
      Option.map (parse_spec_flag "ingest" Faults.Ingest.parse_spec) ingest
    in
    let config =
      {
        Serve.Service.queue_capacity = queue;
        overload;
        cache_capacity = cache;
        max_batch = batch;
        ingest;
      }
    in
    let corpus =
      Array.init streams (fun i ->
          Models.Workload.codestream ~seed:(2008 + i) mode)
    in
    let service =
      try Serve.Service.create ~config corpus
      with Invalid_argument msg ->
        Printf.eprintf "osss_sim: %s\n" msg;
        exit 2
    in
    let serve pool = Serve.Service.run ~pool service spec in
    let report =
      match trace_path with
      | None -> with_jobs jobs serve
      | Some path ->
        let sink, report =
          Telemetry.Sink.with_sink (fun () -> with_jobs jobs serve)
        in
        Telemetry.Chrome.save path (Telemetry.Sink.events sink);
        report
    in
    if json then
      print_endline
        (Telemetry.Json.to_string (Serve.Service.report_to_json report))
    else Format.printf "%a@." Serve.Service.pp_report report
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a seeded request workload through the deterministic decode \
          service (admission control, EDF batching, tile cache). Equal seeds \
          print equal reports at any --jobs.")
    Term.(
      const run
      $ Arg.(
          value & opt string "open:n=64,rate=400,seed=11"
          & info [ "workload" ] ~docv:"SPEC"
              ~doc:
                "Workload spec: open:n=N,rate=RPS,seed=S[,deadline=MS]\
                 [,region=F][,reduced=F] or \
                 closed:n=N,clients=C,think=MS,seed=S[,...].")
      $ Arg.(
          value & opt int 3
          & info [ "streams" ] ~docv:"N"
              ~doc:"Distinct codestreams in the corpus.")
      $ mode_arg
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.queue_capacity
          & info [ "queue" ] ~docv:"N" ~doc:"Request queue capacity.")
      $ Arg.(
          value & opt string "reject"
          & info [ "policy" ] ~docv:"POLICY"
              ~doc:"Overload policy: reject, drop-oldest or degrade.")
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.cache_capacity
          & info [ "cache" ] ~docv:"N"
              ~doc:"Decoded-tile cache capacity (0 disables).")
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.max_batch
          & info [ "batch" ] ~docv:"N" ~doc:"Max requests coalesced per dispatch.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "ingest" ] ~docv:"SPEC"
              ~doc:
                "Stream request bytes chunk by chunk instead of whole: \
                 chunk=BYTES,gap_us=US,loss=P,dup=P,reorder=P,window=N,\
                 stall=P,stall_us=US (every key optional; empty string = \
                 fault-free streaming). Stalled requests are flushed \
                 best-effort at their deadline.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:"Export the service timeline as Chrome-trace JSON.")
      $ json_arg
      $ jobs_arg)

let fleet_cmd =
  let run workload streams mode fleet_spec queue policy cache batch trace_path
      json jobs =
    let spec = parse_spec_flag "workload" Serve.Request.parse_spec workload in
    let fconfig = parse_spec_flag "fleet" Fleet.parse_config fleet_spec in
    let overload =
      parse_spec_flag "policy" Serve.Service.overload_of_string policy
    in
    require_min "streams" 1 streams;
    require_min "queue" 1 queue;
    require_min "batch" 1 batch;
    require_min "cache" 0 cache;
    let service =
      {
        Serve.Service.queue_capacity = queue;
        overload;
        cache_capacity = cache;
        max_batch = batch;
        ingest = None;
      }
    in
    let corpus =
      Array.init streams (fun i ->
          Models.Workload.codestream ~seed:(2008 + i) mode)
    in
    let fleet =
      try Fleet.create ~config:fconfig ~service corpus
      with Invalid_argument msg ->
        Printf.eprintf "osss_sim: %s\n" msg;
        exit 2
    in
    let serve pool =
      try Fleet.run ~pool fleet spec
      with Invalid_argument msg ->
        Printf.eprintf "osss_sim: %s\n" msg;
        exit 2
    in
    let report =
      match trace_path with
      | None -> with_jobs jobs serve
      | Some path ->
        let sink, report =
          Telemetry.Sink.with_sink (fun () -> with_jobs jobs serve)
        in
        Telemetry.Chrome.save path (Telemetry.Sink.events sink);
        report
    in
    if json then
      print_endline (Telemetry.Json.to_string (Fleet.report_to_json report))
    else Format.printf "%a@." Fleet.pp_report report
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Serve a seeded open-loop workload through a sharded decode fleet: \
          replicated services behind a consistent-hash balancer, a shared L2 \
          tile cache, and (with min < max) an autoscaler on the virtual \
          clock. Equal seeds print equal reports at any --jobs.")
    Term.(
      const run
      $ Arg.(
          value & opt string "open:n=96,rate=1200,seed=11"
          & info [ "workload" ] ~docv:"SPEC"
              ~doc:
                "Workload spec (open loop only): \
                 open:n=N,rate=RPS,seed=S[,deadline=MS][,region=F]\
                 [,reduced=F].")
      $ Arg.(
          value & opt int 6
          & info [ "streams" ] ~docv:"N"
              ~doc:"Distinct codestreams in the corpus.")
      $ mode_arg
      $ Arg.(
          value & opt string ""
          & info [ "fleet" ] ~docv:"SPEC"
              ~doc:
                "Fleet spec: replicas=N[,min=N][,max=N][,vnodes=N][,l2=N]\
                 [,l2_us=US][,spill=0|1][,up=F][,down=F][,slo=F]\
                 [,interval=MS][,warmup=MS][,seed=S] (every key optional; \
                 min < max enables the autoscaler).")
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.queue_capacity
          & info [ "queue" ] ~docv:"N" ~doc:"Per-replica request queue capacity.")
      $ Arg.(
          value & opt string "reject"
          & info [ "policy" ] ~docv:"POLICY"
              ~doc:"Overload policy: reject, drop-oldest or degrade.")
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.cache_capacity
          & info [ "cache" ] ~docv:"N"
              ~doc:"Per-replica L1 tile cache capacity (0 disables).")
      $ Arg.(
          value & opt int Serve.Service.default_config.Serve.Service.max_batch
          & info [ "batch" ] ~docv:"N" ~doc:"Max requests coalesced per dispatch.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "Export the fleet timeline as Chrome-trace JSON (one track \
                 per replica plus the front end).")
      $ json_arg
      $ jobs_arg)

(* -- profile ----------------------------------------------------------- *)

(* The profiling scenario is deterministic end to end: one traced model
   run (kernel-process and decoder-stage spans) plus one traced serve
   workload (queue/exec/sched/ingest spans with latency exemplars),
   folded into a single cost tree with the T1 code-block classes
   grafted in from their counters. Everything in the tree is virtual
   time, so the tree, its JSON and the collapsed stacks are
   byte-identical across reruns and any --jobs. The traced-kernel
   overhead ratio is the one wall-clock measurement; it is reported
   next to the tree, never inside it. *)

let profile_ping_pong () =
  let k = Sim.Kernel.create () in
  let mb = Sim.Mailbox.create k ~capacity:4 () in
  Sim.Kernel.spawn k (fun () ->
      for i = 1 to 1000 do
        Sim.Mailbox.put mb i
      done);
  Sim.Kernel.spawn k (fun () ->
      for _ = 1 to 1000 do
        ignore (Sim.Mailbox.get mb)
      done);
  Sim.Kernel.run k

(* traced / plain wall time of the kernel ping-pong, best of a few
   rounds so scheduler noise biases both sides equally *)
let measure_kernel_overhead () =
  let time_of f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Sys.time () in
      for _ = 1 to 20 do
        f ()
      done;
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  ignore (time_of profile_ping_pong);
  (* warm-up *)
  let plain = time_of profile_ping_pong in
  let traced =
    time_of (fun () ->
        ignore (Telemetry.Sink.with_sink profile_ping_pong : Telemetry.Sink.t * unit))
  in
  if plain <= 0.0 then 1.0 else traced /. plain

let ms_of_self_ps ps = float_of_int ps /. 1e9

let profile_cmd =
  let run version_name workload streams mode jobs flame_path out_path json
      check baseline_path write_baseline =
    let version = parse_version version_name in
    let spec = parse_spec_flag "workload" Serve.Request.parse_spec workload in
    require_min "streams" 1 streams;
    let model_sink, (_ : Models.Outcome.t) =
      Telemetry.Sink.with_sink (fun () ->
          Models.Experiment.run ~payload:false version mode)
    in
    let corpus =
      Array.init streams (fun i ->
          Models.Workload.codestream ~seed:(2008 + i) mode)
    in
    let service =
      try Serve.Service.create ~config:Serve.Service.default_config corpus
      with Invalid_argument msg ->
        Printf.eprintf "osss_sim: %s\n" msg;
        exit 2
    in
    let serve_sink, report =
      Telemetry.Sink.with_sink (fun () ->
          with_jobs jobs (fun pool -> Serve.Service.run ~pool service spec))
    in
    let sreport = Telemetry.Sink.report serve_sink in
    let profile =
      Telemetry.Profile.of_events
        (Telemetry.Sink.events model_sink @ Telemetry.Sink.events serve_sink)
    in
    (* T1 classes live as counters (priced in ps at staging time);
       graft them in as a synthetic track. *)
    let t1_leaves =
      List.filter_map
        (fun (key, ps) ->
          match String.split_on_char '.' key with
          | [ "t1"; "class"; cls; "ps" ] ->
            let blocks =
              Telemetry.Report.counter sreport ("t1.class." ^ cls ^ ".blocks")
            in
            Some ([ "class"; cls ], ps, blocks)
          | _ -> None)
        sreport.Telemetry.Report.counters
    in
    let profile =
      if t1_leaves = [] then profile
      else Telemetry.Profile.add_synthetic profile ~track:"t1" t1_leaves
    in
    let overhead = measure_kernel_overhead () in
    let latency_dist = Telemetry.Report.dist sreport "serve.latency_us" in
    let p99_exemplar =
      Option.bind latency_dist (fun d ->
          Telemetry.Report.quantile_exemplar d 0.99)
    in
    let metric_value name =
      match name with
      | "serve_p99_ms" -> Some report.Serve.Service.latency.Serve.Service.p99_ms
      | "cache_hit_rate" -> Some report.Serve.Service.cache_hit_rate
      | "traced_kernel_overhead" -> Some overhead
      | "dropped_events" ->
        Some
          (float_of_int
             (Telemetry.Report.counter sreport "telemetry.dropped_events"))
      | _ ->
        let lookup prefix value =
          if String.starts_with ~prefix name then
            let path =
              String.sub name (String.length prefix)
                (String.length name - String.length prefix)
            in
            Option.map value (Telemetry.Profile.find profile path)
          else None
        in
        (match
           lookup "self_ms:" (fun n ->
               ms_of_self_ps n.Telemetry.Profile.self_ps)
         with
        | Some v -> Some v
        | None ->
          lookup "total_ms:" (fun n ->
              ms_of_self_ps n.Telemetry.Profile.total_ps))
    in
    let top = Telemetry.Profile.top_self ~n:3 profile in
    (* Scheduling balance of the serve run's pool maps. The counter
       family is deterministic except [steals] (which chunk ran where
       depends on the schedule) — that is why this lands in
       profile.json, which is informational, and never in the
       byte-diffed profile.folded. *)
    let sched_json =
      let open Telemetry.Json in
      let c name = Telemetry.Report.counter sreport ("par.map." ^ name) in
      Obj
        [
          ("jobs", Int jobs);
          ("map_calls", Int (c "calls"));
          ("map_jobs", Int (c "jobs"));
          ("sequential", Int (c "sequential"));
          ("chunks", Int (c "chunks"));
          ("steals", Int (c "steals"));
        ]
    in
    let profile_json =
      let open Telemetry.Json in
      Obj
        [
          ("version", Str version_name);
          ("workload", Str (Serve.Request.spec_to_string spec));
          ("streams", Int streams);
          ("sched", sched_json);
          ( "metrics",
            Obj
              [
                ( "serve_p99_ms",
                  Float report.Serve.Service.latency.Serve.Service.p99_ms );
                ("cache_hit_rate", Float report.Serve.Service.cache_hit_rate);
                ("traced_kernel_overhead", Float overhead);
                ( "dropped_events",
                  Int (Telemetry.Report.counter sreport "telemetry.dropped_events")
                );
              ] );
          ( "top_self",
            List
              (Stdlib.List.map
                 (fun (path, self) ->
                   Obj
                     [
                       ("path", Str path);
                       ("self_ps", Int self);
                       ("self_ms", Float (ms_of_self_ps self));
                     ])
                 top) );
          ( "p99_exemplar",
            match p99_exemplar with
            | None -> Null
            | Some e ->
              Obj
                [
                  ("request", Int e.Telemetry.Metrics.ex_id);
                  ("trace", Str e.Telemetry.Metrics.ex_trace);
                  ("latency_us", Int e.Telemetry.Metrics.ex_value);
                ] );
          ("tree", Telemetry.Profile.to_json profile);
          ("telemetry", Telemetry.Report.to_json sreport);
        ]
    in
    (match flame_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Telemetry.Profile.collapsed profile);
      close_out oc);
    (match out_path with
    | None -> ()
    | Some path -> Telemetry.Json.save path profile_json);
    if json then print_endline (Telemetry.Json.to_string profile_json)
    else begin
      Format.printf "profile: %s + serve %s (%d streams, --jobs %d)@."
        version_name
        (Serve.Request.spec_to_string spec)
        streams jobs;
      Format.printf "tracks: %s@."
        (String.concat ", " (Telemetry.Profile.tracks profile));
      Format.printf "top self-time stages:@.";
      Stdlib.List.iter
        (fun (path, self) ->
          Format.printf "  %-48s %.3f ms@." path (ms_of_self_ps self))
        top;
      Format.printf "serve p99: %.3f ms   cache hit rate: %.1f%%@."
        report.Serve.Service.latency.Serve.Service.p99_ms
        (100.0 *. report.Serve.Service.cache_hit_rate);
      (match p99_exemplar with
      | None -> ()
      | Some e ->
        Format.printf "p99 exemplar: request %d  trace %s  (%d us)@."
          e.Telemetry.Metrics.ex_id e.Telemetry.Metrics.ex_trace
          e.Telemetry.Metrics.ex_value);
      Format.printf "traced-kernel overhead: %.2fx (wall, not in the tree)@."
        overhead;
      (match flame_path with
      | None -> ()
      | Some path -> Format.printf "flamegraph: %s@." path);
      match out_path with
      | None -> ()
      | Some path -> Format.printf "profile json: %s@." path
    end;
    if write_baseline then begin
      let open Telemetry.Json in
      let stage_checks =
        Stdlib.List.map
          (fun (path, self) ->
            Obj
              [
                ("metric", Str ("self_ms:" ^ path));
                ("value", Float (ms_of_self_ps self));
                ("tol_pct", Float 10.0);
              ])
          top
      in
      let checks =
        [
          Obj
            [
              ("metric", Str "serve_p99_ms");
              ( "value",
                Float report.Serve.Service.latency.Serve.Service.p99_ms );
              ("tol_pct", Float 30.0);
            ];
          Obj
            [
              ("metric", Str "cache_hit_rate");
              ( "min",
                Float
                  (Stdlib.max 0.0
                     (report.Serve.Service.cache_hit_rate -. 0.10)) );
            ];
          Obj
            [
              ("metric", Str "traced_kernel_overhead");
              (* wall-clock: generous bound so CI hosts do not flake *)
              ("max", Float 2.5);
            ];
          Obj [ ("metric", Str "dropped_events"); ("max", Float 0.0) ];
        ]
        @ stage_checks
      in
      let baseline =
        Obj
          [
            ("scenario", Str (version_name ^ "+" ^ Serve.Request.spec_to_string spec));
            ("checks", List checks);
          ]
      in
      Telemetry.Json.save baseline_path baseline;
      Format.printf "baseline written: %s@." baseline_path
    end;
    if check then begin
      match Telemetry.Json.load baseline_path with
      | Error msg ->
        Printf.eprintf "osss_sim profile --check: %s: %s\n" baseline_path msg;
        exit 1
      | Ok baseline ->
        let checks =
          match
            Option.bind
              (Telemetry.Json.member "checks" baseline)
              Telemetry.Json.to_list_opt
          with
          | Some checks -> checks
          | None ->
            Printf.eprintf
              "osss_sim profile --check: %s has no \"checks\" array\n"
              baseline_path;
            exit 1
        in
        let breaches = ref 0 in
        Stdlib.List.iter
          (fun entry ->
            let str key =
              Option.bind (Telemetry.Json.member key entry)
                Telemetry.Json.to_string_opt
            in
            let num key =
              Option.bind (Telemetry.Json.member key entry)
                Telemetry.Json.to_float_opt
            in
            match str "metric" with
            | None ->
              incr breaches;
              Format.printf "BREACH  (malformed check entry: no metric)@."
            | Some metric -> (
              match metric_value metric with
              | None ->
                incr breaches;
                Format.printf "BREACH  %-44s not present in this run@." metric
              | Some actual ->
                let verdict, bound =
                  match (num "value", num "tol_pct", num "min", num "max") with
                  | Some v, tol, _, _ ->
                    let tol = Option.value tol ~default:0.0 in
                    let slack = Float.abs v *. tol /. 100.0 in
                    ( Float.abs (actual -. v) <= slack,
                      Printf.sprintf "%g +/- %g%%" v tol )
                  | None, _, Some lo, None ->
                    (actual >= lo, Printf.sprintf ">= %g" lo)
                  | None, _, None, Some hi ->
                    (actual <= hi, Printf.sprintf "<= %g" hi)
                  | None, _, Some lo, Some hi ->
                    ( actual >= lo && actual <= hi,
                      Printf.sprintf "in [%g, %g]" lo hi )
                  | None, _, None, None -> (false, "no bound declared")
                in
                if not verdict then incr breaches;
                Format.printf "%s  %-44s %.6g  (%s)@."
                  (if verdict then "ok    " else "BREACH")
                  metric actual bound))
          checks;
        if !breaches > 0 then begin
          Format.printf "profile check: %d breach(es) against %s@." !breaches
            baseline_path;
          exit 1
        end
        else Format.printf "profile check: all checks within %s@." baseline_path
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Fold a traced model run and a traced serve workload into a \
          deterministic cost tree (self/total virtual-time per kernel \
          process, decoder stage, T1 code-block class and serve phase); \
          export collapsed stacks for flamegraphs and gate key metrics \
          against PERF_baseline.json.")
    Term.(
      const run
      $ Arg.(
          value & opt string "7b"
          & info [ "version" ] ~docv:"VERSION" ~doc:"Model version to profile.")
      $ Arg.(
          value & opt string "open:n=64,rate=400,seed=11"
          & info [ "workload" ] ~docv:"SPEC" ~doc:"Serve workload spec.")
      $ Arg.(
          value & opt int 3
          & info [ "streams" ] ~docv:"N" ~doc:"Codestreams in the serve corpus.")
      $ mode_arg
      $ jobs_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "flame" ] ~docv:"FILE"
              ~doc:
                "Write collapsed-stack text (one 'path self_ps' line per \
                 node; feed to flamegraph.pl). Byte-identical across reruns \
                 and --jobs.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "out" ] ~docv:"FILE" ~doc:"Write the profile as JSON.")
      $ json_arg
      $ Arg.(
          value & flag
          & info [ "check" ]
              ~doc:
                "Compare this run against the baseline's declared \
                 tolerances; exit 1 on any breach.")
      $ Arg.(
          value & opt string "PERF_baseline.json"
          & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline path.")
      $ Arg.(
          value & flag
          & info [ "write-baseline" ]
              ~doc:"Write a fresh baseline from this run's values."))

let mapping_cmd =
  let run sw_tasks idwt_p2p =
    let vta = Models.Vta_models.mapping ~sw_tasks ~idwt_p2p in
    Format.printf "%a@." Osss.Vta.pp vta
  in
  Cmd.v
    (Cmd.info "mapping" ~doc:"Show the VTA mapping registry.")
    Term.(
      const run
      $ Arg.(value & opt int 1 & info [ "tasks" ] ~docv:"N" ~doc:"SW task count.")
      $ Arg.(value & flag & info [ "p2p" ] ~doc:"IDWT blocks on point-to-point channels."))

let () =
  let doc = "OSSS JPEG 2000 decoder system simulation" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "osss_sim" ~doc)
          [ run_cmd; trace_cmd; compare_cmd; table1_cmd; fig1_cmd;
            relations_cmd; campaign_cmd; serve_cmd; fleet_cmd; profile_cmd;
            mapping_cmd ]))
