type pairs = (string * string) list

let parse_pairs s =
  let fields = if s = "" then [] else String.split_on_char ',' s in
  List.fold_left
    (fun acc field ->
      match acc with
      | Error _ -> acc
      | Ok pairs -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "field %S is not key=value" field)
        | Some i ->
          let key = String.sub field 0 i in
          let value = String.sub field (i + 1) (String.length field - i - 1) in
          Ok ((key, value) :: pairs)))
    (Ok []) fields

let check_known ?what keys pairs =
  match List.find_opt (fun (k, _) -> not (List.mem k keys)) pairs with
  | Some (k, _) -> (
    match what with
    | None -> Error (Printf.sprintf "unknown key %S" k)
    | Some what -> Error (Printf.sprintf "unknown %s key %S" what k))
  | None -> Ok ()

let int_field pairs key default check =
  match List.assoc_opt key pairs with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | None -> Error (Printf.sprintf "%s=%S is not an integer" key v)
    | Some n -> check n)

let float_field pairs key default check =
  match List.assoc_opt key pairs with
  | None -> Ok default
  | Some v -> (
    match float_of_string_opt v with
    | None -> Error (Printf.sprintf "%s=%S is not a number" key v)
    | Some f -> check f)

let any v = Ok v

let at_least key lo n =
  if n >= lo then Ok n
  else Error (Printf.sprintf "%s=%d must be >= %d" key n lo)

let in_range key lo hi n =
  if n >= lo && n <= hi then Ok n
  else Error (Printf.sprintf "%s=%d must be in [%d, %d]" key n lo hi)

let unit_interval key f =
  if Float.is_finite f && f >= 0.0 && f <= 1.0 then Ok f
  else Error (Printf.sprintf "%s=%g must be in [0, 1]" key f)

let positive key f =
  if Float.is_finite f && f > 0.0 then Ok f
  else Error (Printf.sprintf "%s=%g must be > 0" key f)

let non_negative key f =
  if Float.is_finite f && f >= 0.0 then Ok f
  else Error (Printf.sprintf "%s=%g must be >= 0" key f)
