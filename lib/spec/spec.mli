(** Shared key=value spec-string parsing.

    Every spec-string flag in the CLI ([--queue], [--cache], [--batch],
    [--ingest], [--fleet], workload specs) speaks the same surface
    language: comma-separated [key=value] fields.  This module is the
    single parser for that language so error messages — which must name
    the offending key and value — stay consistent across flags, and new
    subsystems get validation for free.

    The module is dependency-free; anything above it in the library
    graph (serve, faults, fleet, bin) can use it. *)

type pairs = (string * string) list
(** Parsed fields in source order (later duplicates shadow earlier ones
    via [List.assoc] on the reversed list, matching historic behaviour). *)

val parse_pairs : string -> (pairs, string) result
(** Split [s] on [','] and each field on the first ['=']. The empty
    string parses to [[]]. A field without ['='] fails with
    [field "…" is not key=value]. *)

val check_known : ?what:string -> string list -> pairs -> (unit, string) result
(** Fail on the first key not in the allow-list, naming it:
    [unknown key "k"], or [unknown <what> key "k"] when [what] is
    given (e.g. ["ingest"], ["fleet"]). *)

val int_field :
  pairs -> string -> 'a -> (int -> ('a, string) result) ->
  ('a, string) result
(** [int_field pairs key default check]: the field's value parsed as an
    integer and passed through [check], or [Ok default] when absent.
    [check] may change the representation (e.g. ms to ps). A
    non-integer value fails with [key="v" is not an integer]. *)

val float_field :
  pairs -> string -> 'a -> (float -> ('a, string) result) ->
  ('a, string) result
(** Same for floats; failure message [key="v" is not a number]. *)

(** {1 Common checks}

    Each takes the key name so the error can name the offending value. *)

val any : 'a -> ('a, string) result
(** Always accepts — for fields whose constraints are cross-field and
    checked after parsing. *)

val at_least : string -> int -> int -> (int, string) result
(** [at_least key lo n] requires [n >= lo]:
    [key=n must be >= lo] otherwise. *)

val in_range : string -> int -> int -> int -> (int, string) result
(** [in_range key lo hi n] requires [lo <= n <= hi]. *)

val unit_interval : string -> float -> (float, string) result
(** Requires a finite value in [0, 1]: [key=v must be in [0, 1]]. *)

val positive : string -> float -> (float, string) result
(** Requires a finite value strictly greater than zero. *)

val non_negative : string -> float -> (float, string) result
(** Requires a finite value greater than or equal to zero. *)
