type version = V1 | V2 | V3 | V4 | V5 | V6a | V6b | V7a | V7b

let all_versions = [ V1; V2; V3; V4; V5; V6a; V6b; V7a; V7b ]

let version_name = function
  | V1 -> "1"
  | V2 -> "2"
  | V3 -> "3"
  | V4 -> "4"
  | V5 -> "5"
  | V6a -> "6a"
  | V6b -> "6b"
  | V7a -> "7a"
  | V7b -> "7b"

let version_of_name name =
  List.find_opt (fun v -> String.equal (version_name v) name) all_versions

let run_workload ?protection ?idwt_deadline version w =
  let tasks = App_models.sw_parallel_tasks in
  match version with
  | V1 -> Decoder_system.run_sw_only ~version:"1" ?idwt_deadline w
  | V2 ->
    Decoder_system.run_coprocessor ~version:"2" ~sw_tasks:1 ?idwt_deadline w
  | V3 -> Decoder_system.run_pipeline ~version:"3" ~sw_tasks:1 ?idwt_deadline w
  | V4 ->
    Decoder_system.run_coprocessor ~version:"4" ~sw_tasks:tasks ?idwt_deadline w
  | V5 ->
    Decoder_system.run_pipeline ~version:"5" ~sw_tasks:tasks ?idwt_deadline w
  | V6a ->
    Vta_models.run_custom ?protection ?idwt_deadline ~version:"6a" ~sw_tasks:1
      ~idwt_p2p:false w
  | V6b ->
    Vta_models.run_custom ?protection ?idwt_deadline ~version:"6b" ~sw_tasks:1
      ~idwt_p2p:true w
  | V7a ->
    Vta_models.run_custom ?protection ?idwt_deadline ~version:"7a"
      ~sw_tasks:tasks ~idwt_p2p:false w
  | V7b ->
    Vta_models.run_custom ?protection ?idwt_deadline ~version:"7b"
      ~sw_tasks:tasks ~idwt_p2p:true w

let run ?payload ?pool version mode =
  run_workload version (Workload.make ?payload ?pool mode)

(* Each version is a fully independent simulation (instance-based DES
   kernel, domain-local telemetry/fault state), so a version sweep
   fans out over the pool; inside a worker the workload stays
   sequential, keeping every outcome identical to a sequential
   sweep. Versions differ widely in cost (v0 is a function call, v7b
   a full wheel simulation), so the fan-out steals at single-version
   granularity. *)
let run_many ?payload ?(pool = Par.Pool.sequential) versions mode =
  Array.to_list
    (Par.Pool.map ~chunk:1 pool (Array.of_list versions) (fun v ->
         run ?payload v mode))

let run_all ?payload ?pool mode = run_many ?payload ?pool all_versions mode

type relation_check = { relation : string; holds : bool; detail : string }

let paper_relations lossless lossy =
  let get results version =
    match
      List.find_opt
        (fun r -> String.equal r.Outcome.version (version_name version))
        results
    with
    | Some r -> r
    | None -> invalid_arg "paper_relations: missing version"
  in
  let check relation holds detail = { relation; holds; detail } in
  let both name f =
    let h1, d1 = f (get lossless) "lossless" in
    let h2, d2 = f (get lossy) "lossy" in
    check name (h1 && h2) (d1 ^ "; " ^ d2)
  in
  let functional results =
    List.for_all (fun r -> r.Outcome.functional_ok <> Some false) results
  in
  [
    check "every model decodes the image correctly"
      (functional lossless && functional lossy)
      "payload compared bit-exactly against the reference decoder";
    both "v2 is ~10 % / ~19 % faster than v1 (co-processor gain)" (fun get label ->
        let s = Outcome.speedup_vs (get V1) (get V2) in
        let lo, hi = if label = "lossless" then (1.05, 1.15) else (1.14, 1.25) in
        (s >= lo && s <= hi, Printf.sprintf "%s: %.3fx" label s));
    both "v3 (pipelined) is at least as fast as v2" (fun get label ->
        let ok = (get V3).Outcome.decode_ms <= (get V2).Outcome.decode_ms in
        ( ok,
          Printf.sprintf "%s: %.1f vs %.1f ms" label (get V3).Outcome.decode_ms
            (get V2).Outcome.decode_ms ));
    both "v4 reaches the ~4.5x / ~5x speedup" (fun get label ->
        let s = Outcome.speedup_vs (get V1) (get V4) in
        let lo, hi = if label = "lossless" then (4.0, 5.0) else (4.3, 5.3) in
        (s >= lo && s <= hi, Printf.sprintf "%s: %.2fx" label s));
    both "v5 is slightly slower than v4 (7-client SO overhead)" (fun get label ->
        let d4 = (get V4).Outcome.decode_ms and d5 = (get V5).Outcome.decode_ms in
        (d5 > d4, Printf.sprintf "%s: %.1f vs %.1f ms" label d5 d4));
    both "VTA refinement inflates IDWT time by up to a factor 8 (3 -> 6a)"
      (fun get label ->
        let f = (get V6a).Outcome.idwt_ms /. (get V3).Outcome.idwt_ms in
        (f > 2.0 && f <= 8.5, Printf.sprintf "%s: %.1fx" label f));
    both "6b and 7b have equal IDWT times (P2P decouples the bus)"
      (fun get label ->
        let a = (get V6b).Outcome.idwt_ms and b = (get V7b).Outcome.idwt_ms in
        ( Float.abs (a -. b) < 0.005 *. a,
          Printf.sprintf "%s: %.2f vs %.2f ms" label a b ));
    both "7a's IDWT is slower than 6a's (four processors on one OPB)"
      (fun get label ->
        let a = (get V7a).Outcome.idwt_ms and b = (get V6a).Outcome.idwt_ms in
        (a > b, Printf.sprintf "%s: %.2f vs %.2f ms" label a b));
    (let f1 = Outcome.idwt_speedup_vs (get lossless V1) (get lossless V6b) in
     let f2 = Outcome.idwt_speedup_vs (get lossy V1) (get lossy V6b) in
     check "HW IDWT keeps a 12x / 16x advantage over software (1 -> 6b)"
       (f1 >= 10.0 && f1 <= 14.0 && f2 >= 14.0 && f2 <= 18.0)
       (Printf.sprintf "lossless: %.1fx; lossy: %.1fx" f1 f2));
    both "overall decode time stays software-dominated after refinement"
      (fun get label ->
        let app = (get V3).Outcome.decode_ms and vta = (get V6a).Outcome.decode_ms in
        ( vta < app *. 1.02,
          Printf.sprintf "%s: %.1f -> %.1f ms" label app vta ));
  ]
