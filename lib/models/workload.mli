(** The Table 1 workload and its functional payload.

    Table 1 measures "time needed to decode 16 tiles with 3
    components". With [payload] enabled, a real image is encoded by
    our own encoder and every system model performs the actual staged
    decode (entropy decode → IQ → IDWT → ICT/DC) on genuine tile
    data, so a mis-wired model produces a wrong image, not just wrong
    timing. The payload image is reduced (128×128, 32×32 tiles) to
    keep simulations fast; the timing annotations are the profiled
    full-scale values from {!Profile}. Without [payload] the stage
    bodies are skipped and only timing is simulated. *)

type t

val codestream : ?width:int -> ?height:int -> ?seed:int -> Profile.mode -> string
(** The standard case-study codestream: a {!Jpeg2000.Image.smooth}
    image encoded at the Table 1 geometry (32×32 tiles, 3 wavelet
    levels, 16-sample code blocks; default 128×128, seed 2008). The
    payload below, the bench harness and the serving layer's
    synthetic corpus all use it, so every consumer exercises the same
    encoder configuration. *)

val make :
  ?payload:bool -> ?corrupt:int * float -> ?pool:Par.Pool.t -> Profile.mode -> t
(** 16 tiles, 3 components. [payload] defaults to [true]. [pool]
    (default {!Par.Pool.sequential}) fans the payload decode — and
    every staged decode the models perform — out over independent
    code blocks and component planes; results are bit-identical on
    any pool.
    [corrupt (seed, rate)] flips, deterministically from [seed], each
    entropy-coded payload byte's bit with probability [rate] before
    the run; the staged decode then uses the robust (per-code-block
    containment) entropy decoder, and the functional check compares
    against the robust reference decode of the same damaged stream —
    a model is still verified bit-exactly, concealment included. *)

val mode : t -> Profile.mode
val tile_count : t -> int
val has_payload : t -> bool

val corrupted : t -> bool
(** Whether this workload carries a corrupted payload. *)

val concealed_blocks : t -> int
(** Code blocks the robust reference decode concealed. *)

val concealed_tiles : t -> int
(** Tiles the robust reference decode concealed whole. *)

val psnr_db : t -> float
(** PSNR of the (concealment-degraded) reference against the clean
    decode; [infinity] for an uncorrupted workload. *)

(** {1 Stage bodies}

    Each takes a tile index. They are pure bookkeeping on internal
    slot arrays — the models wrap them in EETs, Shared-Object calls
    and channels. Without payload they are no-ops. Stages must be
    invoked in order per tile; violations raise [Failure], so a model
    with broken synchronisation fails loudly. *)

val stage_decode : t -> int -> unit
val stage_iq : t -> int -> unit
val stage_idwt : t -> int -> unit
val stage_ict_dc : t -> int -> unit

val tile_payload_words : t -> int -> int
(** Serialised size of the (reduced) tile's entropy-decoded data —
    the functional part of a tile transfer. *)

val check : t -> bool option
(** After a run: [Some true] if all tiles went through all stages and
    the assembled image equals the reference decoder's output;
    [None] when running without payload. *)
