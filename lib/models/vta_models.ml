let default_bus_max_burst = 32

(* Explicit memory insertion: the HW/SW Shared Object's tile arrays
   become a 32-bit-data, 16-bit-address block RAM (the paper's
   xilinx_block_ram<osss_array<...>, 32, 16>). One streaming pass of
   the IDWT working set over that memory costs its burst time. *)
let make_rig kernel ~sw_tasks ~idwt_p2p ~bus_max_burst ~mode
    ?(protection = Osss.Channel.Unprotected) () =
  let bus =
    Osss.Bus.create kernel ~name:"opb" ~clock_hz:Profile.clock_hz
      ~max_burst_words:bus_max_burst ()
  in
  let bram =
    Osss.Memory.xilinx_block_ram kernel ~name:"hwsw_so_ram" ~data_width:32
      ~addr_width:16 ~clock_hz:Profile.clock_hz ()
  in
  let processors =
    Array.init sw_tasks (fun i ->
        Osss.Processor.create kernel
          ~name:(Printf.sprintf "microblaze%d" i)
          ~clock_hz:Profile.clock_hz ())
  in
  let sw_transports =
    Array.init sw_tasks (fun i ->
        Osss.Channel.bus_transport bus
          (Osss.Bus.attach_master bus ~name:(Printf.sprintf "microblaze%d" i)))
  in
  let idwt_transport =
    if idwt_p2p then
      Osss.Channel.p2p kernel ~clock_hz:Profile.clock_hz ~name:"idwt_p2p" ()
    else
      Osss.Channel.bus_transport bus
        (Osss.Bus.attach_master bus ~name:"idwt_blocks")
  in
  let params_transport =
    Osss.Channel.p2p kernel ~clock_hz:Profile.clock_hz ~name:"params_p2p" ()
  in
  let transports =
    Array.to_list sw_transports @ [ idwt_transport; params_transport ]
  in
  List.iter (fun tr -> Osss.Channel.set_protection tr protection) transports;
  let sw_links =
    Array.map (fun tr -> Decoder_system.Rmi tr) sw_transports
  in
  let idwt_link = Decoder_system.Rmi idwt_transport in
  let params_link = Decoder_system.Rmi params_transport in
  {
    Decoder_system.link_sw = (fun i -> sw_links.(i));
    link_idwt = idwt_link;
    link_params = params_link;
    map_task = (fun i task -> Osss.Sw_task.map_to_processor task processors.(i));
    coeff_buffer_pass = (fun ~words -> Osss.Memory.access_time bram ~words);
    payload_words = Profile.nominal_tile_words mode;
    (* At the VTA the Shared-Object arbitration is the cycle-accurate
       channel/arbiter model; the software run-time keeps only a
       fixed request-setup cost. *)
    sw_grant_overhead =
      (fun ~clients:_ -> Sim.Sim_time.cycles ~hz:Profile.clock_hz 20);
    transports;
  }

let run_custom ?(bus_max_burst = default_bus_max_burst) ?so_policy ?protection
    ?idwt_deadline ~version ~sw_tasks ~idwt_p2p w =
  Decoder_system.run_pipeline ~version ~sw_tasks
    ~rig:(fun kernel ->
      make_rig kernel ~sw_tasks ~idwt_p2p ~bus_max_burst ~mode:(Workload.mode w)
        ?protection ())
    ?so_policy ?idwt_deadline w

let run version ~sw_tasks ~idwt_p2p w = run_custom ~version ~sw_tasks ~idwt_p2p w

let v6a w = run "6a" ~sw_tasks:1 ~idwt_p2p:false w
let v6b w = run "6b" ~sw_tasks:1 ~idwt_p2p:true w
let v7a w = run "7a" ~sw_tasks:App_models.sw_parallel_tasks ~idwt_p2p:false w
let v7b w = run "7b" ~sw_tasks:App_models.sw_parallel_tasks ~idwt_p2p:true w

let mapping ~sw_tasks ~idwt_p2p =
  let vta = Osss.Vta.create Osss.Platform.ml401 in
  for i = 0 to sw_tasks - 1 do
    Osss.Vta.map_task vta
      ~task:(Printf.sprintf "decoder%d" i)
      ~processor:(Printf.sprintf "microblaze%d" i)
  done;
  List.iter
    (fun m -> Osss.Vta.map_module vta ~module_name:m ~block:(m ^ "_block"))
    [ "idwt2d"; "idwt53"; "idwt97" ];
  for i = 0 to sw_tasks - 1 do
    Osss.Vta.map_link vta
      ~link:(Printf.sprintf "decoder%d->hwsw_so" i)
      ~channel:"opb" ~kind:Osss.Vta.Shared_bus
  done;
  (if idwt_p2p then
     List.iteri
       (fun i m ->
         Osss.Vta.map_link vta ~link:(m ^ "->hwsw_so")
           ~channel:(Printf.sprintf "p2p%d" i)
           ~kind:Osss.Vta.Point_to_point)
       [ "idwt2d"; "idwt53"; "idwt97" ]
   else
     List.iter
       (fun m ->
         Osss.Vta.map_link vta ~link:(m ^ "->hwsw_so") ~channel:"opb"
           ~kind:Osss.Vta.Shared_bus)
       [ "idwt2d"; "idwt53"; "idwt97" ]);
  List.iter
    (fun m ->
      Osss.Vta.map_link vta ~link:(m ^ "->params_so")
        ~channel:("params_" ^ m)
        ~kind:Osss.Vta.Point_to_point)
    [ "idwt2d"; "idwt53"; "idwt97" ];
  (* Shared-Object access declarations mirroring the method calls of
     Decoder_system.run_pipeline — the wait-for graph the analysis
     layer checks for guard-deadlock cycles. *)
  for i = 0 to sw_tasks - 1 do
    let client = Printf.sprintf "decoder%d" i in
    (* put_pending is plain, take_ready waits on a non-empty guard. *)
    Osss.Vta.record_so_access vta ~client ~so:"hwsw_so" ~guarded:false;
    Osss.Vta.record_so_access vta ~client ~so:"hwsw_so" ~guarded:true
  done;
  (* idwt2d: take_pending (guarded) / put_ready on the HW/SW SO,
     put_params / take_finished (guarded) on the params SO. *)
  Osss.Vta.record_so_access vta ~client:"idwt2d" ~so:"hwsw_so" ~guarded:true;
  Osss.Vta.record_so_access vta ~client:"idwt2d" ~so:"hwsw_so" ~guarded:false;
  Osss.Vta.record_so_access vta ~client:"idwt2d" ~so:"idwt_params_so"
    ~guarded:false;
  Osss.Vta.record_so_access vta ~client:"idwt2d" ~so:"idwt_params_so"
    ~guarded:true;
  (* Filter banks: take_params (guarded) / put_finished on the params
     SO, coefficient streaming on the HW/SW SO. *)
  List.iter
    (fun m ->
      Osss.Vta.record_so_access vta ~client:m ~so:"idwt_params_so" ~guarded:true;
      Osss.Vta.record_so_access vta ~client:m ~so:"idwt_params_so" ~guarded:false;
      Osss.Vta.record_so_access vta ~client:m ~so:"hwsw_so" ~guarded:false)
    [ "idwt53"; "idwt97" ];
  (match Osss.Vta.validate vta with
  | Ok () -> ()
  | Error es -> failwith ("Vta_models.mapping: " ^ String.concat "; " es));
  vta
