type config = {
  seed : int;
  rates : float list;
  mode : Profile.mode;
  versions : Experiment.version list;
  protection : Osss.Channel.protection;
}

let default ?(seed = 2008) ?(rates = [ 0.0; 0.001; 0.01; 0.05 ])
    ?(mode = Jpeg2000.Codestream.Lossless)
    ?(versions = Experiment.all_versions)
    ?(protection = Osss.Channel.crc_retry ()) () =
  { seed; rates; mode; versions; protection }

type row = {
  row_version : string;
  row_rate : float;
  row_result : (Outcome.t, string) result;
  row_inflation : float;  (** decode time vs the clean unprotected run *)
  row_psnr_db : float;  (** concealment fidelity vs the clean decode *)
}

(* Deterministic per-run seed: a pure hash of (campaign seed, version
   index, rate index), so adding a version or rate never reshuffles
   the other runs' fault patterns. *)
let run_seed config ~vi ~ri =
  Int64.to_int
    (Int64.logand
       (Faults.Rng.hash64
          (Int64.of_int config.seed)
          (Int64.of_int ((vi * 8191) + ri)))
       Int64.max_int)

(* The sweep couples the three fault surfaces to one rate knob:
   [rate] per channel-frame corruption, [rate / 4] per payload byte
   for stream damage, plus mild stall jitter at [rate]. *)
let fault_rates rate =
  {
    (Faults.Engine.channel_only rate) with
    Faults.Engine.stall_probability = rate;
    stall_max_cycles = 2000;
  }

let stream_rate rate = rate /. 4.0

let run_one config ~vi ~ri ~baseline version rate =
  if rate = 0.0 then (baseline, Float.infinity)
  else begin
    let seed = run_seed config ~vi ~ri in
    let w = Workload.make ~corrupt:(seed, stream_rate rate) config.mode in
    let engine = Faults.Engine.create ~seed (fault_rates rate) in
    let outcome =
      Faults.Engine.with_engine engine (fun () ->
          Experiment.run_workload ~protection:config.protection version w)
    in
    (outcome, Workload.psnr_db w)
  end

(* Every grid point's seed is a pure function of its (version, rate)
   indices and every run's fault state is domain-local, so the grid
   fans out over [pool] without reshuffling a single fault pattern:
   the row list is identical on any pool. Grid points are whole model
   simulations with wildly uneven cost, so both fan-outs steal at
   single-item granularity. *)
let run ?(pool = Par.Pool.sequential) config =
  let versions = Array.of_list config.versions in
  let rates = Array.of_list config.rates in
  let nrates = Array.length rates in
  (* Baseline: the clean, unprotected run — no hooks, bare channels,
     the seed configuration itself. Computed once per version whether
     or not 0.0 is swept; a 0.0 row reports it directly. *)
  let baselines =
    Par.Pool.map ~chunk:1 pool versions (fun version ->
        Experiment.run_workload version (Workload.make config.mode))
  in
  let grid =
    Array.init
      (Array.length versions * nrates)
      (fun i -> (i / nrates, i mod nrates))
  in
  let rows =
    Par.Pool.map ~chunk:1 pool grid (fun (vi, ri) ->
        let version = versions.(vi) and rate = rates.(ri) in
        let baseline = baselines.(vi) in
        let result =
          try
            let outcome, psnr = run_one config ~vi ~ri ~baseline version rate in
            Ok (outcome, psnr)
          with
          | Osss.Channel.Transfer_failed { link; what; attempts } ->
            Error
              (Printf.sprintf "aborted: %s gave up on %s after %d attempts"
                 link what attempts)
          | Failure msg -> Error ("aborted: " ^ msg)
          | Invalid_argument msg -> Error ("aborted: " ^ msg)
        in
        let inflation =
          match result with
          | Ok (o, _) -> o.Outcome.decode_ms /. baseline.Outcome.decode_ms
          | Error _ -> Float.nan
        in
        {
          row_version = Experiment.version_name version;
          row_rate = rate;
          row_result = Result.map fst result;
          row_inflation = inflation;
          row_psnr_db =
            (match result with Ok (_, p) -> p | Error _ -> Float.nan);
        })
  in
  Array.to_list rows

let float_or_null f =
  if Float.is_nan f then Telemetry.Json.Null
  else if f = Float.infinity then Telemetry.Json.Str "inf"
  else Telemetry.Json.Float f

let row_to_json r =
  Telemetry.Json.Obj
    [
      ("version", Telemetry.Json.Str r.row_version);
      ("rate", Telemetry.Json.Float r.row_rate);
      ( "result",
        match r.row_result with
        | Ok o -> Outcome.to_json o
        | Error msg ->
          Telemetry.Json.Obj [ ("error", Telemetry.Json.Str msg) ] );
      ("inflation", float_or_null r.row_inflation);
      ("psnr_db", float_or_null r.row_psnr_db);
    ]

let to_json config rows =
  Telemetry.Json.Obj
    [
      ("seed", Telemetry.Json.Int config.seed);
      ("mode", Telemetry.Json.Str (Outcome.mode_string config.mode));
      ( "rates",
        Telemetry.Json.List
          (List.map (fun r -> Telemetry.Json.Float r) config.rates) );
      ("rows", Telemetry.Json.List (List.map row_to_json rows));
    ]

let fmt_psnr p =
  if Float.is_nan p then "-"
  else if p = Float.infinity then "inf"
  else Printf.sprintf "%.1f" p

(* -- ingest sweep ------------------------------------------------------
   The second fault axis: damage on the byte-arrival path instead of
   inside the platform. One rate knob couples chunk loss, duplication,
   reordering and stall jitter; each swept rate runs the full decode
   service with that ingest profile, so the table shows when streams
   stop landing before their deadlines and what the best-effort
   flushes cost in fidelity. *)

type ingest_row = { ing_rate : float; ing_report : Serve.Service.report }

let ingest_spec rate =
  let cap f = Stdlib.min 1.0 f in
  {
    Faults.Ingest.default_spec with
    Faults.Ingest.profile =
      {
        Faults.Ingest.loss = cap rate;
        dup = cap (rate /. 2.0);
        reorder = cap rate;
        window = 4;
        stall = cap (2.0 *. rate);
        stall_max_ps = 2_000_000_000 (* 2 ms: enough to blow a deadline *);
      };
  }

(* The workload is fixed apart from the campaign seed: an open-loop
   trickle whose deadline comfortably clears a fault-free delivery
   (~10 ms for the default chunk/gap), so every flush in the table is
   attributable to the injected ingest faults. *)
let ingest_workload seed =
  let spec = Printf.sprintf "open:n=24,rate=200,seed=%d,deadline=20" seed in
  match Serve.Request.parse_spec spec with
  | Ok s -> s
  | Error msg -> invalid_arg ("Campaign.ingest_workload: " ^ msg)

let run_ingest ?(pool = Par.Pool.sequential) ?(seed = 2008)
    ?(rates = [ 0.0; 0.01; 0.05; 0.2 ])
    ?(mode = Jpeg2000.Codestream.Lossless) ?(streams = 2) () =
  let corpus =
    Array.init streams (fun i -> Workload.codestream ~seed:(seed + i) mode)
  in
  let spec = ingest_workload seed in
  List.map
    (fun rate ->
      let config =
        {
          Serve.Service.default_config with
          Serve.Service.ingest = Some (ingest_spec rate);
        }
      in
      let service = Serve.Service.create ~config corpus in
      { ing_rate = rate; ing_report = Serve.Service.run ~pool service spec })
    rates

let ingest_to_json rows =
  Telemetry.Json.List
    (List.map
       (fun r ->
         Telemetry.Json.Obj
           [
             ("rate", Telemetry.Json.Float r.ing_rate);
             ("report", Serve.Service.report_to_json r.ing_report);
           ])
       rows)

let render_ingest rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Ingest-fault campaign\n\n";
  let header =
    [
      "rate"; "served"; "flushed"; "failed"; "lost"; "reordered";
      "concealed"; "PSNR [dB]"; "p95 [ms]"; "SLO miss";
    ]
  in
  let table_rows =
    List.map
      (fun r ->
        let rep = r.ing_report in
        let i =
          match rep.Serve.Service.ingest with
          | Some i -> i
          | None -> assert false
        in
        [
          Printf.sprintf "%g" r.ing_rate;
          string_of_int rep.Serve.Service.served;
          string_of_int i.Serve.Service.ing_flushed;
          string_of_int i.Serve.Service.ing_flush_failed;
          string_of_int i.Serve.Service.ing_chunks_lost;
          string_of_int i.Serve.Service.ing_chunks_reordered;
          Printf.sprintf "%db/%dt" i.Serve.Service.ing_flush_concealed_blocks
            i.Serve.Service.ing_flush_concealed_tiles;
          fmt_psnr i.Serve.Service.ing_flush_psnr_db;
          Printf.sprintf "%.3f" rep.Serve.Service.latency.Serve.Service.p95_ms;
          string_of_int rep.Serve.Service.slo_misses;
        ])
      rows
  in
  Buffer.add_string buf (Osss.Report.render ~header table_rows);
  Buffer.contents buf

(* -- fleet sweep -------------------------------------------------------
   The scaling axis: the same fixed open-loop workload served by
   fleets of growing replica count, with and without the shared L2
   tile cache. Autoscaling is pinned off (min = max) at every grid
   point so each row isolates one (replica count, L2 size) pair; the
   workload rate is chosen to saturate the single-replica fleet, so
   the table shows rejections falling and tail latency recovering as
   replicas are added, and the L2 columns price what the shared cache
   buys at each scale. Deterministic like the other sweeps. *)

type fleet_row = { fl_replicas : int; fl_l2 : int; fl_report : Fleet.report }

let fleet_workload seed =
  let spec =
    Printf.sprintf "open:n=96,rate=1500,seed=%d,deadline=30,reduced=0.25" seed
  in
  match Serve.Request.parse_spec spec with
  | Ok s -> s
  | Error msg -> invalid_arg ("Campaign.fleet_workload: " ^ msg)

let run_fleet ?(pool = Par.Pool.sequential) ?(seed = 2008)
    ?(replicas = [ 1; 2; 4; 8 ]) ?(l2_sizes = [ 0; 256 ])
    ?(mode = Jpeg2000.Codestream.Lossless) ?(streams = 6) () =
  let corpus =
    Array.init streams (fun i -> Workload.codestream ~seed:(seed + i) mode)
  in
  (* a deliberately small L1 per replica, so the L2 column measures
     real sharing rather than private-cache capacity *)
  let service =
    { Serve.Service.default_config with Serve.Service.cache_capacity = 16 }
  in
  let spec = fleet_workload seed in
  List.concat_map
    (fun r ->
      List.map
        (fun l2 ->
          let config =
            {
              Fleet.default_config with
              Fleet.replicas = r;
              min_replicas = r;
              max_replicas = r;
              l2_capacity = l2;
            }
          in
          let fleet = Fleet.create ~config ~service corpus in
          { fl_replicas = r; fl_l2 = l2; fl_report = Fleet.run ~pool fleet spec })
        l2_sizes)
    replicas

let fleet_to_json rows =
  Telemetry.Json.List
    (List.map
       (fun r ->
         Telemetry.Json.Obj
           [
             ("replicas", Telemetry.Json.Int r.fl_replicas);
             ("l2", Telemetry.Json.Int r.fl_l2);
             ("report", Fleet.report_to_json r.fl_report);
           ])
       rows)

let render_fleet rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Fleet scaling campaign\n\n";
  let header =
    [
      "replicas"; "L2"; "served"; "rejected"; "spilled"; "req/s";
      "p50 [ms]"; "p99 [ms]"; "SLO miss"; "L1 hit"; "L2 hit";
    ]
  in
  let table_rows =
    List.map
      (fun r ->
        let rep = r.fl_report in
        [
          string_of_int r.fl_replicas;
          (if r.fl_l2 = 0 then "off" else string_of_int r.fl_l2);
          string_of_int rep.Fleet.served;
          string_of_int rep.Fleet.rejected;
          string_of_int rep.Fleet.spilled;
          Printf.sprintf "%.0f" rep.Fleet.throughput_rps;
          Printf.sprintf "%.3f" rep.Fleet.latency.Serve.Service.p50_ms;
          Printf.sprintf "%.3f" rep.Fleet.latency.Serve.Service.p99_ms;
          string_of_int rep.Fleet.slo_misses;
          Printf.sprintf "%.1f%%" (100.0 *. rep.Fleet.l1.Fleet.hit_rate);
          (match rep.Fleet.l2 with
          | None -> "-"
          | Some l ->
            Printf.sprintf "%.1f%%" (100.0 *. l.Fleet.l2_tier.Fleet.hit_rate));
        ])
      rows
  in
  Buffer.add_string buf (Osss.Report.render ~header table_rows);
  Buffer.contents buf

let fmt_inflation f =
  if Float.is_nan f then "-" else Printf.sprintf "%.4fx" f

let render config rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fault campaign: seed %d, %s, %s\n\n"
       config.seed
       (Format.asprintf "%a mode" Jpeg2000.Codestream.pp_mode config.mode)
       (match config.protection with
       | Osss.Channel.Unprotected -> "unprotected channels"
       | Osss.Channel.Crc_retry { max_retries; timeout_cycles; backoff_base_cycles }
         ->
         Printf.sprintf
           "CRC/retry channels (max %d retries, %d-cycle timeout, %d-cycle backoff)"
           max_retries timeout_cycles backoff_base_cycles))
  ;
  let header =
    [
      "version"; "rate"; "decode [ms]"; "inflation"; "retry [ms]"; "retries";
      "giveups"; "miss"; "concealed"; "PSNR [dB]"; "functional";
    ]
  in
  let table_rows =
    List.map
      (fun r ->
        match r.row_result with
        | Ok o ->
          let res = o.Outcome.resilience in
          [
            r.row_version;
            Printf.sprintf "%g" r.row_rate;
            Osss.Report.fmt_ms o.Outcome.decode_ms;
            fmt_inflation r.row_inflation;
            Printf.sprintf "%.3f" res.Outcome.retry_ms;
            string_of_int res.Outcome.retries;
            string_of_int res.Outcome.giveups;
            string_of_int res.Outcome.deadline_misses;
            Printf.sprintf "%db/%dt" res.Outcome.concealed_blocks
              res.Outcome.concealed_tiles;
            fmt_psnr r.row_psnr_db;
            (match o.Outcome.functional_ok with
            | Some true -> "ok"
            | Some false -> "MISMATCH"
            | None -> "-");
          ]
        | Error msg ->
          [
            r.row_version; Printf.sprintf "%g" r.row_rate; "-"; "-"; "-"; "-";
            "-"; "-"; "-"; "-"; msg;
          ])
      rows
  in
  Buffer.add_string buf (Osss.Report.render ~header table_rows);
  Buffer.contents buf
