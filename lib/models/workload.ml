type slot = {
  mutable decoded : Jpeg2000.Decoder.entropy_decoded option;
  mutable wavelet : Jpeg2000.Decoder.wavelet_domain option;
  mutable spatial : Jpeg2000.Decoder.wavelet_domain option;
  mutable finished : Jpeg2000.Tile.t option;
  mutable stage_reached : int;
}

type payload = {
  header : Jpeg2000.Codestream.header;
  segments : Jpeg2000.Codestream.tile_segment array;
  reference : Jpeg2000.Image.t;
      (* what the staged decode must reproduce bit-exactly: the clean
         decode, or — under corruption — the robust decode with the
         same concealment the stages perform *)
  clean_reference : Jpeg2000.Image.t;
  robust : bool;
  concealed_blocks : int;
  concealed_tiles : int;
  slots : slot array;
  pool : Par.Pool.t;
      (* fans the per-tile stage bodies out over code blocks / planes;
         [Par.Pool.sequential] unless the caller opted in *)
}

type t = { w_mode : Profile.mode; w_tiles : int; payload : payload option }

(* -- deterministic stream corruption -------------------------------- *)

(* Bit flips confined to the entropy-coded segments: the framing
   stays parseable (whole-stream corruption is the fuzz tests'
   domain), the MQ payload and the per-block headers degrade —
   exactly the damage per-block containment is built for. Pass-byte
   flips give silently wrong coefficients (PSNR loss); a flip in a
   block's bit-plane count (probability [rate] per block, hitting a
   high bit) is structural damage the robust decoder detects and
   conceals. *)
let corrupt_segments rng ~rate segments =
  let corrupt_pass s =
    let b = Bytes.of_string s in
    for i = 0 to Bytes.length b - 1 do
      if Faults.Rng.float rng < rate then
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Faults.Rng.int rng 8)))
    done;
    Bytes.to_string b
  in
  let corrupt_block (blk : Jpeg2000.Codestream.block_segment) =
    let blk_planes =
      if Faults.Rng.float rng < rate then
        blk.Jpeg2000.Codestream.blk_planes lxor (1 lsl (5 + Faults.Rng.int rng 3))
      else blk.Jpeg2000.Codestream.blk_planes
    in
    { Jpeg2000.Codestream.blk_planes;
      blk_passes = List.map corrupt_pass blk.Jpeg2000.Codestream.blk_passes }
  in
  let corrupt_band (band : Jpeg2000.Codestream.band_segment) =
    { band with Jpeg2000.Codestream.seg_blocks = List.map corrupt_block band.Jpeg2000.Codestream.seg_blocks }
  in
  Array.map
    (fun (seg : Jpeg2000.Codestream.tile_segment) ->
      { seg with Jpeg2000.Codestream.comps = Array.map (List.map corrupt_band) seg.Jpeg2000.Codestream.comps })
    segments

(* Decode one (possibly damaged) tile the way the staged models do:
   robust entropy decode with per-block containment, whole-tile
   concealment on structural damage. Returns the tile image plus
   concealment counts. *)
let robust_tile ?(pool = Par.Pool.sequential) header seg =
  match Jpeg2000.Decoder.entropy_decode_tile_robust ~pool header seg with
  | Some (ed, concealed) ->
    ( Jpeg2000.Decoder.dequantise header ed
      |> Jpeg2000.Decoder.inverse_wavelet ~pool header
      |> Jpeg2000.Decoder.inverse_colour_and_shift header seg,
      concealed,
      0 )
  | None ->
    ( Jpeg2000.Decoder.concealed_entropy_decoded header seg
      |> Jpeg2000.Decoder.dequantise header
      |> Jpeg2000.Decoder.inverse_wavelet ~pool header
      |> Jpeg2000.Decoder.inverse_colour_and_shift header seg,
      0,
      1 )

(* The standard case-study codestream: a band-limited pseudo-natural
   image at the Table 1 geometry (128x128, 32x32 tiles, 3 levels).
   Shared by the payload below, the bench harness and the serving
   layer's synthetic stream corpus, so every consumer exercises the
   same encoder configuration. *)
let codestream ?(width = 128) ?(height = 128) ?(seed = 2008) mode =
  let image =
    Jpeg2000.Image.smooth ~width ~height ~components:Profile.components ~seed
  in
  let config =
    {
      Jpeg2000.Encoder.tile_w = 32;
      tile_h = 32;
      levels = 3;
      mode;
      base_step = 2.0;
      code_block = 16;
    }
  in
  Jpeg2000.Encoder.encode config image

let make_payload ?corrupt ~pool mode =
  let data = codestream mode in
  let stream = Jpeg2000.Codestream.parse data in
  let clean_reference = Jpeg2000.Decoder.decode ~pool data in
  let header = stream.Jpeg2000.Codestream.header in
  let clean_segments = Array.of_list stream.Jpeg2000.Codestream.tiles in
  let segments, reference, robust, concealed_blocks, concealed_tiles =
    match corrupt with
    | None -> (clean_segments, clean_reference, false, 0, 0)
    | Some (seed, rate) ->
      if rate < 0.0 || rate > 1.0 then
        invalid_arg "Workload.make: corruption rate out of [0,1]";
      let rng = Faults.Rng.create seed in
      let segments = corrupt_segments rng ~rate clean_segments in
      let blocks = ref 0 and tiles = ref 0 in
      let decoded =
        Array.map
          (fun seg ->
            let tile, b, t = robust_tile ~pool header seg in
            blocks := !blocks + b;
            tiles := !tiles + t;
            tile)
          segments
      in
      let reference =
        Jpeg2000.Tile.assemble
          ~width:(Jpeg2000.Image.width clean_reference)
          ~height:(Jpeg2000.Image.height clean_reference)
          ~components:(Jpeg2000.Image.components clean_reference)
          (Array.to_list decoded)
      in
      (segments, reference, true, !blocks, !tiles)
  in
  let slots =
    Array.map
      (fun _ ->
        {
          decoded = None;
          wavelet = None;
          spatial = None;
          finished = None;
          stage_reached = 0;
        })
      segments
  in
  {
    header;
    segments;
    reference;
    clean_reference;
    robust;
    concealed_blocks;
    concealed_tiles;
    slots;
    pool;
  }

let make ?(payload = true) ?corrupt ?(pool = Par.Pool.sequential) mode =
  if corrupt <> None && not payload then
    invalid_arg "Workload.make: corruption requires a payload";
  {
    w_mode = mode;
    w_tiles = Profile.tiles;
    payload = (if payload then Some (make_payload ?corrupt ~pool mode) else None);
  }

let mode t = t.w_mode
let tile_count t = t.w_tiles
let has_payload t = t.payload <> None
let corrupted t =
  match t.payload with Some p -> p.robust | None -> false

let concealed_blocks t =
  match t.payload with Some p -> p.concealed_blocks | None -> 0

let concealed_tiles t =
  match t.payload with Some p -> p.concealed_tiles | None -> 0

let psnr_db t =
  match t.payload with
  | Some p when p.robust -> Jpeg2000.Image.psnr p.clean_reference p.reference
  | _ -> Float.infinity

let expect_stage p i expected =
  let slot = p.slots.(i) in
  if slot.stage_reached <> expected then
    failwith
      (Printf.sprintf "Workload: tile %d reached stage %d, expected %d" i
         slot.stage_reached expected);
  slot.stage_reached <- expected + 1

let stage_decode t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 0;
    p.slots.(i).decoded <-
      Some
        (if p.robust then
           match
             Jpeg2000.Decoder.entropy_decode_tile_robust ~pool:p.pool p.header
               p.segments.(i)
           with
           | Some (ed, _) -> ed
           | None ->
             Jpeg2000.Decoder.concealed_entropy_decoded p.header p.segments.(i)
         else
           Jpeg2000.Decoder.entropy_decode_tile ~pool:p.pool p.header
             p.segments.(i))

let stage_iq t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 1;
    (match p.slots.(i).decoded with
    | Some ed -> p.slots.(i).wavelet <- Some (Jpeg2000.Decoder.dequantise p.header ed)
    | None -> failwith "Workload: IQ before decode")

let stage_idwt t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 2;
    (match p.slots.(i).wavelet with
    | Some wd ->
      p.slots.(i).spatial <-
        Some (Jpeg2000.Decoder.inverse_wavelet ~pool:p.pool p.header wd)
    | None -> failwith "Workload: IDWT before IQ")

let stage_ict_dc t i =
  match t.payload with
  | None -> ()
  | Some p ->
    expect_stage p i 3;
    (match p.slots.(i).spatial with
    | Some wd ->
      p.slots.(i).finished <-
        Some (Jpeg2000.Decoder.inverse_colour_and_shift p.header p.segments.(i) wd)
    | None -> failwith "Workload: ICT before IDWT")

let tile_payload_words t i =
  match t.payload with
  | None -> 0
  | Some p ->
    (* The entropy-decoded coefficients of the reduced tile: one word
       per sample per component. *)
    let seg = p.segments.(i) in
    seg.Jpeg2000.Codestream.tile_w * seg.Jpeg2000.Codestream.tile_h
    * Array.length seg.Jpeg2000.Codestream.comps

let check t =
  match t.payload with
  | None -> None
  | Some p ->
    let all_done = Array.for_all (fun s -> s.finished <> None) p.slots in
    if not all_done then Some false
    else begin
      let tiles =
        Array.to_list (Array.map (fun s -> Option.get s.finished) p.slots)
      in
      let image =
        Jpeg2000.Tile.assemble
          ~width:(Jpeg2000.Image.width p.reference)
          ~height:(Jpeg2000.Image.height p.reference)
          ~components:(Jpeg2000.Image.components p.reference)
          tiles
      in
      Some (Jpeg2000.Image.equal image p.reference)
    end
