(** The JPEG 2000 decoder system topologies.

    Three structures cover the paper's nine models:

    - {!run_sw_only} — version 1: one Software Task runs every stage;
    - {!run_coprocessor} — versions 2 and 4: SW task(s) call a
      blocking IQ+IDWT co-processing Shared Object;
    - {!run_pipeline} — versions 3, 5, 6a, 6b, 7a, 7b: SW task(s)
      push decoded tiles into the HW/SW Shared Object; an IDWT2D
      control module takes them (IQ runs inside the object), and
      dispatches, via the IDWT-params Shared Object, to the IDWT53 or
      IDWT97 hardware block, which fetches coefficients from the
      HW/SW object, computes, and stores the result back; the SW
      task(s) collect finished tiles for ICT and DC shift.

    Whether a run is an Application-Layer or a VTA model is entirely
    decided by the {!rig}: [Direct] links make method calls plain
    arbitrated calls; [Rmi] links serialise them over a bus or
    point-to-point channel and add the full-resolution payload
    transfer; processor mapping and explicit memories likewise come
    from the rig. The behavioural code is shared — the seamless
    refinement the paper claims. *)

type comm =
  | Direct  (** Application-Layer method call *)
  | Rmi of Osss.Channel.transport  (** refined onto an OSSS Channel *)

type rig = {
  link_sw : int -> comm;  (** SW task [i] ↔ HW/SW Shared Object *)
  link_idwt : comm;  (** IDWT hardware blocks ↔ HW/SW Shared Object *)
  link_params : comm;  (** IDWT blocks ↔ IDWT-params Shared Object *)
  map_task : int -> Osss.Sw_task.t -> unit;
      (** bind SW task [i] to its processor (identity on the
          Application Layer) *)
  coeff_buffer_pass : words:int -> Sim.Sim_time.t;
      (** one streaming pass over a tile's coefficients in the IDWT
          block's working memory (zero for Application-Layer
          registers, BRAM timing after explicit memory insertion) *)
  payload_words : int;
      (** serialised tile size carried by each refined data transfer
          (0 on the Application Layer) *)
  sw_grant_overhead : clients:int -> Sim.Sim_time.t;
      (** per-access run-time cost of a {e software} client on a
          Shared Object with that many clients; the Application Layer
          uses {!Profile.so_grant_overhead}, the VTA a small constant
          (arbitration is then part of the channel model) *)
  transports : Osss.Channel.transport list;
      (** every channel of the rig, for protection setup and
          resilience-counter aggregation into {!Outcome.resilience}
          (empty on the Application Layer) *)
}

val application_rig : rig
(** All-direct rig: unmapped tasks, register memories, no payload. *)

val run_sw_only :
  version:string -> ?idwt_deadline:Sim.Sim_time.t -> Workload.t -> Outcome.t

val run_coprocessor :
  version:string ->
  sw_tasks:int ->
  ?rig:(Sim.Kernel.t -> rig) ->
  ?idwt_deadline:Sim.Sim_time.t ->
  Workload.t ->
  Outcome.t

val run_pipeline :
  version:string ->
  sw_tasks:int ->
  ?rig:(Sim.Kernel.t -> rig) ->
  ?so_policy:Osss.Arbiter.policy ->
  ?idwt_deadline:Sim.Sim_time.t ->
  Workload.t ->
  Outcome.t
(** [so_policy] selects the HW/SW Shared Object's arbitration policy
    (default FCFS) — the design-choice ablation of DESIGN.md.
    Every run wraps each IDWT service interval in
    [Osss.Eet.ret_check] against [idwt_deadline] (default
    {!Profile.idwt_deadline}) and reports misses in
    {!Outcome.resilience} — measurement only, no simulated time is
    added. *)
