let modes = [ Jpeg2000.Codestream.Lossless; Jpeg2000.Codestream.Lossy ]

let figure1 ?payload () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 1 - profiled share of SW-only decoding time per stage\n\n";
  let measured_shares mode =
    (* Measure stage times from the version-1 model structure: the
       profile drives the EETs, so this checks the model reproduces
       the published distribution. *)
    let r = Experiment.run ?payload Experiment.V1 mode in
    let times = Profile.sw mode in
    let decode_total =
      Sim.Sim_time.to_float_ms
        (List.fold_left
           (fun acc i ->
             Sim.Sim_time.add acc (Profile.sw_decode_time mode ~tile:i))
           Sim.Sim_time.zero
           (List.init Profile.tiles (fun i -> i)))
    in
    let n = float_of_int Profile.tiles in
    let per_stage stage =
      match stage with
      | Profile.Arith_decode -> decode_total
      | Profile.Iq -> Sim.Sim_time.to_float_ms times.Profile.t_iq *. n
      | Profile.Idwt -> r.Outcome.idwt_ms
      | Profile.Ict -> Sim.Sim_time.to_float_ms times.Profile.t_ict *. n
      | Profile.Dc_shift -> Sim.Sim_time.to_float_ms times.Profile.t_dc_shift *. n
    in
    let total = r.Outcome.decode_ms in
    List.map
      (fun (stage, paper_pct) ->
        (stage, paper_pct, 100.0 *. per_stage stage /. total))
      (Profile.shares mode)
  in
  List.iter
    (fun mode ->
      Buffer.add_string buf
        (Format.asprintf "%a:\n" Jpeg2000.Codestream.pp_mode mode);
      let rows =
        List.map
          (fun (stage, paper, measured) ->
            [
              Profile.stage_name stage;
              Osss.Report.fmt_pct paper;
              Osss.Report.fmt_pct measured;
            ])
          (measured_shares mode)
      in
      Buffer.add_string buf
        (Osss.Report.render ~header:[ "stage"; "paper"; "measured" ] rows);
      Buffer.add_char buf '\n')
    modes;
  Buffer.contents buf

let table1_results ?payload () =
  ( Experiment.run_all ?payload Jpeg2000.Codestream.Lossless,
    Experiment.run_all ?payload Jpeg2000.Codestream.Lossy )

let version_label version =
  match version with
  | "1" -> "1  SW only"
  | "2" -> "2  HW/SW not parallel"
  | "3" -> "3  HW/SW parallel (3 IDWT modules)"
  | "4" -> "4  SW parallel (cp. 2)"
  | "5" -> "5  SW & HW/SW parallel (cp. 3)"
  | "6a" -> "6a HW/SW SO on bus only"
  | "6b" -> "6b HW/SW SO on bus & P2P"
  | "7a" -> "7a HW/SW SO on bus only"
  | "7b" -> "7b HW/SW SO on bus & P2P"
  | other -> other

let table1 ?payload () =
  let lossless, lossy = table1_results ?payload () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 1 - simulation results (decode 16 tiles with 3 components, 100 MHz)\n\n";
  let rows =
    List.map2
      (fun (ll : Outcome.t) (ly : Outcome.t) ->
        [
          version_label ll.Outcome.version;
          Osss.Report.fmt_ms ll.Outcome.decode_ms;
          Osss.Report.fmt_ms ly.Outcome.decode_ms;
          Osss.Report.fmt_ms ll.Outcome.idwt_ms;
          Osss.Report.fmt_ms ly.Outcome.idwt_ms;
        ])
      lossless lossy
  in
  let app_rows, vta_rows =
    let is_app row = String.length (List.nth row 0) > 0 && (List.nth row 0).[0] <> '6' && (List.nth row 0).[0] <> '7' in
    List.partition is_app rows
  in
  let header =
    [
      "version of JPEG 2000 decoder model";
      "decode lossless [ms]";
      "decode lossy [ms]";
      "IDWT lossless [ms]";
      "IDWT lossy [ms]";
    ]
  in
  Buffer.add_string buf "Application Layer:\n";
  Buffer.add_string buf (Osss.Report.render ~header app_rows);
  Buffer.add_string buf "\nVirtual Target Architecture Layer:\n";
  Buffer.add_string buf (Osss.Report.render ~header vta_rows);
  let get results version =
    List.find (fun r -> String.equal r.Outcome.version version) results
  in
  Buffer.add_string buf "\nDerived factors (paper's in-text claims):\n";
  List.iter
    (fun (label, f) -> Buffer.add_string buf (Printf.sprintf "  %-58s %s\n" label f))
    [
      ( "speed-up v1 -> v2 (lossless/lossy)",
        Printf.sprintf "%s / %s"
          (Osss.Report.fmt_factor (Outcome.speedup_vs (get lossless "1") (get lossless "2")))
          (Osss.Report.fmt_factor (Outcome.speedup_vs (get lossy "1") (get lossy "2"))) );
      ( "speed-up v1 -> v4 (lossless/lossy)",
        Printf.sprintf "%s / %s"
          (Osss.Report.fmt_factor (Outcome.speedup_vs (get lossless "1") (get lossless "4")))
          (Osss.Report.fmt_factor (Outcome.speedup_vs (get lossy "1") (get lossy "4"))) );
      ( "IDWT inflation 3 -> 6a (lossless/lossy)",
        Printf.sprintf "%s / %s"
          (Osss.Report.fmt_factor
             ((get lossless "6a").Outcome.idwt_ms /. (get lossless "3").Outcome.idwt_ms))
          (Osss.Report.fmt_factor
             ((get lossy "6a").Outcome.idwt_ms /. (get lossy "3").Outcome.idwt_ms)) );
      ( "HW IDWT speed-up 1 -> 6b (lossless/lossy)",
        Printf.sprintf "%s / %s"
          (Osss.Report.fmt_factor
             (Outcome.idwt_speedup_vs (get lossless "1") (get lossless "6b")))
          (Osss.Report.fmt_factor
             (Outcome.idwt_speedup_vs (get lossy "1") (get lossy "6b"))) );
      ( "IDWT deadline misses, all versions (lossless/lossy)",
        let misses rs =
          List.fold_left
            (fun acc (r : Outcome.t) ->
              acc + r.Outcome.resilience.Outcome.deadline_misses)
            0 rs
        in
        Printf.sprintf "%d / %d" (misses lossless) (misses lossy) );
    ];
  Buffer.contents buf

type table2_row = {
  core : string;
  fossy_area : Rtl.Area.report;
  fossy_unopt_area : Rtl.Area.report;
  fossy_mhz : float;
  fossy_vhdl_loc : int;
  systemc_loc : int;
  ref_area : Rtl.Area.report;
  ref_mhz : float;
  ref_vhdl_loc : int;
}

let table2_rows () =
  let synth core_name hir reference =
    match Fossy.Synthesis.synthesise hir with
    | Error es ->
      failwith (core_name ^ ": " ^ String.concat "; " es)
    | Ok r ->
      let ref_r = Fossy.Synthesis.analyse_reference reference in
      {
        core = core_name;
        fossy_area = r.Fossy.Synthesis.area;
        fossy_unopt_area = r.Fossy.Synthesis.unopt_area;
        fossy_mhz = r.Fossy.Synthesis.fmax_mhz;
        fossy_vhdl_loc = r.Fossy.Synthesis.vhdl_loc;
        systemc_loc = r.Fossy.Synthesis.systemc_loc;
        ref_area = ref_r.Fossy.Synthesis.ref_area;
        ref_mhz = ref_r.Fossy.Synthesis.ref_fmax_mhz;
        ref_vhdl_loc = ref_r.Fossy.Synthesis.ref_vhdl_loc;
      }
  in
  [
    synth "IDWT53 (lossless)" Idwt_cores.idwt53_systemc Idwt_cores.idwt53_reference;
    synth "IDWT97 (lossy)" Idwt_cores.idwt97_systemc Idwt_cores.idwt97_reference;
  ]

let table2 () =
  let rows = table2_rows () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 2 - RTL synthesis results of the IDWT (Virtex-4 area/timing model)\n\n";
  let metric_rows (r : table2_row) =
    [
      [ "  slice flip-flops"; string_of_int r.fossy_area.Rtl.Area.flip_flops;
        string_of_int r.ref_area.Rtl.Area.flip_flops ];
      [ "  4-input LUTs"; string_of_int r.fossy_area.Rtl.Area.luts;
        string_of_int r.ref_area.Rtl.Area.luts ];
      [ "  FF before value analysis";
        string_of_int r.fossy_unopt_area.Rtl.Area.flip_flops; "-" ];
      [ "  LUTs before value analysis";
        string_of_int r.fossy_unopt_area.Rtl.Area.luts; "-" ];
      [ "  occupied slices"; string_of_int r.fossy_area.Rtl.Area.slices;
        string_of_int r.ref_area.Rtl.Area.slices ];
      [ "  total equivalent gates"; string_of_int r.fossy_area.Rtl.Area.gates;
        string_of_int r.ref_area.Rtl.Area.gates ];
      [ "  estimated frequency [MHz]"; Printf.sprintf "%.1f" r.fossy_mhz;
        Printf.sprintf "%.1f" r.ref_mhz ];
      [ "  VHDL lines of code"; string_of_int r.fossy_vhdl_loc;
        string_of_int r.ref_vhdl_loc ];
      [ "  SystemC model lines of code"; string_of_int r.systemc_loc; "-" ];
    ]
  in
  List.iter
    (fun r ->
      Buffer.add_string buf (r.core ^ ":\n");
      Buffer.add_string buf
        (Osss.Report.render ~header:[ "metric"; "FOSSY"; "reference" ] (metric_rows r));
      let slice_ratio =
        float_of_int r.fossy_area.Rtl.Area.slices
        /. float_of_int r.ref_area.Rtl.Area.slices
      in
      Buffer.add_string buf
        (Printf.sprintf "  -> FOSSY/reference: area %+.1f %%, frequency %+.1f %%\n\n"
           ((slice_ratio -. 1.0) *. 100.0)
           ((r.fossy_mhz /. r.ref_mhz -. 1.0) *. 100.0)))
    rows;
  Buffer.contents buf

let relations_report ?payload () =
  let lossless, lossy = table1_results ?payload () in
  let checks = Experiment.paper_relations lossless lossy in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Paper claims vs simulated results:\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s\n        %s\n"
           (if c.Experiment.holds then "ok" else "FAIL")
           c.Experiment.relation c.Experiment.detail))
    checks;
  Buffer.contents buf
