type mode = Jpeg2000.Codestream.mode

type stage = Arith_decode | Iq | Idwt | Ict | Dc_shift

type stage_times = {
  t_decode : Sim.Sim_time.t;
  t_iq : Sim.Sim_time.t;
  t_idwt : Sim.Sim_time.t;
  t_ict : Sim.Sim_time.t;
  t_dc_shift : Sim.Sim_time.t;
}

let tiles = 16
let components = 3
let clock_hz = 100_000_000

(* Figure 1 of the paper. *)
let shares mode =
  match mode with
  | Jpeg2000.Codestream.Lossless ->
    [ (Arith_decode, 88.8); (Iq, 3.2); (Idwt, 5.5); (Ict, 0.7); (Dc_shift, 1.8) ]
  | Jpeg2000.Codestream.Lossy ->
    [ (Arith_decode, 78.6); (Iq, 4.2); (Idwt, 12.4); (Ict, 1.2); (Dc_shift, 3.6) ]

let stage_name = function
  | Arith_decode -> "arith-decode"
  | Iq -> "IQ"
  | Idwt -> "IDWT"
  | Ict -> "ICT"
  | Dc_shift -> "DC-shift"

(* The decoder stage is pinned at the paper's 180 ms/tile; the other
   stages follow from the Figure 1 shares. *)
let decode_ms = 180.0

let share_of mode stage = List.assoc stage (shares mode)

let stage_ms mode stage =
  decode_ms *. share_of mode stage /. share_of mode Arith_decode

let sw mode =
  let t stage = Sim.Sim_time.of_ms_float (stage_ms mode stage) in
  {
    t_decode = t Arith_decode;
    t_iq = t Iq;
    t_idwt = t Idwt;
    t_ict = t Ict;
    t_dc_shift = t Dc_shift;
  }

(* Deterministic per-tile spread of the decode time (±15 % — tiles
   compress differently). The table is a permutation of 0..15, so
   the workload total is exactly 16 x 180 ms, and every aligned
   4-tile stripe sums to the mean, so the four decoder tasks of
   versions 4/5/7 carry equal loads (as the static image partitioning
   of the case-study intends) while hitting the Shared Object at
   different times. *)
let decode_spread = [| 0; 15; 7; 8; 12; 3; 11; 4; 14; 1; 6; 9; 5; 10; 2; 13 |]

let sw_decode_time mode ~tile =
  let s = decode_spread.(tile mod tiles) in
  let factor = 0.85 +. (0.3 *. float_of_int s /. float_of_int (tiles - 1)) in
  Osss.Eet.scaled factor (sw mode).t_decode

let sw_total_per_tile mode =
  let s = sw mode in
  List.fold_left Sim.Sim_time.add Sim.Sim_time.zero
    [ s.t_decode; s.t_iq; s.t_idwt; s.t_ict; s.t_dc_shift ]

(* Calibration: the paper reports HW IDWT 12x (lossless) / 16x
   (lossy) faster than SW even after VTA refinement, and refinement
   costs up to a factor 8 — which pins the Application-Layer
   acceleration at roughly 60x / 80x. *)
let hw_acceleration = function
  | Jpeg2000.Codestream.Lossless -> 60.0
  | Jpeg2000.Codestream.Lossy -> 80.0

let hw mode =
  let s = sw mode in
  let accel = 1.0 /. hw_acceleration mode in
  {
    s with
    t_iq = Osss.Eet.scaled accel s.t_iq;
    t_idwt = Osss.Eet.scaled accel s.t_idwt;
  }

(* One full-resolution tile: 128x128 luminance plus two half-size
   chroma components; one 32-bit word per reversible coefficient, two
   per irreversible (double-precision) coefficient. *)
let nominal_tile_words = function
  | Jpeg2000.Codestream.Lossless -> (128 * 128) + (2 * 64 * 64)
  | Jpeg2000.Codestream.Lossy -> 2 * ((128 * 128) + (2 * 64 * 64))

(* Per-access scheduling cost the OSSS run-time charges a software
   client of a Shared Object. Request-queue and guard management grow
   super-linearly with the client count (every access re-evaluates
   the other clients' pending guards), modelled quadratically:
   900 cycles x clients^2 at 100 MHz — 9 us for a private object,
   ~144 us at 4 clients, ~441 us at the 7-client object of version 5.
   Hardware blocks reach the object through dedicated ports and do
   not pay it. *)
let so_grant_overhead ~clients =
  Sim.Sim_time.cycles ~hz:clock_hz (900 * clients * clients)

(* Per-tile IDWT service deadline: twice the software IDWT time. The
   slowest clean IDWT path of any model version (version 1's software
   filter) meets it with 100 % margin, so a miss indicates genuine
   distress — fault-induced retransmissions or stall jitter. *)
let idwt_deadline mode = Osss.Eet.scaled 2.0 (sw mode).t_idwt
