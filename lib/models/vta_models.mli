(** The Virtual-Target-Architecture models (Table 1, lower half).

    The behavioural structures of versions 3 and 5 refined onto the
    ML401 platform: Software Tasks mapped onto 100 MHz MicroBlaze
    processors, tile payloads serialised into 32-bit words, the
    HW/SW Shared Object's arrays inserted into a 32-bit × 16-bit
    block RAM, and the communication links mapped per model:

    - 6a: version 3; every link to the HW/SW SO on the shared OPB;
    - 6b: version 3; the IDWT blocks reach the HW/SW SO over
      dedicated point-to-point channels instead;
    - 7a: version 5 (4 MicroBlazes), all HW/SW SO links on the OPB;
    - 7b: version 5 with the IDWT point-to-point channels of 6b. *)

val run_custom :
  ?bus_max_burst:int ->
  ?so_policy:Osss.Arbiter.policy ->
  ?protection:Osss.Channel.protection ->
  ?idwt_deadline:Sim.Sim_time.t ->
  version:string ->
  sw_tasks:int ->
  idwt_p2p:bool ->
  Workload.t ->
  Outcome.t
(** Parameterised VTA run for architecture exploration (the
    [bus_contention] example sweeps the OPB burst length with it).
    [protection] (default [Unprotected]) is applied to every channel
    of the rig — the hardened-RMI mode of the fault campaigns;
    [idwt_deadline] overrides the per-tile IDWT deadline monitor. *)

val v6a : Workload.t -> Outcome.t
val v6b : Workload.t -> Outcome.t
val v7a : Workload.t -> Outcome.t
val v7b : Workload.t -> Outcome.t

val mapping : sw_tasks:int -> idwt_p2p:bool -> Osss.Vta.t
(** The declarative VTA mapping registry for the given configuration
    (validated; used by platform generation and shown by the CLI). *)
