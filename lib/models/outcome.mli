(** Result of one system-model run (one Table 1 cell pair). *)

type resilience = {
  deadline_misses : int;
      (** IDWT service intervals that overran {!Profile.idwt_deadline}
          (counted via [Osss.Eet.ret_check], never raising) *)
  crc_errors : int;  (** protected frames that arrived corrupted *)
  retries : int;  (** channel retransmissions performed *)
  giveups : int;  (** transfers abandoned after the retry budget *)
  retry_ms : float;  (** simulated time spent inside recovery *)
  concealed_blocks : int;  (** code blocks concealed by the decoder *)
  concealed_tiles : int;  (** tiles concealed whole *)
}

val clean : resilience
(** All-zero counters — what every run without fault injection must
    report. *)

val is_clean : resilience -> bool

type t = {
  version : string;  (** "1", "2", ..., "6a", "7b" *)
  mode : Profile.mode;
  decode_ms : float;  (** total decoding time for the 16-tile workload *)
  idwt_ms : float;  (** union of IDWT activity intervals *)
  idwt_calls : int;
  functional_ok : bool option;
      (** [Some true] when the payload decoded bit-identically to the
          reference decoder; [None] for timing-only runs *)
  resilience : resilience;
  telemetry : Telemetry.Report.t;
      (** Resource metrics collected during the run —
          {!Telemetry.Report.empty} when no sink was installed. *)
}

val speedup_vs : t -> t -> float
(** [speedup_vs baseline r]: how much faster [r] decodes. *)

val idwt_speedup_vs : t -> t -> float

val mode_string : Profile.mode -> string
val resilience_to_json : resilience -> Telemetry.Json.t
val to_json : t -> Telemetry.Json.t

val pp_resilience : Format.formatter -> resilience -> unit
val pp : Format.formatter -> t -> unit
