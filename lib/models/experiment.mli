(** Experiment driver: run any model version by name and check the
    qualitative relations the paper reports. *)

type version = V1 | V2 | V3 | V4 | V5 | V6a | V6b | V7a | V7b

val all_versions : version list
val version_name : version -> string
val version_of_name : string -> version option

val run_workload :
  ?protection:Osss.Channel.protection ->
  ?idwt_deadline:Sim.Sim_time.t ->
  version ->
  Workload.t ->
  Outcome.t
(** Run one model version on an existing (possibly corrupted)
    workload. [protection] hardens every VTA channel (ignored by the
    Application-Layer versions, whose links are direct calls). *)

val run : ?payload:bool -> ?pool:Par.Pool.t -> version -> Profile.mode -> Outcome.t
(** Runs the 16-tile, 3-component workload on the given model.
    [payload] (default true) carries the real image data through the
    stages and verifies the decode bit-exactly. [pool] parallelises
    the payload decode inside the workload (bit-identical results). *)

val run_many :
  ?payload:bool -> ?pool:Par.Pool.t -> version list -> Profile.mode -> Outcome.t list
(** Runs each listed version on its own freshly made workload,
    fanning the versions out over [pool] (simulations are independent;
    telemetry and fault state are domain-local). Outcomes are in list
    order and identical to running the versions sequentially. *)

val run_all : ?payload:bool -> ?pool:Par.Pool.t -> Profile.mode -> Outcome.t list
(** All nine versions, in Table 1 order. *)

type relation_check = { relation : string; holds : bool; detail : string }

val paper_relations : Outcome.t list -> Outcome.t list -> relation_check list
(** [paper_relations lossless lossy] evaluates the orderings and
    factors the paper's text states (v2 ≈ +10/19 %, v3 < v2, v4 ≈
    4.5/5×, v5 slower than v4, IDWT inflation ≤ 8× from 3 to 6a,
    6b = 7b, 7a > 6a, HW IDWT 12/16× vs software). Each list must be
    the output of {!run_all}. *)
