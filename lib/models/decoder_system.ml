type comm = Direct | Rmi of Osss.Channel.transport

type rig = {
  link_sw : int -> comm;
  link_idwt : comm;
  link_params : comm;
  map_task : int -> Osss.Sw_task.t -> unit;
  coeff_buffer_pass : words:int -> Sim.Sim_time.t;
  payload_words : int;
  sw_grant_overhead : clients:int -> Sim.Sim_time.t;
  transports : Osss.Channel.transport list;
}

let application_rig =
  {
    link_sw = (fun _ -> Direct);
    link_idwt = Direct;
    link_params = Direct;
    map_task = (fun _ _ -> ());
    coeff_buffer_pass = (fun ~words:_ -> Sim.Sim_time.zero);
    payload_words = 0;
    sw_grant_overhead = (fun ~clients -> Profile.so_grant_overhead ~clients);
    transports = [];
  }

(* One method invocation over a (possibly refined) communication
   link. [pad] adds the full-resolution payload transfer a refined
   data-carrying call performs on top of its control words. *)
let invoke comm so client ?guard ?eet ~name ?(pad = 0) body arg =
  match comm with
  | Direct -> (
    let wrapped state = body state arg in
    match guard with
    | None -> Osss.Shared_object.call so client ?eet wrapped
    | Some g -> Osss.Shared_object.call_guarded so client ~guard:g ?eet wrapped)
  | Rmi transport ->
    let execution_time =
      match eet with Some t -> Some (fun _ -> t) | None -> None
    in
    let m =
      Osss.Channel.rmi_method ~name ~args:Osss.Serialisation.int
        ~ret:Osss.Serialisation.int ?execution_time
        (fun state a -> body state a)
    in
    let result =
      match guard with
      | None -> Osss.Channel.rmi_call transport so client m arg
      | Some g -> Osss.Channel.rmi_call_guarded transport so client ~guard:g m arg
    in
    if pad > 0 then Osss.Channel.payload_transfer transport ~words:pad;
    result

(* -- run scaffolding ------------------------------------------------ *)

(* Per-run deadline monitor: wraps each IDWT service interval in
   [Eet.ret_check] against the per-tile deadline — counting misses
   without consuming simulated time, so a clean run's timing is
   untouched. *)
type monitor = { deadline : Sim.Sim_time.t; mutable misses : int }

let make_monitor ?deadline mode =
  {
    deadline =
      (match deadline with
      | Some d -> d
      | None -> Profile.idwt_deadline mode);
    misses = 0;
  }

let monitored mon f =
  let v, held = Osss.Eet.ret_check ~label:"idwt" mon.deadline f in
  if not held then mon.misses <- mon.misses + 1;
  v

(* Decoder-stage span on the running process's track. The "idwt" span
   deliberately wraps the same region as [monitored]/[Meter.measure],
   so the union of "idwt" spans in a trace equals the outcome's
   [idwt_ms] — the telemetry tests assert on this. *)
let stage kernel name f =
  if not (Telemetry.Sink.enabled ()) then f ()
  else begin
    let ts_ps = Sim.Sim_time.to_ps (Sim.Kernel.now kernel) in
    let result = f () in
    let now_ps = Sim.Sim_time.to_ps (Sim.Kernel.now kernel) in
    Telemetry.Span.complete ~ts_ps ~dur_ps:(now_ps - ts_ps) ~cat:"stage" name;
    result
  end

let finish ~version ~kernel ~workload ~meter ?(monitor = None)
    ?(transports = []) () =
  let crc_errors = ref 0 and retries = ref 0 and giveups = ref 0 in
  let retry_time = ref Sim.Sim_time.zero in
  List.iter
    (fun tr ->
      let s = Osss.Channel.stats tr in
      crc_errors := !crc_errors + s.Osss.Channel.crc_errors;
      retries := !retries + s.Osss.Channel.retries;
      giveups := !giveups + s.Osss.Channel.giveups;
      retry_time := Sim.Sim_time.add !retry_time s.Osss.Channel.retry_time)
    transports;
  let telemetry =
    match Telemetry.Sink.active () with
    | None -> Telemetry.Report.empty
    | Some sink ->
      Telemetry.Sink.set_gauge "kernel.delta_cycles"
        (Sim.Kernel.delta_count kernel);
      Telemetry.Sink.set_gauge "kernel.time_advances"
        (Sim.Kernel.time_advances kernel);
      Telemetry.Sink.report sink
  in
  {
    Outcome.version;
    mode = Workload.mode workload;
    decode_ms = Sim.Sim_time.to_float_ms (Sim.Kernel.now kernel);
    idwt_ms = Meter.busy_ms meter;
    idwt_calls = Meter.count meter;
    functional_ok = Workload.check workload;
    resilience =
      {
        Outcome.deadline_misses =
          (match monitor with Some m -> m.misses | None -> 0);
        crc_errors = !crc_errors;
        retries = !retries;
        giveups = !giveups;
        retry_ms = Sim.Sim_time.to_float_ms !retry_time;
        concealed_blocks = Workload.concealed_blocks workload;
        concealed_tiles = Workload.concealed_tiles workload;
      };
    telemetry;
  }

let partition ~sw_tasks ~tiles task =
  (* Contiguous slices, remainder to the first tasks. *)
  let base = tiles / sw_tasks and extra = tiles mod sw_tasks in
  let start = (task * base) + Stdlib.min task extra in
  let count = base + (if task < extra then 1 else 0) in
  List.init count (fun j -> start + j)

(* -- version 1: software only --------------------------------------- *)

let run_sw_only ~version ?idwt_deadline w =
  let kernel = Sim.Kernel.create () in
  (* Any same-delta conflicting signal write in a decoder model is a
     modelling bug; fault immediately rather than record. *)
  Sim.Kernel.set_race_policy kernel Sim.Kernel.Race_raise;
  let meter = Meter.create kernel in
  let mon = make_monitor ?deadline:idwt_deadline (Workload.mode w) in
  let times = Profile.sw (Workload.mode w) in
  let _task =
    Osss.Sw_task.create kernel ~name:"decoder" (fun task ->
        for i = 0 to Workload.tile_count w - 1 do
          stage kernel "decode" (fun () ->
              Osss.Sw_task.eet task
                (Profile.sw_decode_time (Workload.mode w) ~tile:i) (fun () ->
                  Workload.stage_decode w i));
          stage kernel "iq" (fun () ->
              Osss.Sw_task.eet task times.Profile.t_iq (fun () ->
                  Workload.stage_iq w i));
          stage kernel "idwt" (fun () ->
              monitored mon (fun () ->
                  Meter.measure meter (fun () ->
                      Osss.Sw_task.eet task times.Profile.t_idwt (fun () ->
                          Workload.stage_idwt w i))));
          stage kernel "ict" (fun () ->
              Osss.Sw_task.eet task times.Profile.t_ict (fun () ->
                  Workload.stage_ict_dc w i));
          stage kernel "dc_shift" (fun () ->
              Osss.Sw_task.consume task times.Profile.t_dc_shift)
        done)
  in
  Sim.Kernel.run kernel;
  finish ~version ~kernel ~workload:w ~meter ~monitor:(Some mon) ()

(* -- versions 2 and 4: blocking IQ+IDWT co-processor ----------------- *)

let run_coprocessor ~version ~sw_tasks ?(rig = fun _ -> application_rig)
    ?idwt_deadline w =
  let kernel = Sim.Kernel.create () in
  Sim.Kernel.set_race_policy kernel Sim.Kernel.Race_raise;
  let rig = rig kernel in
  let meter = Meter.create kernel in
  let mode = Workload.mode w in
  let mon = make_monitor ?deadline:idwt_deadline mode in
  let sw_times = Profile.sw mode and hw_times = Profile.hw mode in
  let so =
    Osss.Shared_object.create kernel ~name:"iq_idwt_coproc"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      ()
  in
  for t = 0 to sw_tasks - 1 do
    let client =
      Osss.Shared_object.register_client so ~name:(Printf.sprintf "sw%d" t)
        ~overhead:(rig.sw_grant_overhead ~clients:sw_tasks)
        ()
    in
    let comm = rig.link_sw t in
    let tiles = partition ~sw_tasks ~tiles:(Workload.tile_count w) t in
    let task =
      Osss.Sw_task.create kernel ~name:(Printf.sprintf "decoder%d" t)
        (fun task ->
          List.iter
            (fun i ->
              stage kernel "decode" (fun () ->
                  Osss.Sw_task.eet task
                    (Profile.sw_decode_time mode ~tile:i) (fun () ->
                      Workload.stage_decode w i));
              stage kernel "iq" (fun () ->
                  ignore
                    (invoke comm so client ~eet:hw_times.Profile.t_iq
                       ~name:"iq" ~pad:rig.payload_words
                       (fun () j ->
                         Workload.stage_iq w j;
                         j)
                       i));
              stage kernel "idwt" (fun () ->
                  monitored mon (fun () ->
                      Meter.measure meter (fun () ->
                          ignore
                            (invoke comm so client
                               ~eet:hw_times.Profile.t_idwt ~name:"idwt"
                               ~pad:rig.payload_words
                               (fun () j ->
                                 Workload.stage_idwt w j;
                                 j)
                               i))));
              stage kernel "ict" (fun () ->
                  Osss.Sw_task.eet task sw_times.Profile.t_ict (fun () ->
                      Workload.stage_ict_dc w i));
              stage kernel "dc_shift" (fun () ->
                  Osss.Sw_task.consume task sw_times.Profile.t_dc_shift))
            tiles)
    in
    rig.map_task t task
  done;
  Sim.Kernel.run kernel;
  finish ~version ~kernel ~workload:w ~meter ~monitor:(Some mon)
    ~transports:rig.transports ()

(* -- versions 3/5 and their VTA refinements: pipelined structure ----- *)

(* HW/SW Shared Object: carries tiles between SW and the IDWT blocks
   and implements the IQ algorithm. *)
type hwsw_state = { pending : int Queue.t; ready : int Queue.t }

(* IDWT-params Shared Object: parameter exchange and arbitration
   between the three IDWT components. *)
type params_state = {
  requests : (int * int) Queue.t; (* tile, filter tag (0 = 5/3, 1 = 9/7) *)
  finished : int Queue.t;
}

let queue_exists q pred = Queue.fold (fun acc x -> acc || pred x) false q

let run_pipeline ~version ~sw_tasks ?(rig = fun _ -> application_rig)
    ?(so_policy = Osss.Arbiter.Fcfs) ?idwt_deadline w =
  let kernel = Sim.Kernel.create () in
  Sim.Kernel.set_race_policy kernel Sim.Kernel.Race_raise;
  let rig = rig kernel in
  let meter = Meter.create kernel in
  let mode = Workload.mode w in
  let mon = make_monitor ?deadline:idwt_deadline mode in
  let sw_times = Profile.sw mode and hw_times = Profile.hw mode in
  let tile_count = Workload.tile_count w in
  let filter_tag =
    match mode with Jpeg2000.Codestream.Lossless -> 0 | Jpeg2000.Codestream.Lossy -> 1
  in
  (* 7 clients in the 4-task configuration, 4 in the 1-task one —
     the client counts the paper quotes for versions 5 and 3. *)
  let hwsw_clients = sw_tasks + 3 in
  let hwsw =
    Osss.Shared_object.create kernel ~name:"hwsw_so"
      ~arbiter:(Osss.Arbiter.create so_policy)
      { pending = Queue.create (); ready = Queue.create () }
  in
  let params =
    Osss.Shared_object.create kernel ~name:"idwt_params_so"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      { requests = Queue.create (); finished = Queue.create () }
  in
  (* --- software side ------------------------------------------------ *)
  for t = 0 to sw_tasks - 1 do
    let client =
      Osss.Shared_object.register_client hwsw ~name:(Printf.sprintf "sw%d" t)
        ~overhead:(rig.sw_grant_overhead ~clients:hwsw_clients)
        ()
    in
    let comm = rig.link_sw t in
    let tiles = partition ~sw_tasks ~tiles:tile_count t in
    let task =
      Osss.Sw_task.create kernel ~name:(Printf.sprintf "decoder%d" t)
        (fun task ->
          (* Phase 1: decode tiles, feeding the hardware pipeline. *)
          List.iter
            (fun i ->
              stage kernel "decode" (fun () ->
                  Osss.Sw_task.eet task
                    (Profile.sw_decode_time mode ~tile:i) (fun () ->
                      Workload.stage_decode w i));
              ignore
                (invoke comm hwsw client ~name:"put_pending"
                   ~pad:rig.payload_words
                   (fun st j ->
                     Queue.push j st.pending;
                     j)
                   i))
            tiles;
          (* Phase 2: collect finished tiles (any order), ICT + DC. *)
          List.iter
            (fun _ ->
              let j =
                invoke comm hwsw client ~name:"take_ready"
                  ~guard:(fun st -> not (Queue.is_empty st.ready))
                  ~pad:rig.payload_words
                  (fun st _ -> Queue.pop st.ready)
                  0
              in
              stage kernel "ict" (fun () ->
                  Osss.Sw_task.eet task sw_times.Profile.t_ict (fun () ->
                      Workload.stage_ict_dc w j));
              stage kernel "dc_shift" (fun () ->
                  Osss.Sw_task.consume task sw_times.Profile.t_dc_shift))
            tiles)
    in
    rig.map_task t task
  done;
  (* --- hardware side ------------------------------------------------ *)
  let idwt2d_client =
    Osss.Shared_object.register_client hwsw ~name:"idwt2d" ()
  in
  let filter_clients =
    Array.init 2 (fun tag ->
        Osss.Shared_object.register_client hwsw
          ~name:(if tag = 0 then "idwt53" else "idwt97")
          ())
  in
  let params_control =
    Osss.Shared_object.register_client params ~name:"idwt2d" ()
  in
  let params_filters =
    Array.init 2 (fun tag ->
        Osss.Shared_object.register_client params
          ~name:(if tag = 0 then "idwt53" else "idwt97")
          ())
  in
  let idwt2d = Osss.Hw_module.create kernel ~name:"idwt2d" ~clock_hz:Profile.clock_hz () in
  Osss.Hw_module.add_process idwt2d ~name:"control" (fun () ->
      for _ = 1 to tile_count do
        (* Take a decoded tile; the IQ algorithm runs inside the
           Shared Object. *)
        let i =
          stage kernel "iq" (fun () ->
              invoke rig.link_idwt hwsw idwt2d_client ~name:"take_pending"
                ~guard:(fun st -> not (Queue.is_empty st.pending))
                ~eet:hw_times.Profile.t_iq
                (fun st _ ->
                  let j = Queue.pop st.pending in
                  Workload.stage_iq w j;
                  j)
                0)
        in
        (* Hand the tile to the mode's filter bank via the params SO. *)
        ignore
          (invoke rig.link_params params params_control ~name:"put_params"
             (fun st j ->
               Queue.push (j, filter_tag) st.requests;
               j)
             i);
        let j =
          invoke rig.link_params params params_control ~name:"take_finished"
            ~guard:(fun st -> not (Queue.is_empty st.finished))
            (fun st _ -> Queue.pop st.finished)
            0
        in
        ignore
          (invoke rig.link_idwt hwsw idwt2d_client ~name:"put_ready"
             (fun st k ->
               Queue.push k st.ready;
               k)
             j)
      done);
  let spawn_filter tag =
    let name = if tag = 0 then "idwt53" else "idwt97" in
    let m = Osss.Hw_module.create kernel ~name ~clock_hz:Profile.clock_hz () in
    Osss.Hw_module.add_process m ~name:"filter" (fun () ->
        let expected = if tag = filter_tag then tile_count else 0 in
        for _ = 1 to expected do
          let i =
            invoke rig.link_params params params_filters.(tag)
              ~name:"take_params"
              ~guard:(fun st -> queue_exists st.requests (fun (_, t') -> t' = tag))
              (fun st _ ->
                let j, _ = Queue.pop st.requests in
                j)
              0
          in
          stage kernel "idwt" (fun () ->
              monitored mon (fun () ->
                  Meter.measure meter (fun () ->
                      (* Stream coefficients out of the HW/SW object,
                         run the lifting passes over the local working
                         memory, store the spatial result back. *)
                      ignore
                        (invoke rig.link_idwt hwsw filter_clients.(tag)
                           ~name:"get_coefficients" ~pad:rig.payload_words
                           (fun _ j -> j)
                           i);
                      Osss.Eet.consume
                        (rig.coeff_buffer_pass ~words:rig.payload_words);
                      Osss.Eet.consume hw_times.Profile.t_idwt;
                      Workload.stage_idwt w i;
                      ignore
                        (invoke rig.link_idwt hwsw filter_clients.(tag)
                           ~name:"put_spatial" ~pad:rig.payload_words
                           (fun _ j -> j)
                           i))));
          ignore
            (invoke rig.link_params params params_filters.(tag)
               ~name:"put_finished"
               (fun st j ->
                 Queue.push j st.finished;
                 j)
               i)
        done)
  in
  spawn_filter 0;
  spawn_filter 1;
  Sim.Kernel.run kernel;
  finish ~version ~kernel ~workload:w ~meter ~monitor:(Some mon)
    ~transports:rig.transports ()
