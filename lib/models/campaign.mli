(** Fault-injection campaign over the nine decoder models.

    Sweeps a fault-rate knob across model versions, coupling three
    fault surfaces per rate [r]: channel frame corruption at [r]
    (bit flips, word drops at [r/8]), entropy-payload byte corruption
    at [r/4], and processor stall jitter at [r]. Channels run in the
    configured {!Osss.Channel.protection} mode, so the table shows
    the cost of recovery (decode-time inflation from retransmissions)
    and of concealment (PSNR impact) side by side, plus the point
    where the retry budget breaks and the run aborts.

    Determinism: the campaign seed, the per-run seed derivation, the
    simulation kernel and the {!Faults.Rng} stream are all
    deterministic — two runs of the same config render identical
    tables (asserted by the CI smoke step). *)

type config = {
  seed : int;
  rates : float list;  (** swept fault rates; [0.0] = seed baseline *)
  mode : Profile.mode;
  versions : Experiment.version list;
  protection : Osss.Channel.protection;
}

val default :
  ?seed:int ->
  ?rates:float list ->
  ?mode:Profile.mode ->
  ?versions:Experiment.version list ->
  ?protection:Osss.Channel.protection ->
  unit ->
  config
(** Seed 2008, rates [0; 0.001; 0.01; 0.05], lossless, all nine
    versions, CRC/retry protection with default budget. *)

type row = {
  row_version : string;
  row_rate : float;
  row_result : (Outcome.t, string) result;
      (** [Error] when the run aborted (retry budget exhausted or an
          unrecovered corruption broke the model's stage protocol) *)
  row_inflation : float;  (** decode time vs the clean unprotected run *)
  row_psnr_db : float;  (** concealment fidelity vs the clean decode *)
}

val run : ?pool:Par.Pool.t -> config -> row list
(** One run per (version, rate), version-major order. The zero-rate
    run is the unfaulted, unprotected seed configuration — the
    baseline for every inflation factor. Grid points fan out over
    [pool]; per-run seeds are pure functions of the grid position and
    fault/telemetry state is domain-local, so the rows are identical
    on any pool. *)

val render : config -> row list -> string
(** The resilience table. *)

(** {1 Ingest-fault sweep}

    The second fault axis: damage on the byte-arrival path rather
    than inside the platform. One rate knob couples chunk loss (at
    the rate), duplication (rate/2), bounded reordering (rate) and
    head-of-line stall jitter (2x rate, up to 2 ms) on every
    request's delivery into the decode service; the swept table shows
    when streams stop landing before their deadlines and what the
    deadline flushes cost in concealment and PSNR. Deterministic like
    the main campaign: per-request ingest seeds are pure hashes, so
    equal seeds render equal tables on any pool. *)

type ingest_row = { ing_rate : float; ing_report : Serve.Service.report }

val run_ingest :
  ?pool:Par.Pool.t ->
  ?seed:int ->
  ?rates:float list ->
  ?mode:Profile.mode ->
  ?streams:int ->
  unit ->
  ingest_row list
(** One service run per rate over a [streams]-codestream corpus
    (default 2) and a fixed open-loop workload whose 20 ms deadline
    clears a fault-free delivery — every flush is attributable to the
    injected faults. Defaults: seed 2008, rates [0; 0.01; 0.05; 0.2],
    lossless. *)

val render_ingest : ingest_row list -> string
val ingest_to_json : ingest_row list -> Telemetry.Json.t

(** {1 Fleet scaling sweep}

    The scaling axis: one fixed open-loop workload served by sharded
    decode fleets over a (replica count x shared-L2 size) grid, with
    autoscaling pinned off (min = max) so each row isolates one grid
    point. The workload saturates the single-replica fleet; the table
    shows rejections falling and tail latency recovering as replicas
    are added, and what the shared tile cache buys at each scale.
    Deterministic: equal seeds render equal tables on any pool. *)

type fleet_row = { fl_replicas : int; fl_l2 : int; fl_report : Fleet.report }

val run_fleet :
  ?pool:Par.Pool.t ->
  ?seed:int ->
  ?replicas:int list ->
  ?l2_sizes:int list ->
  ?mode:Profile.mode ->
  ?streams:int ->
  unit ->
  fleet_row list
(** One fleet run per (replicas, l2) grid point, replicas-major
    order. Defaults: seed 2008, replicas [1; 2; 4; 8], L2 sizes
    [0; 256] (0 = tier disabled), lossless, a 6-codestream corpus,
    and a small (16-tile) per-replica L1 so the L2 column measures
    sharing rather than private-cache capacity. *)

val render_fleet : fleet_row list -> string
val fleet_to_json : fleet_row list -> Telemetry.Json.t

val row_to_json : row -> Telemetry.Json.t

val to_json : config -> row list -> Telemetry.Json.t
(** The whole campaign as one JSON document (non-finite inflation and
    PSNR values become [null] / ["inf"]). *)
