(** Regeneration of the paper's figures and tables as printable text. *)

val figure1 : ?payload:bool -> unit -> string
(** Figure 1: per-stage share of the software-only decoding time,
    lossless and lossy, measured from the version-1 model. *)

val table1 : ?payload:bool -> unit -> string
(** Table 1: decoding time and IDWT time for the 16-tile, 3-component
    workload, versions 1–5 (Application Layer) and 6a–7b (VTA Layer),
    plus the derived speed-up factors the paper quotes in the text. *)

val table1_results :
  ?payload:bool -> unit -> Outcome.t list * Outcome.t list
(** The raw outcomes (lossless, lossy) behind {!table1}. *)

val table2 : unit -> string
(** Table 2: RTL synthesis results of the IDWT cores — FOSSY output
    vs hand-crafted reference — plus the lines-of-code comparison of
    Section 4. *)

type table2_row = {
  core : string;  (** "IDWT53" / "IDWT97" *)
  fossy_area : Rtl.Area.report;
  fossy_unopt_area : Rtl.Area.report;
      (** area of the straight inline → FSM flow, before the
          value-analysis optimiser (equals [fossy_area] when no
          optimiser is installed) *)
  fossy_mhz : float;
  fossy_vhdl_loc : int;
  systemc_loc : int;
  ref_area : Rtl.Area.report;
  ref_mhz : float;
  ref_vhdl_loc : int;
}

val table2_rows : unit -> table2_row list

val relations_report : ?payload:bool -> unit -> string
(** The paper's textual claims evaluated against the simulated
    results ({!Experiment.paper_relations}). *)
