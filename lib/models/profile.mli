(** Back-annotated execution-time profile of the JPEG 2000 decoder.

    OSSS annotates behaviour with profiled execution times; lacking
    the paper's MicroBlaze testbed we back-annotate from the numbers
    the paper publishes: the arithmetic decoder takes ≈180 ms per
    tile in software, and Figure 1 gives each stage's share of the
    total (lossless: 88.8 / 3.2 / 5.5 / 0.7 / 1.8 %, lossy:
    78.6 / 4.2 / 12.4 / 1.2 / 3.6 % for decoder / IQ / IDWT / ICT /
    DC shift). All times are per tile of the 16-tile, 3-component
    workload Table 1 uses. *)

type mode = Jpeg2000.Codestream.mode

type stage = Arith_decode | Iq | Idwt | Ict | Dc_shift

type stage_times = {
  t_decode : Sim.Sim_time.t;
  t_iq : Sim.Sim_time.t;
  t_idwt : Sim.Sim_time.t;
  t_ict : Sim.Sim_time.t;
  t_dc_shift : Sim.Sim_time.t;
}

val tiles : int
(** 16, as in Table 1. *)

val components : int
(** 3, as in Table 1. *)

val clock_hz : int
(** 100 MHz — both MicroBlaze and OPB on the ML401. *)

val sw : mode -> stage_times
(** Per-tile software execution times on the target processor
    (workload means). *)

val sw_decode_time : mode -> tile:int -> Sim.Sim_time.t
(** Arithmetic-decode EET of one specific tile. Tiles compress
    differently, so decode times vary deterministically around the
    180 ms mean (±15 %); the 16-tile total equals
    [16 * (sw mode).t_decode]. *)

val sw_total_per_tile : mode -> Sim.Sim_time.t

val shares : mode -> (stage * float) list
(** Figure 1's percentages. *)

val stage_name : stage -> string

val hw_acceleration : mode -> float
(** Speed-up of the IQ/IDWT hardware implementation over software on
    the Application Layer (no communication cost). Calibrated so that
    after VTA refinement the HW IDWT retains the paper's 12×/16×
    advantage over software while the refinement itself costs up to
    8×. *)

val hw : mode -> stage_times
(** {!sw} with IQ and IDWT accelerated by {!hw_acceleration}
    (decode/ICT/DC unchanged — they stay in software). *)

val nominal_tile_words : mode -> int
(** Bus words of one full-resolution tile (all components) — the
    serialised payload a VTA channel carries per tile transfer. The
    lossy path moves twice as many words because its coefficients are
    doubles. *)

val so_grant_overhead : clients:int -> Sim.Sim_time.t
(** Scheduling overhead a {e software} client pays per Shared-Object
    access on the Application Layer; grows quadratically with the
    object's client count. This is the "increased working load and
    arbitration overhead of the HW/SW SO with seven clients" that
    makes version 5 slightly slower than version 4. After VTA
    refinement the arbitration is part of the physical channel model
    and this abstract annotation disappears. *)

val idwt_deadline : mode -> Sim.Sim_time.t
(** Per-tile deadline on the IDWT service interval checked with
    {!Osss.Eet.ret_check} in every model: twice the software IDWT
    time, so every clean run holds it with 100 % margin and misses
    only appear under fault injection. *)
