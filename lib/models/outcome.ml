type resilience = {
  deadline_misses : int;
  crc_errors : int;
  retries : int;
  giveups : int;
  retry_ms : float;
  concealed_blocks : int;
  concealed_tiles : int;
}

let clean =
  {
    deadline_misses = 0;
    crc_errors = 0;
    retries = 0;
    giveups = 0;
    retry_ms = 0.0;
    concealed_blocks = 0;
    concealed_tiles = 0;
  }

let is_clean r = r = clean

type t = {
  version : string;
  mode : Profile.mode;
  decode_ms : float;
  idwt_ms : float;
  idwt_calls : int;
  functional_ok : bool option;
  resilience : resilience;
}

let speedup_vs baseline r = baseline.decode_ms /. r.decode_ms
let idwt_speedup_vs baseline r = baseline.idwt_ms /. r.idwt_ms

let pp_resilience fmt r =
  Format.fprintf fmt
    "%d deadline misses, %d CRC errors, %d retries (%.2f ms), %d giveups, %d blocks / %d tiles concealed"
    r.deadline_misses r.crc_errors r.retries r.retry_ms r.giveups
    r.concealed_blocks r.concealed_tiles

let pp fmt r =
  Format.fprintf fmt "v%s %a: decode %.1f ms, IDWT %.1f ms%s" r.version
    Jpeg2000.Codestream.pp_mode r.mode r.decode_ms r.idwt_ms
    (match r.functional_ok with
    | None -> ""
    | Some true -> " [functionally correct]"
    | Some false -> " [FUNCTIONAL MISMATCH]");
  if not (is_clean r.resilience) then
    Format.fprintf fmt " [%a]" pp_resilience r.resilience
