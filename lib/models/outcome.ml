type resilience = {
  deadline_misses : int;
  crc_errors : int;
  retries : int;
  giveups : int;
  retry_ms : float;
  concealed_blocks : int;
  concealed_tiles : int;
}

let clean =
  {
    deadline_misses = 0;
    crc_errors = 0;
    retries = 0;
    giveups = 0;
    retry_ms = 0.0;
    concealed_blocks = 0;
    concealed_tiles = 0;
  }

let is_clean r = r = clean

type t = {
  version : string;
  mode : Profile.mode;
  decode_ms : float;
  idwt_ms : float;
  idwt_calls : int;
  functional_ok : bool option;
  resilience : resilience;
  telemetry : Telemetry.Report.t;
}

let speedup_vs baseline r = baseline.decode_ms /. r.decode_ms
let idwt_speedup_vs baseline r = baseline.idwt_ms /. r.idwt_ms

let mode_string mode =
  Format.asprintf "%a" Jpeg2000.Codestream.pp_mode mode

let resilience_to_json r =
  Telemetry.Json.Obj
    [
      ("deadline_misses", Telemetry.Json.Int r.deadline_misses);
      ("crc_errors", Telemetry.Json.Int r.crc_errors);
      ("retries", Telemetry.Json.Int r.retries);
      ("giveups", Telemetry.Json.Int r.giveups);
      ("retry_ms", Telemetry.Json.Float r.retry_ms);
      ("concealed_blocks", Telemetry.Json.Int r.concealed_blocks);
      ("concealed_tiles", Telemetry.Json.Int r.concealed_tiles);
    ]

let to_json r =
  Telemetry.Json.Obj
    [
      ("version", Telemetry.Json.Str r.version);
      ("mode", Telemetry.Json.Str (mode_string r.mode));
      ("decode_ms", Telemetry.Json.Float r.decode_ms);
      ("idwt_ms", Telemetry.Json.Float r.idwt_ms);
      ("idwt_calls", Telemetry.Json.Int r.idwt_calls);
      ( "functional_ok",
        match r.functional_ok with
        | None -> Telemetry.Json.Null
        | Some ok -> Telemetry.Json.Bool ok );
      ("resilience", resilience_to_json r.resilience);
      ("telemetry", Telemetry.Report.to_json r.telemetry);
    ]

let pp_resilience fmt r =
  Format.fprintf fmt
    "%d deadline misses, %d CRC errors, %d retries (%.2f ms), %d giveups, %d blocks / %d tiles concealed"
    r.deadline_misses r.crc_errors r.retries r.retry_ms r.giveups
    r.concealed_blocks r.concealed_tiles

let pp fmt r =
  Format.fprintf fmt "v%s %a: decode %.1f ms, IDWT %.1f ms%s" r.version
    Jpeg2000.Codestream.pp_mode r.mode r.decode_ms r.idwt_ms
    (match r.functional_ok with
    | None -> ""
    | Some true -> " [functionally correct]"
    | Some false -> " [FUNCTIONAL MISMATCH]");
  if not (is_clean r.resilience) then
    Format.fprintf fmt " [%a]" pp_resilience r.resilience
