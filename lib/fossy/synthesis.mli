(** FOSSY driver: end-to-end high-level synthesis.

    validate → inline subprograms → optimise (when a value-analysis
    optimiser is installed) → extract FSM → emit VHDL → estimate RTL
    synthesis results (area / f_max on the Virtex-4 model). The same
    estimation is applied to hand-written reference VHDL for the
    Table 2 comparison; reference designs keep their multi-process
    structure and are therefore costed without cross-state operator
    sharing. *)

type result = {
  module_name : string;
  systemc_loc : int;  (** size of the behavioural input model *)
  fsm : Fsm.t;
  vhdl : Rtl.Vhdl.design;
  vhdl_text : string;
  vhdl_loc : int;
  summary : Rtl.Netlist.summary;
  area : Rtl.Area.report;
  fmax_mhz : float;
  unopt_summary : Rtl.Netlist.summary;
      (** netlist of the straight inline → FSM chain, before the
          installed optimiser ran (equal to [summary] when no
          optimiser is installed) *)
  unopt_area : Rtl.Area.report;
      (** area of [unopt_summary] — the baseline the optimiser's
          LUT/FF win is measured against *)
  warnings : string list;
      (** non-blocking findings of the installed linter (empty when no
          linter is installed) *)
}

val set_linter : (Hir.module_def -> string list * string list) -> unit
(** Installs a semantic linter run after {!Hir.validate}. It returns
    [(errors, warnings)]: any error blocks synthesis (reported through
    the [Error] case exactly like validation failures), warnings are
    passed through in {!result.warnings}. The [analysis] library
    installs its diagnostic suite here ([Analysis.Lint.install]); the
    default linter reports nothing. *)

val set_optimiser :
  hir:(Hir.module_def -> Hir.module_def) -> fsm:(Fsm.t -> Fsm.t) -> unit
(** Installs the behaviour-preserving optimisation passes run between
    inline and FSM extraction ([hir], e.g. [Analysis.Absint.optimise])
    and after FSM extraction ([fsm], e.g. [Analysis.Absint.prune_fsm]).
    [Analysis.Lint.install] wires both. Without an optimiser the flow
    is unchanged and [unopt_summary]/[unopt_area] simply duplicate
    [summary]/[area]. *)

val optimise : Hir.module_def -> Hir.module_def
(** The installed HIR optimiser (identity when none is installed). *)

val synthesise : Hir.module_def -> (result, string list) Stdlib.result
(** The full flow. [Error] carries validation or lint diagnostics. *)

type reference_result = {
  ref_name : string;
  ref_vhdl_loc : int;
  ref_summary : Rtl.Netlist.summary;
  ref_area : Rtl.Area.report;
  ref_fmax_mhz : float;
}

val analyse_reference : Rtl.Vhdl.design -> reference_result
(** RTL-synthesis estimation of a hand-crafted VHDL design. *)
