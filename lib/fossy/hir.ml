type ty = { width : int; signed : bool }

let int_ty width =
  if width <= 0 || width > 64 then invalid_arg "Hir.int_ty: width";
  { width; signed = true }

let uint_ty width =
  if width <= 0 || width > 64 then invalid_arg "Hir.uint_ty: width";
  { width; signed = false }

type binop =
  | Add | Sub | Mul
  | Shl | Shr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Bnot

type expr =
  | Const of int
  | Var of string
  | Arr of string * expr
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list

type lvalue = Lv_var of string | Lv_arr of string * expr

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * int * int * stmt list
  | Wait
  | Call_p of string * expr list
  | Return of expr option

type subprogram = {
  s_name : string;
  s_params : (string * ty) list;
  s_ret : ty option;
  s_locals : (string * ty) list;
  s_body : stmt list;
}

type port_dir = Pin | Pout

type module_def = {
  m_name : string;
  m_ports : (string * port_dir * ty) list;
  m_vars : (string * ty) list;
  m_arrays : (string * ty * int) list;
  m_subprograms : subprogram list;
  m_body : stmt list;
}

let v name = Var name
let c n = Const n
let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( >>: ) a n = Bin (Shr, a, Const n)
let ( <<: ) a n = Bin (Shl, a, Const n)
let ( =: ) a b = Bin (Eq, a, b)
let ( <: ) a b = Bin (Lt, a, b)
let ( >=: ) a b = Bin (Ge, a, b)
let assign name e = Assign (Lv_var name, e)
let assign_arr name idx e = Assign (Lv_arr (name, idx), e)

(* -- validation ------------------------------------------------------ *)

let rec stmts_contain_wait stmts =
  List.exists
    (function
      | Wait -> true
      | If (_, a, b) -> stmts_contain_wait a || stmts_contain_wait b
      | While (_, body) | For (_, _, _, body) -> stmts_contain_wait body
      | Assign _ | Call_p _ | Return _ -> false)
    stmts

let validate m =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let subprogram_names = List.map (fun s -> s.s_name) m.m_subprograms in
  let array_names = List.map (fun (n, _, _) -> n) m.m_arrays in
  let duplicate names label =
    let sorted = List.sort String.compare names in
    let rec scan = function
      | a :: (b :: _ as rest) ->
        if String.equal a b then err "duplicate %s %s" label a;
        scan rest
      | [ _ ] | [] -> ()
    in
    scan sorted
  in
  let module_names =
    List.map (fun (n, _, _) -> n) m.m_ports
    @ List.map fst m.m_vars @ array_names
  in
  duplicate subprogram_names "subprogram";
  (* Ports, variables and arrays share one name space: codegen maps
     them all to VHDL signals/variables of the entity. *)
  duplicate module_names "port/variable/array";
  List.iter
    (fun s ->
      let local_names = List.map fst s.s_params @ List.map fst s.s_locals in
      duplicate local_names (Printf.sprintf "parameter/local in %s" s.s_name);
      List.iter
        (fun n ->
          if List.mem n module_names then
            err "%s in %s shadows a module-level name" n s.s_name)
        local_names)
    m.m_subprograms;
  let known_vars extra =
    List.map (fun (n, _, _) -> n) m.m_ports @ List.map fst m.m_vars @ extra
  in
  let rec check_expr vars = function
    | Const _ -> ()
    | Var n -> if not (List.mem n vars) then err "unknown variable %s" n
    | Arr (n, i) ->
      if not (List.mem n array_names) then err "unknown array %s" n;
      check_expr vars i
    | Bin (_, a, b) ->
      check_expr vars a;
      check_expr vars b
    | Un (_, e) -> check_expr vars e
    | Call (f, args) ->
      (match List.find_opt (fun s -> s.s_name = f) m.m_subprograms with
      | None -> err "unknown function %s" f
      | Some s ->
        if s.s_ret = None then err "procedure %s used as function" f;
        if List.length args <> List.length s.s_params then
          err "arity mismatch calling %s" f);
      List.iter (check_expr vars) args
  in
  let rec check_stmts vars ~in_function stmts =
    List.iteri
      (fun i stmt ->
        match stmt with
        | Assign (Lv_var n, e) ->
          if not (List.mem n vars) then err "assignment to unknown variable %s" n;
          check_expr vars e
        | Assign (Lv_arr (n, idx), e) ->
          if not (List.mem n array_names) then err "unknown array %s" n;
          check_expr vars idx;
          check_expr vars e
        | If (cond, a, b) ->
          check_expr vars cond;
          check_stmts vars ~in_function a;
          check_stmts vars ~in_function b
        | While (cond, body) ->
          check_expr vars cond;
          if not (stmts_contain_wait body) then
            err "while loop without Wait in %s is not synthesisable" m.m_name;
          check_stmts vars ~in_function body
        | For (iv, lo, hi, body) ->
          if lo > hi then err "for %s: reversed bounds (%d > %d)" iv lo hi;
          check_stmts (iv :: vars) ~in_function body
        | Wait ->
          (* Clock boundaries are fine in procedures (they are inlined
             before FSM extraction) but not in value-returning
             functions, whose calls sit inside expressions. *)
          if in_function = `Function then
            err "Wait inside a function is not supported"
        | Call_p (p, args) ->
          (match List.find_opt (fun s -> s.s_name = p) m.m_subprograms with
          | None -> err "unknown procedure %s" p
          | Some s ->
            if s.s_ret <> None then err "function %s called as procedure" p;
            if List.length args <> List.length s.s_params then
              err "arity mismatch calling %s" p);
          List.iter (check_expr vars) args
        | Return _ ->
          if in_function = `Process then err "Return outside subprogram"
          else if i <> List.length stmts - 1 then
            err "Return must be the last statement")
      stmts
  in
  check_stmts (known_vars []) ~in_function:`Process m.m_body;
  List.iter
    (fun s ->
      let vars = known_vars (List.map fst s.s_params @ List.map fst s.s_locals) in
      let kind = if s.s_ret = None then `Procedure else `Function in
      check_stmts vars ~in_function:kind s.s_body;
      match (s.s_ret, List.rev s.s_body) with
      | Some _, Return (Some _) :: _ -> ()
      | Some _, _ -> err "function %s must end with Return" s.s_name
      | None, Return (Some _) :: _ -> err "procedure %s returns a value" s.s_name
      | None, _ -> ())
    m.m_subprograms;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
