type result = {
  module_name : string;
  systemc_loc : int;
  fsm : Fsm.t;
  vhdl : Rtl.Vhdl.design;
  vhdl_text : string;
  vhdl_loc : int;
  summary : Rtl.Netlist.summary;
  area : Rtl.Area.report;
  fmax_mhz : float;
  unopt_summary : Rtl.Netlist.summary;
  unopt_area : Rtl.Area.report;
  warnings : string list;
}

(* The deep semantic checks live in the [analysis] library, which
   depends on this one; it plugs itself in through this hook
   ([Analysis.Lint.install]). Without a linter installed, synthesis
   performs only the structural [Hir.validate]. *)
let linter : (Hir.module_def -> string list * string list) ref =
  ref (fun _ -> ([], []))

let set_linter f = linter := f

(* Same inversion for the value-analysis optimiser: the abstract
   interpreter lives in [analysis], which depends on this library, so
   it installs itself here. Uninstalled, [optimise] is the identity
   and the flow is exactly the historical inline → FSM → VHDL chain. *)
let optimiser : (Hir.module_def -> Hir.module_def) ref = ref (fun m -> m)
let fsm_optimiser : (Fsm.t -> Fsm.t) ref = ref (fun f -> f)
let optimiser_installed = ref false

let set_optimiser ~hir ~fsm =
  optimiser := hir;
  fsm_optimiser := fsm;
  optimiser_installed := true

let optimise m = !optimiser m

let cost fsm =
  let vhdl = Codegen.run fsm in
  let vhdl_text = Rtl.Vhdl_pp.emit vhdl in
  let summary = Rtl.Netlist.of_design vhdl in
  let area = Rtl.Area.estimate ~sharing:Rtl.Area.Shared summary in
  let fmax_mhz =
    Rtl.Timing_model.estimate_mhz ~sharing:Rtl.Area.Shared summary
  in
  (vhdl, vhdl_text, summary, area, fmax_mhz)

let synthesise m =
  match Hir.validate m with
  | Error es -> Error es
  | Ok () ->
    let lint_errors, warnings = !linter m in
    if lint_errors <> [] then Error lint_errors
    else
      let systemc_loc = Hir_pp.loc m in
      let inlined = Inline.run m in
      let unopt_fsm = Fsm.of_module inlined in
      let _, _, unopt_summary, unopt_area, _ = cost unopt_fsm in
      let fsm =
        if !optimiser_installed then
          !fsm_optimiser (Fsm.of_module (!optimiser inlined))
        else unopt_fsm
      in
      let vhdl, vhdl_text, summary, area, fmax_mhz = cost fsm in
      Ok
        {
          module_name = m.Hir.m_name;
          systemc_loc;
          fsm;
          vhdl;
          vhdl_text;
          vhdl_loc = Rtl.Vhdl_pp.loc vhdl;
          summary;
          area;
          fmax_mhz;
          unopt_summary;
          unopt_area;
          warnings;
        }

type reference_result = {
  ref_name : string;
  ref_vhdl_loc : int;
  ref_summary : Rtl.Netlist.summary;
  ref_area : Rtl.Area.report;
  ref_fmax_mhz : float;
}

let analyse_reference design =
  let summary = Rtl.Netlist.of_design design in
  {
    ref_name = design.Rtl.Vhdl.entity.Rtl.Vhdl.ent_name;
    ref_vhdl_loc = Rtl.Vhdl_pp.loc design;
    ref_summary = summary;
    ref_area = Rtl.Area.estimate ~sharing:Rtl.Area.Flat summary;
    ref_fmax_mhz = Rtl.Timing_model.estimate_mhz ~sharing:Rtl.Area.Flat summary;
  }
