(** Port-discipline and unused-logic lints on VHDL designs — both the
    FOSSY-generated ones and the hand-written Table 2 references.

    - [E010] — a process drives an [in] port;
    - [E011] — an [out] port is read back but nothing drives it;
    - [W015] — an [out] port is never driven;
    - [W017] — an architecture signal is declared but never used. *)

val run : Rtl.Vhdl.design -> Diagnostic.t list
