(** Interval + known-bits abstract domain over OCaml's 63-bit ints.

    An abstract value bounds a set of concrete integers two ways at
    once: a closed interval [\[lo, hi\]] and a known-bits pair
    ([known], [bits]) meaning every concrete value [v] satisfies
    [v land known = bits]. The two components are kept mutually
    reduced: a freshly constructed value derives bit facts from the
    interval (shared sign-prefix of [lo] and [hi]) and interval facts
    from the bits (when the sign region is known the unknown bits
    span a contiguous range).

    All transfer functions are sound over-approximations of the exact
    semantics implemented by {!Fossy.Interp}: shift amounts are
    masked with [land 63], [wrap_ty] mirrors [Interp.wrap] including
    its identity at widths >= 62, and arithmetic that could exceed
    the native range saturates outward (saturation only ever widens
    the interval, so it cannot lose soundness). *)

type t = private { lo : int; hi : int; known : int; bits : int }
(** Invariants: [lo <= hi]; [bits land known = bits]; singletons have
    [known = -1]. *)

val top : t
(** Every representable int. *)

val of_const : int -> t
val of_bounds : int -> int -> t

val of_ty : Fossy.Hir.ty -> t
(** Value range of a declared type as {!Fossy.Interp} stores it:
    widths >= 62 are unwrapped native ints, so they map to {!top}. *)

val make : lo:int -> hi:int -> known:int -> bits:int -> t
(** Smart constructor: mutually reduces the two components. The
    arguments must describe a non-empty, consistent set. *)

val join : t -> t -> t
val meet : t -> t -> t option
(** [meet a b] is [None] when the intersection is provably empty. *)

val widen : t -> t -> t
(** [widen old next]: threshold widening — unstable bounds jump to
    the nearest power-of-two-ish threshold, guaranteeing a finite
    ascending chain on loop back-edges. *)

val equal : t -> t -> bool
val contains : t -> int -> bool
val is_singleton : t -> int option
val fits_ty : Fossy.Hir.ty -> t -> bool
(** The whole abstract value lies inside the type's storable range
    (so wrapping at a store is the identity). *)

val wrap_ty : Fossy.Hir.ty -> t -> t
(** Abstract counterpart of [Interp.wrap]. Precise when the input
    fits, or when the input spans at most one wrap window. *)

val binop : Fossy.Hir.binop -> t -> t -> t
val unop : Fossy.Hir.unop -> t -> t

val assume_cmp : Fossy.Hir.binop -> t -> t -> (t * t) option
(** [assume_cmp op a b] refines [a] and [b] under the assumption that
    [Bin (op, a, b)] evaluated nonzero (the comparison held). [None]
    means the assumption is unsatisfiable (the guarded code is
    unreachable). Non-comparison operators refine nothing. *)

val min_width : signed:bool -> t -> int
(** Smallest declarable width (>= 1, <= 63) whose storable range
    contains the whole abstract value. For unsigned, requires
    [lo >= 0] — callers must check. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
