(** Reusable dataflow framework over the FOSSY HIR.

    Builds a control-flow graph from a statement list — one node per
    statement plus synthetic entry/exit — annotated with def/use sets,
    and solves forward/backward fixpoints over sets of names. The
    canned analyses (may-be-uninitialised, liveness, reachability) are
    what the {!Hir_lint} diagnostics are made of; the framework itself
    is generic so further passes can reuse it.

    Design notes:
    - edges are constant-aware: [If (Const 0, ...)] only flows into
      the else arm, [While (Const 1, ...)] never flows past the loop —
      this is what makes the unreachable-statement lint precise;
    - the process body gets an exit→entry back edge, because an
      SC_CTHREAD repeats forever: a value written at the bottom of the
      loop and read at the top is live;
    - subprogram calls are summarised by their transitive module-level
      def/use sets, so analyses stay intraprocedural but don't lie
      about side effects. *)

module Names : Set.S with type elt = string

type summary = {
  su_uses : Names.t;
  su_arr_uses : Names.t;
  su_defs : Names.t;
  su_arr_defs : Names.t;
}

val summaries : Fossy.Hir.module_def -> string -> summary
(** [summaries m] computes (memoised, cycle-tolerant) transitive
    module-level def/use summaries for every subprogram of [m] and
    returns the lookup function. Unknown names yield the empty
    summary. *)

type node = {
  id : int;
  path : string;  (** e.g. ["idwt53/body/3/then/0"] *)
  stmt : Fossy.Hir.stmt option;  (** [None] for synthetic entry/exit *)
  defs : Names.t;
  uses : Names.t;
  array_defs : Names.t;
  array_uses : Names.t;
  mutable succ : int list;
  mutable pred : int list;
}

type t = { nodes : node array; entry : int; exit_ : int }

val of_body : Fossy.Hir.module_def -> t
(** CFG of the behavioural process, with the infinite-loop back
    edge. *)

val of_subprogram : Fossy.Hir.module_def -> Fossy.Hir.subprogram -> t

type solution = {
  before : Names.t array;  (** per node id: set before the node *)
  after : Names.t array;
}

val forward :
  t -> init:Names.t -> transfer:(node -> Names.t -> Names.t) -> solution
(** Union-over-predecessors forward fixpoint; [init] seeds the entry
    node. *)

val backward :
  t -> init:Names.t -> transfer:(node -> Names.t -> Names.t) -> solution
(** Union-over-successors backward fixpoint; [init] seeds the exit
    node. *)

val maybe_uninit : t -> at_entry:Names.t -> solution
(** A name is in [before.(id)] while some path from entry reaches the
    node without writing it. *)

val live : t -> at_exit:Names.t -> solution
(** Liveness; [after.(id)] is the live-out set. [at_exit] names are
    observable past the region. *)

val reachable : t -> bool array
(** Per node id, whether a (constant-aware) path from the entry
    reaches it. *)

val stmt_label : Fossy.Hir.stmt -> string
(** Short human label ("assignment to x", "while", ...) for
    diagnostics. *)
