(* Interval + known-bits domain. Soundness reference: Fossy.Interp.
   Native int arithmetic there wraps modulo 2^63 on overflow, so an
   overflowing bound widens to the full int range (saturating would
   claim a bound the wrapped value can escape); the low bits stay
   sound regardless because wrap is a congruence mod every 2^k. *)

type t = { lo : int; hi : int; known : int; bits : int }

let min_i = Stdlib.min_int
let max_i = Stdlib.max_int

(* ---- checked native arithmetic: None = would overflow ---- *)

let add_opt a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then None
  else Some s

let sub_opt a b =
  let d = a - b in
  if (a >= 0 && b < 0 && d < 0) || (a < 0 && b >= 0 && d >= 0) then None
  else Some d

let mul_opt a b =
  if a = 0 || b = 0 then Some 0
  else
    let fp = float_of_int a *. float_of_int b in
    (* max_int is ~4.61e18; the float product of two ints is exact to
       ~1 ulp, so anything under 4.0e18 is safely representable and
       anything we reject merely loses precision, not soundness. *)
    if Float.abs fp < 4.0e18 then Some (a * b) else None

let shl_opt a k =
  if a = 0 then Some 0
  else if k >= 62 then None
  else
    let r = a lsl k in
    if r asr k = a then Some r else None

(* ---- bit-prefix helpers ---- *)

(* Mask with every bit at or below the highest set bit of [x]. *)
let smear x =
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  x lor (x lsr 32)

(* Shared high-bit prefix of everything in [lo, hi]. *)
let prefix_of_range lo hi =
  if lo = hi then (-1, lo)
  else
    let m = lnot (smear (lo lxor hi)) in
    (m, lo land m)

(* Interval implied by the known bits, when the sign region is known
   (unknown mask non-negative): unknown bits span a contiguous range. *)
let range_of_bits known bits =
  let unk = lnot known in
  if unk >= 0 then Some (bits, bits lor unk) else None

let make ~lo ~hi ~known ~bits =
  let bits = bits land known in
  let step (lo, hi, known, bits) =
    let ik, ib = prefix_of_range lo hi in
    if (bits lxor ib) land known land ik <> 0 then
      (* caller fed inconsistent facts; trust the interval *)
      (lo, hi, ik, ib)
    else
      let k = known lor ik and b = bits lor ib in
      match range_of_bits k b with
      | Some (blo, bhi)
        when Stdlib.max lo blo <= Stdlib.min hi bhi ->
        (Stdlib.max lo blo, Stdlib.min hi bhi, k, b)
      | _ -> (lo, hi, k, b)
  in
  let lo, hi, known, bits = step (step (lo, hi, known, bits)) in
  if lo = hi then { lo; hi; known = -1; bits = lo }
  else { lo; hi; known; bits }

let top = { lo = min_i; hi = max_i; known = 0; bits = 0 }
let of_const n = { lo = n; hi = n; known = -1; bits = n }

let of_bounds a b =
  let lo = Stdlib.min a b and hi = Stdlib.max a b in
  make ~lo ~hi ~known:0 ~bits:0

let of_ty (ty : Fossy.Hir.ty) =
  let w = Stdlib.max 1 ty.width in
  if w >= 62 then top
  else if ty.signed then of_bounds (-(1 lsl (w - 1))) ((1 lsl (w - 1)) - 1)
  else of_bounds 0 ((1 lsl w) - 1)

let join a b =
  let known = a.known land b.known land lnot (a.bits lxor b.bits) in
  make ~lo:(Stdlib.min a.lo b.lo) ~hi:(Stdlib.max a.hi b.hi) ~known
    ~bits:(a.bits land known)

let meet a b =
  let lo = Stdlib.max a.lo b.lo and hi = Stdlib.min a.hi b.hi in
  if lo > hi then None
  else if (a.bits lxor b.bits) land a.known land b.known <> 0 then None
  else Some (make ~lo ~hi ~known:(a.known lor b.known) ~bits:(a.bits lor b.bits))

let thresholds =
  [| min_i; -4294967296; -65536; -256; -2; -1; 0; 1; 2; 255; 256; 65535;
     65536; 4294967295; max_i |]

let widen_down v =
  let best = ref min_i in
  Array.iter (fun t -> if t <= v && t > !best then best := t) thresholds;
  !best

let widen_up v =
  let best = ref max_i in
  Array.iter (fun t -> if t >= v && t < !best then best := t) thresholds;
  !best

let widen a b =
  let lo = if b.lo < a.lo then widen_down b.lo else a.lo in
  let hi = if b.hi > a.hi then widen_up b.hi else a.hi in
  let known = a.known land b.known land lnot (a.bits lxor b.bits) in
  make ~lo ~hi ~known ~bits:(a.bits land known)

let equal a b =
  a.lo = b.lo && a.hi = b.hi && a.known = b.known && a.bits = b.bits

let contains t v = v >= t.lo && v <= t.hi && v land t.known = t.bits
let is_singleton t = if t.lo = t.hi then Some t.lo else None

let fits_ty ty t =
  let r = of_ty ty in
  t.lo >= r.lo && t.hi <= r.hi

let wrap_ty (ty : Fossy.Hir.ty) t =
  if ty.width >= 62 then t (* Interp.wrap is the identity there *)
  else if fits_ty ty t then t
  else
    let w = Stdlib.max 1 ty.width in
    let m = 1 lsl w in
    let wrap v =
      let x = v land (m - 1) in
      if ty.signed && x >= m / 2 then x - m else x
    in
    (* wrapping preserves the low [w] bits verbatim *)
    let kl = t.known land (m - 1) in
    let bl = t.bits land kl in
    let span = match sub_opt t.hi t.lo with Some s -> s | None -> max_i in
    let wlo = wrap t.lo and whi = wrap t.hi in
    if span <= m - 1 && whi - wlo = span then
      (* the whole interval maps through a single wrap window *)
      make ~lo:wlo ~hi:whi ~known:kl ~bits:bl
    else
      let r = of_ty ty in
      make ~lo:r.lo ~hi:r.hi ~known:kl ~bits:bl

let min_width ~signed t =
  let rec go w =
    if w >= 63 then 63
    else
      let ok =
        if signed then t.lo >= -(1 lsl (w - 1)) && t.hi <= (1 lsl (w - 1)) - 1
        else t.lo >= 0 && t.hi <= (1 lsl w) - 1
      in
      if ok then w else go (w + 1)
  in
  go 1

(* ---- transfer functions ---- *)

(* Low bits of a result that are fully determined by the low bits of
   the operands (sound under native wrap: congruence mod 2^k). *)
let trailing_known k =
  let rec go i = if i >= 62 || k land (1 lsl i) = 0 then i else go (i + 1) in
  go 0

let trailing_bits op a b =
  let n = Stdlib.min (trailing_known a.known) (trailing_known b.known) in
  if n = 0 then (0, 0)
  else
    let mask = (1 lsl n) - 1 in
    let x = a.bits land mask and y = b.bits land mask in
    let v =
      match op with
      | `Add -> x + y
      | `Sub -> x - y
      | `Mul -> x * y
    in
    (mask, v land mask)

let arith op f a b =
  let known, bits = trailing_bits op a b in
  match (f a.lo b.lo, f a.lo b.hi, f a.hi b.lo, f a.hi b.hi) with
  | Some c1, Some c2, Some c3, Some c4 ->
    let lo = Stdlib.min (Stdlib.min c1 c2) (Stdlib.min c3 c4) in
    let hi = Stdlib.max (Stdlib.max c1 c2) (Stdlib.max c3 c4) in
    make ~lo ~hi ~known ~bits
  | _ ->
    (* a corner wraps natively: the value can land anywhere, but the
       low bits stay determined *)
    make ~lo:min_i ~hi:max_i ~known ~bits

(* Effective shift range: Interp masks the amount with [land 63], and
   OCaml leaves shifts by 63 unspecified, so anything not provably in
   [0, 62] gets no shift-range facts at all. *)
let eff_shift b =
  if b.lo >= 0 && b.hi <= 62 then Some (b.lo, b.hi) else None

let shl a b =
  match eff_shift b with
  | None -> top
  | Some (kl, kh) ->
    let bitinfo =
      if kl = kh then
        (* exact bit relocation: low kl bits become known zeros *)
        ((a.known lsl kl) lor ((1 lsl kl) - 1), (a.bits lsl kl) land lnot 0)
      else (0, 0)
    in
    let known, bits = bitinfo in
    (match (shl_opt a.lo kl, shl_opt a.lo kh, shl_opt a.hi kl, shl_opt a.hi kh)
     with
    | Some c1, Some c2, Some c3, Some c4 ->
      let lo = Stdlib.min (Stdlib.min c1 c2) (Stdlib.min c3 c4) in
      let hi = Stdlib.max (Stdlib.max c1 c2) (Stdlib.max c3 c4) in
      make ~lo ~hi ~known ~bits:(bits land known)
    | _ -> make ~lo:min_i ~hi:max_i ~known ~bits:(bits land known))

let shr a b =
  match eff_shift b with
  | None -> top
  | Some (kl, kh) ->
    let known, bits =
      if kl = kh then (a.known asr kl, a.bits asr kl) else (0, 0)
    in
    let c1 = a.lo asr kl and c2 = a.lo asr kh in
    let c3 = a.hi asr kl and c4 = a.hi asr kh in
    let lo = Stdlib.min (Stdlib.min c1 c2) (Stdlib.min c3 c4) in
    let hi = Stdlib.max (Stdlib.max c1 c2) (Stdlib.max c3 c4) in
    make ~lo ~hi ~known ~bits:(bits land known)

let band a b =
  (* result bit known when both known, or either is a known zero *)
  let known =
    (a.known land b.known) lor (a.known land lnot a.bits)
    lor (b.known land lnot b.bits)
  in
  let bits = a.bits land b.bits land known in
  let lo, hi =
    if a.lo >= 0 && b.lo >= 0 then (0, Stdlib.min a.hi b.hi)
    else if a.lo >= 0 then (0, a.hi)
    else if b.lo >= 0 then (0, b.hi)
    else
      (* x land y >= x + y + 1 when both negative; >= 0 otherwise *)
      let lo =
        match add_opt a.lo b.lo with Some s -> Stdlib.min 0 s | None -> min_i
      in
      (lo, Stdlib.max 0 (Stdlib.max a.hi b.hi))
  in
  make ~lo ~hi ~known ~bits

let bor a b =
  let known =
    (a.known land b.known) lor (a.known land a.bits) lor (b.known land b.bits)
  in
  let bits = (a.bits lor b.bits) land known in
  let lo =
    if a.lo >= 0 && b.lo >= 0 then Stdlib.max a.lo b.lo
    else Stdlib.min a.lo b.lo
  in
  let hi =
    if a.hi < 0 || b.hi < 0 then -1 (* a set sign bit survives lor *)
    else
      match add_opt (Stdlib.max 0 a.hi) (Stdlib.max 0 b.hi) with
      | Some s -> s
      | None -> max_i
  in
  make ~lo ~hi ~known ~bits

let bxor a b =
  let known = a.known land b.known in
  let bits = (a.bits lxor b.bits) land known in
  let lo, hi =
    if a.lo >= 0 && b.lo >= 0 then
      ( 0,
        match add_opt a.hi b.hi with
        | Some s -> s
        | None -> max_i )
    else (min_i, max_i)
  in
  make ~lo ~hi ~known ~bits

let bool_top = { lo = 0; hi = 1; known = lnot 1; bits = 0 }

let cmp op a b =
  let decided v = of_const (if v then 1 else 0) in
  match op with
  | `Eq -> (
    match (is_singleton a, is_singleton b) with
    | Some x, Some y -> decided (x = y)
    | _ -> if meet a b = None then decided false else bool_top)
  | `Ne -> (
    match (is_singleton a, is_singleton b) with
    | Some x, Some y -> decided (x <> y)
    | _ -> if meet a b = None then decided true else bool_top)
  | `Lt ->
    if a.hi < b.lo then decided true
    else if a.lo >= b.hi then decided false
    else bool_top
  | `Le ->
    if a.hi <= b.lo then decided true
    else if a.lo > b.hi then decided false
    else bool_top
  | `Gt ->
    if a.lo > b.hi then decided true
    else if a.hi <= b.lo then decided false
    else bool_top
  | `Ge ->
    if a.lo >= b.hi then decided true
    else if a.hi < b.lo then decided false
    else bool_top

let binop (op : Fossy.Hir.binop) a b =
  match op with
  | Add -> arith `Add add_opt a b
  | Sub -> arith `Sub sub_opt a b
  | Mul -> arith `Mul mul_opt a b
  | Shl -> shl a b
  | Shr -> shr a b
  | Band -> band a b
  | Bor -> bor a b
  | Bxor -> bxor a b
  | Eq -> cmp `Eq a b
  | Ne -> cmp `Ne a b
  | Lt -> cmp `Lt a b
  | Le -> cmp `Le a b
  | Gt -> cmp `Gt a b
  | Ge -> cmp `Ge a b

let unop (op : Fossy.Hir.unop) t =
  match op with
  | Neg -> arith `Sub sub_opt (of_const 0) t
  | Bnot ->
    (* lnot x = -x - 1: exact on intervals, bitwise complement on bits *)
    make ~lo:(lnot t.hi) ~hi:(lnot t.lo) ~known:t.known
      ~bits:(lnot t.bits land t.known)

(* drop a single endpoint value from an interval, if possible *)
let trim_ne t v =
  if t.lo = v && t.hi = v then None
  else if t.lo = v then Some (make ~lo:(v + 1) ~hi:t.hi ~known:t.known ~bits:t.bits)
  else if t.hi = v then Some (make ~lo:t.lo ~hi:(v - 1) ~known:t.known ~bits:t.bits)
  else Some t

let rec assume_cmp (op : Fossy.Hir.binop) a b =
  match op with
  | Eq -> ( match meet a b with None -> None | Some m -> Some (m, m))
  | Ne -> (
    match (is_singleton a, is_singleton b) with
    | Some x, Some y -> if x <> y then Some (a, b) else None
    | Some x, None -> (
      match trim_ne b x with None -> None | Some b' -> Some (a, b'))
    | None, Some y -> (
      match trim_ne a y with None -> None | Some a' -> Some (a', b))
    | None, None -> Some (a, b))
  | Lt ->
    if b.hi = min_i then None
    else
      let ahi = Stdlib.min a.hi (b.hi - 1) in
      if a.lo > ahi then None
      else if a.lo = max_i then None
      else
        let blo = Stdlib.max b.lo (a.lo + 1) in
        if blo > b.hi then None
        else
          Some
            ( make ~lo:a.lo ~hi:ahi ~known:a.known ~bits:a.bits,
              make ~lo:blo ~hi:b.hi ~known:b.known ~bits:b.bits )
  | Le ->
    let ahi = Stdlib.min a.hi b.hi and blo = Stdlib.max b.lo a.lo in
    if a.lo > ahi || blo > b.hi then None
    else
      Some
        ( make ~lo:a.lo ~hi:ahi ~known:a.known ~bits:a.bits,
          make ~lo:blo ~hi:b.hi ~known:b.known ~bits:b.bits )
  | Gt -> (
    match assume_cmp Lt b a with
    | None -> None
    | Some (b', a') -> Some (a', b'))
  | Ge -> (
    match assume_cmp Le b a with
    | None -> None
    | Some (b', a') -> Some (a', b'))
  | _ -> Some (a, b)

let pp fmt t =
  match is_singleton t with
  | Some n -> Format.fprintf fmt "{%d}" n
  | None ->
    let b s v =
      if v = min_i then "-inf" else if v = max_i then "+inf" else s
    in
    Format.fprintf fmt "[%s, %s]"
      (b (string_of_int t.lo) t.lo)
      (b (string_of_int t.hi) t.hi)

let to_string t = Format.asprintf "%a" pp t
