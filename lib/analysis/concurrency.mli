(** Concurrency diagnostics at the OSSS and simulation layers.

    - [E014] — guard deadlock in the Shared-Object wait-for graph of a
      VTA mapping: either a guarded call on an object no other client
      accesses, or a strongly connected component of clients whose
      guard-waited objects are reachable only through guarded calls
      from inside the component;
    - [E015] — delta-cycle write-write race recorded by the simulation
      kernel (two processes drove one signal in the same evaluation
      phase). *)

val guard_deadlocks : Osss.Vta.t -> Diagnostic.t list
(** Static analysis of {!Osss.Vta.so_accesses}. *)

val diag_of_race : Sim.Kernel.race -> Diagnostic.t
(** One recorded (or raised) race as an [E015] diagnostic. *)

val race_diagnostics : Sim.Kernel.t -> Diagnostic.t list
(** Renders the races a kernel recorded under
    {!Sim.Kernel.Race_record} into diagnostics. *)
