(** Structural lints on the extracted FSM.

    - [W012] — unreachable state (constant-aware next-state edges);
    - [W013] — register never read by any action or branch condition
      (a flip-flop whose output goes nowhere). *)

val reachable : Fossy.Fsm.t -> bool array
(** Constant-aware variant of {!Fossy.Fsm.reachable_states}: a
    [Branch] on a constant condition only reaches the selected arm. *)

val run : Fossy.Fsm.t -> Diagnostic.t list
