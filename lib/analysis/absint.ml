open Fossy
module M = Map.Make (String)
module S = Set.Make (String)
module I = Interval
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Abstract state                                                      *)
(* ------------------------------------------------------------------ *)

(* Missing key = top. Arrays are summarised by one element interval
   (weak updates only), which is exact for the all-zero initial state
   and sound for every partial write pattern. *)
type env = { vars : I.t M.t; arrs : I.t M.t }

let merge_with f a b =
  M.merge
    (fun _ x y -> match (x, y) with Some x, Some y -> Some (f x y) | _ -> None)
    a b

let join_env a b =
  { vars = merge_with I.join a.vars b.vars; arrs = merge_with I.join a.arrs b.arrs }

let widen_env a b =
  { vars = merge_with I.widen a.vars b.vars;
    arrs = merge_with I.widen a.arrs b.arrs }

let equal_env a b =
  M.equal I.equal a.vars b.vars && M.equal I.equal a.arrs b.arrs

let join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (join_env a b)

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  var_ty : Hir.ty M.t;  (* module variables and output ports *)
  arr_ty : (Hir.ty * int) M.t;
  input_ty : Hir.ty M.t;  (* input ports: fresh nondeterministic reads *)
  subs : Hir.subprogram M.t;
  summary : string -> Dataflow.summary;
}

(* Local bindings currently in scope (subprogram frames and For loop
   variables) and the innermost call's declared local types — mirrors
   Interp's [locals] stack and per-call [local_types] exactly. *)
type scope = { bound : S.t; ltys : Hir.ty M.t }

let scope0 = { bound = S.empty; ltys = M.empty }

(* Joined observations, keyed by syntactic location so facts that
   must hold on *every* visit (call sites, loop iterations) are only
   reported when the join still proves them. *)
type recorder = {
  mutable wrapped_var : I.t M.t;  (* post-wrap stores per module var *)
  mutable raw_var : I.t M.t;  (* pre-wrap assigned values *)
  mutable wrapped_arr : I.t M.t;
  mutable raw_arr : I.t M.t;
  assigns : (string, I.t * Hir.ty option * bool) Hashtbl.t;
  branches : (string, I.t * [ `If | `While ]) Hashtbl.t;
  indices : (string * string, I.t * int) Hashtbl.t;
}

let fresh_recorder () =
  {
    wrapped_var = M.empty;
    raw_var = M.empty;
    wrapped_arr = M.empty;
    raw_arr = M.empty;
    assigns = Hashtbl.create 64;
    branches = Hashtbl.create 32;
    indices = Hashtbl.create 32;
  }

type st = { ctx : ctx; rec_ : recorder option; mutable depth : int }

let joined_add m k v =
  M.update k (function None -> Some v | Some o -> Some (I.join o v)) m

let rec_store st name ~raw ~wrapped =
  match st.rec_ with
  | None -> ()
  | Some r ->
    r.raw_var <- joined_add r.raw_var name raw;
    r.wrapped_var <- joined_add r.wrapped_var name wrapped

let rec_arr_store st name ~raw ~wrapped =
  match st.rec_ with
  | None -> ()
  | Some r ->
    r.raw_arr <- joined_add r.raw_arr name raw;
    r.wrapped_arr <- joined_add r.wrapped_arr name wrapped

let rec_assign st path iv ty is_const =
  match st.rec_ with
  | None -> ()
  | Some r ->
    let v =
      match Hashtbl.find_opt r.assigns path with
      | None -> (iv, ty, is_const)
      | Some (o, oty, oc) -> (I.join o iv, oty, oc && is_const)
    in
    Hashtbl.replace r.assigns path v

let rec_branch st path iv kind =
  match st.rec_ with
  | None -> ()
  | Some r ->
    let v =
      match Hashtbl.find_opt r.branches path with
      | None -> (iv, kind)
      | Some (o, k) -> (I.join o iv, k)
    in
    Hashtbl.replace r.branches path v

let rec_index st path arr iv len =
  match st.rec_ with
  | None -> ()
  | Some r ->
    let key = (path, arr) in
    let v =
      match Hashtbl.find_opt r.indices key with
      | None -> (iv, len)
      | Some (o, l) -> (I.join o iv, l)
    in
    Hashtbl.replace r.indices key v

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let var_iv env x = match M.find_opt x env.vars with Some v -> v | None -> I.top

let wrap_opt ty iv = match ty with None -> iv | Some ty -> I.wrap_ty ty iv

let is_cmp : Hir.binop -> bool = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | _ -> false

let negate_cmp : Hir.binop -> Hir.binop = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | op -> op

let never_nonzero iv = I.is_singleton iv = Some 0
let may_be_zero iv = I.contains iv 0

(* Only fold to a literal the VHDL layer can size sanely. *)
let foldable_const k = k > -(1 lsl 61) && k < 1 lsl 61

let folded e iv safe =
  if not safe then e
  else
    match I.is_singleton iv with
    | Some k when foldable_const k -> (
      match e with Hir.Const _ -> e | _ -> Hir.Const k)
    | _ -> e

let rec_depth_limit = 24

(* ------------------------------------------------------------------ *)
(* Pure evaluation (no state change, no recording): used for branch
   refinement and for FSM branch conditions. Returns the interval and
   whether the expression is side-effect- and crash-free: no input
   read, no call, every array index proved in bounds.                  *)
(* ------------------------------------------------------------------ *)

let rec peval st sc env (e : Hir.expr) : I.t * bool =
  match e with
  | Const n -> (I.of_const n, true)
  | Var x ->
    if S.mem x sc.bound then (var_iv env x, true)
    else (
      match M.find_opt x st.ctx.input_ty with
      | Some ty -> (I.of_ty ty, false)
      | None -> (var_iv env x, true))
  | Arr (a, i) -> (
    let iiv, isafe = peval st sc env i in
    match M.find_opt a st.ctx.arr_ty with
    | Some (ety, len) ->
      let inb = iiv.I.lo >= 0 && iiv.I.hi <= len - 1 in
      let v = match M.find_opt a env.arrs with Some v -> v | None -> I.of_ty ety in
      (v, isafe && inb)
    | None -> (I.top, false))
  | Bin (op, a, b) ->
    let aiv, sa = peval st sc env a in
    let biv, sb = peval st sc env b in
    (I.binop op aiv biv, sa && sb)
  | Un (op, a) ->
    let aiv, sa = peval st sc env a in
    (I.unop op aiv, sa)
  | Call _ -> (I.top, false)

(* Push a refined interval back onto a variable operand, if it is
   refinable (never input ports — their reads are independent). *)
let push_refinement st sc env e iv =
  match e with
  | Hir.Var x when S.mem x sc.bound || not (M.mem x st.ctx.input_ty) -> (
    match I.meet (var_iv env x) iv with
    | Some m -> { env with vars = M.add x m env.vars }
    | None -> env (* contradiction: path is dead anyway; stay sound *))
  | _ -> env

(* Refine [env] under "cond evaluated truthy/falsy". [None] =
   assumption unsatisfiable (the guarded code is unreachable). *)
let rec refine st sc env cond truth : env option =
  match cond with
  | Hir.Const n -> if n <> 0 = truth then Some env else None
  | Hir.Bin (op, l, r) when is_cmp op ->
    let op = if truth then op else negate_cmp op in
    let liv, _ = peval st sc env l in
    let riv, _ = peval st sc env r in
    (match I.assume_cmp op liv riv with
    | None -> None
    | Some (liv', riv') ->
      let env = push_refinement st sc env l liv' in
      Some (push_refinement st sc env r riv'))
  | Hir.Var _ ->
    let op = if truth then Hir.Ne else Hir.Eq in
    refine st sc env (Hir.Bin (op, cond, Hir.Const 0)) true
  | Hir.Un (Hir.Bnot, e) ->
    (* lnot x is truthy iff x <> -1 *)
    let op = if truth then Hir.Ne else Hir.Eq in
    refine st sc env (Hir.Bin (op, e, Hir.Const (-1))) true
  | _ -> Some env

(* ------------------------------------------------------------------ *)
(* The engine: evaluates, records facts, and rewrites in one walk.
   The rewritten statements are only meaningful when the walk starts
   from a loop-stable environment (callers re-walk after fixpoints);
   analysis-only callers simply discard them.                          *)
(* ------------------------------------------------------------------ *)

type retcell = (I.t * env) option ref

let ret_join (cell : retcell option) iv env =
  match cell with
  | None -> ()
  | Some c ->
    c :=
      (match !c with
      | None -> Some (iv, env)
      | Some (v, e) -> Some (I.join v iv, join_env e env))

let rec eval st sc path env (e : Hir.expr) : env * Hir.expr * I.t * bool =
  match e with
  | Const n -> (env, e, I.of_const n, true)
  | Var x ->
    if S.mem x sc.bound then
      let iv = var_iv env x in
      (env, folded e iv true, iv, true)
    else (
      match M.find_opt x st.ctx.input_ty with
      | Some ty -> (env, e, I.of_ty ty, false)
      | None ->
        let iv = var_iv env x in
        (env, folded e iv true, iv, true))
  | Arr (a, i) -> (
    let env, i', iiv, isafe = eval st sc path env i in
    match M.find_opt a st.ctx.arr_ty with
    | Some (ety, len) ->
      rec_index st path a iiv len;
      let inb = iiv.I.lo >= 0 && iiv.I.hi <= len - 1 in
      let v = match M.find_opt a env.arrs with Some v -> v | None -> I.of_ty ety in
      let safe = isafe && inb in
      (env, folded (Hir.Arr (a, i')) v safe, v, safe)
    | None -> (env, Hir.Arr (a, i'), I.top, false))
  | Bin (op, a, b) ->
    let env, a', aiv, sa = eval st sc path env a in
    let env, b', biv, sb = eval st sc path env b in
    let iv = I.binop op aiv biv in
    let safe = sa && sb in
    (env, folded (Hir.Bin (op, a', b')) iv safe, iv, safe)
  | Un (op, a) ->
    let env, a', aiv, sa = eval st sc path env a in
    let iv = I.unop op aiv in
    (env, folded (Hir.Un (op, a')) iv sa, iv, sa)
  | Call (f, args) ->
    let env, args', iv = call st sc path env f args in
    (env, Hir.Call (f, args'), iv, false)

and call st sc path env f args : env * Hir.expr list * I.t =
  let env, rev_args, rev_ivs =
    List.fold_left
      (fun (env, es, ivs) a ->
        let env, a', iv, _ = eval st sc path env a in
        (env, a' :: es, iv :: ivs))
      (env, [], []) args
  in
  let args' = List.rev rev_args and arg_ivs = List.rev rev_ivs in
  match M.find_opt f st.ctx.subs with
  | None -> (env, args', I.top)
  | Some sub ->
    let ret_default () =
      match sub.Hir.s_ret with Some ty -> I.of_ty ty | None -> I.of_const 0
    in
    if
      st.depth >= rec_depth_limit
      || List.length sub.Hir.s_params <> List.length arg_ivs
    then (havoc st env f, args', ret_default ())
    else (
      st.depth <- st.depth + 1;
      let names =
        List.map fst sub.Hir.s_params @ List.map fst sub.Hir.s_locals
      in
      let saved = List.map (fun n -> (n, M.find_opt n env.vars)) names in
      let vars =
        List.fold_left2
          (fun m (p, ty) iv -> M.add p (I.wrap_ty ty iv) m)
          env.vars sub.Hir.s_params arg_ivs
      in
      let vars =
        List.fold_left
          (fun m (l, _) -> M.add l (I.of_const 0) m)
          vars sub.Hir.s_locals
      in
      let sc' =
        {
          bound = List.fold_left (fun s n -> S.add n s) sc.bound names;
          ltys =
            List.fold_left
              (fun m (n, ty) -> M.add n ty m)
              M.empty
              (sub.Hir.s_params @ sub.Hir.s_locals);
        }
      in
      let ret : retcell = ref None in
      let out, _ =
        exec st sc' ~ret:(Some ret) (path ^ "/" ^ f)
          (Some { env with vars })
          sub.Hir.s_body
      in
      st.depth <- st.depth - 1;
      let restore e =
        {
          e with
          vars =
            List.fold_left
              (fun m (n, o) ->
                match o with Some v -> M.add n v m | None -> M.remove n m)
              e.vars saved;
        }
      in
      let fall =
        match out with Some e -> Some (I.of_const 0, e) | None -> None
      in
      let exits =
        match (!ret, fall) with
        | None, None -> None
        | Some x, None | None, Some x -> Some x
        | Some (v1, e1), Some (v2, e2) -> Some (I.join v1 v2, join_env e1 e2)
      in
      match exits with
      | None ->
        (* callee provably never completes: the continuation is
           unreachable, any environment is sound *)
        (env, args', ret_default ())
      | Some (rv, e) ->
        let rv =
          match sub.Hir.s_ret with
          | Some ty -> I.wrap_ty ty rv
          | None -> I.of_const 0
        in
        (restore e, args', rv))

and havoc st env f =
  let su = st.ctx.summary f in
  let vars =
    Dataflow.Names.fold
      (fun n m ->
        match M.find_opt n st.ctx.var_ty with
        | Some ty ->
          rec_store st n ~raw:I.top ~wrapped:(I.of_ty ty);
          M.add n (I.of_ty ty) m
        | None -> if M.mem n m then M.add n I.top m else m)
      su.Dataflow.su_defs env.vars
  in
  let arrs =
    Dataflow.Names.fold
      (fun a m ->
        match M.find_opt a st.ctx.arr_ty with
        | Some (ety, _) ->
          rec_arr_store st a ~raw:I.top ~wrapped:(I.of_ty ety);
          M.add a (I.of_ty ety) m
        | None -> m)
      su.Dataflow.su_arr_defs env.arrs
  in
  { vars; arrs }

and exec st sc ~ret path (env : env option) (stmts : Hir.stmt list) :
    env option * Hir.stmt list =
  let _, env, rev =
    List.fold_left
      (fun (i, env, acc) s ->
        let p = Printf.sprintf "%s/%d" path i in
        match env with
        | None -> (i + 1, None, s :: acc) (* unreachable: keep as-is *)
        | Some e ->
          let env', ss = exec_stmt st sc ~ret p e s in
          (i + 1, env', List.rev_append ss acc))
      (0, env, []) stmts
  in
  (env, List.rev rev)

and exec_stmt st sc ~ret path env (s : Hir.stmt) : env option * Hir.stmt list =
  match s with
  | Assign (lv, rhs) -> (
    let is_const = match rhs with Hir.Const _ -> true | _ -> false in
    let env, rhs', riv, _ = eval st sc path env rhs in
    match lv with
    | Lv_var x ->
      let is_local = S.mem x sc.bound in
      let ty =
        if is_local then M.find_opt x sc.ltys
        else
          match M.find_opt x st.ctx.var_ty with
          | Some ty -> Some ty
          | None -> M.find_opt x st.ctx.input_ty
      in
      rec_assign st path riv ty is_const;
      let wrapped = wrap_opt ty riv in
      if (not is_local) && M.mem x st.ctx.var_ty then
        rec_store st x ~raw:riv ~wrapped;
      ( Some { env with vars = M.add x wrapped env.vars },
        [ Hir.Assign (Lv_var x, rhs') ] )
    | Lv_arr (a, i) -> (
      let env, i', iiv, _ = eval st sc path env i in
      let s' = [ Hir.Assign (Hir.Lv_arr (a, i'), rhs') ] in
      match M.find_opt a st.ctx.arr_ty with
      | None -> (None, s') (* unknown array: certain runtime error *)
      | Some (ety, len) ->
        rec_index st path a iiv len;
        rec_assign st path riv (Some ety) is_const;
        if iiv.I.hi < 0 || iiv.I.lo > len - 1 then (None, s')
        else (
          let wrapped = I.wrap_ty ety riv in
          rec_arr_store st a ~raw:riv ~wrapped;
          let prev =
            match M.find_opt a env.arrs with
            | Some v -> v
            | None -> I.of_ty ety
          in
          ( Some { env with arrs = M.add a (I.join prev wrapped) env.arrs },
            s' ))))
  | If (c, t, e) ->
    let env, c', civ, csafe = eval st sc path env c in
    (match c with Hir.Const _ -> () | _ -> rec_branch st path civ `If);
    let t_reach = not (never_nonzero civ) in
    let e_reach = may_be_zero civ in
    let t_in = if t_reach then refine st sc env c true else None in
    let e_in = if e_reach then refine st sc env c false else None in
    let t_out, t' = exec st sc ~ret (path ^ "/then") t_in t in
    let e_out, e' = exec st sc ~ret (path ^ "/else") e_in e in
    let out = join_opt t_out e_out in
    if t_in <> None && e_in = None && csafe && not (Hir.stmts_contain_wait e)
    then (out, t')
    else if e_in <> None && t_in = None && csafe
            && not (Hir.stmts_contain_wait t)
    then (out, e')
    else (out, [ Hir.If (c', t', e') ])
  | While (c, body) ->
    let rec fix n head =
      let h1, _, civ, _ = eval st sc path head c in
      let body_in =
        if never_nonzero civ then None else refine st sc h1 c true
      in
      let body_out, _ = exec st sc ~ret (path ^ "/do") body_in body in
      match body_out with
      | None -> head
      | Some b ->
        let j = join_env head b in
        if equal_env j head then head
        else fix (n + 1) (if n >= 2 then widen_env head j else j)
    in
    let head = fix 0 env in
    let h1, c', civ, csafe = eval st sc path head c in
    (match c with Hir.Const _ -> () | _ -> rec_branch st path civ `While);
    let body_in = if never_nonzero civ then None else refine st sc h1 c true in
    let _, body' = exec st sc ~ret (path ^ "/do") body_in body in
    let exit_env =
      if may_be_zero civ then refine st sc h1 c false else None
    in
    if never_nonzero civ && csafe then (exit_env, [])
    else (exit_env, [ Hir.While (c', body') ])
  | For (iv_name, lo, hi, body) ->
    if lo > hi then (Some env, [])
    else
      let saved = M.find_opt iv_name env.vars in
      let sc' = { sc with bound = S.add iv_name sc.bound } in
      let with_iv e =
        { e with vars = M.add iv_name (I.of_bounds lo hi) e.vars }
      in
      let step h = fst (exec st sc' ~ret (path ^ "/do") (Some (with_iv h)) body) in
      let rec fix n head =
        match step head with
        | None -> head
        | Some b ->
          let j = join_env head b in
          if equal_env j head then head
          else fix (n + 1) (if n >= 2 then widen_env head j else j)
      in
      let head = fix 0 env in
      let out, body' =
        exec st sc' ~ret (path ^ "/do") (Some (with_iv head)) body
      in
      let out =
        match out with
        | None -> None
        | Some o ->
          Some
            {
              o with
              vars =
                (match saved with
                | Some v -> M.add iv_name v o.vars
                | None -> M.remove iv_name o.vars);
            }
      in
      (out, [ Hir.For (iv_name, lo, hi, body') ])
  | Wait -> (Some env, [ Hir.Wait ])
  | Call_p (f, args) ->
    let env, args', _ = call st sc path env f args in
    (Some env, [ Hir.Call_p (f, args') ])
  | Return e_opt -> (
    match e_opt with
    | None ->
      ret_join ret (I.of_const 0) env;
      (None, [ s ])
    | Some e ->
      let env, e', riv, _ = eval st sc path env e in
      ret_join ret riv env;
      (None, [ Hir.Return (Some e') ]))

(* ------------------------------------------------------------------ *)
(* Whole-module driver                                                 *)
(* ------------------------------------------------------------------ *)

let build_ctx (md : Hir.module_def) =
  let var_ty =
    List.fold_left
      (fun m (n, ty) -> M.add n ty m)
      (List.fold_left
         (fun m (n, dir, ty) ->
           match dir with Hir.Pout -> M.add n ty m | Hir.Pin -> m)
         M.empty md.Hir.m_ports)
      md.Hir.m_vars
  in
  let input_ty =
    List.fold_left
      (fun m (n, dir, ty) ->
        match dir with Hir.Pin -> M.add n ty m | Hir.Pout -> m)
      M.empty md.Hir.m_ports
  in
  let arr_ty =
    List.fold_left
      (fun m (n, ty, len) -> M.add n (ty, len) m)
      M.empty md.Hir.m_arrays
  in
  let subs =
    List.fold_left
      (fun m (s : Hir.subprogram) -> M.add s.Hir.s_name s m)
      M.empty md.Hir.m_subprograms
  in
  { var_ty; arr_ty; input_ty; subs; summary = Dataflow.summaries md }

let init_env ctx =
  {
    vars = M.map (fun _ -> I.of_const 0) ctx.var_ty;
    arrs = M.map (fun _ -> I.of_const 0) ctx.arr_ty;
  }

(* Fixpoint over the implicit process loop (SC_CTHREAD repeats
   forever: end-of-body state flows back to the top), then one final
   stable walk whose recordings and rewrites cover every activation. *)
let run st (md : Hir.module_def) =
  let path = md.Hir.m_name ^ "/body" in
  let env0 = init_env st.ctx in
  let rec fix n head =
    match fst (exec st scope0 ~ret:None path (Some head) md.Hir.m_body) with
    | None -> head
    | Some o ->
      let j = join_env head o in
      if equal_env j head then head
      else fix (n + 1) (if n >= 2 then widen_env head j else j)
  in
  let head = fix 0 env0 in
  let _, body' = exec st scope0 ~ret:None path (Some head) md.Hir.m_body in
  body'

type result = {
  var_ranges : (string * Interval.t) list;
  raw_ranges : (string * Interval.t) list;
  arr_ranges : (string * Interval.t) list;
  port_ranges : (string * Interval.t) list;
}

let analyse (md : Hir.module_def) : result =
  let ctx = build_ctx md in
  let r = fresh_recorder () in
  let st = { ctx; rec_ = Some r; depth = 0 } in
  let _ = run st md in
  let zero = I.of_const 0 in
  let with0 m name = match M.find_opt name m with None -> zero | Some v -> I.join zero v in
  let outs =
    List.filter_map
      (fun (n, dir, _) -> match dir with Hir.Pout -> Some n | Hir.Pin -> None)
      md.Hir.m_ports
  in
  {
    var_ranges =
      List.map (fun (n, _) -> (n, with0 r.wrapped_var n)) md.Hir.m_vars
      @ List.map (fun n -> (n, with0 r.wrapped_var n)) outs;
    raw_ranges = M.bindings r.raw_var;
    arr_ranges =
      List.map (fun (n, _, _) -> (n, with0 r.wrapped_arr n)) md.Hir.m_arrays;
    port_ranges =
      List.filter_map
        (fun n -> Option.map (fun v -> (n, v)) (M.find_opt n r.wrapped_var))
        outs;
  }

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let pp_ty (ty : Hir.ty) =
  Printf.sprintf "%s%d" (if ty.Hir.signed then "int" else "uint") ty.Hir.width

let lint (md : Hir.module_def) : D.t list =
  let ctx = build_ctx md in
  let r = fresh_recorder () in
  let st = { ctx; rec_ = Some r; depth = 0 } in
  let _ = run st md in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  Hashtbl.iter
    (fun path (iv, ty, is_const) ->
      match ty with
      | Some ty when (not is_const) && ty.Hir.width < 62 ->
        if I.meet iv (I.of_ty ty) = None then
          add
            (D.warning ~code:"W018" ~path
               "assigned value %s never fits %s: the store always truncates"
               (I.to_string iv) (pp_ty ty))
      | _ -> ())
    r.assigns;
  Hashtbl.iter
    (fun path (iv, kind) ->
      let what = match kind with `If -> "branch" | `While -> "loop" in
      if not (may_be_zero iv) then
        add
          (D.warning ~code:"W019" ~path
             "%s condition %s is always true" what (I.to_string iv))
      else if never_nonzero iv then
        add
          (D.warning ~code:"W019" ~path "%s condition is always false" what))
    r.branches;
  Hashtbl.iter
    (fun (path, arr) (iv, len) ->
      if iv.I.hi < 0 || iv.I.lo > len - 1 then
        add
          (D.error ~code:"E020" ~path
             "index %s of array %s is always outside [0, %d]" (I.to_string iv)
             arr (len - 1))
      else if iv.I.lo < 0 || iv.I.hi > len - 1 then
        add
          (D.warning ~code:"W021" ~path
             "index %s of array %s may leave [0, %d]" (I.to_string iv) arr
             (len - 1)))
    r.indices;
  List.sort_uniq D.compare !ds

(* ------------------------------------------------------------------ *)
(* Optimiser                                                           *)
(* ------------------------------------------------------------------ *)

let narrow_ty (ty : Hir.ty) (raw : I.t option) =
  match raw with
  | None ->
    (* never stored: the declaration only ever holds its reset 0 *)
    if ty.Hir.width > 1 then { ty with Hir.width = 1 } else ty
  | Some raw ->
    let lo = Stdlib.min raw.I.lo 0 and hi = Stdlib.max raw.I.hi 0 in
    let range = I.of_bounds lo hi in
    if ty.Hir.signed then
      let w = I.min_width ~signed:true range in
      if w < ty.Hir.width then { ty with Hir.width = w } else ty
    else if lo >= 0 then
      let w = I.min_width ~signed:false range in
      if w < ty.Hir.width then { ty with Hir.width = w } else ty
    else ty (* unsigned declaration wrapping negatives: load-bearing *)

let optimise (md : Hir.module_def) : Hir.module_def =
  let inlined =
    if md.Hir.m_subprograms <> [] then Inline.run md else md
  in
  let ctx = build_ctx inlined in
  let r = fresh_recorder () in
  let st = { ctx; rec_ = Some r; depth = 0 } in
  let body' = run st inlined in
  let m_vars' =
    List.map
      (fun (n, ty) -> (n, narrow_ty ty (M.find_opt n r.raw_var)))
      inlined.Hir.m_vars
  in
  let m_arrays' =
    List.map
      (fun (n, ty, len) -> (n, narrow_ty ty (M.find_opt n r.raw_arr), len))
      inlined.Hir.m_arrays
  in
  let md' =
    { inlined with Hir.m_body = body'; m_vars = m_vars'; m_arrays = m_arrays' }
  in
  match Hir.validate md' with Ok () -> md' | Error _ -> inlined

(* ------------------------------------------------------------------ *)
(* FSM-level analysis: value-reachability and pruning                  *)
(* ------------------------------------------------------------------ *)

let empty_summary =
  {
    Dataflow.su_uses = Dataflow.Names.empty;
    su_arr_uses = Dataflow.Names.empty;
    su_defs = Dataflow.Names.empty;
    su_arr_defs = Dataflow.Names.empty;
  }

let fsm_ctx (fsm : Fsm.t) =
  let add m (n, ty) = M.add n ty m in
  {
    var_ty = List.fold_left add (List.fold_left add M.empty fsm.Fsm.vars) fsm.Fsm.outputs;
    input_ty = List.fold_left add M.empty fsm.Fsm.inputs;
    arr_ty =
      List.fold_left
        (fun m (n, ty, len) -> M.add n (ty, len) m)
        M.empty fsm.Fsm.arrays;
    subs = M.empty;
    summary = (fun _ -> empty_summary);
  }

let rec stmt_of_action = function
  | Fsm.Do (lv, e) -> Hir.Assign (lv, e)
  | Fsm.Do_if (c, a, b) ->
    Hir.If (c, List.map stmt_of_action a, List.map stmt_of_action b)

(* Worklist abstract execution of the state machine. Entry is seeded
   with the all-zero reset state; the implicit repeat-forever edge is
   modelled by propagating into the entry like any other state. *)
let fsm_envs (fsm : Fsm.t) =
  let ctx = fsm_ctx fsm in
  let st = { ctx; rec_ = None; depth = 0 } in
  let n = Array.length fsm.Fsm.states in
  let envs : env option array = Array.make n None in
  let joins = Array.make n 0 in
  let queue = Queue.create () in
  let propagate j e =
    let merged =
      match envs.(j) with
      | None -> Some e
      | Some old ->
        let joined = join_env old e in
        let joined = if joins.(j) > 3 then widen_env old joined else joined in
        if equal_env joined old then None else Some joined
    in
    match merged with
    | None -> ()
    | Some m ->
      joins.(j) <- joins.(j) + 1;
      envs.(j) <- Some m;
      Queue.push j queue
  in
  if n > 0 then propagate fsm.Fsm.entry (init_env ctx);
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    match envs.(i) with
    | None -> ()
    | Some e -> (
      let path = Printf.sprintf "%s/state-%d" fsm.Fsm.fsm_name i in
      let out, _ =
        exec st scope0 ~ret:None path (Some e)
          (List.map stmt_of_action fsm.Fsm.states.(i).Fsm.actions)
      in
      match out with
      | None -> () (* actions provably crash: no successors *)
      | Some e -> (
        match fsm.Fsm.states.(i).Fsm.next with
        | Fsm.Goto j -> propagate j e
        | Fsm.Branch (c, a, b) ->
          let civ, _ = peval st scope0 e c in
          (if not (never_nonzero civ) then
             match refine st scope0 e c true with
             | Some e' -> propagate a e'
             | None -> ());
          if may_be_zero civ then (
            match refine st scope0 e c false with
            | Some e' -> propagate b e'
            | None -> ())))
  done;
  (envs, st)

let lint_fsm (fsm : Fsm.t) : D.t list =
  let envs, _ = fsm_envs fsm in
  let syntactic = Fsm_lint.reachable fsm in
  let ds = ref [] in
  Array.iteri
    (fun i reached ->
      if reached && envs.(i) = None then
        ds :=
          D.warning ~code:"W022"
            ~path:(Printf.sprintf "%s/state-%d" fsm.Fsm.fsm_name i)
            "state is unreachable under value constraints"
          :: !ds)
    syntactic;
  List.sort_uniq D.compare !ds

let prune_fsm (fsm : Fsm.t) : Fsm.t =
  let envs, st = fsm_envs fsm in
  let n = Array.length fsm.Fsm.states in
  if n = 0 then fsm
  else begin
    (* Decide each live state's next: a Branch collapses to Goto only
       when the analysis proves it one-sided AND the condition is
       side-effect- and crash-free (dropping its evaluation must not
       change input consumption or error behaviour). *)
    let next' =
      Array.mapi
        (fun i (state : Fsm.state) ->
          match (state.Fsm.next, envs.(i)) with
          | Fsm.Branch (c, a, b), Some e -> (
            (* the condition is evaluated after this state's actions,
               so judge it on the post-actions environment *)
            let post, _ =
              exec st scope0 ~ret:None
                (Printf.sprintf "%s/state-%d" fsm.Fsm.fsm_name i)
                (Some e)
                (List.map stmt_of_action state.Fsm.actions)
            in
            match post with
            | None -> state.Fsm.next
            | Some e ->
              let civ, csafe = peval st scope0 e c in
              if csafe && never_nonzero civ then Fsm.Goto b
              else if csafe && not (may_be_zero civ) then Fsm.Goto a
              else state.Fsm.next)
          | next, _ -> next)
        fsm.Fsm.states
    in
    (* Keep value-reached states, then close over the targets of
       whatever next-logic survives on kept states. *)
    let kept = Array.make n false in
    Array.iteri (fun i e -> if e <> None then kept.(i) <- true) envs;
    kept.(fsm.Fsm.entry) <- true;
    let changed = ref true in
    while !changed do
      changed := false;
      let mark j = if not kept.(j) then (kept.(j) <- true; changed := true) in
      Array.iteri
        (fun i nx ->
          if kept.(i) then
            match nx with
            | Fsm.Goto j -> mark j
            | Fsm.Branch (_, a, b) ->
              mark a;
              mark b)
        next'
    done;
    if Array.for_all Fun.id kept then
      { fsm with Fsm.states = Array.mapi (fun i s -> { s with Fsm.next = next'.(i) }) fsm.Fsm.states }
    else begin
      let remap = Array.make n (-1) in
      let count = ref 0 in
      Array.iteri
        (fun i k ->
          if k then (
            remap.(i) <- !count;
            incr count))
        kept;
      let states' = Array.make !count { Fsm.actions = []; next = Fsm.Goto 0 } in
      Array.iteri
        (fun i k ->
          if k then
            let nx =
              match next'.(i) with
              | Fsm.Goto j -> Fsm.Goto remap.(j)
              | Fsm.Branch (c, a, b) -> Fsm.Branch (c, remap.(a), remap.(b))
            in
            states'.(remap.(i)) <-
              { Fsm.actions = fsm.Fsm.states.(i).Fsm.actions; next = nx })
        kept;
      { fsm with Fsm.states = states'; entry = remap.(fsm.Fsm.entry) }
    end
  end
