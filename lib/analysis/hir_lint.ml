open Fossy
module D = Diagnostic
module Names = Dataflow.Names

(* -- walking helpers ------------------------------------------------- *)

(* Visits every statement with its path, recursing into compound
   bodies. *)
let iter_stmts prefix stmts f =
  let rec seq prefix stmts =
    List.iteri
      (fun i s ->
        let p = Printf.sprintf "%s/%d" prefix i in
        f p s;
        match s with
        | Hir.If (_, a, b) ->
          seq (p ^ "/then") a;
          seq (p ^ "/else") b
        | Hir.While (_, body) | Hir.For (_, _, _, body) -> seq (p ^ "/do") body
        | Hir.Assign _ | Hir.Wait | Hir.Call_p _ | Hir.Return _ -> ())
      stmts
  in
  seq prefix stmts

let iter_regions m f =
  f (m.Hir.m_name ^ "/body") None m.Hir.m_body;
  List.iter
    (fun s -> f (m.Hir.m_name ^ "/" ^ s.Hir.s_name) (Some s) s.Hir.s_body)
    m.Hir.m_subprograms

(* -- dataflow-backed passes ------------------------------------------ *)

(* W001/W002: reads that some path reaches before any write. The
   interpreter zero-initialises storage and hardware registers power
   up to a defined value, so this is a warning, not an error — but the
   read still depends on an implicit initial value the source never
   states. *)
let uninit_reads m =
  let check cfg at_entry acc =
    let sol = Dataflow.maybe_uninit cfg ~at_entry in
    Array.fold_left
      (fun acc node ->
        let before = sol.Dataflow.before.(node.Dataflow.id) in
        let acc =
          Names.fold
            (fun x acc ->
              D.warning ~code:"W001" ~path:node.Dataflow.path
                "variable %s may be read before initialisation" x
              :: acc)
            (Names.inter node.Dataflow.uses before)
            acc
        in
        Names.fold
          (fun a acc ->
            D.warning ~code:"W002" ~path:node.Dataflow.path
              "array %s may be read before any element is written" a
            :: acc)
          (Names.inter node.Dataflow.array_uses before)
          acc)
      acc cfg.Dataflow.nodes
  in
  let module_state =
    Names.of_list
      (List.map fst m.Hir.m_vars
      @ List.map (fun (n, _, _) -> n) m.Hir.m_arrays)
  in
  let acc = check (Dataflow.of_body m) module_state [] in
  List.fold_left
    (fun acc s ->
      (* Locals start undefined; module state and parameters are
         defined by the caller. *)
      let locals = Names.of_list (List.map fst s.Hir.s_locals) in
      check (Dataflow.of_subprogram m s) locals acc)
    acc m.Hir.m_subprograms

(* W003: assignments whose value no path reads again. Writes to output
   ports are externally observable and writes to module state from a
   subprogram outlive the call, so both are exempt. *)
let dead_assignments m =
  let ports = Names.of_list (List.map (fun (n, _, _) -> n) m.Hir.m_ports) in
  let module_state =
    Names.union ports (Names.of_list (List.map fst m.Hir.m_vars))
  in
  let check cfg ~observable ~exempt acc =
    let sol = Dataflow.live cfg ~at_exit:observable in
    Array.fold_left
      (fun acc node ->
        match node.Dataflow.stmt with
        | Some (Hir.Assign (Hir.Lv_var x, _))
          when (not (Names.mem x exempt))
               && not (Names.mem x sol.Dataflow.after.(node.Dataflow.id)) ->
          D.warning ~code:"W003" ~path:node.Dataflow.path
            "assignment to %s is dead: the value is never read" x
          :: acc
        | _ -> acc)
      acc cfg.Dataflow.nodes
  in
  let acc =
    check (Dataflow.of_body m) ~observable:ports ~exempt:ports []
  in
  List.fold_left
    (fun acc s ->
      check
        (Dataflow.of_subprogram m s)
        ~observable:module_state ~exempt:module_state acc)
    acc m.Hir.m_subprograms

(* W004: statements no constant-aware path from the entry reaches. *)
let unreachable_stmts m =
  let check cfg acc =
    let seen = Dataflow.reachable cfg in
    Array.fold_left
      (fun acc node ->
        match node.Dataflow.stmt with
        | Some s when not seen.(node.Dataflow.id) ->
          D.warning ~code:"W004" ~path:node.Dataflow.path
            "unreachable statement (%s)" (Dataflow.stmt_label s)
          :: acc
        | _ -> acc)
      acc cfg.Dataflow.nodes
  in
  let acc = check (Dataflow.of_body m) [] in
  List.fold_left
    (fun acc s -> check (Dataflow.of_subprogram m s) acc)
    acc m.Hir.m_subprograms

(* -- width lints ----------------------------------------------------- *)

let fits ty n =
  let w = ty.Hir.width in
  if w >= 63 then true
  else if ty.Hir.signed then n >= -(1 lsl (w - 1)) && n <= (1 lsl (w - 1)) - 1
  else n >= 0 && n <= (1 lsl w) - 1

let pp_ty ty =
  Printf.sprintf "%s<%d>" (if ty.Hir.signed then "int" else "uint") ty.Hir.width

let is_cmp = function
  | Hir.Eq | Hir.Ne | Hir.Lt | Hir.Le | Hir.Gt | Hir.Ge -> true
  | _ -> false

(* W005 constants that overflow the declared type, E006 shifts by the
   full width or more, W007 comparisons mixing signedness. Loop
   variables have no declared type and are skipped. *)
let width_lints m =
  let tys = Hashtbl.create 16 in
  List.iter (fun (n, _, ty) -> Hashtbl.replace tys n ty) m.Hir.m_ports;
  List.iter (fun (n, ty) -> Hashtbl.replace tys n ty) m.Hir.m_vars;
  let arr_tys = Hashtbl.create 8 in
  List.iter (fun (n, ty, _) -> Hashtbl.replace arr_tys n ty) m.Hir.m_arrays;
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let check_region locals prefix body =
    let local_tys = Hashtbl.copy tys in
    List.iter (fun (n, t) -> Hashtbl.replace local_tys n t) locals;
    let ty_of n = Hashtbl.find_opt local_tys n in
    let side_ty = function
      | Hir.Var n -> ty_of n
      | Hir.Arr (a, _) -> Hashtbl.find_opt arr_tys a
      | _ -> None
    in
    let check_const path what ty n =
      if not (fits ty n) then
        emit
          (D.warning ~code:"W005" ~path
             "constant %d does not fit %s of type %s" n what (pp_ty ty))
    in
    let check_args path callee args =
      match List.find_opt (fun s -> s.Hir.s_name = callee) m.Hir.m_subprograms with
      | None -> ()
      | Some s ->
        (try
           List.iter2
             (fun (pname, pty) arg ->
               match arg with
               | Hir.Const n ->
                 check_const path
                   (Printf.sprintf "parameter %s of %s" pname callee)
                   pty n
               | _ -> ())
             s.Hir.s_params args
         with Invalid_argument _ -> ())
    in
    let rec expr path = function
      | Hir.Const _ | Hir.Var _ -> ()
      | Hir.Arr (_, i) -> expr path i
      | Hir.Un (_, e) -> expr path e
      | Hir.Call (f, args) ->
        check_args path f args;
        List.iter (expr path) args
      | Hir.Bin (op, a, b) ->
        (match (op, side_ty a, b) with
        | (Hir.Shl | Hir.Shr), Some ty, Hir.Const n when n >= ty.Hir.width || n < 0
          ->
          emit
            (D.error ~code:"E006" ~path
               "shift by %d exceeds the %d-bit width of the operand" n
               ty.Hir.width)
        | _ -> ());
        (if is_cmp op then
           match (side_ty a, side_ty b) with
           | Some ta, Some tb when ta.Hir.signed <> tb.Hir.signed ->
             emit
               (D.warning ~code:"W007" ~path
                  "comparison mixes signed and unsigned operands (%s vs %s)"
                  (pp_ty ta) (pp_ty tb))
           | _ ->
             (match (a, side_ty a, b) with
             | Hir.Var x, Some ty, Hir.Const n when not (fits ty n) ->
               emit
                 (D.warning ~code:"W005" ~path
                    "comparison of %s : %s with out-of-range constant %d" x
                    (pp_ty ty) n)
             | _ -> ()));
        expr path a;
        expr path b
    in
    iter_stmts prefix body (fun path s ->
        match s with
        | Hir.Assign (lv, e) ->
          (match (lv, e) with
          | Hir.Lv_var x, Hir.Const n ->
            Option.iter (fun ty -> check_const path ("variable " ^ x) ty n) (ty_of x)
          | Hir.Lv_arr (a, _), Hir.Const n ->
            Option.iter
              (fun ty -> check_const path ("element of array " ^ a) ty n)
              (Hashtbl.find_opt arr_tys a)
          | _ -> ());
          (match lv with Hir.Lv_arr (_, i) -> expr path i | Hir.Lv_var _ -> ());
          expr path e
        | Hir.If (c, _, _) | Hir.While (c, _) -> expr path c
        | Hir.Call_p (p, args) ->
          check_args path p args;
          List.iter (expr path) args
        | Hir.Return (Some e) -> expr path e
        | Hir.For _ | Hir.Wait | Hir.Return None -> ())
  in
  check_region [] (m.Hir.m_name ^ "/body") m.Hir.m_body;
  List.iter
    (fun s ->
      check_region
        (s.Hir.s_params @ s.Hir.s_locals)
        (m.Hir.m_name ^ "/" ^ s.Hir.s_name)
        s.Hir.s_body)
    m.Hir.m_subprograms;
  !acc

(* -- synthesisability ------------------------------------------------ *)

(* E008: every path through a While body must pass a Wait, or the FSM
   for one clock cycle would have to run an unbounded number of
   iterations. [Hir.validate] only demands that some Wait exists; the
   path-sensitive version catches waits hidden behind one branch. *)
let wait_free_loops m =
  let find_sub p = List.find_opt (fun s -> s.Hir.s_name = p) m.Hir.m_subprograms in
  let rec sub_always_waits visited p =
    match find_sub p with
    | None -> false
    | Some s ->
      if List.mem p visited then false
      else seq_waits (p :: visited) s.Hir.s_body
  and seq_waits visited stmts = List.exists (stmt_waits visited) stmts
  and stmt_waits visited = function
    | Hir.Wait -> true
    | Hir.Assign _ | Hir.Return _ -> false
    | Hir.If (Hir.Const 0, _, b) -> seq_waits visited b
    | Hir.If (Hir.Const _, a, _) -> seq_waits visited a
    | Hir.If (_, a, b) -> seq_waits visited a && seq_waits visited b
    | Hir.While (Hir.Const c, body) when c <> 0 ->
      (* The loop is entered unconditionally; if the body waits, every
         continuation of this statement has waited. *)
      seq_waits visited body
    | Hir.While _ -> false (* may iterate zero times *)
    | Hir.For (_, lo, hi, body) -> lo <= hi && seq_waits visited body
    | Hir.Call_p (p, _) -> sub_always_waits visited p
  in
  let acc = ref [] in
  iter_regions m (fun prefix _ body ->
      iter_stmts prefix body (fun path s ->
          match s with
          | Hir.While (_, body) when not (seq_waits [] body) ->
            acc :=
              D.error ~code:"E008" ~path
                "while loop has a path through its body without Wait; the \
                 FSM cannot bound one clock cycle"
              :: !acc
          | _ -> ()));
  !acc

(* E009: recursion cannot be inlined or synthesised. *)
let call_cycles m =
  let callees s =
    let acc = ref [] in
    let add f = if not (List.mem f !acc) then acc := f :: !acc in
    let rec expr = function
      | Hir.Const _ | Hir.Var _ -> ()
      | Hir.Arr (_, i) -> expr i
      | Hir.Bin (_, a, b) ->
        expr a;
        expr b
      | Hir.Un (_, e) -> expr e
      | Hir.Call (f, args) ->
        add f;
        List.iter expr args
    in
    let rec stmt = function
      | Hir.Assign (Hir.Lv_var _, e) | Hir.Return (Some e) -> expr e
      | Hir.Assign (Hir.Lv_arr (_, i), e) ->
        expr i;
        expr e
      | Hir.If (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
      | Hir.While (c, body) ->
        expr c;
        List.iter stmt body
      | Hir.For (_, _, _, body) -> List.iter stmt body
      | Hir.Call_p (p, args) ->
        add p;
        List.iter expr args
      | Hir.Wait | Hir.Return None -> ()
    in
    List.iter stmt s.Hir.s_body;
    List.rev !acc
  in
  let reported = ref [] in
  let acc = ref [] in
  let rec dfs stack s =
    List.iter
      (fun f ->
        match List.find_opt (fun sub -> sub.Hir.s_name = f) m.Hir.m_subprograms with
        | None -> ()
        | Some sub ->
          if List.mem f stack then begin
            let cycle =
              let rec cut = function
                | [] -> []
                | x :: rest -> if x = f then [ x ] else x :: cut rest
              in
              List.rev (cut stack)
            in
            let key = List.sort String.compare cycle in
            if not (List.mem key !reported) then begin
              reported := key :: !reported;
              acc :=
                D.error ~code:"E009"
                  ~path:(m.Hir.m_name ^ "/" ^ f)
                  "recursive call cycle: %s"
                  (String.concat " -> " (cycle @ [ f ]))
                :: !acc
            end
          end
          else dfs (f :: stack) sub)
      (callees s)
  in
  List.iter (fun s -> dfs [ s.Hir.s_name ] s) m.Hir.m_subprograms;
  !acc

(* E010/E011/W015: port direction discipline. *)
let port_lints m =
  let dir n =
    List.find_opt (fun (p, _, _) -> p = n) m.Hir.m_ports
    |> Option.map (fun (_, d, _) -> d)
  in
  let acc = ref [] in
  let reads = Hashtbl.create 8 and writes = Hashtbl.create 8 in
  let rec expr = function
    | Hir.Const _ -> ()
    | Hir.Var n -> Hashtbl.replace reads n ()
    | Hir.Arr (_, i) -> expr i
    | Hir.Bin (_, a, b) ->
      expr a;
      expr b
    | Hir.Un (_, e) -> expr e
    | Hir.Call (_, args) -> List.iter expr args
  in
  iter_regions m (fun prefix _ body ->
      iter_stmts prefix body (fun path s ->
          match s with
          | Hir.Assign (Hir.Lv_var n, e) ->
            Hashtbl.replace writes n ();
            if dir n = Some Hir.Pin then
              acc :=
                D.error ~code:"E010" ~path
                  "write to input port %s: inputs are driven by the \
                   environment"
                  n
                :: !acc;
            expr e
          | Hir.Assign (Hir.Lv_arr (_, i), e) ->
            expr i;
            expr e
          | Hir.If (c, _, _) | Hir.While (c, _) -> expr c
          | Hir.Call_p (_, args) -> List.iter expr args
          | Hir.Return (Some e) -> expr e
          | Hir.For _ | Hir.Wait | Hir.Return None -> ()));
  List.iter
    (fun (n, d, _) ->
      if d = Hir.Pout && not (Hashtbl.mem writes n) then
        if Hashtbl.mem reads n then
          acc :=
            D.error ~code:"E011"
              ~path:(m.Hir.m_name ^ "/" ^ n)
              "output port %s is read but never driven" n
            :: !acc
        else
          acc :=
            D.warning ~code:"W015"
              ~path:(m.Hir.m_name ^ "/" ^ n)
              "output port %s is never driven" n
            :: !acc)
    m.Hir.m_ports;
  !acc

let run m =
  List.concat
    [
      uninit_reads m;
      dead_assignments m;
      unreachable_stmts m;
      width_lints m;
      wait_free_loops m;
      call_cycles m;
      port_lints m;
    ]
  |> List.sort_uniq D.compare
