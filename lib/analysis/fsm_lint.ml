open Fossy
module D = Diagnostic
module Names = Dataflow.Names

(* Constant-aware reachability: a Branch on a constant condition only
   flows into the arm it selects, unlike [Fsm.reachable_states] which
   follows both. *)
let reachable fsm =
  let n = Array.length fsm.Fsm.states in
  let seen = Array.make n false in
  let rec go i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      match fsm.Fsm.states.(i).Fsm.next with
      | Fsm.Goto j -> go j
      | Fsm.Branch (Hir.Const 0, _, e) -> go e
      | Fsm.Branch (Hir.Const _, t, _) -> go t
      | Fsm.Branch (_, t, e) ->
        go t;
        go e
    end
  in
  go fsm.Fsm.entry;
  seen

let rec expr_reads acc = function
  | Hir.Const _ -> acc
  | Hir.Var n -> Names.add n acc
  | Hir.Arr (a, i) -> expr_reads (Names.add a acc) i
  | Hir.Bin (_, a, b) -> expr_reads (expr_reads acc a) b
  | Hir.Un (_, e) -> expr_reads acc e
  | Hir.Call (_, args) -> List.fold_left expr_reads acc args

let rec action_reads acc = function
  | Fsm.Do (lv, e) ->
    let acc = match lv with
      | Hir.Lv_var _ -> acc
      | Hir.Lv_arr (_, i) -> expr_reads acc i
    in
    expr_reads acc e
  | Fsm.Do_if (c, a, b) ->
    let acc = expr_reads acc c in
    let acc = List.fold_left action_reads acc a in
    List.fold_left action_reads acc b

let reads fsm =
  Array.fold_left
    (fun acc st ->
      let acc = List.fold_left action_reads acc st.Fsm.actions in
      match st.Fsm.next with
      | Fsm.Goto _ -> acc
      | Fsm.Branch (c, _, _) -> expr_reads acc c)
    Names.empty fsm.Fsm.states

(* W012: states no run of the machine can enter. *)
let unreachable_states fsm =
  let seen = reachable fsm in
  let acc = ref [] in
  Array.iteri
    (fun i reached ->
      if not reached then
        acc :=
          D.warning ~code:"W012"
            ~path:(Printf.sprintf "%s/state-%d" fsm.Fsm.fsm_name i)
            "FSM state %d is unreachable from the entry state" i
          :: !acc)
    seen;
  List.rev !acc

(* W013: registers the next-state/action logic never reads — the
   synthesis result carries a flip-flop whose output goes nowhere. *)
let unread_registers fsm =
  let used = reads fsm in
  List.filter_map
    (fun (n, _) ->
      if Names.mem n used then None
      else
        Some
          (D.warning ~code:"W013"
             ~path:(fsm.Fsm.fsm_name ^ "/" ^ n)
             "register %s is never read by any state" n))
    fsm.Fsm.vars

let run fsm = unreachable_states fsm @ unread_registers fsm
