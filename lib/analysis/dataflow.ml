open Fossy

module Names = Set.Make (String)

(* -- call summaries -------------------------------------------------- *)

type summary = {
  su_uses : Names.t;  (** module-level variables/ports read *)
  su_arr_uses : Names.t;
  su_defs : Names.t;  (** module-level variables/ports written *)
  su_arr_defs : Names.t;
}

let empty_summary =
  {
    su_uses = Names.empty;
    su_arr_uses = Names.empty;
    su_defs = Names.empty;
    su_arr_defs = Names.empty;
  }

let union_summary a b =
  {
    su_uses = Names.union a.su_uses b.su_uses;
    su_arr_uses = Names.union a.su_arr_uses b.su_arr_uses;
    su_defs = Names.union a.su_defs b.su_defs;
    su_arr_defs = Names.union a.su_arr_defs b.su_arr_defs;
  }

(* Transitive module-level def/use sets per subprogram. Call cycles
   (rejected by the E009 lint) are cut with a visiting set, so the
   computation always terminates. *)
let summaries m =
  let tbl : (string, summary) Hashtbl.t = Hashtbl.create 8 in
  let find_sub f = List.find_opt (fun s -> s.Hir.s_name = f) m.Hir.m_subprograms in
  let rec summary_of visiting s =
    match Hashtbl.find_opt tbl s.Hir.s_name with
    | Some su -> su
    | None when Names.mem s.Hir.s_name visiting -> empty_summary
    | None ->
      let visiting = Names.add s.Hir.s_name visiting in
      let local =
        Names.of_list (List.map fst s.Hir.s_params @ List.map fst s.Hir.s_locals)
      in
      let acc = ref empty_summary in
      let add f = acc := f !acc in
      let use n =
        if not (Names.mem n local) then
          add (fun a -> { a with su_uses = Names.add n a.su_uses })
      in
      let def n =
        if not (Names.mem n local) then
          add (fun a -> { a with su_defs = Names.add n a.su_defs })
      in
      let callee f =
        match find_sub f with
        | Some sub -> add (fun a -> union_summary a (summary_of visiting sub))
        | None -> ()
      in
      let rec expr = function
        | Hir.Const _ -> ()
        | Hir.Var n -> use n
        | Hir.Arr (a, i) ->
          add (fun s -> { s with su_arr_uses = Names.add a s.su_arr_uses });
          expr i
        | Hir.Bin (_, a, b) ->
          expr a;
          expr b
        | Hir.Un (_, e) -> expr e
        | Hir.Call (f, args) ->
          callee f;
          List.iter expr args
      in
      let rec stmt = function
        | Hir.Assign (Hir.Lv_var n, e) ->
          def n;
          expr e
        | Hir.Assign (Hir.Lv_arr (a, i), e) ->
          add (fun s -> { s with su_arr_defs = Names.add a s.su_arr_defs });
          expr i;
          expr e
        | Hir.If (c, a, b) ->
          expr c;
          List.iter stmt a;
          List.iter stmt b
        | Hir.While (c, body) ->
          expr c;
          List.iter stmt body
        | Hir.For (_, _, _, body) -> List.iter stmt body
        | Hir.Wait -> ()
        | Hir.Call_p (p, args) ->
          callee p;
          List.iter expr args
        | Hir.Return (Some e) -> expr e
        | Hir.Return None -> ()
      in
      List.iter stmt s.Hir.s_body;
      Hashtbl.replace tbl s.Hir.s_name !acc;
      !acc
  in
  List.iter (fun s -> ignore (summary_of Names.empty s)) m.Hir.m_subprograms;
  fun f -> Option.value (Hashtbl.find_opt tbl f) ~default:empty_summary

(* -- control-flow graphs --------------------------------------------- *)

type node = {
  id : int;
  path : string;
  stmt : Hir.stmt option;  (** [None] for the synthetic entry/exit *)
  defs : Names.t;
  uses : Names.t;
  array_defs : Names.t;
  array_uses : Names.t;
  mutable succ : int list;
  mutable pred : int list;
}

type t = { nodes : node array; entry : int; exit_ : int }

let const_value = function Hir.Const n -> Some n | _ -> None

type builder = { mutable rev_nodes : node list; mutable count : int }

let add b ~path ?stmt ?(defs = Names.empty) ?(uses = Names.empty)
    ?(array_defs = Names.empty) ?(array_uses = Names.empty) () =
  let n =
    {
      id = b.count;
      path;
      stmt;
      defs;
      uses;
      array_defs;
      array_uses;
      succ = [];
      pred = [];
    }
  in
  b.rev_nodes <- n :: b.rev_nodes;
  b.count <- b.count + 1;
  n

let connect a b =
  if not (List.mem b.id a.succ) then begin
    a.succ <- a.succ @ [ b.id ];
    b.pred <- b.pred @ [ a.id ]
  end

let expr_refs summary e =
  let vars = ref Names.empty
  and arrays = ref Names.empty
  and defs = ref Names.empty
  and arr_defs = ref Names.empty in
  let rec go = function
    | Hir.Const _ -> ()
    | Hir.Var n -> vars := Names.add n !vars
    | Hir.Arr (a, i) ->
      arrays := Names.add a !arrays;
      go i
    | Hir.Bin (_, a, b) ->
      go a;
      go b
    | Hir.Un (_, e) -> go e
    | Hir.Call (f, args) ->
      let su = summary f in
      vars := Names.union su.su_uses !vars;
      arrays := Names.union su.su_arr_uses !arrays;
      defs := Names.union su.su_defs !defs;
      arr_defs := Names.union su.su_arr_defs !arr_defs;
      List.iter go args
  in
  go e;
  (!vars, !arrays, !defs, !arr_defs)

let build ~name ~loops summary stmts =
  let b = { rev_nodes = []; count = 0 } in
  let entry = add b ~path:(name ^ "/entry") () in
  let returns = ref [] in
  (* [preds] are the dangling nodes whose control flow falls into the
     next statement; a statement may leave several (the arms of an
     [If]). An empty [preds] means the statement is unreachable — it
     is still built, so the reachability pass can report it. *)
  let rec seq prefix preds stmts =
    List.fold_left
      (fun (preds, i) s -> (stmt (Printf.sprintf "%s/%d" prefix i) preds s, i + 1))
      (preds, 0) stmts
    |> fst
  and stmt path preds s =
    let node ?stmt ?defs ?uses ?array_defs ?array_uses () =
      let n = add b ~path ?stmt ?defs ?uses ?array_defs ?array_uses () in
      List.iter (fun p -> connect p n) preds;
      n
    in
    let refs e = expr_refs summary e in
    match s with
    | Hir.Wait -> [ node ~stmt:s () ]
    | Hir.Assign (lv, e) ->
      let uses, array_uses, d0, a0 = refs e in
      let uses, array_uses, defs, array_defs =
        match lv with
        | Hir.Lv_var n -> (uses, array_uses, Names.add n d0, a0)
        | Hir.Lv_arr (a, i) ->
          let iu, iau, id, iad = refs i in
          ( Names.union uses iu,
            Names.union array_uses iau,
            Names.union d0 id,
            Names.add a (Names.union a0 iad) )
      in
      [ node ~stmt:s ~defs ~uses ~array_defs ~array_uses () ]
    | Hir.Call_p (p, args) ->
      let su = summary p in
      let uses, array_uses, defs, array_defs =
        List.fold_left
          (fun (u, au, d, ad) arg ->
            let u', au', d', ad' = refs arg in
            ( Names.union u u',
              Names.union au au',
              Names.union d d',
              Names.union ad ad' ))
          (su.su_uses, su.su_arr_uses, su.su_defs, su.su_arr_defs)
          args
      in
      [ node ~stmt:s ~defs ~uses ~array_defs ~array_uses () ]
    | Hir.Return e ->
      let uses, array_uses, defs, array_defs =
        match e with
        | None -> (Names.empty, Names.empty, Names.empty, Names.empty)
        | Some e -> refs e
      in
      let n = node ~stmt:s ~defs ~uses ~array_defs ~array_uses () in
      returns := n :: !returns;
      []
    | Hir.If (cond, a, bstmts) ->
      let uses, array_uses, defs, array_defs = refs cond in
      let h = node ~stmt:s ~defs ~uses ~array_defs ~array_uses () in
      let into_then, into_else =
        match const_value cond with
        | Some 0 -> ([], [ h ])
        | Some _ -> ([ h ], [])
        | None -> ([ h ], [ h ])
      in
      let texit =
        if a = [] then into_then else seq (path ^ "/then") into_then a
      in
      let eexit =
        if bstmts = [] then into_else
        else seq (path ^ "/else") into_else bstmts
      in
      texit @ eexit
    | Hir.While (cond, body) ->
      let uses, array_uses, defs, array_defs = refs cond in
      let h = node ~stmt:s ~defs ~uses ~array_defs ~array_uses () in
      let into_body =
        match const_value cond with Some 0 -> [] | _ -> [ h ]
      in
      let bexit = seq (path ^ "/do") into_body body in
      List.iter (fun p -> connect p h) bexit;
      (match const_value cond with Some n when n <> 0 -> [] | _ -> [ h ])
    | Hir.For (iv, lo, hi, body) ->
      let h = node ~stmt:s ~defs:(Names.singleton iv) () in
      let into_body = if lo > hi then [] else [ h ] in
      let bexit = seq (path ^ "/do") into_body body in
      List.iter (fun p -> connect p h) bexit;
      [ h ]
  in
  let exits = seq name [ entry ] stmts in
  let exit_ = add b ~path:(name ^ "/exit") () in
  List.iter (fun p -> connect p exit_) exits;
  List.iter (fun r -> connect r exit_) !returns;
  if loops then connect exit_ entry;
  let nodes = Array.of_list (List.rev b.rev_nodes) in
  { nodes; entry = entry.id; exit_ = exit_.id }

let of_body m =
  (* The behavioural process is an implicit infinite loop (SC_CTHREAD):
     control falls from the last statement back to the first, which
     the exit→entry edge models. *)
  build
    ~name:(m.Hir.m_name ^ "/body")
    ~loops:true (summaries m) m.Hir.m_body

let of_subprogram m s =
  build
    ~name:(m.Hir.m_name ^ "/" ^ s.Hir.s_name)
    ~loops:false (summaries m) s.Hir.s_body

(* -- fixpoints ------------------------------------------------------- *)

type solution = { before : Names.t array; after : Names.t array }

let forward t ~init ~transfer =
  let n = Array.length t.nodes in
  let before = Array.make n Names.empty and after = Array.make n Names.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun node ->
        let inset =
          List.fold_left
            (fun acc p -> Names.union acc after.(p))
            (if node.id = t.entry then init else Names.empty)
            node.pred
        in
        let outset = transfer node inset in
        if
          not
            (Names.equal inset before.(node.id)
            && Names.equal outset after.(node.id))
        then begin
          before.(node.id) <- inset;
          after.(node.id) <- outset;
          changed := true
        end)
      t.nodes
  done;
  { before; after }

let backward t ~init ~transfer =
  let n = Array.length t.nodes in
  let before = Array.make n Names.empty and after = Array.make n Names.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let node = t.nodes.(i) in
      let outset =
        List.fold_left
          (fun acc s -> Names.union acc before.(s))
          (if node.id = t.exit_ then init else Names.empty)
          node.succ
      in
      let inset = transfer node outset in
      if
        not
          (Names.equal outset after.(node.id)
          && Names.equal inset before.(node.id))
      then begin
        after.(node.id) <- outset;
        before.(node.id) <- inset;
        changed := true
      end
    done
  done;
  { before; after }

let kill_set node =
  Names.union node.defs node.array_defs

(* May-be-uninitialised: a name is in the set while some path from the
   entry reaches this point without writing it. *)
let maybe_uninit t ~at_entry =
  forward t ~init:at_entry ~transfer:(fun n s -> Names.diff s (kill_set n))

(* Classic liveness; [at_exit] holds the names observable after the
   region (e.g. module state for a subprogram). *)
let live t ~at_exit =
  backward t ~init:at_exit ~transfer:(fun n s ->
      Names.union
        (Names.union n.uses n.array_uses)
        (Names.diff s (kill_set n)))

let reachable t =
  let seen = Array.make (Array.length t.nodes) false in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter go t.nodes.(id).succ
    end
  in
  go t.entry;
  seen

let stmt_label = function
  | Hir.Assign (Hir.Lv_var n, _) -> "assignment to " ^ n
  | Hir.Assign (Hir.Lv_arr (a, _), _) -> "assignment to " ^ a ^ "[...]"
  | Hir.If _ -> "if"
  | Hir.While _ -> "while"
  | Hir.For (iv, _, _, _) -> "for " ^ iv
  | Hir.Wait -> "wait"
  | Hir.Call_p (p, _) -> "call to " ^ p
  | Hir.Return _ -> "return"
