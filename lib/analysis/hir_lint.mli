(** Behavioural-level diagnostic suite over the HIR.

    Dataflow-backed passes (on {!Dataflow} CFGs):
    - [W001]/[W002] — variable/array may be read before any write;
    - [W003] — dead assignment (value never read; port writes and
      module state written from subprograms are exempt);
    - [W004] — unreachable statement (constant-aware paths).

    Width lints:
    - [W005] — constant does not fit the declared type (assignments,
      call arguments, comparisons);
    - [E006] — shift amount ≥ operand width;
    - [W007] — comparison mixes signed and unsigned operands.

    Synthesisability:
    - [E008] — some path through a [While] body has no [Wait]
      (path-sensitive sharpening of the [Hir.validate] check);
    - [E009] — recursive subprogram call cycle;
    - [E010] — write to an input port;
    - [E011]/[W015] — output port never driven (error when it is also
      read back, warning otherwise). *)

val run : Fossy.Hir.module_def -> Diagnostic.t list
(** All passes; result sorted errors-first and de-duplicated. Assumes
    the module passes {!Fossy.Hir.validate} (unknown names are not
    re-reported here). *)
