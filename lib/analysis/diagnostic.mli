(** The one currency of the analysis layer.

    Every pass — HIR dataflow, FSM structure, VHDL port discipline,
    OSSS concurrency — reports findings as values of {!t}, so the CLI,
    the synthesis gate and the tests consume a single shape. The
    rendering is one machine-readable line,
    [severity[CODE] path: message], stable enough to grep in CI. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** catalogue code, e.g. ["E010"] *)
  severity : severity;
  path : string;  (** location, e.g. ["idwt53/body/2.then.0"] *)
  message : string;
}

val error : code:string -> path:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : code:string -> path:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val info : code:string -> path:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val severity_label : severity -> string

val render : t -> string
(** One line: [severity[CODE] path: message]. *)

val is_error : t -> bool
val errors : t list -> t list

val compare : t -> t -> int
(** Orders by severity (errors first), then code, then path, then
    message — a total, byte-stable order so sorted lint output can be
    diffed in CI, and [List.sort_uniq] deduplicates exactly the
    findings that are identical. *)

val pp : Format.formatter -> t -> unit
