open Rtl
module D = Diagnostic

(* Name-resolution-free RTL lint: ports, architecture signals and
   process variables share one string namespace, which the generated
   and reference designs keep collision-free. *)

type usage = { reads : (string, unit) Hashtbl.t; writes : (string, unit) Hashtbl.t }

let rec expr_reads u = function
  | Vhdl.Int_lit _ | Vhdl.Bit_lit _ -> ()
  | Vhdl.Name n -> Hashtbl.replace u.reads n ()
  | Vhdl.Indexed (n, e) ->
    Hashtbl.replace u.reads n ();
    expr_reads u e
  | Vhdl.Binop (_, a, b) ->
    expr_reads u a;
    expr_reads u b
  | Vhdl.Unop (_, e) | Vhdl.Paren e -> expr_reads u e
  | Vhdl.Call_e (_, args) -> List.iter (expr_reads u) args

let rec stmt_usage u ~on_write = function
  | Vhdl.Sig_assign (n, e) | Vhdl.Var_assign (n, e) ->
    on_write n;
    Hashtbl.replace u.writes n ();
    expr_reads u e
  | Vhdl.Idx_sig_assign (n, i, e) | Vhdl.Idx_var_assign (n, i, e) ->
    on_write n;
    Hashtbl.replace u.writes n ();
    expr_reads u i;
    expr_reads u e
  | Vhdl.If_s (branches, else_) ->
    List.iter
      (fun (c, ss) ->
        expr_reads u c;
        List.iter (stmt_usage u ~on_write) ss)
      branches;
    List.iter (stmt_usage u ~on_write) else_
  | Vhdl.Case_s (e, arms) ->
    expr_reads u e;
    List.iter (fun (_, ss) -> List.iter (stmt_usage u ~on_write) ss) arms
  | Vhdl.For_s (_, _, _, body) -> List.iter (stmt_usage u ~on_write) body
  | Vhdl.Proc_call (_, args) ->
    (* Procedure parameter modes are not visible here; a name passed
       to a procedure may be an [out] argument, so count it as both
       read and driven. *)
    List.iter
      (fun arg ->
        expr_reads u arg;
        match arg with
        | Vhdl.Name n | Vhdl.Indexed (n, _) -> Hashtbl.replace u.writes n ()
        | _ -> ())
      args
  | Vhdl.Return_s e -> expr_reads u e
  | Vhdl.Null_s | Vhdl.Comment _ -> ()

let rec decl_usage u ~on_write = function
  | Vhdl.Signal_d (_, _, init) | Vhdl.Variable_d (_, _, init) ->
    Option.iter (expr_reads u) init
  | Vhdl.Constant_d (_, _, e) -> expr_reads u e
  | Vhdl.Enum_d _ | Vhdl.Array_d _ -> ()
  | Vhdl.Function_d { f_decls; f_body; _ } ->
    List.iter (decl_usage u ~on_write) f_decls;
    List.iter (stmt_usage u ~on_write) f_body
  | Vhdl.Procedure_d { p_decls; p_body; _ } ->
    List.iter (decl_usage u ~on_write) p_decls;
    List.iter (stmt_usage u ~on_write) p_body

let run (design : Vhdl.design) =
  let ent = design.Vhdl.entity in
  let name = ent.Vhdl.ent_name in
  let u = { reads = Hashtbl.create 32; writes = Hashtbl.create 32 } in
  let acc = ref [] in
  let in_ports =
    List.filter_map
      (fun p -> if p.Vhdl.dir = Vhdl.In then Some p.Vhdl.port_name else None)
      ent.Vhdl.ports
  in
  List.iter
    (fun (d : Vhdl.decl) -> decl_usage u ~on_write:(fun _ -> ()) d)
    design.Vhdl.architecture.Vhdl.arch_decls;
  List.iter
    (fun (p : Vhdl.process) ->
      List.iter (fun s -> Hashtbl.replace u.reads s ()) p.Vhdl.sensitivity;
      let on_write n =
        if List.mem n in_ports then
          acc :=
            D.error ~code:"E010"
              ~path:(name ^ "/" ^ p.Vhdl.proc_name)
              "process drives input port %s" n
            :: !acc
      in
      List.iter (decl_usage u ~on_write) p.Vhdl.proc_decls;
      List.iter (stmt_usage u ~on_write) p.Vhdl.proc_body)
    design.Vhdl.architecture.Vhdl.processes;
  List.iter
    (fun p ->
      if p.Vhdl.dir = Vhdl.Out && not (Hashtbl.mem u.writes p.Vhdl.port_name)
      then
        if Hashtbl.mem u.reads p.Vhdl.port_name then
          acc :=
            D.error ~code:"E011"
              ~path:(name ^ "/" ^ p.Vhdl.port_name)
              "output port %s is read but never driven" p.Vhdl.port_name
            :: !acc
        else
          acc :=
            D.warning ~code:"W015"
              ~path:(name ^ "/" ^ p.Vhdl.port_name)
              "output port %s is never driven" p.Vhdl.port_name
            :: !acc)
    ent.Vhdl.ports;
  List.iter
    (fun (d : Vhdl.decl) ->
      match d with
      | Vhdl.Signal_d (s, _, _)
        when (not (Hashtbl.mem u.reads s)) && not (Hashtbl.mem u.writes s) ->
        acc :=
          D.warning ~code:"W017"
            ~path:(name ^ "/" ^ s)
            "signal %s is declared but never used" s
          :: !acc
      | _ -> ())
    design.Vhdl.architecture.Vhdl.arch_decls;
  List.sort_uniq D.compare !acc
