module D = Diagnostic

(* -- OSSS guard-deadlock analysis ------------------------------------ *)

(* A guarded Shared-Object call blocks until another client's
   completed call re-evaluates the guard. Statically, client A
   wait-depends on client B if A guard-waits on an object B also
   accesses; a strongly connected component of that relation is a
   deadlock when nobody outside it (and no unguarded call inside it)
   can ever fire the guards. *)

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

let sccs nodes succ =
  (* Tarjan. The graphs here are a handful of tasks and modules. *)
  let index = Hashtbl.create 8 and low = Hashtbl.create 8 in
  let on_stack = Hashtbl.create 8 in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !out

let guard_deadlocks vta =
  let accesses = Osss.Vta.so_accesses vta in
  let clients = dedup (List.map (fun a -> a.Osss.Vta.sa_client) accesses) in
  let accessors so =
    dedup
      (List.filter_map
         (fun a ->
           if String.equal a.Osss.Vta.sa_object so then Some a.Osss.Vta.sa_client
           else None)
         accesses)
  in
  let guard_waits c =
    dedup
      (List.filter_map
         (fun a ->
           if String.equal a.Osss.Vta.sa_client c && a.Osss.Vta.sa_guarded then
             Some a.Osss.Vta.sa_object
           else None)
         accesses)
  in
  let has_unguarded_access c so =
    List.exists
      (fun a ->
        String.equal a.Osss.Vta.sa_client c
        && String.equal a.Osss.Vta.sa_object so
        && not a.Osss.Vta.sa_guarded)
      accesses
  in
  let acc = ref [] in
  (* An isolated guard: no other client ever touches the object, so no
     call can ever enable it. *)
  List.iter
    (fun c ->
      List.iter
        (fun so ->
          if List.filter (fun d -> not (String.equal d c)) (accessors so) = []
          then
            acc :=
              D.error ~code:"E014"
                ~path:("vta/" ^ c)
                "guarded call on shared object %s can never be enabled: no \
                 other client accesses it"
                so
              :: !acc)
        (guard_waits c))
    clients;
  let succ c =
    List.concat_map
      (fun so -> List.filter (fun d -> not (String.equal d c)) (accessors so))
      (guard_waits c)
    |> dedup
  in
  List.iter
    (fun component ->
      match component with
      | [] | [ _ ] -> ()
      | members ->
        let inside d = List.mem d members in
        let waited_sos = dedup (List.concat_map guard_waits members) in
        let blocked_forever =
          waited_sos <> []
          && List.for_all
               (fun so ->
                 List.for_all inside (accessors so)
                 && List.for_all
                      (fun d -> not (has_unguarded_access d so))
                      (accessors so))
               waited_sos
        in
        if blocked_forever then
          acc :=
            D.error ~code:"E014"
              ~path:("vta/" ^ String.concat "," members)
              "guard deadlock: clients {%s} wait on shared objects {%s} and \
               only ever reach them through guarded calls"
              (String.concat ", " members)
              (String.concat ", " waited_sos)
            :: !acc)
    (sccs clients succ);
  List.sort_uniq D.compare !acc

(* -- delta-cycle race reports ---------------------------------------- *)

let diag_of_race (r : Sim.Kernel.race) =
  D.error ~code:"E015"
    ~path:("sim/" ^ r.Sim.Kernel.race_signal)
    "processes %s and %s wrote signal %s in the same delta cycle (t=%.1fns, \
     delta %d): the committed value depends on scheduling"
    r.Sim.Kernel.race_first r.Sim.Kernel.race_second r.Sim.Kernel.race_signal
    (Sim.Sim_time.to_float_ns r.Sim.Kernel.race_time)
    r.Sim.Kernel.race_delta

let race_diagnostics kernel = List.map diag_of_race (Sim.Kernel.races kernel)
