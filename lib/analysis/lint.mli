(** Facade of the analysis layer: one call per artefact kind, all
    returning {!Diagnostic.t} lists sorted errors-first.

    Diagnostic catalogue: [E000] structural validation (relayed from
    {!Fossy.Hir.validate}), [W001]/[W002] possibly-uninitialised
    reads, [W003] dead assignment, [W004] unreachable statement,
    [W005] constant overflow, [E006] over-wide shift, [W007]
    signed/unsigned comparison, [E008] wait-free loop path, [E009]
    call cycle, [E010] input port driven, [E011]/[W015] undriven
    output, [W012] unreachable FSM state, [W013] unread register,
    [E014] guard deadlock, [E015] delta race, [W017] unused VHDL
    signal, and the value-analysis findings of {!Absint}: [W018]
    proved truncation at assignment, [W019] branch proved
    always/never taken, [E020]/[W021] proved/possible out-of-range
    array index, [W022] FSM state unreachable under value
    constraints. *)

val lint_module : Fossy.Hir.module_def -> Diagnostic.t list
(** Structural validation + HIR dataflow/width/synthesisability passes
    + interval abstract interpretation + (when extraction succeeds)
    FSM passes. *)

val lint_design : Rtl.Vhdl.design -> Diagnostic.t list
val lint_vta : Osss.Vta.t -> Diagnostic.t list

val lint_kernel : Sim.Kernel.t -> Diagnostic.t list
(** Races recorded so far by a kernel, as [E015] diagnostics. *)

val install : unit -> unit
(** Plugs the HIR/FSM suite into {!Fossy.Synthesis.set_linter}
    (error-severity findings block synthesis, the rest surface in
    {!Fossy.Synthesis.result.warnings}) and the {!Absint} optimiser
    pair into {!Fossy.Synthesis.set_optimiser}. Call once at program
    start (the CLI and the tests do). *)
