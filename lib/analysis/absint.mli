(** Interprocedural interval + known-bits abstract interpretation
    over {!Fossy.Hir}, and the synthesis optimisations it licenses.

    The engine mirrors {!Fossy.Interp} exactly: variables and arrays
    start at 0, stores wrap through the declared type (identity at
    widths >= 62), shift amounts are masked, [For] binds the loop
    variable raw, subprogram calls push frames whose params wrap on
    entry and whose result wraps through the return type. Input-port
    reads are modelled as fresh nondeterministic values of the port's
    declared range — sound whenever the stimulus is in range, which
    the testbenches and the qcheck harness guarantee.

    Loops ([For]/[While] bodies and the implicit process loop) are
    solved by fixpoint with threshold widening on the back-edge, so
    analysis terminates on every validated module. Subprogram calls
    are followed interprocedurally; past a depth cutoff (mutual
    recursion) the callee's {!Dataflow} def summary havocs the state
    instead. *)

type result = {
  var_ranges : (string * Interval.t) list;
      (** post-wrap stored values per module variable / output port,
          joined with the initial 0 *)
  raw_ranges : (string * Interval.t) list;
      (** pre-wrap assigned values — the certificate that narrowing a
          declaration is behaviour-preserving *)
  arr_ranges : (string * Interval.t) list;
      (** post-wrap element summary per array (weak updates, joined
          with the initial 0) *)
  port_ranges : (string * Interval.t) list;
      (** output ports only: every value the module can emit. Ports
          never written have no entry. *)
}

val analyse : Fossy.Hir.module_def -> result
(** Requires a validated module (see {!Fossy.Hir.validate}). *)

val lint : Fossy.Hir.module_def -> Diagnostic.t list
(** Value-analysis diagnostics:
    - [W018] assignment whose value range never fits the target type
      (proved truncation; the constant-only case stays [W005]);
    - [W019] branch condition proved always/never taken (syntactic
      [Const] conditions excluded — those are idioms);
    - [E020] array index proved always out of range (runtime error
      whenever executed);
    - [W021] array index that may exceed the bounds. *)

val lint_fsm : Fossy.Fsm.t -> Diagnostic.t list
(** [W022]: states syntactically reachable but unreachable under
    value constraints (abstract execution never enters them). *)

val optimise : Fossy.Hir.module_def -> Fossy.Hir.module_def
(** Behaviour-preserving shrink, run between inline and FSM
    extraction: folds proved-constant expressions, deletes
    proved-dead branches and loops, and narrows variable/array
    declarations to the proved range of their raw stored values.
    Inlines first if subprograms remain. Every rewrite preserves the
    observable trace and the crash behaviour: expressions are only
    folded or discarded when they read no input port and every array
    access in them is proved in bounds, a discarded arm never
    contains a [Wait], ports are never re-typed, and the result is
    re-validated (reverting to the input on failure). *)

val prune_fsm : Fossy.Fsm.t -> Fossy.Fsm.t
(** Drops states no abstract execution reaches and rewrites branches
    whose condition is proved one-sided (and side-effect-free) into
    gotos. The entry state and the trace are preserved. *)
