module D = Diagnostic

let fsm_diagnostics m =
  (* FSM extraction can legitimately fail on modules the HIR lints
     already reject (e.g. wait-free loops); those passes have reported
     the cause, so extraction failure is not itself a finding. *)
  match Fossy.Fsm.of_module (Fossy.Inline.run m) with
  | fsm -> Fsm_lint.run fsm @ Absint.lint_fsm fsm
  | exception _ -> []

let semantic m = Hir_lint.run m @ Absint.lint m @ fsm_diagnostics m

let lint_module m =
  let structural =
    match Fossy.Hir.validate m with
    | Ok () -> []
    | Error es ->
      List.map
        (fun e -> D.error ~code:"E000" ~path:m.Fossy.Hir.m_name "%s" e)
        es
  in
  List.sort_uniq D.compare (structural @ semantic m)

let lint_design = Vhdl_lint.run
let lint_vta = Concurrency.guard_deadlocks
let lint_kernel = Concurrency.race_diagnostics

let split ds =
  ( List.map D.render (List.filter D.is_error ds),
    List.map D.render (List.filter (fun d -> not (D.is_error d)) ds) )

let install () =
  Fossy.Synthesis.set_linter (fun m ->
      (* validate already ran inside [synthesise]; only the semantic
         passes gate here. *)
      split (List.sort_uniq D.compare (semantic m)));
  Fossy.Synthesis.set_optimiser ~hir:Absint.optimise ~fsm:Absint.prune_fsm
