type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  path : string;
  message : string;
}

let make ~code ~severity ~path fmt =
  Format.kasprintf (fun message -> { code; severity; path; message }) fmt

let error ~code ~path fmt = make ~code ~severity:Error ~path fmt
let warning ~code ~path fmt = make ~code ~severity:Warning ~path fmt
let info ~code ~path fmt = make ~code ~severity:Info ~path fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let render d =
  Printf.sprintf "%s[%s] %s: %s" (severity_label d.severity) d.code d.path
    d.message

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Byte-stable order for CI diffing: severity, then catalogue code,
   then location. The message participates last so that distinct
   findings sharing a location are deduplicated only when they are
   truly identical, never collapsed. *)
let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = String.compare a.path b.path in
      if c <> 0 then c else String.compare a.message b.message

let pp fmt d = Format.pp_print_string fmt (render d)
