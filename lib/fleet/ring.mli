(** Consistent-hash ring over replica ids.

    The front-end balancer maps a codestream's 64-bit digest to the
    replica that {e owns} it, so repeated requests for one stream keep
    landing on the same replica and its L1 cache stays hot. Each
    member contributes [vnodes] points on the ring (hashes of the
    (replica, vnode) pair), which evens out the keyspace split; a key
    is owned by the first point at or after its own hash, wrapping at
    the top.

    The ring is immutable — {!add} and {!remove} return a new ring —
    and every operation is a pure function of the member set, so two
    fleets with equal membership route identically. The classic
    consistent-hashing property follows: adding or removing one member
    remaps only the keys whose owning arc that member's points cover,
    about [1/n] of the keyspace, and {e every} remapped key moves to
    (or from) that member — the qcheck suite asserts both
    directions. *)

type t

val create : ?vnodes:int -> int list -> t
(** [create ~vnodes members] builds the ring (duplicates ignored).
    [vnodes] defaults to 16; raises [Invalid_argument] when it is
    < 1. An empty member list is legal — the ring just owns
    nothing. *)

val vnodes : t -> int
val members : t -> int list
(** Sorted, distinct. *)

val is_empty : t -> bool

val add : t -> int -> t
val remove : t -> int -> t

val owner : t -> int64 -> int option
(** The replica owning the key, [None] on an empty ring. *)

val successors : t -> int64 -> int list
(** Every member, ordered by ring distance from the key: the owner
    first, then the spill candidates an overloaded owner falls back
    to. Deterministic; the empty ring yields []. *)
