module Ring = Ring
module Tier = Tier

type config = {
  replicas : int;
  min_replicas : int;
  max_replicas : int;
  vnodes : int;
  l2_capacity : int;
  l2_transfer_ps : int;
  spill : bool;
  up_frac : float;
  down_frac : float;
  slo_up : float;
  interval_ps : int;
  warmup_ps : int;
  seed : int;
}

let default_config =
  {
    replicas = 4;
    min_replicas = 4;
    max_replicas = 4;
    vnodes = 16;
    l2_capacity = 256;
    l2_transfer_ps = 20_000_000 (* 20 us per fetched tile *);
    spill = true;
    up_frac = 0.75;
    down_frac = 0.15;
    slo_up = 0.5;
    interval_ps = 5_000_000_000 (* 5 ms *);
    warmup_ps = 20_000_000_000 (* 20 ms *);
    seed = 0;
  }

let ps_of_us f = int_of_float ((f *. 1e6) +. 0.5)

let keys =
  [
    "replicas"; "min"; "max"; "vnodes"; "l2"; "l2_us"; "spill"; "up"; "down";
    "slo"; "interval"; "warmup"; "seed";
  ]

let ( let* ) = Result.bind

let parse_config s =
  let* pairs = Spec.parse_pairs s in
  let* () = Spec.check_known ~what:"fleet" keys pairs in
  let* replicas =
    Spec.int_field pairs "replicas" default_config.replicas
      (Spec.at_least "replicas" 1)
  in
  let* min_replicas =
    Spec.int_field pairs "min" replicas (Spec.at_least "min" 1)
  in
  let* max_replicas =
    Spec.int_field pairs "max"
      (Stdlib.max replicas min_replicas)
      (Spec.at_least "max" 1)
  in
  let* vnodes =
    Spec.int_field pairs "vnodes" default_config.vnodes
      (Spec.at_least "vnodes" 1)
  in
  let* l2_capacity =
    Spec.int_field pairs "l2" default_config.l2_capacity (Spec.at_least "l2" 0)
  in
  let* l2_transfer_ps =
    Spec.float_field pairs "l2_us" default_config.l2_transfer_ps (fun v ->
        Result.map ps_of_us (Spec.non_negative "l2_us" v))
  in
  let* spill =
    Spec.int_field pairs "spill" default_config.spill (fun n ->
        Result.map (fun n -> n = 1) (Spec.in_range "spill" 0 1 n))
  in
  let* up_frac =
    Spec.float_field pairs "up" default_config.up_frac
      (Spec.unit_interval "up")
  in
  let* down_frac =
    Spec.float_field pairs "down" default_config.down_frac
      (Spec.unit_interval "down")
  in
  let* slo_up =
    Spec.float_field pairs "slo" default_config.slo_up
      (Spec.unit_interval "slo")
  in
  let* interval_ps =
    Spec.float_field pairs "interval" default_config.interval_ps (fun v ->
        Result.map Serve.Service.ps_of_ms (Spec.positive "interval" v))
  in
  let* warmup_ps =
    Spec.float_field pairs "warmup" default_config.warmup_ps (fun v ->
        Result.map Serve.Service.ps_of_ms (Spec.non_negative "warmup" v))
  in
  let* seed = Spec.int_field pairs "seed" default_config.seed Spec.any in
  if min_replicas > replicas then
    Error
      (Printf.sprintf "min=%d must be <= replicas=%d" min_replicas replicas)
  else if max_replicas < replicas then
    Error
      (Printf.sprintf "max=%d must be >= replicas=%d" max_replicas replicas)
  else if down_frac > up_frac then
    Error (Printf.sprintf "down=%g must be <= up=%g" down_frac up_frac)
  else
    Ok
      {
        replicas;
        min_replicas;
        max_replicas;
        vnodes;
        l2_capacity;
        l2_transfer_ps;
        spill;
        up_frac;
        down_frac;
        slo_up;
        interval_ps;
        warmup_ps;
        seed;
      }

let config_to_string c =
  Printf.sprintf
    "replicas=%d,min=%d,max=%d,vnodes=%d,l2=%d,l2_us=%g,spill=%d,up=%g,down=%g,slo=%g,interval=%g,warmup=%g,seed=%d"
    c.replicas c.min_replicas c.max_replicas c.vnodes c.l2_capacity
    (float_of_int c.l2_transfer_ps /. 1e6)
    (if c.spill then 1 else 0)
    c.up_frac c.down_frac c.slo_up
    (Serve.Service.ms_of_ps c.interval_ps)
    (Serve.Service.ms_of_ps c.warmup_ps)
    c.seed

type t = { fc : config; svc : Serve.Service.t }

let create ?(config = default_config) ?service corpus =
  if config.replicas < 1 then invalid_arg "Fleet.create: replicas < 1";
  if config.min_replicas < 1 || config.min_replicas > config.replicas then
    invalid_arg "Fleet.create: min_replicas out of range";
  if config.max_replicas < config.replicas then
    invalid_arg "Fleet.create: max_replicas < replicas";
  if config.vnodes < 1 then invalid_arg "Fleet.create: vnodes < 1";
  if config.l2_capacity < 0 then invalid_arg "Fleet.create: l2_capacity < 0";
  if config.l2_transfer_ps < 0 then
    invalid_arg "Fleet.create: l2_transfer_ps < 0";
  if
    not
      (Float.is_finite config.up_frac
      && config.up_frac >= 0.0 && config.up_frac <= 1.0
      && Float.is_finite config.down_frac
      && config.down_frac >= 0.0
      && config.down_frac <= config.up_frac
      && Float.is_finite config.slo_up
      && config.slo_up >= 0.0 && config.slo_up <= 1.0)
  then invalid_arg "Fleet.create: autoscaler thresholds out of range";
  if config.interval_ps < 1 then invalid_arg "Fleet.create: interval_ps < 1";
  if config.warmup_ps < 0 then invalid_arg "Fleet.create: warmup_ps < 0";
  let svc = Serve.Service.create ?config:service corpus in
  if (Serve.Service.config svc).Serve.Service.ingest <> None then
    invalid_arg "Fleet.create: ingest is not supported in fleet mode";
  { fc = config; svc }

let service t = t.svc

(* -- report types ----------------------------------------------------- *)

type tier_stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  hit_rate : float;
}

type l2_stats = {
  l2_capacity : int;
  l2_tier : tier_stats;
  l2_transfers : int;
  l2_transfer_ms : float;
  l2_invalidations : int;
}

type replica_stat = {
  rs_id : int;
  rs_served : int;
  rs_batches : int;
  rs_busy_ms : float;
}

type report = {
  fleet : string;
  workload : string;
  streams : int;
  policy : string;
  queue_capacity : int;
  l1_capacity : int;
  max_batch : int;
  replicas : int;
  min_replicas : int;
  max_replicas : int;
  peak_replicas : int;
  final_replicas : int;
  scale_ups : int;
  scale_downs : int;
  scale_events : (float * string) list;
  total : int;
  served : int;
  rejected : int;
  dropped : int;
  degraded : int;
  spilled : int;
  batches : int;
  coalesced : int;
  concealed_blocks : int;
  makespan_ms : float;
  throughput_rps : float;
  latency : Serve.Service.latency;
  slo_misses : int;
  slo_miss_rate : float;
  l1 : tier_stats;
  l2 : l2_stats option;
  per_replica : replica_stat list;
  pixels_digest : string;
}

let tier_of (s : Serve.Lru.stats) =
  {
    hits = s.Serve.Lru.hits;
    misses = s.Serve.Lru.misses;
    insertions = s.Serve.Lru.insertions;
    evictions = s.Serve.Lru.evictions;
    hit_rate = Serve.Lru.hit_rate s;
  }

(* -- replica state ----------------------------------------------------- *)

type rstate = Inactive | Warming | Active | Draining

type queued = { f_req : Serve.Request.t; f_degraded : bool }

type replica = {
  r_id : int;
  r_track : string;
  mutable r_state : rstate;
  mutable r_ready_ps : int;  (** warm-up completion when [Warming] *)
  mutable r_queue : queued list;
  mutable r_l1 : Serve.Cache.t option;
  mutable r_busy_until : int;
  mutable r_served : int;
  mutable r_batches : int;
  mutable r_busy_ps : int;
  mutable r_activated : bool;  (** ever joined the ring *)
}

(* -- the fleet event loop ---------------------------------------------- *)

let run ?(pool = Par.Pool.sequential) ?on_complete t spec =
  let fc = t.fc and svc = t.svc in
  let sc = Serve.Service.config svc in
  let streams = Serve.Service.streams svc in
  (match spec.Serve.Request.shape with
  | Serve.Request.Closed_loop _ ->
    invalid_arg "Fleet.run: closed-loop spec (fleet workloads are open-loop)"
  | Serve.Request.Open_loop _ -> ());
  let arrivals = Serve.Service.open_arrivals svc spec in
  let n_arr = Array.length arrivals in
  let l2 =
    if fc.l2_capacity > 0 then
      Some
        (Tier.create ~capacity:fc.l2_capacity ~transfer_ps:fc.l2_transfer_ps ())
    else None
  in
  let fresh_l1 () =
    if sc.Serve.Service.cache_capacity > 0 then
      Some (Serve.Cache.create ~capacity:sc.Serve.Service.cache_capacity)
    else None
  in
  let reps =
    Array.init fc.max_replicas (fun i ->
        {
          r_id = i;
          r_track = Printf.sprintf "fleet.r%d" i;
          r_state = Inactive;
          r_ready_ps = 0;
          r_queue = [];
          r_l1 = None;
          r_busy_until = 0;
          r_served = 0;
          r_batches = 0;
          r_busy_ps = 0;
          r_activated = false;
        })
  in
  for i = 0 to fc.replicas - 1 do
    reps.(i).r_state <- Active;
    reps.(i).r_l1 <- fresh_l1 ();
    reps.(i).r_activated <- true;
    (* every active replica owns a trace track from t=0, even one the
       balancer never routes to — an idle replica is a finding, not a
       hole in the trace *)
    Telemetry.Span.instant ~ts_ps:0 ~track:reps.(i).r_track ~cat:"lifecycle"
      "up"
  done;
  let ring = ref (Ring.create ~vnodes:fc.vnodes (List.init fc.replicas Fun.id)) in
  let front = "fleet.front" in
  (* the front end exists even on a run with no overload and no
     scaling decisions — its track should too *)
  Telemetry.Span.instant ~ts_ps:0 ~track:front ~cat:"lifecycle" "up";
  let now = ref 0 in
  let cursor = ref 0 in
  let total = ref 0
  and served = ref 0
  and rejected = ref 0
  and dropped = ref 0
  and degraded = ref 0
  and spilled = ref 0
  and batches = ref 0
  and coalesced = ref 0
  and concealed = ref 0
  and slo_late = ref 0 in
  let latencies = ref [] in
  (* (completion, replica, id, per-request digest) — sorted at the end
     so the fleet digest folds in global completion order *)
  let records = ref [] in
  let makespan = ref 0 in
  let scale_ups = ref 0 and scale_downs = ref 0 in
  let scale_events = ref [] in
  let peak = ref fc.replicas in
  let l1h = ref 0 and l1m = ref 0 and l1i = ref 0 and l1e = ref 0 in
  let fold_l1 rep =
    match rep.r_l1 with
    | None -> ()
    | Some c ->
      let s = Serve.Cache.stats c in
      l1h := !l1h + s.Serve.Lru.hits;
      l1m := !l1m + s.Serve.Lru.misses;
      l1i := !l1i + s.Serve.Lru.insertions;
      l1e := !l1e + s.Serve.Lru.evictions
  in
  let window_events = ref 0 and window_missed = ref 0 in
  let autoscale = fc.min_replicas <> fc.max_replicas in
  let next_eval = ref fc.interval_ps in
  let depth rep = List.length rep.r_queue in
  let active_count () =
    Array.fold_left (fun n r -> if r.r_state = Active then n + 1 else n) 0 reps
  in
  let emit_depth rep =
    Telemetry.Span.counter ~ts_ps:!now ~track:rep.r_track "queue_depth"
      (depth rep)
  in
  let trace_args (rq : Serve.Request.t) =
    [
      ("id", Telemetry.Event.Int rq.Serve.Request.id);
      ( "trace",
        Telemetry.Event.Str
          (Serve.Request.trace_to_string rq.Serve.Request.trace) );
    ]
  in
  (* Per-replica dispatch jitter: a deterministic sub-microsecond
     perturbation of the batch overhead, a pure hash of (fleet seed,
     replica, batch ordinal), so the replicas' virtual clocks drift
     apart the way independent machines' would without threatening
     replay stability. *)
  let jitter rep =
    Int64.to_int
      (Int64.logand
         (Faults.Rng.hash64
            (Faults.Rng.hash64
               (Int64.of_int fc.seed)
               (Int64.of_int (rep.r_id + 1)))
            (Int64.of_int (rep.r_batches + 1)))
         0x3FFFFL)
  in
  let oldest queue =
    List.fold_left
      (fun acc q ->
        match acc with
        | None -> Some q
        | Some b ->
          if
            q.f_req.Serve.Request.arrival_ps < b.f_req.Serve.Request.arrival_ps
            || (q.f_req.Serve.Request.arrival_ps
                  = b.f_req.Serve.Request.arrival_ps
               && q.f_req.Serve.Request.id < b.f_req.Serve.Request.id)
          then Some q
          else acc)
      None queue
  in
  (* Front-end admission: route to the ring owner, spill along the
     successor list when the owner is saturated, shed (or degrade)
     before any replica queue overflows. *)
  let admit (rq : Serve.Request.t) =
    incr total;
    Telemetry.Sink.incr "fleet.arrivals";
    let stream = streams.(rq.Serve.Request.stream) in
    match Ring.successors !ring (Serve.Service.stream_digest stream) with
    | [] -> assert false (* >= min_replicas stay active *)
    | owner_id :: rest -> (
      let owner = reps.(owner_id) in
      let highwater = Stdlib.max 1 (sc.Serve.Service.queue_capacity / 2) in
      let rq, was_degraded =
        if
          sc.Serve.Service.overload = Serve.Service.Degrade
          && depth owner >= highwater
        then
          match Serve.Service.degrade_target stream rq.Serve.Request.target with
          | Some target -> ({ rq with Serve.Request.target }, true)
          | None -> (rq, false)
        else (rq, false)
      in
      if was_degraded then begin
        incr degraded;
        Telemetry.Sink.incr "fleet.degraded";
        Telemetry.Span.instant ~ts_ps:!now ~track:front ~cat:"overload"
          ~args:(trace_args rq) "degrade"
      end;
      let enqueue rep =
        rep.r_queue <- { f_req = rq; f_degraded = was_degraded } :: rep.r_queue;
        emit_depth rep
      in
      if depth owner < sc.Serve.Service.queue_capacity then enqueue owner
      else
        let spill_to =
          if fc.spill then
            List.find_opt
              (fun i -> depth reps.(i) < sc.Serve.Service.queue_capacity)
              rest
          else None
        in
        match spill_to with
        | Some i ->
          incr spilled;
          Telemetry.Sink.incr "fleet.spilled";
          Telemetry.Span.instant ~ts_ps:!now ~track:front ~cat:"route"
            ~args:
              (trace_args rq
              @ [
                  ("owner", Telemetry.Event.Int owner_id);
                  ("to", Telemetry.Event.Int i);
                ])
            "spill";
          enqueue reps.(i)
        | None -> (
          match sc.Serve.Service.overload with
          | Serve.Service.Drop_oldest -> (
            match oldest owner.r_queue with
            | Some victim ->
              owner.r_queue <- List.filter (fun q -> q != victim) owner.r_queue;
              incr dropped;
              incr window_events;
              incr window_missed;
              Telemetry.Sink.incr "fleet.dropped";
              Telemetry.Span.instant ~ts_ps:!now ~track:front ~cat:"overload"
                ~args:(trace_args victim.f_req) "drop-oldest";
              enqueue owner
            | None -> assert false)
          | Serve.Service.Reject | Serve.Service.Degrade ->
            incr rejected;
            incr window_events;
            incr window_missed;
            Telemetry.Sink.incr "fleet.rejected";
            Telemetry.Span.instant ~ts_ps:!now ~track:front ~cat:"overload"
              ~args:(trace_args rq) "reject"))
  in
  (* One dispatched batch on one replica — the single service's plan /
     decode / serve-back-to-back protocol, with the shared L2 probed
     between the local L1 and a fresh entropy decode. *)
  let run_batch rep start batch =
    let j = jitter rep in
    incr batches;
    rep.r_batches <- rep.r_batches + 1;
    Telemetry.Sink.incr "fleet.batches";
    let staged_tbl = Hashtbl.create 32 in
    let staged_rev = ref [] and staged_count = ref 0 in
    let plans =
      List.map
        (fun q ->
          let rq = q.f_req in
          let stream = streams.(rq.Serve.Request.stream) in
          let needs =
            List.map
              (fun (tile_index, key) ->
                match
                  match rep.r_l1 with
                  | Some c -> Serve.Cache.find c key
                  | None -> None
                with
                | Some tile -> (key, `Hit tile)
                | None -> (
                  match Hashtbl.find_opt staged_tbl key with
                  | Some si ->
                    incr coalesced;
                    Telemetry.Sink.incr "fleet.coalesced";
                    (key, `Shared si)
                  | None -> (
                    match
                      match l2 with
                      | Some t2 -> Tier.find t2 key
                      | None -> None
                    with
                    | Some tile ->
                      (* pull through to the local L1 so this
                         replica's later batches hit at L1 cost *)
                      (match rep.r_l1 with
                      | Some c -> Serve.Cache.add c key tile
                      | None -> ());
                      Telemetry.Sink.incr "fleet.l2.fetches";
                      (key, `L2 tile)
                    | None ->
                      let st =
                        Jpeg2000.Decoder.stage_tile
                          ~discard:key.Serve.Cache.discard
                          (Serve.Service.stream_header stream)
                          (Serve.Service.stream_tile stream tile_index)
                      in
                      let si = !staged_count in
                      Hashtbl.replace staged_tbl key si;
                      staged_rev := (key, st) :: !staged_rev;
                      incr staged_count;
                      (key, `Fresh si))))
              (Serve.Service.needed_keys stream rq.Serve.Request.target)
          in
          (q, needs))
        batch
    in
    let staged = Array.of_list (List.rev !staged_rev) in
    let job_index =
      Array.concat
        (Array.to_list
           (Array.mapi
              (fun si (_, st) ->
                Array.init (Jpeg2000.Decoder.staged_jobs st) (fun ji -> (si, ji)))
              staged))
    in
    let oks =
      Par.Pool.map pool job_index (fun (si, ji) ->
          Jpeg2000.Decoder.staged_run (snd staged.(si)) ji)
    in
    let tiles = Array.make (Array.length staged) None in
    let offset = ref 0 in
    Array.iteri
      (fun si (key, st) ->
        let n = Jpeg2000.Decoder.staged_jobs st in
        let slice = Array.sub oks !offset n in
        offset := !offset + n;
        let tile, tile_concealed = Jpeg2000.Decoder.finish_staged_ok st slice in
        concealed := !concealed + tile_concealed;
        tiles.(si) <- Some tile;
        (match rep.r_l1 with
        | Some c -> Serve.Cache.add c key tile
        | None -> ());
        match l2 with Some t2 -> Tier.add t2 key tile | None -> ())
      staged;
    let tile_of = function
      | `Hit tile | `L2 tile -> tile
      | `Shared si | `Fresh si -> Option.get tiles.(si)
    in
    let cur = ref (start + Serve.Service.ps_per_batch + j) in
    List.iter
      (fun (q, needs) ->
        let rq = q.f_req in
        let stream = streams.(rq.Serve.Request.stream) in
        let cache_ps = ref 0
        and l2_ps = ref 0
        and entropy_ps = ref 0
        and reconstruct_ps = ref 0 in
        List.iter
          (fun (_, src) ->
            match src with
            | `Hit _ | `Shared _ ->
              cache_ps := !cache_ps + Serve.Service.ps_per_hit
            | `L2 _ ->
              l2_ps := !l2_ps + Serve.Service.ps_per_hit + fc.l2_transfer_ps
            | `Fresh si ->
              let st = snd staged.(si) in
              entropy_ps :=
                !entropy_ps
                + (Serve.Service.ps_per_block * Jpeg2000.Decoder.staged_jobs st)
                + Serve.Service.ps_per_coded_byte
                  * Jpeg2000.Decoder.staged_coded_bytes st;
              reconstruct_ps :=
                !reconstruct_ps
                + Serve.Service.ps_per_sample
                  * Jpeg2000.Decoder.staged_samples st)
          needs;
        let ow, oh = Serve.Service.output_dims stream rq.Serve.Request.target in
        let comps =
          (Serve.Service.stream_header stream).Jpeg2000.Codestream.components
        in
        let assemble_ps = Serve.Service.ps_per_out_sample * (ow * oh * comps) in
        let service_ps =
          !cache_ps + !l2_ps + !entropy_ps + !reconstruct_ps + assemble_ps
        in
        let st_start = !cur in
        cur := !cur + service_ps;
        let completion = !cur in
        let image =
          Serve.Service.assemble stream rq.Serve.Request.target
            (List.map (fun (_, src) -> tile_of src) needs)
        in
        rep.r_served <- rep.r_served + 1;
        incr served;
        let latency_ps = completion - rq.Serve.Request.arrival_ps in
        latencies := latency_ps :: !latencies;
        makespan := Stdlib.max !makespan completion;
        incr window_events;
        if completion > rq.Serve.Request.deadline_ps then begin
          incr slo_late;
          incr window_missed;
          Telemetry.Sink.incr "fleet.slo_misses";
          Telemetry.Span.instant ~ts_ps:completion ~track:rep.r_track
            ~cat:"slo" ~args:(trace_args rq) "deadline-miss"
        end;
        Telemetry.Sink.observe
          ~exemplar:
            ( rq.Serve.Request.id,
              Serve.Request.trace_to_string rq.Serve.Request.trace )
          "fleet.latency_us" (latency_ps / 1_000_000);
        Telemetry.Span.complete ~ts_ps:rq.Serve.Request.arrival_ps
          ~dur_ps:(st_start - rq.Serve.Request.arrival_ps) ~track:rep.r_track
          ~cat:"queue" ~args:(trace_args rq) "queued";
        Telemetry.Span.complete ~ts_ps:st_start ~dur_ps:service_ps
          ~track:rep.r_track ~cat:"serve"
          ~args:
            (trace_args rq
            @ [
                ("stream", Telemetry.Event.Int rq.Serve.Request.stream);
                ( "target",
                  Telemetry.Event.Str
                    (Format.asprintf "%a" Serve.Request.pp_target
                       rq.Serve.Request.target) );
                ("degraded", Telemetry.Event.Bool q.f_degraded);
              ])
          "request";
        ignore
          (List.fold_left
             (fun ts (stage, dur_ps) ->
               if dur_ps > 0 then
                 Telemetry.Span.complete ~ts_ps:ts ~dur_ps ~track:rep.r_track
                   ~cat:"stage" ~args:(trace_args rq) stage;
               ts + dur_ps)
             st_start
             [
               ("cache", !cache_ps);
               ("l2", !l2_ps);
               ("entropy", !entropy_ps);
               ("reconstruct", !reconstruct_ps);
               ("assemble", assemble_ps);
             ]);
        let h =
          Serve.Service.fnv_image
            (Serve.Service.fnv_int Serve.Service.fnv_basis rq.Serve.Request.id)
            image
        in
        records := (completion, rep.r_id, rq.Serve.Request.id, h) :: !records;
        match on_complete with
        | Some f -> f rep.r_id rq image
        | None -> ())
      plans;
    Telemetry.Span.complete ~ts_ps:start ~dur_ps:(!cur - start)
      ~track:rep.r_track ~cat:"batch"
      ~args:
        [
          ("requests", Telemetry.Event.Int (List.length batch));
          ("jobs", Telemetry.Event.Int (Array.length job_index));
        ]
      "batch";
    rep.r_busy_ps <- rep.r_busy_ps + (!cur - start);
    rep.r_busy_until <- !cur
  in
  let deactivate rep =
    fold_l1 rep;
    rep.r_l1 <- None;
    rep.r_state <- Inactive
  in
  let activate rep =
    rep.r_state <- Active;
    rep.r_l1 <- fresh_l1 ();
    rep.r_activated <- true;
    rep.r_busy_until <- Stdlib.max rep.r_busy_until !now;
    ring := Ring.add !ring rep.r_id;
    peak := Stdlib.max !peak (active_count ());
    Telemetry.Span.instant ~ts_ps:!now ~track:rep.r_track ~cat:"lifecycle" "up";
    Telemetry.Span.instant ~ts_ps:!now ~track:front ~cat:"autoscale"
      ~args:[ ("replica", Telemetry.Event.Int rep.r_id) ]
      "join"
  in
  let eval_autoscaler () =
    let active =
      List.filter (fun r -> r.r_state = Active) (Array.to_list reps)
    in
    let n_active = List.length active in
    let warming =
      Array.fold_left
        (fun n r -> if r.r_state = Warming then n + 1 else n)
        0 reps
    in
    let depth_sum = List.fold_left (fun s r -> s + depth r) 0 active in
    let depth_frac =
      if n_active = 0 then 0.0
      else
        float_of_int depth_sum
        /. float_of_int (n_active * sc.Serve.Service.queue_capacity)
    in
    let miss_rate =
      if !window_events = 0 then 0.0
      else float_of_int !window_missed /. float_of_int !window_events
    in
    if
      (depth_frac >= fc.up_frac || miss_rate >= fc.slo_up)
      && n_active + warming < fc.max_replicas
    then begin
      let rec first_inactive i =
        if i >= fc.max_replicas then None
        else if reps.(i).r_state = Inactive then Some i
        else first_inactive (i + 1)
      in
      match first_inactive 0 with
      | None -> ()
      | Some i ->
        let rep = reps.(i) in
        rep.r_state <- Warming;
        rep.r_ready_ps <- !now + fc.warmup_ps;
        incr scale_ups;
        scale_events :=
          (Serve.Service.ms_of_ps !now, Printf.sprintf "+r%d" i)
          :: !scale_events;
        Telemetry.Sink.incr "fleet.scale_ups";
        Telemetry.Span.instant ~ts_ps:!now ~track:front ~cat:"autoscale"
          ~args:[ ("replica", Telemetry.Event.Int i) ]
          "scale-up"
    end
    else if
      depth_frac <= fc.down_frac
      && miss_rate < fc.slo_up && warming = 0
      && n_active > fc.min_replicas
    then begin
      let victim =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some b ->
              if depth r < depth b || (depth r = depth b && r.r_id > b.r_id)
              then Some r
              else acc)
          None active
      in
      match victim with
      | None -> ()
      | Some rep ->
        ring := Ring.remove !ring rep.r_id;
        incr scale_downs;
        scale_events :=
          (Serve.Service.ms_of_ps !now, Printf.sprintf "-r%d" rep.r_id)
          :: !scale_events;
        Telemetry.Sink.incr "fleet.scale_downs";
        Telemetry.Span.instant ~ts_ps:!now ~track:front ~cat:"autoscale"
          ~args:[ ("replica", Telemetry.Event.Int rep.r_id) ]
          "scale-down";
        if rep.r_queue = [] then deactivate rep else rep.r_state <- Draining
    end;
    window_events := 0;
    window_missed := 0
  in
  (* Main loop: advance the clock to the earliest pending event and
     process everything due, always in the same order (warm-ups, the
     autoscaler, arrivals, then dispatches in replica-id order) so
     simultaneous events resolve deterministically. Replicas serve in
     parallel on the virtual clock — each one's busy window only gates
     its own queue. *)
  let queues_nonempty () = Array.exists (fun r -> r.r_queue <> []) reps in
  while !cursor < n_arr || queues_nonempty () do
    let t = ref max_int in
    if !cursor < n_arr then
      t := Stdlib.min !t arrivals.(!cursor).Serve.Request.arrival_ps;
    Array.iter
      (fun r ->
        match r.r_state with
        | Warming -> t := Stdlib.min !t r.r_ready_ps
        | Active | Draining ->
          if r.r_queue <> [] then
            t := Stdlib.min !t (Stdlib.max r.r_busy_until !now)
        | Inactive -> ())
      reps;
    if autoscale then t := Stdlib.min !t !next_eval;
    now := Stdlib.max !now !t;
    Array.iter
      (fun r -> if r.r_state = Warming && r.r_ready_ps <= !now then activate r)
      reps;
    if autoscale && !next_eval <= !now then begin
      eval_autoscaler ();
      next_eval := !now + fc.interval_ps
    end;
    while
      !cursor < n_arr && arrivals.(!cursor).Serve.Request.arrival_ps <= !now
    do
      admit arrivals.(!cursor);
      incr cursor
    done;
    Array.iter
      (fun r ->
        if
          (r.r_state = Active || r.r_state = Draining)
          && r.r_queue <> []
          && r.r_busy_until <= !now
        then begin
          let sorted =
            List.sort
              (fun a b -> Serve.Service.edf_request_order a.f_req b.f_req)
              r.r_queue
          in
          let rec take k = function
            | [] -> ([], [])
            | x :: rest when k > 0 ->
              let b, l = take (k - 1) rest in
              (x :: b, l)
            | rest -> ([], rest)
          in
          let batch, leftover = take sc.Serve.Service.max_batch sorted in
          r.r_queue <- leftover;
          emit_depth r;
          run_batch r (Stdlib.max r.r_busy_until !now) batch;
          if r.r_state = Draining && r.r_queue = [] then deactivate r
        end)
      reps
  done;
  Array.iter fold_l1 reps;
  Telemetry.Sink.incr ~by:!l1h "fleet.l1.hits";
  Telemetry.Sink.incr ~by:!l1m "fleet.l1.misses";
  (match l2 with
  | None -> ()
  | Some t2 ->
    let s = Tier.stats t2 in
    Telemetry.Sink.incr ~by:s.Serve.Lru.hits "fleet.l2.hits";
    Telemetry.Sink.incr ~by:s.Serve.Lru.misses "fleet.l2.misses");
  (* Fold per-request digests in global completion order; ties (same
     instant on two replicas) break on (replica, id), so the fleet
     digest is as replay-stable as the per-replica ones. *)
  let recs = List.sort compare !records in
  let pixels =
    List.fold_left
      (fun h (_, _, _, hr) ->
        Serve.Service.fnv_int
          (Serve.Service.fnv_int h
             (Int64.to_int (Int64.shift_right_logical hr 32)))
          (Int64.to_int (Int64.logand hr 0xFFFFFFFFL)))
      Serve.Service.fnv_basis recs
  in
  let latency = Serve.Service.latency_of !latencies in
  let makespan_ms = Serve.Service.ms_of_ps !makespan in
  let slo_misses = !slo_late + !rejected + !dropped in
  {
    fleet = config_to_string fc;
    workload = Serve.Request.spec_to_string spec;
    streams = Array.length streams;
    policy = Serve.Service.overload_to_string sc.Serve.Service.overload;
    queue_capacity = sc.Serve.Service.queue_capacity;
    l1_capacity = sc.Serve.Service.cache_capacity;
    max_batch = sc.Serve.Service.max_batch;
    replicas = fc.replicas;
    min_replicas = fc.min_replicas;
    max_replicas = fc.max_replicas;
    peak_replicas = !peak;
    final_replicas = active_count ();
    scale_ups = !scale_ups;
    scale_downs = !scale_downs;
    scale_events = List.rev !scale_events;
    total = !total;
    served = !served;
    rejected = !rejected;
    dropped = !dropped;
    degraded = !degraded;
    spilled = !spilled;
    batches = !batches;
    coalesced = !coalesced;
    concealed_blocks = !concealed;
    makespan_ms;
    throughput_rps =
      (if makespan_ms > 0.0 then float_of_int !served /. (makespan_ms /. 1000.0)
       else 0.0);
    latency;
    slo_misses;
    slo_miss_rate =
      (if !total = 0 then 0.0
       else float_of_int slo_misses /. float_of_int !total);
    l1 =
      tier_of
        {
          Serve.Lru.hits = !l1h;
          misses = !l1m;
          insertions = !l1i;
          evictions = !l1e;
        };
    l2 =
      Option.map
        (fun t2 ->
          {
            l2_capacity = fc.l2_capacity;
            l2_tier = tier_of (Tier.stats t2);
            l2_transfers = Tier.transfers t2;
            l2_transfer_ms = Serve.Service.ms_of_ps (Tier.transferred_ps t2);
            l2_invalidations = Tier.invalidations t2;
          })
        l2;
    per_replica =
      List.filter_map
        (fun r ->
          if r.r_activated then
            Some
              {
                rs_id = r.r_id;
                rs_served = r.r_served;
                rs_batches = r.r_batches;
                rs_busy_ms = Serve.Service.ms_of_ps r.r_busy_ps;
              }
          else None)
        (Array.to_list reps);
    pixels_digest = Printf.sprintf "%016Lx" pixels;
  }

(* -- rendering --------------------------------------------------------- *)

let tier_json t =
  let open Telemetry.Json in
  Obj
    [
      ("hits", Int t.hits);
      ("misses", Int t.misses);
      ("insertions", Int t.insertions);
      ("evictions", Int t.evictions);
      ("hit_rate", Float t.hit_rate);
    ]

let report_to_json r =
  let open Telemetry.Json in
  Obj
    [
      ("fleet", Str r.fleet);
      ("workload", Str r.workload);
      ("streams", Int r.streams);
      ("policy", Str r.policy);
      ("queue_capacity", Int r.queue_capacity);
      ("l1_capacity", Int r.l1_capacity);
      ("max_batch", Int r.max_batch);
      ( "replicas",
        Obj
          [
            ("initial", Int r.replicas);
            ("min", Int r.min_replicas);
            ("max", Int r.max_replicas);
            ("peak", Int r.peak_replicas);
            ("final", Int r.final_replicas);
            ("scale_ups", Int r.scale_ups);
            ("scale_downs", Int r.scale_downs);
            ( "events",
              List
                (List.map
                   (fun (ms, e) ->
                     Obj [ ("t_ms", Float ms); ("event", Str e) ])
                   r.scale_events) );
          ] );
      ("total", Int r.total);
      ("served", Int r.served);
      ("rejected", Int r.rejected);
      ("dropped", Int r.dropped);
      ("degraded", Int r.degraded);
      ("spilled", Int r.spilled);
      ("batches", Int r.batches);
      ("coalesced", Int r.coalesced);
      ("concealed_blocks", Int r.concealed_blocks);
      ("makespan_ms", Float r.makespan_ms);
      ("throughput_rps", Float r.throughput_rps);
      ( "latency_ms",
        Obj
          [
            ("mean", Float r.latency.Serve.Service.mean_ms);
            ("p50", Float r.latency.Serve.Service.p50_ms);
            ("p95", Float r.latency.Serve.Service.p95_ms);
            ("p99", Float r.latency.Serve.Service.p99_ms);
            ("max", Float r.latency.Serve.Service.max_ms);
          ] );
      ("slo_misses", Int r.slo_misses);
      ("slo_miss_rate", Float r.slo_miss_rate);
      ("l1", tier_json r.l1);
      ( "l2",
        match r.l2 with
        | None -> Null
        | Some l ->
          Obj
            [
              ("capacity", Int l.l2_capacity);
              ("hits", Int l.l2_tier.hits);
              ("misses", Int l.l2_tier.misses);
              ("insertions", Int l.l2_tier.insertions);
              ("evictions", Int l.l2_tier.evictions);
              ("hit_rate", Float l.l2_tier.hit_rate);
              ("transfers", Int l.l2_transfers);
              ("transfer_ms", Float l.l2_transfer_ms);
              ("invalidations", Int l.l2_invalidations);
            ] );
      ( "per_replica",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("id", Int p.rs_id);
                   ("served", Int p.rs_served);
                   ("batches", Int p.rs_batches);
                   ("busy_ms", Float p.rs_busy_ms);
                 ])
             r.per_replica) );
      ("pixels_digest", Str r.pixels_digest);
    ]

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "fleet:           %s@," r.fleet;
  Format.fprintf ppf "workload:        %s@," r.workload;
  Format.fprintf ppf "streams:         %d@," r.streams;
  Format.fprintf ppf "policy:          %s (queue %d, L1 %d, batch %d)@,"
    r.policy r.queue_capacity r.l1_capacity r.max_batch;
  Format.fprintf ppf
    "replicas:        %d initial (min %d, max %d), peak %d, final %d@,"
    r.replicas r.min_replicas r.max_replicas r.peak_replicas r.final_replicas;
  if r.scale_ups > 0 || r.scale_downs > 0 then begin
    Format.fprintf ppf "autoscale:       %d up, %d down" r.scale_ups
      r.scale_downs;
    (match r.scale_events with
    | [] -> ()
    | evs ->
      Format.fprintf ppf " [%s]"
        (String.concat ", "
           (List.map
              (fun (ms, e) -> Printf.sprintf "%s@%.1fms" e ms)
              evs)));
    Format.fprintf ppf "@,"
  end;
  Format.fprintf ppf
    "requests:        %d total, %d served, %d rejected, %d dropped, %d degraded, %d spilled@,"
    r.total r.served r.rejected r.dropped r.degraded r.spilled;
  Format.fprintf ppf "batches:         %d (%d tile needs coalesced)@,"
    r.batches r.coalesced;
  if r.concealed_blocks > 0 then
    Format.fprintf ppf "concealed:       %d blocks@," r.concealed_blocks;
  Format.fprintf ppf "makespan:        %.3f ms (%.1f req/s)@," r.makespan_ms
    r.throughput_rps;
  Format.fprintf ppf
    "latency [ms]:    mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f@,"
    r.latency.Serve.Service.mean_ms r.latency.Serve.Service.p50_ms
    r.latency.Serve.Service.p95_ms r.latency.Serve.Service.p99_ms
    r.latency.Serve.Service.max_ms;
  Format.fprintf ppf "SLO:             %d misses (%.1f%% of %d)@," r.slo_misses
    (100.0 *. r.slo_miss_rate) r.total;
  Format.fprintf ppf
    "L1 (all replicas): %d hits, %d misses, %d evictions (%.1f%% hit rate)@,"
    r.l1.hits r.l1.misses r.l1.evictions (100.0 *. r.l1.hit_rate);
  (match r.l2 with
  | None -> Format.fprintf ppf "L2:              disabled@,"
  | Some l ->
    Format.fprintf ppf
      "L2 (%d tiles):   %d hits, %d misses, %d evictions (%.1f%% hit rate)@,"
      l.l2_capacity l.l2_tier.hits l.l2_tier.misses l.l2_tier.evictions
      (100.0 *. l.l2_tier.hit_rate);
    Format.fprintf ppf
      "                 %d transfers, %.3f ms on the interconnect, %d invalidations@,"
      l.l2_transfers l.l2_transfer_ms l.l2_invalidations);
  List.iter
    (fun p ->
      Format.fprintf ppf
        "  r%-2d            %d served in %d batches, busy %.3f ms@," p.rs_id
        p.rs_served p.rs_batches p.rs_busy_ms)
    r.per_replica;
  Format.fprintf ppf "pixels digest:   %s" r.pixels_digest;
  Format.fprintf ppf "@]"
