(** The sharded decode fleet: replicated {!Serve.Service} machinery
    behind a consistent-hash balancer, a shared L2 tile cache, and an
    autoscaler — all on one virtual clock.

    A fleet serves the same seeded open-loop workloads as a single
    service, but across [replicas] independent decode replicas. The
    front end routes each arriving request to the replica owning its
    codestream's digest on the {!Ring}; ownership keeps a stream's
    traffic on one replica so its private L1 stays hot, and the
    shared {!Tier} L2 behind the L1s turns one replica's decode into
    every replica's (priced) cache hit. Admission mirrors the single
    service: a saturated owner spills to ring successors (when
    [spill] is on), the [Degrade] policy rewrites requests above the
    owner's high-water mark to a lower resolution, and a fleet-wide
    reject/drop fires only when no replica can take the request — the
    front end sheds load {e before} any replica queue overflows.

    With [min < max] the autoscaler watches queue depth and the
    windowed SLO-miss rate every [interval]: scale-up starts a new
    replica which pays [warmup] on the simulated clock before joining
    the ring (cold L1); scale-down drains the emptiest replica —
    removed from the ring at the decision, deactivated once its queue
    empties.

    Everything is deterministic. Arrivals are pre-drawn by
    {!Serve.Service.open_arrivals}; the event loop advances the clock
    to the earliest of (next arrival, each replica's next dispatch,
    warm-up completions, autoscaler evaluations) and breaks every tie
    in replica-id order; per-replica dispatch jitter is a pure hash of
    (fleet seed, replica, batch index); and the {!Par.Pool} only
    accelerates real entropy decodes (bit-identical by contract). A
    {!report} — every percentile, every counter, the pixels digest —
    is therefore byte-identical across reruns and across any
    [--jobs]. *)

module Ring = Ring
(** The consistent-hash balancer ring (re-exported for tests and
    tooling — [fleet] is a wrapped library). *)

module Tier = Tier
(** The shared L2 tile cache (re-exported likewise). *)

type config = {
  replicas : int;  (** replicas active at start (>= 1) *)
  min_replicas : int;  (** autoscaler floor, [1 <= min <= replicas] *)
  max_replicas : int;  (** autoscaler ceiling, [>= replicas] *)
  vnodes : int;  (** ring points per replica (>= 1) *)
  l2_capacity : int;  (** shared L2 tiles; 0 disables the tier *)
  l2_transfer_ps : int;  (** simulated cost per tile fetched from L2 *)
  spill : bool;  (** saturated owner spills to ring successors *)
  up_frac : float;
      (** mean queue-depth fraction at or above which the autoscaler
          adds a replica *)
  down_frac : float;  (** depth fraction at or below which it drains one *)
  slo_up : float;
      (** windowed SLO-miss rate at or above which it adds a replica *)
  interval_ps : int;  (** autoscaler evaluation period *)
  warmup_ps : int;  (** simulated boot time before a new replica joins *)
  seed : int;  (** fleet seed: per-replica dispatch jitter *)
}

val default_config : config
(** 4 replicas, no autoscaling (min = max = 4), 16 vnodes, 256-tile
    L2 at 20 us per transfer, spill on, up 0.75 / down 0.15 /
    slo 0.5, 5 ms interval, 20 ms warmup, seed 0. *)

val parse_config : string -> (config, string) result
(** [key=value] spec string over
    [replicas,min,max,vnodes,l2,l2_us,spill,up,down,slo,interval,warmup,seed]
    ([l2_us] in microseconds; [interval]/[warmup] in milliseconds;
    [spill] 0 or 1; [min]/[max] default to [replicas], which disables
    autoscaling). Unknown keys, malformed values and inconsistent
    bounds fail with a one-line message naming the offending value. *)

val config_to_string : config -> string
(** Canonical round-trippable form, embedded in reports. *)

type t

val create : ?config:config -> ?service:Serve.Service.config -> string array -> t
(** Registers the codestream corpus once (shared by every replica;
    replica state itself lives per {!run}). [service] configures each
    replica's queue, policy, L1 cache and batching and defaults to
    {!Serve.Service.default_config}. Raises [Invalid_argument] on an
    empty corpus, a malformed codestream, an out-of-range config, or
    a [service] with [ingest] set — the fleet serves whole streams. *)

val service : t -> Serve.Service.t
(** The underlying corpus/service view the replicas share. *)

type tier_stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  hit_rate : float;
}

type l2_stats = {
  l2_capacity : int;
  l2_tier : tier_stats;
  l2_transfers : int;  (** tiles fetched out of the shared cache *)
  l2_transfer_ms : float;  (** simulated interconnect time paid *)
  l2_invalidations : int;
}

type replica_stat = {
  rs_id : int;
  rs_served : int;
  rs_batches : int;
  rs_busy_ms : float;  (** simulated time spent serving batches *)
}

type report = {
  fleet : string;  (** canonical {!config_to_string} *)
  workload : string;
  streams : int;
  policy : string;
  queue_capacity : int;  (** per replica *)
  l1_capacity : int;  (** per replica *)
  max_batch : int;
  replicas : int;
  min_replicas : int;
  max_replicas : int;
  peak_replicas : int;  (** most simultaneously active *)
  final_replicas : int;
  scale_ups : int;
  scale_downs : int;
  scale_events : (float * string) list;
      (** (simulated ms, ["+r5"] / ["-r2"]) in decision order *)
  total : int;
  served : int;
  rejected : int;
  dropped : int;
  degraded : int;
  spilled : int;  (** admitted by a ring successor, not the owner *)
  batches : int;
  coalesced : int;
  concealed_blocks : int;
  makespan_ms : float;
  throughput_rps : float;
  latency : Serve.Service.latency;
  slo_misses : int;
  slo_miss_rate : float;
  l1 : tier_stats;  (** aggregated over every replica incarnation *)
  l2 : l2_stats option;  (** [None] when the tier is disabled *)
  per_replica : replica_stat list;  (** replicas that ever activated *)
  pixels_digest : string;
      (** folded over every served image in (completion, replica, id)
          order — equal digests mean bit-identical pixels *)
}

val run :
  ?pool:Par.Pool.t ->
  ?on_complete:(int -> Serve.Request.t -> Jpeg2000.Image.t -> unit) ->
  t ->
  Serve.Request.spec ->
  report
(** Serves one open-loop workload to fleet completion. [on_complete
    replica request image] observes every served request (in the
    deterministic dispatch order) — the tests compare the image
    against the reference decoder. Raises [Invalid_argument] on a
    closed-loop spec. When a {!Telemetry.Sink} is installed the run
    emits one track per replica ([fleet.r<i>]: queued/request/stage
    spans, queue-depth counters) plus a front-end track ([fleet.front]:
    spill/degrade/reject/scale instants) and fleet.* counters on the
    simulated timeline; telemetry never changes the report. *)

val report_to_json : report -> Telemetry.Json.t
val pp_report : Format.formatter -> report -> unit
