type t = {
  lru : (Serve.Cache.key, Jpeg2000.Tile.t) Serve.Lru.t;
  tr_ps : int;
  mutable transfers : int;
  mutable invalidations : int;
}

let create ?hash ~capacity ~transfer_ps () =
  if capacity < 1 then invalid_arg "Fleet.Tier.create: capacity < 1";
  if transfer_ps < 0 then invalid_arg "Fleet.Tier.create: transfer_ps < 0";
  {
    lru = Serve.Lru.create ?hash ~capacity ();
    tr_ps = transfer_ps;
    transfers = 0;
    invalidations = 0;
  }

let capacity t = Serve.Lru.capacity t.lru
let length t = Serve.Lru.length t.lru
let transfer_ps t = t.tr_ps

let find t key =
  match Serve.Lru.find t.lru key with
  | Some tile ->
    t.transfers <- t.transfers + 1;
    Some tile
  | None -> None

let add t key tile = Serve.Lru.add t.lru key tile

let invalidate_stream t ~digest ~length =
  let dropped =
    Serve.Lru.remove_where t.lru (fun (k : Serve.Cache.key) ->
        k.Serve.Cache.digest = digest && k.Serve.Cache.length = length)
  in
  t.invalidations <- t.invalidations + dropped;
  dropped

let stats t = Serve.Lru.stats t.lru
let transfers t = t.transfers
let transferred_ps t = t.transfers * t.tr_ps
let invalidations t = t.invalidations
