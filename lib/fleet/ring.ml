(* (point, replica) pairs sorted by point; ties (astronomically
   unlikely but cheap to handle) break on replica id so the ring is a
   total order and routing is deterministic. *)
type t = { vn : int; points : (int * int) array }

(* Ring coordinates live in [0, max_int]: the high bit is masked off
   so plain int compares agree with the unsigned order of the hash. *)
let mask h = Int64.to_int h land max_int

let point ~replica ~vnode =
  mask (Faults.Rng.hash64 (Int64.of_int (replica + 1)) (Int64.of_int (vnode + 1)))

let key_point digest = mask (Faults.Rng.mix64 digest)

let of_members vn members =
  let points =
    List.concat_map
      (fun r -> List.init vn (fun v -> (point ~replica:r ~vnode:v, r)))
      members
  in
  let arr = Array.of_list points in
  Array.sort compare arr;
  { vn; points = arr }

let create ?(vnodes = 16) members =
  if vnodes < 1 then invalid_arg "Fleet.Ring.create: vnodes < 1";
  of_members vnodes (List.sort_uniq Int.compare members)

let vnodes t = t.vn

let members t =
  List.sort_uniq Int.compare (Array.to_list (Array.map snd t.points))

let is_empty t = Array.length t.points = 0
let add t r = of_members t.vn (List.sort_uniq Int.compare (r :: members t))
let remove t r = of_members t.vn (List.filter (( <> ) r) (members t))

(* First point at or after the key's ring coordinate, wrapping past
   the top — binary search for the lower bound. *)
let first_at_or_after t p =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < p then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t digest =
  if is_empty t then None
  else Some (snd t.points.(first_at_or_after t (key_point digest)))

let successors t digest =
  if is_empty t then []
  else begin
    let n = Array.length t.points in
    let start = first_at_or_after t (key_point digest) in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    for k = 0 to n - 1 do
      let r = snd t.points.((start + k) mod n) in
      if not (Hashtbl.mem seen r) then begin
        Hashtbl.add seen r ();
        out := r :: !out
      end
    done;
    List.rev !out
  end
