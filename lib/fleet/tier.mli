(** The fleet's shared L2 decoded-tile cache.

    One bounded LRU of decoded tiles sits behind every replica's
    private L1 ({!Serve.Cache}): a replica that misses locally probes
    the L2 before paying for a fresh entropy decode, and publishes
    what it decodes to both tiers. Keys are the same content-addressed
    {!Serve.Cache.key}s as the L1, so a tile cached by one replica is
    a hit for every other replica serving the same codestream — the
    locality win the fleet bench measures.

    An L2 hit is not free: fetching a tile across the (simulated)
    interconnect costs [transfer_ps] on the virtual clock — more than
    an L1 hit, far less than a fresh decode — and is accounted per
    fetch. {!invalidate_stream} drops every tile of one codestream
    (all tile indices, all resolution levels), the operation a corpus
    hot-swap needs; removals are invalidations, not evictions, and the
    qcheck suite proves a stale tile can never be served past it, even
    when key hashes collide. *)

type t

val create : ?hash:(Serve.Cache.key -> int) -> capacity:int -> transfer_ps:int -> unit -> t
(** Raises [Invalid_argument] when [capacity < 1] or [transfer_ps]
    is negative. [?hash] exists so tests can force collisions, as in
    {!Serve.Lru.create}. *)

val capacity : t -> int
val length : t -> int
val transfer_ps : t -> int

val find : t -> Serve.Cache.key -> Jpeg2000.Tile.t option
(** Counts a hit or miss; a hit also counts one transfer (the tile
    crosses the interconnect to the requesting replica). *)

val add : t -> Serve.Cache.key -> Jpeg2000.Tile.t -> unit

val invalidate_stream : t -> digest:int64 -> length:int -> int
(** Drops every cached tile whose key names the codestream with this
    digest and byte length; returns how many were dropped. *)

val stats : t -> Serve.Lru.stats
val transfers : t -> int
(** Tiles fetched out of the L2 so far (= hits). *)

val transferred_ps : t -> int
(** Total simulated transfer time paid, [transfers * transfer_ps]. *)

val invalidations : t -> int
(** Entries dropped by {!invalidate_stream} so far. *)
