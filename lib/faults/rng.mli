(** Deterministic pseudorandom stream for fault campaigns
    (splitmix64).

    Campaign reproducibility rests on two properties: the simulation
    kernel schedules deterministically, and every random draw comes
    from this seeded generator — so the same seed replays the same
    fault pattern bit for bit. *)

type t

val create : int -> t
(** Seeded stream. Equal seeds give equal streams. *)

val next : t -> int64
val split : t -> t
(** Independent child stream (consumes one draw of the parent). *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be > 0. *)

val bool : t -> bool

val mix64 : int64 -> int64
(** The stateless splitmix64 finaliser — a 64-bit mixing hash. *)

val hash64 : int64 -> int64 -> int64
(** Combine two values into one well-mixed word; used for per-cell
    stuck-at fates that must not depend on access order. *)

val float_of_hash : int64 -> float
(** Map a hash word to [0, 1) without consuming stream state. *)
