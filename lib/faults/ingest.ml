type profile = {
  loss : float;
  dup : float;
  reorder : float;
  window : int;
  stall : float;
  stall_max_ps : int;
}

let no_faults =
  {
    loss = 0.0;
    dup = 0.0;
    reorder = 0.0;
    window = 4;
    stall = 0.0;
    stall_max_ps = 0;
  }

type spec = { chunk_bytes : int; gap_ps : int; profile : profile }

let ps_per_us = 1_000_000

let default_spec =
  {
    chunk_bytes = 512;
    gap_ps = 100 * ps_per_us;
    profile = { no_faults with stall_max_ps = 1000 * ps_per_us };
  }

(* -- spec strings ---------------------------------------------------- *)

let parse_spec s =
  let ( let* ) = Result.bind in
  let* pairs = Spec.parse_pairs s in
  let* () =
    Spec.check_known ~what:"ingest"
      [ "chunk"; "gap_us"; "loss"; "dup"; "reorder"; "window"; "stall";
        "stall_us" ]
      pairs
  in
  let int_field key default check = Spec.int_field pairs key default check in
  let float_field key default check =
    Spec.float_field pairs key default check
  in
  let positive key n = Spec.at_least key 1 n in
  let rate key f = Spec.unit_interval key f in
  let positive_us key f =
    Result.map
      (fun f -> int_of_float ((f *. float_of_int ps_per_us) +. 0.5))
      (Spec.positive key f)
  in
  let d = default_spec in
  let* chunk_bytes = int_field "chunk" d.chunk_bytes (positive "chunk") in
  let* gap_ps =
    float_field "gap_us"
      d.gap_ps
      (fun f -> positive_us "gap_us" f)
  in
  let* loss = float_field "loss" d.profile.loss (rate "loss") in
  let* dup = float_field "dup" d.profile.dup (rate "dup") in
  let* reorder = float_field "reorder" d.profile.reorder (rate "reorder") in
  let* window = int_field "window" d.profile.window (positive "window") in
  let* stall = float_field "stall" d.profile.stall (rate "stall") in
  let* stall_max_ps =
    float_field "stall_us"
      d.profile.stall_max_ps
      (fun f -> positive_us "stall_us" f)
  in
  Ok
    {
      chunk_bytes;
      gap_ps;
      profile = { loss; dup; reorder; window; stall; stall_max_ps };
    }

let spec_to_string spec =
  let us ps = float_of_int ps /. float_of_int ps_per_us in
  Printf.sprintf
    "chunk=%d,gap_us=%g,loss=%g,dup=%g,reorder=%g,window=%d,stall=%g,stall_us=%g"
    spec.chunk_bytes (us spec.gap_ps) spec.profile.loss spec.profile.dup
    spec.profile.reorder spec.profile.window spec.profile.stall
    (us spec.profile.stall_max_ps)

(* -- schedules ------------------------------------------------------- *)

type chunk = { c_offset : int; c_bytes : string; c_arrival_ps : int }

type delivery = {
  chunks : chunk list;
  sent : int;
  lost : int;
  duped : int;
  reordered : int;
  stall_ps : int;
}

let schedule ~seed spec ~start_ps data =
  let rng = Rng.create seed in
  let p = spec.profile in
  let len = String.length data in
  let sent = (len + spec.chunk_bytes - 1) / spec.chunk_bytes in
  let lost = ref 0 and duped = ref 0 and reordered = ref 0 in
  let stall_total = ref 0 in
  let delay = ref 0 in
  let out = ref [] in
  for i = 0 to sent - 1 do
    let offset = i * spec.chunk_bytes in
    let bytes = String.sub data offset (Stdlib.min spec.chunk_bytes (len - offset)) in
    (* Fixed per-chunk draw order — stall, loss, reorder, dup — so the
       schedule is a pure function of (seed, spec, data). *)
    if p.stall > 0.0 && p.stall_max_ps > 0 && Rng.float rng < p.stall then begin
      let s = 1 + Rng.int rng p.stall_max_ps in
      delay := !delay + s;
      stall_total := !stall_total + s
    end;
    let base = start_ps + (i * spec.gap_ps) + !delay in
    if p.loss > 0.0 && Rng.float rng < p.loss then incr lost
    else begin
      let arrival =
        if p.reorder > 0.0 && Rng.float rng < p.reorder then begin
          incr reordered;
          (* slip behind up to [window] successors, landing half a gap
             past the last of them so the displacement is unambiguous *)
          let slip = 1 + Rng.int rng p.window in
          base + (slip * spec.gap_ps) + (spec.gap_ps / 2)
        end
        else base
      in
      out := { c_offset = offset; c_bytes = bytes; c_arrival_ps = arrival } :: !out;
      if p.dup > 0.0 && Rng.float rng < p.dup then begin
        incr duped;
        out :=
          {
            c_offset = offset;
            c_bytes = bytes;
            c_arrival_ps = arrival + Stdlib.max 1 (spec.gap_ps / 4);
          }
          :: !out
      end
    end
  done;
  let chunks =
    List.sort
      (fun a b ->
        let c = Int.compare a.c_arrival_ps b.c_arrival_ps in
        if c <> 0 then c else Int.compare a.c_offset b.c_offset)
      !out
  in
  {
    chunks;
    sent;
    lost = !lost;
    duped = !duped;
    reordered = !reordered;
    stall_ps = !stall_total;
  }
