type rates = {
  channel_bit_flip : float;
  channel_word_drop : float;
  memory_transient : float;
  memory_stuck_cell : float;
  stall_probability : float;
  stall_max_cycles : int;
}

let no_faults =
  {
    channel_bit_flip = 0.0;
    channel_word_drop = 0.0;
    memory_transient = 0.0;
    memory_stuck_cell = 0.0;
    stall_probability = 0.0;
    stall_max_cycles = 0;
  }

let channel_only rate =
  { no_faults with channel_bit_flip = rate; channel_word_drop = rate /. 8.0 }

type counters = {
  mutable bit_flips : int;
  mutable word_drops : int;
  mutable mem_transients : int;
  mutable mem_stuck_hits : int;
  mutable stalls : int;
  mutable stall_cycles : int;
}

type t = {
  seed : int;
  rates : rates;
  rng : Rng.t;
  counters : counters;
  (* (mem, addr) -> stuck fate, memoised; the fate itself is a pure
     function of (seed, mem, addr) so access order cannot change it. *)
  stuck : (string * int, (int * bool) option) Hashtbl.t;
}

let check_rate name r =
  if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
    invalid_arg (Printf.sprintf "Faults.Engine.create: %s out of [0,1]" name)

let create ~seed rates =
  check_rate "channel_bit_flip" rates.channel_bit_flip;
  check_rate "channel_word_drop" rates.channel_word_drop;
  check_rate "memory_transient" rates.memory_transient;
  check_rate "memory_stuck_cell" rates.memory_stuck_cell;
  check_rate "stall_probability" rates.stall_probability;
  if rates.stall_max_cycles < 0 then
    invalid_arg "Faults.Engine.create: stall_max_cycles";
  {
    seed;
    rates;
    rng = Rng.create seed;
    counters =
      {
        bit_flips = 0;
        word_drops = 0;
        mem_transients = 0;
        mem_stuck_hits = 0;
        stalls = 0;
        stall_cycles = 0;
      };
    stuck = Hashtbl.create 64;
  }

let seed t = t.seed
let rates t = t.rates
let counters t = t.counters

(* -- fault models ---------------------------------------------------- *)

let flip_bit words rng =
  let n = Array.length words in
  if n = 0 then words
  else begin
    let out = Array.copy words in
    let w = Rng.int rng n and b = Rng.int rng 32 in
    out.(w) <- Int32.logxor out.(w) (Int32.shift_left 1l b);
    out
  end

let drop_word words rng =
  let n = Array.length words in
  if n = 0 then words
  else begin
    let k = Rng.int rng n in
    Array.init (n - 1) (fun i -> if i < k then words.(i) else words.(i + 1))
  end

let channel_hook t ~link:_ words =
  let words =
    if Rng.float t.rng < t.rates.channel_bit_flip then begin
      t.counters.bit_flips <- t.counters.bit_flips + 1;
      flip_bit words t.rng
    end
    else words
  in
  if Rng.float t.rng < t.rates.channel_word_drop then begin
    t.counters.word_drops <- t.counters.word_drops + 1;
    drop_word words t.rng
  end
  else words

let frame_hook t ~link:_ ~words:_ =
  let p =
    Float.min 1.0 (t.rates.channel_bit_flip +. t.rates.channel_word_drop)
  in
  if Rng.float t.rng < p then begin
    t.counters.bit_flips <- t.counters.bit_flips + 1;
    true
  end
  else false

let stuck_fate t ~mem ~addr =
  match Hashtbl.find_opt t.stuck (mem, addr) with
  | Some fate -> fate
  | None ->
    let h =
      Rng.hash64
        (Int64.of_int (Hashtbl.hash (mem, addr)))
        (Int64.of_int t.seed)
    in
    let fate =
      if Rng.float_of_hash h < t.rates.memory_stuck_cell then
        let h' = Rng.mix64 h in
        Some (Int64.to_int (Int64.logand h' 31L), Int64.logand h' 32L <> 0L)
      else None
    in
    Hashtbl.replace t.stuck (mem, addr) fate;
    fate

let apply_stuck t ~mem ~addr v =
  match stuck_fate t ~mem ~addr with
  | None -> v
  | Some (bit, high) ->
    t.counters.mem_stuck_hits <- t.counters.mem_stuck_hits + 1;
    let mask = Int32.shift_left 1l bit in
    if high then Int32.logor v mask else Int32.logand v (Int32.lognot mask)

let memory_read_hook t ~mem ~addr v =
  let v = apply_stuck t ~mem ~addr v in
  if Rng.float t.rng < t.rates.memory_transient then begin
    t.counters.mem_transients <- t.counters.mem_transients + 1;
    Int32.logxor v (Int32.shift_left 1l (Rng.int t.rng 32))
  end
  else v

let memory_write_hook t ~mem ~addr v = apply_stuck t ~mem ~addr v

let stall_hook t ~proc:_ =
  if t.rates.stall_max_cycles > 0
     && Rng.float t.rng < t.rates.stall_probability
  then begin
    let cycles = 1 + Rng.int t.rng t.rates.stall_max_cycles in
    t.counters.stalls <- t.counters.stalls + 1;
    t.counters.stall_cycles <- t.counters.stall_cycles + cycles;
    cycles
  end
  else 0

(* -- installation ---------------------------------------------------- *)

let install t =
  let r = t.rates in
  if r.channel_bit_flip > 0.0 || r.channel_word_drop > 0.0 then begin
    Osss.Fault_hooks.set_channel (channel_hook t);
    Osss.Fault_hooks.set_frame (frame_hook t)
  end;
  if r.memory_transient > 0.0 || r.memory_stuck_cell > 0.0 then begin
    Osss.Fault_hooks.set_memory_read (memory_read_hook t);
    Osss.Fault_hooks.set_memory_write (memory_write_hook t)
  end;
  if r.stall_probability > 0.0 && r.stall_max_cycles > 0 then
    Osss.Fault_hooks.set_stall (stall_hook t)

let uninstall () = Osss.Fault_hooks.clear ()

let with_engine t f =
  install t;
  Fun.protect ~finally:uninstall f

let pp_counters ppf c =
  Format.fprintf ppf
    "bit flips %d, word drops %d, mem transients %d, stuck hits %d, stalls %d (%d cycles)"
    c.bit_flips c.word_drops c.mem_transients c.mem_stuck_hits c.stalls
    c.stall_cycles
