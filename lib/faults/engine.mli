(** Seeded deterministic fault-injection campaigns.

    An engine bundles a set of fault {!rates}, a seeded {!Rng} stream
    and hit counters. {!install} plugs its fault models into the
    {!Osss.Fault_hooks} points of the core carriers; because the
    simulation kernel is deterministic and every probabilistic choice
    draws from the engine's stream, an identical seed replays an
    identical fault pattern — campaigns are reproducible experiments,
    not noise.

    Fault models (per the robustness refinement of the decoder
    platform):
    - {e channel bit flip} — one random bit of one serialised RMI
      frame inverted in flight;
    - {e channel word drop} — one word of a frame lost (shifts the
      tail, so the CRC as well as plain deserialisation notice);
    - {e memory transient} — a read returns one flipped bit, storage
      intact;
    - {e memory stuck cell} — a block-RAM cell has one bit stuck at
      0/1 for the whole run; the fate of a cell is a pure hash of
      (seed, memory, address), so it is independent of access order;
    - {e processor stall jitter} — spurious extra stall cycles
      appended to an EET slice. *)

type rates = {
  channel_bit_flip : float;  (** per-frame-attempt probability *)
  channel_word_drop : float;  (** per-frame-attempt probability *)
  memory_transient : float;  (** per-read probability *)
  memory_stuck_cell : float;  (** per-cell probability *)
  stall_probability : float;  (** per-EET-slice probability *)
  stall_max_cycles : int;  (** stall is uniform in [1, max] *)
}

val no_faults : rates

val channel_only : float -> rates
(** Campaign preset: bit flips at [rate], word drops at [rate/8]. *)

type counters = {
  mutable bit_flips : int;
  mutable word_drops : int;
  mutable mem_transients : int;
  mutable mem_stuck_hits : int;
  mutable stalls : int;
  mutable stall_cycles : int;
}

type t

val create : seed:int -> rates -> t
(** Raises [Invalid_argument] on rates outside [0,1] or a negative
    stall bound. *)

val seed : t -> int
val rates : t -> rates
val counters : t -> counters

val install : t -> unit
(** Installs the engine's models into {!Osss.Fault_hooks}. Only the
    hook points with a non-zero rate are claimed. *)

val uninstall : unit -> unit
(** Clears every fault hook (also those of other engines). *)

val with_engine : t -> (unit -> 'a) -> 'a
(** [install], run, then [uninstall] — exception-safe. *)

val pp_counters : Format.formatter -> counters -> unit
