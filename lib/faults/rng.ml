(* splitmix64: tiny, fast, and with a pure mixing function we can use
   both as a sequential stream and as a stateless hash. Reference:
   Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next t }

let hash64 a b = mix64 (Int64.add (Int64.mul a 0x2545F4914F6CDD1DL) b)

let float t =
  (* 53 high bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let float_of_hash h = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53
