(** Deterministic faults on the byte-ingest path.

    The carrier faults of {!Engine} damage data {e inside} the
    platform; this axis damages its {e arrival}: a codestream is cut
    into fixed-size chunks that reach the service one inter-chunk gap
    apart, and each chunk may independently be lost, duplicated,
    reordered within a bounded window, or held up by stall jitter
    that also delays everything behind it. Every choice draws from a
    seeded {!Rng} stream, so an identical [(seed, spec, data)] yields
    an identical arrival schedule — ingest campaigns replay bit for
    bit. *)

type profile = {
  loss : float;  (** per-chunk probability the chunk never arrives *)
  dup : float;  (** per-chunk probability a duplicate copy arrives later *)
  reorder : float;
      (** per-chunk probability of slipping behind later chunks *)
  window : int;  (** bound (in chunks) on how far a chunk can slip *)
  stall : float;
      (** per-chunk probability of a head-of-line stall in front of it *)
  stall_max_ps : int;  (** stall duration uniform in [1, max] ps *)
}

val no_faults : profile
(** Every rate zero: chunks arrive in order, one gap apart. *)

(** {1 Specs}

    A spec bundles the transport shape (chunk size and gap) with the
    fault profile. The string form is
    [chunk=BYTES,gap_us=US,loss=P,dup=P,reorder=P,window=N,stall=P,stall_us=US]
    with every key optional; unknown keys, malformed numbers and
    out-of-range values are rejected with a one-line message naming
    the offending value. *)

type spec = {
  chunk_bytes : int;  (** > 0; default 512 *)
  gap_ps : int;  (** inter-chunk arrival gap, > 0; default 100 us *)
  profile : profile;
}

val default_spec : spec
val parse_spec : string -> (spec, string) result

val spec_to_string : spec -> string
(** Canonical round-trippable form, embedded in serve reports. *)

(** {1 Schedules} *)

type chunk = {
  c_offset : int;  (** byte offset of this chunk within the stream *)
  c_bytes : string;
  c_arrival_ps : int;  (** absolute arrival instant *)
}

type delivery = {
  chunks : chunk list;  (** sorted by (arrival, offset) *)
  sent : int;  (** chunks the stream was cut into *)
  lost : int;
  duped : int;
  reordered : int;
  stall_ps : int;  (** total head-of-line stall injected *)
}

val schedule : seed:int -> spec -> start_ps:int -> string -> delivery
(** Cut [data] into [spec.chunk_bytes]-sized chunks arriving from
    [start_ps] one gap apart, then apply the fault profile. Pure:
    equal arguments give equal deliveries. *)
