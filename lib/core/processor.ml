type t = {
  lock : Lock.t;
  clock_hz : int;
  context_switch : Sim.Sim_time.t;
  mutable last_ran : int option;
  mutable tasks : int;
}

type binding = Lock.holder

let create kernel ~name ~clock_hz ?(context_switch = Sim.Sim_time.zero)
    ?(arbiter = Arbiter.create Arbiter.Fcfs) () =
  if clock_hz <= 0 then invalid_arg "Processor.create: clock_hz";
  {
    lock = Lock.create kernel ~name ~arbiter ();
    clock_hz;
    context_switch;
    last_ran = None;
    tasks = 0;
  }

let name t = Lock.name t.lock
let clock_hz t = t.clock_hz
let kernel t = Lock.kernel t.lock

let add_sw_task t ~task_name =
  t.tasks <- t.tasks + 1;
  Lock.register t.lock ~name:task_name ()

let task_count t = t.tasks

let execute t binding duration =
  Lock.with_lock t.lock binding (fun () ->
      let id = Lock.holder_id binding in
      if t.last_ran <> Some id && t.last_ran <> None then begin
        Telemetry.Sink.incr ("processor." ^ name t ^ ".context_switches");
        Eet.consume t.context_switch
      end;
      t.last_ran <- Some id;
      Eet.consume duration;
      (* Stall jitter fault model: extra pipeline-stall cycles charged
         to this EET slice, at the processor's own clock. *)
      match Fault_hooks.stall () with
      | None -> ()
      | Some f ->
        let cycles = f ~proc:(Lock.name t.lock) in
        if cycles > 0 then
          Eet.consume (Sim.Sim_time.cycles ~hz:t.clock_hz cycles))

let busy_time t = Lock.total_held t.lock
let wait_time t = Lock.total_wait t.lock
