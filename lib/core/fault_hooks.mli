(** Fault-injection hook points for the physical carriers of the VTA
    layer.

    The paper's refined models route every method call over buses,
    point-to-point links and block RAMs; this module lets a fault
    engine (see library [faults]) intercept exactly those carriers
    without the unfaulted path paying anything: each carrier checks
    one [option ref] and proceeds untouched when it is [None].

    Hooks are domain-local ([Domain.DLS]): they are meant to be
    installed around a whole simulation run on one domain and removed
    afterwards ([Faults.Engine.with_engine] does both), and a parallel
    campaign that installs one engine per [Par.Pool] worker gets fully
    isolated, race-free fault streams — each grid point owns its
    {!Faults.Rng} state. All hook functions must be deterministic for
    reproducible campaigns. *)

type channel_hook = link:string -> int32 array -> int32 array
(** Transforms the serialised words of one RMI frame transmission
    attempt (may flip bits or drop words; must not be applied twice
    to the same attempt). *)

type frame_hook = link:string -> words:int -> bool
(** Fate of one {e timing-only} payload frame of the given size:
    [true] means the attempt arrives corrupted. Used for the bulk
    tile transfers whose words are not materialised. *)

type memory_hook = mem:string -> addr:int -> int32 -> int32
(** Transforms the word read from / written to a {!Memory} cell. *)

type stall_hook = proc:string -> int
(** Extra stall cycles injected into one processor EET slice. *)

val set_channel : channel_hook -> unit
val set_frame : frame_hook -> unit
val set_memory_read : memory_hook -> unit
val set_memory_write : memory_hook -> unit
val set_stall : stall_hook -> unit

val channel : unit -> channel_hook option
val frame : unit -> frame_hook option
val memory_read : unit -> memory_hook option
val memory_write : unit -> memory_hook option
val stall : unit -> stall_hook option

val active : unit -> bool
(** [true] if any hook is installed. *)

val clear : unit -> unit
(** Removes every hook (restores the zero-cost unfaulted path). *)
