type t = {
  kernel : Sim.Kernel.t;
  name : string;
  arbiter : Arbiter.t;
  grant_overhead : Sim.Sim_time.t;
  mutable owner : int option;
  mutable pending : int list; (* arrival order *)
  mutable holder_names : string list; (* reversed registration order *)
  mutable num_holders : int;
  released : Sim.Event.t;
  mutable grants : int;
  mutable total_wait : Sim.Sim_time.t;
  mutable total_held : Sim.Sim_time.t;
  mutable held_since : Sim.Sim_time.t;
}

type holder = { id : int; hname : string; overhead : Sim.Sim_time.t }

let create kernel ~name ~arbiter ?(grant_overhead = Sim.Sim_time.zero) () =
  {
    kernel;
    name;
    arbiter;
    grant_overhead;
    owner = None;
    pending = [];
    holder_names = [];
    num_holders = 0;
    released = Sim.Event.create kernel ~name:(name ^ ".released") ();
    grants = 0;
    total_wait = Sim.Sim_time.zero;
    total_held = Sim.Sim_time.zero;
    held_since = Sim.Sim_time.zero;
  }

let name t = t.name
let kernel t = t.kernel

let register t ~name ?(overhead = Sim.Sim_time.zero) () =
  let id = t.num_holders in
  t.num_holders <- id + 1;
  t.holder_names <- name :: t.holder_names;
  { id; hname = name; overhead }

let holder_name h = h.hname
let holder_id h = h.id
let num_holders t = t.num_holders

let remove_pending t id =
  t.pending <- List.filter (fun other -> other <> id) t.pending

let acquire t holder =
  if t.owner = Some holder.id then
    invalid_arg (Printf.sprintf "Lock.acquire: %s re-acquires %s" holder.hname t.name);
  let started = Sim.Kernel.now t.kernel in
  t.pending <- t.pending @ [ holder.id ];
  let rec attempt () =
    let granted =
      t.owner = None
      && Arbiter.choose t.arbiter ~pending:t.pending = Some holder.id
    in
    if granted then begin
      t.owner <- Some holder.id;
      remove_pending t holder.id;
      Arbiter.note_grant t.arbiter holder.id;
      t.grants <- t.grants + 1;
      let waited =
        Sim.Sim_time.sub (Sim.Kernel.now t.kernel) started
      in
      t.total_wait <- Sim.Sim_time.add t.total_wait waited;
      if Telemetry.Sink.enabled () then begin
        let wait_ps = Sim.Sim_time.to_ps waited in
        Telemetry.Sink.incr
          (Printf.sprintf "lock.%s.grants.%s" t.name holder.hname);
        Telemetry.Sink.observe ("lock." ^ t.name ^ ".wait_ps") wait_ps;
        if wait_ps > 0 then
          (* Arbitration wait on the requester's own track: the span
             covers request-to-grant, so contention shows up next to
             the stage that suffered it. *)
          Telemetry.Span.complete
            ~ts_ps:(Sim.Sim_time.to_ps started)
            ~dur_ps:wait_ps ~cat:"arbitration" ("wait:" ^ t.name)
      end;
      let overhead = Sim.Sim_time.add t.grant_overhead holder.overhead in
      if not (Sim.Sim_time.is_zero overhead) then Sim.Kernel.wait_for overhead;
      t.held_since <- Sim.Kernel.now t.kernel
    end
    else begin
      Sim.Event.wait t.released;
      attempt ()
    end
  in
  attempt ()

let release t holder =
  if t.owner <> Some holder.id then
    invalid_arg (Printf.sprintf "Lock.release: %s does not own %s" holder.hname t.name);
  t.owner <- None;
  let held = Sim.Sim_time.sub (Sim.Kernel.now t.kernel) t.held_since in
  t.total_held <- Sim.Sim_time.add t.total_held held;
  if Telemetry.Sink.enabled () then begin
    let held_ps = Sim.Sim_time.to_ps held in
    Telemetry.Sink.observe ("lock." ^ t.name ^ ".held_ps") held_ps;
    (* Busy span on the resource's own track. Grants are mutually
       exclusive, so these spans tile the track without overlap; the
       holder name labels who occupied the resource. *)
    if held_ps > 0 then
      Telemetry.Span.complete
        ~ts_ps:(Sim.Sim_time.to_ps t.held_since)
        ~dur_ps:held_ps ~track:t.name ~cat:"busy" holder.hname
  end;
  Sim.Event.notify t.released

let with_lock t holder f =
  acquire t holder;
  match f () with
  | result ->
    release t holder;
    result
  | exception exn ->
    release t holder;
    raise exn

let grants t = t.grants
let total_wait t = t.total_wait
let total_held t = t.total_held
