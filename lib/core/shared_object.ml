type 'state t = {
  lock : Lock.t;
  state : 'state;
  completed : Sim.Event.t; (* some method call finished: guards may hold now *)
  mutable calls : int;
}

type client = Lock.holder

let create kernel ~name ~arbiter ?grant_overhead state =
  {
    lock = Lock.create kernel ~name ~arbiter ?grant_overhead ();
    state;
    completed = Sim.Event.create kernel ~name:(name ^ ".completed") ();
    calls = 0;
  }

let name t = Lock.name t.lock
let kernel t = Lock.kernel t.lock
let register_client t ~name ?overhead () =
  Lock.register t.lock ~name ?overhead ()
let client_name = Lock.holder_name
let num_clients t = Lock.num_holders t.lock
let peek t f = f t.state

let run_method t ?eet f =
  (match eet with Some d -> Eet.consume d | None -> ());
  let result = f t.state in
  t.calls <- t.calls + 1;
  Telemetry.Sink.incr ("so." ^ name t ^ ".calls");
  Sim.Event.notify t.completed;
  result

let call t client ?eet f =
  Lock.with_lock t.lock client (fun () -> run_method t ?eet f)

let call_guarded t client ~guard ?eet f =
  let blocked_since = ref None in
  let rec attempt () =
    Lock.acquire t.lock client;
    if guard t.state then begin
      (match !blocked_since with
      | None -> ()
      | Some since ->
        (* The whole closed-guard episode, first rejection to the
           grant where the guard finally held. *)
        let now_ps = Sim.Sim_time.to_ps (Sim.Kernel.now (kernel t)) in
        Telemetry.Span.complete ~ts_ps:since ~dur_ps:(now_ps - since)
          ~cat:"guard" ("blocked:" ^ name t));
      match run_method t ?eet f with
      | result ->
        Lock.release t.lock client;
        result
      | exception exn ->
        Lock.release t.lock client;
        raise exn
    end
    else begin
      if Telemetry.Sink.enabled () then begin
        Telemetry.Sink.incr ("so." ^ name t ^ ".guard_blocks");
        if !blocked_since = None then
          blocked_since :=
            Some (Sim.Sim_time.to_ps (Sim.Kernel.now (kernel t)))
      end;
      (* OSSS guard semantics: free the object so other clients can
         make the guard true, then retry after any completion. *)
      Lock.release t.lock client;
      Sim.Event.wait t.completed;
      attempt ()
    end
  in
  attempt ()

let calls t = t.calls
let total_wait t = Lock.total_wait t.lock
let total_busy t = Lock.total_held t.lock
