(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over 32-bit
   bus words, little-endian byte order within each word. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update_byte crc b =
  let t = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int b)) 0xFFl) in
  Int32.logxor t.(idx) (Int32.shift_right_logical crc 8)

let update_word crc w =
  let b k = Int32.to_int (Int32.logand (Int32.shift_right_logical w (8 * k)) 0xFFl) in
  update_byte (update_byte (update_byte (update_byte crc (b 0)) (b 1)) (b 2)) (b 3)

let words data =
  Int32.lognot (Array.fold_left update_word 0xFFFFFFFFl data)

let frame data =
  let n = Array.length data in
  let out = Array.make (n + 1) 0l in
  Array.blit data 0 out 0 n;
  out.(n) <- words data;
  out

let check framed =
  let n = Array.length framed - 1 in
  if n < 0 then None
  else
    let payload = Array.sub framed 0 n in
    if Int32.equal (words payload) framed.(n) then Some payload else None
