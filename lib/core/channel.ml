type kind =
  | Bus_link of Bus.t * Bus.master
  | P2p of {
      kernel : Sim.Kernel.t;
      clock_hz : int;
      cycles_per_word : int;
      setup_cycles : int;
    }

type protection =
  | Unprotected
  | Crc_retry of {
      max_retries : int;
      timeout_cycles : int;
      backoff_base_cycles : int;
    }

type stats = {
  mutable frames : int;
  mutable crc_errors : int;
  mutable retries : int;
  mutable giveups : int;
  mutable retry_time : Sim.Sim_time.t;
}

type transport = {
  kind : kind;
  link_name : string;
  mutable protection : protection;
  stats : stats;
}

exception Transfer_failed of { link : string; what : string; attempts : int }

let fresh_stats () =
  { frames = 0; crc_errors = 0; retries = 0; giveups = 0;
    retry_time = Sim.Sim_time.zero }

let make kind link_name =
  { kind; link_name; protection = Unprotected; stats = fresh_stats () }

let bus_transport bus master = make (Bus_link (bus, master)) (Bus.name bus)

let p2p kernel ?(clock_hz = 100_000_000) ?(cycles_per_word = 1)
    ?(setup_cycles = 2) ?(name = "p2p") () =
  if clock_hz <= 0 then invalid_arg "Channel.p2p: clock_hz";
  if cycles_per_word <= 0 then invalid_arg "Channel.p2p: cycles_per_word";
  if setup_cycles < 0 then invalid_arg "Channel.p2p: setup_cycles";
  make (P2p { kernel; clock_hz; cycles_per_word; setup_cycles }) name

let transport_name t = t.link_name

let kernel_of t =
  match t.kind with
  | Bus_link (bus, _) -> Bus.kernel bus
  | P2p { kernel; _ } -> kernel

let now_ps t = Sim.Sim_time.to_ps (Sim.Kernel.now (kernel_of t))

let crc_retry ?(max_retries = 8) ?(timeout_cycles = 64)
    ?(backoff_base_cycles = 16) () =
  if max_retries < 0 then invalid_arg "Channel.crc_retry: max_retries";
  if timeout_cycles < 0 then invalid_arg "Channel.crc_retry: timeout_cycles";
  if backoff_base_cycles < 0 then
    invalid_arg "Channel.crc_retry: backoff_base_cycles";
  Crc_retry { max_retries; timeout_cycles; backoff_base_cycles }

let set_protection t p = t.protection <- p
let protection t = t.protection
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.frames <- 0;
  s.crc_errors <- 0;
  s.retries <- 0;
  s.giveups <- 0;
  s.retry_time <- Sim.Sim_time.zero

let clock_hz t =
  match t.kind with
  | Bus_link (bus, _) -> Bus.clock_hz bus
  | P2p { clock_hz; _ } -> clock_hz

let transfer t ~words =
  if words < 0 then invalid_arg "Channel.transfer: negative word count";
  if words > 0 then
    Telemetry.Sink.incr ~by:words ("channel." ^ t.link_name ^ ".words");
  match t.kind with
  | Bus_link (bus, master) -> Bus.transfer bus master ~words
  | P2p { clock_hz; cycles_per_word; setup_cycles; _ } ->
    if words > 0 then
      Eet.consume
        (Sim.Sim_time.cycles ~hz:clock_hz
           (setup_cycles + (words * cycles_per_word)))

let transfer_time_unloaded t ~words =
  if words < 0 then invalid_arg "Channel.transfer_time_unloaded: negative"
  else
    match t.kind with
    | Bus_link (bus, _) -> Bus.transfer_time_unloaded bus ~words
    | P2p { clock_hz; cycles_per_word; setup_cycles; _ } ->
      if words = 0 then Sim.Sim_time.zero
      else
        Sim.Sim_time.cycles ~hz:clock_hz
          (setup_cycles + (words * cycles_per_word))

(* -- protected transfers ------------------------------------------- *)

(* Retry bookkeeping shared by the data-carrying and timing-only
   protected paths. [attempt n] performs one transmission and returns
   [Some v] on success, [None] on a detected corruption; on [None]
   the caller pays the detection timeout, an exponential backoff, and
   retries until the budget is exhausted. The retransmission time is
   real simulated time — retries are never free. *)
let with_retries t ~what ~max_retries ~timeout_cycles ~backoff_base_cycles
    attempt =
  let hz = clock_hz t in
  let started =
    try Some (Sim.Kernel.now (Sim.Kernel.self ())) with _ -> None
  in
  let rec go n =
    t.stats.frames <- t.stats.frames + 1;
    Telemetry.Sink.incr ("channel." ^ t.link_name ^ ".frames");
    match attempt n with
    | Some v ->
      (match started with
      | Some t0 when n > 0 ->
        let now = Sim.Kernel.now (Sim.Kernel.self ()) in
        t.stats.retry_time <-
          Sim.Sim_time.add t.stats.retry_time (Sim.Sim_time.sub now t0)
      | _ -> ());
      v
    | None ->
      t.stats.crc_errors <- t.stats.crc_errors + 1;
      if Telemetry.Sink.enabled () then begin
        Telemetry.Sink.incr ("channel." ^ t.link_name ^ ".crc_errors");
        Telemetry.Span.instant ~ts_ps:(now_ps t) ~cat:"fault"
          ~args:
            [ ("link", Telemetry.Event.Str t.link_name);
              ("what", Telemetry.Event.Str what);
              ("attempt", Telemetry.Event.Int (n + 1)) ]
          "crc_error"
      end;
      Eet.consume (Sim.Sim_time.cycles ~hz timeout_cycles);
      if n >= max_retries then begin
        t.stats.giveups <- t.stats.giveups + 1;
        Telemetry.Sink.incr ("channel." ^ t.link_name ^ ".giveups");
        raise (Transfer_failed { link = t.link_name; what; attempts = n + 1 })
      end;
      t.stats.retries <- t.stats.retries + 1;
      Telemetry.Sink.incr ("channel." ^ t.link_name ^ ".retries");
      Eet.consume (Sim.Sim_time.cycles ~hz (backoff_base_cycles * (1 lsl Stdlib.min n 16)));
      go (n + 1)
  in
  go 0

(* One extra protocol word carries the method id in each direction. *)
let protocol_words = 1

(* Send a serialised payload over the channel and return what the
   receiver deserialises. Unprotected: the words travel as they are
   (a fault hook may corrupt them — detection is then the decoder's
   problem, typically an [Invalid_argument] from {!Serialisation}).
   Protected: CRC framing, verification, timeout + bounded retry with
   exponential backoff. *)
let send_words t ~what payload =
  let corrupt arr =
    match Fault_hooks.channel () with
    | None -> arr
    | Some f -> f ~link:t.link_name arr
  in
  match t.protection with
  | Unprotected ->
    t.stats.frames <- t.stats.frames + 1;
    Telemetry.Sink.incr ("channel." ^ t.link_name ^ ".frames");
    transfer t ~words:(Array.length payload + protocol_words);
    corrupt payload
  | Crc_retry { max_retries; timeout_cycles; backoff_base_cycles } ->
    with_retries t ~what ~max_retries ~timeout_cycles ~backoff_base_cycles
      (fun _n ->
        let framed = Crc.frame payload in
        transfer t ~words:(Array.length framed + protocol_words);
        Crc.check (corrupt framed))

(* Timing-only bulk frame (tile payload): no words are materialised,
   the frame hook decides the fate of each attempt. *)
let payload_transfer t ~words =
  if words < 0 then invalid_arg "Channel.payload_transfer: negative word count";
  if words > 0 then begin
    let span_start = if Telemetry.Sink.enabled () then now_ps t else 0 in
    let fate () =
      match Fault_hooks.frame () with
      | None -> false
      | Some f -> f ~link:t.link_name ~words
    in
    (match t.protection with
    | Unprotected ->
      t.stats.frames <- t.stats.frames + 1;
      Telemetry.Sink.incr ("channel." ^ t.link_name ^ ".frames");
      transfer t ~words;
      ignore (fate ())
    | Crc_retry { max_retries; timeout_cycles; backoff_base_cycles } ->
      with_retries t ~what:"payload" ~max_retries ~timeout_cycles
        ~backoff_base_cycles (fun _n ->
          transfer t ~words:(words + 1) (* + CRC word *);
          if fate () then None else Some ()));
    if Telemetry.Sink.enabled () then
      Telemetry.Span.complete ~ts_ps:span_start
        ~dur_ps:(now_ps t - span_start) ~cat:"comm"
        ~args:[ ("words", Telemetry.Event.Int words) ]
        ("payload:" ^ t.link_name)
  end

(* -- remote method invocation --------------------------------------- *)

type ('state, 'a, 'b) rmi_method = {
  method_name : string;
  args_codec : 'a Serialisation.codec;
  ret_codec : 'b Serialisation.codec;
  execution_time : 'a -> Sim.Sim_time.t;
  body : 'state -> 'a -> 'b;
}

let rmi_method ~name ~args ~ret
    ?(execution_time = fun _ -> Sim.Sim_time.zero) body =
  {
    method_name = name;
    args_codec = args;
    ret_codec = ret;
    execution_time;
    body;
  }

let rmi_transaction transport so client m args ~call =
  let span_start =
    if Telemetry.Sink.enabled () then now_ps transport else 0
  in
  let encoded_args = Serialisation.encode m.args_codec args in
  let arrived = send_words transport ~what:(m.method_name ^ ":args") encoded_args in
  let received_args = Serialisation.decode m.args_codec arrived in
  let eet = m.execution_time received_args in
  let result = call so client ~eet (fun state -> m.body state received_args) in
  let encoded_ret = Serialisation.encode m.ret_codec result in
  let returned = send_words transport ~what:(m.method_name ^ ":ret") encoded_ret in
  if Telemetry.Sink.enabled () then
    Telemetry.Span.complete ~ts_ps:span_start
      ~dur_ps:(now_ps transport - span_start) ~cat:"rmi"
      ~args:[ ("link", Telemetry.Event.Str transport.link_name) ]
      ("rmi:" ^ m.method_name);
  Serialisation.decode m.ret_codec returned

let rmi_call transport so client m args =
  rmi_transaction transport so client m args ~call:(fun so client ~eet f ->
      Shared_object.call so client ~eet f)

let rmi_call_guarded transport so client ~guard m args =
  rmi_transaction transport so client m args
    ~call:(fun so client ~eet f -> Shared_object.call_guarded so client ~guard ~eet f)
