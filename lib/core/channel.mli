(** OSSS Channels: RMI transport for refined communication links.

    On the Application Layer a method call on a Shared Object is a
    plain (arbitrated, blocking) function call. The VTA refinement
    maps each communication link onto an OSSS Channel; the Remote
    Method Invocation protocol then

    + serialises the arguments into 32-bit words (plus one protocol
      word carrying the method id),
    + moves them over the channel's physical transport — a shared bus
      or a dedicated point-to-point link,
    + executes the method under the Shared Object's arbiter exactly
      as before, and
    + serialises and returns the result.

    Because the method body is untouched, swapping a bus for a P2P
    link (models 6a vs 6b, 7a vs 7b) changes only timing — the
    paper's seamless-refinement claim.

    {2 Hardened mode}

    A transport optionally runs in a {!protection} mode that appends
    a {!Crc} word to every serialised frame, verifies it at the
    receiver, and recovers from detected corruption with a timeout,
    a bounded number of retransmissions and exponential backoff. All
    recovery costs are paid in simulated time at the transport's
    clock, and counted in {!stats}. The default is {!Unprotected},
    whose timing is bit-for-bit the seed behaviour. *)

type transport

val bus_transport : Bus.t -> Bus.master -> transport

val p2p :
  Sim.Kernel.t ->
  ?clock_hz:int ->
  ?cycles_per_word:int ->
  ?setup_cycles:int ->
  ?name:string ->
  unit ->
  transport
(** Dedicated point-to-point link: no arbitration; a transfer costs
    [setup_cycles + words * cycles_per_word] at [clock_hz]. Defaults:
    100 MHz, 1 cycle/word, 2 setup cycles, name ["p2p"]. *)

val transport_name : transport -> string

val clock_hz : transport -> int
(** Clock of the physical carrier (bus clock or P2P link clock);
    prices the hardened mode's timeout and backoff waits. *)

val transfer : transport -> words:int -> unit
(** Raw timed transfer (process context). Never protected, never
    faulted — use {!payload_transfer} for frames that should be. *)

val transfer_time_unloaded : transport -> words:int -> Sim.Sim_time.t

(** {1 Hardened RMI} *)

type protection =
  | Unprotected
      (** Seed behaviour: frames travel bare, corruption (if a fault
          hook is installed) reaches the deserialiser undetected. *)
  | Crc_retry of {
      max_retries : int;  (** retransmissions before giving up *)
      timeout_cycles : int;
          (** cycles to detect a bad frame before reacting *)
      backoff_base_cycles : int;
          (** backoff before retry [n] is [base * 2{^n}] cycles *)
    }

val crc_retry :
  ?max_retries:int ->
  ?timeout_cycles:int ->
  ?backoff_base_cycles:int ->
  unit ->
  protection
(** [Crc_retry] with defaults 8 retries, 64-cycle timeout, 16-cycle
    backoff base. *)

val set_protection : transport -> protection -> unit
val protection : transport -> protection

type stats = {
  mutable frames : int;  (** transmission attempts (incl. retries) *)
  mutable crc_errors : int;  (** frames that failed verification *)
  mutable retries : int;  (** retransmissions performed *)
  mutable giveups : int;  (** transfers abandoned after the budget *)
  mutable retry_time : Sim.Sim_time.t;
      (** simulated time spent on transfers that needed recovery *)
}

val stats : transport -> stats
val reset_stats : transport -> unit

exception Transfer_failed of { link : string; what : string; attempts : int }
(** Raised by a protected transfer once [max_retries] retransmissions
    have all arrived corrupted. *)

val payload_transfer : transport -> words:int -> unit
(** Timed transfer of one timing-only bulk frame (e.g. a tile
    payload) that participates in fault injection and protection:
    the frame fate comes from {!Fault_hooks.frame}; under [Crc_retry]
    a corrupted attempt costs timeout + backoff + retransmission and
    may end in {!Transfer_failed}. Unprotected with no hook installed
    this is exactly [transfer]. *)

(** {1 Remote method invocation} *)

type ('state, 'a, 'b) rmi_method = {
  method_name : string;
  args_codec : 'a Serialisation.codec;
  ret_codec : 'b Serialisation.codec;
  execution_time : 'a -> Sim.Sim_time.t;
      (** the method's EET on its implementation resource *)
  body : 'state -> 'a -> 'b;
}

val rmi_method :
  name:string ->
  args:'a Serialisation.codec ->
  ret:'b Serialisation.codec ->
  ?execution_time:('a -> Sim.Sim_time.t) ->
  ('state -> 'a -> 'b) ->
  ('state, 'a, 'b) rmi_method

val rmi_call :
  transport ->
  'state Shared_object.t ->
  Shared_object.client ->
  ('state, 'a, 'b) rmi_method ->
  'a ->
  'b
(** Performs the full refined call. The argument and result values
    actually travel through their word encodings, so a codec mismatch
    is a simulation failure, not a silent approximation. Under a
    {!Fault_hooks.channel} hook the words may be corrupted in flight;
    {!Crc_retry} protection detects and repairs that at a measured
    retransmission cost. *)

val rmi_call_guarded :
  transport ->
  'state Shared_object.t ->
  Shared_object.client ->
  guard:('state -> bool) ->
  ('state, 'a, 'b) rmi_method ->
  'a ->
  'b
