type timing =
  | Combinational
  | Clocked of { clock_hz : int; read_latency_cycles : int }

type t = {
  kernel : Sim.Kernel.t;
  name : string;
  storage : int32 array;
  timing : timing;
  mutable reads : int;
  mutable writes : int;
}

let register_file kernel ~name ~size_words =
  if size_words <= 0 then invalid_arg "Memory.register_file: size_words";
  {
    kernel;
    name;
    storage = Array.make size_words 0l;
    timing = Combinational;
    reads = 0;
    writes = 0;
  }

let xilinx_block_ram kernel ~name ~data_width ~addr_width ~clock_hz
    ?(read_latency_cycles = 1) () =
  if data_width <= 0 || data_width > 32 then
    invalid_arg "Memory.xilinx_block_ram: data_width";
  if addr_width <= 0 || addr_width > 26 then
    invalid_arg "Memory.xilinx_block_ram: addr_width";
  if clock_hz <= 0 then invalid_arg "Memory.xilinx_block_ram: clock_hz";
  {
    kernel;
    name;
    storage = Array.make (1 lsl addr_width) 0l;
    timing = Clocked { clock_hz; read_latency_cycles };
    reads = 0;
    writes = 0;
  }

let name t = t.name
let size_words t = Array.length t.storage
let is_block_ram t = t.timing <> Combinational

let check_addr t addr =
  if addr < 0 || addr >= Array.length t.storage then
    invalid_arg (Printf.sprintf "Memory: %s address %d out of range" t.name addr)

let access_time t ~words =
  if words < 0 then invalid_arg "Memory.access_time: negative"
  else
    match t.timing with
    | Combinational -> Sim.Sim_time.zero
    | Clocked { clock_hz; read_latency_cycles } ->
      if words = 0 then Sim.Sim_time.zero
      else Sim.Sim_time.cycles ~hz:clock_hz (read_latency_cycles + words - 1 + 1)

let single_access_time t =
  match t.timing with
  | Combinational -> Sim.Sim_time.zero
  | Clocked { clock_hz; read_latency_cycles } ->
    Sim.Sim_time.cycles ~hz:clock_hz (read_latency_cycles + 1)

(* Fault-injection points: a read fault models a transient or
   stuck-at error on the output port (storage untouched), a write
   fault corrupts the stored cell itself. *)
let faulted_read t addr v =
  match Fault_hooks.memory_read () with
  | None -> v
  | Some f -> f ~mem:t.name ~addr v

let faulted_write t addr v =
  match Fault_hooks.memory_write () with
  | None -> v
  | Some f -> f ~mem:t.name ~addr v

let read t addr =
  check_addr t addr;
  t.reads <- t.reads + 1;
  Telemetry.Sink.incr ("memory." ^ t.name ^ ".reads");
  Eet.consume (single_access_time t);
  faulted_read t addr t.storage.(addr)

let write t addr v =
  check_addr t addr;
  t.writes <- t.writes + 1;
  Telemetry.Sink.incr ("memory." ^ t.name ^ ".writes");
  (match t.timing with
  | Combinational -> ()
  | Clocked { clock_hz; _ } -> Eet.consume (Sim.Sim_time.cycles ~hz:clock_hz 1));
  t.storage.(addr) <- faulted_write t addr v

let read_burst t ~addr ~len =
  if len < 0 then invalid_arg "Memory.read_burst: negative length";
  if len > 0 then begin
    check_addr t addr;
    check_addr t (addr + len - 1)
  end;
  t.reads <- t.reads + len;
  let span_start =
    if Telemetry.Sink.enabled () && len > 0 then begin
      Telemetry.Sink.incr ~by:len ("memory." ^ t.name ^ ".reads");
      Some (Sim.Sim_time.to_ps (Sim.Kernel.now t.kernel))
    end
    else None
  in
  Eet.consume (access_time t ~words:len);
  (match span_start with
  | None -> ()
  | Some ts_ps ->
    let now = Sim.Sim_time.to_ps (Sim.Kernel.now t.kernel) in
    Telemetry.Span.complete ~ts_ps ~dur_ps:(now - ts_ps) ~cat:"memory"
      ~args:[ ("words", Telemetry.Event.Int len) ]
      ("read:" ^ t.name));
  let data = Array.sub t.storage addr len in
  (match Fault_hooks.memory_read () with
  | None -> ()
  | Some f ->
    Array.iteri (fun i v -> data.(i) <- f ~mem:t.name ~addr:(addr + i) v) data);
  data

let write_burst t ~addr data =
  let len = Array.length data in
  if len > 0 then begin
    check_addr t addr;
    check_addr t (addr + len - 1)
  end;
  t.writes <- t.writes + len;
  let span_start =
    if Telemetry.Sink.enabled () && len > 0 then begin
      Telemetry.Sink.incr ~by:len ("memory." ^ t.name ^ ".writes");
      Some (Sim.Sim_time.to_ps (Sim.Kernel.now t.kernel))
    end
    else None
  in
  Eet.consume (access_time t ~words:len);
  (match span_start with
  | None -> ()
  | Some ts_ps ->
    let now = Sim.Sim_time.to_ps (Sim.Kernel.now t.kernel) in
    Telemetry.Span.complete ~ts_ps ~dur_ps:(now - ts_ps) ~cat:"memory"
      ~args:[ ("words", Telemetry.Event.Int len) ]
      ("write:" ^ t.name));
  match Fault_hooks.memory_write () with
  | None -> Array.blit data 0 t.storage addr len
  | Some f ->
    Array.iteri (fun i v -> t.storage.(addr + i) <- f ~mem:t.name ~addr:(addr + i) v) data

let reads t = t.reads
let writes t = t.writes
