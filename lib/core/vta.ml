type channel_kind = Shared_bus | Point_to_point

type so_access = { sa_client : string; sa_object : string; sa_guarded : bool }

type t = {
  platform : Platform.t;
  mutable tasks : (string * string) list; (* reversed *)
  mutable modules : (string * string) list;
  mutable links : (string * string * channel_kind) list;
  mutable accesses : so_access list; (* reversed *)
}

let create platform =
  { platform; tasks = []; modules = []; links = []; accesses = [] }

let platform t = t.platform

let map_task t ~task ~processor = t.tasks <- (task, processor) :: t.tasks

let map_module t ~module_name ~block =
  t.modules <- (module_name, block) :: t.modules

let map_link t ~link ~channel ~kind =
  t.links <- (link, channel, kind) :: t.links

let record_so_access t ~client ~so ~guarded =
  t.accesses <- { sa_client = client; sa_object = so; sa_guarded = guarded } :: t.accesses

let task_mappings t = List.rev t.tasks
let module_mappings t = List.rev t.modules
let link_mappings t = List.rev t.links
let so_accesses t = List.rev t.accesses

let wait_graph t =
  (* Client -> accessed Shared Objects, preserving first-access order
     of the clients; guarded accesses are the blocking (wait-for)
     edges the deadlock analysis follows. *)
  List.fold_left
    (fun acc a ->
      let edges = try List.assoc a.sa_client acc with Not_found -> [] in
      let edge = (a.sa_object, a.sa_guarded) in
      if List.mem edge edges then acc
      else (a.sa_client, edges @ [ edge ]) :: List.remove_assoc a.sa_client acc)
    [] (so_accesses t)
  |> List.rev

let dedup_keep_order items =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    items

let processors t = dedup_keep_order (List.map snd (task_mappings t))

let channels t =
  dedup_keep_order (List.map (fun (_, c, k) -> (c, k)) (link_mappings t))

let duplicates keys =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun k ->
      if Hashtbl.mem seen k then Some k
      else begin
        Hashtbl.add seen k ();
        None
      end)
    keys

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun task -> err "task %s mapped more than once" task)
    (duplicates (List.map fst (task_mappings t)));
  List.iter
    (fun m -> err "module %s mapped more than once" m)
    (duplicates (List.map fst (module_mappings t)));
  List.iter
    (fun block -> err "hardware block %s hosts more than one module" block)
    (duplicates (List.map snd (module_mappings t)));
  List.iter
    (fun link -> err "link %s mapped more than once" link)
    (duplicates (List.map (fun (l, _, _) -> l) (link_mappings t)));
  (* A channel name must be used with a single kind. *)
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun (_, channel, kind) ->
      match Hashtbl.find_opt kinds channel with
      | None -> Hashtbl.add kinds channel kind
      | Some k when k = kind -> ()
      | Some _ -> err "channel %s used with conflicting kinds" channel)
    (link_mappings t);
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_kind fmt = function
  | Shared_bus -> Format.pp_print_string fmt "bus"
  | Point_to_point -> Format.pp_print_string fmt "p2p"

let pp fmt t =
  Format.fprintf fmt "@[<v>VTA mapping on %s:@," t.platform.Platform.platform_name;
  List.iter
    (fun (task, proc) -> Format.fprintf fmt "  task %s -> %s@," task proc)
    (task_mappings t);
  List.iter
    (fun (m, block) -> Format.fprintf fmt "  module %s -> %s@," m block)
    (module_mappings t);
  List.iter
    (fun (link, channel, kind) ->
      Format.fprintf fmt "  link %s -> %s (%a)@," link channel pp_kind kind)
    (link_mappings t);
  List.iter
    (fun a ->
      Format.fprintf fmt "  access %s -> %s%s@," a.sa_client a.sa_object
        (if a.sa_guarded then " (guarded)" else ""))
    (so_accesses t);
  Format.fprintf fmt "@]"
