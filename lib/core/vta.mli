(** Virtual-Target-Architecture mapping registry.

    The VTA refinement assigns every logical component of the
    Application Model to an architectural resource:

    - Software Tasks → processors (N:1),
    - modules → hardware blocks (1:1),
    - communication links → OSSS Channels (N:1).

    This module records the mapping declaratively and checks its
    multiplicity rules; the behavioural binding itself is performed
    by {!Sw_task.map_to_processor} and by constructing the channels.
    Keeping the registry separate lets synthesis ({!Fossy}) and
    platform generation read one authoritative description. *)

type t

type channel_kind = Shared_bus | Point_to_point

type so_access = {
  sa_client : string;  (** task or module name *)
  sa_object : string;  (** Shared Object name *)
  sa_guarded : bool;  (** blocking guarded call (may wait forever) *)
}

val create : Platform.t -> t
val platform : t -> Platform.t

val map_task : t -> task:string -> processor:string -> unit
val map_module : t -> module_name:string -> block:string -> unit
val map_link : t -> link:string -> channel:string -> kind:channel_kind -> unit

val record_so_access : t -> client:string -> so:string -> guarded:bool -> unit
(** Declares that a task/module performs (guarded or plain) method
    calls on a Shared Object. One record per distinct
    (client, object, guardedness) is enough; duplicates are merged by
    {!wait_graph}. *)

val task_mappings : t -> (string * string) list
val module_mappings : t -> (string * string) list
val link_mappings : t -> (string * string * channel_kind) list

val so_accesses : t -> so_access list

val wait_graph : t -> (string * (string * bool) list) list
(** [client -> [(shared object, guarded)]] adjacency derived from the
    recorded accesses (duplicates removed, declaration order kept).
    This is the export the analysis layer's guard-deadlock pass
    consumes: a guarded edge means the client can block on the object
    until some other client's completed call enables the guard. *)

val processors : t -> string list
(** Distinct processor targets, in first-mapping order. *)

val channels : t -> (string * channel_kind) list

val validate : t -> (unit, string list) result
(** Checks the multiplicity rules: a task is mapped at most once, a
    module exactly to one block, no two modules share a block, and a
    link is mapped at most once. Returns the list of violations. *)

val pp : Format.formatter -> t -> unit
