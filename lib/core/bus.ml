type t = {
  lock : Lock.t;
  clock_hz : int;
  data_width_bits : int;
  arbitration_cycles : int;
  address_cycles : int;
  cycles_per_word : int;
  max_burst_words : int;
  mutable transactions : int;
  mutable words : int;
  mutable master_names : string list; (* reversed *)
}

type master = Lock.holder

let create kernel ~name ~clock_hz ?(data_width_bits = 32)
    ?(arbitration_cycles = 2) ?(address_cycles = 1) ?(cycles_per_word = 1)
    ?(max_burst_words = 16) ?(arbiter = Arbiter.create Arbiter.Fcfs) () =
  if clock_hz <= 0 then invalid_arg "Bus.create: clock_hz";
  if data_width_bits <> 32 && data_width_bits <> 64 then
    invalid_arg "Bus.create: data path must be 32 or 64 bits";
  if arbitration_cycles < 0 || address_cycles < 0 then
    invalid_arg "Bus.create: negative cycle count";
  if cycles_per_word <= 0 then invalid_arg "Bus.create: cycles_per_word";
  if max_burst_words <= 0 then invalid_arg "Bus.create: max_burst_words";
  {
    lock = Lock.create kernel ~name ~arbiter ();
    clock_hz;
    data_width_bits;
    arbitration_cycles;
    address_cycles;
    cycles_per_word;
    max_burst_words;
    transactions = 0;
    words = 0;
    master_names = [];
  }

let name t = Lock.name t.lock
let kernel t = Lock.kernel t.lock
let clock_hz t = t.clock_hz

let attach_master t ~name =
  t.master_names <- name :: t.master_names;
  Lock.register t.lock ~name ()

let master_names t = List.rev t.master_names

let beats t ~burst_words =
  let words_per_beat = t.data_width_bits / 32 in
  (burst_words + words_per_beat - 1) / words_per_beat

let burst_cycles t ~burst_words =
  t.arbitration_cycles + t.address_cycles
  + (beats t ~burst_words * t.cycles_per_word)

let transfer t master ~words =
  if words < 0 then invalid_arg "Bus.transfer: negative word count";
  if words > 0 then begin
    t.transactions <- t.transactions + 1;
    t.words <- t.words + words;
    if Telemetry.Sink.enabled () then begin
      Telemetry.Sink.incr ("bus." ^ name t ^ ".transactions");
      Telemetry.Sink.incr ~by:words ("bus." ^ name t ^ ".words")
    end;
    let remaining = ref words in
    while !remaining > 0 do
      let burst = Stdlib.min !remaining t.max_burst_words in
      remaining := !remaining - burst;
      Lock.with_lock t.lock master (fun () ->
          Eet.consume
            (Sim.Sim_time.cycles ~hz:t.clock_hz
               (burst_cycles t ~burst_words:burst)))
    done
  end

let transfer_time_unloaded t ~words =
  if words < 0 then invalid_arg "Bus.transfer_time_unloaded: negative"
  else begin
    let full_bursts = words / t.max_burst_words in
    let tail = words mod t.max_burst_words in
    let cycles =
      (full_bursts * burst_cycles t ~burst_words:t.max_burst_words)
      + (if tail > 0 then burst_cycles t ~burst_words:tail else 0)
    in
    Sim.Sim_time.cycles ~hz:t.clock_hz cycles
  end

let opb kernel ?(clock_hz = 100_000_000) () =
  create kernel ~name:"opb" ~clock_hz ~data_width_bits:32 ~arbitration_cycles:2
    ~address_cycles:1 ~max_burst_words:16 ()

let plb kernel ?(clock_hz = 100_000_000) () =
  create kernel ~name:"plb" ~clock_hz ~data_width_bits:64 ~arbitration_cycles:2
    ~address_cycles:0 ~max_burst_words:32 ()

let transactions t = t.transactions
let words_transferred t = t.words
let busy_time t = Lock.total_held t.lock
let contention_time t = Lock.total_wait t.lock
