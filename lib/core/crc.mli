(** CRC-32 protection for serialised RMI frames.

    The hardened-channel mode appends one CRC word to each serialised
    payload; the receiver recomputes it before deserialising. CRC-32
    detects every single-bit error and every error burst up to 32
    bits — which covers the bit-flip and word-drop fault models of
    the [faults] library. *)

val words : int32 array -> int32
(** CRC-32 (IEEE, reflected) of the word array, bytes taken
    little-endian within each word. *)

val frame : int32 array -> int32 array
(** [frame payload] is [payload] with its CRC appended — the wire
    format of a protected transfer ([length] + 1 words). *)

val check : int32 array -> int32 array option
(** [check (frame p) = Some p]; [None] when the trailing CRC does not
    match the body (corruption or a dropped/duplicated word). *)
