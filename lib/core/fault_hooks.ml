type channel_hook = link:string -> int32 array -> int32 array
type frame_hook = link:string -> words:int -> bool
type memory_hook = mem:string -> addr:int -> int32 -> int32
type stall_hook = proc:string -> int

(* One DLS slot per carrier: hooks are domain-local so parallel fault
   campaigns can install one engine per worker domain without racing,
   and a domain with no engine keeps the zero-cost unfaulted path. *)
let channel_hook : channel_hook option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let frame_hook : frame_hook option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let memory_read_hook : memory_hook option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let memory_write_hook : memory_hook option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let stall_hook : stall_hook option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_channel f = Domain.DLS.set channel_hook (Some f)
let set_frame f = Domain.DLS.set frame_hook (Some f)
let set_memory_read f = Domain.DLS.set memory_read_hook (Some f)
let set_memory_write f = Domain.DLS.set memory_write_hook (Some f)
let set_stall f = Domain.DLS.set stall_hook (Some f)

let channel () = Domain.DLS.get channel_hook
let frame () = Domain.DLS.get frame_hook
let memory_read () = Domain.DLS.get memory_read_hook
let memory_write () = Domain.DLS.get memory_write_hook
let stall () = Domain.DLS.get stall_hook

let active () =
  channel () <> None || frame () <> None || memory_read () <> None
  || memory_write () <> None || stall () <> None

let clear () =
  Domain.DLS.set channel_hook None;
  Domain.DLS.set frame_hook None;
  Domain.DLS.set memory_read_hook None;
  Domain.DLS.set memory_write_hook None;
  Domain.DLS.set stall_hook None
