type channel_hook = link:string -> int32 array -> int32 array
type frame_hook = link:string -> words:int -> bool
type memory_hook = mem:string -> addr:int -> int32 -> int32
type stall_hook = proc:string -> int

let channel_hook : channel_hook option ref = ref None
let frame_hook : frame_hook option ref = ref None
let memory_read_hook : memory_hook option ref = ref None
let memory_write_hook : memory_hook option ref = ref None
let stall_hook : stall_hook option ref = ref None

let set_channel f = channel_hook := Some f
let set_frame f = frame_hook := Some f
let set_memory_read f = memory_read_hook := Some f
let set_memory_write f = memory_write_hook := Some f
let set_stall f = stall_hook := Some f

let channel () = !channel_hook
let frame () = !frame_hook
let memory_read () = !memory_read_hook
let memory_write () = !memory_write_hook
let stall () = !stall_hook

let active () =
  !channel_hook <> None || !frame_hook <> None || !memory_read_hook <> None
  || !memory_write_hook <> None || !stall_hook <> None

let clear () =
  channel_hook := None;
  frame_hook := None;
  memory_read_hook := None;
  memory_write_hook := None;
  stall_hook := None
