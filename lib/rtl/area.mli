(** Virtex-4 area model.

    Converts a {!Netlist.summary} into the figures the paper's
    Table 2 reports: slice flip-flops, 4-input LUTs, occupied slices,
    total equivalent gate count. The cost table is an explicit,
    documented approximation (one LUT4 per adder/subtractor/compare
    bit on the carry chain, LUT trees for multipliers, half a LUT per
    2:1-mux bit via the F5 muxes); absolute numbers are therefore
    indicative, but the FOSSY-vs-reference ratios — which is what the
    paper's evaluation is about — are driven by real structural
    differences (operator sharing across FSM states versus
    per-process duplication). *)

type sharing =
  | Shared  (** operators reused across FSM states (single-FSM FOSSY output) *)
  | Flat  (** every operator instantiated (multi-process reference style) *)

type report = {
  flip_flops : int;  (** slice flip-flops *)
  luts : int;  (** 4-input LUTs *)
  slices : int;  (** occupied slices *)
  gates : int;  (** total equivalent gate count *)
}

val estimate : sharing:sharing -> Netlist.summary -> report

val fits_lx25 : report -> bool
(** Whether the design fits a Virtex-4 LX25 (10 752 slices, 21 504
    LUTs/FFs). *)

val delta_pct : baseline:int -> int -> float
(** Signed percentage change relative to [baseline]; [0.] when both
    are zero, [infinity] when only the baseline is. *)

val regressions :
  tolerance_pct:float -> baseline:report -> report -> (string * float) list
(** The LUT/FF metrics of a report that grew beyond [tolerance_pct]
    percent over [baseline], as [(metric, delta_pct)] pairs — the
    area-regression gate run by the CLI [area --check] command and
    CI. Empty means the gate passes. *)

val pp_report : Format.formatter -> report -> unit
