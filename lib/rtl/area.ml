type sharing = Shared | Flat

type report = { flip_flops : int; luts : int; slices : int; gates : int }

(* Folding n exclusive uses onto one operator instance removes the
   duplicates but inserts operand-selection muxes in front of the
   shared instance: roughly one LUT per operand bit per absorbed
   use-pair. *)
let sharing_mux_luts ~total ~shared =
  let removed =
    List.fold_left
      (fun acc (o : Netlist.op_count) ->
        let shared_count =
          List.fold_left
            (fun c (s : Netlist.op_count) ->
              if s.kind = o.kind && s.width = o.width then c + s.count else c)
            0 shared
        in
        acc + (Stdlib.max 0 (o.count - shared_count) * o.width))
      0 total
  in
  removed

(* Array-access multiplexers shared across exclusive FSM states:
   timing-driven replication keeps a small fraction (~4 %) of the
   folded access muxes separate, so a shared design pays the
   per-state maximum plus that residual. *)
let residual_fraction = 0.04

let residual_ports ~total ~shared =
  List.map
    (fun (p : Netlist.port_count) ->
      let all =
        List.fold_left
          (fun acc (t : Netlist.port_count) ->
            if t.depth = p.depth && t.pwidth = p.pwidth then acc + t.pcount
            else acc)
          0 total
      in
      let residual =
        int_of_float
          (Float.round (residual_fraction *. float_of_int (Stdlib.max 0 (all - p.pcount))))
      in
      { p with pcount = p.pcount + residual })
    shared

let estimate ~sharing (s : Netlist.summary) =
  let op_luts, port_luts =
    match sharing with
    | Flat ->
      ( Netlist.total_op_luts s.Netlist.ops_total,
        Netlist.read_port_luts s.Netlist.reads_total
        + Netlist.write_port_luts s.Netlist.writes_total )
    | Shared ->
      ( Netlist.total_op_luts s.Netlist.ops_shared
        + sharing_mux_luts ~total:s.Netlist.ops_total ~shared:s.Netlist.ops_shared,
        Netlist.read_port_luts
          (residual_ports ~total:s.Netlist.reads_total
             ~shared:s.Netlist.reads_shared)
        + Netlist.write_port_luts
            (residual_ports ~total:s.Netlist.writes_total
               ~shared:s.Netlist.writes_shared) )
  in
  let mux_luts = s.Netlist.mux2_bits / 2 in
  let fsm_luts = s.Netlist.state_count in
  let luts = op_luts + port_luts + mux_luts + fsm_luts in
  let state_bits =
    let rec bits v acc = if v <= 1 then acc else bits ((v + 1) / 2) (acc + 1) in
    bits (Stdlib.max 1 s.Netlist.state_count) 0
  in
  let flip_flops = s.Netlist.register_bits + state_bits in
  (* A Virtex-4 slice holds 2 LUT4 + 2 FF; typical packing ~85 %. *)
  let slices =
    int_of_float
      (Float.round
         (float_of_int (Stdlib.max ((luts + 1) / 2) ((flip_flops + 1) / 2))
         /. 0.85))
  in
  (* Xilinx gate equivalents: ~12 per LUT4, 8 per FF. *)
  let gates = (12 * luts) + (8 * flip_flops) in
  { flip_flops; luts; slices; gates }

let fits_lx25 r = r.slices <= 10_752 && r.luts <= 21_504 && r.flip_flops <= 21_504

let delta_pct ~baseline value =
  if baseline = 0 then if value = 0 then 0.0 else infinity
  else float_of_int (value - baseline) *. 100.0 /. float_of_int baseline

let regressions ~tolerance_pct ~baseline r =
  List.filter_map
    (fun (label, base, now) ->
      let d = delta_pct ~baseline:base now in
      if d > tolerance_pct then Some (label, d) else None)
    [
      ("flip_flops", baseline.flip_flops, r.flip_flops);
      ("luts", baseline.luts, r.luts);
    ]

let pp_report fmt r =
  Format.fprintf fmt "FF=%d LUT=%d slices=%d gates=%d" r.flip_flops r.luts
    r.slices r.gates
