type arg =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type phase =
  | Complete of int
  | Instant
  | Counter of int

type t = {
  ts_ps : int;
  track : string;
  name : string;
  cat : string;
  phase : phase;
  args : (string * arg) list;
}

let duration_ps e = match e.phase with Complete d -> d | Instant | Counter _ -> 0

let is_span e = match e.phase with Complete _ -> true | Instant | Counter _ -> false

let tracks events =
  List.sort_uniq String.compare (List.map (fun e -> e.track) events)

let spans ?track ?name ?cat events =
  List.filter
    (fun e ->
      is_span e
      && (match track with None -> true | Some t -> String.equal e.track t)
      && (match name with None -> true | Some n -> String.equal e.name n)
      && match cat with None -> true | Some c -> String.equal e.cat c)
    events

(* Union length of the time intervals covered by Complete events —
   the same interval-union the models' Meter computes, so span-based
   and meter-based stage times can be compared exactly. *)
let union_ps events =
  let intervals =
    List.filter_map
      (fun e ->
        match e.phase with
        | Complete d when d > 0 -> Some (e.ts_ps, e.ts_ps + d)
        | Complete _ | Instant | Counter _ -> None)
      events
  in
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) intervals in
  let total, last =
    List.fold_left
      (fun (total, current) (start, stop) ->
        match current with
        | None -> (total, Some (start, stop))
        | Some (s, e) ->
          if start <= e then (total, Some (s, Stdlib.max e stop))
          else (total + (e - s), Some (start, stop)))
      (0, None) sorted
  in
  match last with None -> total | Some (s, e) -> total + (e - s)

let arg_to_json = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b
  | Str s -> Json.Str s
