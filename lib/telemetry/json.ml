type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* JSON has no NaN/infinity literals. *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf key;
        Buffer.add_char buf ':';
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let save path v =
  let oc = open_out path in
  let buf = Buffer.create 65536 in
  to_buffer buf v;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf;
  close_out oc
