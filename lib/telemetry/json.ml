type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    (* JSON has no NaN/infinity literals. *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf key;
        Buffer.add_char buf ':';
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let save path v =
  let oc = open_out path in
  let buf = Buffer.create 65536 in
  to_buffer buf v;
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf;
  close_out oc

(* -- parsing ----------------------------------------------------------

   Recursive descent over the RFC 8259 grammar, just enough for the
   documents this repository writes itself (baselines, reports):
   numbers without an exponent or fraction become [Int], everything
   else [Float]; \uXXXX escapes are encoded as UTF-8. Errors carry the
   byte offset so a hand-edited baseline pinpoints its typo. *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected %c, found %c" c c')
    | None -> error (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
      pos := !pos + 4;
      v
    | None -> error "malformed \\u escape"
  in
  let utf8 buf cp =
    (* Encode one code point (surrogates taken literally: the emitter
       never writes them and lone ones still round-trip as bytes). *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> error "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> utf8 buf (hex4 ())
          | c -> error (Printf.sprintf "invalid escape \\%c" c)));
        loop ()
      | Some c when Char.code c < 0x20 -> error "control character in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then error "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text) (* out of int range *)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (Stdlib.List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (Stdlib.List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

(* -- accessors ------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Null | Bool _ | Str _ | List _ | Obj _ -> None

let to_int_opt = function Int n -> Some n | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
