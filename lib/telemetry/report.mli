(** Immutable snapshot of a run's {!Metrics}, carried by
    [Models.Outcome] next to the resilience counters and exported as
    JSON by the CLI. *)

type dist = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
      (** (bucket lower bound, sample count), non-empty buckets only *)
  exemplars : (int * Metrics.exemplar) list;
      (** (bucket lower bound, exemplar), buckets that captured one *)
}

type t = {
  counters : (string * int) list;
  gauges : (string * int) list;
  dists : (string * dist) list;
}

val empty : t
(** What a run without an installed sink reports. *)

val is_empty : t -> bool
val of_metrics : Metrics.t -> t

val counter : t -> string -> int
(** 0 when absent. *)

val gauge : t -> string -> int option
val dist : t -> string -> dist option

val counter_sum : t -> prefix:string -> int
(** Sum of every counter whose key starts with [prefix] — e.g. the
    total grant count over all masters of one lock. *)

val dist_sum : t -> string -> int
(** Sum of a histogram's samples, 0 when absent. *)

val quantile_bucket : dist -> float -> int option
(** Lower bound of the bucket holding the [q]-th quantile sample
    (cumulative count over the log2 buckets); [None] on an empty
    histogram. *)

val quantile_exemplar : dist -> float -> Metrics.exemplar option
(** The exemplar captured in [quantile_bucket]'s bucket — so
    [quantile_exemplar d 0.99] links a p99 line to a concrete request.
    Falls back to the nearest populated exemplar bucket below, then
    above. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
