(* Deterministic hierarchical profiler over the span stream.

   Folds [Event.Complete] spans into one cost tree per track: nesting
   is recovered from the (virtual-time) intervals themselves, same-name
   siblings merge into one node, and every aggregate is integer
   picoseconds of simulated time — so the tree, its JSON export and the
   collapsed-stack text are byte-identical across reruns and across
   [--jobs], because worker domains carry no sink and every span is
   emitted from the coordinating domain at deterministic virtual
   timestamps. Wall-clock never enters the tree; callers that measure
   real time (the CLI's overhead ratio) report it next to the tree, not
   inside it. *)

type node = {
  name : string;
  self_ps : int;
  total_ps : int;
  count : int;
  children : node list; (* sorted by name *)
}

type t = { roots : node list (* one per track, sorted by track name *) }

(* -- building --------------------------------------------------------- *)

type builder = {
  b_name : string;
  mutable b_total : int;
  mutable b_count : int;
  b_kids : (string, builder) Hashtbl.t;
  mutable b_order : string list; (* insertion order; sorted at freeze *)
}

let builder name =
  { b_name = name; b_total = 0; b_count = 0; b_kids = Hashtbl.create 4; b_order = [] }

let child_of b name =
  match Hashtbl.find_opt b.b_kids name with
  | Some c -> c
  | None ->
    let c = builder name in
    Hashtbl.replace b.b_kids name c;
    b.b_order <- name :: b.b_order;
    c

let rec freeze b =
  let children =
    List.sort String.compare b.b_order
    |> List.map (fun name -> freeze (Hashtbl.find b.b_kids name))
  in
  let kids_total = List.fold_left (fun acc c -> acc + c.total_ps) 0 children in
  let total = if b.b_count = 0 then kids_total else b.b_total in
  {
    name = b.b_name;
    (* [self = total - Σ children] by construction, so the tree
       invariant holds exactly on every node, including when malformed
       (overlapping-sibling) input would make self negative. *)
    self_ps = total - kids_total;
    total_ps = total;
    count = b.b_count;
    children;
  }

(* Deterministic span order inside a track: outermost first. Start
   ascending, then duration descending (a span that starts with its
   parent nests inside it), then name as the final tie-break. *)
let span_order (a : Event.t) (b : Event.t) =
  let c = compare a.Event.ts_ps b.Event.ts_ps in
  if c <> 0 then c
  else
    let c = compare (Event.duration_ps b) (Event.duration_ps a) in
    if c <> 0 then c else String.compare a.Event.name b.Event.name

let of_events events =
  let by_track = Hashtbl.create 8 in
  let track_order = ref [] in
  List.iter
    (fun (ev : Event.t) ->
      match ev.Event.phase with
      | Event.Complete _ ->
        let bucket =
          match Hashtbl.find_opt by_track ev.Event.track with
          | Some b -> b
          | None ->
            let b = ref [] in
            Hashtbl.replace by_track ev.Event.track b;
            track_order := ev.Event.track :: !track_order;
            b
        in
        bucket := ev :: !bucket
      | Event.Instant | Event.Counter _ -> ())
    events;
  let roots =
    List.sort String.compare !track_order
    |> List.map (fun track ->
           let spans =
             List.sort span_order (List.rev !(Hashtbl.find by_track track))
           in
           let root = builder track in
           (* Stack of (start, end, node); the root frame fits
              everything. A span nests under the innermost frame that
              fully contains it; partial overlap (malformed input)
              degrades to siblinghood rather than raising. *)
           let stack = ref [ (min_int, max_int, root) ] in
           List.iter
             (fun (ev : Event.t) ->
               let s = ev.Event.ts_ps in
               let e = s + Event.duration_ps ev in
               let rec unwind () =
                 match !stack with
                 | (fs, fe, _) :: rest when not (s >= fs && e <= fe) ->
                   stack := rest;
                   unwind ()
                 | _ -> ()
               in
               unwind ();
               let _, _, top =
                 match !stack with [] -> assert false | f :: _ -> f
               in
               let child = child_of top ev.Event.name in
               child.b_total <- child.b_total + Event.duration_ps ev;
               child.b_count <- child.b_count + 1;
               stack := (s, e, child) :: !stack)
             spans;
           freeze root)
  in
  { roots }

let add_synthetic t ~track leaves =
  let root = builder track in
  List.iter
    (fun (path, self_ps, count) ->
      match path with
      | [] -> ()
      | _ ->
        let leaf =
          List.fold_left (fun node name -> child_of node name) root path
        in
        leaf.b_total <- leaf.b_total + self_ps;
        leaf.b_count <- leaf.b_count + count)
    leaves;
  let roots =
    List.sort
      (fun a b -> String.compare a.name b.name)
      (freeze root :: List.filter (fun r -> r.name <> track) t.roots)
  in
  { roots }

(* -- queries ---------------------------------------------------------- *)

let tracks t = List.map (fun r -> r.name) t.roots

let total_ps t = List.fold_left (fun acc r -> acc + r.total_ps) 0 t.roots

let find t path =
  match String.split_on_char ';' path with
  | [] -> None
  | root_name :: rest ->
    let rec descend node = function
      | [] -> Some node
      | name :: rest -> (
        match List.find_opt (fun c -> c.name = name) node.children with
        | Some c -> descend c rest
        | None -> None)
    in
    List.find_opt (fun r -> r.name = root_name) t.roots
    |> Fun.flip Option.bind (fun r -> descend r rest)

let fold f acc t =
  let rec walk acc path node =
    let path = path ^ (if path = "" then "" else ";") ^ node.name in
    let acc = f acc path node in
    List.fold_left (fun acc c -> walk acc path c) acc node.children
  in
  List.fold_left (fun acc r -> walk acc "" r) acc t.roots

let top_self ?(n = 3) t =
  fold (fun acc path node -> (path, node.self_ps) :: acc) [] t
  |> List.filter (fun (_, self) -> self > 0)
  |> List.sort (fun (pa, sa) (pb, sb) ->
         let c = compare sb sa in
         if c <> 0 then c else String.compare pa pb)
  |> List.filteri (fun i _ -> i < n)

let rec check_node node =
  let kids_total =
    List.fold_left (fun acc c -> acc + c.total_ps) 0 node.children
  in
  node.total_ps = node.self_ps + kids_total && List.for_all check_node node.children

let invariant t = List.for_all check_node t.roots

(* -- exports ---------------------------------------------------------- *)

let collapsed t =
  let lines =
    fold
      (fun acc path node ->
        if node.self_ps > 0 then
          Printf.sprintf "%s %d" path node.self_ps :: acc
        else acc)
      [] t
  in
  String.concat "\n" (List.sort String.compare lines) ^ "\n"

let rec node_to_json node =
  Json.Obj
    [
      ("name", Json.Str node.name);
      ("self_ps", Json.Int node.self_ps);
      ("total_ps", Json.Int node.total_ps);
      ("count", Json.Int node.count);
      ("children", Json.List (List.map node_to_json node.children));
    ]

let to_json t = Json.Obj [ ("tracks", Json.List (List.map node_to_json t.roots)) ]

let pp fmt t =
  let rec walk depth node =
    Format.fprintf fmt "%s%-*s self=%d ps  total=%d ps  n=%d@."
      (String.make (2 * depth) ' ')
      (40 - (2 * depth))
      node.name node.self_ps node.total_ps node.count;
    List.iter (walk (depth + 1)) node.children
  in
  if t.roots = [] then Format.fprintf fmt "  (no spans)@."
  else List.iter (walk 0) t.roots
