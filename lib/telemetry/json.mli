(** Minimal JSON document builder and reader.

    The repository has no JSON dependency; this covers what the
    telemetry exporters, the [--json] CLI outputs, the bench harness
    and the perf-regression gate need: construct a value, print it,
    and read a committed baseline back. Strings are escaped per
    RFC 8259; non-finite floats become [null] (JSON has no NaN or
    infinity literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val save : string -> t -> unit
(** [save path v] writes [v] followed by a newline to [path]. *)

(** {1 Parsing}

    Recursive-descent RFC 8259 reader. Numbers without a fraction or
    exponent parse as [Int], everything else as [Float]; [\uXXXX]
    escapes are encoded as UTF-8 bytes. *)

val parse : string -> (t, string) result
(** Parses one complete document; the error message carries the byte
    offset of the first problem. *)

val load : string -> (t, string) result
(** [load path] reads and parses the file (I/O errors become [Error]). *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] on anything else. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both read as floats. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
