(** Minimal JSON document builder (emit-only).

    The repository has no JSON dependency; this covers what the
    telemetry exporters, the [--json] CLI outputs and the bench
    harness need: construct a value, print it. Strings are escaped
    per RFC 8259; non-finite floats become [null] (JSON has no NaN or
    infinity literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val save : string -> t -> unit
(** [save path v] writes [v] followed by a newline to [path]. *)
