type dist = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list; (* bucket lower bound, sample count *)
  exemplars : (int * Metrics.exemplar) list; (* bucket lower bound *)
}

type t = {
  counters : (string * int) list;
  gauges : (string * int) list;
  dists : (string * dist) list;
}

let empty = { counters = []; gauges = []; dists = [] }
let is_empty t = t.counters = [] && t.gauges = [] && t.dists = []

let of_metrics m =
  let dist_of (d : Metrics.dist) =
    let buckets = ref [] in
    Array.iteri
      (fun i n ->
        if n > 0 then buckets := (fst (Metrics.bucket_bounds i), n) :: !buckets)
      d.Metrics.d_buckets;
    {
      count = d.Metrics.d_count;
      sum = d.Metrics.d_sum;
      min = (if d.Metrics.d_count = 0 then 0 else d.Metrics.d_min);
      max = (if d.Metrics.d_count = 0 then 0 else d.Metrics.d_max);
      buckets = List.rev !buckets;
      exemplars =
        List.map
          (fun (i, e) -> (fst (Metrics.bucket_bounds i), e))
          (Metrics.exemplars d);
    }
  in
  {
    counters = Metrics.counters m;
    gauges = Metrics.gauges m;
    dists = List.map (fun (k, d) -> (k, dist_of d)) (Metrics.dists m);
  }

let counter t key =
  match List.assoc_opt key t.counters with Some v -> v | None -> 0

let gauge t key = List.assoc_opt key t.gauges
let dist t key = List.assoc_opt key t.dists

let counter_sum t ~prefix =
  List.fold_left
    (fun acc (key, v) ->
      if String.starts_with ~prefix key then acc + v else acc)
    0 t.counters

let dist_sum t key = match dist t key with Some d -> d.sum | None -> 0

(* Lower bound of the bucket holding the q-th quantile sample, by
   cumulative count over the (sorted, non-empty) bucket list. *)
let quantile_bucket d q =
  if d.count = 0 then None
  else
    let rank =
      Stdlib.max 1 (int_of_float (Float.round (q *. float_of_int d.count)))
    in
    let rec find seen = function
      | [] -> None
      | (lo, n) :: rest ->
        if seen + n >= rank then Some lo else find (seen + n) rest
    in
    find 0 d.buckets

(* The exemplar for the quantile bucket; when that exact bucket never
   captured one, fall back to the nearest populated bucket below, then
   above — deterministic either way. *)
let quantile_exemplar d q =
  match quantile_bucket d q with
  | None -> None
  | Some lo -> (
    match List.assoc_opt lo d.exemplars with
    | Some e -> Some e
    | None ->
      let below, above =
        List.partition (fun (b, _) -> b < lo) d.exemplars
      in
      (match (List.rev below, above) with
      | (_, e) :: _, _ -> Some e
      | [], (_, e) :: _ -> Some e
      | [], [] -> None))

let dist_to_json d =
  Json.Obj
    ([
      ("count", Json.Int d.count);
      ("sum", Json.Int d.sum);
      ("min", Json.Int d.min);
      ("max", Json.Int d.max);
      ( "mean",
        if d.count = 0 then Json.Null
        else Json.Float (float_of_int d.sum /. float_of_int d.count) );
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, n) -> Json.List [ Json.Int lo; Json.Int n ])
             d.buckets) );
    ]
    @
    if d.exemplars = [] then []
    else
      [
        ( "exemplars",
          Json.List
            (List.map
               (fun (lo, e) ->
                 Json.Obj
                   [
                     ("bucket", Json.Int lo);
                     ("value", Json.Int e.Metrics.ex_value);
                     ("id", Json.Int e.Metrics.ex_id);
                     ("trace", Json.Str e.Metrics.ex_trace);
                   ])
               d.exemplars) );
      ])

let to_json t =
  let fields f xs = Json.Obj (List.map (fun (k, v) -> (k, f v)) xs) in
  Json.Obj
    [
      ("counters", fields (fun v -> Json.Int v) t.counters);
      ("gauges", fields (fun v -> Json.Int v) t.gauges);
      ("dists", fields dist_to_json t.dists);
    ]

let pp fmt t =
  let line k v = Format.fprintf fmt "  %-48s %d@." k v in
  if is_empty t then Format.fprintf fmt "  (no telemetry)@."
  else begin
    List.iter (fun (k, v) -> line k v) t.counters;
    List.iter (fun (k, v) -> line (k ^ " (gauge)") v) t.gauges;
    List.iter
      (fun (k, d) ->
        Format.fprintf fmt "  %-48s n=%d sum=%d min=%d max=%d@." k d.count
          d.sum d.min d.max)
      t.dists
  end
