type open_span = {
  os_ts : int;
  os_name : string;
  os_cat : string;
  os_args : (string * Event.arg) list;
}

type t = {
  events : Event.t Queue.t;
  capacity : int option;
  mutable dropped : int;
  metrics : Metrics.t;
  stacks : (string, open_span list ref) Hashtbl.t;
  mutable context : string option;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Telemetry.Sink.create: capacity <= 0"
  | _ -> ());
  {
    events = Queue.create ();
    capacity;
    dropped = 0;
    metrics = Metrics.create ();
    stacks = Hashtbl.create 16;
    context = None;
  }

(* The per-domain sink slot. Everything below the [enabled] check is
   the cold path: when no sink is installed every hook in the stack
   costs one DLS load and one branch. Domain-local (rather than
   process-global) storage is what lets parallel campaigns run one
   simulation per worker domain without interleaving metrics: a sink
   installed inside a [Par.Pool] task is invisible to every other
   domain, and fresh worker domains start with no sink. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set current (Some t)
let uninstall () = Domain.DLS.set current None
let active () = Domain.DLS.get current
let enabled () = Domain.DLS.get current <> None

let events t = List.of_seq (Queue.to_seq t.events)
let event_count t = Queue.length t.events
let dropped t = t.dropped
let metrics t = t.metrics
let report t =
  (* A full ring drops silently at capacity; surface the count so
     reports (and the CLI) can warn that the trace is incomplete. *)
  let r = Report.of_metrics t.metrics in
  if t.dropped = 0 then r
  else
    let counters =
      ("telemetry.dropped_events", t.dropped) :: r.Report.counters
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    { r with Report.counters }

let context t = t.context
let set_context t label = t.context <- label

let default_track t =
  match t.context with Some label -> label | None -> "main"

let push t (ev : Event.t) =
  (match t.capacity with
  | Some cap when Queue.length t.events >= cap ->
    ignore (Queue.pop t.events);
    t.dropped <- t.dropped + 1
  | _ -> ());
  Queue.push ev t.events

let stack t track =
  match Hashtbl.find_opt t.stacks track with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace t.stacks track s;
    s

let open_span t ~ts_ps ~track ~name ~cat ~args =
  let s = stack t track in
  s := { os_ts = ts_ps; os_name = name; os_cat = cat; os_args = args } :: !s

let close_span t ~ts_ps ~track ~args =
  let s = stack t track in
  match !s with
  | [] ->
    invalid_arg
      (Printf.sprintf "Telemetry.Sink: end of unopened span on track %S" track)
  | frame :: rest ->
    s := rest;
    if ts_ps < frame.os_ts then
      invalid_arg
        (Printf.sprintf "Telemetry.Sink: span %S ends before it starts"
           frame.os_name);
    push t
      {
        Event.ts_ps = frame.os_ts;
        track;
        name = frame.os_name;
        cat = frame.os_cat;
        phase = Event.Complete (ts_ps - frame.os_ts);
        args = frame.os_args @ args;
      }

let open_depth t track =
  match Hashtbl.find_opt t.stacks track with
  | Some s -> List.length !s
  | None -> 0

let with_sink ?capacity f =
  let t = create ?capacity () in
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some t);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current saved)
    (fun () ->
      let result = f () in
      (t, result))

(* Convenience hooks for instrumented code: one branch when disabled. *)

let emit ev =
  match Domain.DLS.get current with None -> () | Some t -> push t ev

let incr ?by key =
  match Domain.DLS.get current with
  | None -> ()
  | Some t -> Metrics.incr t.metrics ?by key

let observe ?exemplar key v =
  match Domain.DLS.get current with
  | None -> ()
  | Some t -> Metrics.observe t.metrics ?exemplar key v

let set_gauge key v =
  match Domain.DLS.get current with
  | None -> ()
  | Some t -> Metrics.set t.metrics key v

let set_current_context label =
  match Domain.DLS.get current with
  | None -> ()
  | Some t -> t.context <- label
