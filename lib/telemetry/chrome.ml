(* Chrome trace-event ("Trace Event Format") export, the JSON flavour
   both chrome://tracing and Perfetto open directly. One pid for the
   whole platform, one tid per track, named via "M" metadata events. *)

let us_of_ps ps = float_of_int ps /. 1_000_000.

let process_name = "osss-simulation"

let tids_of events =
  (* tid per track, numbered in order of first appearance in the
     ts-sorted event list so the Perfetto track order follows the
     timeline, not the alphabet. *)
  let table = Hashtbl.create 16 in
  let next = ref 1 in
  List.iter
    (fun (ev : Event.t) ->
      if not (Hashtbl.mem table ev.Event.track) then begin
        Hashtbl.replace table ev.Event.track !next;
        incr next
      end)
    events;
  table

let args_json args =
  Json.Obj (List.map (fun (k, a) -> (k, Event.arg_to_json a)) args)

let event_json tids (ev : Event.t) =
  let tid = Hashtbl.find tids ev.Event.track in
  let common =
    [
      ("name", Json.Str ev.Event.name);
      ("cat", Json.Str ev.Event.cat);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("ts", Json.Float (us_of_ps ev.Event.ts_ps));
    ]
  in
  let phase =
    match ev.Event.phase with
    | Event.Complete dur ->
      [ ("ph", Json.Str "X"); ("dur", Json.Float (us_of_ps dur)) ]
    | Event.Instant -> [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
    | Event.Counter _ -> [ ("ph", Json.Str "C") ]
  in
  let event_args =
    (* A counter's sampled value rides in args, where the trace viewer
       expects the series of a "C" event. *)
    match ev.Event.phase with
    | Event.Counter v -> (("value", Event.Int v) :: ev.Event.args)
    | Event.Complete _ | Event.Instant -> ev.Event.args
  in
  let args =
    match event_args with
    | [] -> []
    | args -> [ ("args", args_json args) ]
  in
  Json.Obj (common @ phase @ args)

let metadata tids =
  let threads =
    Hashtbl.fold (fun track tid acc -> (tid, track) :: acc) tids []
    |> List.sort compare
    |> List.map (fun (tid, track) ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.Str track) ]);
             ])
  in
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.Str process_name) ]);
    ]
  :: threads

let to_json events =
  let sorted =
    List.stable_sort
      (fun (a : Event.t) (b : Event.t) -> compare a.Event.ts_ps b.Event.ts_ps)
      events
  in
  let tids = tids_of sorted in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (metadata tids @ List.map (event_json tids) sorted) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string events = Json.to_string (to_json events)
let save path events = Json.save path (to_json events)
