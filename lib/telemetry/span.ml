let resolve_track t track =
  match track with Some tr -> tr | None -> Sink.default_track t

let complete ~ts_ps ~dur_ps ?track ?(cat = "span") ?(args = []) name =
  match Sink.active () with
  | None -> ()
  | Some t ->
    if dur_ps < 0 then invalid_arg "Telemetry.Span.complete: dur_ps < 0";
    Sink.emit
      {
        Event.ts_ps;
        track = resolve_track t track;
        name;
        cat;
        phase = Event.Complete dur_ps;
        args;
      }

let instant ~ts_ps ?track ?(cat = "instant") ?(args = []) name =
  match Sink.active () with
  | None -> ()
  | Some t ->
    Sink.emit
      {
        Event.ts_ps;
        track = resolve_track t track;
        name;
        cat;
        phase = Event.Instant;
        args;
      }

let counter ~ts_ps ?track ?(cat = "counter") ?(args = []) name value =
  match Sink.active () with
  | None -> ()
  | Some t ->
    Sink.emit
      {
        Event.ts_ps;
        track = resolve_track t track;
        name;
        cat;
        phase = Event.Counter value;
        args;
      }

let begin_ ~ts_ps ?track ?(cat = "span") ?(args = []) name =
  match Sink.active () with
  | None -> ()
  | Some t ->
    Sink.open_span t ~ts_ps ~track:(resolve_track t track) ~name ~cat ~args

let end_ ~ts_ps ?track ?(args = []) () =
  match Sink.active () with
  | None -> ()
  | Some t -> Sink.close_span t ~ts_ps ~track:(resolve_track t track) ~args
