(** Structured trace events.

    One event is a point or an interval on a named {e track} of the
    simulated timeline. Tracks play the role of threads in the Chrome
    trace-event model: one per simulated process or per exclusive
    resource (processor, bus, shared object, memory), so an exported
    trace reads like the platform's architecture diagram. *)

type arg =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type phase =
  | Complete of int
      (** a span that covered [duration] picoseconds from [ts_ps] *)
  | Instant  (** a point event (CRC error, retry, ...) *)
  | Counter of int
      (** a sampled time-series value (queue depth, cache fill);
          rendered as a Chrome counter lane ([ph:"C"]) *)

type t = {
  ts_ps : int;  (** simulated time of the event start, picoseconds *)
  track : string;
  name : string;
  cat : string;  (** category: "stage", "busy", "arbitration", ... *)
  phase : phase;
  args : (string * arg) list;
}

val duration_ps : t -> int
(** Duration of a [Complete] event, 0 for [Instant]. *)

val is_span : t -> bool

val tracks : t list -> string list
(** Distinct track names, sorted. *)

val spans : ?track:string -> ?name:string -> ?cat:string -> t list -> t list
(** [Complete] events matching every given filter. *)

val union_ps : t list -> int
(** Length of the union of all [Complete] event intervals — overlap
    counted once, exactly like the models' interval meter. *)

val arg_to_json : arg -> Json.t
