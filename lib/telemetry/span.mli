(** Span constructors used at instrumentation sites.

    Every function is a no-op when no {!Sink} is installed. The track
    defaults to the sink's current context — the label of the running
    simulation process, mirrored by the kernel — so instrumented
    library code rarely names a track explicitly; resource "busy"
    spans are the exception and pass [?track] with the resource name.

    [begin_]/[end_] pair per track, innermost-first, and record one
    [Complete] event when the span closes; they therefore guarantee
    proper nesting on each track by construction. Mismatched [end_]
    raises [Invalid_argument]. *)

val complete :
  ts_ps:int ->
  dur_ps:int ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Event.arg) list ->
  string ->
  unit
(** One self-contained span, for sites that know the duration at
    emission time (e.g. a lock released after a known hold). *)

val instant :
  ts_ps:int ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Event.arg) list ->
  string ->
  unit

val counter :
  ts_ps:int ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Event.arg) list ->
  string ->
  int ->
  unit
(** One sample of a named time-series (queue depth, cache fill) —
    an [Event.Counter] on the track, exported as a Chrome counter
    lane. *)

val begin_ :
  ts_ps:int ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Event.arg) list ->
  string ->
  unit

val end_ :
  ts_ps:int -> ?track:string -> ?args:(string * Event.arg) list -> unit -> unit
(** Closes the innermost open span of the track; extra [args] are
    appended to the opening args. *)
