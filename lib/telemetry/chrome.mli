(** Chrome trace-event JSON export, loadable in Perfetto
    ([ui.perfetto.dev]) and chrome://tracing.

    The whole platform is one process (pid 1, named
    ["osss-simulation"]); each telemetry track becomes one thread,
    numbered in order of first appearance on the timeline and named
    with ["thread_name"] metadata events. Complete events become "X"
    entries with [ts]/[dur] in microseconds of simulated time,
    instants become "i" entries. *)

val to_json : Event.t list -> Json.t
val to_string : Event.t list -> string

val save : string -> Event.t list -> unit
(** Writes the JSON document followed by a newline. *)
