(** Per-run resource metrics: counters, gauges, and log2 histograms.

    Keys are dotted strings naming the resource and the quantity
    ("lock.opb.grants.microblaze0", "channel.opb.words", ...). The
    instrumented layers pick the keys; {!Report} snapshots the result
    at the end of a run. *)

type exemplar = { ex_value : int; ex_id : int; ex_trace : string }
(** One remembered sample: its value plus the request id and trace id
    it came from, so a histogram tail links back to a concrete
    request's spans. *)

type dist = {
  mutable d_count : int;
  mutable d_sum : int;
  mutable d_min : int;
  mutable d_max : int;
  d_buckets : int array;
  mutable d_exemplars : exemplar option array;
      (** per bucket, allocated on first exemplar; [[||]] before *)
}

type t

val create : unit -> t
val reset : t -> unit

val incr : t -> ?by:int -> string -> unit
(** Bumps a monotonic counter (created at 0 on first use). *)

val counter_ref : t -> string -> int ref
(** The live cell behind a counter (created at 0 if absent) — lets a
    hot path pay the key lookup once and [incr] the ref per event. *)

val set : t -> string -> int -> unit
(** Sets a gauge (last write wins). *)

val observe : t -> ?exemplar:int * string -> string -> int -> unit
(** Adds one sample to a histogram: count/sum/min/max plus a log2
    bucket (bucket [i] holds values in [[2^(i-1), 2^i)]). With
    [~exemplar:(id, trace)] the bucket remembers the largest sample
    seen so far (first occurrence wins ties, so replays agree). *)

val counters : t -> (string * int) list
(** All counters, sorted by key. *)

val gauges : t -> (string * int) list
val dists : t -> (string * dist) list

val counter : t -> string -> int
(** Current value of a counter, 0 if never incremented. *)

val exemplars : dist -> (int * exemplar) list
(** Buckets that hold an exemplar, as [(bucket_index, exemplar)],
    ascending by bucket. *)

val bucket_index : int -> int
val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the half-open value range of bucket [i]. *)
