(** Per-run resource metrics: counters, gauges, and log2 histograms.

    Keys are dotted strings naming the resource and the quantity
    ("lock.opb.grants.microblaze0", "channel.opb.words", ...). The
    instrumented layers pick the keys; {!Report} snapshots the result
    at the end of a run. *)

type dist = {
  mutable d_count : int;
  mutable d_sum : int;
  mutable d_min : int;
  mutable d_max : int;
  d_buckets : int array;
}

type t

val create : unit -> t
val reset : t -> unit

val incr : t -> ?by:int -> string -> unit
(** Bumps a monotonic counter (created at 0 on first use). *)

val set : t -> string -> int -> unit
(** Sets a gauge (last write wins). *)

val observe : t -> string -> int -> unit
(** Adds one sample to a histogram: count/sum/min/max plus a log2
    bucket (bucket [i] holds values in [[2^(i-1), 2^i)]). *)

val counters : t -> (string * int) list
(** All counters, sorted by key. *)

val gauges : t -> (string * int) list
val dists : t -> (string * dist) list

val counter : t -> string -> int
(** Current value of a counter, 0 if never incremented. *)

val bucket_index : int -> int
val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the half-open value range of bucket [i]. *)
