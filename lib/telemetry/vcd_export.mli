(** VCD export of a trace: one 8-bit wire per track holding the
    track's current span depth, so telemetry activity can be viewed
    in a waveform viewer alongside signal-level VCD dumps. Track
    names are sanitised to VCD-safe identifiers. *)

val render : Event.t list -> string
val save : string -> Event.t list -> unit
val sanitize : string -> string
