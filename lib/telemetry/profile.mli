(** Deterministic hierarchical profiler: folds the span stream into a
    cost tree.

    Every [Event.Complete] span lands in the tree of its track; nesting
    is recovered from the virtual-time intervals themselves (a span
    nests under the innermost span that fully contains it), and
    same-name siblings under one parent merge into a single node. All
    aggregates are integer picoseconds of {e simulated} time, so two
    runs with the same seed produce byte-identical trees regardless of
    [--jobs] or host load — per-domain work is attributed wherever its
    span was emitted (the coordinating domain), merged deterministically
    by track name. Wall-clock measurements never enter the tree.

    On every node [total_ps = self_ps + Σ children total_ps] holds by
    construction ({!invariant} re-checks it; the qcheck suite leans on
    this). *)

type node = {
  name : string;
  self_ps : int;  (** time in this node not covered by its children *)
  total_ps : int;
  count : int;  (** number of merged span instances (0 for roots) *)
  children : node list;  (** sorted by name *)
}

type t = { roots : node list  (** one per track, sorted by track name *) }

val of_events : Event.t list -> t
(** Builds the cost tree. Non-span events are ignored; partially
    overlapping siblings (malformed input) degrade to siblinghood, in
    which case a parent's [self_ps] may go negative — the invariant
    still holds exactly. *)

val add_synthetic : t -> track:string -> (string list * int * int) list -> t
(** [add_synthetic t ~track leaves] grafts a synthetic root built from
    [(path, self_ps, count)] leaves — for cost dimensions that exist as
    deterministic counters rather than spans (T1 code-block classes,
    pool phases). Replaces any existing root of that name. *)

val tracks : t -> string list
val total_ps : t -> int

val find : t -> string -> node option
(** Looks up a [";"]-separated path, root (track) name first:
    ["serve.exec;request;entropy"]. *)

val fold : ('a -> string -> node -> 'a) -> 'a -> t -> 'a
(** Pre-order over every node; the callback receives the full
    [";"]-separated path. *)

val top_self : ?n:int -> t -> (string * int) list
(** The [n] (default 3) largest positive self-times, as
    [(path, self_ps)], self-time descending then path ascending. *)

val invariant : t -> bool
(** [total = self + Σ children] on every node. *)

val collapsed : t -> string
(** Collapsed-stack (flamegraph) text: one ["a;b;c <self_ps>"] line per
    node with positive self-time, sorted, newline-terminated — ready
    for [flamegraph.pl] and stable under byte comparison. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
