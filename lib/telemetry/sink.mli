(** The telemetry sink: a domain-local collector for {!Event}s and
    {!Metrics}.

    Instrumented code throughout the stack calls the convenience hooks
    ({!emit}, {!incr}, {!observe}, {!set_gauge}, {!Span}'s
    constructors); each hook first checks whether a sink is installed,
    so a disabled sink costs exactly one load and branch per hook and
    simulations stay bit-identical with and without telemetry —
    instrumentation never consumes simulated time.

    The event buffer is unbounded by default; pass [?capacity] to keep
    the most recent [capacity] events as a ring, counting the rest in
    {!dropped}.

    The installed-sink slot lives in [Domain.DLS]: {!install} and
    {!with_sink} affect only the calling domain, and a fresh domain
    (e.g. a [Par.Pool] worker) starts with no sink. Parallel
    simulations therefore never race on — or interleave events into —
    each other's sinks; a worker that wants telemetry installs its own
    sink inside its task. *)

type t

val create : ?capacity:int -> unit -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val install : t -> unit
(** Makes [t] the calling domain's sink; replaces any previous one. *)

val uninstall : unit -> unit
val active : unit -> t option
val enabled : unit -> bool

val with_sink : ?capacity:int -> (unit -> 'a) -> t * 'a
(** Runs [f] with a fresh sink installed, restoring the previous
    global sink afterwards (also on exceptions). *)

val events : t -> Event.t list
(** Collected events, oldest first. Spans appear in order of their
    {e end} time (a span is recorded when it closes), instants in
    order of emission. *)

val event_count : t -> int

val dropped : t -> int
(** Events discarded because of [?capacity]. *)

val metrics : t -> Metrics.t

val report : t -> Report.t
(** Snapshot of the metrics; when the ring has discarded events the
    snapshot gains a [telemetry.dropped_events] gauge. *)

val context : t -> string option
(** The current default track, mirrored from the running simulation
    process by the kernel. *)

val set_context : t -> string option -> unit

val default_track : t -> string
(** [context t], or ["main"] when outside any labelled process. *)

val open_span :
  t ->
  ts_ps:int ->
  track:string ->
  name:string ->
  cat:string ->
  args:(string * Event.arg) list ->
  unit

val close_span :
  t -> ts_ps:int -> track:string -> args:(string * Event.arg) list -> unit
(** Pops the innermost open span of [track] and records one
    [Complete] event. Extra [args] are appended to the opening args.
    Raises [Invalid_argument] if the track has no open span or time
    runs backwards. *)

val open_depth : t -> string -> int
(** Number of currently open spans on a track. *)

(** {2 Global hooks for instrumented code}

    All are no-ops (one branch) when no sink is installed. *)

val emit : Event.t -> unit
val incr : ?by:int -> string -> unit
val observe : ?exemplar:int * string -> string -> int -> unit
val set_gauge : string -> int -> unit
val set_current_context : string option -> unit
