type exemplar = { ex_value : int; ex_id : int; ex_trace : string }

type dist = {
  mutable d_count : int;
  mutable d_sum : int;
  mutable d_min : int;
  mutable d_max : int;
  d_buckets : int array; (* log2 buckets: index = bit length of value *)
  mutable d_exemplars : exemplar option array; (* per bucket; lazy *)
}

let buckets = 63

let no_exemplars : exemplar option array = [||]

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  dists : (string, dist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    dists = Hashtbl.create 32;
  }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.dists

let incr t ?(by = 1) key =
  match Hashtbl.find_opt t.counters key with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters key (ref by)

(* The live cell behind a counter, for hot paths that bump the same
   key on every call (the kernel's per-process wakeup counter): one
   hashtable lookup to obtain the ref, plain [incr] afterwards. *)
let counter_ref t key =
  match Hashtbl.find_opt t.counters key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.counters key r;
    r

let set t key v =
  match Hashtbl.find_opt t.gauges key with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges key (ref v)

(* Bucket index: bit length of the (non-negative) value, so bucket i
   holds values in [2^(i-1), 2^i). 0 lands in bucket 0. *)
let bucket_index v =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  Stdlib.min (bits (Stdlib.max v 0) 0) (buckets - 1)

let observe t ?exemplar key v =
  let d =
    match Hashtbl.find_opt t.dists key with
    | Some d -> d
    | None ->
      let d =
        {
          d_count = 0;
          d_sum = 0;
          d_min = max_int;
          d_max = min_int;
          d_buckets = Array.make buckets 0;
          d_exemplars = no_exemplars;
        }
      in
      Hashtbl.replace t.dists key d;
      d
  in
  d.d_count <- d.d_count + 1;
  d.d_sum <- d.d_sum + v;
  if v < d.d_min then d.d_min <- v;
  if v > d.d_max then d.d_max <- v;
  let i = bucket_index v in
  d.d_buckets.(i) <- d.d_buckets.(i) + 1;
  match exemplar with
  | None -> ()
  | Some (ex_id, ex_trace) -> (
    if d.d_exemplars == no_exemplars then
      d.d_exemplars <- Array.make buckets None;
    (* Keep the bucket's largest sample; the first occurrence wins a
       tie so a replayed run picks the same exemplar. *)
    match d.d_exemplars.(i) with
    | Some e when e.ex_value >= v -> ()
    | Some _ | None -> d.d_exemplars.(i) <- Some { ex_value = v; ex_id; ex_trace })

let exemplars d =
  if d.d_exemplars == no_exemplars then []
  else
    Array.to_seq d.d_exemplars
    |> Seq.mapi (fun i e -> (i, e))
    |> Seq.filter_map (fun (i, e) ->
           match e with Some e -> Some (i, e) | None -> None)
    |> List.of_seq

let sorted_bindings table value =
  Hashtbl.fold (fun key v acc -> (key, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters (fun r -> !r)
let gauges t = sorted_bindings t.gauges (fun r -> !r)
let dists t = sorted_bindings t.dists (fun d -> d)

let counter t key =
  match Hashtbl.find_opt t.counters key with Some r -> !r | None -> 0

let bucket_bounds i = if i = 0 then (0, 1) else (1 lsl (i - 1), 1 lsl i)
