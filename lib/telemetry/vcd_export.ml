(* Render a collected event list as a VCD dump: one wire per track
   carrying that track's span depth over simulated time, so a trace
   can be eyeballed next to the RTL waveforms in the same viewer. *)

let depth_width = 8

(* VCD identifier codes: printable ASCII 33..126, multi-char beyond
   (same scheme as the kernel's signal-level VCD writer). *)
let id_of_index index =
  let base = 94 in
  let rec build i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else build ((i / base) - 1) acc
  in
  build index ""

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
      | _ -> '_')
    name

let binary_of_value ~width v =
  let bits = Bytes.make width '0' in
  for i = 0 to width - 1 do
    if (v lsr i) land 1 = 1 then Bytes.set bits (width - 1 - i) '1'
  done;
  Bytes.to_string bits

(* Per-track depth deltas: +1 at span start, -1 at span end. Instants
   don't change depth. *)
let deltas_of events =
  List.concat_map
    (fun (ev : Event.t) ->
      match ev.Event.phase with
      | Event.Instant | Event.Counter _ -> []
      | Event.Complete dur ->
        [
          (ev.Event.ts_ps, ev.Event.track, 1);
          (ev.Event.ts_ps + dur, ev.Event.track, -1);
        ])
    events
  (* Ends sort before starts at the same instant so back-to-back spans
     render as depth 1 -> 1, not 1 -> 2 -> 1. *)
  |> List.sort (fun (ta, _, da) (tb, _, db) ->
         if ta <> tb then compare ta tb else compare da db)

let render events =
  let tracks = Event.tracks events in
  let ids = Hashtbl.create 16 in
  List.iteri (fun i track -> Hashtbl.replace ids track (id_of_index i)) tracks;
  let buf = Buffer.create 1024 in
  let line fmt =
    Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "$date";
  line "  (simulation)";
  line "$end";
  line "$version";
  line "  osss-jpeg2000 telemetry span depth";
  line "$end";
  line "$timescale 1ps $end";
  line "$scope module telemetry $end";
  List.iter
    (fun track ->
      line "$var wire %d %s %s $end" depth_width (Hashtbl.find ids track)
        (sanitize track))
    tracks;
  line "$upscope $end";
  line "$enddefinitions $end";
  line "$dumpvars";
  List.iter
    (fun track ->
      line "b%s %s"
        (binary_of_value ~width:depth_width 0)
        (Hashtbl.find ids track))
    tracks;
  line "$end";
  let depths = Hashtbl.create 16 in
  let depth track =
    match Hashtbl.find_opt depths track with Some d -> d | None -> 0
  in
  let last_time = ref None in
  List.iter
    (fun (ts, track, delta) ->
      let d = Stdlib.max 0 (depth track + delta) in
      Hashtbl.replace depths track d;
      (match !last_time with
      | Some prev when prev = ts -> ()
      | Some _ | None ->
        line "#%d" ts;
        last_time := Some ts);
      line "b%s %s"
        (binary_of_value ~width:depth_width (Stdlib.min d 255))
        (Hashtbl.find ids track))
    (deltas_of events);
  Buffer.contents buf

let save path events =
  let oc = open_out path in
  output_string oc (render events);
  close_out oc
