type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* A sentinel entry for vacated and never-used slots, so the heap
   array never keeps popped entries (and their closure payloads)
   alive. The value field is never read below [size], and the dummy
   itself is immutable and shared, so the [Obj.magic] cannot escape. *)
let dummy : Obj.t entry = { key = min_int; seq = min_int; value = Obj.repr () }
let dummy_entry () : 'a entry = Obj.magic dummy

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0
let length q = q.size

(* [before a b] implements the heap order: key first, then insertion
   sequence, so equal keys come out in FIFO order. *)
let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let bigger = Array.make (Stdlib.max 8 (2 * capacity)) (dummy_entry ()) in
    Array.blit q.heap 0 bigger 0 q.size;
    q.heap <- bigger
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~key value =
  let entry = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if Array.length q.heap = 0 then q.heap <- Array.make 8 (dummy_entry ());
  grow q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let min_key q = if q.size = 0 then None else Some q.heap.(0).key

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    (* Clear the vacated slot: it would otherwise keep the moved (and
       eventually popped) entry live until a future push overwrites
       it. *)
    q.heap.(q.size) <- dummy_entry ();
    Some (top.key, top.value)
  end

let pop_le q ~key =
  if q.size = 0 || q.heap.(0).key > key then None
  else
    match pop q with
    | Some (_, v) -> Some v
    | None -> None
