type race = {
  race_signal : string;
  race_first : string;
  race_second : string;
  race_time : Sim_time.t;
  race_delta : int;
}

type race_policy = Race_ignore | Race_record | Race_raise

exception Delta_race of race

type t = {
  mutable now : Sim_time.t;
  calendar : (unit -> unit) Pqueue.t;
  current : (unit -> unit) Queue.t;
  next_delta : (unit -> unit) Queue.t;
  updates : (unit -> unit) Queue.t;
  mutable deltas : int;
  mutable advances : int;
  mutable live : int;
  unfinished : (int, string) Hashtbl.t;
  mutable next_pid : int;
  mutable stop_requested : bool;
  mutable started : bool;
  mutable current_label : string option;
  mutable race_policy : race_policy;
  mutable races : race list; (* reversed *)
}

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t
type _ Effect.t += Self : t Effect.t

let create () =
  {
    now = Sim_time.zero;
    calendar = Pqueue.create ();
    current = Queue.create ();
    next_delta = Queue.create ();
    updates = Queue.create ();
    deltas = 0;
    advances = 0;
    live = 0;
    unfinished = Hashtbl.create 16;
    next_pid = 0;
    stop_requested = false;
    started = false;
    current_label = None;
    race_policy = Race_record;
    races = [];
  }

let now t = t.now
let delta_count t = t.deltas
let time_advances t = t.advances
let live_processes t = t.live
let schedule_now t f = Queue.push f t.current
let schedule_delta t f = Queue.push f t.next_delta

let schedule_after t d f =
  if Sim_time.is_zero d then schedule_delta t f
  else Pqueue.push t.calendar ~key:(Sim_time.to_ps (Sim_time.add t.now d)) f

let at_update t f = Queue.push f t.updates
let stop t = t.stop_requested <- true
let current_label t = t.current_label
let set_race_policy t p = t.race_policy <- p
let race_policy t = t.race_policy
let races t = List.rev t.races
let clear_races t = t.races <- []

let report_race t ~signal ~first ~second =
  let race =
    {
      race_signal = signal;
      race_first = first;
      race_second = second;
      race_time = t.now;
      race_delta = t.deltas;
    }
  in
  match t.race_policy with
  | Race_ignore -> ()
  | Race_record -> t.races <- race :: t.races
  | Race_raise -> raise (Delta_race race)

let spawn t ?name body =
  t.live <- t.live + 1;
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let label = Option.value name ~default:(Printf.sprintf "process-%d" pid) in
  Hashtbl.replace t.unfinished pid label;
  (* Every slice of this process runs with its label as the kernel's
     current label, so primitive channels can attribute writes to a
     driver (the delta-race detector keys on this). The telemetry
     sink's context mirrors the label so spans emitted from library
     code land on the running process's track.

     This wrapper runs once per process wakeup — the hottest telemetry
     path in the kernel — so the label option and the wakeup counter
     key are interned here, and the epilogue is inlined rather than a
     [Fun.protect] closure: with a sink installed a slice costs two
     sink loads and a counter bump, with no per-slice allocation. *)
  let some_label = Some label in
  let wakeups_key = "process." ^ label ^ ".wakeups" in
  (* The wakeup counter's live cell, cached per (process, sink) so a
     slice bumps a ref instead of hashing the key; invalidated when a
     different sink is installed between slices. *)
  let cached_cell : (Telemetry.Sink.t * int ref) option ref = ref None in
  let with_label f () =
    let prev = t.current_label in
    t.current_label <- some_label;
    let sink = Telemetry.Sink.active () in
    (match sink with
    | None -> ()
    | Some s ->
      Telemetry.Sink.set_context s some_label;
      let cell =
        match !cached_cell with
        | Some (s', r) when s' == s -> r
        | Some _ | None ->
          let r =
            Telemetry.Metrics.counter_ref (Telemetry.Sink.metrics s)
              wakeups_key
          in
          cached_cell := Some (s, r);
          r
      in
      Stdlib.incr cell);
    match f () with
    | () -> (
      t.current_label <- prev;
      match sink with
      | None -> ()
      | Some s -> Telemetry.Sink.set_context s prev)
    | exception exn ->
      t.current_label <- prev;
      (match sink with
      | None -> ()
      | Some s -> Telemetry.Sink.set_context s prev);
      raise exn
  in
  let finished () =
    t.live <- t.live - 1;
    Hashtbl.remove t.unfinished pid
  in
  let handler =
    {
      Effect.Deep.retc = finished;
      exnc = (fun exn -> finished (); raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                register (with_label (fun () -> Effect.Deep.continue k ())))
          | Self ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                Effect.Deep.continue k t)
          | _ -> None);
    }
  in
  let start = with_label (fun () -> Effect.Deep.match_with body () handler) in
  schedule_now t start

(* One delta cycle: drain the evaluation queue (actions may append
   more), then commit updates. Returns [true] if the update phase or
   the evaluation phase scheduled work for another delta at the same
   time. *)
let run_delta t =
  while not (Queue.is_empty t.current) && not t.stop_requested do
    let action = Queue.pop t.current in
    action ()
  done;
  while not (Queue.is_empty t.updates) do
    let update = Queue.pop t.updates in
    update ()
  done;
  t.deltas <- t.deltas + 1;
  not (Queue.is_empty t.next_delta)

let run ?until t =
  t.started <- true;
  t.stop_requested <- false;
  let horizon =
    match until with None -> max_int | Some u -> Sim_time.to_ps u
  in
  let continue = ref true in
  while !continue && not t.stop_requested do
    let again = run_delta t in
    if t.stop_requested then continue := false
    else if again then Queue.transfer t.next_delta t.current
    else begin
      match Pqueue.min_key t.calendar with
      | None -> continue := false
      | Some key when key > horizon ->
        (match until with Some u -> t.now <- u | None -> ());
        continue := false
      | Some key ->
        t.now <- Sim_time.of_ps key;
        t.advances <- t.advances + 1;
        let rec drain () =
          match Pqueue.pop_le t.calendar ~key with
          | None -> ()
          | Some action ->
            Queue.push action t.current;
            drain ()
        in
        drain ()
    end
  done

let live_process_names t =
  Hashtbl.fold (fun _ name acc -> name :: acc) t.unfinished []
  |> List.sort String.compare

let self () = Effect.perform Self

let suspend register = Effect.perform (Suspend register)

let wait_for d =
  let t = self () in
  suspend (fun resume -> schedule_after t d resume)

let yield () =
  let t = self () in
  suspend (fun resume -> schedule_delta t resume)
