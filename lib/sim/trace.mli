(** Lightweight simulation tracing.

    A trace collects timestamped text records during a run; tests and
    examples use it to assert on event ordering without re-running the
    model. Disabled traces cost one branch per record.

    By default the trace grows without bound; pass [?capacity] to keep
    only the most recent [capacity] records as a ring buffer, counting
    evicted records in {!dropped}. *)

type t

val create : Kernel.t -> ?capacity:int -> ?enabled:bool -> unit -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> string -> unit
(** Appends a record stamped with the kernel's current time. *)

val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!record} with a format string. The message is only built
    when the trace is enabled. *)

val records : t -> (Sim_time.t * string) list
(** Retained records in the order they were recorded, oldest first.
    With a [?capacity] ring this is the most recent [capacity]
    records; earlier ones have been evicted (see {!dropped}). Records
    made at the same simulated time keep their emission order. *)

val dropped : t -> int
(** Number of records evicted by the [?capacity] ring, 0 for an
    unbounded trace. *)

val find : t -> string -> Sim_time.t option
(** Time of the first retained record with exactly the given text. *)

val pp : Format.formatter -> t -> unit
