type 'a t = {
  kernel : Kernel.t;
  name : string;
  equal : 'a -> 'a -> bool;
  mutable current : 'a;
  mutable pending : 'a option;
  mutable pending_writer : string; (* meaningful while [pending <> None] *)
  changed : Event.t;
}

let create kernel ?(name = "signal") ?(equal = ( = )) init =
  {
    kernel;
    name;
    equal;
    current = init;
    pending = None;
    pending_writer = "";
    changed = Event.create kernel ~name:(name ^ ".changed") ();
  }

let name t = t.name
let value t = t.current
let changed t = t.changed
let last_writer t = if t.pending = None && t.pending_writer = "" then None else Some t.pending_writer

let commit t =
  match t.pending with
  | None -> ()
  | Some v ->
    t.pending <- None;
    if not (t.equal t.current v) then begin
      t.current <- v;
      Event.notify t.changed
    end

let write t v =
  let writer =
    match Kernel.current_label t.kernel with
    | Some label -> label
    | None -> "<scheduler>"
  in
  (match t.pending with
  | None ->
    t.pending_writer <- writer;
    Kernel.at_update t.kernel (fun () -> commit t)
  | Some _ ->
    (* Re-writing within the same evaluation phase is fine for the
       process that owns the pending value (last write wins); a write
       from a different process is a conflicting driver. *)
    if not (String.equal t.pending_writer writer) then begin
      Kernel.report_race t.kernel ~signal:t.name ~first:t.pending_writer
        ~second:writer;
      t.pending_writer <- writer
    end);
  t.pending <- Some v

let wait_change t = Event.wait t.changed

let wait_value t pred =
  let rec loop () =
    if not (pred t.current) then begin
      Event.wait t.changed;
      loop ()
    end
  in
  loop ()
