type t = {
  kernel : Kernel.t;
  mutable enabled : bool;
  entries : (Sim_time.t * string) Queue.t; (* oldest first *)
  capacity : int option;
  mutable dropped : int;
}

let create kernel ?capacity ?(enabled = true) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity <= 0"
  | _ -> ());
  { kernel; enabled; entries = Queue.create (); capacity; dropped = 0 }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag
let dropped t = t.dropped

let push t entry =
  (match t.capacity with
  | Some cap when Queue.length t.entries >= cap ->
    ignore (Queue.pop t.entries);
    t.dropped <- t.dropped + 1
  | _ -> ());
  Queue.push entry t.entries

let record t msg = if t.enabled then push t (Kernel.now t.kernel, msg)

let recordf t fmt =
  Format.kasprintf
    (fun msg -> if t.enabled then push t (Kernel.now t.kernel, msg))
    fmt

let records t = List.of_seq (Queue.to_seq t.entries)

let find t msg =
  let rec scan = function
    | [] -> None
    | (time, m) :: rest -> if String.equal m msg then Some time else scan rest
  in
  scan (records t)

let pp fmt t =
  List.iter
    (fun (time, msg) ->
      Format.fprintf fmt "@[<h>%a: %s@]@." Sim_time.pp time msg)
    (records t)
