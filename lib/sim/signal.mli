(** Signals with SystemC [sc_signal] update semantics.

    Writes are buffered and committed in the update phase of the
    current delta cycle, so every reader within one evaluation phase
    sees a consistent value, and a write only becomes visible one
    delta later. A committed change notifies the signal's
    value-change event. *)

type 'a t

val create :
  Kernel.t -> ?name:string -> ?equal:('a -> 'a -> bool) -> 'a -> 'a t
(** [create k v] makes a signal with initial value [v]. [equal]
    (default structural equality) decides whether a committed write
    is a change. *)

val name : 'a t -> string

val value : 'a t -> 'a
(** Current (committed) value. *)

val write : 'a t -> 'a -> unit
(** Schedules the value for the next update phase. The last write in
    an evaluation phase wins. If a second process writes the same
    signal within one evaluation phase, the conflict is reported to
    the kernel's race policy ({!Kernel.report_race}) — multiple
    drivers make the committed value scheduling-dependent. *)

val last_writer : 'a t -> string option
(** Process that performed the most recent write, if any. *)

val changed : 'a t -> Event.t
(** Event notified when a committed write changes the value. *)

val wait_change : 'a t -> unit
(** Suspends the calling process until the value changes. *)

val wait_value : 'a t -> ('a -> bool) -> unit
(** Suspends the calling process until the predicate holds for the
    committed value (returns immediately if it already holds). *)
