(** Discrete-event simulation kernel.

    The kernel plays the role SystemC's scheduler plays for OSSS: it
    owns simulated time, a calendar of timed actions, and the
    delta-cycle machinery. Processes are ordinary OCaml functions run
    as fibers via effect handlers; they suspend by performing effects
    that the kernel's scheduler handles.

    Scheduling follows the SystemC evaluate/update/delta discipline:

    + {e evaluation phase}: all runnable processes/actions of the
      current delta cycle run to their next suspension point;
    + {e update phase}: pending primitive-channel updates (signals)
      commit and may trigger events;
    + if the update phase made anything runnable, a new delta cycle
      starts at the same simulated time; otherwise time advances to
      the earliest calendar entry.

    All queues are FIFO and the calendar is stable, so simulations are
    fully deterministic. *)

type t

(** {1 Delta-cycle write-write races}

    Primitive channels (see {!Signal}) report two different processes
    writing the same channel within one evaluation phase — multiple
    drivers in SystemC terms, where the committed value would depend
    on process ordering. *)

type race = {
  race_signal : string;
  race_first : string;  (** process holding the pending write *)
  race_second : string;  (** process that wrote over it *)
  race_time : Sim_time.t;
  race_delta : int;
}

type race_policy =
  | Race_ignore
  | Race_record  (** keep the race in {!races} (the default) *)
  | Race_raise  (** raise {!Delta_race} at the second write *)

exception Delta_race of race

val create : unit -> t

val now : t -> Sim_time.t
(** Current simulated time. *)

val delta_count : t -> int
(** Total number of delta cycles executed so far. *)

val time_advances : t -> int
(** Number of times simulated time moved forward during {!run}. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t body] registers a new process. It starts in the current
    evaluation phase (or at time zero if the simulation has not
    started). Exceptions escaping [body] abort the simulation and are
    re-raised from {!run}. *)

val run : ?until:Sim_time.t -> t -> unit
(** Runs the simulation until no activity remains, [until] is
    reached, or {!stop} is called. May be called again to resume
    after [until]. *)

val stop : t -> unit
(** Requests the current {!run} to return at the end of the current
    delta cycle. *)

val live_processes : t -> int
(** Number of spawned processes that have not yet terminated. *)

val live_process_names : t -> string list
(** Names of the processes that have not terminated (sorted). After
    {!run} returns with no pending activity, these are the blocked
    processes — the first place to look when diagnosing a deadlock or
    a missing notification. *)

(** {1 Low-level scheduling}

    These are the primitives events, signals and channels are built
    from. Callbacks run inside the scheduler, not in a process
    context: they must not block. *)

val schedule_now : t -> (unit -> unit) -> unit
(** Appends an action to the current evaluation phase. *)

val schedule_delta : t -> (unit -> unit) -> unit
(** Schedules an action for the next delta cycle at the current time. *)

val schedule_after : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedules an action [d] after the current time. A zero delay is
    equivalent to {!schedule_delta}. *)

val at_update : t -> (unit -> unit) -> unit
(** Registers an action for the update phase of the current delta
    cycle. *)

val current_label : t -> string option
(** Name of the process whose slice is currently executing, [None]
    inside scheduler callbacks and outside {!run}. *)

val set_race_policy : t -> race_policy -> unit
val race_policy : t -> race_policy

val report_race : t -> signal:string -> first:string -> second:string -> unit
(** Applies the current policy to a conflicting-driver observation.
    Called by primitive channels; raises {!Delta_race} under
    [Race_raise]. *)

val races : t -> race list
(** Races recorded so far (oldest first) under [Race_record]. *)

val clear_races : t -> unit

(** {1 Process context}

    The following must be called from inside a process body spawned
    with {!spawn}; elsewhere they raise [Effect.Unhandled]. *)

val self : unit -> t
(** The kernel running the calling process. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] suspends the calling process. [register] is
    immediately given a [resume] thunk; scheduling [resume] (exactly
    once) resumes the process. *)

val wait_for : Sim_time.t -> unit
(** Suspends the calling process for the given duration. *)

val yield : unit -> unit
(** Suspends the calling process until the next delta cycle. *)
