(** The deterministic decode service: admission control, deadline-aware
    batching, and the tile cache, driven by a simulated clock.

    The service registers a corpus of codestreams and serves a seeded
    {!Request.spec} workload against them. All scheduling decisions —
    admission, overload handling, EDF batch formation, per-request
    service times — run on a {e virtual} clock whose advances are
    computed from deterministic work counts (code blocks, coded bytes,
    samples), never from wall time. The {!Par.Pool} only accelerates
    the real entropy-decode work (bit-identical by {!Par.Pool.map}'s
    contract), so a report, including every latency percentile, is
    byte-identical across repeated runs and across any [--jobs].

    A dispatch takes the [max_batch] earliest-deadline requests from
    the queue, expands them to (stream, tile, resolution) cache keys,
    and coalesces the entropy-decode jobs of every missing tile into
    one {!Par.Pool.map}; a tile needed by several requests of one
    batch is decoded once. In simulated time the batch then serves its
    requests back to back (single decode engine), each paying only for
    the tiles it was first to need — later requests pay the cache-hit
    cost, which is how repeated and overlapping traffic gets faster
    and how the degrade path (reduced-resolution keys) stays cheap.

    With [config.ingest] set, request bytes no longer arrive whole:
    each request's codestream is delivered as a seeded
    {!Faults.Ingest.schedule} of chunks replayed through the resumable
    {!Jpeg2000.Stream} parser ({!Ingest.analyse}), and the request
    only becomes dispatchable once every tile it resolves to has
    landed. A stream that stalls past the request's deadline is
    {e flushed}: the received contiguous prefix is decoded best-effort
    by {!Jpeg2000.Decoder.decode_robust} (missing tiles concealed),
    served as a full frame, and accounted in {!ingest_stats}. The
    delivery timeline is a pure function of (workload seed, request
    id, spec), so ingest reports stay byte-identical across reruns
    and across any [--jobs]. *)

type overload =
  | Reject  (** full queue: the arriving request is refused *)
  | Drop_oldest  (** full queue: the oldest queued request is shed *)
  | Degrade
      (** above the high-water mark (half capacity) arriving requests
          are rewritten to the next lower resolution level
          ({!Request.Reduced}, the [decode_reduced] path); a full
          queue still refuses *)

val overload_of_string : string -> (overload, string) result
val overload_to_string : overload -> string

type config = {
  queue_capacity : int;  (** bounded request queue (>= 1) *)
  overload : overload;
  cache_capacity : int;  (** decoded tiles kept; 0 disables the cache *)
  max_batch : int;  (** requests coalesced per dispatch (>= 1) *)
  ingest : Faults.Ingest.spec option;
      (** [Some spec]: bytes arrive as a seeded (possibly faulted)
          chunk schedule; requests wait for their tiles and are
          flushed best-effort at the deadline. [None]: streams are
          complete on arrival (the historical behaviour). *)
}

val default_config : config
(** 32-deep queue, [Reject], 128-tile cache, batches of 8, no
    ingest. *)

type t

val create : ?config:config -> string array -> t
(** Registers the codestream corpus (parsed and digested once).
    Raises [Invalid_argument] on an empty corpus, a malformed
    codestream, or an out-of-range config. *)

val stream_count : t -> int

type latency = {
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type ingest_stats = {
  ing_spec : string;  (** canonical {!Faults.Ingest.spec_to_string} *)
  ing_chunks_sent : int;  (** across every dispatched request *)
  ing_chunks_lost : int;
  ing_chunks_duped : int;
  ing_chunks_reordered : int;
  ing_stall_ms : float;  (** total head-of-line stall injected *)
  ing_bytes : int;  (** distinct payload bytes that arrived *)
  ing_flushed : int;  (** deadline flushes served best-effort *)
  ing_flush_failed : int;
      (** flushes whose prefix could not carry even the header; the
          request is dropped *)
  ing_flush_concealed_blocks : int;  (** damage across flushed frames *)
  ing_flush_concealed_tiles : int;
  ing_flush_psnr_db : float;
      (** worst {!Jpeg2000.Decoder.psnr_impact} across flushes;
          [infinity] when no flush produced a damaged frame *)
}

type report = {
  workload : string;  (** canonical spec, {!Request.spec_to_string} *)
  streams : int;
  policy : string;
  queue_capacity : int;
  cache_capacity : int;
  max_batch : int;
  total : int;  (** requests generated *)
  served : int;
  rejected : int;
  dropped : int;
  degraded : int;  (** served at a lower resolution than requested *)
  batches : int;
  coalesced : int;
      (** tile needs satisfied by another request of the same batch *)
  concealed_blocks : int;  (** damaged blocks concealed (0 when clean) *)
  makespan_ms : float;  (** last completion on the simulated clock *)
  throughput_rps : float;  (** served per simulated second *)
  latency : latency;  (** over served requests *)
  slo_misses : int;
      (** served past the deadline, plus every rejected and dropped
          request — a refused request misses its SLO by definition *)
  slo_miss_rate : float;  (** [slo_misses / total] *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_hit_rate : float;
  ingest : ingest_stats option;  (** present iff [config.ingest] was *)
  pixels_digest : string;
      (** 64-bit digest (hex) folded over every served image in
          completion order — two reports with equal digests delivered
          bit-identical pixels *)
}

val run :
  ?pool:Par.Pool.t ->
  ?on_complete:(Request.t -> Jpeg2000.Image.t -> unit) ->
  ?on_flush:(Request.t -> prefix:string -> Jpeg2000.Image.t -> unit) ->
  t ->
  Request.spec ->
  report
(** Serves one workload to completion. [on_complete] observes every
    fully-served request's decoded image (in completion order) — the
    tests use it to compare against the reference decoder. [on_flush]
    observes every deadline flush instead, with the contiguous byte
    prefix the best-effort frame was decoded from. When a
    {!Telemetry.Sink} is installed, the run emits queue/exec/ingest
    spans, queue-depth counter samples, and serve.* metrics on the
    simulated timeline; telemetry never changes the report. *)

val report_to_json : report -> Telemetry.Json.t
val pp_report : Format.formatter -> report -> unit

(** {1 Fleet hooks}

    The building blocks an external balancer needs to run many replica
    services against one corpus: per-stream accessors, request
    expansion, the virtual-time cost constants, and the workload
    generator. [Fleet] (in [lib/fleet]) composes these into a sharded
    cluster; everything here is deterministic, so a fleet built on it
    inherits the byte-identical-report property. *)

type stream
(** One registered codestream: bytes, digest, parsed header and tile
    segments, lazily decoded clean reference. *)

val config : t -> config
val streams : t -> stream array

val stream_digest : stream -> int64
(** FNV-1a-64 of the codestream bytes — the consistent-hash key. *)

val stream_header : stream -> Jpeg2000.Codestream.header
val stream_tile : stream -> int -> Jpeg2000.Codestream.tile_segment
val stream_tile_count : stream -> int

val stream_reference : stream -> Jpeg2000.Image.t
(** Clean full decode (forced on first use). *)

val needed_keys : stream -> Request.target -> (int * Cache.key) list
(** The (tile index, cache key) pairs a target expands to: all tiles
    at full resolution ([Full]), all tiles at the discard level
    ([Reduced]), or the intersecting tiles ([Region]). *)

val output_dims : stream -> Request.target -> int * int
val assemble : stream -> Request.target -> Jpeg2000.Tile.t list -> Jpeg2000.Image.t

val max_discard : stream -> int
(** Largest degrade level the stream's tile grid supports. *)

val degrade_target : stream -> Request.target -> Request.target option
(** The next lower resolution for an overloaded request, [None] when
    already at {!max_discard}. *)

val edf_request_order : Request.t -> Request.t -> int
(** The batch scheduler's order: deadline, then priority, then id. *)

val open_arrivals : t -> Request.spec -> Request.t array
(** Pre-draws the complete arrival sequence of an {e open-loop} spec
    with the same RNG discipline as {!run}'s generator, sorted by
    (arrival, id). Raises [Invalid_argument] on a closed-loop spec —
    closed-loop arrivals depend on completions, which belong to the
    service (or fleet) that serves them. *)

val latency_of : int list -> latency
(** Nearest-rank percentiles over latency samples in picoseconds. *)

(** {2 Virtual-time cost model}

    The constants every service time derives from, in picoseconds;
    see the calibration note in the implementation. *)

val ps_per_batch : int
val ps_per_block : int
val ps_per_coded_byte : int
val ps_per_sample : int
val ps_per_hit : int
val ps_per_out_sample : int
val ps_of_ms : float -> int
val ms_of_ps : int -> float

(** {2 Digest folding} *)

val fnv_basis : int64
val fnv_int : int64 -> int -> int64
val fnv_image : int64 -> Jpeg2000.Image.t -> int64
