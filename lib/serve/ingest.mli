(** Per-request streaming delivery: a faulted chunk-arrival schedule
    ({!Faults.Ingest.schedule}) replayed through the resumable
    {!Jpeg2000.Stream} parser.

    The analysis reassembles chunks in arrival order — duplicates
    dropped, out-of-order chunks parked until the contiguous prefix
    reaches them — and feeds each contiguous extension to the stream
    machine, recording the instant every tile segment lands. Because
    both the schedule and the parser are deterministic, the whole
    delivery is a pure function of (seed, spec, stream bytes): the
    scheduler can read tile readiness and stall outcomes off the
    precomputed timeline without simulating I/O events. *)

type t

val analyse : seed:int -> Faults.Ingest.spec -> start_ps:int -> string -> t
(** Cut the stream into its faulted arrival schedule and replay it.
    [start_ps] is the first chunk's nominal arrival instant. *)

val delivery : t -> Faults.Ingest.delivery
(** The underlying schedule and its loss/dup/reorder/stall counters. *)

val tile_landed_ps : t -> int -> int
(** Instant tile [i] (stream order) was fully parsed, or [max_int]
    if the faulted delivery never completes it. *)

val complete_ps : t -> int
(** Instant the whole codestream had landed, or [max_int]. *)

val prefix_at : t -> int -> string
(** The contiguous byte prefix received by instant [t] — what a
    deadline-driven flush hands to {!Jpeg2000.Decoder.decode_robust}. *)

val bytes_received : t -> int
(** Total distinct payload bytes that ever arrive (duplicates and
    lost chunks excluded). *)
