type key = { digest : int64; length : int; tile : int; discard : int }

type t = (key, Jpeg2000.Tile.t) Lru.t

(* FNV-1a, 64-bit. *)
let digest s =
  let offset_basis = 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let create ~capacity = Lru.create ~capacity ()
let find = Lru.find
let add = Lru.add
let stats = Lru.stats
let length = Lru.length
let capacity = Lru.capacity
