type target =
  | Full
  | Region of { rx : int; ry : int; rw : int; rh : int }
  | Reduced of { discard : int }

type t = {
  id : int;
  trace : int64;
  stream : int;
  target : target;
  priority : int;
  arrival_ps : int;
  deadline_ps : int;
}

let trace_id ~seed id =
  Faults.Rng.hash64 (Int64.of_int seed) (Int64.of_int id)
let trace_to_string trace = Printf.sprintf "%016Lx" trace

let pp_target ppf = function
  | Full -> Format.fprintf ppf "full"
  | Region { rx; ry; rw; rh } ->
    Format.fprintf ppf "region %dx%d+%d+%d" rw rh rx ry
  | Reduced { discard } -> Format.fprintf ppf "reduced/%d" discard

type shape =
  | Open_loop of { rate_rps : float }
  | Closed_loop of { clients : int; think_ms : float }

type spec = {
  shape : shape;
  n : int;
  seed : int;
  deadline_ms : float;
  region_share : float;
  reduced_share : float;
}

(* -- spec parsing ---------------------------------------------------- *)

let parse_spec s =
  let shape_name, body =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let ( let* ) = Result.bind in
  let* pairs = Spec.parse_pairs body in
  let int_field key default = Spec.int_field pairs key default Spec.any in
  let float_field key default = Spec.float_field pairs key default Spec.any in
  let known shape_keys =
    let all = [ "n"; "seed"; "deadline"; "region"; "reduced" ] @ shape_keys in
    Spec.check_known all pairs
  in
  let* shape =
    match shape_name with
    | "open" ->
      let* () = known [ "rate" ] in
      let* rate_rps = float_field "rate" 400.0 in
      if rate_rps <= 0.0 then Error "rate must be > 0"
      else Ok (Open_loop { rate_rps })
    | "closed" ->
      let* () = known [ "clients"; "think" ] in
      let* clients = int_field "clients" 4 in
      let* think_ms = float_field "think" 2.0 in
      if clients < 1 then Error "clients must be >= 1"
      else if think_ms < 0.0 then Error "think must be >= 0"
      else Ok (Closed_loop { clients; think_ms })
    | other ->
      Error (Printf.sprintf "unknown workload shape %S (use open or closed)" other)
  in
  let* n = int_field "n" 64 in
  let* seed = int_field "seed" 11 in
  let* deadline_ms = float_field "deadline" 25.0 in
  let* region_share = float_field "region" 0.25 in
  let* reduced_share = float_field "reduced" 0.25 in
  if n < 1 then Error "n must be >= 1"
  else if deadline_ms <= 0.0 then Error "deadline must be > 0"
  else if
    region_share < 0.0 || reduced_share < 0.0
    || region_share +. reduced_share > 1.0
  then Error "region and reduced shares must be >= 0 and sum to <= 1"
  else
    Ok { shape; n; seed; deadline_ms; region_share; reduced_share }

let spec_to_string spec =
  let mix =
    Printf.sprintf "seed=%d,deadline=%g,region=%g,reduced=%g" spec.seed
      spec.deadline_ms spec.region_share spec.reduced_share
  in
  match spec.shape with
  | Open_loop { rate_rps } ->
    Printf.sprintf "open:n=%d,rate=%g,%s" spec.n rate_rps mix
  | Closed_loop { clients; think_ms } ->
    Printf.sprintf "closed:n=%d,clients=%d,think=%g,%s" spec.n clients think_ms
      mix

(* -- seeded draws ---------------------------------------------------- *)

let exp_draw rng ~mean =
  if mean <= 0.0 then 0.0
  else
    let u = Faults.Rng.float rng in
    -.mean *. Float.log (1.0 -. u)

let draw_target rng ~width ~height ~levels spec =
  let r = Faults.Rng.float rng in
  if r < spec.region_share then begin
    let side lim =
      let max_side = Stdlib.max 16 (lim / 2) in
      Stdlib.min lim (16 + Faults.Rng.int rng (Stdlib.max 1 (max_side - 15)))
    in
    let rw = side width and rh = side height in
    let rx = Faults.Rng.int rng (width - rw + 1) in
    let ry = Faults.Rng.int rng (height - rh + 1) in
    Region { rx; ry; rw; rh }
  end
  else if r < spec.region_share +. spec.reduced_share && levels > 0 then
    Reduced { discard = 1 + Faults.Rng.int rng levels }
  else Full

let draw_priority rng = Faults.Rng.int rng 4
