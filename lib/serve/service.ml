type overload = Reject | Drop_oldest | Degrade

let overload_of_string = function
  | "reject" -> Ok Reject
  | "drop-oldest" -> Ok Drop_oldest
  | "degrade" -> Ok Degrade
  | other ->
    Error
      (Printf.sprintf
         "unknown overload policy %S (use reject, drop-oldest or degrade)" other)

let overload_to_string = function
  | Reject -> "reject"
  | Drop_oldest -> "drop-oldest"
  | Degrade -> "degrade"

type config = {
  queue_capacity : int;
  overload : overload;
  cache_capacity : int;
  max_batch : int;
  ingest : Faults.Ingest.spec option;
      (** [Some spec]: request bytes arrive as a seeded, possibly
          faulted chunk schedule; a request only becomes runnable
          once the tiles it needs have landed, and one that stalls
          past its deadline is flushed best-effort. [None]: streams
          are complete on arrival (the historical behaviour). *)
}

let default_config =
  {
    queue_capacity = 32;
    overload = Reject;
    cache_capacity = 128;
    max_batch = 8;
    ingest = None;
  }

type stream = {
  s_digest : int64;
  s_length : int;
  s_data : string;
  s_header : Jpeg2000.Codestream.header;
  s_tiles : Jpeg2000.Codestream.tile_segment array;
  s_reference : Jpeg2000.Image.t Lazy.t;
      (* clean full decode; the psnr_impact baseline for flushes *)
}

type t = { config : config; streams : stream array }

let create ?(config = default_config) corpus =
  if Array.length corpus = 0 then invalid_arg "Serve.Service.create: no streams";
  if config.queue_capacity < 1 then
    invalid_arg "Serve.Service.create: queue_capacity < 1";
  if config.max_batch < 1 then invalid_arg "Serve.Service.create: max_batch < 1";
  if config.cache_capacity < 0 then
    invalid_arg "Serve.Service.create: cache_capacity < 0";
  let streams =
    Array.mapi
      (fun i data ->
        match Jpeg2000.Codestream.parse_result data with
        | Error e ->
          invalid_arg
            (Printf.sprintf "Serve.Service.create: stream %d: %s" i
               (Jpeg2000.Codestream.error_message e))
        | Ok stream ->
          {
            s_digest = Cache.digest data;
            s_length = String.length data;
            s_data = data;
            s_header = stream.Jpeg2000.Codestream.header;
            s_tiles = Array.of_list stream.Jpeg2000.Codestream.tiles;
            s_reference = lazy (Jpeg2000.Decoder.decode data);
          })
      corpus
  in
  { config; streams }

let stream_count t = Array.length t.streams

(* -- the virtual-time cost model -------------------------------------
   Calibrated against the repository's own microbenchmarks (bench
   t1_block_32x32, dwt53_128x128): an entropy-decoded code block costs
   on the order of a microsecond, reconstruction tens of nanoseconds
   per sample. The absolute values matter less than their being fixed:
   every service-time in the report derives from these constants and
   deterministic work counts only. *)

let ps_per_batch = 2_000_000 (* dispatch overhead per batch: 2 us *)
let ps_per_block = 1_500_000 (* per entropy-decoded code block: 1.5 us *)
let ps_per_coded_byte = 45_000 (* per entropy-coded byte: 45 ns *)
let ps_per_sample = 18_000 (* IQ+IDWT+ICT+shift per sample: 18 ns *)
let ps_per_hit = 400_000 (* per cache-served tile: 0.4 us *)
let ps_per_out_sample = 2_000 (* assembly/crop per output sample: 2 ns *)

let ps_of_ms f = int_of_float ((f *. 1e9) +. 0.5)
let ms_of_ps ps = float_of_int ps /. 1e9

(* -- latency / pixel accounting -------------------------------------- *)

type latency = {
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let zero_latency =
  { mean_ms = 0.0; p50_ms = 0.0; p95_ms = 0.0; p99_ms = 0.0; max_ms = 0.0 }

(* Nearest-rank percentile over the exact latency population — no
   interpolation, so the value is one of the observed latencies and
   the report stays bit-stable. *)
let latency_of samples_ps =
  match samples_ps with
  | [] -> zero_latency
  | _ ->
    let arr = Array.of_list samples_ps in
    Array.sort Int.compare arr;
    let n = Array.length arr in
    let rank q =
      let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
      arr.(Stdlib.max 0 (Stdlib.min (n - 1) i))
    in
    let sum = Array.fold_left ( + ) 0 arr in
    {
      mean_ms = ms_of_ps sum /. float_of_int n;
      p50_ms = ms_of_ps (rank 0.50);
      p95_ms = ms_of_ps (rank 0.95);
      p99_ms = ms_of_ps (rank 0.99);
      max_ms = ms_of_ps arr.(n - 1);
    }

let fnv_prime = 0x100000001b3L

let fnv_int h v =
  let h = Int64.mul (Int64.logxor h (Int64.of_int v)) fnv_prime in
  h

let fnv_image h (image : Jpeg2000.Image.t) =
  let h = ref h in
  Array.iter
    (fun (p : Jpeg2000.Image.plane) ->
      h := fnv_int (fnv_int !h p.Jpeg2000.Image.width) p.Jpeg2000.Image.height;
      Array.iter (fun v -> h := fnv_int !h v) p.Jpeg2000.Image.data)
    image.Jpeg2000.Image.planes;
  !h

(* -- report ----------------------------------------------------------- *)

type ingest_stats = {
  ing_spec : string;
  ing_chunks_sent : int;
  ing_chunks_lost : int;
  ing_chunks_duped : int;
  ing_chunks_reordered : int;
  ing_stall_ms : float;
  ing_bytes : int;
  ing_flushed : int;
  ing_flush_failed : int;
  ing_flush_concealed_blocks : int;
  ing_flush_concealed_tiles : int;
  ing_flush_psnr_db : float;
      (* worst psnr_impact across flushes; infinity when no flush
         produced a damaged image *)
}

type report = {
  workload : string;
  streams : int;
  policy : string;
  queue_capacity : int;
  cache_capacity : int;
  max_batch : int;
  total : int;
  served : int;
  rejected : int;
  dropped : int;
  degraded : int;
  batches : int;
  coalesced : int;
  concealed_blocks : int;
  makespan_ms : float;
  throughput_rps : float;
  latency : latency;
  slo_misses : int;
  slo_miss_rate : float;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_hit_rate : float;
  ingest : ingest_stats option;
  pixels_digest : string;
}

(* -- request expansion ------------------------------------------------ *)

(* The (tile, resolution) cache keys a request resolves to. A region
   expands to the full-resolution tiles its window intersects; the
   crop itself is not cached (it is orders of magnitude cheaper than
   the entropy decode the cache skips). *)
let needed_keys stream req_target =
  let key tile discard =
    {
      Cache.digest = stream.s_digest;
      length = stream.s_length;
      tile;
      discard;
    }
  in
  match req_target with
  | Request.Full ->
    Array.to_list (Array.mapi (fun i _ -> (i, key i 0)) stream.s_tiles)
  | Request.Reduced { discard } ->
    Array.to_list (Array.mapi (fun i _ -> (i, key i discard)) stream.s_tiles)
  | Request.Region { rx; ry; rw; rh } ->
    let intersects (seg : Jpeg2000.Codestream.tile_segment) =
      seg.Jpeg2000.Codestream.tile_x0 < rx + rw
      && seg.Jpeg2000.Codestream.tile_x0 + seg.Jpeg2000.Codestream.tile_w > rx
      && seg.Jpeg2000.Codestream.tile_y0 < ry + rh
      && seg.Jpeg2000.Codestream.tile_y0 + seg.Jpeg2000.Codestream.tile_h > ry
    in
    List.filter_map
      (fun (i, seg) -> if intersects seg then Some (i, key i 0) else None)
      (Array.to_list (Array.mapi (fun i seg -> (i, seg)) stream.s_tiles))

let output_dims stream = function
  | Request.Full ->
    ( stream.s_header.Jpeg2000.Codestream.width,
      stream.s_header.Jpeg2000.Codestream.height )
  | Request.Region { rw; rh; _ } -> (rw, rh)
  | Request.Reduced { discard } ->
    ( Jpeg2000.Decoder.reduced_size stream.s_header.Jpeg2000.Codestream.width
        discard,
      Jpeg2000.Decoder.reduced_size stream.s_header.Jpeg2000.Codestream.height
        discard )

let assemble stream target tiles =
  let header = stream.s_header in
  let components = header.Jpeg2000.Codestream.components in
  let bit_depth = header.Jpeg2000.Codestream.bit_depth in
  match target with
  | Request.Full ->
    Jpeg2000.Tile.assemble ~width:header.Jpeg2000.Codestream.width
      ~height:header.Jpeg2000.Codestream.height ~components ~bit_depth tiles
  | Request.Reduced { discard } ->
    Jpeg2000.Tile.assemble
      ~width:
        (Jpeg2000.Decoder.reduced_size header.Jpeg2000.Codestream.width discard)
      ~height:
        (Jpeg2000.Decoder.reduced_size header.Jpeg2000.Codestream.height discard)
      ~components ~bit_depth tiles
  | Request.Region { rx; ry; rw; rh } ->
    let region =
      Jpeg2000.Image.create ~width:rw ~height:rh ~components ~bit_depth ()
    in
    List.iter
      (fun (tile : Jpeg2000.Tile.t) ->
        Array.iteri
          (fun c (sub : Jpeg2000.Image.plane) ->
            let plane = region.Jpeg2000.Image.planes.(c) in
            for ty = 0 to sub.Jpeg2000.Image.height - 1 do
              for tx = 0 to sub.Jpeg2000.Image.width - 1 do
                let gx = tile.Jpeg2000.Tile.x0 + tx
                and gy = tile.Jpeg2000.Tile.y0 + ty in
                if gx >= rx && gx < rx + rw && gy >= ry && gy < ry + rh then
                  Jpeg2000.Image.plane_set plane ~x:(gx - rx) ~y:(gy - ry)
                    (Jpeg2000.Image.plane_get sub ~x:tx ~y:ty)
              done
            done)
          tile.Jpeg2000.Tile.planes)
      tiles;
    region

(* Largest degrade level the stream supports: the tile grid must stay
   aligned, and a decode must keep at least one detail level
   ([discard = levels] would leave no band the reduced view keeps). *)
let max_discard stream =
  let header = stream.s_header in
  let aligned d =
    header.Jpeg2000.Codestream.tile_w mod (1 lsl d) = 0
    && header.Jpeg2000.Codestream.tile_h mod (1 lsl d) = 0
  in
  let rec search d =
    if d < 1 then 0
    else if aligned d then d
    else search (d - 1)
  in
  search (header.Jpeg2000.Codestream.levels - 1)

let degrade_target stream target =
  let cap = max_discard stream in
  match target with
  | Request.Full | Request.Region _ ->
    if cap >= 1 then Some (Request.Reduced { discard = 1 }) else None
  | Request.Reduced { discard } ->
    if discard < cap then Some (Request.Reduced { discard = discard + 1 })
    else None

(* -- workload generation ---------------------------------------------- *)

(* Draw order per request is fixed (stream, target, priority) so a
   spec replays identically no matter how the service interleaves
   generation and completion. *)
let draw_request rng ~id ~nstreams ~streams ~arrival_ps ~deadline_ps spec =
  let stream = if nstreams = 1 then 0 else Faults.Rng.int rng nstreams in
  let s = streams.(stream) in
  let target =
    Request.draw_target rng
      ~width:s.s_header.Jpeg2000.Codestream.width
      ~height:s.s_header.Jpeg2000.Codestream.height
      ~levels:(max_discard s) spec
  in
  let priority = Request.draw_priority rng in
  let trace = Request.trace_id ~seed:spec.Request.seed id in
  { Request.id; trace; stream; target; priority; arrival_ps; deadline_ps }

(* -- fleet hooks ------------------------------------------------------
   Accessors and helpers the fleet layer builds its replicated
   services and external load balancer from; everything here is a pure
   view of existing state or a re-export of the deterministic
   machinery above. *)

let config (t : t) = t.config
let streams (t : t) = t.streams
let stream_digest s = s.s_digest
let stream_header s = s.s_header
let stream_tile s i = s.s_tiles.(i)
let stream_tile_count s = Array.length s.s_tiles
let stream_reference s = Lazy.force s.s_reference
let fnv_basis = 0xcbf29ce484222325L

let edf_request_order (a : Request.t) (b : Request.t) =
  let c = Int.compare a.Request.deadline_ps b.Request.deadline_ps in
  if c <> 0 then c
  else
    let c = Int.compare a.Request.priority b.Request.priority in
    if c <> 0 then c else Int.compare a.Request.id b.Request.id

(* The full arrival sequence of an open-loop spec, pre-drawn with
   exactly the RNG discipline of [run]'s generator so a fleet workload
   replays the same requests a single service would see. *)
let open_arrivals (t : t) spec =
  match spec.Request.shape with
  | Request.Closed_loop _ ->
    invalid_arg "Serve.Service.open_arrivals: closed-loop spec"
  | Request.Open_loop { rate_rps } ->
    let nstreams = Array.length t.streams in
    let deadline_rel_ps = ps_of_ms spec.Request.deadline_ms in
    let rng = Faults.Rng.create spec.Request.seed in
    let mean_ms = 1000.0 /. rate_rps in
    let arrival = ref 0 in
    let out = ref [] in
    for id = 0 to spec.Request.n - 1 do
      arrival := !arrival + ps_of_ms (Request.exp_draw rng ~mean:mean_ms);
      out :=
        draw_request rng ~id ~nstreams ~streams:t.streams ~arrival_ps:!arrival
          ~deadline_ps:(!arrival + deadline_rel_ps) spec
        :: !out
    done;
    Array.of_list (List.rev !out)

(* -- the scheduler ----------------------------------------------------- *)

type queued = {
  q_req : Request.t;
  q_degraded : bool;
  q_ready_ps : int;
      (* instant every tile the request needs has landed on the
         ingest path (= arrival when ingest is off); [max_int] when
         the faulted delivery never completes them *)
}

let edf_compare a b = edf_request_order a.q_req b.q_req

let run ?(pool = Par.Pool.sequential) ?on_complete ?on_flush t spec =
  let config = t.config in
  let nstreams = Array.length t.streams in
  let cache =
    if config.cache_capacity > 0 then
      Some (Cache.create ~capacity:config.cache_capacity)
    else None
  in
  let deadline_rel_ps = ps_of_ms spec.Request.deadline_ms in
  (* Per-request faulted deliveries. The ingest seed is a pure hash of
     (workload seed, request id), so the workload RNG draws are
     untouched by ingest settings and the whole timeline is fixed the
     moment the request is drawn — no I/O events to simulate. *)
  let deliveries : (int, Ingest.t) Hashtbl.t = Hashtbl.create 64 in
  let delivery_for (r : Request.t) =
    match Hashtbl.find_opt deliveries r.Request.id with
    | Some d -> d
    | None ->
      let ing = Option.get config.ingest in
      let stream = t.streams.(r.Request.stream) in
      let seed =
        Int64.to_int
          (Int64.logand
             (Faults.Rng.hash64
                (Int64.of_int spec.Request.seed)
                (Int64.of_int r.Request.id))
             Int64.max_int)
      in
      let d =
        Ingest.analyse ~seed ing ~start_ps:r.Request.arrival_ps stream.s_data
      in
      Hashtbl.replace deliveries r.Request.id d;
      d
  in
  (* Instant every tile the request resolves to has landed. *)
  let ready_ps (r : Request.t) =
    match config.ingest with
    | None -> r.Request.arrival_ps
    | Some _ ->
      let d = delivery_for r in
      let stream = t.streams.(r.Request.stream) in
      List.fold_left
        (fun acc (tile_index, _) ->
          Stdlib.max acc (Ingest.tile_landed_ps d tile_index))
        r.Request.arrival_ps
        (needed_keys stream r.Request.target)
  in
  (* generated-but-not-admitted requests, sorted by (arrival, id) *)
  let pending = ref [] in
  let insert_pending r =
    let rec ins = function
      | [] -> [ r ]
      | x :: rest ->
        if
          x.Request.arrival_ps < r.Request.arrival_ps
          || (x.Request.arrival_ps = r.Request.arrival_ps
              && x.Request.id < r.Request.id)
        then x :: ins rest
        else r :: x :: rest
    in
    pending := ins !pending
  in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Closed-loop state: one child RNG and a remaining-quota per
     client; requests map back to their client for think-time
     chaining. *)
  let client_of_request = Hashtbl.create 64 in
  let clients_rng, clients_left =
    match spec.Request.shape with
    | Request.Open_loop _ -> ([||], [||])
    | Request.Closed_loop { clients; _ } ->
      let master = Faults.Rng.create spec.Request.seed in
      let rngs = Array.init clients (fun _ -> Faults.Rng.split master) in
      let base = spec.Request.n / clients and extra = spec.Request.n mod clients in
      let left = Array.init clients (fun c -> base + if c < extra then 1 else 0) in
      (rngs, left)
  in
  let generate_client_request c ~not_before =
    if clients_left.(c) > 0 then begin
      clients_left.(c) <- clients_left.(c) - 1;
      let rng = clients_rng.(c) in
      let think_ms =
        match spec.Request.shape with
        | Request.Closed_loop { think_ms; _ } -> think_ms
        | Request.Open_loop _ -> assert false
      in
      let arrival_ps = not_before + ps_of_ms (Request.exp_draw rng ~mean:think_ms) in
      let id = fresh_id () in
      let r =
        draw_request rng ~id ~nstreams ~streams:t.streams ~arrival_ps
          ~deadline_ps:(arrival_ps + deadline_rel_ps) spec
      in
      Hashtbl.replace client_of_request id c;
      insert_pending r
    end
  in
  (match spec.Request.shape with
  | Request.Open_loop { rate_rps } ->
    let rng = Faults.Rng.create spec.Request.seed in
    let mean_ms = 1000.0 /. rate_rps in
    let arrival = ref 0 in
    for _ = 1 to spec.Request.n do
      arrival := !arrival + ps_of_ms (Request.exp_draw rng ~mean:mean_ms);
      let id = fresh_id () in
      insert_pending
        (draw_request rng ~id ~nstreams ~streams:t.streams ~arrival_ps:!arrival
           ~deadline_ps:(!arrival + deadline_rel_ps) spec)
    done
  | Request.Closed_loop { clients; _ } ->
    for c = 0 to clients - 1 do
      generate_client_request c ~not_before:0
    done);
  (* mutable run state *)
  let now = ref 0 in
  let queue = ref [] (* queued list, unsorted; EDF-sorted at dispatch *) in
  let total = ref 0
  and served = ref 0
  and rejected = ref 0
  and dropped = ref 0
  and degraded = ref 0
  and batches = ref 0
  and coalesced = ref 0
  and concealed = ref 0
  and slo_misses = ref 0 in
  let flushed = ref 0
  and flush_failed = ref 0
  and flush_concealed_blocks = ref 0
  and flush_concealed_tiles = ref 0 in
  let flush_psnr = ref Float.infinity in
  let ing_sent = ref 0
  and ing_lost = ref 0
  and ing_duped = ref 0
  and ing_reordered = ref 0
  and ing_stall_ps = ref 0
  and ing_bytes = ref 0 in
  let latencies = ref [] in
  let pixels = ref 0xcbf29ce484222325L in
  let makespan = ref 0 in
  let queue_track = "serve.queue" and exec_track = "serve.exec" in
  let sched_track = "serve.sched" and ingest_track = "serve.ingest" in
  (* Every span and instant about a request carries (id, trace); the
     trace id is a pure hash of (seed, id), so a histogram exemplar or
     a span arg resolves to the same request on any rerun. *)
  let trace_args (r : Request.t) =
    [
      ("id", Telemetry.Event.Int r.Request.id);
      ("trace", Telemetry.Event.Str (Request.trace_to_string r.Request.trace));
    ]
  in
  (* Instant a queued request leaves the queue: when its bytes are
     ready, or at its deadline — whichever comes first — so a stalled
     stream is flushed rather than waited out. *)
  let dispatch_ps q =
    match config.ingest with
    | None -> q.q_req.Request.arrival_ps
    | Some _ -> Stdlib.min q.q_ready_ps q.q_req.Request.deadline_ps
  in
  (* Fold a request's delivery counters into the report exactly once,
     at dispatch, and close its ingest span. *)
  let note_ingest q ~end_ps =
    match config.ingest with
    | None -> ()
    | Some _ ->
      let r = q.q_req in
      let arr = delivery_for r in
      let d = Ingest.delivery arr in
      ing_sent := !ing_sent + d.Faults.Ingest.sent;
      ing_lost := !ing_lost + d.Faults.Ingest.lost;
      ing_duped := !ing_duped + d.Faults.Ingest.duped;
      ing_reordered := !ing_reordered + d.Faults.Ingest.reordered;
      ing_stall_ps := !ing_stall_ps + d.Faults.Ingest.stall_ps;
      ing_bytes := !ing_bytes + Ingest.bytes_received arr;
      Telemetry.Sink.incr ~by:d.Faults.Ingest.sent "serve.ingest.chunks";
      Telemetry.Sink.incr ~by:d.Faults.Ingest.lost "serve.ingest.lost";
      Telemetry.Sink.incr ~by:(Ingest.bytes_received arr) "serve.ingest.bytes";
      Telemetry.Span.complete ~ts_ps:r.Request.arrival_ps
        ~dur_ps:(Stdlib.max 0 (end_ps - r.Request.arrival_ps))
        ~track:ingest_track ~cat:"ingest"
        ~args:
          (trace_args r
          @ [
              ("chunks", Telemetry.Event.Int d.Faults.Ingest.sent);
              ("lost", Telemetry.Event.Int d.Faults.Ingest.lost);
            ])
        "ingest"
  in
  let emit_depth ts =
    Telemetry.Span.counter ~ts_ps:ts ~track:queue_track "queue_depth"
      (List.length !queue)
  in
  let admit r =
    incr total;
    Telemetry.Sink.incr "serve.arrivals";
    let push q_req q_degraded =
      queue := { q_req; q_degraded; q_ready_ps = ready_ps q_req } :: !queue;
      emit_depth !now
    in
    let depth = List.length !queue in
    let stream = t.streams.(r.Request.stream) in
    let r, was_degraded =
      if config.overload = Degrade && depth >= Stdlib.max 1 (config.queue_capacity / 2)
      then
        match degrade_target stream r.Request.target with
        | Some target -> ({ r with Request.target }, true)
        | None -> (r, false)
      else (r, false)
    in
    if was_degraded then begin
      incr degraded;
      Telemetry.Sink.incr "serve.degraded";
      Telemetry.Span.instant ~ts_ps:!now ~track:sched_track ~cat:"overload"
        ~args:(trace_args r) "degrade"
    end;
    if depth < config.queue_capacity then push r was_degraded
    else
      match config.overload with
      | Drop_oldest -> (
        let oldest =
          List.fold_left
            (fun acc q ->
              match acc with
              | None -> Some q
              | Some best ->
                if
                  q.q_req.Request.arrival_ps < best.q_req.Request.arrival_ps
                  || (q.q_req.Request.arrival_ps = best.q_req.Request.arrival_ps
                      && q.q_req.Request.id < best.q_req.Request.id)
                then Some q
                else acc)
            None !queue
        in
        match oldest with
        | Some victim ->
          queue := List.filter (fun q -> q != victim) !queue;
          incr dropped;
          Telemetry.Sink.incr "serve.dropped";
          Telemetry.Span.instant ~ts_ps:!now ~track:sched_track ~cat:"overload"
            ~args:(trace_args victim.q_req) "drop-oldest";
          push r was_degraded
        | None -> assert false)
      | Reject | Degrade ->
        incr rejected;
        Telemetry.Sink.incr "serve.rejected";
        Telemetry.Span.instant ~ts_ps:!now ~track:sched_track ~cat:"overload"
          ~args:(trace_args r) "reject"
  in
  let admit_due () =
    let rec loop () =
      match !pending with
      | r :: rest when r.Request.arrival_ps <= !now ->
        pending := rest;
        admit r;
        loop ()
      | _ -> ()
    in
    loop ()
  in
  (* one dispatched batch *)
  let run_batch batch =
    incr batches;
    Telemetry.Sink.incr "serve.batches";
    Telemetry.Sink.observe "serve.batch_requests" (List.length batch);
    let batch_start = !now in
    (* Plan in EDF order: resolve every request's tile needs against
       the cache and the tiles already staged by earlier requests of
       this batch. *)
    let staged_tbl = Hashtbl.create 32 in
    let staged_rev = ref [] (* (key, staged), newest first *) in
    let staged_count = ref 0 in
    let plans =
      List.map
        (fun q ->
          let r = q.q_req in
          let stream = t.streams.(r.Request.stream) in
          if config.ingest <> None && q.q_ready_ps > batch_start then
            (* deadline fired before the bytes finished landing:
               serve best-effort from the received prefix *)
            (q, `Flush)
          else
          let needs =
            List.map
              (fun (tile_index, key) ->
                match
                  match cache with Some c -> Cache.find c key | None -> None
                with
                | Some tile -> (key, `Hit tile)
                | None -> (
                  match Hashtbl.find_opt staged_tbl key with
                  | Some si ->
                    incr coalesced;
                    Telemetry.Sink.incr "serve.coalesced";
                    (key, `Shared si)
                  | None ->
                    let st =
                      Jpeg2000.Decoder.stage_tile
                        ~discard:key.Cache.discard stream.s_header
                        stream.s_tiles.(tile_index)
                    in
                    (* T1 attribution per code-block class, priced by
                       the same constants as the request's entropy
                       stage — a deterministic counter family the
                       profiler grafts in as a synthetic track. *)
                    List.iter
                      (fun (cls, blocks, bytes) ->
                        Telemetry.Sink.incr ~by:blocks
                          ("t1.class." ^ cls ^ ".blocks");
                        Telemetry.Sink.incr
                          ~by:
                            ((ps_per_block * blocks)
                            + (ps_per_coded_byte * bytes))
                          ("t1.class." ^ cls ^ ".ps"))
                      (Jpeg2000.Decoder.staged_block_classes st);
                    let si = !staged_count in
                    Hashtbl.replace staged_tbl key si;
                    staged_rev := (key, st) :: !staged_rev;
                    incr staged_count;
                    (key, `Fresh si)))
              (needed_keys stream r.Request.target)
          in
          (q, `Needs needs))
        batch
    in
    let staged = Array.of_list (List.rev !staged_rev) in
    (* Coalesce: one flat job array over every missing tile of every
       request, one pool map. *)
    let job_index =
      Array.concat
        (Array.to_list
           (Array.mapi
              (fun si (_, st) ->
                Array.init (Jpeg2000.Decoder.staged_jobs st) (fun ji -> (si, ji)))
              staged))
    in
    Telemetry.Sink.observe "serve.batch_jobs" (Array.length job_index);
    (* In-place staged protocol: each job decodes straight into its
       tile's flat coefficient planes (disjoint rectangles — race-free
       on any pool schedule); only the ok/concealed bit comes back
       through the map. *)
    let oks =
      Par.Pool.map pool job_index (fun (si, ji) ->
          Jpeg2000.Decoder.staged_run (snd staged.(si)) ji)
    in
    (* Finish staged tiles in staging order and publish them to the
       cache; slice the flat ok array back per tile. *)
    let tiles = Array.make (Array.length staged) None in
    let offset = ref 0 in
    Array.iteri
      (fun si (key, st) ->
        let n = Jpeg2000.Decoder.staged_jobs st in
        let slice = Array.sub oks !offset n in
        offset := !offset + n;
        let tile, tile_concealed =
          Jpeg2000.Decoder.finish_staged_ok st slice
        in
        concealed := !concealed + tile_concealed;
        tiles.(si) <- Some tile;
        match cache with Some c -> Cache.add c key tile | None -> ())
      staged;
    let tile_of = function
      | `Hit tile -> tile
      | `Shared si | `Fresh si -> Option.get tiles.(si)
    in
    (* Serve the batch back to back on the simulated clock: each
       request pays for the tiles it was first to need, cache-hit
       cost for the rest, and delivery per output sample. *)
    let cursor = ref (batch_start + ps_per_batch) in
    List.iter
      (fun (q, plan) ->
        let r = q.q_req in
        let stream = t.streams.(r.Request.stream) in
        (* completion accounting shared by both serve paths. [stages]
           is the request's deterministic cost split — the child spans
           tile the "request" span exactly (Σ stage = service_ps), so
           the profiler's cost tree attributes every picosecond of
           service to a named stage with zero self-time left on the
           parent beyond rounding. *)
        let finish ~start ~service_ps ~stages ~target_label ~image =
          let completion = !cursor in
          let latency_ps = completion - r.Request.arrival_ps in
          incr served;
          latencies := latency_ps :: !latencies;
          makespan := Stdlib.max !makespan completion;
          if completion > r.Request.deadline_ps then begin
            incr slo_misses;
            Telemetry.Sink.incr "serve.slo_misses";
            Telemetry.Span.instant ~ts_ps:completion ~track:exec_track
              ~cat:"slo" ~args:(trace_args r) "deadline-miss"
          end;
          Telemetry.Sink.observe
            ~exemplar:
              (r.Request.id, Request.trace_to_string r.Request.trace)
            "serve.latency_us" (latency_ps / 1_000_000);
          Telemetry.Span.complete ~ts_ps:r.Request.arrival_ps
            ~dur_ps:(start - r.Request.arrival_ps) ~track:queue_track
            ~cat:"queue" ~args:(trace_args r) "queued";
          Telemetry.Span.complete ~ts_ps:start ~dur_ps:service_ps
            ~track:exec_track ~cat:"serve"
            ~args:
              (trace_args r
              @ [
                  ("stream", Telemetry.Event.Int r.Request.stream);
                  ("target", Telemetry.Event.Str target_label);
                  ("degraded", Telemetry.Event.Bool q.q_degraded);
                ])
            "request";
          ignore
            (List.fold_left
               (fun ts (stage, dur_ps) ->
                 if dur_ps > 0 then
                   Telemetry.Span.complete ~ts_ps:ts ~dur_ps ~track:exec_track
                     ~cat:"stage" ~args:(trace_args r) stage;
                 ts + dur_ps)
               start stages);
          pixels := fnv_int !pixels r.Request.id;
          pixels := fnv_image !pixels image;
          completion
        in
        (* closed loop: the client thinks, then issues its next
           request *)
        let chain ~not_before =
          match Hashtbl.find_opt client_of_request r.Request.id with
          | Some c -> generate_client_request c ~not_before
          | None -> ()
        in
        match plan with
        | `Flush -> (
          let arr = delivery_for r in
          let prefix = Ingest.prefix_at arr batch_start in
          note_ingest q ~end_ps:batch_start;
          Telemetry.Span.instant ~ts_ps:batch_start ~track:sched_track
            ~cat:"ingest"
            ~args:
              (trace_args r
              @ [ ("bytes", Telemetry.Event.Int (String.length prefix)) ])
            "flush";
          match Jpeg2000.Decoder.decode_robust ~pool prefix with
          | Ok (image, rep) ->
            incr flushed;
            Telemetry.Sink.incr "serve.ingest.flushed";
            flush_concealed_blocks :=
              !flush_concealed_blocks + rep.Jpeg2000.Decoder.concealed_blocks;
            flush_concealed_tiles :=
              !flush_concealed_tiles + rep.Jpeg2000.Decoder.concealed_tiles;
            let psnr =
              Jpeg2000.Decoder.psnr_impact
                ~reference:(Lazy.force stream.s_reference)
                (image, rep)
            in
            if psnr < !flush_psnr then flush_psnr := psnr;
            (* a flush always renders the full frame: robust decode of
               the prefix, then whole-image assembly *)
            let out_samples =
              stream.s_header.Jpeg2000.Codestream.width
              * stream.s_header.Jpeg2000.Codestream.height
              * stream.s_header.Jpeg2000.Codestream.components
            in
            let entropy_ps = ps_per_coded_byte * String.length prefix in
            let reconstruct_ps = ps_per_sample * out_samples in
            let assemble_ps = ps_per_out_sample * out_samples in
            let service_ps = entropy_ps + reconstruct_ps + assemble_ps in
            let start = !cursor in
            cursor := !cursor + service_ps;
            let completion =
              finish ~start ~service_ps
                ~stages:
                  [
                    ("entropy", entropy_ps);
                    ("reconstruct", reconstruct_ps);
                    ("assemble", assemble_ps);
                  ]
                ~target_label:"flush" ~image
            in
            (match on_flush with Some f -> f r ~prefix image | None -> ());
            chain ~not_before:completion
          | Error _ ->
            (* prefix too short even for the header: nothing to serve *)
            incr flush_failed;
            incr dropped;
            Telemetry.Sink.incr "serve.dropped";
            Telemetry.Span.instant ~ts_ps:batch_start ~track:sched_track
              ~cat:"ingest" ~args:(trace_args r) "flush-failed";
            chain ~not_before:batch_start)
        | `Needs needs ->
          note_ingest q ~end_ps:q.q_ready_ps;
          (* Same cost model as before, split by stage: cache lookups,
             entropy (T1) decode of freshly staged tiles, subband
             reconstruction, output assembly. *)
          let cache_ps = ref 0 and entropy_ps = ref 0 in
          let reconstruct_ps = ref 0 in
          List.iter
            (fun (_, src) ->
              match src with
              | `Hit _ | `Shared _ -> cache_ps := !cache_ps + ps_per_hit
              | `Fresh si ->
                let st = snd staged.(si) in
                entropy_ps :=
                  !entropy_ps
                  + (ps_per_block * Jpeg2000.Decoder.staged_jobs st)
                  + (ps_per_coded_byte * Jpeg2000.Decoder.staged_coded_bytes st);
                reconstruct_ps :=
                  !reconstruct_ps
                  + (ps_per_sample * Jpeg2000.Decoder.staged_samples st))
            needs;
          let ow, oh = output_dims stream r.Request.target in
          let out_samples =
            ow * oh * stream.s_header.Jpeg2000.Codestream.components
          in
          let assemble_ps = ps_per_out_sample * out_samples in
          let service_ps =
            !cache_ps + !entropy_ps + !reconstruct_ps + assemble_ps
          in
          let start = !cursor in
          cursor := !cursor + service_ps;
          let image =
            assemble stream r.Request.target
              (List.map (fun (_, src) -> tile_of src) needs)
          in
          let completion =
            finish ~start ~service_ps
              ~stages:
                [
                  ("cache", !cache_ps);
                  ("entropy", !entropy_ps);
                  ("reconstruct", !reconstruct_ps);
                  ("assemble", assemble_ps);
                ]
              ~target_label:
                (Format.asprintf "%a" Request.pp_target r.Request.target)
              ~image
          in
          (match on_complete with Some f -> f r image | None -> ());
          chain ~not_before:completion)
      plans;
    Telemetry.Span.complete ~ts_ps:batch_start ~dur_ps:(!cursor - batch_start)
      ~track:sched_track ~cat:"batch"
      ~args:
        [
          ("requests", Telemetry.Event.Int (List.length batch));
          ("jobs", Telemetry.Event.Int (Array.length job_index));
        ]
      "batch";
    now := !cursor
  in
  (* main loop. A queued request is dispatchable once [dispatch_ps]
     has passed — immediately when ingest is off (its bytes arrived
     whole), else when its tiles land or its deadline fires. When
     nothing is dispatchable the clock jumps to the next arrival or
     the next dispatch instant; [dispatch_ps] is bounded by the
     deadline, so a stalled stream can never wedge the loop. *)
  let rec loop () =
    let eligible, waiting =
      List.partition (fun q -> dispatch_ps q <= !now) !queue
    in
    if eligible = [] then begin
      let next_arrival =
        match !pending with
        | [] -> max_int
        | r :: _ -> r.Request.arrival_ps
      in
      let next_dispatch =
        List.fold_left
          (fun acc q -> Stdlib.min acc (dispatch_ps q))
          max_int waiting
      in
      let next = Stdlib.min next_arrival next_dispatch in
      if next < max_int then begin
        now := Stdlib.max !now next;
        admit_due ();
        loop ()
      end
    end
    else begin
      let sorted = List.sort edf_compare eligible in
      let rec take k = function
        | [] -> ([], [])
        | x :: rest when k > 0 ->
          let batch, leftover = take (k - 1) rest in
          (x :: batch, leftover)
        | rest -> ([], rest)
      in
      let batch, leftover = take config.max_batch sorted in
      queue := leftover @ waiting;
      emit_depth !now;
      run_batch batch;
      admit_due ();
      loop ()
    end
  in
  admit_due ();
  loop ();
  (* snapshot *)
  let cache_stats =
    match cache with
    | Some c -> Cache.stats c
    | None -> { Lru.hits = 0; misses = 0; insertions = 0; evictions = 0 }
  in
  Telemetry.Sink.incr ~by:cache_stats.Lru.hits "serve.cache.hits";
  Telemetry.Sink.incr ~by:cache_stats.Lru.misses "serve.cache.misses";
  Telemetry.Sink.incr ~by:cache_stats.Lru.evictions "serve.cache.evictions";
  let latency = latency_of !latencies in
  let makespan_ms = ms_of_ps !makespan in
  let slo_misses_total = !slo_misses + !rejected + !dropped in
  {
    workload = Request.spec_to_string spec;
    streams = nstreams;
    policy = overload_to_string config.overload;
    queue_capacity = config.queue_capacity;
    cache_capacity = config.cache_capacity;
    max_batch = config.max_batch;
    total = !total;
    served = !served;
    rejected = !rejected;
    dropped = !dropped;
    degraded = !degraded;
    batches = !batches;
    coalesced = !coalesced;
    concealed_blocks = !concealed;
    makespan_ms;
    throughput_rps =
      (if makespan_ms > 0.0 then float_of_int !served /. (makespan_ms /. 1000.0)
       else 0.0);
    latency;
    slo_misses = slo_misses_total;
    slo_miss_rate =
      (if !total = 0 then 0.0
       else float_of_int slo_misses_total /. float_of_int !total);
    cache_hits = cache_stats.Lru.hits;
    cache_misses = cache_stats.Lru.misses;
    cache_evictions = cache_stats.Lru.evictions;
    cache_hit_rate = Lru.hit_rate cache_stats;
    ingest =
      Option.map
        (fun ing ->
          {
            ing_spec = Faults.Ingest.spec_to_string ing;
            ing_chunks_sent = !ing_sent;
            ing_chunks_lost = !ing_lost;
            ing_chunks_duped = !ing_duped;
            ing_chunks_reordered = !ing_reordered;
            ing_stall_ms = ms_of_ps !ing_stall_ps;
            ing_bytes = !ing_bytes;
            ing_flushed = !flushed;
            ing_flush_failed = !flush_failed;
            ing_flush_concealed_blocks = !flush_concealed_blocks;
            ing_flush_concealed_tiles = !flush_concealed_tiles;
            ing_flush_psnr_db = !flush_psnr;
          })
        config.ingest;
    pixels_digest = Printf.sprintf "%016Lx" !pixels;
  }

(* -- rendering --------------------------------------------------------- *)

let report_to_json r =
  let open Telemetry.Json in
  Obj
    [
      ("workload", Str r.workload);
      ("streams", Int r.streams);
      ("policy", Str r.policy);
      ("queue_capacity", Int r.queue_capacity);
      ("cache_capacity", Int r.cache_capacity);
      ("max_batch", Int r.max_batch);
      ("total", Int r.total);
      ("served", Int r.served);
      ("rejected", Int r.rejected);
      ("dropped", Int r.dropped);
      ("degraded", Int r.degraded);
      ("batches", Int r.batches);
      ("coalesced", Int r.coalesced);
      ("concealed_blocks", Int r.concealed_blocks);
      ("makespan_ms", Float r.makespan_ms);
      ("throughput_rps", Float r.throughput_rps);
      ( "latency_ms",
        Obj
          [
            ("mean", Float r.latency.mean_ms);
            ("p50", Float r.latency.p50_ms);
            ("p95", Float r.latency.p95_ms);
            ("p99", Float r.latency.p99_ms);
            ("max", Float r.latency.max_ms);
          ] );
      ("slo_misses", Int r.slo_misses);
      ("slo_miss_rate", Float r.slo_miss_rate);
      ( "cache",
        Obj
          [
            ("hits", Int r.cache_hits);
            ("misses", Int r.cache_misses);
            ("evictions", Int r.cache_evictions);
            ("hit_rate", Float r.cache_hit_rate);
          ] );
      ( "ingest",
        match r.ingest with
        | None -> Null
        | Some i ->
          Obj
            [
              ("spec", Str i.ing_spec);
              ("chunks_sent", Int i.ing_chunks_sent);
              ("chunks_lost", Int i.ing_chunks_lost);
              ("chunks_duped", Int i.ing_chunks_duped);
              ("chunks_reordered", Int i.ing_chunks_reordered);
              ("stall_ms", Float i.ing_stall_ms);
              ("bytes_received", Int i.ing_bytes);
              ("flushed", Int i.ing_flushed);
              ("flush_failed", Int i.ing_flush_failed);
              ("flush_concealed_blocks", Int i.ing_flush_concealed_blocks);
              ("flush_concealed_tiles", Int i.ing_flush_concealed_tiles);
              ( "flush_psnr_db",
                if Float.is_finite i.ing_flush_psnr_db then
                  Float i.ing_flush_psnr_db
                else Str "inf" );
            ] );
      ("pixels_digest", Str r.pixels_digest);
    ]

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "workload:        %s@," r.workload;
  Format.fprintf ppf "streams:         %d@," r.streams;
  Format.fprintf ppf "policy:          %s (queue %d, cache %d, batch %d)@,"
    r.policy r.queue_capacity r.cache_capacity r.max_batch;
  Format.fprintf ppf "requests:        %d total, %d served, %d rejected, %d dropped, %d degraded@,"
    r.total r.served r.rejected r.dropped r.degraded;
  Format.fprintf ppf "batches:         %d (%d tile needs coalesced)@," r.batches
    r.coalesced;
  if r.concealed_blocks > 0 then
    Format.fprintf ppf "concealed:       %d blocks@," r.concealed_blocks;
  Format.fprintf ppf "makespan:        %.3f ms (%.1f req/s)@," r.makespan_ms
    r.throughput_rps;
  Format.fprintf ppf
    "latency [ms]:    mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f@,"
    r.latency.mean_ms r.latency.p50_ms r.latency.p95_ms r.latency.p99_ms
    r.latency.max_ms;
  Format.fprintf ppf "SLO:             %d misses (%.1f%% of %d)@," r.slo_misses
    (100.0 *. r.slo_miss_rate) r.total;
  Format.fprintf ppf "cache:           %d hits, %d misses, %d evictions (%.1f%% hit rate)@,"
    r.cache_hits r.cache_misses r.cache_evictions (100.0 *. r.cache_hit_rate);
  (match r.ingest with
  | None -> ()
  | Some i ->
    Format.fprintf ppf "ingest:          %s@," i.ing_spec;
    Format.fprintf ppf
      "                 %d chunks (%d lost, %d duped, %d reordered), %.3f ms stalled, %d bytes@,"
      i.ing_chunks_sent i.ing_chunks_lost i.ing_chunks_duped
      i.ing_chunks_reordered i.ing_stall_ms i.ing_bytes;
    Format.fprintf ppf
      "flushes:         %d served, %d failed (%d blocks, %d tiles concealed; worst %s dB)@,"
      i.ing_flushed i.ing_flush_failed i.ing_flush_concealed_blocks
      i.ing_flush_concealed_tiles
      (if Float.is_finite i.ing_flush_psnr_db then
         Printf.sprintf "%.2f" i.ing_flush_psnr_db
       else "inf"));
  Format.fprintf ppf "pixels digest:   %s" r.pixels_digest;
  Format.fprintf ppf "@]"
