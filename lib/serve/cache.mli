(** Content-addressed decoded-tile cache.

    Keys name the decoded artefact, not the request: the 64-bit
    digest and length of the codestream bytes, the tile index, and
    the resolution level ([discard = 0] is full resolution, matching
    the degraded serving path's [decode_reduced] levels otherwise). A
    region request contributes no key dimension of its own — it
    expands to the full-resolution tiles its window intersects, so
    overlapping and repeated windows share cached entropy decodes and
    only the (cheap) crop is recomputed.

    Collisions are harmless by construction: {!Lru} compares the full
    key on every hit. *)

type key = {
  digest : int64;  (** {!digest} of the codestream bytes *)
  length : int;  (** codestream length — a second cheap discriminator *)
  tile : int;  (** tile index within the codestream *)
  discard : int;  (** resolution levels discarded; 0 = full *)
}

type t

val digest : string -> int64
(** FNV-1a (64-bit) over the bytes — deterministic and
    dependency-free; collision honesty comes from the full-key
    compare, not from digest strength. *)

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val find : t -> key -> Jpeg2000.Tile.t option
val add : t -> key -> Jpeg2000.Tile.t -> unit
val stats : t -> Lru.stats
val length : t -> int
val capacity : t -> int
