type t = {
  data : string;
  dlv : Faults.Ingest.delivery;
  tile_landed : int array;  (* per stream-order tile; max_int = never *)
  complete : int;  (* instant all bytes landed; max_int = never *)
  prefix_steps : (int * int) array;
      (* (instant, contiguous prefix length), instants increasing *)
  received : int;  (* distinct payload bytes that ever arrive *)
}

let analyse ~seed spec ~start_ps data =
  let dlv = Faults.Ingest.schedule ~seed spec ~start_ps data in
  let len = String.length data in
  let chunk = spec.Faults.Ingest.chunk_bytes in
  let nchunks = (len + chunk - 1) / chunk in
  let got = Array.make (Stdlib.max 1 nchunks) false in
  let frontier = ref 0 (* first chunk index not yet received *) in
  let stream = Jpeg2000.Stream.create () in
  let ntiles = ref (-1) in
  let tile_landed = ref [||] in
  let ready = ref 0 in
  let complete = ref max_int in
  let steps = ref [ (min_int, 0) ] in
  let received = ref 0 in
  List.iter
    (fun (c : Faults.Ingest.chunk) ->
      let i = c.Faults.Ingest.c_offset / chunk in
      if not got.(i) then begin
        got.(i) <- true;
        received := !received + String.length c.Faults.Ingest.c_bytes;
        let from = !frontier in
        while !frontier < nchunks && got.(!frontier) do incr frontier done;
        if !frontier > from then begin
          (* the contiguous prefix grew: feed the new bytes *)
          let lo = from * chunk in
          let hi = Stdlib.min len (!frontier * chunk) in
          (match
             Jpeg2000.Stream.feed stream (String.sub data lo (hi - lo))
           with
          | Jpeg2000.Stream.Need_more | Jpeg2000.Stream.Segment_ready
          | Jpeg2000.Stream.Done | Jpeg2000.Stream.Corrupt _ ->
            ());
          steps := (c.Faults.Ingest.c_arrival_ps, hi) :: !steps;
          (match Jpeg2000.Stream.tile_count stream with
          | Some n when !ntiles < 0 ->
            ntiles := n;
            tile_landed := Array.make (Stdlib.max 1 n) max_int
          | _ -> ());
          let now_ready = Jpeg2000.Stream.tiles_ready stream in
          for ti = !ready to now_ready - 1 do
            !tile_landed.(ti) <- c.Faults.Ingest.c_arrival_ps
          done;
          ready := now_ready;
          if hi = len && !complete = max_int then
            complete := c.Faults.Ingest.c_arrival_ps
        end
      end)
    dlv.Faults.Ingest.chunks;
  {
    data;
    dlv;
    tile_landed = !tile_landed;
    complete = !complete;
    prefix_steps = Array.of_list (List.rev !steps);
    received = !received;
  }

let delivery t = t.dlv

let tile_landed_ps t i =
  if i < 0 || i >= Array.length t.tile_landed then max_int
  else t.tile_landed.(i)

let complete_ps t = t.complete

let prefix_at t instant =
  (* largest recorded prefix whose instant is <= [instant] *)
  let best = ref 0 in
  Array.iter
    (fun (ts, n) -> if ts <= instant && n > !best then best := n)
    t.prefix_steps;
  String.sub t.data 0 !best

let bytes_received t = t.received
