(** Decode requests and seeded workload specifications.

    A request names a registered codestream, what to decode from it
    (full image, a spatial region, or a reduced resolution level), a
    priority and an absolute deadline on the service's simulated
    clock. Workloads are generated from a compact spec string by a
    seeded {!Faults.Rng} stream, so equal specs replay bit for bit. *)

type target =
  | Full
  | Region of { rx : int; ry : int; rw : int; rh : int }
      (** decode only the window, as {!Jpeg2000.Decoder.decode_region} *)
  | Reduced of { discard : int }
      (** decode at [1/2^discard] resolution, as
          {!Jpeg2000.Decoder.decode_reduced} *)

type t = {
  id : int;  (** unique, in generation order *)
  trace : int64;  (** per-request trace id, pure function of (seed, id) *)
  stream : int;  (** index into the service's registered codestreams *)
  target : target;
  priority : int;  (** 0 = most urgent; EDF tie-breaker *)
  arrival_ps : int;
  deadline_ps : int;  (** absolute SLO deadline *)
}

val pp_target : Format.formatter -> target -> unit

val trace_id : seed:int -> int -> int64
(** The trace id of request [id] under a workload seed — a pure hash,
    so replays and any [--jobs] agree and a reader can recompute it. *)

val trace_to_string : int64 -> string
(** Canonical 16-hex-digit rendering, as threaded through span args
    and histogram exemplars. *)

(** {1 Workload specs}

    Spec strings have the shape [shape:key=v,key=v,...]:

    - [open:n=64,rate=400,seed=11,deadline=25,region=0.25,reduced=0.25]
      — open loop: [n] requests with exponential interarrival times at
      [rate] requests per simulated second, regardless of completions.
    - [closed:n=64,clients=4,think=2,seed=11,deadline=25,region=0.25,reduced=0.25]
      — closed loop: [clients] clients each issue their next request an
      exponential think time (mean [think] ms) after their previous one
      completes.

    [deadline] is the relative SLO in ms; [region]/[reduced] are the
    shares of region and reduced-resolution requests (the remainder
    decodes the full image). Unknown keys, malformed values and
    out-of-range shares are rejected with a one-line message. *)

type shape =
  | Open_loop of { rate_rps : float }
  | Closed_loop of { clients : int; think_ms : float }

type spec = {
  shape : shape;
  n : int;  (** total requests *)
  seed : int;
  deadline_ms : float;
  region_share : float;
  reduced_share : float;
}

val parse_spec : string -> (spec, string) result
val spec_to_string : spec -> string
(** Canonical round-trippable form, embedded in reports. *)

val draw_target :
  Faults.Rng.t -> width:int -> height:int -> levels:int -> spec -> target
(** One target from the spec's mix: region windows are uniform within
    the image (16 px minimum side), reduced levels uniform in
    [1..levels]. *)

val draw_priority : Faults.Rng.t -> int
(** Uniform in [0..3]. *)

val exp_draw : Faults.Rng.t -> mean:float -> float
(** Exponentially distributed with the given mean (interarrival and
    think times). *)
