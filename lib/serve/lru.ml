type ('k, 'v) entry = {
  e_hash : int;
  e_key : 'k;
  mutable e_value : 'v;
  mutable e_tick : int;
}

type ('k, 'v) t = {
  cap : int;
  hash : 'k -> int;
  mutable entries : ('k, 'v) entry list;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

let create ?(hash = Hashtbl.hash) ~capacity () =
  if capacity < 1 then invalid_arg "Serve.Lru.create: capacity < 1";
  {
    cap = capacity;
    hash;
    entries = [];
    tick = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = List.length t.entries

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* The hash comparison screens out non-matches cheaply; the key
   comparison on a hash match is what makes collisions harmless. *)
let lookup t key =
  let h = t.hash key in
  List.find_opt (fun e -> e.e_hash = h && e.e_key = key) t.entries

let find (t : (_, _) t) key =
  match lookup t key with
  | Some e ->
    t.hits <- t.hits + 1;
    e.e_tick <- next_tick t;
    Some e.e_value
  | None ->
    t.misses <- t.misses + 1;
    None

let mem t key = lookup t key <> None

let evict_lru (t : (_, _) t) =
  match t.entries with
  | [] -> ()
  | first :: rest ->
    let victim =
      List.fold_left (fun v e -> if e.e_tick < v.e_tick then e else v) first rest
    in
    t.entries <- List.filter (fun e -> e != victim) t.entries;
    t.evictions <- t.evictions + 1

let add (t : (_, _) t) key value =
  t.insertions <- t.insertions + 1;
  match lookup t key with
  | Some e ->
    e.e_value <- value;
    e.e_tick <- next_tick t
  | None ->
    if List.length t.entries >= t.cap then evict_lru t;
    t.entries <-
      { e_hash = t.hash key; e_key = key; e_value = value; e_tick = next_tick t }
      :: t.entries

let remove_where (t : (_, _) t) pred =
  let keep, removed =
    List.partition (fun e -> not (pred e.e_key)) t.entries
  in
  t.entries <- keep;
  List.length removed

let stats (t : (_, _) t) =
  {
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
  }

let hit_rate s =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups
