(** Generic bounded LRU map with hit/miss/eviction accounting.

    The cache is {e content-addressed but collision-honest}: lookups
    first compare the stored hash of each entry, then — on a hash
    match — the {e full} key with structural equality, so two keys
    that collide under [hash] can never alias each other's values.
    [?hash] exists so tests can force every key into one hash class
    and prove that property.

    Recency is a monotonic tick counter bumped on every hit and
    insertion; eviction removes the entry with the smallest tick.
    Ticks are unique, so the eviction order is deterministic — a
    requirement of the serving layer's bit-identical reports.

    Operations scan the (bounded) entry list linearly: the serving
    cache holds at most a few hundred decoded tiles, and the scan
    compares one int per non-matching entry. Not thread-safe; the
    scheduler owns it from one domain. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  insertions : int;  (** includes replacements of an existing key *)
  evictions : int;
}

val create : ?hash:('k -> int) -> capacity:int -> unit -> ('k, 'v) t
(** [hash] defaults to [Hashtbl.hash]. Raises [Invalid_argument] if
    [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Full-key lookup; a hit refreshes the entry's recency and counts
    in [stats.hits], a miss in [stats.misses]. *)

val mem : ('k, 'v) t -> 'k -> bool
(** [find] without touching recency or stats. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces the binding for the full key, evicting the
    least-recently-used entry when the cache is full. *)

val remove_where : ('k, 'v) t -> ('k -> bool) -> int
(** Drops every entry whose key satisfies the predicate and returns
    how many were removed. Invalidation, not pressure: the removals
    do not count as evictions and touch no hit/miss statistics. *)

val stats : ('k, 'v) t -> stats
val hit_rate : stats -> float
(** Hits over lookups, [0.] before the first lookup. *)
