type orientation = LL | HL | LH | HH

type band = {
  level : int;
  orientation : orientation;
  x0 : int;
  y0 : int;
  w : int;
  h : int;
}

let low_size n = (n + 1) / 2

let decompose ~width ~height ~levels =
  if width <= 0 || height <= 0 then invalid_arg "Subband.decompose: size";
  if levels < 0 then invalid_arg "Subband.decompose: levels";
  (* Walk down the pyramid, collecting the detail bands of each level
     (finest = level 1 spans the full tile). *)
  let rec details level w h acc =
    if level > levels then (w, h, acc)
    else
      let lw = low_size w and lh = low_size h in
      let bands =
        [
          { level; orientation = HL; x0 = lw; y0 = 0; w = w - lw; h = lh };
          { level; orientation = LH; x0 = 0; y0 = lh; w = lw; h = h - lh };
          { level; orientation = HH; x0 = lw; y0 = lh; w = w - lw; h = h - lh };
        ]
      in
      details (level + 1) lw lh (bands :: acc)
  in
  let llw, llh, detail_groups = details 1 width height [] in
  let ll = { level = levels; orientation = LL; x0 = 0; y0 = 0; w = llw; h = llh } in
  ll :: List.concat detail_groups

let decompose_array ~width ~height ~levels =
  Array.of_list (decompose ~width ~height ~levels)

let gain_log2 = function LL -> 0 | HL -> 1 | LH -> 1 | HH -> 2

let orientation_code = function LL -> 0 | HL -> 1 | LH -> 2 | HH -> 3

let orientation_of_code = function
  | 0 -> LL
  | 1 -> HL
  | 2 -> LH
  | 3 -> HH
  | n -> invalid_arg (Printf.sprintf "Subband.orientation_of_code: %d" n)

let pp_orientation fmt o =
  Format.pp_print_string fmt
    (match o with LL -> "LL" | HL -> "HL" | LH -> "LH" | HH -> "HH")
