(** Resumable, chunk-fed codestream parsing.

    A {!t} is the incremental twin of {!Codestream.parse_result}: it
    is fed arbitrary byte chunks ({!feed}) and consumes framing units
    — the preamble, then one tile segment at a time — as soon as the
    buffered bytes complete them. The machine is {e chunk-size
    invariant}: feeding any partition of a byte string (1-byte
    chunks, the whole string at once, anything between) drives it
    through the same unit sequence to the same final result, equal to
    [Codestream.parse_result] of the concatenation (asserted by a
    qcheck property in the test suite).

    Streaming cannot distinguish "truncated" from "more bytes on the
    way", so truncation is only reported by {!finish}, which marks
    end-of-input and returns the definitive status. Non-truncation
    framing damage (bad magic, bad version, an out-of-range field) is
    definite the moment it is seen: no suffix can repair a broken
    prefix, so {!feed} reports it immediately as [Corrupt]. *)

type t

type status =
  | Need_more  (** no new unit completed; awaiting more bytes *)
  | Segment_ready
      (** at least one new unit (preamble or tile segment) completed
          during this call; inspect {!header} / {!tiles_ready} *)
  | Done
      (** structurally complete: preamble and every announced tile
          segment parsed (a subsequent {!finish} returns the parse) *)
  | Corrupt of Codestream.error  (** definite framing damage *)

val create : unit -> t

val feed : t -> string -> status
(** Append a chunk and consume every framing unit it completes.
    Raises [Invalid_argument] after {!finish}. *)

val finish : t -> status
(** Mark end-of-input and return the definitive status: [Done] iff
    the bytes fed so far form a well-formed codestream, otherwise
    [Corrupt] with exactly the error — including the [Truncated]
    offset — that {!Codestream.parse_result} reports for the same
    bytes. Idempotent. *)

val status : t -> status
(** Current status without feeding ([Need_more] while incomplete and
    unfinished). *)

val header : t -> Codestream.header option
(** Available from the moment the preamble lands. *)

val tile_count : t -> int option
(** Announced tile-segment count, known with the preamble. *)

val tiles_ready : t -> int
(** Tile segments fully parsed so far. *)

val tile : t -> int -> Codestream.tile_segment
(** [tile t i] for [i < tiles_ready t], in stream order. Raises
    [Invalid_argument] otherwise. *)

val bytes_fed : t -> int

val received : t -> string
(** Every byte fed so far, in order — the prefix a deadline-driven
    flush hands to {!Decoder.decode_robust}. *)

val parse_result : t -> (Codestream.t, Codestream.error) result
(** The definitive parse of everything fed so far, as if by
    {!Codestream.parse_result} on {!received}; implicitly finishes
    the stream. *)
