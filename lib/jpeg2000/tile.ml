type t = { index : int; x0 : int; y0 : int; planes : Image.plane array }

let tile_grid ~image_w ~image_h ~tile_w ~tile_h =
  if tile_w <= 0 || tile_h <= 0 then invalid_arg "Tile.tile_grid: tile size";
  ((image_w + tile_w - 1) / tile_w, (image_h + tile_h - 1) / tile_h)

let split image ~tile_w ~tile_h =
  let image_w = Image.width image and image_h = Image.height image in
  let cols, rows = tile_grid ~image_w ~image_h ~tile_w ~tile_h in
  let make_tile tx ty =
    let x0 = tx * tile_w and y0 = ty * tile_h in
    let w = Stdlib.min tile_w (image_w - x0) in
    let h = Stdlib.min tile_h (image_h - y0) in
    let planes =
      Array.map
        (fun plane ->
          let sub = Image.create_plane ~width:w ~height:h in
          for y = 0 to h - 1 do
            Image.blit_row ~src:plane ~src_x:x0 ~src_y:(y0 + y) ~dst:sub
              ~dst_x:0 ~dst_y:y ~len:w
          done;
          sub)
        image.Image.planes
    in
    { index = (ty * cols) + tx; x0; y0; planes }
  in
  List.concat
    (List.init rows (fun ty -> List.init cols (fun tx -> make_tile tx ty)))

let width t = t.planes.(0).Image.width
let height t = t.planes.(0).Image.height
let components t = Array.length t.planes
let samples t = width t * height t * components t

let assemble ~width:image_w ~height:image_h ~components ?bit_depth tiles =
  let image =
    Image.create ~width:image_w ~height:image_h ~components ?bit_depth ()
  in
  List.iter
    (fun tile ->
      if Array.length tile.planes <> components then
        invalid_arg "Tile.assemble: component mismatch";
      Array.iteri
        (fun c sub ->
          let plane = image.Image.planes.(c) in
          for y = 0 to sub.Image.height - 1 do
            Image.blit_row ~src:sub ~src_x:0 ~src_y:y ~dst:plane
              ~dst_x:tile.x0 ~dst_y:(tile.y0 + y) ~len:sub.Image.width
          done)
        tile.planes)
    tiles;
  image
