type mode = Lossless | Lossy

type header = {
  width : int;
  height : int;
  components : int;
  tile_w : int;
  tile_h : int;
  levels : int;
  mode : mode;
  bit_depth : int;
  base_step : float;
  code_block : int;
}

type block_segment = { blk_planes : int; blk_passes : string list }

type band_segment = {
  seg_level : int;
  seg_orientation : Subband.orientation;
  seg_w : int;
  seg_h : int;
  seg_blocks : block_segment list;
}

type tile_segment = {
  tile_index : int;
  tile_x0 : int;
  tile_y0 : int;
  tile_w : int;
  tile_h : int;
  comps : band_segment list array;
}

type t = { header : header; tiles : tile_segment list }

let magic = "OJ2K"
let version = 1

(* -- binary writer/reader ----------------------------------------- *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let u16 buf v =
  u8 buf (v lsr 8);
  u8 buf v

let u32 buf v =
  u16 buf (v lsr 16);
  u16 buf v

let f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

type error =
  | Truncated of int
  | Bad_magic
  | Bad_version of int
  | Bad_field of string
  | Trailing of int

let error_message = function
  | Truncated off -> Printf.sprintf "truncated at byte %d" off
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Bad_field what -> what
  | Trailing n -> Printf.sprintf "%d trailing bytes" n

let pp_error fmt e = Format.pp_print_string fmt (error_message e)

exception Error of error

type reader = { data : string; mutable pos : int }

let fail_err e = raise (Error e)
let fail msg = fail_err (Bad_field msg)

let r8 r =
  if r.pos >= String.length r.data then fail_err (Truncated r.pos);
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r16 r =
  let hi = r8 r in
  (hi lsl 8) lor r8 r

let r32 r =
  let hi = r16 r in
  (hi lsl 16) lor r16 r

let rf64 r =
  let bits = ref 0L in
  for _ = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r8 r))
  done;
  Int64.float_of_bits !bits

let rbytes r n =
  if r.pos + n > String.length r.data then fail_err (Truncated r.pos);
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* -- emit ----------------------------------------------------------- *)

let block_grid ~code_block ~w ~h =
  if code_block <= 0 then invalid_arg "Codestream.block_grid: code_block";
  if w <= 0 || h <= 0 then []
  else begin
    let cols = (w + code_block - 1) / code_block in
    let rows = (h + code_block - 1) / code_block in
    List.concat
      (List.init rows (fun by ->
           List.init cols (fun bx ->
               let x0 = bx * code_block and y0 = by * code_block in
               ( x0,
                 y0,
                 Stdlib.min code_block (w - x0),
                 Stdlib.min code_block (h - y0) ))))
  end

let emit_band buf seg =
  u8 buf seg.seg_level;
  u8 buf (Subband.orientation_code seg.seg_orientation);
  u16 buf seg.seg_w;
  u16 buf seg.seg_h;
  u16 buf (List.length seg.seg_blocks);
  List.iter
    (fun blk ->
      u8 buf blk.blk_planes;
      u8 buf (List.length blk.blk_passes);
      List.iter
        (fun pass ->
          u32 buf (String.length pass);
          Buffer.add_string buf pass)
        blk.blk_passes)
    seg.seg_blocks

let emit_tile buf tile =
  u16 buf tile.tile_index;
  u32 buf tile.tile_x0;
  u32 buf tile.tile_y0;
  u16 buf tile.tile_w;
  u16 buf tile.tile_h;
  u8 buf (Array.length tile.comps);
  Array.iter
    (fun bands ->
      u8 buf (List.length bands);
      List.iter (emit_band buf) bands)
    tile.comps

let emit t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  u8 buf version;
  u32 buf t.header.width;
  u32 buf t.header.height;
  u8 buf t.header.components;
  u32 buf t.header.tile_w;
  u32 buf t.header.tile_h;
  u8 buf t.header.levels;
  u8 buf (match t.header.mode with Lossless -> 0 | Lossy -> 1);
  u8 buf t.header.bit_depth;
  f64 buf t.header.base_step;
  u16 buf t.header.code_block;
  u16 buf (List.length t.tiles);
  List.iter (emit_tile buf) t.tiles;
  Buffer.contents buf

(* -- parse ---------------------------------------------------------- *)

(* Hostile-input bounds: a corrupt stream must never make the parser
   (or a later decode stage sized from header fields) allocate
   unboundedly. These caps are far above anything the models emit. *)
let max_dim = 32768
let max_components = 16
let max_levels = 12
let max_code_block = 4096
let max_pixels = 1 lsl 26

let check_range what v lo hi =
  if v < lo || v > hi then
    fail (Printf.sprintf "%s %d out of range [%d, %d]" what v lo hi)

let parse_band r ~tile_w ~tile_h =
  let seg_level = r8 r in
  let seg_orientation =
    try Subband.orientation_of_code (r8 r)
    with Invalid_argument _ -> fail "bad orientation"
  in
  let seg_w = r16 r in
  let seg_h = r16 r in
  check_range "band width" seg_w 0 tile_w;
  check_range "band height" seg_h 0 tile_h;
  let nblocks = r16 r in
  let seg_blocks =
    List.init nblocks (fun _ ->
        let blk_planes = r8 r in
        let npasses = r8 r in
        let blk_passes =
          List.init npasses (fun _ ->
              let len = r32 r in
              rbytes r len)
        in
        { blk_planes; blk_passes })
  in
  { seg_level; seg_orientation; seg_w; seg_h; seg_blocks }

let parse_tile r ~header =
  let tile_index = r16 r in
  let tile_x0 = r32 r in
  let tile_y0 = r32 r in
  let tile_w = r16 r in
  let tile_h = r16 r in
  check_range "tile x0" tile_x0 0 header.width;
  check_range "tile y0" tile_y0 0 header.height;
  check_range "tile width" tile_w 1 header.tile_w;
  check_range "tile height" tile_h 1 header.tile_h;
  if tile_x0 + tile_w > header.width || tile_y0 + tile_h > header.height then
    fail "tile exceeds image bounds";
  let ncomps = r8 r in
  if ncomps <> header.components then fail "tile component count mismatch";
  let comps =
    Array.init ncomps (fun _ ->
        let nbands = r8 r in
        check_range "band count" nbands 0 ((3 * max_levels) + 1);
        List.init nbands (fun _ -> parse_band r ~tile_w ~tile_h))
  in
  { tile_index; tile_x0; tile_y0; tile_w; tile_h; comps }

(* The preamble: magic, version, header fields and the tile count —
   everything before the first tile segment. One source of truth for
   both the monolithic [parse_result] and the incremental [Stream]
   reader. *)
let parse_preamble r =
  if rbytes r 4 <> magic then fail_err Bad_magic;
  let v = r8 r in
  if v <> version then fail_err (Bad_version v);
  let width = r32 r in
  let height = r32 r in
  let components = r8 r in
  let tile_w = r32 r in
  let tile_h = r32 r in
  let levels = r8 r in
  let mode = match r8 r with 0 -> Lossless | 1 -> Lossy | _ -> fail "bad mode" in
  let bit_depth = r8 r in
  let base_step = rf64 r in
  let code_block = r16 r in
  check_range "width" width 1 max_dim;
  check_range "height" height 1 max_dim;
  check_range "components" components 1 max_components;
  check_range "tile width" tile_w 1 max_dim;
  check_range "tile height" tile_h 1 max_dim;
  check_range "levels" levels 0 max_levels;
  check_range "bit depth" bit_depth 1 16;
  check_range "code-block size" code_block 1 max_code_block;
  if width * height * components > max_pixels then fail "image too large";
  if not (Float.is_finite base_step) || base_step < 0.0 then
    fail "bad base step";
  let header =
    {
      width; height; components; tile_w; tile_h; levels; mode; bit_depth;
      base_step; code_block;
    }
  in
  let ntiles = r16 r in
  let grid_tiles =
    ((width + tile_w - 1) / tile_w) * ((height + tile_h - 1) / tile_h)
  in
  check_range "tile count" ntiles 0 grid_tiles;
  (header, ntiles)

let parse_exn data =
  let r = { data; pos = 0 } in
  if String.length data < 4 then fail_err Bad_magic;
  let header, ntiles = parse_preamble r in
  let tiles = List.init ntiles (fun _ -> parse_tile r ~header) in
  if r.pos <> String.length data then
    fail_err (Trailing (String.length data - r.pos));
  { header; tiles }

let parse_result data =
  match parse_exn data with
  | t -> Ok t
  | exception Error e -> Error e

(* The legacy exception interface is a thin shim over [parse_result]
   so there is exactly one parser and one error taxonomy. *)
let parse data =
  match parse_result data with
  | Ok t -> t
  | Error e -> failwith ("Codestream.parse: " ^ error_message e)

(* -- incremental framing units -------------------------------------- *)

type 'a step =
  | Unit_ready of 'a * int
  | Unit_truncated of int
  | Unit_error of error

let step_of ~pos ~data parse_unit =
  let r = { data; pos } in
  match parse_unit r with
  | v -> Unit_ready (v, r.pos)
  | exception Error (Truncated off) -> Unit_truncated off
  | exception Error e -> Unit_error e

let read_preamble data ~pos = step_of ~pos ~data parse_preamble

let read_tile ~header data ~pos = step_of ~pos ~data (parse_tile ~header)

let segment_bytes tile =
  Array.fold_left
    (fun acc bands ->
      List.fold_left
        (fun acc seg ->
          List.fold_left
            (fun acc blk ->
              List.fold_left
                (fun acc pass -> acc + String.length pass)
                acc blk.blk_passes)
            acc seg.seg_blocks)
        acc bands)
    0 tile.comps

let pp_mode fmt = function
  | Lossless -> Format.pp_print_string fmt "lossless"
  | Lossy -> Format.pp_print_string fmt "lossy"
