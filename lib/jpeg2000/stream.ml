(* Resumable chunk-fed parsing over the incremental framing units of
   [Codestream]. The machine buffers every byte it is fed and keeps a
   parse cursor; after each feed it consumes units while the buffered
   bytes complete them. Because a unit parse depends only on the
   bytes before the cursor — never on how they arrived — the machine
   is chunk-size invariant by construction. *)

type phase =
  | Preamble
  | Tiles of { header : Codestream.header; ntiles : int }
  | Complete of { header : Codestream.header; ntiles : int }
  | Corrupt of Codestream.error

type t = {
  buf : Buffer.t;
  mutable pos : int;  (* parse cursor into [buf] *)
  mutable phase : phase;
  mutable tiles_rev : Codestream.tile_segment list;
  mutable ready : int;
  mutable tiles_cache : Codestream.tile_segment array option;
  mutable finished : bool;
}

type status =
  | Need_more
  | Segment_ready
  | Done
  | Corrupt of Codestream.error

let create () =
  {
    buf = Buffer.create 4096;
    pos = 0;
    phase = Preamble;
    tiles_rev = [];
    ready = 0;
    tiles_cache = None;
    finished = false;
  }

(* Consume framing units while the buffer completes them; returns how
   many new units landed. *)
let advance t =
  let data = Buffer.contents t.buf in
  let landed = ref 0 in
  let rec loop () =
    match t.phase with
    | Corrupt _ | Complete _ -> ()
    | Preamble -> (
      match Codestream.read_preamble data ~pos:t.pos with
      | Codestream.Unit_truncated _ -> ()
      | Codestream.Unit_error e -> t.phase <- Corrupt e
      | Codestream.Unit_ready ((header, ntiles), pos') ->
        t.pos <- pos';
        incr landed;
        t.phase <-
          (if ntiles = 0 then Complete { header; ntiles }
           else Tiles { header; ntiles });
        loop ())
    | Tiles { header; ntiles } -> (
      match Codestream.read_tile ~header data ~pos:t.pos with
      | Codestream.Unit_truncated _ -> ()
      | Codestream.Unit_error e -> t.phase <- Corrupt e
      | Codestream.Unit_ready (tile, pos') ->
        t.pos <- pos';
        t.tiles_rev <- tile :: t.tiles_rev;
        t.ready <- t.ready + 1;
        t.tiles_cache <- None;
        incr landed;
        if t.ready = ntiles then t.phase <- Complete { header; ntiles };
        loop ())
  in
  loop ();
  !landed

let trailing t = Buffer.length t.buf - t.pos

let status t : status =
  match t.phase with
  | Corrupt e -> Corrupt e
  | Complete _ ->
    if trailing t = 0 then Done
    else Corrupt (Codestream.Trailing (trailing t))
  | Preamble | Tiles _ ->
    if not t.finished then Need_more
    else if Buffer.length t.buf < 4 then Corrupt Codestream.Bad_magic
    else begin
      (* At end-of-input a pending truncation is definitive; re-run
         the unit attempt to recover the exact offset [parse_result]
         would report. *)
      let data = Buffer.contents t.buf in
      let step_err : _ Codestream.step -> status = function
        | Codestream.Unit_truncated off ->
          Corrupt (Codestream.Truncated off)
        | Codestream.Unit_error e -> Corrupt e
        | Codestream.Unit_ready _ ->
          assert false (* [advance] would have consumed it *)
      in
      match t.phase with
      | Preamble -> step_err (Codestream.read_preamble data ~pos:t.pos)
      | Tiles { header; _ } ->
        step_err (Codestream.read_tile ~header data ~pos:t.pos)
      | Complete _ | Corrupt _ -> assert false
    end

let feed t chunk =
  if t.finished then invalid_arg "Stream.feed: stream already finished";
  Buffer.add_string t.buf chunk;
  let landed = advance t in
  match status t with
  | (Done | Corrupt _) as s -> s
  | Need_more | Segment_ready -> if landed > 0 then Segment_ready else Need_more

let finish t =
  t.finished <- true;
  status t

let header t =
  match t.phase with
  | Preamble | Corrupt _ -> None
  | Tiles { header; _ } | Complete { header; _ } -> Some header

let tile_count t =
  match t.phase with
  | Preamble | Corrupt _ -> None
  | Tiles { ntiles; _ } | Complete { ntiles; _ } -> Some ntiles

let tiles_ready t = t.ready

let tiles_array t =
  match t.tiles_cache with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev t.tiles_rev) in
    t.tiles_cache <- Some a;
    a

let tile t i =
  if i < 0 || i >= t.ready then invalid_arg "Stream.tile: index out of range";
  (tiles_array t).(i)

let bytes_fed t = Buffer.length t.buf
let received t = Buffer.contents t.buf

let parse_result t =
  match finish t with
  | Done -> (
    match t.phase with
    | Complete { header; _ } ->
      Ok { Codestream.header; tiles = List.rev t.tiles_rev }
    | Preamble | Tiles _ | Corrupt _ -> assert false)
  | Corrupt e -> Error e
  | Need_more | Segment_ready -> assert false
