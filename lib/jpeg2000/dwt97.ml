type matrix = { mw : int; mh : int; values : float array }

let matrix_create ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Dwt97.matrix_create: size";
  { mw = w; mh = h; values = Array.make (w * h) 0.0 }

let matrix_get m ~x ~y = m.values.((y * m.mw) + x)
let matrix_set m ~x ~y v = m.values.((y * m.mw) + x) <- v

let of_int_plane plane =
  {
    mw = plane.Image.width;
    mh = plane.Image.height;
    values = Array.map float_of_int plane.Image.data;
  }

let to_int_plane m =
  {
    Image.width = m.mw;
    height = m.mh;
    data = Array.map (fun v -> int_of_float (Float.round v)) m.values;
  }

(* Lifting constants of the Daubechies (9,7) filter bank
   (ISO/IEC 15444-1 Annex F). *)
let alpha = -1.586134342059924
let beta = -0.052980118572961
let gamma = 0.882911075530934
let delta = 0.443506852043971
let kappa = 1.230174104914001

let reflect n i = if i < 0 then -i else if i >= n then (2 * n) - 2 - i else i

(* One lifting step over the interleaved signal: for every index with
   the given parity, add coef * (left neighbour + right neighbour). *)
let lift y n ~parity coef =
  let v i = y.(reflect n i) in
  let i = ref parity in
  while !i < n do
    y.(!i) <- y.(!i) +. (coef *. (v (!i - 1) +. v (!i + 1)));
    i := !i + 2
  done

let forward_1d src =
  let n = Array.length src in
  if n <= 1 then Array.copy src
  else begin
    let y = Array.copy src in
    lift y n ~parity:1 alpha;
    lift y n ~parity:0 beta;
    lift y n ~parity:1 gamma;
    lift y n ~parity:0 delta;
    let nl = (n + 1) / 2 and nh = n / 2 in
    let dst = Array.make n 0.0 in
    for i = 0 to nl - 1 do
      dst.(i) <- y.(2 * i) /. kappa
    done;
    for i = 0 to nh - 1 do
      dst.(nl + i) <- y.((2 * i) + 1) *. kappa
    done;
    dst
  end

let inverse_1d src =
  let n = Array.length src in
  if n <= 1 then Array.copy src
  else begin
    let nl = (n + 1) / 2 and nh = n / 2 in
    let y = Array.make n 0.0 in
    for i = 0 to nl - 1 do
      y.(2 * i) <- src.(i) *. kappa
    done;
    for i = 0 to nh - 1 do
      y.((2 * i) + 1) <- src.(nl + i) /. kappa
    done;
    lift y n ~parity:0 (-.delta);
    lift y n ~parity:1 (-.gamma);
    lift y n ~parity:0 (-.beta);
    lift y n ~parity:1 (-.alpha);
    y
  end

let get_row m ~w y = Array.init w (fun x -> matrix_get m ~x ~y)
let set_row m y row = Array.iteri (fun x v -> matrix_set m ~x ~y v) row
let get_col m ~h x = Array.init h (fun y -> matrix_get m ~x ~y)
let set_col m x col = Array.iteri (fun y v -> matrix_set m ~x ~y v) col

let forward_level m ~w ~h =
  for y = 0 to h - 1 do
    set_row m y (forward_1d (get_row m ~w y))
  done;
  for x = 0 to w - 1 do
    set_col m x (forward_1d (get_col m ~h x))
  done

let inverse_level m ~w ~h =
  for x = 0 to w - 1 do
    set_col m x (inverse_1d (get_col m ~h x))
  done;
  for y = 0 to h - 1 do
    set_row m y (inverse_1d (get_row m ~w y))
  done

let check_levels levels =
  if levels < 0 then invalid_arg "Dwt97: negative level count"

let forward m ~levels =
  check_levels levels;
  let rec loop level w h =
    if level < levels then begin
      forward_level m ~w ~h;
      loop (level + 1) (Subband.low_size w) (Subband.low_size h)
    end
  in
  loop 0 m.mw m.mh

let inverse m ~levels =
  check_levels levels;
  let rec sizes level w h acc =
    if level = levels then acc
    else sizes (level + 1) (Subband.low_size w) (Subband.low_size h) ((w, h) :: acc)
  in
  List.iter (fun (w, h) -> inverse_level m ~w ~h) (sizes 0 m.mw m.mh [])

(* -- in-place inverse over a per-domain scratch line -----------------

   [inverse_1d] allocates a line copy per row/column (plus the
   [Array.init]/[set_row] temporaries around it); this variant stages
   each line in one [Plane.Scratch] float buffer instead. The
   floating-point operations — K scaling on load, then the four
   lifting steps via [lift] — run in exactly the order of
   [inverse_1d], so the reconstruction is bit-identical. *)

let inverse_line_ip m y n ~base ~stride =
  let nl = (n + 1) / 2 and nh = n / 2 in
  for i = 0 to nl - 1 do
    y.(2 * i) <- m.values.(base + (i * stride)) *. kappa
  done;
  for i = 0 to nh - 1 do
    y.((2 * i) + 1) <- m.values.(base + ((nl + i) * stride)) /. kappa
  done;
  lift y n ~parity:0 (-.delta);
  lift y n ~parity:1 (-.gamma);
  lift y n ~parity:0 (-.beta);
  lift y n ~parity:1 (-.alpha);
  for i = 0 to n - 1 do
    m.values.(base + (i * stride)) <- y.(i)
  done

let inverse_level_ip m ~w ~h =
  let y = Plane.Scratch.floats (Stdlib.max w h) in
  (* Columns first, then rows — the order of [inverse_level]. *)
  if h > 1 then
    for x = 0 to w - 1 do
      inverse_line_ip m y h ~base:x ~stride:m.mw
    done;
  if w > 1 then
    for yr = 0 to h - 1 do
      inverse_line_ip m y w ~base:(yr * m.mw) ~stride:1
    done

let inverse_ip m ~levels =
  check_levels levels;
  let rec sizes level w h acc =
    if level = levels then acc
    else sizes (level + 1) (Subband.low_size w) (Subband.low_size h) ((w, h) :: acc)
  in
  List.iter (fun (w, h) -> inverse_level_ip m ~w ~h) (sizes 0 m.mw m.mh [])
