(** Raster images: planes, PGM/PPM I/O, synthetic generators.

    A {!plane} stores one component in row-major order; an {!t} is a
    list of equally sized planes (1 = grey, 3 = colour). Samples are
    unsigned with a fixed bit depth (8 throughout the case study). *)

type plane = { width : int; height : int; data : int array }

type t = {
  planes : plane array;
  bit_depth : int;  (** sample precision in bits, 1..16 *)
}

val create_plane : width:int -> height:int -> plane
(** Zero-filled plane. Raises [Invalid_argument] on non-positive
    dimensions. *)

val plane_get : plane -> x:int -> y:int -> int
val plane_set : plane -> x:int -> y:int -> int -> unit

val blit_row :
  src:plane ->
  src_x:int ->
  src_y:int ->
  dst:plane ->
  dst_x:int ->
  dst_y:int ->
  len:int ->
  unit
(** Copies [len] samples of one row — a single bounds check and an
    [Array.blit], the tile split/assemble hot path. Raises
    [Invalid_argument] if either row segment is out of bounds. *)

val create : width:int -> height:int -> components:int -> ?bit_depth:int -> unit -> t
val width : t -> int
val height : t -> int
val components : t -> int
val max_sample : t -> int

val equal : t -> t -> bool

val mse : t -> t -> float
(** Mean squared error across all components; raises on shape
    mismatch. *)

val psnr : t -> t -> float
(** Peak signal-to-noise ratio in dB ([infinity] for identical
    images). *)

(** {1 Synthetic images}

    Deterministic generators (a seeded LCG replaces the paper's
    photographic test material). *)

val gradient : width:int -> height:int -> components:int -> t
val checkerboard : width:int -> height:int -> components:int -> ?square:int -> unit -> t
val noise : width:int -> height:int -> components:int -> seed:int -> t
val smooth : width:int -> height:int -> components:int -> seed:int -> t
(** Band-limited pseudo-natural content: sums of low-frequency
    sinusoids plus mild noise — compresses like a photograph. *)

(** {1 PGM / PPM} *)

val to_pnm : t -> string
(** Binary PGM (1 plane) or PPM (3 planes); other plane counts are
    rejected. Only for bit depth 8. *)

val of_pnm : string -> t
(** Parses binary P5/P6 data. Raises [Failure] on malformed input. *)

val save_pnm : t -> string -> unit
val load_pnm : string -> t
