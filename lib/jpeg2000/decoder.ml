type band_coeffs = {
  bc_band : Subband.band;
  bc_planes : int;
  bc_coeffs : int array;
}

type entropy_decoded = {
  ed_tile : Codestream.tile_segment;
  ed_comps : band_coeffs list array;
}

type wavelet_domain =
  | Ints of Image.plane array
  | Floats of Dwt97.matrix array

let parse = Codestream.parse

let entropy_decode_tile ?max_passes header tile =
  (* Band geometry is recomputed from the tile dimensions so that a
     corrupted stream cannot make us write outside a plane. *)
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let decode_comp segments =
    if List.length segments <> List.length bands then
      failwith "Decoder: band count mismatch";
    List.map2
      (fun band seg ->
        if
          band.Subband.w <> seg.Codestream.seg_w
          || band.Subband.h <> seg.Codestream.seg_h
          || band.Subband.orientation <> seg.Codestream.seg_orientation
        then failwith "Decoder: band geometry mismatch";
        let bw = band.Subband.w and bh = band.Subband.h in
        let grid =
          Codestream.block_grid ~code_block:header.Codestream.code_block ~w:bw
            ~h:bh
        in
        if List.length grid <> List.length seg.Codestream.seg_blocks then
          failwith "Decoder: code-block count mismatch";
        let coeffs = Array.make (bw * bh) 0 in
        let max_planes = ref 0 in
        List.iter2
          (fun (x0, y0, w, h) blk ->
            max_planes := Stdlib.max !max_planes blk.Codestream.blk_planes;
            let passes =
              match max_passes with
              | None -> blk.Codestream.blk_passes
              | Some k -> List.filteri (fun i _ -> i < k) blk.Codestream.blk_passes
            in
            let block =
              T1.decode_block_scalable ~orientation:band.Subband.orientation ~w
                ~h ~planes:blk.Codestream.blk_planes passes
            in
            Array.iteri
              (fun i v ->
                let x = x0 + (i mod w) and y = y0 + (i / w) in
                coeffs.((y * bw) + x) <- v)
              block)
          grid seg.Codestream.seg_blocks;
        { bc_band = band; bc_planes = !max_planes; bc_coeffs = coeffs })
      bands segments
  in
  { ed_tile = tile; ed_comps = Array.map decode_comp tile.Codestream.comps }

let place_int_band plane bc =
  let band = bc.bc_band in
  Array.iteri
    (fun i v ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Image.plane_set plane ~x ~y v)
    bc.bc_coeffs

let place_float_band m ~step bc =
  let band = bc.bc_band in
  let values = Quant.dequantise ~step bc.bc_coeffs in
  Array.iteri
    (fun i v ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Dwt97.matrix_set m ~x ~y v)
    values

let dequantise header decoded =
  let w = decoded.ed_tile.Codestream.tile_w in
  let h = decoded.ed_tile.Codestream.tile_h in
  match header.Codestream.mode with
  | Codestream.Lossless ->
    Ints
      (Array.map
         (fun bands ->
           let plane = Image.create_plane ~width:w ~height:h in
           List.iter
             (fun bc ->
               if bc.bc_band.Subband.w > 0 && bc.bc_band.Subband.h > 0 then
                 place_int_band plane bc)
             bands;
           plane)
         decoded.ed_comps)
  | Codestream.Lossy ->
    Floats
      (Array.map
         (fun bands ->
           let m = Dwt97.matrix_create ~w ~h in
           List.iter
             (fun bc ->
               if bc.bc_band.Subband.w > 0 && bc.bc_band.Subband.h > 0 then begin
                 let step =
                   Quant.step_for ~base_step:header.Codestream.base_step
                     ~levels:header.Codestream.levels
                     ~level:bc.bc_band.Subband.level
                     bc.bc_band.Subband.orientation
                 in
                 place_float_band m ~step bc
               end)
             bands;
           m)
         decoded.ed_comps)

let inverse_wavelet header domain =
  let levels = header.Codestream.levels in
  (match domain with
  | Ints planes -> Array.iter (fun p -> Dwt53.inverse_plane p ~levels) planes
  | Floats ms -> Array.iter (fun m -> Dwt97.inverse m ~levels) ms);
  domain

let inverse_colour_and_shift header tile domain =
  let bit_depth = header.Codestream.bit_depth in
  let int_planes =
    match domain with
    | Ints planes ->
      let arrays = Array.map (fun p -> p.Image.data) planes in
      if Array.length arrays = 3 then
        Colour.rct_inverse arrays.(0) arrays.(1) arrays.(2);
      arrays
    | Floats ms ->
      let arrays = Array.map (fun m -> Array.copy m.Dwt97.values) ms in
      if Array.length arrays = 3 then
        Colour.ict_inverse arrays.(0) arrays.(1) arrays.(2);
      Array.map (Array.map (fun v -> int_of_float (Float.round v))) arrays
  in
  Array.iter (Colour.dc_shift_inverse ~bit_depth) int_planes;
  let w = tile.Codestream.tile_w and h = tile.Codestream.tile_h in
  {
    Tile.index = tile.Codestream.tile_index;
    x0 = tile.Codestream.tile_x0;
    y0 = tile.Codestream.tile_y0;
    planes =
      Array.map (fun data -> { Image.width = w; height = h; data }) int_planes;
  }

let decode_tile ?max_passes header tile =
  entropy_decode_tile ?max_passes header tile
  |> dequantise header
  |> inverse_wavelet header
  |> inverse_colour_and_shift header tile

let decode_region ~x ~y ~w ~h data =
  let stream = parse data in
  let header = stream.Codestream.header in
  if w <= 0 || h <= 0 then invalid_arg "Decoder.decode_region: empty window";
  if
    x < 0 || y < 0
    || x + w > header.Codestream.width
    || y + h > header.Codestream.height
  then invalid_arg "Decoder.decode_region: window outside the image";
  let intersects tile =
    tile.Codestream.tile_x0 < x + w
    && tile.Codestream.tile_x0 + tile.Codestream.tile_w > x
    && tile.Codestream.tile_y0 < y + h
    && tile.Codestream.tile_y0 + tile.Codestream.tile_h > y
  in
  let needed = List.filter intersects stream.Codestream.tiles in
  let region = Image.create ~width:w ~height:h ~components:header.Codestream.components
      ~bit_depth:header.Codestream.bit_depth () in
  List.iter
    (fun seg ->
      let tile = decode_tile header seg in
      Array.iteri
        (fun c sub ->
          let plane = region.Image.planes.(c) in
          for ty = 0 to sub.Image.height - 1 do
            for tx = 0 to sub.Image.width - 1 do
              let gx = tile.Tile.x0 + tx and gy = tile.Tile.y0 + ty in
              if gx >= x && gx < x + w && gy >= y && gy < y + h then
                Image.plane_set plane ~x:(gx - x) ~y:(gy - y)
                  (Image.plane_get sub ~x:tx ~y:ty)
            done
          done)
        tile.Tile.planes)
    needed;
  region

(* Reduced-resolution decode: keep only the bands with
   level > discard (they occupy the top-left low-resolution corner of
   the Mallat layout), then invert the remaining levels. *)
let reduced_size n d =
  let rec shrink n k = if k = 0 then n else shrink (Subband.low_size n) (k - 1) in
  shrink n d

let decode_tile_reduced header ~discard tile =
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let keep (band : Subband.band) = band.Subband.level > discard in
  let reduced_header =
    {
      header with
      Codestream.levels = header.Codestream.levels - discard;
      tile_w = reduced_size tile.Codestream.tile_w discard;
      tile_h = reduced_size tile.Codestream.tile_h discard;
      (* Band levels shift down by [discard]; shifting the base step
         the same way keeps every kept band's quantiser step equal to
         the one the encoder used. *)
      base_step =
        header.Codestream.base_step /. Float.pow 2.0 (float_of_int discard);
    }
  in
  let reduced_tile =
    {
      tile with
      Codestream.tile_x0 = tile.Codestream.tile_x0 asr discard;
      tile_y0 = tile.Codestream.tile_y0 asr discard;
      tile_w = reduced_header.Codestream.tile_w;
      tile_h = reduced_header.Codestream.tile_h;
      comps =
        Array.map
          (fun segments ->
            List.filteri
              (fun i _ -> keep (List.nth bands i))
              segments)
          tile.Codestream.comps;
    }
  in
  (* The kept bands' levels shift down by [discard] so the geometry
     matches the reduced tile. *)
  let relevel seg =
    { seg with Codestream.seg_level = seg.Codestream.seg_level - discard }
  in
  let reduced_tile =
    {
      reduced_tile with
      Codestream.comps =
        Array.map (List.map relevel) reduced_tile.Codestream.comps;
    }
  in
  let domain =
    entropy_decode_tile reduced_header reduced_tile
    |> dequantise reduced_header
  in
  (* Each skipped inverse level would have multiplied the lows by K
     (per dimension); compensate so brightness does not drift. *)
  (match domain with
  | Ints _ -> () (* the 5/3 low-pass has unit DC gain *)
  | Floats ms ->
    let k2d = Float.pow 1.230174104914001 (2.0 *. float_of_int discard) in
    Array.iter
      (fun m ->
        Array.iteri (fun i v -> m.Dwt97.values.(i) <- v *. k2d) m.Dwt97.values)
      ms);
  inverse_wavelet reduced_header domain
  |> inverse_colour_and_shift reduced_header reduced_tile

let decode_reduced ~discard_levels data =
  let stream = parse data in
  let header = stream.Codestream.header in
  if discard_levels < 0 || discard_levels > header.Codestream.levels then
    invalid_arg "Decoder.decode_reduced: discard_levels";
  if
    header.Codestream.tile_w mod (1 lsl discard_levels) <> 0
    || header.Codestream.tile_h mod (1 lsl discard_levels) <> 0
  then invalid_arg "Decoder.decode_reduced: tile grid not aligned";
  let tiles =
    List.map (decode_tile_reduced header ~discard:discard_levels) stream.Codestream.tiles
  in
  Tile.assemble
    ~width:(reduced_size header.Codestream.width discard_levels)
    ~height:(reduced_size header.Codestream.height discard_levels)
    ~components:header.Codestream.components
    ~bit_depth:header.Codestream.bit_depth tiles

let decode_with ?max_passes data =
  let stream = parse data in
  let header = stream.Codestream.header in
  let tiles = List.map (decode_tile ?max_passes header) stream.Codestream.tiles in
  Tile.assemble ~width:header.Codestream.width ~height:header.Codestream.height
    ~components:header.Codestream.components ~bit_depth:header.Codestream.bit_depth
    tiles

let decode data = decode_with data

let decode_progressive ~max_passes data =
  if max_passes < 0 then invalid_arg "Decoder.decode_progressive: max_passes";
  decode_with ~max_passes data

(* -- graceful degradation ------------------------------------------- *)

type report = {
  concealed_blocks : int;
  concealed_tiles : int;
  total_blocks : int;
  total_tiles : int;
}

let no_damage = function
  | { concealed_blocks = 0; concealed_tiles = 0; _ } -> true
  | _ -> false

let pp_report ppf r =
  Format.fprintf ppf "%d/%d blocks concealed, %d/%d tiles concealed"
    r.concealed_blocks r.total_blocks r.concealed_tiles r.total_tiles

(* Entropy decode in which each code block is a containment domain: a
   block whose MQ codeword no longer decodes is concealed (all-zero
   coefficients — mid-grey after the DC shift, the classic JPEG 2000
   error-resilience strategy) instead of poisoning the tile. Returns
   [None] when the tile's structure itself is inconsistent with the
   header geometry and the whole tile must be concealed. *)
let max_robust_planes = 30

let entropy_decode_tile_robust header tile =
  let concealed = ref 0 in
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let decode_comp segments =
    if List.length segments <> List.length bands then raise Exit;
    List.map2
      (fun band seg ->
        if
          band.Subband.w <> seg.Codestream.seg_w
          || band.Subband.h <> seg.Codestream.seg_h
          || band.Subband.orientation <> seg.Codestream.seg_orientation
        then raise Exit;
        let bw = band.Subband.w and bh = band.Subband.h in
        let grid =
          Codestream.block_grid ~code_block:header.Codestream.code_block ~w:bw
            ~h:bh
        in
        if List.length grid <> List.length seg.Codestream.seg_blocks then
          raise Exit;
        let coeffs = Array.make (Stdlib.max 1 (bw * bh)) 0 in
        let max_planes = ref 0 in
        List.iter2
          (fun (x0, y0, w, h) blk ->
            let block =
              if blk.Codestream.blk_planes > max_robust_planes then None
              else
                try
                  Some
                    (T1.decode_block_scalable
                       ~orientation:band.Subband.orientation ~w ~h
                       ~planes:blk.Codestream.blk_planes
                       blk.Codestream.blk_passes)
                with Failure _ | Invalid_argument _ | Exit | Not_found ->
                  None
            in
            match block with
            | Some block when Array.length block = w * h ->
              max_planes := Stdlib.max !max_planes blk.Codestream.blk_planes;
              Array.iteri
                (fun i v ->
                  let x = x0 + (i mod w) and y = y0 + (i / w) in
                  coeffs.((y * bw) + x) <- v)
                block
            | _ ->
              (* concealed: the block's coefficients stay zero *)
              incr concealed)
          grid seg.Codestream.seg_blocks;
        { bc_band = band; bc_planes = !max_planes; bc_coeffs = coeffs })
      bands segments
  in
  match Array.map decode_comp tile.Codestream.comps with
  | comps -> Some ({ ed_tile = tile; ed_comps = comps }, !concealed)
  | exception Exit -> None

(* A fully concealed tile: every coefficient zero, same pipeline, so
   it renders as mid-grey at the right place and size. *)
let concealed_entropy_decoded header tile =
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let zero_comp () =
    List.map
      (fun (band : Subband.band) ->
        {
          bc_band = band;
          bc_planes = 0;
          bc_coeffs = Array.make (Stdlib.max 1 (band.Subband.w * band.Subband.h)) 0;
        })
      bands
  in
  {
    ed_tile = tile;
    ed_comps = Array.map (fun _ -> zero_comp ()) tile.Codestream.comps;
  }

let concealed_tile header tile =
  concealed_entropy_decoded header tile
  |> dequantise header |> inverse_wavelet header
  |> inverse_colour_and_shift header tile

let tile_block_count header tile =
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  List.fold_left
    (fun acc (band : Subband.band) ->
      acc
      + List.length
          (Codestream.block_grid ~code_block:header.Codestream.code_block
             ~w:band.Subband.w ~h:band.Subband.h))
    0 bands
  * Array.length tile.Codestream.comps

let decode_robust data =
  match Codestream.parse_result data with
  | Error e -> Error e
  | Ok stream ->
    let header = stream.Codestream.header in
    let concealed_blocks = ref 0 and concealed_tiles = ref 0 in
    let total_blocks = ref 0 in
    let tiles =
      List.map
        (fun tile ->
          total_blocks := !total_blocks + tile_block_count header tile;
          let decoded =
            match entropy_decode_tile_robust header tile with
            | Some (ed, concealed) ->
              concealed_blocks := !concealed_blocks + concealed;
              (try
                 Some
                   (dequantise header ed |> inverse_wavelet header
                   |> inverse_colour_and_shift header tile)
               with Failure _ | Invalid_argument _ -> None)
            | None -> None
          in
          match decoded with
          | Some t -> t
          | None ->
            incr concealed_tiles;
            concealed_tile header tile)
        stream.Codestream.tiles
    in
    let image =
      Tile.assemble ~width:header.Codestream.width
        ~height:header.Codestream.height
        ~components:header.Codestream.components
        ~bit_depth:header.Codestream.bit_depth tiles
    in
    Ok
      ( image,
        {
          concealed_blocks = !concealed_blocks;
          concealed_tiles = !concealed_tiles;
          total_blocks = !total_blocks;
          total_tiles = List.length stream.Codestream.tiles;
        } )

let psnr_impact ~reference (image, report) =
  if no_damage report then Float.infinity else Image.psnr reference image
