type band_coeffs = {
  bc_band : Subband.band;
  bc_planes : int;
  bc_coeffs : int array;
}

type entropy_decoded = {
  ed_tile : Codestream.tile_segment;
  ed_comps : band_coeffs list array;
}

type wavelet_domain =
  | Ints of Image.plane array
  | Floats of Dwt97.matrix array

let parse = Codestream.parse

(* -- entropy decoding ------------------------------------------------

   A tile is flattened up front into an array of independent per-code-
   block jobs plus one coefficient slot per (component, band): every
   job touches only its own rectangle of its own slot, so the jobs can
   run on a [Par.Pool] in any schedule and the merged coefficients are
   identical to the sequential decode. The flattening also de-lists
   the hot path: segments, grids and blocks are walked as arrays, not
   by [List.map2]/[List.length] per tile.

   Two representations share that job structure. The {e boxed} form
   decodes every block into a fresh [int array] and merges by index;
   it survives only as the exported stage-by-stage API
   ([entropy_decode_tile] → [dequantise] → [inverse_wavelet] →
   [inverse_colour_and_shift]) that the OSSS system models refine over
   Software Tasks and Shared Objects. Every whole-tile entry point
   decodes through the {e flat} path: per-domain scratch state into
   one off-heap {!Plane} per component — no per-block allocation, so
   parallel decodes stop serialising on the minor collector. (The
   boxed whole-tile pipeline behind the former [?flat:false] flag was
   retired after one release as a cross-check; a golden-digest qcheck
   regression pins the flat output in its place.) *)

type block_job = {
  bj_slot : int; (* (component, band) slot index *)
  bj_x0 : int;
  bj_y0 : int;
  bj_w : int;
  bj_h : int;
  bj_planes : int;
  bj_passes : string list;
}

type band_slot = {
  sl_band : Subband.band;
  sl_coeffs : int array;
  mutable sl_planes : int;
}

(* Band geometry is recomputed from the tile dimensions so that a
   corrupted stream cannot make us write outside a plane. [fail] is
   called (and must raise) on any inconsistency between the segment
   structure and that geometry. *)
let tile_jobs ~fail ?max_passes header tile =
  let bands =
    Subband.decompose_array ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let nbands = Array.length bands in
  let grids =
    Array.map
      (fun (band : Subband.band) ->
        Array.of_list
          (Codestream.block_grid ~code_block:header.Codestream.code_block
             ~w:band.Subband.w ~h:band.Subband.h))
      bands
  in
  let ncomps = Array.length tile.Codestream.comps in
  let slots =
    Array.init (ncomps * nbands) (fun si ->
        let band = bands.(si mod nbands) in
        {
          sl_band = band;
          sl_coeffs =
            Array.make (Stdlib.max 1 (band.Subband.w * band.Subband.h)) 0;
          sl_planes = 0;
        })
  in
  let jobs = ref [] in
  Array.iteri
    (fun ci segments ->
      let segs = Array.of_list segments in
      if Array.length segs <> nbands then fail "band count mismatch";
      Array.iteri
        (fun bi (seg : Codestream.band_segment) ->
          let band = bands.(bi) in
          if
            band.Subband.w <> seg.Codestream.seg_w
            || band.Subband.h <> seg.Codestream.seg_h
            || band.Subband.orientation <> seg.Codestream.seg_orientation
          then fail "band geometry mismatch";
          let grid = grids.(bi) in
          let blocks = Array.of_list seg.Codestream.seg_blocks in
          if Array.length grid <> Array.length blocks then
            fail "code-block count mismatch";
          let slot = (ci * nbands) + bi in
          Array.iteri
            (fun k (x0, y0, w, h) ->
              let blk = blocks.(k) in
              let passes =
                match max_passes with
                | None -> blk.Codestream.blk_passes
                | Some n ->
                  List.filteri (fun i _ -> i < n) blk.Codestream.blk_passes
              in
              jobs :=
                {
                  bj_slot = slot;
                  bj_x0 = x0;
                  bj_y0 = y0;
                  bj_w = w;
                  bj_h = h;
                  bj_planes = blk.Codestream.blk_planes;
                  bj_passes = passes;
                }
                :: !jobs)
            grid)
        segs)
    tile.Codestream.comps;
  (nbands, slots, Array.of_list (List.rev !jobs))

let decode_job slots j =
  T1.decode_block_scalable
    ~orientation:slots.(j.bj_slot).sl_band.Subband.orientation ~w:j.bj_w
    ~h:j.bj_h ~planes:j.bj_planes j.bj_passes

let place_block slots j block =
  let slot = slots.(j.bj_slot) in
  let bw = slot.sl_band.Subband.w in
  slot.sl_planes <- Stdlib.max slot.sl_planes j.bj_planes;
  Array.iteri
    (fun i v ->
      let x = j.bj_x0 + (i mod j.bj_w) and y = j.bj_y0 + (i / j.bj_w) in
      slot.sl_coeffs.((y * bw) + x) <- v)
    block

let comps_of_slots ~ncomps ~nbands slots =
  Array.init ncomps (fun ci ->
      List.init nbands (fun bi ->
          let s = slots.((ci * nbands) + bi) in
          { bc_band = s.sl_band; bc_planes = s.sl_planes; bc_coeffs = s.sl_coeffs }))

let entropy_decode_tile ?max_passes ?(pool = Par.Pool.sequential) header tile =
  let fail msg = failwith ("Decoder: " ^ msg) in
  let nbands, slots, jobs = tile_jobs ~fail ?max_passes header tile in
  let blocks = Par.Pool.map pool jobs (decode_job slots) in
  Array.iteri (fun i j -> place_block slots j blocks.(i)) jobs;
  {
    ed_tile = tile;
    ed_comps =
      comps_of_slots ~ncomps:(Array.length tile.Codestream.comps) ~nbands slots;
  }

let place_int_band plane bc =
  let band = bc.bc_band in
  Array.iteri
    (fun i v ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Image.plane_set plane ~x ~y v)
    bc.bc_coeffs

let place_float_band m ~step bc =
  let band = bc.bc_band in
  let values = Quant.dequantise ~step bc.bc_coeffs in
  Array.iteri
    (fun i v ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Dwt97.matrix_set m ~x ~y v)
    values

let dequantise header decoded =
  let w = decoded.ed_tile.Codestream.tile_w in
  let h = decoded.ed_tile.Codestream.tile_h in
  match header.Codestream.mode with
  | Codestream.Lossless ->
    Ints
      (Array.map
         (fun bands ->
           let plane = Image.create_plane ~width:w ~height:h in
           List.iter
             (fun bc ->
               if bc.bc_band.Subband.w > 0 && bc.bc_band.Subband.h > 0 then
                 place_int_band plane bc)
             bands;
           plane)
         decoded.ed_comps)
  | Codestream.Lossy ->
    Floats
      (Array.map
         (fun bands ->
           let m = Dwt97.matrix_create ~w ~h in
           List.iter
             (fun bc ->
               if bc.bc_band.Subband.w > 0 && bc.bc_band.Subband.h > 0 then begin
                 let step =
                   Quant.step_for ~base_step:header.Codestream.base_step
                     ~levels:header.Codestream.levels
                     ~level:bc.bc_band.Subband.level
                     bc.bc_band.Subband.orientation
                 in
                 place_float_band m ~step bc
               end)
             bands;
           m)
         decoded.ed_comps)

let inverse_wavelet ?(pool = Par.Pool.sequential) header domain =
  let levels = header.Codestream.levels in
  (match domain with
  | Ints planes ->
    Par.Pool.iter pool planes (fun p -> Dwt53.inverse_plane p ~levels)
  | Floats ms -> Par.Pool.iter pool ms (fun m -> Dwt97.inverse m ~levels));
  domain

let inverse_colour_and_shift header tile domain =
  let bit_depth = header.Codestream.bit_depth in
  let int_planes =
    match domain with
    | Ints planes ->
      let arrays = Array.map (fun p -> p.Image.data) planes in
      if Array.length arrays = 3 then
        Colour.rct_inverse arrays.(0) arrays.(1) arrays.(2);
      arrays
    | Floats ms ->
      let arrays = Array.map (fun m -> Array.copy m.Dwt97.values) ms in
      if Array.length arrays = 3 then
        Colour.ict_inverse arrays.(0) arrays.(1) arrays.(2);
      Array.map (Array.map (fun v -> int_of_float (Float.round v))) arrays
  in
  Array.iter (Colour.dc_shift_inverse ~bit_depth) int_planes;
  let w = tile.Codestream.tile_w and h = tile.Codestream.tile_h in
  {
    Tile.index = tile.Codestream.tile_index;
    x0 = tile.Codestream.tile_x0;
    y0 = tile.Codestream.tile_y0;
    planes =
      Array.map (fun data -> { Image.width = w; height = h; data }) int_planes;
  }

(* -- reduced-resolution view ----------------------------------------

   Keep only the bands with level > discard (they occupy the top-left
   low-resolution corner of the Mallat layout), then invert the
   remaining levels. *)
let reduced_size n d =
  let rec shrink n k = if k = 0 then n else shrink (Subband.low_size n) (k - 1) in
  shrink n d

(* The reduced view of a tile: the header and segment a decode at
   [discard] levels of resolution loss actually runs on. Identity for
   [discard = 0]. *)
let reduced_view header ~discard tile =
  if discard = 0 then (header, tile)
  else begin
    let bands =
      Subband.decompose ~width:tile.Codestream.tile_w
        ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
    in
    let keep (band : Subband.band) = band.Subband.level > discard in
    let reduced_header =
      {
        header with
        Codestream.levels = header.Codestream.levels - discard;
        tile_w = reduced_size tile.Codestream.tile_w discard;
        tile_h = reduced_size tile.Codestream.tile_h discard;
        (* Band levels shift down by [discard]; shifting the base step
           the same way keeps every kept band's quantiser step equal to
           the one the encoder used. *)
        base_step =
          header.Codestream.base_step /. Float.pow 2.0 (float_of_int discard);
      }
    in
    (* The kept bands' levels shift down by [discard] so the geometry
       matches the reduced tile. *)
    let relevel seg =
      { seg with Codestream.seg_level = seg.Codestream.seg_level - discard }
    in
    let reduced_tile =
      {
        tile with
        Codestream.tile_x0 = tile.Codestream.tile_x0 asr discard;
        tile_y0 = tile.Codestream.tile_y0 asr discard;
        tile_w = reduced_header.Codestream.tile_w;
        tile_h = reduced_header.Codestream.tile_h;
        comps =
          Array.map
            (fun segments ->
              List.filteri (fun i _ -> keep (List.nth bands i)) segments
              |> List.map relevel)
            tile.Codestream.comps;
      }
    in
    (reduced_header, reduced_tile)
  end

(* Each skipped inverse level would have multiplied the lows by K
   (per dimension); compensate so brightness does not drift. *)
let compensate_k ~discard domain =
  match domain with
  | Ints _ -> () (* the 5/3 low-pass has unit DC gain *)
  | Floats ms ->
    if discard > 0 then begin
      let k2d = Float.pow 1.230174104914001 (2.0 *. float_of_int discard) in
      Array.iter
        (fun m ->
          Array.iteri (fun i v -> m.Dwt97.values.(i) <- v *. k2d) m.Dwt97.values)
        ms
    end

(* Blocks whose advertised plane count exceeds any plausible magnitude
   are refused up front on the robust paths (a corrupted count would
   otherwise cost 3 passes per bogus plane before failing). *)
let max_robust_planes = 30

(* -- flat decode path ------------------------------------------------

   The same job structure as [tile_jobs], decoded into one off-heap
   {!Plane} per component (Mallat layout, absolute band coordinates)
   through T1's per-domain scratch state. Worker domains write
   disjoint rectangles of the shared planes — race-free, and
   deterministic because where a block lands depends only on the job,
   never on the schedule. A block decode that raises blits nothing,
   so its rectangle simply stays zero: exactly the concealment the
   robust path wants. *)

type flat_job = {
  fj_comp : int;
  fj_x0 : int; (* absolute position in the component's Mallat plane *)
  fj_y0 : int;
  fj_w : int;
  fj_h : int;
  fj_planes : int;
  fj_orientation : Subband.orientation;
  fj_passes : string list;
}

type flat_tile = {
  ft_bands : Subband.band array;
  ft_planes : Plane.t array; (* one per component, tile_w x tile_h *)
  ft_jobs : flat_job array;
}

let flat_tile_jobs ~fail ?max_passes header tile =
  let bands =
    Subband.decompose_array ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let nbands = Array.length bands in
  let grids =
    Array.map
      (fun (band : Subband.band) ->
        Array.of_list
          (Codestream.block_grid ~code_block:header.Codestream.code_block
             ~w:band.Subband.w ~h:band.Subband.h))
      bands
  in
  let planes =
    Array.map
      (fun _ ->
        Plane.create ~w:tile.Codestream.tile_w ~h:tile.Codestream.tile_h)
      tile.Codestream.comps
  in
  let jobs = ref [] in
  Array.iteri
    (fun ci segments ->
      let segs = Array.of_list segments in
      if Array.length segs <> nbands then fail "band count mismatch";
      Array.iteri
        (fun bi (seg : Codestream.band_segment) ->
          let band = bands.(bi) in
          if
            band.Subband.w <> seg.Codestream.seg_w
            || band.Subband.h <> seg.Codestream.seg_h
            || band.Subband.orientation <> seg.Codestream.seg_orientation
          then fail "band geometry mismatch";
          let grid = grids.(bi) in
          let blocks = Array.of_list seg.Codestream.seg_blocks in
          if Array.length grid <> Array.length blocks then
            fail "code-block count mismatch";
          Array.iteri
            (fun k (x0, y0, w, h) ->
              let blk = blocks.(k) in
              let passes =
                match max_passes with
                | None -> blk.Codestream.blk_passes
                | Some n ->
                  List.filteri (fun i _ -> i < n) blk.Codestream.blk_passes
              in
              jobs :=
                {
                  fj_comp = ci;
                  fj_x0 = band.Subband.x0 + x0;
                  fj_y0 = band.Subband.y0 + y0;
                  fj_w = w;
                  fj_h = h;
                  fj_planes = blk.Codestream.blk_planes;
                  fj_orientation = band.Subband.orientation;
                  fj_passes = passes;
                }
                :: !jobs)
            grid)
        segs)
    tile.Codestream.comps;
  {
    ft_bands = bands;
    ft_planes = planes;
    ft_jobs = Array.of_list (List.rev !jobs);
  }

(* One flat job: scratch-decode the block on this domain and blit it
   into its component plane. *)
let decode_flat_job ft j =
  let block =
    T1.decode_block_scalable_scratch ~orientation:j.fj_orientation ~w:j.fj_w
      ~h:j.fj_h ~planes:j.fj_planes j.fj_passes
  in
  Plane.blit_block ft.ft_planes.(j.fj_comp) ~x0:j.fj_x0 ~y0:j.fj_y0 ~w:j.fj_w
    ~h:j.fj_h block

(* Containment semantics of the robust path: [false] marks a block
   whose codeword no longer decodes; its rectangle stays zero. *)
let decode_flat_job_robust ft j =
  if j.fj_planes > max_robust_planes then false
  else
    match decode_flat_job ft j with
    | () -> true
    | exception (Failure _ | Invalid_argument _ | Exit | Not_found) -> false

let flat_entropy ?max_passes ~pool header tile =
  let fail msg = failwith ("Decoder: " ^ msg) in
  let ft = flat_tile_jobs ~fail ?max_passes header tile in
  Par.Pool.iter pool ft.ft_jobs (decode_flat_job ft);
  ft

(* IQ over one band rectangle of a flat plane — [Quant.dequantise]
   per coefficient, without the boxed intermediate array. *)
let dequantise_flat_band m plane ~step (band : Subband.band) =
  for y = 0 to band.Subband.h - 1 do
    for x = 0 to band.Subband.w - 1 do
      let q =
        Plane.get plane ~x:(band.Subband.x0 + x) ~y:(band.Subband.y0 + y)
      in
      Dwt97.matrix_set m
        ~x:(band.Subband.x0 + x)
        ~y:(band.Subband.y0 + y)
        (Quant.dequantise_one ~step q)
    done
  done

(* The remaining stages over flat planes: IQ, K compensation, in-place
   IDWT, colour/DC-shift — step for step the boxed
   [dequantise] / [compensate_k] / [inverse_wavelet] /
   [inverse_colour_and_shift] chain, so the two paths agree bit for
   bit. *)
let finish_flat ?(pool = Par.Pool.sequential) ~discard header tile ft =
  let w = tile.Codestream.tile_w and h = tile.Codestream.tile_h in
  let levels = header.Codestream.levels in
  match header.Codestream.mode with
  | Codestream.Lossless ->
    Par.Pool.iter pool ft.ft_planes (fun p -> Dwt53.inverse_flat p ~levels);
    inverse_colour_and_shift header tile
      (Ints
         (Array.map
            (fun p -> { Image.width = w; height = h; data = Plane.to_array p })
            ft.ft_planes))
  | Codestream.Lossy ->
    let ms =
      Array.map
        (fun plane ->
          let m = Dwt97.matrix_create ~w ~h in
          Array.iter
            (fun (band : Subband.band) ->
              if band.Subband.w > 0 && band.Subband.h > 0 then begin
                let step =
                  Quant.step_for ~base_step:header.Codestream.base_step ~levels
                    ~level:band.Subband.level band.Subband.orientation
                in
                dequantise_flat_band m plane ~step band
              end)
            ft.ft_bands;
          m)
        ft.ft_planes
    in
    compensate_k ~discard (Floats ms);
    Par.Pool.iter pool ms (fun m -> Dwt97.inverse_ip m ~levels);
    inverse_colour_and_shift header tile (Floats ms)

(* -- whole-tile / whole-image decode -------------------------------- *)

let decode_tile ?max_passes ?(pool = Par.Pool.sequential) header tile =
  finish_flat ~pool ~discard:0 header tile
    (flat_entropy ?max_passes ~pool header tile)

let decode_region ?(pool = Par.Pool.sequential) ~x ~y ~w ~h data =
  let stream = parse data in
  let header = stream.Codestream.header in
  if w <= 0 || h <= 0 then invalid_arg "Decoder.decode_region: empty window";
  if
    x < 0 || y < 0
    || x + w > header.Codestream.width
    || y + h > header.Codestream.height
  then invalid_arg "Decoder.decode_region: window outside the image";
  let intersects tile =
    tile.Codestream.tile_x0 < x + w
    && tile.Codestream.tile_x0 + tile.Codestream.tile_w > x
    && tile.Codestream.tile_y0 < y + h
    && tile.Codestream.tile_y0 + tile.Codestream.tile_h > y
  in
  let needed = Array.of_list (List.filter intersects stream.Codestream.tiles) in
  let region = Image.create ~width:w ~height:h ~components:header.Codestream.components
      ~bit_depth:header.Codestream.bit_depth () in
  let decoded =
    Par.Pool.map pool needed (fun seg -> decode_tile ~pool header seg)
  in
  Array.iter
    (fun tile ->
      Array.iteri
        (fun c sub ->
          let plane = region.Image.planes.(c) in
          for ty = 0 to sub.Image.height - 1 do
            for tx = 0 to sub.Image.width - 1 do
              let gx = tile.Tile.x0 + tx and gy = tile.Tile.y0 + ty in
              if gx >= x && gx < x + w && gy >= y && gy < y + h then
                Image.plane_set plane ~x:(gx - x) ~y:(gy - y)
                  (Image.plane_get sub ~x:tx ~y:ty)
            done
          done)
        tile.Tile.planes)
    decoded;
  region

let decode_tile_reduced ?(pool = Par.Pool.sequential) header ~discard tile =
  let reduced_header, reduced_tile = reduced_view header ~discard tile in
  finish_flat ~pool ~discard reduced_header reduced_tile
    (flat_entropy ~pool reduced_header reduced_tile)

let decode_reduced ?(pool = Par.Pool.sequential) ~discard_levels data =
  let stream = parse data in
  let header = stream.Codestream.header in
  if discard_levels < 0 || discard_levels > header.Codestream.levels then
    invalid_arg "Decoder.decode_reduced: discard_levels";
  if
    header.Codestream.tile_w mod (1 lsl discard_levels) <> 0
    || header.Codestream.tile_h mod (1 lsl discard_levels) <> 0
  then invalid_arg "Decoder.decode_reduced: tile grid not aligned";
  let tiles =
    Array.to_list
      (Par.Pool.map pool
         (Array.of_list stream.Codestream.tiles)
         (decode_tile_reduced ~pool header ~discard:discard_levels))
  in
  Tile.assemble
    ~width:(reduced_size header.Codestream.width discard_levels)
    ~height:(reduced_size header.Codestream.height discard_levels)
    ~components:header.Codestream.components
    ~bit_depth:header.Codestream.bit_depth tiles

let decode_with ?max_passes ?(pool = Par.Pool.sequential) data =
  let stream = parse data in
  let header = stream.Codestream.header in
  let tiles =
    Array.to_list
      (Par.Pool.map pool
         (Array.of_list stream.Codestream.tiles)
         (decode_tile ?max_passes ~pool header))
  in
  Tile.assemble ~width:header.Codestream.width ~height:header.Codestream.height
    ~components:header.Codestream.components ~bit_depth:header.Codestream.bit_depth
    tiles

let decode ?pool data = decode_with ?pool data

let decode_progressive ?pool ~max_passes data =
  if max_passes < 0 then invalid_arg "Decoder.decode_progressive: max_passes";
  decode_with ~max_passes ?pool data

(* -- graceful degradation ------------------------------------------- *)

type report = {
  concealed_blocks : int;
  concealed_tiles : int;
  total_blocks : int;
  total_tiles : int;
}

let no_damage = function
  | { concealed_blocks = 0; concealed_tiles = 0; _ } -> true
  | _ -> false

let pp_report ppf r =
  Format.fprintf ppf "%d/%d blocks concealed, %d/%d tiles concealed"
    r.concealed_blocks r.total_blocks r.concealed_tiles r.total_tiles

(* Entropy decode in which each code block is a containment domain: a
   block whose MQ codeword no longer decodes is concealed (all-zero
   coefficients — mid-grey after the DC shift, the classic JPEG 2000
   error-resilience strategy) instead of poisoning the tile. Returns
   [None] when the tile's structure itself is inconsistent with the
   header geometry and the whole tile must be concealed. *)

let entropy_decode_tile_robust ?(pool = Par.Pool.sequential) header tile =
  match tile_jobs ~fail:(fun _ -> raise Exit) header tile with
  | exception Exit -> None
  | nbands, slots, jobs ->
    let results =
      Par.Pool.map pool jobs (fun j ->
          if j.bj_planes > max_robust_planes then None
          else
            try Some (decode_job slots j)
            with Failure _ | Invalid_argument _ | Exit | Not_found -> None)
    in
    let concealed = ref 0 in
    Array.iteri
      (fun i j ->
        match results.(i) with
        | Some block when Array.length block = j.bj_w * j.bj_h ->
          place_block slots j block
        | _ ->
          (* concealed: the block's coefficients stay zero *)
          incr concealed)
      jobs;
    Some
      ( {
          ed_tile = tile;
          ed_comps =
            comps_of_slots ~ncomps:(Array.length tile.Codestream.comps) ~nbands
              slots;
        },
        !concealed )

(* A fully concealed tile: every coefficient zero, same pipeline, so
   it renders as mid-grey at the right place and size. *)
let concealed_entropy_decoded header tile =
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let zero_comp () =
    List.map
      (fun (band : Subband.band) ->
        {
          bc_band = band;
          bc_planes = 0;
          bc_coeffs = Array.make (Stdlib.max 1 (band.Subband.w * band.Subband.h)) 0;
        })
      bands
  in
  {
    ed_tile = tile;
    ed_comps = Array.map (fun _ -> zero_comp ()) tile.Codestream.comps;
  }

let concealed_tile header tile =
  concealed_entropy_decoded header tile
  |> dequantise header |> inverse_wavelet header
  |> inverse_colour_and_shift header tile

let tile_block_count header tile =
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  List.fold_left
    (fun acc (band : Subband.band) ->
      acc
      + List.length
          (Codestream.block_grid ~code_block:header.Codestream.code_block
             ~w:band.Subband.w ~h:band.Subband.h))
    0 bands
  * Array.length tile.Codestream.comps

(* A tile segment standing in for one that never arrived: right grid
   cell, right component count, no entropy payload — exactly what
   [concealed_tile] needs to render mid-grey at the right place. *)
let absent_tile header ~index ~x0 ~y0 =
  let { Codestream.tile_w; tile_h; width; height; components; _ } = header in
  {
    Codestream.tile_index = index;
    tile_x0 = x0;
    tile_y0 = y0;
    tile_w = Stdlib.min tile_w (width - x0);
    tile_h = Stdlib.min tile_h (height - y0);
    comps = Array.make components [];
  }

(* Grid cells of [header] not covered by any tile in [present], in
   raster order — the tiles a truncated stream never delivered. *)
let missing_tiles (header : Codestream.header) present =
  let covered =
    List.map
      (fun (t : Codestream.tile_segment) ->
        (t.Codestream.tile_x0, t.Codestream.tile_y0))
      present
  in
  let tw = header.Codestream.tile_w and th = header.Codestream.tile_h in
  let cols = (header.Codestream.width + tw - 1) / tw in
  let rows = (header.Codestream.height + th - 1) / th in
  List.concat
    (List.init rows (fun ty ->
         List.init cols (fun tx ->
             ((ty * cols) + tx, tx * tw, ty * th))))
  |> List.filter_map (fun (index, x0, y0) ->
         if List.mem (x0, y0) covered then None
         else Some (absent_tile header ~index ~x0 ~y0))

(* The robust body over an explicit tile population: [present] tiles
   decode with per-block containment, [missing] ones are concealed
   whole. *)
let decode_robust_tiles ~pool header ~present ~missing =
  let decode_one tile =
    (* (tile image, concealed blocks, concealed tiles, total blocks):
       per-tile results stay pure so the fan-out over tiles cannot
       race on the report counters. *)
    let total = tile_block_count header tile in
    match flat_tile_jobs ~fail:(fun _ -> raise Exit) header tile with
    | exception Exit -> (concealed_tile header tile, 0, 1, total)
    | ft -> (
      let oks = Par.Pool.map pool ft.ft_jobs (decode_flat_job_robust ft) in
      let concealed =
        Array.fold_left (fun acc ok -> if ok then acc else acc + 1) 0 oks
      in
      match finish_flat ~discard:0 header tile ft with
      | t -> (t, concealed, 0, total)
      | exception (Failure _ | Invalid_argument _) ->
        (concealed_tile header tile, concealed, 1, total))
  in
  let results = Par.Pool.map pool (Array.of_list present) decode_one in
  let concealed_blocks = ref 0 and concealed_tiles = ref 0 in
  let total_blocks = ref 0 in
  let tiles =
    Array.to_list
      (Array.map
         (fun (tile, blocks, tiles, total) ->
           concealed_blocks := !concealed_blocks + blocks;
           concealed_tiles := !concealed_tiles + tiles;
           total_blocks := !total_blocks + total;
           tile)
         results)
  in
  let tiles =
    tiles
    @ List.map
        (fun tile ->
          concealed_tiles := !concealed_tiles + 1;
          total_blocks := !total_blocks + tile_block_count header tile;
          concealed_tile header tile)
        missing
  in
  let image =
    Tile.assemble ~width:header.Codestream.width
      ~height:header.Codestream.height
      ~components:header.Codestream.components
      ~bit_depth:header.Codestream.bit_depth tiles
  in
  Ok
    ( image,
      {
        concealed_blocks = !concealed_blocks;
        concealed_tiles = !concealed_tiles;
        total_blocks = !total_blocks;
        total_tiles = List.length present + List.length missing;
      } )

let decode_robust ?(pool = Par.Pool.sequential) data =
  match Codestream.parse_result data with
  | Ok stream ->
    decode_robust_tiles ~pool stream.Codestream.header
      ~present:stream.Codestream.tiles ~missing:[]
  | Error (Codestream.Truncated _ as e) -> (
    (* A truncated stream is the signature of a stalled or lossy
       ingest path: salvage every tile segment the prefix completed
       and conceal the grid cells that never arrived. Only a prefix
       too short to deliver the preamble remains an error. *)
    let s = Stream.create () in
    (match Stream.feed s data with
    | Stream.Need_more | Stream.Segment_ready | Stream.Done
    | Stream.Corrupt _ ->
      ());
    match Stream.header s with
    | None -> Error e
    | Some header ->
      let present = List.init (Stream.tiles_ready s) (Stream.tile s) in
      decode_robust_tiles ~pool header ~present
        ~missing:(missing_tiles header present))
  | Error e -> Error e

let psnr_impact ~reference (image, report) =
  if no_damage report then Float.infinity else Image.psnr reference image

(* -- staged tile decode (serving support) --------------------------- *)

(* A tile split into its independent entropy-decode jobs but not yet
   decoded: the serving layer's batch scheduler collects the jobs of
   many tiles across many requests into one array and runs them on a
   single [Par.Pool] batch, and finishes each tile from its slice of
   the results. The staged pipeline performs exactly the steps of
   [decode_tile] / [decode_tile_reduced], so a finished tile is
   bit-identical to the monolithic per-tile decode.

   The coefficients live in the flat planes of [flat_tile]. Two job
   protocols share them: [staged_run] decodes job [i] directly into
   the staged tile's planes (in place, no allocation — disjoint
   rectangles keep concurrent jobs of any staged tiles race-free) and
   [finish_staged_ok] only counts the concealments; the older
   [staged_job]/[finish_staged] pair returns each block as a fresh
   array and blits at finish time. Both orders write the same
   rectangles with the same values, so they are interchangeable bit
   for bit. *)

type staged = {
  st_header : Codestream.header;  (* effective (reduced) header *)
  st_tile : Codestream.tile_segment;  (* effective (reduced) segment *)
  st_discard : int;
  st_flat : flat_tile;
}

let stage_tile ?max_passes ?(discard = 0) header tile =
  if discard < 0 || discard > header.Codestream.levels then
    invalid_arg "Decoder.stage_tile: discard";
  let st_header, st_tile = reduced_view header ~discard tile in
  let fail msg = failwith ("Decoder: " ^ msg) in
  let st_flat = flat_tile_jobs ~fail ?max_passes st_header st_tile in
  { st_header; st_tile; st_discard = discard; st_flat }

let staged_jobs st = Array.length st.st_flat.ft_jobs

let staged_coded_bytes st = Codestream.segment_bytes st.st_tile

let staged_samples st =
  st.st_tile.Codestream.tile_w * st.st_tile.Codestream.tile_h
  * Array.length st.st_tile.Codestream.comps

(* Job count and coded bytes per code-block class (band orientation) —
   the profiler's T1 attribution. Pure function of the staged segment
   structure, so it agrees across reruns and pool schedules. *)
let staged_block_classes st =
  let blocks = Array.make 4 0 and bytes = Array.make 4 0 in
  Array.iter
    (fun j ->
      let i = Subband.orientation_code j.fj_orientation in
      blocks.(i) <- blocks.(i) + 1;
      bytes.(i) <-
        bytes.(i)
        + List.fold_left (fun acc p -> acc + String.length p) 0 j.fj_passes)
    st.st_flat.ft_jobs;
  List.filter_map
    (fun i ->
      if blocks.(i) = 0 then None
      else
        let name =
          match Subband.orientation_of_code i with
          | Subband.LL -> "LL"
          | Subband.HL -> "HL"
          | Subband.LH -> "LH"
          | Subband.HH -> "HH"
        in
        Some (name, blocks.(i), bytes.(i)))
    [ 0; 1; 2; 3 ]

let staged_run st i = decode_flat_job_robust st.st_flat st.st_flat.ft_jobs.(i)

let check_result_count st n =
  if n <> Array.length st.st_flat.ft_jobs then
    invalid_arg "Decoder.finish_staged: result count mismatch"

let finish_staged_ok st ok =
  check_result_count st (Array.length ok);
  let concealed =
    Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 ok
  in
  ( finish_flat ~discard:st.st_discard st.st_header st.st_tile st.st_flat,
    concealed )

(* Compat protocol: pure per-job decode returning a fresh block. *)
let staged_job st i =
  let j = st.st_flat.ft_jobs.(i) in
  if j.fj_planes > max_robust_planes then None
  else
    match
      T1.decode_block_scalable_scratch ~orientation:j.fj_orientation ~w:j.fj_w
        ~h:j.fj_h ~planes:j.fj_planes j.fj_passes
    with
    | block -> Some (Array.sub block 0 (j.fj_w * j.fj_h))
    | exception (Failure _ | Invalid_argument _ | Exit | Not_found) -> None

let finish_staged st results =
  check_result_count st (Array.length results);
  let concealed = ref 0 in
  Array.iteri
    (fun i j ->
      match results.(i) with
      | Some block ->
        Plane.blit_block st.st_flat.ft_planes.(j.fj_comp) ~x0:j.fj_x0
          ~y0:j.fj_y0 ~w:j.fj_w ~h:j.fj_h block
      | None -> incr concealed (* the block's coefficients stay zero *))
    st.st_flat.ft_jobs;
  ( finish_flat ~discard:st.st_discard st.st_header st.st_tile st.st_flat,
    !concealed )
