type band_coeffs = {
  bc_band : Subband.band;
  bc_planes : int;
  bc_coeffs : int array;
}

type entropy_decoded = {
  ed_tile : Codestream.tile_segment;
  ed_comps : band_coeffs list array;
}

type wavelet_domain =
  | Ints of Image.plane array
  | Floats of Dwt97.matrix array

let parse = Codestream.parse

(* -- entropy decoding ------------------------------------------------

   A tile is flattened up front into an array of independent per-code-
   block jobs plus one coefficient slot per (component, band): every
   job touches only its own rectangle of its own slot, so the jobs can
   run on a [Par.Pool] in any schedule and the merged coefficients are
   identical to the sequential decode. The flattening also de-lists
   the hot path: segments, grids and blocks are walked as arrays, not
   by [List.map2]/[List.length] per tile. *)

type block_job = {
  bj_slot : int; (* (component, band) slot index *)
  bj_x0 : int;
  bj_y0 : int;
  bj_w : int;
  bj_h : int;
  bj_planes : int;
  bj_passes : string list;
}

type band_slot = {
  sl_band : Subband.band;
  sl_coeffs : int array;
  mutable sl_planes : int;
}

(* Band geometry is recomputed from the tile dimensions so that a
   corrupted stream cannot make us write outside a plane. [fail] is
   called (and must raise) on any inconsistency between the segment
   structure and that geometry. *)
let tile_jobs ~fail ?max_passes header tile =
  let bands =
    Array.of_list
      (Subband.decompose ~width:tile.Codestream.tile_w
         ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels)
  in
  let nbands = Array.length bands in
  let grids =
    Array.map
      (fun (band : Subband.band) ->
        Array.of_list
          (Codestream.block_grid ~code_block:header.Codestream.code_block
             ~w:band.Subband.w ~h:band.Subband.h))
      bands
  in
  let ncomps = Array.length tile.Codestream.comps in
  let slots =
    Array.init (ncomps * nbands) (fun si ->
        let band = bands.(si mod nbands) in
        {
          sl_band = band;
          sl_coeffs =
            Array.make (Stdlib.max 1 (band.Subband.w * band.Subband.h)) 0;
          sl_planes = 0;
        })
  in
  let jobs = ref [] in
  Array.iteri
    (fun ci segments ->
      let segs = Array.of_list segments in
      if Array.length segs <> nbands then fail "band count mismatch";
      Array.iteri
        (fun bi (seg : Codestream.band_segment) ->
          let band = bands.(bi) in
          if
            band.Subband.w <> seg.Codestream.seg_w
            || band.Subband.h <> seg.Codestream.seg_h
            || band.Subband.orientation <> seg.Codestream.seg_orientation
          then fail "band geometry mismatch";
          let grid = grids.(bi) in
          let blocks = Array.of_list seg.Codestream.seg_blocks in
          if Array.length grid <> Array.length blocks then
            fail "code-block count mismatch";
          let slot = (ci * nbands) + bi in
          Array.iteri
            (fun k (x0, y0, w, h) ->
              let blk = blocks.(k) in
              let passes =
                match max_passes with
                | None -> blk.Codestream.blk_passes
                | Some n ->
                  List.filteri (fun i _ -> i < n) blk.Codestream.blk_passes
              in
              jobs :=
                {
                  bj_slot = slot;
                  bj_x0 = x0;
                  bj_y0 = y0;
                  bj_w = w;
                  bj_h = h;
                  bj_planes = blk.Codestream.blk_planes;
                  bj_passes = passes;
                }
                :: !jobs)
            grid)
        segs)
    tile.Codestream.comps;
  (nbands, slots, Array.of_list (List.rev !jobs))

let decode_job slots j =
  T1.decode_block_scalable
    ~orientation:slots.(j.bj_slot).sl_band.Subband.orientation ~w:j.bj_w
    ~h:j.bj_h ~planes:j.bj_planes j.bj_passes

let place_block slots j block =
  let slot = slots.(j.bj_slot) in
  let bw = slot.sl_band.Subband.w in
  slot.sl_planes <- Stdlib.max slot.sl_planes j.bj_planes;
  Array.iteri
    (fun i v ->
      let x = j.bj_x0 + (i mod j.bj_w) and y = j.bj_y0 + (i / j.bj_w) in
      slot.sl_coeffs.((y * bw) + x) <- v)
    block

let comps_of_slots ~ncomps ~nbands slots =
  Array.init ncomps (fun ci ->
      List.init nbands (fun bi ->
          let s = slots.((ci * nbands) + bi) in
          { bc_band = s.sl_band; bc_planes = s.sl_planes; bc_coeffs = s.sl_coeffs }))

let entropy_decode_tile ?max_passes ?(pool = Par.Pool.sequential) header tile =
  let fail msg = failwith ("Decoder: " ^ msg) in
  let nbands, slots, jobs = tile_jobs ~fail ?max_passes header tile in
  let blocks = Par.Pool.map pool jobs (decode_job slots) in
  Array.iteri (fun i j -> place_block slots j blocks.(i)) jobs;
  {
    ed_tile = tile;
    ed_comps =
      comps_of_slots ~ncomps:(Array.length tile.Codestream.comps) ~nbands slots;
  }

let place_int_band plane bc =
  let band = bc.bc_band in
  Array.iteri
    (fun i v ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Image.plane_set plane ~x ~y v)
    bc.bc_coeffs

let place_float_band m ~step bc =
  let band = bc.bc_band in
  let values = Quant.dequantise ~step bc.bc_coeffs in
  Array.iteri
    (fun i v ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Dwt97.matrix_set m ~x ~y v)
    values

let dequantise header decoded =
  let w = decoded.ed_tile.Codestream.tile_w in
  let h = decoded.ed_tile.Codestream.tile_h in
  match header.Codestream.mode with
  | Codestream.Lossless ->
    Ints
      (Array.map
         (fun bands ->
           let plane = Image.create_plane ~width:w ~height:h in
           List.iter
             (fun bc ->
               if bc.bc_band.Subband.w > 0 && bc.bc_band.Subband.h > 0 then
                 place_int_band plane bc)
             bands;
           plane)
         decoded.ed_comps)
  | Codestream.Lossy ->
    Floats
      (Array.map
         (fun bands ->
           let m = Dwt97.matrix_create ~w ~h in
           List.iter
             (fun bc ->
               if bc.bc_band.Subband.w > 0 && bc.bc_band.Subband.h > 0 then begin
                 let step =
                   Quant.step_for ~base_step:header.Codestream.base_step
                     ~levels:header.Codestream.levels
                     ~level:bc.bc_band.Subband.level
                     bc.bc_band.Subband.orientation
                 in
                 place_float_band m ~step bc
               end)
             bands;
           m)
         decoded.ed_comps)

let inverse_wavelet ?(pool = Par.Pool.sequential) header domain =
  let levels = header.Codestream.levels in
  (match domain with
  | Ints planes ->
    Par.Pool.iter pool planes (fun p -> Dwt53.inverse_plane p ~levels)
  | Floats ms -> Par.Pool.iter pool ms (fun m -> Dwt97.inverse m ~levels));
  domain

let inverse_colour_and_shift header tile domain =
  let bit_depth = header.Codestream.bit_depth in
  let int_planes =
    match domain with
    | Ints planes ->
      let arrays = Array.map (fun p -> p.Image.data) planes in
      if Array.length arrays = 3 then
        Colour.rct_inverse arrays.(0) arrays.(1) arrays.(2);
      arrays
    | Floats ms ->
      let arrays = Array.map (fun m -> Array.copy m.Dwt97.values) ms in
      if Array.length arrays = 3 then
        Colour.ict_inverse arrays.(0) arrays.(1) arrays.(2);
      Array.map (Array.map (fun v -> int_of_float (Float.round v))) arrays
  in
  Array.iter (Colour.dc_shift_inverse ~bit_depth) int_planes;
  let w = tile.Codestream.tile_w and h = tile.Codestream.tile_h in
  {
    Tile.index = tile.Codestream.tile_index;
    x0 = tile.Codestream.tile_x0;
    y0 = tile.Codestream.tile_y0;
    planes =
      Array.map (fun data -> { Image.width = w; height = h; data }) int_planes;
  }

let decode_tile ?max_passes ?(pool = Par.Pool.sequential) header tile =
  entropy_decode_tile ?max_passes ~pool header tile
  |> dequantise header
  |> inverse_wavelet ~pool header
  |> inverse_colour_and_shift header tile

let decode_region ?(pool = Par.Pool.sequential) ~x ~y ~w ~h data =
  let stream = parse data in
  let header = stream.Codestream.header in
  if w <= 0 || h <= 0 then invalid_arg "Decoder.decode_region: empty window";
  if
    x < 0 || y < 0
    || x + w > header.Codestream.width
    || y + h > header.Codestream.height
  then invalid_arg "Decoder.decode_region: window outside the image";
  let intersects tile =
    tile.Codestream.tile_x0 < x + w
    && tile.Codestream.tile_x0 + tile.Codestream.tile_w > x
    && tile.Codestream.tile_y0 < y + h
    && tile.Codestream.tile_y0 + tile.Codestream.tile_h > y
  in
  let needed = Array.of_list (List.filter intersects stream.Codestream.tiles) in
  let region = Image.create ~width:w ~height:h ~components:header.Codestream.components
      ~bit_depth:header.Codestream.bit_depth () in
  let decoded = Par.Pool.map pool needed (fun seg -> decode_tile ~pool header seg) in
  Array.iter
    (fun tile ->
      Array.iteri
        (fun c sub ->
          let plane = region.Image.planes.(c) in
          for ty = 0 to sub.Image.height - 1 do
            for tx = 0 to sub.Image.width - 1 do
              let gx = tile.Tile.x0 + tx and gy = tile.Tile.y0 + ty in
              if gx >= x && gx < x + w && gy >= y && gy < y + h then
                Image.plane_set plane ~x:(gx - x) ~y:(gy - y)
                  (Image.plane_get sub ~x:tx ~y:ty)
            done
          done)
        tile.Tile.planes)
    decoded;
  region

(* Reduced-resolution decode: keep only the bands with
   level > discard (they occupy the top-left low-resolution corner of
   the Mallat layout), then invert the remaining levels. *)
let reduced_size n d =
  let rec shrink n k = if k = 0 then n else shrink (Subband.low_size n) (k - 1) in
  shrink n d

(* The reduced view of a tile: the header and segment a decode at
   [discard] levels of resolution loss actually runs on. Identity for
   [discard = 0]. *)
let reduced_view header ~discard tile =
  if discard = 0 then (header, tile)
  else begin
    let bands =
      Subband.decompose ~width:tile.Codestream.tile_w
        ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
    in
    let keep (band : Subband.band) = band.Subband.level > discard in
    let reduced_header =
      {
        header with
        Codestream.levels = header.Codestream.levels - discard;
        tile_w = reduced_size tile.Codestream.tile_w discard;
        tile_h = reduced_size tile.Codestream.tile_h discard;
        (* Band levels shift down by [discard]; shifting the base step
           the same way keeps every kept band's quantiser step equal to
           the one the encoder used. *)
        base_step =
          header.Codestream.base_step /. Float.pow 2.0 (float_of_int discard);
      }
    in
    (* The kept bands' levels shift down by [discard] so the geometry
       matches the reduced tile. *)
    let relevel seg =
      { seg with Codestream.seg_level = seg.Codestream.seg_level - discard }
    in
    let reduced_tile =
      {
        tile with
        Codestream.tile_x0 = tile.Codestream.tile_x0 asr discard;
        tile_y0 = tile.Codestream.tile_y0 asr discard;
        tile_w = reduced_header.Codestream.tile_w;
        tile_h = reduced_header.Codestream.tile_h;
        comps =
          Array.map
            (fun segments ->
              List.filteri (fun i _ -> keep (List.nth bands i)) segments
              |> List.map relevel)
            tile.Codestream.comps;
      }
    in
    (reduced_header, reduced_tile)
  end

(* Each skipped inverse level would have multiplied the lows by K
   (per dimension); compensate so brightness does not drift. *)
let compensate_k ~discard domain =
  match domain with
  | Ints _ -> () (* the 5/3 low-pass has unit DC gain *)
  | Floats ms ->
    if discard > 0 then begin
      let k2d = Float.pow 1.230174104914001 (2.0 *. float_of_int discard) in
      Array.iter
        (fun m ->
          Array.iteri (fun i v -> m.Dwt97.values.(i) <- v *. k2d) m.Dwt97.values)
        ms
    end

let decode_tile_reduced ?(pool = Par.Pool.sequential) header ~discard tile =
  let reduced_header, reduced_tile = reduced_view header ~discard tile in
  let domain =
    entropy_decode_tile ~pool reduced_header reduced_tile
    |> dequantise reduced_header
  in
  compensate_k ~discard domain;
  inverse_wavelet ~pool reduced_header domain
  |> inverse_colour_and_shift reduced_header reduced_tile

let decode_reduced ?(pool = Par.Pool.sequential) ~discard_levels data =
  let stream = parse data in
  let header = stream.Codestream.header in
  if discard_levels < 0 || discard_levels > header.Codestream.levels then
    invalid_arg "Decoder.decode_reduced: discard_levels";
  if
    header.Codestream.tile_w mod (1 lsl discard_levels) <> 0
    || header.Codestream.tile_h mod (1 lsl discard_levels) <> 0
  then invalid_arg "Decoder.decode_reduced: tile grid not aligned";
  let tiles =
    Array.to_list
      (Par.Pool.map pool
         (Array.of_list stream.Codestream.tiles)
         (decode_tile_reduced ~pool header ~discard:discard_levels))
  in
  Tile.assemble
    ~width:(reduced_size header.Codestream.width discard_levels)
    ~height:(reduced_size header.Codestream.height discard_levels)
    ~components:header.Codestream.components
    ~bit_depth:header.Codestream.bit_depth tiles

let decode_with ?max_passes ?(pool = Par.Pool.sequential) data =
  let stream = parse data in
  let header = stream.Codestream.header in
  let tiles =
    Array.to_list
      (Par.Pool.map pool
         (Array.of_list stream.Codestream.tiles)
         (decode_tile ?max_passes ~pool header))
  in
  Tile.assemble ~width:header.Codestream.width ~height:header.Codestream.height
    ~components:header.Codestream.components ~bit_depth:header.Codestream.bit_depth
    tiles

let decode ?pool data = decode_with ?pool data

let decode_progressive ?pool ~max_passes data =
  if max_passes < 0 then invalid_arg "Decoder.decode_progressive: max_passes";
  decode_with ~max_passes ?pool data

(* -- graceful degradation ------------------------------------------- *)

type report = {
  concealed_blocks : int;
  concealed_tiles : int;
  total_blocks : int;
  total_tiles : int;
}

let no_damage = function
  | { concealed_blocks = 0; concealed_tiles = 0; _ } -> true
  | _ -> false

let pp_report ppf r =
  Format.fprintf ppf "%d/%d blocks concealed, %d/%d tiles concealed"
    r.concealed_blocks r.total_blocks r.concealed_tiles r.total_tiles

(* Entropy decode in which each code block is a containment domain: a
   block whose MQ codeword no longer decodes is concealed (all-zero
   coefficients — mid-grey after the DC shift, the classic JPEG 2000
   error-resilience strategy) instead of poisoning the tile. Returns
   [None] when the tile's structure itself is inconsistent with the
   header geometry and the whole tile must be concealed. *)
let max_robust_planes = 30

let entropy_decode_tile_robust ?(pool = Par.Pool.sequential) header tile =
  match tile_jobs ~fail:(fun _ -> raise Exit) header tile with
  | exception Exit -> None
  | nbands, slots, jobs ->
    let results =
      Par.Pool.map pool jobs (fun j ->
          if j.bj_planes > max_robust_planes then None
          else
            try Some (decode_job slots j)
            with Failure _ | Invalid_argument _ | Exit | Not_found -> None)
    in
    let concealed = ref 0 in
    Array.iteri
      (fun i j ->
        match results.(i) with
        | Some block when Array.length block = j.bj_w * j.bj_h ->
          place_block slots j block
        | _ ->
          (* concealed: the block's coefficients stay zero *)
          incr concealed)
      jobs;
    Some
      ( {
          ed_tile = tile;
          ed_comps =
            comps_of_slots ~ncomps:(Array.length tile.Codestream.comps) ~nbands
              slots;
        },
        !concealed )

(* A fully concealed tile: every coefficient zero, same pipeline, so
   it renders as mid-grey at the right place and size. *)
let concealed_entropy_decoded header tile =
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  let zero_comp () =
    List.map
      (fun (band : Subband.band) ->
        {
          bc_band = band;
          bc_planes = 0;
          bc_coeffs = Array.make (Stdlib.max 1 (band.Subband.w * band.Subband.h)) 0;
        })
      bands
  in
  {
    ed_tile = tile;
    ed_comps = Array.map (fun _ -> zero_comp ()) tile.Codestream.comps;
  }

let concealed_tile header tile =
  concealed_entropy_decoded header tile
  |> dequantise header |> inverse_wavelet header
  |> inverse_colour_and_shift header tile

let tile_block_count header tile =
  let bands =
    Subband.decompose ~width:tile.Codestream.tile_w
      ~height:tile.Codestream.tile_h ~levels:header.Codestream.levels
  in
  List.fold_left
    (fun acc (band : Subband.band) ->
      acc
      + List.length
          (Codestream.block_grid ~code_block:header.Codestream.code_block
             ~w:band.Subband.w ~h:band.Subband.h))
    0 bands
  * Array.length tile.Codestream.comps

(* A tile segment standing in for one that never arrived: right grid
   cell, right component count, no entropy payload — exactly what
   [concealed_tile] needs to render mid-grey at the right place. *)
let absent_tile header ~index ~x0 ~y0 =
  let { Codestream.tile_w; tile_h; width; height; components; _ } = header in
  {
    Codestream.tile_index = index;
    tile_x0 = x0;
    tile_y0 = y0;
    tile_w = Stdlib.min tile_w (width - x0);
    tile_h = Stdlib.min tile_h (height - y0);
    comps = Array.make components [];
  }

(* Grid cells of [header] not covered by any tile in [present], in
   raster order — the tiles a truncated stream never delivered. *)
let missing_tiles (header : Codestream.header) present =
  let covered =
    List.map
      (fun (t : Codestream.tile_segment) ->
        (t.Codestream.tile_x0, t.Codestream.tile_y0))
      present
  in
  let tw = header.Codestream.tile_w and th = header.Codestream.tile_h in
  let cols = (header.Codestream.width + tw - 1) / tw in
  let rows = (header.Codestream.height + th - 1) / th in
  List.concat
    (List.init rows (fun ty ->
         List.init cols (fun tx ->
             ((ty * cols) + tx, tx * tw, ty * th))))
  |> List.filter_map (fun (index, x0, y0) ->
         if List.mem (x0, y0) covered then None
         else Some (absent_tile header ~index ~x0 ~y0))

(* The robust body over an explicit tile population: [present] tiles
   decode with per-block containment, [missing] ones are concealed
   whole. *)
let decode_robust_tiles ~pool header ~present ~missing =
  let decode_one tile =
    (* (tile image, concealed blocks, concealed tiles, total blocks):
       per-tile results stay pure so the fan-out over tiles cannot
       race on the report counters. *)
    let total = tile_block_count header tile in
    match entropy_decode_tile_robust ~pool header tile with
    | Some (ed, concealed) ->
      (match
         dequantise header ed |> inverse_wavelet header
         |> inverse_colour_and_shift header tile
       with
      | t -> (t, concealed, 0, total)
      | exception (Failure _ | Invalid_argument _) ->
        (concealed_tile header tile, concealed, 1, total))
    | None -> (concealed_tile header tile, 0, 1, total)
  in
  let results = Par.Pool.map pool (Array.of_list present) decode_one in
  let concealed_blocks = ref 0 and concealed_tiles = ref 0 in
  let total_blocks = ref 0 in
  let tiles =
    Array.to_list
      (Array.map
         (fun (tile, blocks, tiles, total) ->
           concealed_blocks := !concealed_blocks + blocks;
           concealed_tiles := !concealed_tiles + tiles;
           total_blocks := !total_blocks + total;
           tile)
         results)
  in
  let tiles =
    tiles
    @ List.map
        (fun tile ->
          concealed_tiles := !concealed_tiles + 1;
          total_blocks := !total_blocks + tile_block_count header tile;
          concealed_tile header tile)
        missing
  in
  let image =
    Tile.assemble ~width:header.Codestream.width
      ~height:header.Codestream.height
      ~components:header.Codestream.components
      ~bit_depth:header.Codestream.bit_depth tiles
  in
  Ok
    ( image,
      {
        concealed_blocks = !concealed_blocks;
        concealed_tiles = !concealed_tiles;
        total_blocks = !total_blocks;
        total_tiles = List.length present + List.length missing;
      } )

let decode_robust ?(pool = Par.Pool.sequential) data =
  match Codestream.parse_result data with
  | Ok stream ->
    decode_robust_tiles ~pool stream.Codestream.header
      ~present:stream.Codestream.tiles ~missing:[]
  | Error (Codestream.Truncated _ as e) -> (
    (* A truncated stream is the signature of a stalled or lossy
       ingest path: salvage every tile segment the prefix completed
       and conceal the grid cells that never arrived. Only a prefix
       too short to deliver the preamble remains an error. *)
    let s = Stream.create () in
    (match Stream.feed s data with
    | Stream.Need_more | Stream.Segment_ready | Stream.Done
    | Stream.Corrupt _ ->
      ());
    match Stream.header s with
    | None -> Error e
    | Some header ->
      let present = List.init (Stream.tiles_ready s) (Stream.tile s) in
      decode_robust_tiles ~pool header ~present
        ~missing:(missing_tiles header present))
  | Error e -> Error e

let psnr_impact ~reference (image, report) =
  if no_damage report then Float.infinity else Image.psnr reference image

(* -- staged tile decode (serving support) --------------------------- *)

(* A tile split into its independent entropy-decode jobs but not yet
   decoded: the serving layer's batch scheduler collects the jobs of
   many tiles across many requests into one array, runs them on a
   single [Par.Pool.map], and finishes each tile from its slice of
   the results. The staged pipeline performs exactly the steps of
   [decode_tile] / [decode_tile_reduced], so a finished tile is
   bit-identical to the monolithic per-tile decode. *)

type staged = {
  st_header : Codestream.header;  (* effective (reduced) header *)
  st_tile : Codestream.tile_segment;  (* effective (reduced) segment *)
  st_discard : int;
  st_nbands : int;
  st_slots : band_slot array;
  st_jobs : block_job array;
}

let stage_tile ?max_passes ?(discard = 0) header tile =
  if discard < 0 || discard > header.Codestream.levels then
    invalid_arg "Decoder.stage_tile: discard";
  let st_header, st_tile = reduced_view header ~discard tile in
  let fail msg = failwith ("Decoder: " ^ msg) in
  let nbands, slots, jobs = tile_jobs ~fail ?max_passes st_header st_tile in
  {
    st_header;
    st_tile;
    st_discard = discard;
    st_nbands = nbands;
    st_slots = slots;
    st_jobs = jobs;
  }

let staged_jobs st = Array.length st.st_jobs

let staged_coded_bytes st = Codestream.segment_bytes st.st_tile

let staged_samples st =
  st.st_tile.Codestream.tile_w * st.st_tile.Codestream.tile_h
  * Array.length st.st_tile.Codestream.comps

(* Job count and coded bytes per code-block class (band orientation) —
   the profiler's T1 attribution. Pure function of the staged segment
   structure, so it agrees across reruns and pool schedules. *)
let staged_block_classes st =
  let blocks = Array.make 4 0 and bytes = Array.make 4 0 in
  Array.iter
    (fun j ->
      let o = st.st_slots.(j.bj_slot).sl_band.Subband.orientation in
      let i = Subband.orientation_code o in
      blocks.(i) <- blocks.(i) + 1;
      bytes.(i) <-
        bytes.(i)
        + List.fold_left (fun acc p -> acc + String.length p) 0 j.bj_passes)
    st.st_jobs;
  List.filter_map
    (fun i ->
      if blocks.(i) = 0 then None
      else
        let name =
          match Subband.orientation_of_code i with
          | Subband.LL -> "LL"
          | Subband.HL -> "HL"
          | Subband.LH -> "LH"
          | Subband.HH -> "HH"
        in
        Some (name, blocks.(i), bytes.(i)))
    [ 0; 1; 2; 3 ]

(* Pure per-job decode with the containment semantics of the robust
   path: [None] marks a block whose codeword no longer decodes. Only
   [st_slots] orientations are read, so any number of jobs of any
   staged tiles may run concurrently on pool workers. *)
let staged_job st i =
  let j = st.st_jobs.(i) in
  if j.bj_planes > max_robust_planes then None
  else
    match decode_job st.st_slots j with
    | block when Array.length block = j.bj_w * j.bj_h -> Some block
    | _ -> None
    | exception (Failure _ | Invalid_argument _ | Exit | Not_found) -> None

let finish_staged st results =
  if Array.length results <> Array.length st.st_jobs then
    invalid_arg "Decoder.finish_staged: result count mismatch";
  let concealed = ref 0 in
  Array.iteri
    (fun i j ->
      match results.(i) with
      | Some block -> place_block st.st_slots j block
      | None -> incr concealed (* the block's coefficients stay zero *))
    st.st_jobs;
  let decoded =
    {
      ed_tile = st.st_tile;
      ed_comps =
        comps_of_slots
          ~ncomps:(Array.length st.st_tile.Codestream.comps)
          ~nbands:st.st_nbands st.st_slots;
    }
  in
  let domain = dequantise st.st_header decoded in
  compensate_k ~discard:st.st_discard domain;
  let tile =
    inverse_wavelet st.st_header domain
    |> inverse_colour_and_shift st.st_header st.st_tile
  in
  (tile, !concealed)
