(* Whole-sample symmetric reflection of index [i] into [0, n). *)
let reflect n i = if i < 0 then -i else if i >= n then (2 * n) - 2 - i else i

let forward_1d src =
  let n = Array.length src in
  if n <= 1 then Array.copy src
  else begin
    let nl = (n + 1) / 2 and nh = n / 2 in
    let x i = src.(reflect n i) in
    let d = Array.make nh 0 in
    for i = 0 to nh - 1 do
      d.(i) <- x ((2 * i) + 1) - ((x (2 * i) + x ((2 * i) + 2)) asr 1)
    done;
    let dd i = if i < 0 then d.(0) else if i >= nh then d.(nh - 1) else d.(i) in
    let dst = Array.make n 0 in
    for i = 0 to nl - 1 do
      dst.(i) <- x (2 * i) + ((dd (i - 1) + dd i + 2) asr 2)
    done;
    Array.blit d 0 dst nl nh;
    dst
  end

let inverse_1d src =
  let n = Array.length src in
  if n <= 1 then Array.copy src
  else begin
    let nl = (n + 1) / 2 and nh = n / 2 in
    let d i = src.(nl + i) in
    let dd i = if i < 0 then d 0 else if i >= nh then d (nh - 1) else d i in
    let even = Array.make nl 0 in
    for i = 0 to nl - 1 do
      even.(i) <- src.(i) - ((dd (i - 1) + dd i + 2) asr 2)
    done;
    let ev j = if j >= nl then even.(nl - 1) else even.(j) in
    let dst = Array.make n 0 in
    for i = 0 to nl - 1 do
      dst.(2 * i) <- even.(i)
    done;
    for i = 0 to nh - 1 do
      dst.((2 * i) + 1) <- d i + ((even.(i) + ev (i + 1)) asr 1)
    done;
    dst
  end

(* Row/column access into the top-left [w]x[h] region of a plane. *)
let get_row plane ~w y =
  Array.init w (fun x -> Image.plane_get plane ~x ~y)

let set_row plane y row =
  Array.iteri (fun x v -> Image.plane_set plane ~x ~y v) row

let get_col plane ~h x =
  Array.init h (fun y -> Image.plane_get plane ~x ~y)

let set_col plane x col =
  Array.iteri (fun y v -> Image.plane_set plane ~x ~y v) col

let forward_level plane ~w ~h =
  for y = 0 to h - 1 do
    set_row plane y (forward_1d (get_row plane ~w y))
  done;
  for x = 0 to w - 1 do
    set_col plane x (forward_1d (get_col plane ~h x))
  done

let inverse_level plane ~w ~h =
  for x = 0 to w - 1 do
    set_col plane x (inverse_1d (get_col plane ~h x))
  done;
  for y = 0 to h - 1 do
    set_row plane y (inverse_1d (get_row plane ~w y))
  done

let check_levels levels =
  if levels < 0 then invalid_arg "Dwt53: negative level count"

let forward_plane plane ~levels =
  check_levels levels;
  let rec loop level w h =
    if level < levels then begin
      forward_level plane ~w ~h;
      loop (level + 1) (Subband.low_size w) (Subband.low_size h)
    end
  in
  loop 0 plane.Image.width plane.Image.height

let inverse_plane plane ~levels =
  check_levels levels;
  (* Undo from the deepest level outwards. *)
  let rec sizes level w h acc =
    if level = levels then acc
    else sizes (level + 1) (Subband.low_size w) (Subband.low_size h) ((w, h) :: acc)
  in
  List.iter
    (fun (w, h) -> inverse_level plane ~w ~h)
    (sizes 0 plane.Image.width plane.Image.height [])

(* -- in-place inverse over a flat plane ------------------------------

   The same lifting arithmetic as [inverse_1d] (integer, so the
   result is bit-identical), but reading and writing a {!Plane}
   directly through two per-domain scratch lines instead of
   allocating [Array.init] rows/columns and intermediate arrays per
   line — on the parallel path those per-line allocations are minor-
   heap churn every worker domain pays. *)

(* [even.(i)] of a line whose [n]-prefix sits in [line]; shared by
   the row and column passes below. *)
let flat_even line even n =
  let nl = (n + 1) / 2 and nh = n / 2 in
  for i = 0 to nl - 1 do
    let dm = line.(nl + (if i = 0 then 0 else i - 1)) in
    let d0 = line.(nl + (if i >= nh then nh - 1 else i)) in
    even.(i) <- line.(i) - ((dm + d0 + 2) asr 2)
  done

let inverse_level_flat p ~w ~h =
  let pw = Plane.width p in
  let line = Plane.Scratch.ints (Stdlib.max w h) in
  let even = Plane.Scratch.ints2 ((Stdlib.max w h / 2) + 1) in
  (* Columns first, then rows — the order of [inverse_level]. *)
  if h > 1 then begin
    let nl = (h + 1) / 2 and nh = h / 2 in
    for x = 0 to w - 1 do
      for i = 0 to h - 1 do
        line.(i) <- Plane.unsafe_get p ((i * pw) + x)
      done;
      flat_even line even h;
      for i = 0 to nl - 1 do
        Plane.unsafe_set p ((2 * i * pw) + x) even.(i)
      done;
      for i = 0 to nh - 1 do
        let e1 = if i + 1 >= nl then even.(nl - 1) else even.(i + 1) in
        Plane.unsafe_set p
          ((((2 * i) + 1) * pw) + x)
          (line.(nl + i) + ((even.(i) + e1) asr 1))
      done
    done
  end;
  if w > 1 then begin
    let nl = (w + 1) / 2 and nh = w / 2 in
    for y = 0 to h - 1 do
      let base = y * pw in
      for i = 0 to w - 1 do
        line.(i) <- Plane.unsafe_get p (base + i)
      done;
      flat_even line even w;
      for i = 0 to nl - 1 do
        Plane.unsafe_set p (base + (2 * i)) even.(i)
      done;
      for i = 0 to nh - 1 do
        let e1 = if i + 1 >= nl then even.(nl - 1) else even.(i + 1) in
        Plane.unsafe_set p
          (base + (2 * i) + 1)
          (line.(nl + i) + ((even.(i) + e1) asr 1))
      done
    done
  end

let inverse_flat p ~levels =
  check_levels levels;
  let rec sizes level w h acc =
    if level = levels then acc
    else sizes (level + 1) (Subband.low_size w) (Subband.low_size h) ((w, h) :: acc)
  in
  List.iter
    (fun (w, h) -> inverse_level_flat p ~w ~h)
    (sizes 0 (Plane.width p) (Plane.height p) [])
