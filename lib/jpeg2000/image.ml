type plane = { width : int; height : int; data : int array }

type t = { planes : plane array; bit_depth : int }

let create_plane ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Image.create_plane: size";
  { width; height; data = Array.make (width * height) 0 }

let plane_get p ~x ~y = p.data.((y * p.width) + x)
let plane_set p ~x ~y v = p.data.((y * p.width) + x) <- v

let blit_row ~src ~src_x ~src_y ~dst ~dst_x ~dst_y ~len =
  if
    len < 0 || src_x < 0 || src_x + len > src.width || src_y < 0
    || src_y >= src.height || dst_x < 0
    || dst_x + len > dst.width
    || dst_y < 0 || dst_y >= dst.height
  then invalid_arg "Image.blit_row: row out of bounds";
  Array.blit src.data ((src_y * src.width) + src_x) dst.data
    ((dst_y * dst.width) + dst_x)
    len

let create ~width ~height ~components ?(bit_depth = 8) () =
  if components <= 0 then invalid_arg "Image.create: components";
  if bit_depth < 1 || bit_depth > 16 then invalid_arg "Image.create: bit_depth";
  {
    planes = Array.init components (fun _ -> create_plane ~width ~height);
    bit_depth;
  }

let width t = t.planes.(0).width
let height t = t.planes.(0).height
let components t = Array.length t.planes
let max_sample t = (1 lsl t.bit_depth) - 1

let same_shape a b =
  width a = width b && height a = height b && components a = components b

let equal a b =
  same_shape a b && a.bit_depth = b.bit_depth
  && Array.for_all2 (fun p q -> p.data = q.data) a.planes b.planes

let mse a b =
  if not (same_shape a b) then invalid_arg "Image.mse: shape mismatch";
  let total = ref 0.0 in
  let samples = width a * height a * components a in
  Array.iteri
    (fun c p ->
      let q = b.planes.(c) in
      Array.iteri
        (fun i v ->
          let d = float_of_int (v - q.data.(i)) in
          total := !total +. (d *. d))
        p.data)
    a.planes;
  !total /. float_of_int samples

let psnr a b =
  let e = mse a b in
  if e = 0.0 then infinity
  else
    let peak = float_of_int (max_sample a) in
    10.0 *. log10 (peak *. peak /. e)

(* -- Synthetic generators ----------------------------------------- *)

let fill t f =
  Array.iteri
    (fun c p ->
      for y = 0 to p.height - 1 do
        for x = 0 to p.width - 1 do
          plane_set p ~x ~y (f ~c ~x ~y land max_sample t)
        done
      done)
    t.planes;
  t

let gradient ~width ~height ~components =
  let t = create ~width ~height ~components () in
  fill t (fun ~c ~x ~y ->
      ((x * 255 / Stdlib.max 1 (width - 1))
      + (y * 255 / Stdlib.max 1 (height - 1))
      + (c * 37))
      / 2)

let checkerboard ~width ~height ~components ?(square = 8) () =
  if square <= 0 then invalid_arg "Image.checkerboard: square";
  let t = create ~width ~height ~components () in
  fill t (fun ~c ~x ~y ->
      if (x / square + y / square + c) mod 2 = 0 then 32 else 224)

(* Numerical Recipes LCG: deterministic across platforms. *)
let lcg state =
  state := (!state * 1664525 + 1013904223) land 0x3FFFFFFF;
  !state

let noise ~width ~height ~components ~seed =
  let state = ref (seed land 0x3FFFFFFF) in
  let t = create ~width ~height ~components () in
  fill t (fun ~c:_ ~x:_ ~y:_ -> lcg state lsr 8)

let smooth ~width ~height ~components ~seed =
  let state = ref (seed land 0x3FFFFFFF) in
  let rand_float () = float_of_int (lcg state) /. 1073741824.0 in
  let waves =
    Array.init 6 (fun _ ->
        let fx = rand_float () *. 6.0 /. float_of_int width in
        let fy = rand_float () *. 6.0 /. float_of_int height in
        let phase = rand_float () *. 6.2831853 in
        let amp = 20.0 +. (rand_float () *. 25.0) in
        (fx, fy, phase, amp))
  in
  let t = create ~width ~height ~components () in
  fill t (fun ~c ~x ~y ->
      let v = ref 128.0 in
      Array.iteri
        (fun i (fx, fy, phase, amp) ->
          let shift = float_of_int (c * (i + 1)) *. 0.7 in
          v :=
            !v
            +. amp
               *. sin
                    ((fx *. float_of_int x *. 6.2831853)
                    +. (fy *. float_of_int y *. 6.2831853)
                    +. phase +. shift))
        waves;
      let clamped = Stdlib.max 0.0 (Stdlib.min 255.0 !v) in
      int_of_float clamped)

(* -- PNM ------------------------------------------------------------ *)

let to_pnm t =
  if t.bit_depth <> 8 then invalid_arg "Image.to_pnm: bit depth must be 8";
  let w = width t and h = height t in
  let buffer = Buffer.create ((w * h * components t) + 32) in
  (match components t with
  | 1 -> Buffer.add_string buffer (Printf.sprintf "P5\n%d %d\n255\n" w h)
  | 3 -> Buffer.add_string buffer (Printf.sprintf "P6\n%d %d\n255\n" w h)
  | n -> invalid_arg (Printf.sprintf "Image.to_pnm: %d components" n));
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      Array.iter
        (fun p -> Buffer.add_char buffer (Char.chr (plane_get p ~x ~y land 0xFF)))
        t.planes
    done
  done;
  Buffer.contents buffer

let of_pnm s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = failwith ("Image.of_pnm: " ^ msg) in
  let peek () = if !pos >= len then fail "truncated header" else s.[!pos] in
  let skip_ws_and_comments () =
    let rec loop () =
      if !pos < len then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
          incr pos;
          loop ()
        | '#' ->
          while !pos < len && s.[!pos] <> '\n' do
            incr pos
          done;
          loop ()
        | _ -> ()
    in
    loop ()
  in
  let read_token () =
    skip_ws_and_comments ();
    let start = !pos in
    while !pos < len && not (List.mem s.[!pos] [ ' '; '\t'; '\n'; '\r' ]) do
      incr pos
    done;
    if !pos = start then fail "expected token";
    String.sub s start (!pos - start)
  in
  let read_int () =
    match int_of_string_opt (read_token ()) with
    | Some v -> v
    | None -> fail "expected integer"
  in
  let magic = read_token () in
  let components =
    match magic with "P5" -> 1 | "P6" -> 3 | _ -> fail "bad magic"
  in
  let w = read_int () in
  let h = read_int () in
  let maxval = read_int () in
  if maxval <> 255 then fail "only maxval 255 supported";
  (* Exactly one whitespace byte separates header and raster. *)
  (match peek () with
  | ' ' | '\t' | '\n' | '\r' -> incr pos
  | _ -> fail "missing raster separator");
  if len - !pos < w * h * components then fail "truncated raster";
  let t = create ~width:w ~height:h ~components () in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      Array.iter
        (fun p ->
          plane_set p ~x ~y (Char.code s.[!pos]);
          incr pos)
        t.planes
    done
  done;
  t

let save_pnm t path =
  let oc = open_out_bin path in
  (try output_string oc (to_pnm t)
   with exn ->
     close_out oc;
     raise exn);
  close_out oc

let load_pnm path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  of_pnm data
