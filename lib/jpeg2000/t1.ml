(* Context numbering: 0-8 zero coding, 9-13 sign coding, 14-16
   magnitude refinement, 17 run-length, 18 uniform. *)
let ctx_rl = 17
let ctx_uni = 18
let num_contexts = 19

(* Initial context states, ISO Table D.7. *)
let fresh_contexts () =
  Array.init num_contexts (fun i ->
      if i = 0 then Mq.context ~index:4 ()
      else if i = ctx_rl then Mq.context ~index:3 ()
      else if i = ctx_uni then Mq.context ~index:46 ()
      else Mq.context ())

(* -- packed coefficient state ----------------------------------------

   One flags word per coefficient replaces the five per-coefficient
   byte arrays (significant/sign/became/visited/refined) the coder
   used to probe: the word carries the coefficient's own state plus
   the significance of all eight neighbours and the sign of the four
   horizontal/vertical ones, maintained incrementally when a
   coefficient becomes significant. Context formation then reads one
   word and one LUT entry instead of paying eight bounds-checked
   probes per decision (the OpenJPEG flag layout idea). The array is
   padded by one cell on every side so neighbour updates never branch
   on block edges. *)

let f_sig = 0x01 (* this coefficient is significant *)
let f_visited = 0x02 (* coded by an earlier pass of this bit-plane *)
let f_refined = 0x04 (* magnitude-refined at least once *)
let f_became = 0x08 (* became significant in the current bit-plane *)
let f_sign = 0x10 (* this coefficient is negative *)

(* Neighbour significance, bits 5-12: W E N S NW NE SW SE. *)
let nb_shift = 5
let f_nb_w = 1 lsl 5
let f_nb_e = 1 lsl 6
let f_nb_n = 1 lsl 7
let f_nb_s = 1 lsl 8
let f_nb_nw = 1 lsl 9
let f_nb_ne = 1 lsl 10
let f_nb_sw = 1 lsl 11
let f_nb_se = 1 lsl 12
let nb_mask = 0xFF lsl nb_shift

(* Sign of the significant horizontal/vertical neighbours, bits
   13-16: W E N S (only ever set together with the matching
   significance bit). *)
let sg_shift = 13
let f_sg_w = 1 lsl 13
let f_sg_e = 1 lsl 14
let f_sg_n = 1 lsl 15
let f_sg_s = 1 lsl 16

type blk = {
  w : int;
  h : int;
  stride : int; (* w + 2: one padding column on each side *)
  orientation : Subband.orientation;
  lut : bool; (* false: reference per-probe context formation *)
  flags : int array; (* (w + 2) * (h + 2), padded *)
  zc_lut : int array; (* the orientation's zero-coding table *)
  contexts : Mq.context array;
}

let pos b x y = ((y + 1) * b.stride) + (x + 1)

(* Zero-coding contexts, ISO Table D.1 — the reference arithmetic,
   kept both as the LUT generator and as the [~lut:false] slow path
   that validates (and benchmarks against) the packed formulation. *)
let zc_primary h v d =
  if h = 2 then 8
  else if h = 1 then (if v >= 1 then 7 else if d >= 1 then 6 else 5)
  else if v = 2 then 4
  else if v = 1 then 3
  else if d >= 2 then 2
  else if d = 1 then 1
  else 0

let zc_hh hv d =
  if d >= 3 then 8
  else if d = 2 then (if hv >= 1 then 7 else 6)
  else if d = 1 then (if hv >= 2 then 5 else if hv = 1 then 4 else 3)
  else if hv >= 2 then 2
  else if hv = 1 then 1
  else 0

(* Sign-coding context and XOR bit, ISO Tables D.2/D.3, from the
   clamped horizontal and vertical sign contributions. *)
let sc_of_contrib hc vc =
  match (hc, vc) with
  | 1, 1 -> (13, 0)
  | 1, 0 -> (12, 0)
  | 1, -1 -> (11, 0)
  | 0, 1 -> (10, 0)
  | 0, 0 -> (9, 0)
  | 0, -1 -> (10, 1)
  | -1, 1 -> (11, 1)
  | -1, 0 -> (12, 1)
  | -1, -1 -> (13, 1)
  | _ -> assert false

(* The three zero-coding LUTs, indexed by the 8 neighbour-significance
   bits in flag order (W E N S NW NE SW SE). *)
let build_zc f =
  Array.init 256 (fun bits ->
      let b i = (bits lsr i) land 1 in
      let h = b 0 + b 1 in
      let v = b 2 + b 3 in
      let d = b 4 + b 5 + b 6 + b 7 in
      f h v d)

let lut_zc_primary = build_zc zc_primary
let lut_zc_swapped = build_zc (fun h v d -> zc_primary v h d)
let lut_zc_hh = build_zc (fun h v d -> zc_hh (h + v) d)

(* Sign-coding LUT, indexed by [sig W E N S | sign W E N S] (8 bits);
   each entry packs [(context lsl 1) lor xor]. *)
let lut_sc =
  Array.init 256 (fun idx ->
      let significant i = (idx lsr i) land 1 = 1 in
      let negative i = (idx lsr (4 + i)) land 1 = 1 in
      let contrib i =
        if not (significant i) then 0 else if negative i then -1 else 1
      in
      let clamp s = Stdlib.max (-1) (Stdlib.min 1 s) in
      let hc = clamp (contrib 0 + contrib 1) in
      let vc = clamp (contrib 2 + contrib 3) in
      let ctx, xor = sc_of_contrib hc vc in
      (ctx lsl 1) lor xor)

let zc_lut_for = function
  | Subband.LL | Subband.LH -> lut_zc_primary
  | Subband.HL -> lut_zc_swapped
  | Subband.HH -> lut_zc_hh

let make_blk ?(lut = true) ~orientation ~w ~h () =
  if w <= 0 || h <= 0 then invalid_arg "T1: block size";
  {
    w;
    h;
    stride = w + 2;
    orientation;
    lut;
    flags = Array.make ((w + 2) * (h + 2)) 0;
    zc_lut = zc_lut_for orientation;
    contexts = fresh_contexts ();
  }

(* -- reference (per-probe) context formation ------------------------ *)

let in_block b x y = x >= 0 && x < b.w && y >= 0 && y < b.h
let sig_at b x y = in_block b x y && b.flags.(pos b x y) land f_sig <> 0

(* Neighbourhood significance counts: horizontal, vertical, diagonal. *)
let neighbour_counts b x y =
  let s dx dy = if sig_at b (x + dx) (y + dy) then 1 else 0 in
  let h = s (-1) 0 + s 1 0 in
  let v = s 0 (-1) + s 0 1 in
  let d = s (-1) (-1) + s 1 (-1) + s (-1) 1 + s 1 1 in
  (h, v, d)

let zc_context_ref b x y =
  let h, v, d = neighbour_counts b x y in
  match b.orientation with
  | Subband.LL | Subband.LH -> zc_primary h v d
  | Subband.HL -> zc_primary v h d
  | Subband.HH -> zc_hh (h + v) d

let sign_contribution b x y =
  if not (sig_at b x y) then 0
  else if b.flags.(pos b x y) land f_sign <> 0 then -1
  else 1

let sc_packed_ref b x y =
  let clamp s = Stdlib.max (-1) (Stdlib.min 1 s) in
  let hc = clamp (sign_contribution b (x - 1) y + sign_contribution b (x + 1) y) in
  let vc = clamp (sign_contribution b x (y - 1) + sign_contribution b x (y + 1)) in
  let ctx, xor = sc_of_contrib hc vc in
  (ctx lsl 1) lor xor

(* -- hot context accessors ------------------------------------------ *)

let zc_context b p x y =
  if b.lut then b.zc_lut.((b.flags.(p) lsr nb_shift) land 0xFF)
  else zc_context_ref b x y

(* [(context lsl 1) lor xor], avoiding a tuple in the hot path. *)
let sc_packed b p x y =
  if b.lut then
    let f = b.flags.(p) in
    lut_sc.(((f lsr nb_shift) land 0xF) lor (((f lsr sg_shift) land 0xF) lsl 4))
  else sc_packed_ref b x y

(* Magnitude-refinement contexts, ISO Table D.4. *)
let mr_context b p x y =
  let f = b.flags.(p) in
  if f land f_refined <> 0 then 16
  else if
    (if b.lut then f land nb_mask = 0
     else
       let h, v, d = neighbour_counts b x y in
       h + v + d = 0)
  then 14
  else 15

(* Mark (x, y) significant: its own state bits plus the incremental
   neighbour significance/sign bits of the eight surrounding cells
   (padding absorbs the out-of-block writes). *)
let set_significant b ~x ~y ~neg =
  let fl = b.flags in
  let s = b.stride in
  let p = pos b x y in
  fl.(p) <- fl.(p) lor f_sig lor f_became lor (if neg then f_sign else 0);
  fl.(p - 1) <- fl.(p - 1) lor f_nb_e lor (if neg then f_sg_e else 0);
  fl.(p + 1) <- fl.(p + 1) lor f_nb_w lor (if neg then f_sg_w else 0);
  fl.(p - s) <- fl.(p - s) lor f_nb_s lor (if neg then f_sg_s else 0);
  fl.(p + s) <- fl.(p + s) lor f_nb_n lor (if neg then f_sg_n else 0);
  fl.(p - s - 1) <- fl.(p - s - 1) lor f_nb_se;
  fl.(p - s + 1) <- fl.(p - s + 1) lor f_nb_sw;
  fl.(p + s - 1) <- fl.(p + s - 1) lor f_nb_ne;
  fl.(p + s + 1) <- fl.(p + s + 1) lor f_nb_nw

(* The bit-level interface that distinguishes encoder and decoder:
   every function codes (or decodes) through the shared MQ state and
   returns the actual bit value so the pass drivers below can be
   written once. *)
type io = {
  coeff_bit : x:int -> y:int -> plane:int -> ctx:int -> int;
      (** zero-coding or refinement bit for one coefficient *)
  sign_bit : x:int -> y:int -> ctx:int -> xor:int -> int;
      (** sign of a newly significant coefficient (0 = positive) *)
  rl_bit : x:int -> y0:int -> plane:int -> int;
      (** run-length decision for a clean stripe column *)
  uni_pos : x:int -> y0:int -> plane:int -> int;
      (** 2-bit position of the first 1 within the column *)
  on_significant : x:int -> y:int -> plane:int -> unit;
      (** magnitude bookkeeping hook (decoder sets the plane bit) *)
  on_refine : x:int -> y:int -> plane:int -> bit:int -> unit;
}

let make_significant b io ~x ~y ~plane =
  let sc = sc_packed b (pos b x y) x y in
  let s = io.sign_bit ~x ~y ~ctx:(sc lsr 1) ~xor:(sc land 1) in
  set_significant b ~x ~y ~neg:(s = 1);
  io.on_significant ~x ~y ~plane

(* One coefficient of a cleanup or significance pass: zero-coding
   plus sign on a 1 bit. *)
let code_zc b io ~p ~x ~y ~plane =
  let bit = io.coeff_bit ~x ~y ~plane ~ctx:(zc_context b p x y) in
  if bit = 1 then make_significant b io ~x ~y ~plane

let stripe = 4

let significance_pass b io ~plane =
  let fl = b.flags in
  let k = ref 0 in
  while !k < b.h do
    for x = 0 to b.w - 1 do
      for y = !k to Stdlib.min (!k + stripe - 1) (b.h - 1) do
        let p = pos b x y in
        let f = fl.(p) in
        if f land f_sig = 0 && f land nb_mask <> 0 then begin
          code_zc b io ~p ~x ~y ~plane;
          fl.(p) <- fl.(p) lor f_visited
        end
      done
    done;
    k := !k + stripe
  done

let refinement_pass b io ~plane =
  let fl = b.flags in
  let k = ref 0 in
  while !k < b.h do
    for x = 0 to b.w - 1 do
      for y = !k to Stdlib.min (!k + stripe - 1) (b.h - 1) do
        let p = pos b x y in
        let f = fl.(p) in
        if f land (f_sig lor f_became lor f_visited) = f_sig then begin
          let ctx = mr_context b p x y in
          let bit = io.coeff_bit ~x ~y ~plane ~ctx in
          io.on_refine ~x ~y ~plane ~bit;
          fl.(p) <- fl.(p) lor f_refined lor f_visited
        end
      done
    done;
    k := !k + stripe
  done

let cleanup_pass b io ~plane =
  let fl = b.flags in
  let k = ref 0 in
  while !k < b.h do
    let y0 = !k in
    let full_column = y0 + stripe <= b.h in
    for x = 0 to b.w - 1 do
      let column_clean =
        full_column
        && (let clean = ref true in
            for y = y0 to y0 + stripe - 1 do
              let f = fl.(pos b x y) in
              if
                f land (f_sig lor f_visited) <> 0
                || (if b.lut then f land nb_mask <> 0
                    else
                      let h, v, d = neighbour_counts b x y in
                      h + v + d > 0)
              then clean := false
            done;
            !clean)
      in
      if column_clean then begin
        if io.rl_bit ~x ~y0 ~plane = 1 then begin
          let r = io.uni_pos ~x ~y0 ~plane in
          (* Coefficient y0+r is the first 1: its zero-coding bit is
             implicit; code its sign and continue below it. *)
          make_significant b io ~x ~y:(y0 + r) ~plane;
          for y = y0 + r + 1 to y0 + stripe - 1 do
            code_zc b io ~p:(pos b x y) ~x ~y ~plane
          done
        end
      end
      else
        for y = y0 to Stdlib.min (y0 + stripe - 1) (b.h - 1) do
          let p = pos b x y in
          if fl.(p) land (f_sig lor f_visited) = 0 then
            code_zc b io ~p ~x ~y ~plane
        done
    done;
    k := !k + stripe
  done

(* End of a plane: every visited/became bit drops (padding cells
   never carry them, so sweeping the whole padded block is safe). The
   sweep stops at the block's own extent — a scratch flags array may
   be longer than this block needs. *)
let clear_plane_flags b =
  let fl = b.flags in
  let keep = lnot (f_visited lor f_became) in
  for i = 0 to (b.stride * (b.h + 2)) - 1 do
    fl.(i) <- fl.(i) land keep
  done

let code_plane b io ~plane ~first =
  if not first then begin
    significance_pass b io ~plane;
    refinement_pass b io ~plane
  end;
  cleanup_pass b io ~plane;
  clear_plane_flags b

(* The same plane schedule expressed as the standard pass sequence:
   the top plane has only its cleanup pass, every lower plane runs
   significance propagation, refinement, cleanup. *)
type pass_kind = Significance | Refinement | Cleanup

let pass_schedule ~planes =
  List.concat
    (List.init planes (fun i ->
         let plane = planes - 1 - i in
         if i = 0 then [ (Cleanup, plane) ]
         else [ (Significance, plane); (Refinement, plane); (Cleanup, plane) ]))

let run_pass b io (kind, plane) =
  match kind with
  | Significance -> significance_pass b io ~plane
  | Refinement -> refinement_pass b io ~plane
  | Cleanup ->
    cleanup_pass b io ~plane;
    clear_plane_flags b

let total_passes ~planes = if planes = 0 then 0 else 1 + (3 * (planes - 1))

let num_planes coeffs =
  let m = Array.fold_left (fun acc c -> Stdlib.max acc (abs c)) 0 coeffs in
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits m 0

let check_dims ~w ~h len =
  if w <= 0 || h <= 0 || len <> w * h then invalid_arg "T1: dimensions"

let negative b x y = b.flags.(pos b x y) land f_sign <> 0

let make_encoder_io b enc coeffs w =
  let magnitude x y = abs coeffs.((y * w) + x) in
  let bit_of x y plane = (magnitude x y lsr plane) land 1 in
  {
    coeff_bit =
      (fun ~x ~y ~plane ~ctx ->
        let bit = bit_of x y plane in
        Mq.encode !enc b.contexts.(ctx) bit;
        bit);
    sign_bit =
      (fun ~x ~y ~ctx ~xor ->
        let s = if coeffs.((y * w) + x) < 0 then 1 else 0 in
        Mq.encode !enc b.contexts.(ctx) (s lxor xor);
        s);
    rl_bit =
      (fun ~x ~y0 ~plane ->
        let any = ref 0 in
        for y = y0 to y0 + 3 do
          if bit_of x y plane = 1 then any := 1
        done;
        Mq.encode !enc b.contexts.(ctx_rl) !any;
        !any);
    uni_pos =
      (fun ~x ~y0 ~plane ->
        let rec first r = if bit_of x (y0 + r) plane = 1 then r else first (r + 1) in
        let r = first 0 in
        Mq.encode !enc b.contexts.(ctx_uni) ((r lsr 1) land 1);
        Mq.encode !enc b.contexts.(ctx_uni) (r land 1);
        r);
    on_significant = (fun ~x:_ ~y:_ ~plane:_ -> ());
    on_refine = (fun ~x:_ ~y:_ ~plane:_ ~bit:_ -> ());
  }

let encode_block ?lut ~orientation ~w ~h coeffs =
  check_dims ~w ~h (Array.length coeffs);
  let planes = num_planes coeffs in
  if planes = 0 then (0, "")
  else begin
    let b = make_blk ?lut ~orientation ~w ~h () in
    let enc = ref (Mq.encoder ()) in
    let io = make_encoder_io b enc coeffs w in
    for plane = planes - 1 downto 0 do
      code_plane b io ~plane ~first:(plane = planes - 1)
    done;
    (planes, Mq.flush !enc)
  end

let make_decoder_io b dec magnitudes w =
  let set_bit x y plane =
    magnitudes.((y * w) + x) <- magnitudes.((y * w) + x) lor (1 lsl plane)
  in
  {
    coeff_bit = (fun ~x:_ ~y:_ ~plane:_ ~ctx -> Mq.decode !dec b.contexts.(ctx));
    sign_bit = (fun ~x:_ ~y:_ ~ctx ~xor -> Mq.decode !dec b.contexts.(ctx) lxor xor);
    rl_bit = (fun ~x:_ ~y0:_ ~plane:_ -> Mq.decode !dec b.contexts.(ctx_rl));
    uni_pos =
      (fun ~x:_ ~y0:_ ~plane:_ ->
        let hi = Mq.decode !dec b.contexts.(ctx_uni) in
        let lo = Mq.decode !dec b.contexts.(ctx_uni) in
        (hi lsl 1) lor lo);
    on_significant = (fun ~x ~y ~plane -> set_bit x y plane);
    on_refine = (fun ~x ~y ~plane ~bit -> if bit = 1 then set_bit x y plane);
  }

let signed_result b magnitudes =
  Array.init (b.w * b.h) (fun i ->
      let x = i mod b.w and y = i / b.w in
      let m = magnitudes.(i) in
      if negative b x y then -m else m)

let decode_block ?lut ~orientation ~w ~h ~planes data =
  check_dims ~w ~h (w * h);
  if planes = 0 then Array.make (w * h) 0
  else begin
    let b = make_blk ?lut ~orientation ~w ~h () in
    let dec = ref (Mq.decoder data) in
    let magnitudes = Array.make (w * h) 0 in
    let io = make_decoder_io b dec magnitudes w in
    for plane = planes - 1 downto 0 do
      code_plane b io ~plane ~first:(plane = planes - 1)
    done;
    signed_result b magnitudes
  end

(* -- SNR-scalable variant ---------------------------------------------

   Every coding pass is terminated into its own MQ codeword (the
   standard's RESTART/segmentation option, contexts carried across
   passes), so a codestream can be truncated at any pass boundary and
   still decode exactly up to that pass. *)

let encode_block_scalable ?lut ~orientation ~w ~h coeffs =
  check_dims ~w ~h (Array.length coeffs);
  let planes = num_planes coeffs in
  if planes = 0 then (0, [])
  else begin
    let b = make_blk ?lut ~orientation ~w ~h () in
    let enc = ref (Mq.encoder ()) in
    let io = make_encoder_io b enc coeffs w in
    let segments =
      List.map
        (fun pass ->
          run_pass b io pass;
          let segment = Mq.flush !enc in
          enc := Mq.encoder ();
          segment)
        (pass_schedule ~planes)
    in
    (planes, segments)
  end

let decode_block_scalable ?lut ~orientation ~w ~h ~planes segments =
  check_dims ~w ~h (w * h);
  if planes = 0 then Array.make (w * h) 0
  else begin
    let b = make_blk ?lut ~orientation ~w ~h () in
    let dec = ref (Mq.decoder "") in
    let magnitudes = Array.make (w * h) 0 in
    let io = make_decoder_io b dec magnitudes w in
    let rec decode_passes schedule segments =
      match (schedule, segments) with
      | _, [] | [], _ -> ()
      | pass :: schedule, segment :: segments ->
        dec := Mq.decoder segment;
        run_pass b io pass;
        decode_passes schedule segments
    in
    decode_passes (pass_schedule ~planes) segments;
    signed_result b magnitudes
  end

(* -- per-domain scratch decode ----------------------------------------

   The allocating entry points above pay one flags array, one
   magnitude buffer, one result array and 19 context records per code
   block — on the parallel decode path that per-block minor-heap churn
   is what forces the domains to rendezvous at every collection. The
   scratch variant keeps one decode state per domain in [Domain.DLS]
   and re-initialises it in place ([Array.fill] + [Mq.reset_context]),
   so a worker decodes an entire tile's blocks without allocating
   anything but the per-pass MQ decoders. *)

type scratch = {
  mutable sc_flags : int array;
  mutable sc_mag : int array;
  sc_contexts : Mq.context array;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { sc_flags = [||]; sc_mag = [||]; sc_contexts = fresh_contexts () })

(* Back to the ISO Table D.7 initial states, in place. *)
let reset_contexts ctxs =
  for i = 0 to num_contexts - 1 do
    let index =
      if i = 0 then 4 else if i = ctx_rl then 3 else if i = ctx_uni then 46 else 0
    in
    Mq.reset_context ctxs.(i) ~index ~mps:0
  done

let scratch_blk ?(lut = true) ~orientation ~w ~h () =
  if w <= 0 || h <= 0 then invalid_arg "T1: block size";
  let s = Domain.DLS.get scratch_key in
  let fn = (w + 2) * (h + 2) in
  if Array.length s.sc_flags < fn then s.sc_flags <- Array.make fn 0
  else Array.fill s.sc_flags 0 fn 0;
  if Array.length s.sc_mag < w * h then s.sc_mag <- Array.make (w * h) 0
  else Array.fill s.sc_mag 0 (w * h) 0;
  reset_contexts s.sc_contexts;
  ( {
      w;
      h;
      stride = w + 2;
      orientation;
      lut;
      flags = s.sc_flags;
      zc_lut = zc_lut_for orientation;
      contexts = s.sc_contexts;
    },
    s.sc_mag )

let decode_block_scalable_scratch ?lut ~orientation ~w ~h ~planes segments =
  check_dims ~w ~h (w * h);
  let b, magnitudes = scratch_blk ?lut ~orientation ~w ~h () in
  if planes > 0 then begin
    let dec = ref (Mq.decoder "") in
    let io = make_decoder_io b dec magnitudes w in
    let rec decode_passes schedule segments =
      match (schedule, segments) with
      | _, [] | [], _ -> ()
      | pass :: schedule, segment :: segments ->
        dec := Mq.decoder segment;
        run_pass b io pass;
        decode_passes schedule segments
    in
    decode_passes (pass_schedule ~planes) segments;
    (* Apply the signs in place: the buffer's w*h prefix becomes the
       signed coefficient block. *)
    for y = 0 to h - 1 do
      let row = y * w and frow = ((y + 1) * b.stride) + 1 in
      for x = 0 to w - 1 do
        if b.flags.(frow + x) land f_sign <> 0 then
          magnitudes.(row + x) <- -magnitudes.(row + x)
      done
    done
  end;
  magnitudes
