(** EBCOT Tier-1 bit-plane coder (ISO/IEC 15444-1, Annex D).

    Codes a block of signed quantised wavelet coefficients bit-plane
    by bit-plane with three passes per plane — significance
    propagation, magnitude refinement, and cleanup with run-length
    shortcut — driving the {!Mq} coder through the standard 19
    contexts (9 zero-coding, 5 sign-coding, 3 magnitude-refinement,
    run-length, uniform). Zero-coding context formation depends on
    the subband orientation, exactly as in Table D.1.

    Simplification w.r.t. the full standard (documented in
    DESIGN.md): one code-block spans the whole subband and all passes
    form a single MQ codeword segment — no pass boundaries, RESET/
    BYPASS modes or rate-distortion truncation. Decoding inverts
    encoding bit-exactly, which the property tests check on random
    blocks.

    Per-coefficient state is one packed flags word (own significance/
    sign/visited/refined plus incrementally maintained neighbour
    significance and sign bits); zero-coding and sign-coding contexts
    are precomputed LUTs indexed by that word. [?lut:false] selects
    the reference per-probe context formation instead — bit-identical
    by construction (the LUTs are generated from it), kept as the
    cross-check and the benchmark baseline for the packed hot path. *)

val num_planes : int array -> int
(** Number of magnitude bit-planes needed for the given coefficients
    (0 if all are zero). *)

val encode_block :
  ?lut:bool ->
  orientation:Subband.orientation -> w:int -> h:int -> int array -> int * string
(** [encode_block ~orientation ~w ~h coeffs] returns
    [(bit-planes, codeword)]. [coeffs] is row-major of length
    [w * h]. An all-zero block yields [(0, "")]. [lut] (default
    [true]) selects the packed-LUT context formation. *)

val decode_block :
  ?lut:bool ->
  orientation:Subband.orientation -> w:int -> h:int -> planes:int -> string -> int array
(** Inverse of {!encode_block}: reconstructs the exact coefficients. *)

(** {1 SNR-scalable coding}

    The standard's pass-termination option: every coding pass is
    flushed into its own MQ codeword (contexts persist across
    passes), so dropping trailing segments yields a coarser — but
    exactly decodable — reconstruction. *)

val total_passes : planes:int -> int
(** Number of coding passes for a block with that many bit-planes
    ([1 + 3*(planes-1)], 0 for an empty block). *)

val encode_block_scalable :
  ?lut:bool ->
  orientation:Subband.orientation ->
  w:int ->
  h:int ->
  int array ->
  int * string list
(** [(bit-planes, one codeword per pass)]. *)

val decode_block_scalable :
  ?lut:bool ->
  orientation:Subband.orientation ->
  w:int ->
  h:int ->
  planes:int ->
  string list ->
  int array
(** Decodes the given pass segments (a prefix of the encoder's list);
    with all of them the reconstruction is exact. *)

val decode_block_scalable_scratch :
  ?lut:bool ->
  orientation:Subband.orientation ->
  w:int ->
  h:int ->
  planes:int ->
  string list ->
  int array
(** {!decode_block_scalable} into per-domain scratch state
    ([Domain.DLS]): the flags array, magnitude buffer and MQ contexts
    of the calling domain are re-initialised in place instead of
    allocated, so decoding a stream of blocks performs no per-block
    heap allocation. The returned array is that scratch buffer — its
    [w * h] row-major prefix holds the signed coefficients, it may be
    longer than [w * h], and it is only valid until the next scratch
    decode on the same domain: callers must copy (blit) the block out
    before decoding another. Decodes that raise leave no partial
    output anywhere but the scratch buffer, so a failed block cannot
    poison shared planes (the robust path's containment). *)
