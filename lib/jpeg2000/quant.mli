(** Scalar dead-zone quantiser and its inverse ("IQ" in the paper).

    Used on the lossy (9/7) path only; the reversible 5/3 path passes
    integer coefficients straight to the entropy coder. The step for
    a subband shrinks with decomposition depth and grows with the
    nominal band gain, approximating the synthesis-energy weighting
    of ISO/IEC 15444-1 Annex E. Reconstruction places the value at
    the middle of the quantisation interval. *)

val step_for :
  base_step:float -> levels:int -> level:int -> Subband.orientation -> float
(** Quantisation step for one subband. [base_step] is the step of the
    finest HH band; deeper bands (closer to the LL) get exponentially
    finer steps. Raises [Invalid_argument] if [base_step <= 0]. *)

val quantise : step:float -> float array -> int array
(** Dead-zone quantisation: [q = sign(x) * floor(|x| / step)]. *)

val dequantise : step:float -> int array -> float array
(** Mid-point reconstruction: 0 maps to 0, otherwise
    [sign(q) * (|q| + 0.5) * step]. *)

val dequantise_one : step:float -> int -> float
(** One coefficient of {!dequantise} — the flat decode path applies it
    per band rectangle without materialising the boxed array. No step
    validation (the caller obtained [step] from {!step_for}). *)

val max_error : step:float -> float
(** Upper bound of [|dequantise (quantise x) - x|]: one full step (the
    dead zone is two steps wide, centred reconstruction). *)
