(** Subband geometry of the Mallat decomposition.

    After [levels] 2-D wavelet decompositions of a [width]×[height]
    tile component, coefficients live in-place in the standard Mallat
    arrangement: the LL of the deepest level in the top-left corner,
    surrounded by HL/LH/HH detail bands of decreasing level. This
    module computes each band's rectangle so the entropy coder can
    address them. *)

type orientation = LL | HL | LH | HH

type band = {
  level : int;  (** decomposition level, 1 = finest; LL carries [levels] *)
  orientation : orientation;
  x0 : int;
  y0 : int;  (** top-left corner inside the Mallat layout *)
  w : int;
  h : int;  (** band dimensions; may be zero on degenerate sizes *)
}

val low_size : int -> int
(** [low_size n] = ceil(n/2): length of the low-pass half. *)

val decompose : width:int -> height:int -> levels:int -> band list
(** All bands, deepest first: [LL_L; HL_L; LH_L; HH_L; ...; HH_1].
    Zero-area bands (degenerate tile sizes) are included with
    [w = 0] or [h = 0] so band order stays structural. Raises
    [Invalid_argument] if [levels < 0] or the size is not positive. *)

val decompose_array : width:int -> height:int -> levels:int -> band array
(** {!decompose} as an array — the form the decoder's job flattening
    indexes by band number on the hot path. *)

val gain_log2 : orientation -> int
(** Log2 of the nominal subband gain used for quantisation-step
    scaling: LL 0, HL/LH 1, HH 2. *)

val orientation_code : orientation -> int
val orientation_of_code : int -> orientation
(** 0–3 wire encoding; raises [Invalid_argument] on other values. *)

val pp_orientation : Format.formatter -> orientation -> unit
