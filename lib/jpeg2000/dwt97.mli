(** Irreversible 9/7 floating-point wavelet transform (lossy mode,
    "IDWT97" in the paper).

    Daubechies (9,7) filter bank by four lifting steps (α, β, γ, δ)
    plus the K scaling, with whole-sample symmetric extension.
    Forward followed by inverse reconstructs up to floating-point
    rounding (verified to ~1e-9 by the property tests). *)

type matrix = { mw : int; mh : int; values : float array }
(** Row-major float plane used along the lossy path. *)

val matrix_create : w:int -> h:int -> matrix
val matrix_get : matrix -> x:int -> y:int -> float
val matrix_set : matrix -> x:int -> y:int -> float -> unit

val of_int_plane : Image.plane -> matrix
val to_int_plane : matrix -> Image.plane
(** Rounds to nearest integer. *)

val forward_1d : float array -> float array
(** One decomposition of a line: lows first, then highs. *)

val inverse_1d : float array -> float array

val forward : matrix -> levels:int -> unit
(** In-place multi-level 2-D decomposition, Mallat layout. *)

val inverse : matrix -> levels:int -> unit

val inverse_ip : matrix -> levels:int -> unit
(** {!inverse} staged through one per-domain scratch line
    ({!Plane.Scratch.floats}) instead of allocating per row/column.
    The floating-point operations run in exactly the order of
    {!inverse}, so the reconstruction is bit-identical — the property
    the flat decode path's cross-check rests on. *)
