(** Reversible 5/3 integer wavelet transform (lossless mode,
    "IDWT53" in the paper).

    Le Gall (5,3) filter bank implemented by integer lifting with
    whole-sample symmetric extension (ISO/IEC 15444-1, Annex F).
    [inverse_plane] exactly inverts [forward_plane] for any size and
    level count — the property the lossless decoding path rests on. *)

val forward_1d : int array -> int array
(** One decomposition of a line: returns lows in [0, ceil(n/2)) and
    highs in the remainder. Length-1 input is returned unchanged. *)

val inverse_1d : int array -> int array
(** Exact inverse of {!forward_1d}. *)

val forward_plane : Image.plane -> levels:int -> unit
(** In-place multi-level 2-D decomposition in Mallat layout (rows
    then columns per level, recursing on the LL quadrant). *)

val inverse_plane : Image.plane -> levels:int -> unit

val inverse_flat : Plane.t -> levels:int -> unit
(** {!inverse_plane} over a flat {!Plane}, in place, using per-domain
    scratch lines ({!Plane.Scratch}) instead of per-line allocation.
    Integer lifting, so the coefficients are bit-identical to the
    boxed path's. *)
