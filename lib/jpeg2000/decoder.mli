(** JPEG 2000 decoder, staged as in Figure 1 of the paper.

    The decode chain is exposed stage by stage —

    {v
    Coded Image -> [entropy decode] -> [IQ] -> [IDWT] -> [ICT] -> [DC shift]
    v}

    — because the OSSS system models distribute exactly these stages
    over Software Tasks and Shared Objects; each model invokes the
    same functions the monolithic {!decode} uses, so the functional
    behaviour of every hardware/software partitioning is identical by
    construction.

    Every stage that fans out over independent work units — code
    blocks within a tile, planes in the IDWT, tiles in a full decode —
    takes an optional [?pool] ({!Par.Pool.t}, default
    {!Par.Pool.sequential}). Results are merged by index, so a decode
    on any pool is bit-identical to the sequential one.

    {b Memory layout.} Every whole-image entry point decodes through
    {e flat} coefficient planes: each component's coefficients live in
    one off-heap {!Plane} (Mallat layout), code blocks decode through
    per-domain scratch state ({!T1.decode_block_scalable_scratch}) and
    blit their rectangle into the shared plane, and the inverse
    transforms run in place ({!Dwt53.inverse_flat},
    {!Dwt97.inverse_ip}). No per-block or per-line allocation survives
    into the steady state, so parallel decodes stop serialising on the
    minor collector's stop-the-world synchronisation. (The boxed
    whole-tile pipeline behind the former [?flat:false] flag served
    one release as a bit-identity cross-check and is retired; a
    golden-digest qcheck regression pins the flat output instead.)
    The boxed {e stage-by-stage} functions below remain — they are
    the refinement surface the OSSS system models distribute over
    Software Tasks and Shared Objects, not a second whole-tile
    pipeline. *)

type band_coeffs = {
  bc_band : Subband.band;
  bc_planes : int;
  bc_coeffs : int array;  (** quantiser indices (or raw 5/3 coefficients) *)
}

type entropy_decoded = {
  ed_tile : Codestream.tile_segment;  (** originating segment *)
  ed_comps : band_coeffs list array;
}

type wavelet_domain =
  | Ints of Image.plane array  (** reversible path *)
  | Floats of Dwt97.matrix array  (** irreversible path *)

val parse : string -> Codestream.t
(** Stage 0: codestream parsing (the paper folds this into the
    arithmetic-decoder task). *)

val entropy_decode_tile :
  ?max_passes:int ->
  ?pool:Par.Pool.t ->
  Codestream.header ->
  Codestream.tile_segment ->
  entropy_decoded
(** Stage 1: MQ/EBCOT decoding of every subband of a tile.
    [max_passes] truncates every code block to its first coding
    passes (SNR scalability); default: all. Code blocks are
    independent MQ codewords and decode in parallel on [pool]. *)

val dequantise : Codestream.header -> entropy_decoded -> wavelet_domain
(** Stage 2 (IQ): rebuild the Mallat coefficient layout; inverse
    quantisation on the lossy path, plain placement on the lossless
    path. *)

val inverse_wavelet :
  ?pool:Par.Pool.t -> Codestream.header -> wavelet_domain -> wavelet_domain
(** Stage 3 (IDWT): 5/3 or 9/7 multi-level inverse transform, in
    place; component planes transform in parallel on [pool]. *)

val inverse_colour_and_shift :
  Codestream.header -> Codestream.tile_segment -> wavelet_domain -> Tile.t
(** Stage 4 (ICT + DC shift): back to unsigned samples. *)

val decode_tile :
  ?max_passes:int ->
  ?pool:Par.Pool.t ->
  Codestream.header ->
  Codestream.tile_segment ->
  Tile.t
(** All tile stages composed, through the flat-plane pipeline. Equals
    the boxed stage chain ({!entropy_decode_tile} → {!dequantise} →
    {!inverse_wavelet} → {!inverse_colour_and_shift}) bit for bit. *)

val decode : ?pool:Par.Pool.t -> string -> Image.t
(** Full decode of a codestream. Tiles fan out over [pool]; inside a
    worker the per-tile stages degrade to sequential (the pool is
    re-entrancy-safe), so a single-tile stream still parallelises
    over its code blocks when called from the main domain. *)

val decode_progressive :
  ?pool:Par.Pool.t -> max_passes:int -> string -> Image.t
(** Quality-scalable decode: every code block contributes only its
    first [max_passes] coding passes, as if the stream had been
    truncated at that pass boundary — fidelity increases
    monotonically with [max_passes] and reaches the exact
    reconstruction once all passes are included. *)

val decode_region :
  ?pool:Par.Pool.t ->
  x:int ->
  y:int ->
  w:int ->
  h:int ->
  string ->
  Image.t
(** Region-of-interest decode: entropy-decodes only the tiles that
    intersect the requested window and crops the result to it — the
    random-access capability tiling exists for. Raises
    [Invalid_argument] if the window is empty or falls outside the
    image. *)

val decode_reduced :
  ?pool:Par.Pool.t -> discard_levels:int -> string -> Image.t
(** Resolution-scalable decode: reconstructs the image at
    [1/2^discard_levels] of its dimensions by entropy-decoding only
    the coarser subbands and running fewer inverse-wavelet levels —
    the wavelet pyramid's signature capability. Requires
    [0 <= discard_levels <= levels] and a tile grid aligned to
    [2^discard_levels] (any power-of-two tile size qualifies);
    raises [Invalid_argument] otherwise. On the lossy path the K
    normalisation of skipped levels is preserved, so brightness does
    not drift. *)

(** {1 Graceful degradation}

    The robust decode path never raises on hostile input: a stream
    that does not parse yields a typed {!Codestream.error}; a stream
    that parses but whose entropy payload is damaged is decoded with
    {e containment} — each code block whose MQ codeword fails to
    decode is concealed (all-zero coefficients, mid-grey after the DC
    shift), each tile whose structure is inconsistent is concealed
    whole, and the rest of the image decodes normally. *)

type report = {
  concealed_blocks : int;  (** blocks replaced by concealment *)
  concealed_tiles : int;  (** tiles concealed whole *)
  total_blocks : int;
  total_tiles : int;
}

val no_damage : report -> bool
val pp_report : Format.formatter -> report -> unit

val concealed_entropy_decoded :
  Codestream.header -> Codestream.tile_segment -> entropy_decoded
(** The all-zero entropy-decoded form of a tile — what a whole-tile
    concealment feeds to the remaining stages (mid-grey after the DC
    shift). *)

val entropy_decode_tile_robust :
  ?pool:Par.Pool.t ->
  Codestream.header ->
  Codestream.tile_segment ->
  (entropy_decoded * int) option
(** Stage 1 with per-code-block containment. [Some (decoded, n)]
    decodes the tile with [n] blocks concealed; [None] means the
    tile structure itself contradicts the header geometry and the
    whole tile must be concealed. Never raises on any parsed tile. *)

val decode_robust :
  ?pool:Par.Pool.t ->
  string ->
  (Image.t * report, Codestream.error) result
(** Total decode of arbitrary bytes: [Error] iff the codestream
    framing is invalid, otherwise a full-size image with damage
    confined and reported. [decode_robust (emit s)] of a well-formed
    stream equals [Ok (decode s, r)] with [no_damage r]. Per-tile
    damage counts are merged deterministically, so image and report
    are identical on every [pool].

    A {e truncated} stream — the received prefix of a stalled or
    lossy ingest path — is decoded best-effort once its preamble is
    complete: every tile segment the prefix delivered decodes with
    per-block containment, and each grid cell whose segment never
    arrived is concealed whole (counted in [concealed_tiles]).
    [Error (Truncated _)] therefore only remains for a prefix too
    short to carry the header. *)

val psnr_impact : reference:Image.t -> Image.t * report -> float
(** PSNR (dB) of a robust decode against the undamaged reference —
    the fidelity cost of the concealment; [infinity] when nothing
    was concealed. *)

(** {1 Staged tile decode}

    The serving layer's batch scheduler coalesces the independent
    entropy-decode jobs of many tiles — across many concurrent
    requests — into one array and runs them on a single
    {!Par.Pool.map}. A {!staged} value is a tile split into those
    jobs; finishing it performs exactly the remaining stages of
    {!decode_tile} (or {!decode_tile_reduced} via [?discard]), so the
    result is bit-identical to the monolithic per-tile decode. *)

type staged

val stage_tile :
  ?max_passes:int ->
  ?discard:int ->
  Codestream.header ->
  Codestream.tile_segment ->
  staged
(** Splits a tile into its code-block jobs. [?discard] (default 0)
    stages the reduced-resolution view, matching
    [decode_reduced ~discard_levels]. Raises [Invalid_argument] if
    [discard] is negative or exceeds the header's levels, [Failure]
    if the segment contradicts the header geometry. *)

val staged_jobs : staged -> int
(** Number of independent code-block jobs. *)

val staged_coded_bytes : staged -> int
(** Entropy-coded payload of the staged (possibly reduced) view —
    the work the cache skips on a hit. *)

val staged_samples : staged -> int
(** Output samples of the staged view (tile area times components). *)

val staged_block_classes : staged -> (string * int * int) list
(** Per code-block class [(orientation, jobs, coded_bytes)] over the
    staged jobs, in LL/HL/LH/HH order, classes with jobs only — the
    profiler's T1 cost attribution. Pure function of the segment
    structure. *)

val staged_run : staged -> int -> bool
(** Decodes job [i] through this domain's scratch state straight into
    the staged tile's flat coefficient planes — the in-place protocol
    the serving layer uses. Jobs write disjoint rectangles, so any
    number of jobs of any staged tiles may run concurrently on pool
    workers. [false] marks a damaged block (containment, as in
    {!entropy_decode_tile_robust}): its rectangle stays zero and it
    must be counted via {!finish_staged_ok}. On a well-formed stream
    every job returns [true]. *)

val finish_staged_ok : staged -> bool array -> Tile.t * int
(** Finishes a tile whose jobs ran through {!staged_run}: runs IQ,
    IDWT and ICT/DC-shift over the in-place planes and returns the
    tile with the concealed-block count (the [false] entries). Raises
    [Invalid_argument] if the result count does not match
    {!staged_jobs}. *)

val staged_job : staged -> int -> int array option
(** Compat protocol: decodes job [i] into a fresh array without
    touching the staged planes. Pure with respect to shared state —
    jobs of any staged tiles may run concurrently on pool workers.
    [None] marks a damaged block (containment, as in
    {!entropy_decode_tile_robust}); on a well-formed stream every job
    is [Some]. [{!staged_job} + {!finish_staged}] and [{!staged_run} +
    {!finish_staged_ok}] write the same rectangles with the same
    values and are interchangeable bit for bit. *)

val finish_staged : staged -> int array option array -> Tile.t * int
(** Places the job results (in job order), conceals [None] blocks,
    and runs IQ, IDWT and ICT/DC-shift. Returns the tile and the
    concealed-block count. Raises [Invalid_argument] if the result
    count does not match {!staged_jobs}. *)

val reduced_size : int -> int -> int
(** [reduced_size n d] is the length of an [n]-sample dimension after
    [d] resolution levels are discarded. *)
