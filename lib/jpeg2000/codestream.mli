(** Simplified codestream framing.

    Replaces JPEG 2000 Tier-2 (tag-tree packet headers) with
    deterministic length-prefixed segments — see DESIGN.md for the
    substitution rationale. The stream carries a main header (the
    SIZ/COD/QCD information), then one segment per tile holding, per
    component, per subband and per EBCOT code block, the bit-plane
    count and the MQ codeword produced by {!T1}. *)

type mode = Lossless | Lossy

type header = {
  width : int;
  height : int;
  components : int;
  tile_w : int;
  tile_h : int;
  levels : int;
  mode : mode;
  bit_depth : int;
  base_step : float;  (** quantiser base step; meaningful in lossy mode *)
  code_block : int;  (** EBCOT code-block size (square), e.g. 32 *)
}

type block_segment = {
  blk_planes : int;  (** magnitude bit-planes coded *)
  blk_passes : string list;
      (** one terminated MQ codeword per coding pass (SNR-scalable:
          decoding a prefix of the list is exact up to that pass) *)
}

type band_segment = {
  seg_level : int;
  seg_orientation : Subband.orientation;
  seg_w : int;
  seg_h : int;
  seg_blocks : block_segment list;
      (** one per code block, raster order over the band's
          code-block grid (geometry follows from the band size and
          the header's [code_block]) *)
}

type tile_segment = {
  tile_index : int;
  tile_x0 : int;
  tile_y0 : int;
  tile_w : int;
  tile_h : int;
  comps : band_segment list array;  (** one band list per component *)
}

type t = { header : header; tiles : tile_segment list }

val emit : t -> string

(** {1 Parsing}

    The reader validates every size field against hostile-input
    bounds before anything is allocated from it, so a truncated or
    bit-flipped stream yields a typed error — never an uncaught
    exception, never an unbounded allocation. *)

type error =
  | Truncated of int  (** byte offset at which input ran out *)
  | Bad_magic
  | Bad_version of int
  | Bad_field of string  (** an out-of-range or inconsistent field *)
  | Trailing of int  (** well-formed stream followed by junk bytes *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val parse_result : string -> (t, error) result
(** [parse_result (emit s) = Ok s]; total on arbitrary input. *)

val parse : string -> t
(** @deprecated Legacy wrapper over {!parse_result}: it runs exactly
    that parser and turns [Error e] into
    [Failure ("Codestream.parse: " ^ error_message e)] — the {!error}
    type is the one source of truth for the error taxonomy. New code
    should call {!parse_result} (or feed chunks to {!Stream}) and
    match on the typed error. *)

(** {1 Incremental framing units}

    The building blocks of the resumable {!Stream} parser. Each
    attempts to read one framing unit of [data] starting at [pos]
    against the hostile-input bounds above and reports how far it
    got. [Unit_truncated off] means the available bytes ran out at
    offset [off] — feeding more data may complete the unit, so a
    streaming caller treats it as "need more" while a caller at
    end-of-input treats it as the definitive {!Truncated} error
    (offsets agree with {!parse_result} by construction).
    [Unit_error] is definite: no suffix can repair the prefix. *)

type 'a step =
  | Unit_ready of 'a * int  (** parsed value and the position after it *)
  | Unit_truncated of int  (** ran out of bytes at this offset *)
  | Unit_error of error  (** unrepairable framing damage *)

val read_preamble : string -> pos:int -> (header * int) step
(** Magic, version, header fields and the tile count — everything
    before the first tile segment. *)

val read_tile : header:header -> string -> pos:int -> tile_segment step
(** One tile segment, validated against [header] exactly as
    {!parse_result} does. *)

val segment_bytes : tile_segment -> int
(** Total entropy-coded payload of a tile (sum of all code-block
    codewords). *)

val block_grid : code_block:int -> w:int -> h:int -> (int * int * int * int) list
(** Code-block rectangles [(x0, y0, w, h)] tiling a [w]x[h] band in
    raster order; empty for a zero-area band. *)

val pp_mode : Format.formatter -> mode -> unit
