(** Flat, off-heap coefficient planes for the parallel decode path.

    A plane is one native-int Bigarray per tile component, zero-filled
    on creation. Worker domains blit decoded code-blocks into disjoint
    rectangles of a shared plane ({!blit_block} checks the rectangle
    once per block, so corrupted geometry fails loudly), and the
    in-place wavelet transforms then run over the same storage. The
    buffer lives outside the GC'd heap and is never scanned: a decode
    over flat planes performs no per-block or per-line heap allocation,
    which is what lets domains scale instead of serialising on the
    stop-the-world minor collector.

    Concurrent writes from several domains are safe exactly when their
    rectangles are disjoint — the discipline the decoder's per-code-
    block job structure guarantees. *)

type t

val create : w:int -> h:int -> t
(** Zero-filled [w]x[h] plane. Raises [Invalid_argument] if a
    dimension is not positive. *)

val width : t -> int
val height : t -> int

val get : t -> x:int -> y:int -> int
val set : t -> x:int -> y:int -> int -> unit
(** Bounds-checked single-coefficient access ([Invalid_argument]
    outside the plane). *)

val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit
(** Row-major linear access for transform inner loops; bounds are the
    caller's responsibility. *)

val fill : t -> int -> unit

val blit_block : t -> x0:int -> y0:int -> w:int -> h:int -> int array -> unit
(** Writes the [w]x[h] row-major prefix of the array into the
    rectangle at ([x0], [y0]). One bounds check per block; raises
    [Invalid_argument] if the rectangle leaves the plane or the array
    is too short. *)

val to_array : t -> int array
(** Row-major copy — the hand-off to the boxed colour/assemble
    stages. *)

val of_array : w:int -> h:int -> int array -> t
(** Raises [Invalid_argument] unless the array has length [w * h]. *)

(** Per-domain scratch buffers, keyed in [Domain.DLS].

    Each function returns this domain's buffer for that key, grown
    geometrically to at least the requested length (contents beyond
    what the caller writes are unspecified — stale data from earlier
    work items). A buffer is valid until the next request for the
    {e same} key on the {e same} domain: [ints] and [ints2] may be
    held simultaneously (the 5/3 inverse needs a source line and an
    even-sample line), but no buffer may be retained across work
    items. *)
module Scratch : sig
  val ints : int -> int array
  val ints2 : int -> int array
  val floats : int -> float array
end
