(* Flat, off-heap coefficient storage for the parallel decode path.

   A [t] is one native-int Bigarray per tile component: worker domains
   blit decoded code-blocks into disjoint rectangles of the shared
   plane without allocating on the OCaml heap, so the stop-the-world
   minor collections that serialise a boxed-array decode disappear
   from the hot path. The buffer lives outside the GC'd heap and is
   never scanned. *)

type t = {
  pw : int;
  ph : int;
  data : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
}

let create ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Plane.create: size";
  let data = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (w * h) in
  Bigarray.Array1.fill data 0;
  { pw = w; ph = h; data }

let width p = p.pw
let height p = p.ph

let get p ~x ~y =
  if x < 0 || x >= p.pw || y < 0 || y >= p.ph then
    invalid_arg "Plane.get: out of bounds";
  Bigarray.Array1.unsafe_get p.data ((y * p.pw) + x)

let set p ~x ~y v =
  if x < 0 || x >= p.pw || y < 0 || y >= p.ph then
    invalid_arg "Plane.set: out of bounds";
  Bigarray.Array1.unsafe_set p.data ((y * p.pw) + x) v

(* Row-major linear access for the transform inner loops; bounds are
   the caller's responsibility. *)
let unsafe_get p i = Bigarray.Array1.unsafe_get p.data i
let unsafe_set p i v = Bigarray.Array1.unsafe_set p.data i v

let fill p v = Bigarray.Array1.fill p.data v

(* Writes the [w]x[h] row-major prefix of [block] into the rectangle
   at ([x0], [y0]). The bounds check runs once per block, not per
   coefficient — corrupted geometry fails loudly instead of writing
   outside the plane. *)
let blit_block p ~x0 ~y0 ~w ~h block =
  if
    x0 < 0 || y0 < 0 || w < 0 || h < 0
    || x0 + w > p.pw
    || y0 + h > p.ph
    || Array.length block < w * h
  then invalid_arg "Plane.blit_block: rectangle out of bounds";
  for y = 0 to h - 1 do
    let src = y * w and dst = ((y0 + y) * p.pw) + x0 in
    for x = 0 to w - 1 do
      Bigarray.Array1.unsafe_set p.data (dst + x)
        (Array.unsafe_get block (src + x))
    done
  done

let to_array p =
  Array.init (p.pw * p.ph) (fun i -> Bigarray.Array1.unsafe_get p.data i)

let of_array ~w ~h data =
  if Array.length data <> w * h then invalid_arg "Plane.of_array: length";
  let p = create ~w ~h in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set p.data i v) data;
  p

(* -- per-domain scratch buffers --------------------------------------

   Reusable line/block buffers for the in-place wavelet transforms.
   Each key hands the calling domain one growing buffer, valid until
   the next request for the same key on the same domain — callers may
   hold [ints] and [ints2] simultaneously (e.g. the 5/3 inverse needs
   a source line and an even-sample line), but must never retain a
   buffer across work items. Buffers only grow, so a domain decoding
   many tiles of one geometry allocates exactly twice. *)

module Scratch = struct
  let int_key : int array ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [||])

  let int2_key : int array ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [||])

  let float_key : float array ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [||])

  let grab cell make n =
    if n < 0 then invalid_arg "Plane.Scratch: negative size";
    if Array.length !cell < n then
      cell := make (Stdlib.max n (2 * Array.length !cell));
    !cell

  let ints n = grab (Domain.DLS.get int_key) (fun n -> Array.make n 0) n
  let ints2 n = grab (Domain.DLS.get int2_key) (fun n -> Array.make n 0) n
  let floats n = grab (Domain.DLS.get float_key) (fun n -> Array.make n 0.0) n
end
