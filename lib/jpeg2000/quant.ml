let step_for ~base_step ~levels ~level orientation =
  if base_step <= 0.0 then invalid_arg "Quant.step_for: base_step";
  if level < 0 || level > levels then invalid_arg "Quant.step_for: level";
  (* Finer steps for deeper (lower-frequency) bands: each level of
     synthesis roughly doubles a coefficient's footprint, and the
     nominal gain of the band scales the effective amplitude. *)
  let depth_scale = Float.pow 2.0 (float_of_int (level - 1)) in
  let gain_scale =
    Float.pow (sqrt 2.0) (float_of_int (Subband.gain_log2 orientation))
  in
  base_step *. gain_scale /. depth_scale

let quantise ~step values =
  if step <= 0.0 then invalid_arg "Quant.quantise: step";
  Array.map
    (fun x ->
      let q = int_of_float (floor (Float.abs x /. step)) in
      if x < 0.0 then -q else q)
    values

let dequantise_one ~step q =
  if q = 0 then 0.0
  else
    let magnitude = (float_of_int (abs q) +. 0.5) *. step in
    if q < 0 then -.magnitude else magnitude

let dequantise ~step quantised =
  if step <= 0.0 then invalid_arg "Quant.dequantise: step";
  Array.map (dequantise_one ~step) quantised

let max_error ~step = step
