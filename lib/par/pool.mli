(** A fixed-size Domain pool with a deterministic data-parallel [map].

    The pool exists to turn the {e modelled} concurrency of the decoder
    — independent EBCOT code-blocks, per-component IDWT, independent
    campaign grid points — into real OCaml 5 parallelism without
    changing a single output bit: {!map} partitions its input into
    contiguous index ranges, each worker writes results {e by index},
    and the merged array is therefore identical to [Array.map]
    regardless of how the runtime schedules the domains.

    Every parallel entry point in the repository takes an optional
    [?pool] defaulting to {!sequential}, a pool value that spawns
    nothing and allocates nothing beyond the result array — the
    single-threaded behaviour (and cost) of the code before this layer
    existed.

    Worker domains hold no simulation state: the cross-cutting layers
    ({!Telemetry.Sink}, [Osss.Fault_hooks]) keep their mutable slots in
    [Domain.DLS], so a sink or fault engine installed inside one task
    is invisible to every other domain. *)

type t

val sequential : t
(** Runs every {!map} as a plain [Array.map] on the calling domain.
    No domains are spawned; {!shutdown} is a no-op. *)

val create : domains:int -> t
(** [create ~domains] spawns [domains] worker domains that block on a
    Mutex/Condition work queue until {!shutdown}. Raises
    [Invalid_argument] if [domains < 1]. Pools are not a measure of
    available hardware: callers pick the size (e.g. from [--jobs]). *)

val of_jobs : int -> t
(** [of_jobs n] is {!sequential} for [n = 1] and a pool of [n - 1]
    workers otherwise — the calling domain drains the queue alongside
    the workers during {!map}, so [--jobs n] occupies [n] domains
    total. Raises [Invalid_argument] for [n < 1]: a zero or negative
    job count is a caller bug, not a request for sequential mode. *)

val parallelism : t -> int
(** Number of domains that execute a {!map}: the workers plus the
    calling domain, or [1] for {!sequential}. *)

val map : t -> 'a array -> ('a -> 'b) -> 'b array
(** [map pool arr f] = [Array.map f arr], computed by the pool's
    workers and the calling domain in contiguous chunks. Deterministic
    by construction: results are written by index, so the merge order
    never depends on scheduling. If any [f] raises, one of the raised
    exceptions is re-raised in the caller after all chunks finish.
    Calls from inside a pool task (nested parallelism) degrade to
    sequential [Array.map] rather than deadlock the queue. *)

val iter : t -> 'a array -> ('a -> unit) -> unit
(** [map] for effects (e.g. in-place per-component IDWT). The items
    must be independent: no two may touch the same mutable state. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent; {!map} after [shutdown]
    raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exceptions). *)

val with_jobs : int -> (t -> 'a) -> 'a
(** {!of_jobs} with the same lifetime guarantee. *)
