(** A fixed-size Domain pool with a deterministic, work-stealing
    data-parallel [map].

    The pool exists to turn the {e modelled} concurrency of the decoder
    — independent EBCOT code-blocks, per-component IDWT, independent
    campaign grid points — into real OCaml 5 parallelism without
    changing a single output bit.

    {2 The work-stealing contract}

    A {!map} (or {!iter}) cuts its [n] items into fixed-size chunks of
    contiguous indices — [?chunk] items each, default
    [max 1 (n / (4 * parallelism))] — and publishes one atomic cursor
    over the chunk sequence. Every participating domain (the spawned
    workers plus the calling domain) repeatedly claims the next
    unclaimed chunk and runs it, so a domain stuck on one expensive
    chunk no longer strands the rest of the batch: idle domains simply
    steal the remaining chunks. {e Which} domain runs a chunk is
    scheduling-dependent; {e what} a chunk computes, and where its
    results land, is a pure function of the chunk index — results are
    written by index and merged in index order — so the merged array is
    identical to [Array.map] on every schedule.

    Telemetry (on the calling domain's sink): [par.map.calls],
    [par.map.jobs], [par.map.chunks] and the [par.map.chunk_sizes]
    histogram are pure functions of the batch shape and therefore
    deterministic; [par.map.steals] counts the chunks claimed by
    spawned workers (rather than the caller) and is the one
    scheduling-dependent counter — nothing byte-diffed derives from it.

    Every parallel entry point in the repository takes an optional
    [?pool] defaulting to {!sequential}, a pool value that spawns
    nothing and allocates nothing beyond the result array — the
    single-threaded behaviour (and cost) of the code before this layer
    existed.

    Worker domains hold no simulation state: the cross-cutting layers
    ({!Telemetry.Sink}, [Osss.Fault_hooks]) keep their mutable slots in
    [Domain.DLS], so a sink or fault engine installed inside one task
    is invisible to every other domain. *)

type t

val sequential : t
(** Runs every {!map} as a plain [Array.map] on the calling domain.
    No domains are spawned; {!shutdown} is a no-op. *)

val create : domains:int -> t
(** [create ~domains] spawns [domains] worker domains that block on a
    Mutex/Condition work queue until {!shutdown}. Raises
    [Invalid_argument] if [domains < 1]. Pools are not a measure of
    available hardware: callers pick the size (e.g. from [--jobs]). *)

val of_jobs : int -> t
(** [of_jobs n] is {!sequential} for [n = 1] and a pool of [n - 1]
    workers otherwise — the calling domain claims chunks alongside the
    workers during {!map}, so [--jobs n] occupies [n] domains total.
    Raises [Invalid_argument] for [n < 1]: a zero or negative job
    count is a caller bug, not a request for sequential mode. *)

val parallelism : t -> int
(** Number of domains that execute a {!map}: the workers plus the
    calling domain, or [1] for {!sequential}. *)

val map : ?chunk:int -> t -> 'a array -> ('a -> 'b) -> 'b array
(** [map pool arr f] = [Array.map f arr], computed under the
    work-stealing contract above. [?chunk] overrides the chunk size
    (items per steal; raises [Invalid_argument] if [< 1]): pass [1]
    when the per-item cost is large and wildly uneven (e.g. whole
    model simulations), leave the default for fine-grained items. If
    any [f] raises, one of the raised exceptions is re-raised in the
    caller after all chunks finish. Calls from inside a pool task
    (nested parallelism) degrade to sequential [Array.map] rather
    than deadlock the queue. *)

val iter : ?chunk:int -> t -> 'a array -> ('a -> unit) -> unit
(** [map] for effects, without allocating a result array (e.g.
    in-place per-component IDWT, entropy decode into flat planes).
    The items must be independent: no two may touch the same mutable
    state. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent; {!map} after [shutdown]
    raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exceptions). *)

val with_jobs : int -> (t -> 'a) -> 'a
(** {!of_jobs} with the same lifetime guarantee. *)
