type pool = {
  mutex : Mutex.t;
  work : Condition.t; (* tasks were queued, or shutdown was requested *)
  finished : Condition.t; (* a batch completed *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

type t = Sequential | Pool of pool

let sequential = Sequential

(* Set in every worker domain: a [map] issued from inside a task runs
   sequentially on that worker instead of re-entering the queue, where
   it could wait on chunks no free worker is left to run. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop p () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock p.mutex;
    while Queue.is_empty p.tasks && not p.stop do
      Condition.wait p.work p.mutex
    done;
    if Queue.is_empty p.tasks then Mutex.unlock p.mutex (* stop *)
    else begin
      let task = Queue.pop p.tasks in
      Mutex.unlock p.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Par.Pool.create: domains < 1";
  let p =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  p.workers <- Array.init domains (fun _ -> Domain.spawn (worker_loop p));
  Pool p

(* The calling domain helps drain the queue during [map], so [n] jobs
   need only [n - 1] spawned workers — one fewer domain for the
   stop-the-world GC to synchronise. *)
let of_jobs n =
  if n < 1 then invalid_arg "Par.Pool.of_jobs: jobs < 1"
  else if n = 1 then Sequential
  else create ~domains:(n - 1)

let parallelism = function
  | Sequential -> 1
  | Pool p -> Array.length p.workers + 1

let shutdown = function
  | Sequential -> ()
  | Pool p ->
    let workers =
      Mutex.lock p.mutex;
      p.stop <- true;
      Condition.broadcast p.work;
      let w = p.workers in
      p.workers <- [||];
      Mutex.unlock p.mutex;
      w
    in
    Array.iter Domain.join workers

let map t arr f =
  match t with
  | Sequential ->
    (* Pool-phase attribution, counted on the caller's domain (worker
       domains carry no sink, so nested maps cost one branch). *)
    Telemetry.Sink.incr "par.map.calls";
    Telemetry.Sink.incr ~by:(Array.length arr) "par.map.jobs";
    Telemetry.Sink.incr "par.map.sequential";
    Array.map f arr
  | Pool _ when Domain.DLS.get in_worker -> Array.map f arr
  | Pool p ->
    let n = Array.length arr in
    Telemetry.Sink.incr "par.map.calls";
    Telemetry.Sink.incr ~by:n "par.map.jobs";
    if n = 0 then [||]
    else begin
      if p.stop then invalid_arg "Par.Pool.map: pool is shut down";
      let chunks = Stdlib.min n (Array.length p.workers + 1) in
      Telemetry.Sink.incr ~by:chunks "par.map.chunks";
      let parts = Array.make chunks [||] in
      let remaining = ref chunks in
      let error = ref None in
      let task c () =
        let result =
          try
            let lo = c * n / chunks and hi = (c + 1) * n / chunks in
            Ok (Array.init (hi - lo) (fun i -> f arr.(lo + i)))
          with e -> Error e
        in
        Mutex.lock p.mutex;
        (match result with
        | Ok part -> parts.(c) <- part
        | Error e -> if !error = None then error := Some e);
        remaining := !remaining - 1;
        if !remaining = 0 then Condition.broadcast p.finished;
        Mutex.unlock p.mutex
      in
      Mutex.lock p.mutex;
      for c = 0 to chunks - 1 do
        Queue.push (task c) p.tasks
      done;
      Condition.broadcast p.work;
      (* Help drain the queue instead of idling: the caller runs
         queued tasks (flagged as a worker, so nested maps inside them
         degrade to sequential) and only sleeps once the queue is
         empty and some chunks are still running elsewhere. *)
      while !remaining > 0 do
        match Queue.pop p.tasks with
        | t ->
          Mutex.unlock p.mutex;
          Domain.DLS.set in_worker true;
          t ();
          Domain.DLS.set in_worker false;
          Mutex.lock p.mutex
        | exception Queue.Empty -> Condition.wait p.finished p.mutex
      done;
      Mutex.unlock p.mutex;
      (match !error with Some e -> raise e | None -> ());
      if chunks = 1 then parts.(0) else Array.concat (Array.to_list parts)
    end

let iter t arr f = ignore (map t arr f : unit array)

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let with_jobs n f =
  let t = of_jobs n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
