type pool = {
  mutex : Mutex.t;
  work : Condition.t; (* tasks were queued, or shutdown was requested *)
  finished : Condition.t; (* a batch completed *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

type t = Sequential | Pool of pool

let sequential = Sequential

(* Set in every worker domain: a [map] issued from inside a task runs
   sequentially on that worker instead of re-entering the queue, where
   it could wait on chunks no free worker is left to run. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop p () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock p.mutex;
    while Queue.is_empty p.tasks && not p.stop do
      Condition.wait p.work p.mutex
    done;
    if Queue.is_empty p.tasks then Mutex.unlock p.mutex (* stop *)
    else begin
      let task = Queue.pop p.tasks in
      Mutex.unlock p.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Par.Pool.create: domains < 1";
  let p =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  p.workers <- Array.init domains (fun _ -> Domain.spawn (worker_loop p));
  Pool p

(* The calling domain helps drain the queue during [map], so [n] jobs
   need only [n - 1] spawned workers — one fewer domain for the
   stop-the-world GC to synchronise. *)
let of_jobs n =
  if n < 1 then invalid_arg "Par.Pool.of_jobs: jobs < 1"
  else if n = 1 then Sequential
  else create ~domains:(n - 1)

let parallelism = function
  | Sequential -> 1
  | Pool p -> Array.length p.workers + 1

let shutdown = function
  | Sequential -> ()
  | Pool p ->
    let workers =
      Mutex.lock p.mutex;
      p.stop <- true;
      Condition.broadcast p.work;
      let w = p.workers in
      p.workers <- [||];
      Mutex.unlock p.mutex;
      w
    in
    Array.iter Domain.join workers

(* Roughly four stealable chunks per domain: small enough that one
   expensive chunk cannot strand the batch behind a single domain,
   large enough that the atomic claim is amortised over real work. *)
let default_chunk ~n ~parallelism = Stdlib.max 1 (n / (parallelism * 4))

(* The work-stealing batch engine shared by [map] and [iter]: the
   items are cut into fixed-size chunks and every participating domain
   claims the next unclaimed chunk from one atomic cursor until none
   are left. Which domain runs which chunk is scheduling-dependent;
   what each chunk computes (and where its results land) depends only
   on the chunk index, so batches stay deterministic. [run_range lo hi
   cidx] must confine its effects to chunk [cidx] / items [lo, hi).
   Returns the number of chunks claimed by spawned workers. *)
let run_batch p ~n ~chunk ~run_range =
  let nchunks = (n + chunk - 1) / chunk in
  let next = Atomic.make 0 in
  let stolen = Atomic.make 0 in
  let remaining = ref nchunks in
  let error = ref None in
  let exec c =
    (try run_range (c * chunk) (Stdlib.min n ((c + 1) * chunk)) c
     with e ->
       Mutex.lock p.mutex;
       if !error = None then error := Some e;
       Mutex.unlock p.mutex);
    Mutex.lock p.mutex;
    remaining := !remaining - 1;
    if !remaining = 0 then Condition.broadcast p.finished;
    Mutex.unlock p.mutex
  in
  let drain ~count_steals () =
    let rec loop claimed =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks then begin
        exec c;
        loop (claimed + 1)
      end
      else if count_steals && claimed > 0 then
        ignore (Atomic.fetch_and_add stolen claimed : int)
    in
    loop 0
  in
  Mutex.lock p.mutex;
  (* One drain task per worker that could usefully claim a chunk; the
     caller takes the rest. A drain that arrives after the cursor is
     exhausted exits without touching the batch. *)
  for _ = 1 to Stdlib.min (Array.length p.workers) (nchunks - 1) do
    Queue.push (drain ~count_steals:true) p.tasks
  done;
  Condition.broadcast p.work;
  Mutex.unlock p.mutex;
  (* The caller claims chunks too — flagged as a worker so nested maps
     inside [run_range] degrade to sequential — then sleeps until the
     stragglers on other domains finish. *)
  Domain.DLS.set in_worker true;
  drain ~count_steals:false ();
  Domain.DLS.set in_worker false;
  Mutex.lock p.mutex;
  while !remaining > 0 do
    Condition.wait p.finished p.mutex
  done;
  Mutex.unlock p.mutex;
  (match !error with Some e -> raise e | None -> ());
  Atomic.get stolen

let checked_chunk = function
  | Some c when c < 1 -> invalid_arg "Par.Pool: chunk < 1"
  | c -> c

let batch_telemetry ~nchunks ~chunk ~stolen =
  Telemetry.Sink.incr ~by:nchunks "par.map.chunks";
  Telemetry.Sink.incr ~by:stolen "par.map.steals";
  Telemetry.Sink.observe "par.map.chunk_sizes" chunk

let map ?chunk t arr f =
  let chunk = checked_chunk chunk in
  match t with
  | Sequential ->
    (* Pool-phase attribution, counted on the caller's domain (worker
       domains carry no sink, so nested maps cost one branch). *)
    Telemetry.Sink.incr "par.map.calls";
    Telemetry.Sink.incr ~by:(Array.length arr) "par.map.jobs";
    Telemetry.Sink.incr "par.map.sequential";
    Array.map f arr
  | Pool _ when Domain.DLS.get in_worker -> Array.map f arr
  | Pool p ->
    let n = Array.length arr in
    Telemetry.Sink.incr "par.map.calls";
    Telemetry.Sink.incr ~by:n "par.map.jobs";
    if n = 0 then [||]
    else begin
      if p.stop then invalid_arg "Par.Pool.map: pool is shut down";
      let chunk =
        match chunk with
        | Some c -> c
        | None -> default_chunk ~n ~parallelism:(Array.length p.workers + 1)
      in
      let nchunks = (n + chunk - 1) / chunk in
      let parts = Array.make nchunks [||] in
      let run_range lo hi c =
        parts.(c) <- Array.init (hi - lo) (fun i -> f arr.(lo + i))
      in
      let stolen = run_batch p ~n ~chunk ~run_range in
      batch_telemetry ~nchunks ~chunk ~stolen;
      if nchunks = 1 then parts.(0) else Array.concat (Array.to_list parts)
    end

let iter ?chunk t arr f =
  let chunk = checked_chunk chunk in
  match t with
  | Sequential ->
    Telemetry.Sink.incr "par.map.calls";
    Telemetry.Sink.incr ~by:(Array.length arr) "par.map.jobs";
    Telemetry.Sink.incr "par.map.sequential";
    Array.iter f arr
  | Pool _ when Domain.DLS.get in_worker -> Array.iter f arr
  | Pool p ->
    let n = Array.length arr in
    Telemetry.Sink.incr "par.map.calls";
    Telemetry.Sink.incr ~by:n "par.map.jobs";
    if n = 0 then ()
    else begin
      if p.stop then invalid_arg "Par.Pool.map: pool is shut down";
      let chunk =
        match chunk with
        | Some c -> c
        | None -> default_chunk ~n ~parallelism:(Array.length p.workers + 1)
      in
      let nchunks = (n + chunk - 1) / chunk in
      let run_range lo hi _ =
        for i = lo to hi - 1 do
          f arr.(i)
        done
      in
      let stolen = run_batch p ~n ~chunk ~run_range in
      batch_telemetry ~nchunks ~chunk ~stolen
    end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let with_jobs n f =
  let t = of_jobs n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
