(* Tests for the RTL substrate and the FOSSY synthesis flow. *)

let qc = QCheck_alcotest.to_alcotest

open Fossy.Hir

(* A small behavioural module used across the tests: accumulate 8
   input samples through a scale function, one per cycle. *)
let scale_subprogram =
  {
    s_name = "scale";
    s_params = [ ("x", int_ty 16); ("k", int_ty 16) ];
    s_ret = Some (int_ty 16);
    s_locals = [ ("t", int_ty 32) ];
    s_body = [ assign "t" (v "x" *: v "k"); Return (Some (v "t" >>: 4)) ];
  }

let accumulator =
  {
    m_name = "acc8";
    m_ports =
      [ ("din", Pin, int_ty 16); ("dout", Pout, int_ty 16); ("go", Pin, uint_ty 1) ];
    m_vars = [ ("total", int_ty 16) ];
    m_arrays = [ ("window", int_ty 16, 8) ];
    m_subprograms = [ scale_subprogram ];
    m_body =
      [
        While (Bin (Eq, v "go", c 0), [ Wait ]);
        assign "total" (c 0);
        For
          ( "i",
            0,
            7,
            [
              assign_arr "window" (v "i") (v "din");
              assign "total" (v "total" +: Call ("scale", [ Arr ("window", v "i"); c 3 ]));
              Wait;
            ] );
        assign "dout" (v "total");
        Wait;
      ];
  }

(* -- Hir validation ------------------------------------------------ *)

let test_validate_accepts_good_module () =
  match validate accumulator with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_validate_rejects_bad_modules () =
  let expect_error label m =
    match validate m with
    | Ok () -> Alcotest.failf "%s: expected validation error" label
    | Error _ -> ()
  in
  expect_error "unknown variable"
    { accumulator with m_body = [ assign "nonexistent" (c 1) ] };
  expect_error "unknown function"
    { accumulator with m_body = [ assign "total" (Call ("missing", [])) ] };
  expect_error "wait-free while"
    { accumulator with m_body = [ While (Bin (Eq, v "go", c 0), [ assign "total" (c 1) ]) ] };
  expect_error "return in process body" { accumulator with m_body = [ Return None ] };
  expect_error "wait inside function"
    {
      accumulator with
      m_subprograms =
        [ { scale_subprogram with s_body = [ Wait; Return (Some (c 0)) ] } ];
      m_body = [ assign "total" (Call ("scale", [ c 1; c 2 ])); Wait ];
    };
  expect_error "arity mismatch"
    { accumulator with m_body = [ assign "total" (Call ("scale", [ c 1 ])); Wait ] }

let test_hir_pp_emits_systemc () =
  let text = Fossy.Hir_pp.emit accumulator in
  List.iter
    (fun fragment ->
      if not (Str_util.contains text fragment) then
        Alcotest.failf "missing %S" fragment)
    [ "SC_MODULE(acc8)"; "SC_CTHREAD"; "sc_int<16>"; "wait();"; "scale(" ]

(* -- Inline --------------------------------------------------------- *)

let rec stmts_have_calls stmts =
  let rec expr_has = function
    | Call _ -> true
    | Bin (_, a, b) -> expr_has a || expr_has b
    | Un (_, e) | Arr (_, e) -> expr_has e
    | Const _ | Var _ -> false
  in
  List.exists
    (function
      | Assign (_, e) -> expr_has e
      | If (cond, a, b) -> expr_has cond || stmts_have_calls a || stmts_have_calls b
      | While (cond, body) -> expr_has cond || stmts_have_calls body
      | For (_, _, _, body) -> stmts_have_calls body
      | Call_p _ -> true
      | Wait | Return _ -> false)
    stmts

let test_inline_removes_calls () =
  let inlined = Fossy.Inline.run accumulator in
  Alcotest.(check bool) "no subprograms left" true (inlined.m_subprograms = []);
  Alcotest.(check bool) "no call nodes left" false (stmts_have_calls inlined.m_body)

let test_inline_substitutes_simple_args () =
  (* Calling with variable/constant args must not create parameter
     temporaries (only the local and the return temp remain). *)
  let m =
    {
      accumulator with
      m_body = [ assign "total" (Call ("scale", [ v "din"; c 3 ])); Wait ];
    }
  in
  let inlined = Fossy.Inline.run m in
  let new_vars =
    List.filter (fun (n, _) -> n <> "total") inlined.m_vars |> List.map fst
  in
  Alcotest.(check int) "only local + return temp" 2 (List.length new_vars)

let test_inline_procedure_with_wait () =
  let p =
    {
      s_name = "pulse";
      s_params = [ ("n", int_ty 8) ];
      s_ret = None;
      s_locals = [];
      s_body = [ assign "total" (v "n"); Wait; assign "total" (c 0) ];
    }
  in
  let m =
    {
      accumulator with
      m_subprograms = [ p ];
      m_body = [ Call_p ("pulse", [ c 5 ]); Wait ];
    }
  in
  let inlined = Fossy.Inline.run m in
  Alcotest.(check bool) "wait survives inlining" true
    (stmts_contain_wait inlined.m_body)

(* -- FSM extraction -------------------------------------------------- *)

let fsm_of m = Fossy.Fsm.of_module (Fossy.Inline.run m)

let test_fsm_states_at_waits () =
  let m =
    {
      accumulator with
      m_subprograms = [];
      m_body = [ assign "total" (c 1); Wait; assign "total" (c 2); Wait ];
    }
  in
  let fsm = fsm_of m in
  (* entry state + one per wait = 3 (last wait loops to entry). *)
  Alcotest.(check int) "three states" 3 (Fossy.Fsm.state_count fsm)

let test_fsm_all_states_reachable () =
  let fsm = fsm_of accumulator in
  let reachable = Fossy.Fsm.reachable_states fsm in
  Alcotest.(check bool) "every state reachable" true (Array.for_all Fun.id reachable)

let test_fsm_unrolls_waitfree_for () =
  let m =
    {
      accumulator with
      m_subprograms = [];
      m_body =
        [ For ("i", 0, 3, [ assign_arr "window" (v "i") (c 0) ]); Wait ];
    }
  in
  let fsm = fsm_of m in
  Alcotest.(check int) "unrolled into entry state" 2 (Fossy.Fsm.state_count fsm);
  Alcotest.(check int) "four unrolled actions" 4
    (List.length fsm.Fossy.Fsm.states.(0).Fossy.Fsm.actions)

let test_fsm_rejects_waitfree_while () =
  let m =
    {
      accumulator with
      m_subprograms = [];
      m_body = [ While (Bin (Eq, v "go", c 0), [ assign "total" (c 1) ]) ];
    }
  in
  Alcotest.check_raises "rejected" (Failure "Fsm: wait-free while loop") (fun () ->
      ignore (fsm_of m))

let fsm_reachability_qcheck =
  QCheck.Test.make ~name:"random straight-line modules synthesise to live FSMs"
    ~count:60
    QCheck.(list_of_size Gen.(1 -- 15) (int_bound 2))
    (fun shape ->
      (* 0 = assignment, 1 = wait, 2 = guarded assignment *)
      let body =
        List.concat_map
          (function
            | 0 -> [ assign "total" (v "total" +: c 1) ]
            | 1 -> [ Wait ]
            | _ ->
              [ If (Bin (Eq, v "go", c 1), [ assign "total" (c 0); Wait ], []) ])
          shape
        @ [ Wait ]
      in
      let m = { accumulator with m_subprograms = []; m_body = body } in
      let fsm = fsm_of m in
      Array.for_all Fun.id (Fossy.Fsm.reachable_states fsm))

(* -- Codegen / VHDL ------------------------------------------------- *)

let synth m =
  match Fossy.Synthesis.synthesise m with
  | Ok r -> r
  | Error es -> Alcotest.failf "synthesis failed: %s" (String.concat "; " es)

let test_codegen_produces_fsm_vhdl () =
  let r = synth accumulator in
  List.iter
    (fun fragment ->
      if not (Str_util.contains r.Fossy.Synthesis.vhdl_text fragment) then
        Alcotest.failf "missing %S" fragment)
    [
      "entity acc8 is";
      "rising_edge(clk)";
      "case state is";
      "when s0 =>";
      "signed(15 downto 0)";
      "end architecture;";
    ]

let test_codegen_identifiers_preserved () =
  (* "all identifiers are preserved during synthesis" *)
  let r = synth accumulator in
  List.iter
    (fun name ->
      if not (Str_util.contains r.Fossy.Synthesis.vhdl_text name) then
        Alcotest.failf "identifier %s lost" name)
    [ "total"; "window"; "din"; "dout" ]

let test_vhdl_loc_counts_nonblank () =
  let r = synth accumulator in
  Alcotest.(check bool) "loc positive" true (r.Fossy.Synthesis.vhdl_loc > 0);
  let lines = String.split_on_char '\n' r.Fossy.Synthesis.vhdl_text in
  let nonblank = List.filter (fun l -> String.trim l <> "") lines in
  Alcotest.(check int) "matches text" (List.length nonblank)
    r.Fossy.Synthesis.vhdl_loc

(* -- Netlist / area / timing ---------------------------------------- *)

let test_netlist_counts_registers () =
  let r = synth accumulator in
  let s = r.Fossy.Synthesis.summary in
  (* window array = 8 x 16 = 128 register bits at least. *)
  Alcotest.(check bool) "array bits" true (s.Rtl.Netlist.array_bits >= 128);
  Alcotest.(check bool) "registers include array" true
    (s.Rtl.Netlist.register_bits >= s.Rtl.Netlist.array_bits)

let test_netlist_detects_multiplier () =
  let r = synth accumulator in
  let has_mul =
    List.exists
      (fun (o : Rtl.Netlist.op_count) -> o.Rtl.Netlist.kind = Rtl.Netlist.Mul)
      r.Fossy.Synthesis.summary.Rtl.Netlist.ops_total
  in
  Alcotest.(check bool) "multiplier found" true has_mul

let test_shared_less_or_equal_total () =
  let r = synth Models.Idwt_cores.idwt97_systemc in
  let s = r.Fossy.Synthesis.summary in
  Alcotest.(check bool) "shared ops below total" true
    (Rtl.Netlist.total_op_luts s.Rtl.Netlist.ops_shared
    <= Rtl.Netlist.total_op_luts s.Rtl.Netlist.ops_total);
  Alcotest.(check bool) "shared reads below total" true
    (Rtl.Netlist.read_port_luts s.Rtl.Netlist.reads_shared
    <= Rtl.Netlist.read_port_luts s.Rtl.Netlist.reads_total)

let test_area_monotonic_in_sharing () =
  (* For a single-FSM design, the shared estimate must not exceed the
     flat one by more than the documented mux overheads; sanity: both
     are positive and flat >= shared for the multiplier-heavy core. *)
  let r = synth Models.Idwt_cores.idwt97_systemc in
  let s = r.Fossy.Synthesis.summary in
  let shared = Rtl.Area.estimate ~sharing:Rtl.Area.Shared s in
  let flat = Rtl.Area.estimate ~sharing:Rtl.Area.Flat s in
  Alcotest.(check bool) "positive" true (shared.Rtl.Area.luts > 0);
  Alcotest.(check bool) "sharing reduces the 9/7 core" true
    (shared.Rtl.Area.luts < flat.Rtl.Area.luts)

let test_timing_sharing_slower () =
  let r = synth Models.Idwt_cores.idwt97_systemc in
  let s = r.Fossy.Synthesis.summary in
  Alcotest.(check bool) "sharing lowers fmax" true
    (Rtl.Timing_model.estimate_mhz ~sharing:Rtl.Area.Shared s
    < Rtl.Timing_model.estimate_mhz ~sharing:Rtl.Area.Flat s)

let test_inline_recursion_limit () =
  let rec_sub =
    {
      s_name = "forever";
      s_params = [ ("x", int_ty 8) ];
      s_ret = Some (int_ty 8);
      s_locals = [];
      s_body = [ Return (Some (Call ("forever", [ v "x" ]))) ];
    }
  in
  let m =
    {
      accumulator with
      m_subprograms = [ rec_sub ];
      m_body = [ assign "total" (Call ("forever", [ c 1 ])); Wait ];
    }
  in
  Alcotest.(check bool) "recursion detected" true
    (try ignore (Fossy.Inline.run m); false with Failure _ -> true)

let test_netlist_constant_shift_free () =
  (* Multiplication by a power of two must not create a multiplier. *)
  let m =
    {
      accumulator with
      m_subprograms = [];
      m_body = [ assign "total" (v "din" *: c 8); Wait ];
    }
  in
  let r = synth m in
  let has_mul =
    List.exists
      (fun (o : Rtl.Netlist.op_count) -> o.Rtl.Netlist.kind = Rtl.Netlist.Mul)
      r.Fossy.Synthesis.summary.Rtl.Netlist.ops_total
  in
  Alcotest.(check bool) "no multiplier for x8" false has_mul

let test_timing_no_sharing_penalty_without_muls () =
  (* The 5/3 core has no multipliers, so sharing must not slow it. *)
  let r = synth Models.Idwt_cores.idwt53_systemc in
  let s = r.Fossy.Synthesis.summary in
  let shared = Rtl.Timing_model.critical_path_ns ~sharing:Rtl.Area.Shared s in
  let flat = Rtl.Timing_model.critical_path_ns ~sharing:Rtl.Area.Flat s in
  Alcotest.(check (float 1e-9)) "identical critical paths" flat shared

let test_area_fits_lx25 () =
  let r = synth Models.Idwt_cores.idwt53_systemc in
  Alcotest.(check bool) "the 5/3 core fits the paper's LX25" true
    (Rtl.Area.fits_lx25 r.Fossy.Synthesis.area)

(* -- Platform generation --------------------------------------------- *)

let test_platgen_mhs_mss () =
  let vta = Models.Vta_models.mapping ~sw_tasks:4 ~idwt_p2p:true in
  let mhs = Fossy.Platgen.mhs vta ~hw_cores:[ "idwt2d"; "idwt53"; "idwt97" ] in
  List.iter
    (fun fragment ->
      if not (Str_util.contains mhs fragment) then Alcotest.failf "MHS missing %S" fragment)
    [
      "BEGIN microblaze";
      "INSTANCE = microblaze3";
      "BEGIN opb_v20";
      "mch_opb_ddr";
      "INSTANCE = idwt53_block";
      "osss_p2p_channel";
    ];
  let mss = Fossy.Platgen.mss vta in
  List.iter
    (fun fragment ->
      if not (Str_util.contains mss fragment) then Alcotest.failf "MSS missing %S" fragment)
    [ "OS_NAME = standalone"; "osss_embedded"; "PROC_INSTANCE = microblaze0" ]

let test_platgen_rejects_invalid_mapping () =
  let vta = Osss.Vta.create Osss.Platform.ml401 in
  Osss.Vta.map_module vta ~module_name:"a" ~block:"b";
  Osss.Vta.map_module vta ~module_name:"c" ~block:"b";
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fossy.Platgen.mhs vta ~hw_cores:[]);
       false
     with Invalid_argument _ -> true)

let test_testbench_generation () =
  let stimulus = [ ("din", [ 3; 5; 7; 9 ]); ("go", [ 1 ]) ] in
  match
    Fossy.Testbench.generate_for_module accumulator ~stimulus ~max_outputs:4 ()
  with
  | Error es -> Alcotest.failf "testbench failed: %s" (String.concat "; " es)
  | Ok tb ->
    List.iter
      (fun fragment ->
        if not (Str_util.contains tb fragment) then
          Alcotest.failf "testbench missing %S" fragment)
      [
        "entity acc8_tb is";
        "dut : entity work.acc8";
        "constant din_stimulus";
        "constant dout_reference";
        "assert to_integer(dout) = dout_reference(idx)";
        "clk <= not clk after 5 ns;";
      ];
    (* The embedded reference stream is the interpreter's result. *)
    let fsm = Fossy.Fsm.of_module (Fossy.Inline.run accumulator) in
    let trace = Fossy.Interp.run_fsm ~max_outputs:4 fsm stimulus in
    (match Fossy.Interp.output_port trace "dout" with
    | [] -> Alcotest.fail "no reference outputs"
    | first :: _ ->
      Alcotest.(check bool) "first reference value embedded" true
        (Str_util.contains tb (string_of_int first)))

let test_sw_codegen () =
  let spec =
    {
      Fossy.Sw_codegen.task_name = "decoder0";
      processor = "microblaze0";
      shared_objects =
        [
          ( "hwsw_so",
            [
              { Fossy.Sw_codegen.stub_name = "put_pending"; args_words = 3; ret_words = 3 };
              { Fossy.Sw_codegen.stub_name = "take_ready"; args_words = 1; ret_words = 3 };
            ] );
        ];
      body_include = "decoder0_main.h";
    }
  in
  let code = Fossy.Sw_codegen.emit_c spec in
  List.iter
    (fun fragment ->
      if not (Str_util.contains code fragment) then Alcotest.failf "C missing %S" fragment)
    [
      "#include \"osss_embedded.h\"";
      "hwsw_so_put_pending";
      "osss_rmi_send";
      "void decoder0_entry(void)";
    ];
  Alcotest.(check bool) "has loc" true (Fossy.Sw_codegen.loc spec > 10)

let () =
  Alcotest.run "fossy"
    [
      ( "hir",
        [
          Alcotest.test_case "validates good module" `Quick
            test_validate_accepts_good_module;
          Alcotest.test_case "rejects bad modules" `Quick
            test_validate_rejects_bad_modules;
          Alcotest.test_case "systemc printing" `Quick test_hir_pp_emits_systemc;
        ] );
      ( "inline",
        [
          Alcotest.test_case "removes all calls" `Quick test_inline_removes_calls;
          Alcotest.test_case "substitutes simple args" `Quick
            test_inline_substitutes_simple_args;
          Alcotest.test_case "procedure with wait" `Quick
            test_inline_procedure_with_wait;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "states at waits" `Quick test_fsm_states_at_waits;
          Alcotest.test_case "all states reachable" `Quick
            test_fsm_all_states_reachable;
          Alcotest.test_case "unrolls wait-free for" `Quick
            test_fsm_unrolls_waitfree_for;
          Alcotest.test_case "rejects wait-free while" `Quick
            test_fsm_rejects_waitfree_while;
          qc fsm_reachability_qcheck;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "emits FSM VHDL" `Quick test_codegen_produces_fsm_vhdl;
          Alcotest.test_case "identifiers preserved" `Quick
            test_codegen_identifiers_preserved;
          Alcotest.test_case "loc metric" `Quick test_vhdl_loc_counts_nonblank;
        ] );
      ( "netlist_area_timing",
        [
          Alcotest.test_case "registers counted" `Quick test_netlist_counts_registers;
          Alcotest.test_case "multiplier detected" `Quick
            test_netlist_detects_multiplier;
          Alcotest.test_case "shared <= total" `Quick test_shared_less_or_equal_total;
          Alcotest.test_case "sharing reduces 9/7 area" `Quick
            test_area_monotonic_in_sharing;
          Alcotest.test_case "sharing lowers fmax" `Quick test_timing_sharing_slower;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "inline recursion limit" `Quick
            test_inline_recursion_limit;
          Alcotest.test_case "constant shift free" `Quick
            test_netlist_constant_shift_free;
          Alcotest.test_case "no sharing penalty without muls" `Quick
            test_timing_no_sharing_penalty_without_muls;
          Alcotest.test_case "idwt53 fits LX25" `Quick test_area_fits_lx25;
        ] );
      ( "platgen_sw",
        [
          Alcotest.test_case "mhs/mss generation" `Quick test_platgen_mhs_mss;
          Alcotest.test_case "invalid mapping rejected" `Quick
            test_platgen_rejects_invalid_mapping;
          Alcotest.test_case "sw stubs" `Quick test_sw_codegen;
          Alcotest.test_case "testbench generation" `Quick
            test_testbench_generation;
        ] );
    ]
