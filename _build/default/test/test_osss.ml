(* Tests for the OSSS core library (Application + VTA layer). *)

let time = Alcotest.testable Sim.Sim_time.pp Sim.Sim_time.equal
let ms = Sim.Sim_time.ms
let us = Sim.Sim_time.us
let clock_hz = 100_000_000

let run_model build =
  let k = Sim.Kernel.create () in
  build k;
  Sim.Kernel.run k;
  Sim.Kernel.now k

(* -- Arbiter ------------------------------------------------------ *)

let test_arbiter_fcfs () =
  let a = Osss.Arbiter.create Osss.Arbiter.Fcfs in
  Alcotest.(check (option int)) "head" (Some 3)
    (Osss.Arbiter.choose a ~pending:[ 3; 1; 2 ]);
  Alcotest.(check (option int)) "empty" None (Osss.Arbiter.choose a ~pending:[])

let test_arbiter_priority () =
  let a = Osss.Arbiter.create Osss.Arbiter.Static_priority in
  Alcotest.(check (option int)) "lowest id" (Some 1)
    (Osss.Arbiter.choose a ~pending:[ 3; 1; 2 ])

let test_arbiter_round_robin () =
  let a = Osss.Arbiter.create Osss.Arbiter.Round_robin in
  let grant pending =
    match Osss.Arbiter.choose a ~pending with
    | Some id ->
      Osss.Arbiter.note_grant a id;
      id
    | None -> Alcotest.fail "no grant"
  in
  Alcotest.(check int) "first grant" 0 (grant [ 0; 1; 2 ]);
  Alcotest.(check int) "next in cycle" 1 (grant [ 0; 1; 2 ]);
  Alcotest.(check int) "next again" 2 (grant [ 0; 1; 2 ]);
  Alcotest.(check int) "wraps" 0 (grant [ 0; 1; 2 ]);
  Osss.Arbiter.note_grant a 1;
  Alcotest.(check int) "skips absent" 0 (grant [ 0 ])

let round_robin_fairness_qcheck =
  QCheck.Test.make ~name:"round-robin grants everyone within one cycle"
    ~count:100
    QCheck.(pair (int_range 2 8) (int_range 2 50))
    (fun (clients, rounds) ->
      let a = Osss.Arbiter.create Osss.Arbiter.Round_robin in
      let pending = List.init clients (fun i -> i) in
      let counts = Array.make clients 0 in
      for _ = 1 to rounds * clients do
        match Osss.Arbiter.choose a ~pending with
        | Some id ->
          Osss.Arbiter.note_grant a id;
          counts.(id) <- counts.(id) + 1
        | None -> ()
      done;
      Array.for_all (fun c -> c = rounds) counts)

(* -- Lock / Shared object ----------------------------------------- *)

let test_lock_mutual_exclusion () =
  let final =
    run_model (fun k ->
        let lock =
          Osss.Lock.create k ~name:"l"
            ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
            ()
        in
        let spawn_worker i =
          let h = Osss.Lock.register lock ~name:(Printf.sprintf "w%d" i) () in
          Sim.Kernel.spawn k (fun () ->
              Osss.Lock.with_lock lock h (fun () -> Sim.Kernel.wait_for (ms 2)))
        in
        List.iter spawn_worker [ 1; 2; 3 ])
  in
  (* Three 2 ms critical sections must serialise: 6 ms total. *)
  Alcotest.check time "serialised" (ms 6) final

let test_lock_reentry_rejected () =
  let k = Sim.Kernel.create () in
  let lock =
    Osss.Lock.create k ~name:"l"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      ()
  in
  let h = Osss.Lock.register lock ~name:"w" () in
  let raised = ref false in
  Sim.Kernel.spawn k (fun () ->
      Osss.Lock.acquire lock h;
      (try Osss.Lock.acquire lock h with Invalid_argument _ -> raised := true);
      Osss.Lock.release lock h);
  Sim.Kernel.run k;
  Alcotest.(check bool) "re-acquire rejected" true !raised

let test_shared_object_blocking_call () =
  let result = ref 0 in
  let final =
    run_model (fun k ->
        let so =
          Osss.Shared_object.create k ~name:"so"
            ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
            (ref 5)
        in
        let c = Osss.Shared_object.register_client so ~name:"caller" () in
        Sim.Kernel.spawn k (fun () ->
            result :=
              Osss.Shared_object.call so c ~eet:(ms 3) (fun state ->
                  state := !state * 2;
                  !state)))
  in
  Alcotest.(check int) "method result" 10 !result;
  Alcotest.check time "EET consumed" (ms 3) final

let test_shared_object_guard () =
  (* Producer/consumer through a guarded Shared Object: the consumer's
     guard only opens once the producer has stored a value. *)
  let got = ref 0 in
  let consumed_at = ref Sim.Sim_time.zero in
  let _ =
    run_model (fun k ->
        let so =
          Osss.Shared_object.create k ~name:"buffer"
            ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
            (ref None)
        in
        let producer = Osss.Shared_object.register_client so ~name:"producer" () in
        let consumer = Osss.Shared_object.register_client so ~name:"consumer" () in
        Sim.Kernel.spawn k (fun () ->
            got :=
              Osss.Shared_object.call_guarded so consumer
                ~guard:(fun state -> !state <> None)
                (fun state ->
                  match !state with
                  | Some v ->
                    state := None;
                    v
                  | None -> assert false);
            consumed_at := Sim.Kernel.now k);
        Sim.Kernel.spawn k (fun () ->
            Sim.Kernel.wait_for (ms 7);
            Osss.Shared_object.call so producer (fun state -> state := Some 42)))
  in
  Alcotest.(check int) "value passed" 42 !got;
  Alcotest.check time "consumer woke on completion" (ms 7) !consumed_at

let test_shared_object_grant_overhead () =
  let final =
    run_model (fun k ->
        let so =
          Osss.Shared_object.create k ~name:"so"
            ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
            ~grant_overhead:(us 50) ()
        in
        let c = Osss.Shared_object.register_client so ~name:"c" () in
        Sim.Kernel.spawn k (fun () ->
            for _ = 1 to 4 do
              Osss.Shared_object.call so c ~eet:(ms 1) (fun () -> ())
            done))
  in
  Alcotest.check time "4 calls + 4 grant overheads"
    (Sim.Sim_time.add (ms 4) (us 200))
    final

let test_shared_object_contention_stats () =
  let k = Sim.Kernel.create () in
  let so =
    Osss.Shared_object.create k ~name:"so"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      ()
  in
  let spawn_client i =
    let c = Osss.Shared_object.register_client so ~name:(Printf.sprintf "c%d" i) () in
    Sim.Kernel.spawn k (fun () ->
        Osss.Shared_object.call so c ~eet:(ms 1) (fun () -> ()))
  in
  List.iter spawn_client [ 1; 2; 3 ];
  Sim.Kernel.run k;
  Alcotest.(check int) "three calls" 3 (Osss.Shared_object.calls so);
  (* Client 2 waits 1 ms, client 3 waits 2 ms. *)
  Alcotest.check time "waiting accumulated" (ms 3)
    (Osss.Shared_object.total_wait so);
  Alcotest.check time "busy accumulated" (ms 3)
    (Osss.Shared_object.total_busy so)

(* -- EET / tasks / processor -------------------------------------- *)

let test_eet_block () =
  let final =
    run_model (fun k ->
        Sim.Kernel.spawn k (fun () ->
            let v = Osss.Eet.eet (ms 4) (fun () -> 21 * 2) in
            Alcotest.(check int) "value" 42 v))
  in
  Alcotest.check time "time consumed" (ms 4) final

let test_eet_scaled () =
  Alcotest.check time "half" (ms 2) (Osss.Eet.scaled 0.5 (ms 4));
  Alcotest.check time "identity" (ms 4) (Osss.Eet.scaled 1.0 (ms 4))

let test_ret_deadline_met () =
  let result = ref 0 in
  let final =
    run_model (fun k ->
        Sim.Kernel.spawn k (fun () ->
            result :=
              Osss.Eet.ret (ms 10) (fun () -> Osss.Eet.eet (ms 4) (fun () -> 5))))
  in
  Alcotest.(check int) "value" 5 !result;
  Alcotest.check time "time consumed" (ms 4) final

let test_ret_deadline_violated () =
  let k = Sim.Kernel.create () in
  let violated = ref false in
  Sim.Kernel.spawn k (fun () ->
      try Osss.Eet.ret ~label:"tile" (ms 2) (fun () -> Osss.Eet.consume (ms 5))
      with Osss.Eet.Deadline_violation { label; required; actual } ->
        violated := true;
        Alcotest.(check string) "label" "tile" label;
        Alcotest.check time "required" (ms 2) required;
        Alcotest.check time "actual" (ms 5) actual);
  Sim.Kernel.run k;
  Alcotest.(check bool) "violation detected" true !violated

let test_ret_check_variant () =
  let k = Sim.Kernel.create () in
  Sim.Kernel.spawn k (fun () ->
      let _, ok = Osss.Eet.ret_check (ms 3) (fun () -> Osss.Eet.consume (ms 1)) in
      Alcotest.(check bool) "met" true ok;
      let _, ok = Osss.Eet.ret_check (ms 3) (fun () -> Osss.Eet.consume (ms 7)) in
      Alcotest.(check bool) "missed" false ok);
  Sim.Kernel.run k

let test_unmapped_tasks_run_in_parallel () =
  let final =
    run_model (fun k ->
        for i = 1 to 3 do
          ignore
            (Osss.Sw_task.create k ~name:(Printf.sprintf "t%d" i) (fun t ->
                 Osss.Sw_task.consume t (ms 10)))
        done)
  in
  Alcotest.check time "application layer: concurrent" (ms 10) final

let test_mapped_tasks_share_processor () =
  let final =
    run_model (fun k ->
        let proc =
          Osss.Processor.create k ~name:"microblaze0" ~clock_hz ()
        in
        for i = 1 to 3 do
          let t =
            Osss.Sw_task.create k ~name:(Printf.sprintf "t%d" i) (fun t ->
                Osss.Sw_task.consume t (ms 10))
          in
          Osss.Sw_task.map_to_processor t proc
        done)
  in
  Alcotest.check time "VTA: serialised on one CPU" (ms 30) final

let test_context_switch_cost () =
  let final =
    run_model (fun k ->
        let proc =
          Osss.Processor.create k ~name:"cpu" ~clock_hz
            ~context_switch:(us 100) ()
        in
        for i = 1 to 2 do
          let t =
            Osss.Sw_task.create k ~name:(Printf.sprintf "t%d" i) (fun t ->
                Osss.Sw_task.consume t (ms 1);
                Osss.Sw_task.consume t (ms 1))
          in
          Osss.Sw_task.map_to_processor t proc
        done)
  in
  (* Execution alternates t1,t2,t1,t2: 3 switches after the first run. *)
  Alcotest.check time "switch overhead counted"
    (Sim.Sim_time.add (ms 4) (us 300))
    final

let test_task_cannot_map_twice () =
  let k = Sim.Kernel.create () in
  let proc1 = Osss.Processor.create k ~name:"p1" ~clock_hz () in
  let proc2 = Osss.Processor.create k ~name:"p2" ~clock_hz () in
  let t = Osss.Sw_task.create k ~name:"t" (fun _ -> ()) in
  Osss.Sw_task.map_to_processor t proc1;
  Alcotest.(check bool) "mapping visible" true
    (Osss.Sw_task.processor t <> None);
  let raised =
    try
      Osss.Sw_task.map_to_processor t proc2;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "second mapping rejected" true raised

let test_hw_module_clock_rounding () =
  let final =
    run_model (fun k ->
        let m = Osss.Hw_module.create k ~name:"idwt" ~clock_hz () in
        Osss.Hw_module.add_process m ~name:"main" (fun () ->
            (* 25 ns at 100 MHz must round up to 3 cycles = 30 ns. *)
            ignore (Osss.Hw_module.eet m (Sim.Sim_time.ns 25) (fun () -> ()))))
  in
  Alcotest.check time "rounded to cycles" (Sim.Sim_time.ns 30) final

(* -- Serialisation ------------------------------------------------ *)

let roundtrip codec v = Osss.Serialisation.(decode codec (encode codec v))

let test_serialisation_base () =
  Alcotest.(check int) "int" (-123456789) (roundtrip Osss.Serialisation.int (-123456789));
  Alcotest.(check bool) "bool" true (roundtrip Osss.Serialisation.bool true);
  Alcotest.(check int32) "int32" 0xDEADBEEl (roundtrip Osss.Serialisation.int32 0xDEADBEEl);
  Alcotest.(check (float 1e-12)) "float" 3.14159 (roundtrip Osss.Serialisation.float 3.14159);
  Alcotest.(check int) "int16" (-32768) (roundtrip Osss.Serialisation.int16 (-32768))

let test_serialisation_word_counts () =
  let open Osss.Serialisation in
  Alcotest.(check int) "int = 2 words" 2 (word_count int 7);
  Alcotest.(check int) "int16 = 1 word" 1 (word_count int16 7);
  Alcotest.(check int) "array = 1 + n" 5 (word_count int_array [| 1; 2; 3; 4 |]);
  Alcotest.(check int) "unit = 0" 0 (word_count unit ())

let test_serialisation_errors () =
  let open Osss.Serialisation in
  let raised f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "int16 overflow" true
    (raised (fun () -> encode int16 40000));
  Alcotest.(check bool) "truncated" true
    (raised (fun () -> decode int [| 1l |]));
  Alcotest.(check bool) "trailing" true
    (raised (fun () -> decode int16 [| 1l; 2l |]))

let serialisation_roundtrip_qcheck =
  QCheck.Test.make ~name:"composite codec round-trips" ~count:200
    QCheck.(
      triple (list small_signed_int)
        (pair small_signed_int (QCheck.float_bound_inclusive 1e6))
        (option bool))
    (fun value ->
      let open Osss.Serialisation in
      let codec =
        triple (list int) (pair int float) (option bool)
      in
      let (l, (a, f), b) = roundtrip codec value in
      let (l0, (a0, f0), b0) = value in
      l = l0 && a = a0 && Float.equal f f0 && b = b0)

let int_array_roundtrip_qcheck =
  QCheck.Test.make ~name:"int_array codec round-trips" ~count:200
    QCheck.(array (int_range (-1_000_000) 1_000_000))
    (fun value ->
      roundtrip Osss.Serialisation.int_array value = value)

(* -- Memory -------------------------------------------------------- *)

let test_register_file_is_instant () =
  let final =
    run_model (fun k ->
        let mem = Osss.Memory.register_file k ~name:"regs" ~size_words:64 in
        Sim.Kernel.spawn k (fun () ->
            Osss.Memory.write mem 3 99l;
            Alcotest.(check int32) "stored" 99l (Osss.Memory.read mem 3)))
  in
  Alcotest.check time "no latency" Sim.Sim_time.zero final

let test_block_ram_timing () =
  let final =
    run_model (fun k ->
        let mem =
          Osss.Memory.xilinx_block_ram k ~name:"bram" ~data_width:32
            ~addr_width:10 ~clock_hz ()
        in
        Sim.Kernel.spawn k (fun () ->
            Osss.Memory.write_burst mem ~addr:0 (Array.make 100 7l);
            let data = Osss.Memory.read_burst mem ~addr:0 ~len:100 in
            Alcotest.(check int32) "data back" 7l data.(99)))
  in
  (* Each 100-word burst: latency 1 + 100 cycles = 101 cycles; two bursts. *)
  Alcotest.check time "burst timing"
    (Sim.Sim_time.cycles ~hz:clock_hz 202)
    final

let test_memory_bounds () =
  let k = Sim.Kernel.create () in
  let mem = Osss.Memory.register_file k ~name:"m" ~size_words:8 in
  let raised = ref false in
  Sim.Kernel.spawn k (fun () ->
      try ignore (Osss.Memory.read mem 8) with Invalid_argument _ -> raised := true);
  Sim.Kernel.run k;
  Alcotest.(check bool) "bounds checked" true !raised

(* -- Bus / channel ------------------------------------------------- *)

let test_bus_unloaded_time () =
  let k = Sim.Kernel.create () in
  let bus = Osss.Bus.create k ~name:"opb" ~clock_hz () in
  (* 40 words = 2 full bursts of 16 + tail of 8.
     Each burst: 2 arb + 1 addr + n data cycles. *)
  Alcotest.check time "computed"
    (Sim.Sim_time.cycles ~hz:clock_hz ((2 + 1 + 16) * 2 + (2 + 1 + 8)))
    (Osss.Bus.transfer_time_unloaded bus ~words:40)

let test_bus_transfer_matches_model () =
  let k = Sim.Kernel.create () in
  let bus = Osss.Bus.create k ~name:"opb" ~clock_hz () in
  let m = Osss.Bus.attach_master bus ~name:"cpu" in
  let expected = Osss.Bus.transfer_time_unloaded bus ~words:40 in
  Sim.Kernel.spawn k (fun () -> Osss.Bus.transfer bus m ~words:40);
  Sim.Kernel.run k;
  Alcotest.check time "idle bus matches unloaded model" expected
    (Sim.Kernel.now k)

let test_bus_contention_serialises () =
  let k = Sim.Kernel.create () in
  let bus = Osss.Bus.create k ~name:"opb" ~clock_hz () in
  let m1 = Osss.Bus.attach_master bus ~name:"m1" in
  let m2 = Osss.Bus.attach_master bus ~name:"m2" in
  let single = Osss.Bus.transfer_time_unloaded bus ~words:64 in
  Sim.Kernel.spawn k (fun () -> Osss.Bus.transfer bus m1 ~words:64);
  Sim.Kernel.spawn k (fun () -> Osss.Bus.transfer bus m2 ~words:64);
  Sim.Kernel.run k;
  Alcotest.check time "two masters take twice as long"
    (Sim.Sim_time.mul_int single 2)
    (Sim.Kernel.now k);
  Alcotest.(check bool) "contention recorded" true
    Sim.Sim_time.(Osss.Bus.contention_time bus > Sim.Sim_time.zero)

let test_bus_presets () =
  let k = Sim.Kernel.create () in
  let opb = Osss.Bus.opb k () in
  let plb = Osss.Bus.plb k () in
  (* Same payload: the 64-bit pipelined PLB must be roughly twice as
     fast as the OPB. *)
  let t_opb = Osss.Bus.transfer_time_unloaded opb ~words:256 in
  let t_plb = Osss.Bus.transfer_time_unloaded plb ~words:256 in
  Alcotest.(check bool) "plb at least 1.8x faster" true
    (Sim.Sim_time.to_ps t_opb > 18 * Sim.Sim_time.to_ps t_plb / 10);
  (* OPB: 16 bursts of (2+1+16) = 304 cycles. *)
  Alcotest.check time "opb cycles" (Sim.Sim_time.cycles ~hz:100_000_000 304) t_opb;
  (* PLB: 8 bursts of (2+0+16 beats) = 144 cycles. *)
  Alcotest.check time "plb cycles" (Sim.Sim_time.cycles ~hz:100_000_000 144) t_plb

let test_p2p_faster_than_contended_bus () =
  let k = Sim.Kernel.create () in
  let p2p = Osss.Channel.p2p k ~clock_hz () in
  let t = Osss.Channel.transfer_time_unloaded p2p ~words:64 in
  (* 2 setup + 64 words *)
  Alcotest.check time "p2p timing" (Sim.Sim_time.cycles ~hz:clock_hz 66) t

let test_rmi_call_over_p2p () =
  let k = Sim.Kernel.create () in
  let so =
    Osss.Shared_object.create k ~name:"coproc"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      (ref 0)
  in
  let client = Osss.Shared_object.register_client so ~name:"sw" () in
  let transport = Osss.Channel.p2p k ~clock_hz () in
  let doubler =
    Osss.Channel.rmi_method ~name:"double" ~args:Osss.Serialisation.int_array
      ~ret:Osss.Serialisation.int_array
      ~execution_time:(fun a -> us (Array.length a))
      (fun state a ->
        incr state;
        Array.map (fun x -> 2 * x) a)
  in
  let result = ref [||] in
  Sim.Kernel.spawn k (fun () ->
      result :=
        Osss.Channel.rmi_call transport so client doubler [| 1; 2; 3 |]);
  Sim.Kernel.run k;
  Alcotest.(check (array int)) "functional result through words"
    [| 2; 4; 6 |] !result;
  Alcotest.(check int) "state mutated" 1 (Osss.Shared_object.peek so (fun r -> !r));
  (* args: 4+1 words, ret: 4+1 words, each +2 setup cycles; eet 3 us. *)
  let expected =
    Sim.Sim_time.add
      (Sim.Sim_time.cycles ~hz:clock_hz (7 + 7))
      (us 3)
  in
  Alcotest.check time "transfer + execution time" expected (Sim.Kernel.now k)

let test_rmi_guarded () =
  let k = Sim.Kernel.create () in
  let so =
    Osss.Shared_object.create k ~name:"store"
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Fcfs)
      (ref None)
  in
  let producer = Osss.Shared_object.register_client so ~name:"p" () in
  let consumer = Osss.Shared_object.register_client so ~name:"c" () in
  let transport = Osss.Channel.p2p k ~clock_hz () in
  let put =
    Osss.Channel.rmi_method ~name:"put" ~args:Osss.Serialisation.int
      ~ret:Osss.Serialisation.unit
      (fun state v -> state := Some v)
  in
  let take =
    Osss.Channel.rmi_method ~name:"take" ~args:Osss.Serialisation.unit
      ~ret:Osss.Serialisation.int
      (fun state () ->
        match !state with
        | Some v ->
          state := None;
          v
        | None -> assert false)
  in
  let got = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      got :=
        Osss.Channel.rmi_call_guarded transport so consumer
          ~guard:(fun state -> !state <> None)
          take ());
  Sim.Kernel.spawn k (fun () ->
      Sim.Kernel.wait_for (ms 1);
      ignore (Osss.Channel.rmi_call transport so producer put 77));
  Sim.Kernel.run k;
  Alcotest.(check int) "guarded take" 77 !got

let test_serialisation_nested () =
  let open Osss.Serialisation in
  let codec = list (pair int16 (option (array bool))) in
  let value =
    [ (5, Some [| true; false |]); (-3, None); (0, Some [||]) ]
  in
  Alcotest.(check bool) "nested structures round-trip" true
    (decode codec (encode codec value) = value)

let test_memory_access_time_zero () =
  let k = Sim.Kernel.create () in
  let bram =
    Osss.Memory.xilinx_block_ram k ~name:"b" ~data_width:32 ~addr_width:8
      ~clock_hz ()
  in
  Alcotest.check time "zero words cost nothing" Sim.Sim_time.zero
    (Osss.Memory.access_time bram ~words:0);
  Alcotest.check time "one word: latency + transfer"
    (Sim.Sim_time.cycles ~hz:clock_hz 2)
    (Osss.Memory.access_time bram ~words:1)

let test_processor_stats () =
  let k = Sim.Kernel.create () in
  let proc = Osss.Processor.create k ~name:"p" ~clock_hz () in
  let t1 =
    Osss.Sw_task.create k ~name:"a" (fun t -> Osss.Sw_task.consume t (ms 3))
  in
  let t2 =
    Osss.Sw_task.create k ~name:"b" (fun t -> Osss.Sw_task.consume t (ms 5))
  in
  Osss.Sw_task.map_to_processor t1 proc;
  Osss.Sw_task.map_to_processor t2 proc;
  Sim.Kernel.run k;
  Alcotest.(check int) "two tasks registered" 2 (Osss.Processor.task_count proc);
  Alcotest.check time "busy accumulated" (ms 8) (Osss.Processor.busy_time proc);
  Alcotest.check time "wait accumulated" (ms 3) (Osss.Processor.wait_time proc);
  Alcotest.(check bool) "both finished" true
    (Osss.Sw_task.finished t1 && Osss.Sw_task.finished t2)

let test_bus_rejects_bad_config () =
  let k = Sim.Kernel.create () in
  let raised f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad width" true
    (raised (fun () -> Osss.Bus.create k ~name:"x" ~clock_hz ~data_width_bits:48 ()));
  Alcotest.(check bool) "bad burst" true
    (raised (fun () -> Osss.Bus.create k ~name:"x" ~clock_hz ~max_burst_words:0 ()))

let test_round_robin_bus_alternates () =
  (* Under round-robin arbitration two masters with queued bursts
     interleave fairly: both finish within one burst of each other. *)
  let k = Sim.Kernel.create () in
  let bus =
    Osss.Bus.create k ~name:"rr" ~clock_hz
      ~arbiter:(Osss.Arbiter.create Osss.Arbiter.Round_robin)
      ()
  in
  let m1 = Osss.Bus.attach_master bus ~name:"m1" in
  let m2 = Osss.Bus.attach_master bus ~name:"m2" in
  let done1 = ref Sim.Sim_time.zero and done2 = ref Sim.Sim_time.zero in
  Sim.Kernel.spawn k (fun () ->
      Osss.Bus.transfer bus m1 ~words:64;
      done1 := Sim.Kernel.now k);
  Sim.Kernel.spawn k (fun () ->
      Osss.Bus.transfer bus m2 ~words:64;
      done2 := Sim.Kernel.now k);
  Sim.Kernel.run k;
  let gap =
    abs (Sim.Sim_time.to_ps !done1 - Sim.Sim_time.to_ps !done2)
  in
  Alcotest.(check bool) "fair interleaving" true
    (gap <= Sim.Sim_time.to_ps (Sim.Sim_time.cycles ~hz:clock_hz 19))

(* -- Platform / VTA / report -------------------------------------- *)

let test_platform_ml401 () =
  let p = Osss.Platform.ml401 in
  Alcotest.(check int) "100 MHz" 100_000_000 p.Osss.Platform.clock_hz;
  Alcotest.(check string) "fpga" "xc4vlx25" p.Osss.Platform.fpga;
  Alcotest.check time "period" (Sim.Sim_time.ns 10) (Osss.Platform.clock_period p)

let test_vta_validate_ok () =
  let v = Osss.Vta.create Osss.Platform.ml401 in
  Osss.Vta.map_task v ~task:"decoder0" ~processor:"microblaze0";
  Osss.Vta.map_task v ~task:"decoder1" ~processor:"microblaze0";
  Osss.Vta.map_module v ~module_name:"idwt53" ~block:"block0";
  Osss.Vta.map_module v ~module_name:"idwt97" ~block:"block1";
  Osss.Vta.map_link v ~link:"sw->so" ~channel:"opb" ~kind:Osss.Vta.Shared_bus;
  Osss.Vta.map_link v ~link:"idwt->so" ~channel:"p2p0"
    ~kind:Osss.Vta.Point_to_point;
  (match Osss.Vta.validate v with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected errors: %s" (String.concat "; " es));
  Alcotest.(check (list string)) "processors" [ "microblaze0" ]
    (Osss.Vta.processors v)

let test_vta_validate_errors () =
  let v = Osss.Vta.create Osss.Platform.ml401 in
  Osss.Vta.map_task v ~task:"t" ~processor:"p0";
  Osss.Vta.map_task v ~task:"t" ~processor:"p1";
  Osss.Vta.map_module v ~module_name:"m1" ~block:"b";
  Osss.Vta.map_module v ~module_name:"m2" ~block:"b";
  (match Osss.Vta.validate v with
  | Ok () -> Alcotest.fail "expected errors"
  | Error es -> Alcotest.(check int) "two violations" 2 (List.length es))

let test_report_render () =
  let table =
    Osss.Report.render ~header:[ "version"; "time" ]
      [ [ "1"; "3243.1" ]; [ "2"; "2975.0" ] ]
  in
  let lines = String.split_on_char '\n' table in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "right-aligned numbers" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 0))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "osss"
    [
      ( "arbiter",
        [
          Alcotest.test_case "fcfs" `Quick test_arbiter_fcfs;
          Alcotest.test_case "static priority" `Quick test_arbiter_priority;
          Alcotest.test_case "round robin" `Quick test_arbiter_round_robin;
          qc round_robin_fairness_qcheck;
        ] );
      ( "lock",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_lock_mutual_exclusion;
          Alcotest.test_case "re-entry rejected" `Quick
            test_lock_reentry_rejected;
        ] );
      ( "shared_object",
        [
          Alcotest.test_case "blocking call with EET" `Quick
            test_shared_object_blocking_call;
          Alcotest.test_case "guarded method" `Quick test_shared_object_guard;
          Alcotest.test_case "grant overhead" `Quick
            test_shared_object_grant_overhead;
          Alcotest.test_case "contention statistics" `Quick
            test_shared_object_contention_stats;
        ] );
      ( "processor_stats",
        [ Alcotest.test_case "busy/wait accounting" `Quick test_processor_stats ]
      );
      ( "eet_tasks",
        [
          Alcotest.test_case "eet block" `Quick test_eet_block;
          Alcotest.test_case "eet scaling" `Quick test_eet_scaled;
          Alcotest.test_case "unmapped tasks parallel" `Quick
            test_unmapped_tasks_run_in_parallel;
          Alcotest.test_case "mapped tasks share processor" `Quick
            test_mapped_tasks_share_processor;
          Alcotest.test_case "context switch cost" `Quick
            test_context_switch_cost;
          Alcotest.test_case "double mapping rejected" `Quick
            test_task_cannot_map_twice;
          Alcotest.test_case "hw module clock rounding" `Quick
            test_hw_module_clock_rounding;
          Alcotest.test_case "ret deadline met" `Quick test_ret_deadline_met;
          Alcotest.test_case "ret deadline violated" `Quick
            test_ret_deadline_violated;
          Alcotest.test_case "ret_check variant" `Quick test_ret_check_variant;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "base codecs" `Quick test_serialisation_base;
          Alcotest.test_case "word counts" `Quick
            test_serialisation_word_counts;
          Alcotest.test_case "errors" `Quick test_serialisation_errors;
          qc serialisation_roundtrip_qcheck;
          qc int_array_roundtrip_qcheck;
          Alcotest.test_case "nested composite" `Quick test_serialisation_nested;
        ] );
      ( "memory",
        [
          Alcotest.test_case "register file instant" `Quick
            test_register_file_is_instant;
          Alcotest.test_case "block ram timing" `Quick test_block_ram_timing;
          Alcotest.test_case "bounds checked" `Quick test_memory_bounds;
          Alcotest.test_case "access_time edges" `Quick
            test_memory_access_time_zero;
        ] );
      ( "bus_channel",
        [
          Alcotest.test_case "unloaded time" `Quick test_bus_unloaded_time;
          Alcotest.test_case "idle transfer matches model" `Quick
            test_bus_transfer_matches_model;
          Alcotest.test_case "contention serialises" `Quick
            test_bus_contention_serialises;
          Alcotest.test_case "p2p timing" `Quick
            test_p2p_faster_than_contended_bus;
          Alcotest.test_case "opb/plb presets" `Quick test_bus_presets;
          Alcotest.test_case "rmi over p2p" `Quick test_rmi_call_over_p2p;
          Alcotest.test_case "guarded rmi" `Quick test_rmi_guarded;
          Alcotest.test_case "bad bus configs" `Quick test_bus_rejects_bad_config;
          Alcotest.test_case "round-robin fairness on bus" `Quick
            test_round_robin_bus_alternates;
        ] );
      ( "platform_vta",
        [
          Alcotest.test_case "ml401" `Quick test_platform_ml401;
          Alcotest.test_case "valid mapping" `Quick test_vta_validate_ok;
          Alcotest.test_case "invalid mapping" `Quick test_vta_validate_errors;
          Alcotest.test_case "report rendering" `Quick test_report_render;
        ] );
    ]
