(* Tests for the behavioural/FSM interpreter and the functional
   verification of the IDWT cores — the executable form of the
   paper's "seamless refinement to implementation" claim. *)

open Fossy.Hir

let qc = QCheck_alcotest.to_alcotest

(* -- wrap semantics -------------------------------------------------- *)

let test_wrap () =
  Alcotest.(check int) "8-bit signed wrap" (-128) (Fossy.Interp.wrap (int_ty 8) 128);
  Alcotest.(check int) "8-bit signed keep" 127 (Fossy.Interp.wrap (int_ty 8) 127);
  Alcotest.(check int) "unsigned wrap" 1 (Fossy.Interp.wrap (uint_ty 4) 17);
  Alcotest.(check int) "negative unsigned" 15 (Fossy.Interp.wrap (uint_ty 4) (-1));
  Alcotest.(check int) "wide passthrough" 123456789
    (Fossy.Interp.wrap (int_ty 62) 123456789)

(* -- direct execution ------------------------------------------------ *)

let counter_module =
  {
    m_name = "counter";
    m_ports = [ ("step", Pin, int_ty 8); ("total", Pout, int_ty 8) ];
    m_vars = [ ("acc", int_ty 8) ];
    m_arrays = [];
    m_subprograms = [];
    m_body =
      [
        assign "acc" (c 0);
        For
          ("i", 0, 3, [ assign "acc" (v "acc" +: v "step"); assign "total" (v "acc"); Wait ]);
      ];
  }

let test_run_hir_basic () =
  let trace = Fossy.Interp.run_hir counter_module [ ("step", [ 1; 2; 3; 4 ]) ] in
  Alcotest.(check (list int)) "running totals" [ 1; 3; 6; 10 ]
    (Fossy.Interp.output_port trace "total")

let test_stream_repeats_last_value () =
  let trace = Fossy.Interp.run_hir counter_module [ ("step", [ 5 ]) ] in
  Alcotest.(check (list int)) "last value repeats" [ 5; 10; 15; 20 ]
    (Fossy.Interp.output_port trace "total")

let test_wrapping_during_run () =
  let trace = Fossy.Interp.run_hir counter_module [ ("step", [ 100 ]) ] in
  (* 8-bit signed accumulation: 100, 200->-56, 44, 144->-112. *)
  Alcotest.(check (list int)) "wrap applied on store" [ 100; -56; 44; -112 ]
    (Fossy.Interp.output_port trace "total")

let test_fuel_exhaustion () =
  let looping =
    {
      counter_module with
      m_body = [ While (Bin (Eq, c 0, c 0), [ assign "acc" (v "acc" +: c 1); Wait ]) ];
    }
  in
  Alcotest.check_raises "out of fuel" Fossy.Interp.Out_of_fuel (fun () ->
      ignore (Fossy.Interp.run_hir ~fuel:1000 looping []))

let test_bad_index_detected () =
  let bad =
    {
      counter_module with
      m_arrays = [ ("buf", int_ty 8, 4) ];
      m_body = [ assign "acc" (Arr ("buf", c 9)); Wait ];
    }
  in
  Alcotest.(check bool) "raises runtime error" true
    (try
       ignore (Fossy.Interp.run_hir bad []);
       false
     with Fossy.Interp.Runtime_error _ -> true)

let test_max_outputs_stops_early () =
  let trace =
    Fossy.Interp.run_hir ~max_outputs:2 counter_module [ ("step", [ 1 ]) ]
  in
  Alcotest.(check (list int)) "stopped after two" [ 1; 2 ]
    (Fossy.Interp.output_port trace "total")

(* -- HIR / FSM equivalence ------------------------------------------- *)

let test_fsm_matches_hir_on_counter () =
  Alcotest.(check bool) "equivalent" true
    (Fossy.Interp.equivalent counter_module [ ("step", [ 7; 9; 11; 13 ]) ])

(* Random structured modules: a pool of statement templates over a
   fixed set of variables, one function, one array. *)
let random_module_gen =
  let open QCheck.Gen in
  let stmt_of_code code =
    match code mod 8 with
    | 0 -> [ assign "x" (v "x" +: v "din") ]
    | 1 -> [ assign "y" (Call ("triple", [ v "x" ])) ]
    | 2 -> [ assign_arr "mem" (Bin (Band, v "x", c 3)) (v "y") ]
    | 3 -> [ assign "y" (Arr ("mem", Bin (Band, v "din", c 3))) ]
    | 4 -> [ Wait ]
    | 5 ->
      [
        If
          ( Bin (Gt, v "x", c 0),
            [ assign "out" (v "x" -: v "y"); Wait ],
            [ assign "out" (v "y") ] );
      ]
    | 6 -> [ For ("k", 0, 2, [ assign "x" (v "x" +: c 1) ]) ]
    | _ -> [ assign "out" (Bin (Bxor, v "x", v "y")) ]
  in
  let* codes = list_size (1 -- 12) (0 -- 7) in
  let body = List.concat_map stmt_of_code codes @ [ assign "out" (v "x"); Wait ] in
  return
    {
      m_name = "rand";
      m_ports = [ ("din", Pin, int_ty 12); ("out", Pout, int_ty 12) ];
      m_vars = [ ("x", int_ty 12); ("y", int_ty 12) ];
      m_arrays = [ ("mem", int_ty 12, 4) ];
      m_subprograms =
        [
          {
            s_name = "triple";
            s_params = [ ("a", int_ty 12) ];
            s_ret = Some (int_ty 12);
            s_locals = [ ("t", int_ty 14) ];
            s_body = [ assign "t" (v "a" *: c 3); Return (Some (v "t" >>: 1)) ];
          };
        ];
      m_body = body;
    }

let equivalence_qcheck =
  QCheck.Test.make ~name:"synthesis preserves behaviour on random modules"
    ~count:200
    (QCheck.make random_module_gen)
    (fun m ->
      match validate m with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        Fossy.Interp.equivalent m
          [ ("din", [ 3; -7; 100; 0; 55; -2; 9; 1; 4; -100 ]) ])

(* -- IDWT core functional verification ------------------------------- *)

let n = Models.Idwt_cores.line_buffer_length

let line_signal seed =
  let state = ref (seed + 1) in
  Array.init (2 * n) (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (!state mod 511) - 255)

let first_line_outputs core stimulus =
  (* +1 skips the done_port write that precedes the drain. *)
  let trace = Fossy.Interp.run_hir ~max_outputs:((2 * n) + 1) core stimulus in
  Fossy.Interp.output_port trace "data_out"

let test_idwt53_core_reconstructs () =
  List.iter
    (fun seed ->
      let signal = line_signal seed in
      let forward = Jpeg2000.Dwt53.forward_1d signal in
      let stimulus = [ ("start", [ 1 ]); ("data_in", Array.to_list forward) ] in
      let out = first_line_outputs Models.Idwt_cores.idwt53_systemc stimulus in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: core inverts the 5/3 exactly" seed)
        (Array.to_list signal) out)
    [ 1; 17; 4242 ]

let test_idwt97_core_tolerance () =
  let signal = line_signal 7 in
  let forward = Jpeg2000.Dwt97.forward_1d (Array.map float_of_int signal) in
  let coeffs = Array.map (fun x -> int_of_float (Float.round x)) forward in
  let stimulus = [ ("start", [ 1 ]); ("data_in", Array.to_list coeffs) ] in
  let out = first_line_outputs Models.Idwt_cores.idwt97_systemc stimulus in
  let expected = Jpeg2000.Dwt97.inverse_1d (Array.map float_of_int coeffs) in
  List.iteri
    (fun i got ->
      let err = Float.abs (float_of_int got -. expected.(i)) in
      if err > 3.0 then
        Alcotest.failf "sample %d: fixed-point %d vs float %.2f" i got expected.(i))
    out;
  Alcotest.(check int) "full line produced" (2 * n) (List.length out)

let test_idwt_cores_fsm_equivalence () =
  let signal = line_signal 3 in
  let forward = Jpeg2000.Dwt53.forward_1d signal in
  let stimulus = [ ("start", [ 1 ]); ("data_in", Array.to_list forward) ] in
  Alcotest.(check bool) "idwt53 behavioural = synthesised" true
    (Fossy.Interp.equivalent ~max_outputs:(2 * n)
       Models.Idwt_cores.idwt53_systemc stimulus);
  Alcotest.(check bool) "idwt97 behavioural = synthesised" true
    (Fossy.Interp.equivalent ~max_outputs:(2 * n)
       Models.Idwt_cores.idwt97_systemc stimulus)

let idwt53_core_qcheck =
  QCheck.Test.make ~name:"IDWT53 core inverts random lines exactly" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let signal = line_signal seed in
      let forward = Jpeg2000.Dwt53.forward_1d signal in
      let stimulus = [ ("start", [ 1 ]); ("data_in", Array.to_list forward) ] in
      let out = first_line_outputs Models.Idwt_cores.idwt53_systemc stimulus in
      out = Array.to_list signal)

let () =
  Alcotest.run "interp"
    [
      ( "machine",
        [
          Alcotest.test_case "wrap" `Quick test_wrap;
          Alcotest.test_case "basic run" `Quick test_run_hir_basic;
          Alcotest.test_case "stream repeats last" `Quick
            test_stream_repeats_last_value;
          Alcotest.test_case "wrapping during run" `Quick test_wrapping_during_run;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "bad index detected" `Quick test_bad_index_detected;
          Alcotest.test_case "max_outputs stops" `Quick test_max_outputs_stops_early;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "counter" `Quick test_fsm_matches_hir_on_counter;
          qc equivalence_qcheck;
        ] );
      ( "idwt_cores",
        [
          Alcotest.test_case "5/3 reconstructs exactly" `Quick
            test_idwt53_core_reconstructs;
          Alcotest.test_case "9/7 within fixed-point tolerance" `Quick
            test_idwt97_core_tolerance;
          Alcotest.test_case "behavioural = FSM on cores" `Quick
            test_idwt_cores_fsm_equivalence;
          qc idwt53_core_qcheck;
        ] );
    ]
