test/test_osss.mli:
