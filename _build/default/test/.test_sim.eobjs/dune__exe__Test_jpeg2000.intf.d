test/test_jpeg2000.mli:
