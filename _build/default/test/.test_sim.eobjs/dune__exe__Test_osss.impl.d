test/test_osss.ml: Alcotest Array Float List Osss Printf QCheck QCheck_alcotest Sim String
