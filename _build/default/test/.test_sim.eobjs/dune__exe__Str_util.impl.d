test/str_util.ml: String
