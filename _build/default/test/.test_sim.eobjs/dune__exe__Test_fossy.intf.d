test/test_fossy.mli:
