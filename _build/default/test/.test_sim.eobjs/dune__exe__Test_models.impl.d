test/test_models.ml: Alcotest Format Fossy Hashtbl Jpeg2000 Lazy List Models Osss Printf Rtl Sim Str_util String
