test/test_interp.ml: Alcotest Array Float Fossy Jpeg2000 List Models Printf QCheck QCheck_alcotest
