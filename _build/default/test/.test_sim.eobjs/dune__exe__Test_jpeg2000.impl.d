test/test_jpeg2000.ml: Alcotest Array Bytes Char Filename Float Gen Jpeg2000 List Printf QCheck QCheck_alcotest String Sys
