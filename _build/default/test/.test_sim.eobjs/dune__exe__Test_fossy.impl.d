test/test_fossy.ml: Alcotest Array Fossy Fun Gen List Models Osss QCheck QCheck_alcotest Rtl Str_util String
