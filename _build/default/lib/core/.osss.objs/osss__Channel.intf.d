lib/core/channel.mli: Bus Serialisation Shared_object Sim
