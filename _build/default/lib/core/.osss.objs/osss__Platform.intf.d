lib/core/platform.mli: Format Sim
