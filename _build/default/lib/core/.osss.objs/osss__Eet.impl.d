lib/core/eet.ml: Float Sim
