lib/core/lock.mli: Arbiter Sim
