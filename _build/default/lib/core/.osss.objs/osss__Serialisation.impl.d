lib/core/serialisation.ml: Array Int32 Int64 List
