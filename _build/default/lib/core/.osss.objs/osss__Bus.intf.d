lib/core/bus.mli: Arbiter Sim
