lib/core/shared_object.ml: Eet Lock Sim
