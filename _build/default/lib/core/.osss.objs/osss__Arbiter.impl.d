lib/core/arbiter.ml: Format List Stdlib
