lib/core/bus.ml: Arbiter Eet List Lock Sim Stdlib
