lib/core/processor.mli: Arbiter Sim
