lib/core/channel.ml: Array Bus Eet Serialisation Shared_object Sim
