lib/core/serialisation.mli:
