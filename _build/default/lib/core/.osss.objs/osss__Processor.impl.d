lib/core/processor.ml: Arbiter Eet Lock Sim
