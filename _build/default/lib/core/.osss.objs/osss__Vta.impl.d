lib/core/vta.ml: Format Hashtbl List Platform
