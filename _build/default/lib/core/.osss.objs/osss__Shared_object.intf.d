lib/core/shared_object.mli: Arbiter Sim
