lib/core/vta.mli: Format Platform
