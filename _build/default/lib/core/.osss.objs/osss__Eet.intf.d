lib/core/eet.mli: Sim
