lib/core/hw_module.ml: Eet List Printf Sim
