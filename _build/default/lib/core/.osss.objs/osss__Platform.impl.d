lib/core/platform.ml: Format Sim
