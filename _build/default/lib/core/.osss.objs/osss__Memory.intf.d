lib/core/memory.mli: Sim
