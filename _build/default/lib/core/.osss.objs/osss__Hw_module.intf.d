lib/core/hw_module.mli: Sim
