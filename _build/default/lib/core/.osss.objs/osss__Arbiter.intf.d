lib/core/arbiter.mli: Format
