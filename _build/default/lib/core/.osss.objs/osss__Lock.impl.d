lib/core/lock.ml: Arbiter List Printf Sim
