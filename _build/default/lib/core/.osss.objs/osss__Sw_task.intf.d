lib/core/sw_task.mli: Processor Sim
