lib/core/report.mli:
