lib/core/memory.ml: Array Eet Printf Sim
