lib/core/sw_task.ml: Eet Option Printf Processor Sim
