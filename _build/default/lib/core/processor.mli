(** Software processor resource (VTA layer).

    Software Tasks are mapped N:1 onto processors. A task's EET
    blocks then consume {e processor} time: while one task executes,
    co-mapped tasks wait. Scheduling is non-preemptive and arbitrated
    (FCFS by default, as in the OSSS run-time). *)

type t

val create :
  Sim.Kernel.t ->
  name:string ->
  clock_hz:int ->
  ?context_switch:Sim.Sim_time.t ->
  ?arbiter:Arbiter.t ->
  unit ->
  t
(** [context_switch] is consumed whenever the processor switches to a
    different task than the one it last ran (default zero). *)

val name : t -> string
val clock_hz : t -> int
val kernel : t -> Sim.Kernel.t

type binding
(** A task's seat on the processor. *)

val add_sw_task : t -> task_name:string -> binding
(** Registers a task on this processor (the paper's
    [add_sw_task] call on the processor object). *)

val task_count : t -> int

val execute : t -> binding -> Sim.Sim_time.t -> unit
(** Occupies the processor for the given duration on behalf of the
    bound task, blocking while other tasks hold it. Process context
    only. *)

val busy_time : t -> Sim.Sim_time.t
val wait_time : t -> Sim.Sim_time.t
