(** OSSS hardware modules.

    A module contains a fixed number of concurrent processes. On the
    VTA layer modules are wrapped by blocks that connect them to the
    global clock and reset and to OSSS Channels; here the wrapping is
    represented by the optional clock the module's EETs are rounded
    to. *)

type t

val create : Sim.Kernel.t -> name:string -> ?clock_hz:int -> unit -> t

val name : t -> string
val kernel : t -> Sim.Kernel.t
val clock_hz : t -> int option

val add_process : t -> name:string -> (unit -> unit) -> unit
(** Spawns one of the module's concurrent processes. The process set
    of a module is fixed at elaboration: adding a process after the
    simulation has advanced past time zero raises
    [Invalid_argument]. *)

val process_names : t -> string list

val eet : t -> Sim.Sim_time.t -> (unit -> 'a) -> 'a
(** Hardware EET block: when the module has a clock, the duration is
    rounded up to a whole number of clock cycles (cycle-accurate VTA
    behaviour); unclocked modules consume the raw duration. *)
