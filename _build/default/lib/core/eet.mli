(** Estimated-Execution-Time annotation blocks.

    OSSS annotates behaviour with [OSSS_EET(t) { ... }] blocks: the
    enclosed code executes functionally while the simulation clock
    advances by the estimated time [t]. This module provides the
    Application-Layer form, where time is consumed directly from the
    simulated clock; at the VTA layer, {!Sw_task.eet} routes the same
    annotation through the owning processor so that tasks sharing a
    processor contend for it. *)

val consume : Sim.Sim_time.t -> unit
(** Advances the calling process by the given estimated time.
    Process context only. *)

val eet : Sim.Sim_time.t -> (unit -> 'a) -> 'a
(** [eet t f] runs [f] (its result is available immediately, like a
    combinational result latched at block exit) and consumes [t] of
    simulated time before returning. *)

val scaled : float -> Sim.Sim_time.t -> Sim.Sim_time.t
(** [scaled f t] is [t] scaled by factor [f] (rounded to
    picoseconds); used when re-targeting profiled times to a faster
    or slower implementation. *)

(** {1 Required Execution Time}

    The dual of EET: [OSSS_RET(t) { ... }] asserts a deadline — the
    enclosed block (which may itself contain EETs, blocking method
    calls and waits) must complete within the required time. OSSS
    uses RET blocks to check real-time constraints during
    Application- and VTA-layer simulation. *)

exception Deadline_violation of {
  label : string;
  required : Sim.Sim_time.t;
  actual : Sim.Sim_time.t;
}

val ret : ?label:string -> Sim.Sim_time.t -> (unit -> 'a) -> 'a
(** [ret t f] runs [f] and raises {!Deadline_violation} if more than
    [t] of simulated time elapsed during its execution. Process
    context only. *)

val ret_check : ?label:string -> Sim.Sim_time.t -> (unit -> 'a) -> 'a * bool
(** Non-raising variant: returns the result and whether the deadline
    held. *)
