(** OSSS Channels: RMI transport for refined communication links.

    On the Application Layer a method call on a Shared Object is a
    plain (arbitrated, blocking) function call. The VTA refinement
    maps each communication link onto an OSSS Channel; the Remote
    Method Invocation protocol then

    + serialises the arguments into 32-bit words (plus one protocol
      word carrying the method id),
    + moves them over the channel's physical transport — a shared bus
      or a dedicated point-to-point link,
    + executes the method under the Shared Object's arbiter exactly
      as before, and
    + serialises and returns the result.

    Because the method body is untouched, swapping a bus for a P2P
    link (models 6a vs 6b, 7a vs 7b) changes only timing — the
    paper's seamless-refinement claim. *)

type transport

val bus_transport : Bus.t -> Bus.master -> transport

val p2p :
  Sim.Kernel.t ->
  ?clock_hz:int ->
  ?cycles_per_word:int ->
  ?setup_cycles:int ->
  unit ->
  transport
(** Dedicated point-to-point link: no arbitration; a transfer costs
    [setup_cycles + words * cycles_per_word] at [clock_hz]. Defaults:
    100 MHz, 1 cycle/word, 2 setup cycles. *)

val transport_name : transport -> string

val transfer : transport -> words:int -> unit
(** Raw timed transfer (process context). *)

val transfer_time_unloaded : transport -> words:int -> Sim.Sim_time.t

(** {1 Remote method invocation} *)

type ('state, 'a, 'b) rmi_method = {
  method_name : string;
  args_codec : 'a Serialisation.codec;
  ret_codec : 'b Serialisation.codec;
  execution_time : 'a -> Sim.Sim_time.t;
      (** the method's EET on its implementation resource *)
  body : 'state -> 'a -> 'b;
}

val rmi_method :
  name:string ->
  args:'a Serialisation.codec ->
  ret:'b Serialisation.codec ->
  ?execution_time:('a -> Sim.Sim_time.t) ->
  ('state -> 'a -> 'b) ->
  ('state, 'a, 'b) rmi_method

val rmi_call :
  transport ->
  'state Shared_object.t ->
  Shared_object.client ->
  ('state, 'a, 'b) rmi_method ->
  'a ->
  'b
(** Performs the full refined call. The argument and result values
    actually travel through their word encodings, so a codec mismatch
    is a simulation failure, not a silent approximation. *)

val rmi_call_guarded :
  transport ->
  'state Shared_object.t ->
  Shared_object.client ->
  guard:('state -> bool) ->
  ('state, 'a, 'b) rmi_method ->
  'a ->
  'b
