(** Target-platform descriptions.

    A platform names the architectural resources a VTA model maps
    onto and fixes their clocking and bus parameters. {!ml401} is the
    paper's board: a Xilinx ML401 with a Virtex-4 LX25, MicroBlaze
    processors, an OPB bus and DDR RAM, everything at 100 MHz. *)

type memory_resource = {
  mem_name : string;
  kind : [ `Block_ram | `External_ddr ];
  size_words : int;
}

type t = {
  platform_name : string;
  fpga : string;
  clock_hz : int;
  processor_kind : string;  (** e.g. ["microblaze"] *)
  bus_kind : string;  (** e.g. ["opb"] *)
  bus_data_width : int;
  bus_max_burst : int;
  memories : memory_resource list;
}

val ml401 : t
(** The paper's target: ML401 board, Virtex-4 LX25, 100 MHz system
    clock, IBM OPB, multi-channel DDR controller. *)

val make :
  name:string ->
  fpga:string ->
  clock_hz:int ->
  ?processor_kind:string ->
  ?bus_kind:string ->
  ?bus_data_width:int ->
  ?bus_max_burst:int ->
  ?memories:memory_resource list ->
  unit ->
  t

val clock_period : t -> Sim.Sim_time.t
val pp : Format.formatter -> t -> unit
