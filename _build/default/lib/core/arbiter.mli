(** Access arbitration policies for Shared Objects, buses and
    processors.

    An arbiter chooses, among the clients currently requesting a
    shared resource, the one to grant next. Clients are identified by
    the small integer ids the owning resource assigned at
    registration time. *)

type policy =
  | Fcfs  (** first come, first served (arrival order) *)
  | Round_robin  (** cyclic order starting after the last grant *)
  | Static_priority  (** lowest client id wins *)

type t

val create : policy -> t
val policy : t -> policy

val choose : t -> pending:int list -> int option
(** [choose t ~pending] picks a client id from [pending] (given in
    arrival order) without changing the arbiter state. [None] iff
    [pending] is empty. *)

val note_grant : t -> int -> unit
(** Informs the arbiter that the given client was granted; updates
    rotating state for {!Round_robin}. *)

val pp_policy : Format.formatter -> policy -> unit
