(** OSSS Software Tasks.

    A Software Task contains exactly one process. On the Application
    Layer it is an unmapped active component whose EET blocks consume
    simulated time directly; after mapping ({!map_to_processor}) the
    same EET blocks occupy the target processor, so tasks co-mapped
    onto one processor serialise. *)

type t

val create : Sim.Kernel.t -> name:string -> (t -> unit) -> t
(** [create k ~name body] declares the task. The body receives the
    task handle (for {!eet}) and is spawned immediately. *)

val name : t -> string
val kernel : t -> Sim.Kernel.t

val map_to_processor : t -> Processor.t -> unit
(** VTA refinement: bind this task to a processor. Must happen before
    the simulation reaches the task's first EET block. Raises
    [Invalid_argument] if the task is already mapped. *)

val processor : t -> Processor.t option

val eet : t -> Sim.Sim_time.t -> (unit -> 'a) -> 'a
(** The task-level [OSSS_EET] block: runs the thunk and consumes the
    estimated time — directly when unmapped, through the bound
    processor when mapped. Must be called from the task's own
    process. *)

val consume : t -> Sim.Sim_time.t -> unit
(** [consume t d] is [eet t d (fun () -> ())]. *)

val finished : t -> bool
(** True once the task body has returned. *)
