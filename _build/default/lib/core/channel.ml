type transport =
  | Bus_link of Bus.t * Bus.master
  | P2p of {
      kernel : Sim.Kernel.t;
      clock_hz : int;
      cycles_per_word : int;
      setup_cycles : int;
    }

let bus_transport bus master = Bus_link (bus, master)

let p2p kernel ?(clock_hz = 100_000_000) ?(cycles_per_word = 1)
    ?(setup_cycles = 2) () =
  if clock_hz <= 0 then invalid_arg "Channel.p2p: clock_hz";
  if cycles_per_word <= 0 then invalid_arg "Channel.p2p: cycles_per_word";
  if setup_cycles < 0 then invalid_arg "Channel.p2p: setup_cycles";
  P2p { kernel; clock_hz; cycles_per_word; setup_cycles }

let transport_name = function
  | Bus_link (bus, _) -> Bus.name bus
  | P2p _ -> "p2p"

let transfer t ~words =
  if words < 0 then invalid_arg "Channel.transfer: negative word count";
  match t with
  | Bus_link (bus, master) -> Bus.transfer bus master ~words
  | P2p { clock_hz; cycles_per_word; setup_cycles; _ } ->
    if words > 0 then
      Eet.consume
        (Sim.Sim_time.cycles ~hz:clock_hz
           (setup_cycles + (words * cycles_per_word)))

let transfer_time_unloaded t ~words =
  if words < 0 then invalid_arg "Channel.transfer_time_unloaded: negative"
  else
    match t with
    | Bus_link (bus, _) -> Bus.transfer_time_unloaded bus ~words
    | P2p { clock_hz; cycles_per_word; setup_cycles; _ } ->
      if words = 0 then Sim.Sim_time.zero
      else
        Sim.Sim_time.cycles ~hz:clock_hz
          (setup_cycles + (words * cycles_per_word))

type ('state, 'a, 'b) rmi_method = {
  method_name : string;
  args_codec : 'a Serialisation.codec;
  ret_codec : 'b Serialisation.codec;
  execution_time : 'a -> Sim.Sim_time.t;
  body : 'state -> 'a -> 'b;
}

let rmi_method ~name ~args ~ret
    ?(execution_time = fun _ -> Sim.Sim_time.zero) body =
  {
    method_name = name;
    args_codec = args;
    ret_codec = ret;
    execution_time;
    body;
  }

(* One extra protocol word carries the method id in each direction. *)
let protocol_words = 1

let rmi_transaction transport so client m args ~call =
  let encoded_args = Serialisation.encode m.args_codec args in
  transfer transport ~words:(Array.length encoded_args + protocol_words);
  let received_args = Serialisation.decode m.args_codec encoded_args in
  let eet = m.execution_time received_args in
  let result = call so client ~eet (fun state -> m.body state received_args) in
  let encoded_ret = Serialisation.encode m.ret_codec result in
  transfer transport ~words:(Array.length encoded_ret + protocol_words);
  Serialisation.decode m.ret_codec encoded_ret

let rmi_call transport so client m args =
  rmi_transaction transport so client m args ~call:(fun so client ~eet f ->
      Shared_object.call so client ~eet f)

let rmi_call_guarded transport so client ~guard m args =
  rmi_transaction transport so client m args
    ~call:(fun so client ~eet f -> Shared_object.call_guarded so client ~guard ~eet f)
