type align = Left | Right

let pad align width s =
  let missing = width - String.length s in
  if missing <= 0 then s
  else
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s

let render ~header ?align rows =
  let columns = List.length header in
  let aligns =
    match align with
    | Some a ->
      if List.length a <> columns then invalid_arg "Report.render: align"
      else a
    | None -> List.init columns (fun i -> if i = 0 then Left else Right)
  in
  let normalise row =
    let n = List.length row in
    if n > columns then invalid_arg "Report.render: row too wide"
    else row @ List.init (columns - n) (fun _ -> "")
  in
  let rows = List.map normalise rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        cells
    in
    String.concat "  " padded
  in
  let separator =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (render_row header);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer separator;
  Buffer.add_char buffer '\n';
  List.iter
    (fun row ->
      Buffer.add_string buffer (render_row row);
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let print ~header ?align rows = print_string (render ~header ?align rows)

let fmt_ms v = Printf.sprintf "%.1f" v
let fmt_factor v = Printf.sprintf "%.2fx" v
let fmt_pct v = Printf.sprintf "%.1f%%" v
