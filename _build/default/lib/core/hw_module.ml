type t = {
  kernel : Sim.Kernel.t;
  name : string;
  clock_hz : int option;
  mutable processes : string list; (* reversed *)
}

let create kernel ~name ?clock_hz () =
  (match clock_hz with
  | Some hz when hz <= 0 -> invalid_arg "Hw_module.create: clock_hz"
  | Some _ | None -> ());
  { kernel; name; clock_hz; processes = [] }

let name t = t.name
let kernel t = t.kernel
let clock_hz t = t.clock_hz

let add_process t ~name body =
  if not (Sim.Sim_time.is_zero (Sim.Kernel.now t.kernel)) then
    invalid_arg
      (Printf.sprintf "Hw_module.add_process: %s elaborated after time zero"
         t.name);
  t.processes <- name :: t.processes;
  Sim.Kernel.spawn t.kernel ~name:(t.name ^ "." ^ name) body

let process_names t = List.rev t.processes

let round_up_to_cycles ~hz duration =
  let period = Sim.Sim_time.to_ps (Sim.Sim_time.period ~hz) in
  let d = Sim.Sim_time.to_ps duration in
  Sim.Sim_time.of_ps ((d + period - 1) / period * period)

let eet t duration f =
  let result = f () in
  let d =
    match t.clock_hz with
    | None -> duration
    | Some hz -> round_up_to_cycles ~hz duration
  in
  Eet.consume d;
  result
