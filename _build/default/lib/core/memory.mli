(** Explicit memories for the VTA layer.

    The paper's "explicit memory insertion" maps large Shared-Object
    arrays onto block RAMs instead of letting synthesis turn them
    into FPGA registers. A [t] combines word storage with the access
    timing of its implementation:

    - {!register_file}: combinational access, zero latency — what an
      un-refined [osss_array] costs in simulation (and what explodes
      the slice count in synthesis);
    - {!xilinx_block_ram}: one word per clock cycle with a pipeline
      read latency — the [xilinx_block_ram<osss_array<...>,32,16>]
      wrapper of the paper. *)

type t

val register_file : Sim.Kernel.t -> name:string -> size_words:int -> t

val xilinx_block_ram :
  Sim.Kernel.t ->
  name:string ->
  data_width:int ->
  addr_width:int ->
  clock_hz:int ->
  ?read_latency_cycles:int ->
  unit ->
  t
(** Capacity is [2^addr_width] words. [read_latency_cycles] defaults
    to 1 (synchronous BRAM read). [data_width] above 32 is rejected —
    the model stores 32-bit words, like the OSSS serialisation
    layer. *)

val name : t -> string
val size_words : t -> int
val is_block_ram : t -> bool

(** {1 Timed access (process context)} *)

val read : t -> int -> int32
val write : t -> int -> int32 -> unit
val read_burst : t -> addr:int -> len:int -> int32 array
val write_burst : t -> addr:int -> int32 array -> unit

(** {1 Timing model} *)

val access_time : t -> words:int -> Sim.Sim_time.t
(** Time for a burst of [words] sequential accesses, without
    performing them; used to compose EETs for computations whose data
    lives in this memory. *)

val reads : t -> int
val writes : t -> int
