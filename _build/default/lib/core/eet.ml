let consume t = if not (Sim.Sim_time.is_zero t) then Sim.Kernel.wait_for t

let eet t f =
  let result = f () in
  consume t;
  result

let scaled factor t =
  if factor < 0.0 then invalid_arg "Eet.scaled: negative factor";
  Sim.Sim_time.of_ps
    (int_of_float (Float.round (factor *. float_of_int (Sim.Sim_time.to_ps t))))

exception Deadline_violation of {
  label : string;
  required : Sim.Sim_time.t;
  actual : Sim.Sim_time.t;
}

let ret_check ?(label = "ret") required f =
  let kernel = Sim.Kernel.self () in
  let started = Sim.Kernel.now kernel in
  let result = f () in
  let actual = Sim.Sim_time.sub (Sim.Kernel.now kernel) started in
  ignore label;
  (result, Sim.Sim_time.( <= ) actual required)

let ret ?(label = "ret") required f =
  let kernel = Sim.Kernel.self () in
  let started = Sim.Kernel.now kernel in
  let result = f () in
  let actual = Sim.Sim_time.sub (Sim.Kernel.now kernel) started in
  if Sim.Sim_time.( > ) actual required then
    raise (Deadline_violation { label; required; actual });
  result
