(** Shared-bus model (IBM OPB style, as used on the paper's ML401
    platform).

    Masters compete for the bus under an arbiter; a transfer is cut
    into bursts, and each burst pays arbitration, address-phase and
    per-word data cycles. Cutting into bursts is what lets other
    masters interleave and is the source of the contention the VTA
    exploration measures (versions 6a/7a). *)

type t

val create :
  Sim.Kernel.t ->
  name:string ->
  clock_hz:int ->
  ?data_width_bits:int ->
  ?arbitration_cycles:int ->
  ?address_cycles:int ->
  ?cycles_per_word:int ->
  ?max_burst_words:int ->
  ?arbiter:Arbiter.t ->
  unit ->
  t
(** Defaults: 32-bit data, 2 arbitration cycles, 1 address cycle,
    1 cycle per beat, 16-word bursts, FCFS arbitration. A 64-bit data
    path moves two 32-bit words per beat. *)

val opb : Sim.Kernel.t -> ?clock_hz:int -> unit -> t
(** The paper's IBM On-chip Peripheral Bus: 32-bit, 2 arbitration +
    1 address cycle per burst, 16-word bursts. *)

val plb : Sim.Kernel.t -> ?clock_hz:int -> unit -> t
(** A Processor Local Bus-style alternative: 64-bit data path,
    address pipelined under the previous data phase (no dedicated
    address cycle), 32-word bursts — for the "different bus
    protocols" exploration the paper mentions. *)

val name : t -> string
val kernel : t -> Sim.Kernel.t
val clock_hz : t -> int

type master

val attach_master : t -> name:string -> master
val master_names : t -> string list

val transfer : t -> master -> words:int -> unit
(** Blocking bus transaction of [words] 32-bit words (either
    direction — the OPB is not full-duplex). Process context only. *)

val transfer_time_unloaded : t -> words:int -> Sim.Sim_time.t
(** Duration of the same transaction on an idle bus. *)

(** {1 Statistics} *)

val transactions : t -> int
val words_transferred : t -> int
val busy_time : t -> Sim.Sim_time.t
val contention_time : t -> Sim.Sim_time.t
(** Total time masters spent waiting for a grant. *)
