type writer = { mutable words : int32 list; mutable count : int }
type reader = { data : int32 array; mutable pos : int }

type 'a codec = { wr : writer -> 'a -> unit; rd : reader -> 'a }

let put w word =
  w.words <- word :: w.words;
  w.count <- w.count + 1

let take r =
  if r.pos >= Array.length r.data then
    invalid_arg "Serialisation.decode: truncated input";
  let word = r.data.(r.pos) in
  r.pos <- r.pos + 1;
  word

let encode c v =
  let w = { words = []; count = 0 } in
  c.wr w v;
  let out = Array.make w.count 0l in
  List.iteri (fun i word -> out.(w.count - 1 - i) <- word) w.words;
  out

let decode c data =
  let r = { data; pos = 0 } in
  let v = c.rd r in
  if r.pos <> Array.length data then
    invalid_arg "Serialisation.decode: trailing words";
  v

let word_count c v =
  let w = { words = []; count = 0 } in
  c.wr w v;
  w.count

let unit = { wr = (fun _ () -> ()); rd = (fun _ -> ()) }

let bool =
  {
    wr = (fun w b -> put w (if b then 1l else 0l));
    rd =
      (fun r ->
        match take r with
        | 0l -> false
        | 1l -> true
        | _ -> invalid_arg "Serialisation.decode: bad bool");
  }

let int32 = { wr = put; rd = take }

let int =
  {
    wr =
      (fun w v ->
        put w (Int64.to_int32 (Int64.of_int v));
        put w (Int64.to_int32 (Int64.shift_right (Int64.of_int v) 32)));
    rd =
      (fun r ->
        let lo = Int64.logand (Int64.of_int32 (take r)) 0xFFFF_FFFFL in
        let hi = Int64.of_int32 (take r) in
        Int64.to_int (Int64.logor lo (Int64.shift_left hi 32)));
  }

let int16 =
  {
    wr =
      (fun w v ->
        if v < -32768 || v > 32767 then
          invalid_arg "Serialisation.int16: out of range";
        put w (Int32.of_int v));
    rd = (fun r -> Int32.to_int (take r));
  }

let float =
  {
    wr =
      (fun w v ->
        let bits = Int64.bits_of_float v in
        put w (Int64.to_int32 bits);
        put w (Int64.to_int32 (Int64.shift_right_logical bits 32)));
    rd =
      (fun r ->
        let lo = Int64.logand (Int64.of_int32 (take r)) 0xFFFF_FFFFL in
        let hi = Int64.logand (Int64.of_int32 (take r)) 0xFFFF_FFFFL in
        Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32)));
  }

let pair a b =
  {
    wr =
      (fun w (x, y) ->
        a.wr w x;
        b.wr w y);
    rd =
      (fun r ->
        let x = a.rd r in
        let y = b.rd r in
        (x, y));
  }

let triple a b c =
  {
    wr =
      (fun w (x, y, z) ->
        a.wr w x;
        b.wr w y;
        c.wr w z);
    rd =
      (fun r ->
        let x = a.rd r in
        let y = b.rd r in
        let z = c.rd r in
        (x, y, z));
  }

let length_prefix w n = put w (Int32.of_int n)

let read_length r =
  let n = Int32.to_int (take r) in
  if n < 0 then invalid_arg "Serialisation.decode: negative length";
  n

let list elem =
  {
    wr =
      (fun w items ->
        length_prefix w (List.length items);
        List.iter (elem.wr w) items);
    rd =
      (fun r ->
        let n = read_length r in
        List.init n (fun _ -> elem.rd r));
  }

let array elem =
  {
    wr =
      (fun w items ->
        length_prefix w (Array.length items);
        Array.iter (elem.wr w) items);
    rd =
      (fun r ->
        let n = read_length r in
        Array.init n (fun _ -> elem.rd r));
  }

let option elem =
  {
    wr =
      (fun w v ->
        match v with
        | None -> put w 0l
        | Some x ->
          put w 1l;
          elem.wr w x);
    rd =
      (fun r ->
        match take r with
        | 0l -> None
        | 1l -> Some (elem.rd r)
        | _ -> invalid_arg "Serialisation.decode: bad option tag");
  }

let fits_int32 v = v >= Int32.to_int Int32.min_int && v <= Int32.to_int Int32.max_int

let int_word =
  {
    wr =
      (fun w v ->
        if not (fits_int32 v) then
          invalid_arg "Serialisation.int_array: element exceeds 32 bits";
        put w (Int32.of_int v));
    rd = (fun r -> Int32.to_int (take r));
  }

let int_array = array int_word
let float_array = array float

let mapped to_repr of_repr c =
  { wr = (fun w v -> c.wr w (to_repr v)); rd = (fun r -> of_repr (c.rd r)) }
