type t = {
  kernel : Sim.Kernel.t;
  name : string;
  mutable processor : (Processor.t * Processor.binding) option;
  mutable finished : bool;
}

let create kernel ~name body =
  let t = { kernel; name; processor = None; finished = false } in
  Sim.Kernel.spawn kernel ~name (fun () ->
      body t;
      t.finished <- true);
  t

let name t = t.name
let kernel t = t.kernel

let map_to_processor t proc =
  match t.processor with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Sw_task.map_to_processor: %s already mapped" t.name)
  | None ->
    let binding = Processor.add_sw_task proc ~task_name:t.name in
    t.processor <- Some (proc, binding)

let processor t = Option.map fst t.processor

let consume t duration =
  match t.processor with
  | None -> Eet.consume duration
  | Some (proc, binding) -> Processor.execute proc binding duration

let eet t duration f =
  let result = f () in
  consume t duration;
  result

let finished t = t.finished
