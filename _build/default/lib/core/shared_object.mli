(** OSSS Shared Objects.

    A Shared Object is a passive component: it never initiates
    execution, it only services blocking method calls from active
    components (modules and Software Tasks). Concurrent access is
    serialised by an {!Arbiter.t}; methods may be {e guarded} — a
    caller whose guard does not hold releases the object and retries
    when any method call completes (OSSS guard semantics).

    On the Application Layer clients call methods directly via
    {!call} / {!call_guarded}. After communication refinement the
    same methods are invoked through OSSS Channels ({!Channel.rmi_call}),
    which adds serialisation and transport time but leaves the
    behavioural code untouched — the paper's "seamless refinement". *)

type 'state t
type client

val create :
  Sim.Kernel.t ->
  name:string ->
  arbiter:Arbiter.t ->
  ?grant_overhead:Sim.Sim_time.t ->
  'state ->
  'state t
(** [grant_overhead] models per-grant arbitration latency; it is what
    makes many-client Shared Objects slower (paper's version 5). *)

val name : _ t -> string
val kernel : _ t -> Sim.Kernel.t

val register_client :
  _ t -> name:string -> ?overhead:Sim.Sim_time.t -> unit -> client
(** Declares a port-to-interface binding. Each active component that
    calls the object needs its own client handle. [overhead] is
    per-grant scheduling time charged to this client on top of the
    object's global [grant_overhead] — software clients going through
    the OSSS run-time pay it, hardware blocks with dedicated ports
    typically do not. *)

val client_name : client -> string
val num_clients : _ t -> int

val peek : 'state t -> ('state -> 'a) -> 'a
(** Unsynchronised, zero-time read of the object state. For test
    assertions and instrumentation only — real accesses go through
    {!call}. *)

val call :
  'state t ->
  client ->
  ?eet:Sim.Sim_time.t ->
  ('state -> 'a) ->
  'a
(** [call so c f] blocks until the arbiter grants [c] exclusive
    access, optionally consumes [eet] (the method's execution time on
    its implementation resource), runs [f] on the state, then
    releases the object. Blocking, as all OSSS method calls are. *)

val call_guarded :
  'state t ->
  client ->
  guard:('state -> bool) ->
  ?eet:Sim.Sim_time.t ->
  ('state -> 'a) ->
  'a
(** Like {!call}, but the method body only runs when [guard] holds.
    If the guard fails the object is released and the caller sleeps
    until some method call completes, then re-arbitrates. *)

(** {1 Statistics} *)

val calls : _ t -> int
val total_wait : _ t -> Sim.Sim_time.t
(** Total time callers spent waiting for a grant. *)

val total_busy : _ t -> Sim.Sim_time.t
(** Total time the object was executing or held. *)
