(** Data serialisation for OSSS Channels.

    The VTA refinement cuts large user-defined data structures into
    32-bit bus words so they can be transferred over OSSS Channels.
    A ['a codec] describes both directions; the RMI layer uses
    {!word_count} for transfer timing and {!encode}/{!decode} to carry
    the actual values, so the refined model remains functionally
    identical to the Application-Layer model. Codecs compose like the
    OSSS serialisation base classes compose via inheritance. *)

type 'a codec

val word_count : 'a codec -> 'a -> int
(** Number of 32-bit words the value serialises to. *)

val encode : 'a codec -> 'a -> int32 array
val decode : 'a codec -> int32 array -> 'a
(** [decode c (encode c v) = v]. Raises [Invalid_argument] on
    malformed input (wrong length, bad tag). *)

(** {1 Base codecs} *)

val unit : unit codec
val bool : bool codec
val int32 : int32 codec

val int : int codec
(** Two words (OCaml ints are up to 63 bits). *)

val int16 : int codec
(** One word; raises on encode if the value does not fit 16 signed
    bits. Matches the [short] coefficients of the JPEG 2000 model. *)

val float : float codec
(** IEEE-754 double in two words. *)

(** {1 Combinators} *)

val pair : 'a codec -> 'b codec -> ('a * 'b) codec
val triple : 'a codec -> 'b codec -> 'c codec -> ('a * 'b * 'c) codec
val list : 'a codec -> 'a list codec
val array : 'a codec -> 'a array codec
val option : 'a codec -> 'a option codec

val int_array : int array codec
(** Length-prefixed array of one-word signed 32-bit values; raises on
    encode if an element does not fit. The workhorse for image tiles. *)

val float_array : float array codec

val mapped : ('a -> 'b) -> ('b -> 'a) -> 'b codec -> 'a codec
(** [mapped to_repr of_repr c] serialises ['a] through its ['b]
    representation. *)
