type policy = Fcfs | Round_robin | Static_priority

type t = { policy : policy; mutable last_grant : int }

let create policy = { policy; last_grant = -1 }
let policy t = t.policy

let min_list = function
  | [] -> None
  | x :: rest -> Some (List.fold_left Stdlib.min x rest)

(* Round-robin: the smallest id strictly greater than the last grant,
   wrapping to the overall smallest when none is greater. *)
let round_robin_choice t pending =
  let greater = List.filter (fun id -> id > t.last_grant) pending in
  match min_list greater with Some id -> Some id | None -> min_list pending

let choose t ~pending =
  match pending with
  | [] -> None
  | first :: _ -> (
    match t.policy with
    | Fcfs -> Some first
    | Static_priority -> min_list pending
    | Round_robin -> round_robin_choice t pending)

let note_grant t id = t.last_grant <- id

let pp_policy fmt = function
  | Fcfs -> Format.pp_print_string fmt "fcfs"
  | Round_robin -> Format.pp_print_string fmt "round-robin"
  | Static_priority -> Format.pp_print_string fmt "static-priority"
