type memory_resource = {
  mem_name : string;
  kind : [ `Block_ram | `External_ddr ];
  size_words : int;
}

type t = {
  platform_name : string;
  fpga : string;
  clock_hz : int;
  processor_kind : string;
  bus_kind : string;
  bus_data_width : int;
  bus_max_burst : int;
  memories : memory_resource list;
}

let make ~name ~fpga ~clock_hz ?(processor_kind = "microblaze")
    ?(bus_kind = "opb") ?(bus_data_width = 32) ?(bus_max_burst = 16)
    ?(memories = []) () =
  if clock_hz <= 0 then invalid_arg "Platform.make: clock_hz";
  {
    platform_name = name;
    fpga;
    clock_hz;
    processor_kind;
    bus_kind;
    bus_data_width;
    bus_max_burst;
    memories;
  }

let ml401 =
  make ~name:"ml401" ~fpga:"xc4vlx25" ~clock_hz:100_000_000
    ~memories:
      [
        { mem_name = "ddr_ram"; kind = `External_ddr; size_words = 16_777_216 };
        { mem_name = "bram0"; kind = `Block_ram; size_words = 65_536 };
      ]
    ()

let clock_period t = Sim.Sim_time.period ~hz:t.clock_hz

let pp fmt t =
  Format.fprintf fmt
    "@[<v>platform %s: fpga=%s clock=%d Hz cpu=%s bus=%s/%d-bit@]"
    t.platform_name t.fpga t.clock_hz t.processor_kind t.bus_kind
    t.bus_data_width
