(** Virtual-Target-Architecture mapping registry.

    The VTA refinement assigns every logical component of the
    Application Model to an architectural resource:

    - Software Tasks → processors (N:1),
    - modules → hardware blocks (1:1),
    - communication links → OSSS Channels (N:1).

    This module records the mapping declaratively and checks its
    multiplicity rules; the behavioural binding itself is performed
    by {!Sw_task.map_to_processor} and by constructing the channels.
    Keeping the registry separate lets synthesis ({!Fossy}) and
    platform generation read one authoritative description. *)

type t

type channel_kind = Shared_bus | Point_to_point

val create : Platform.t -> t
val platform : t -> Platform.t

val map_task : t -> task:string -> processor:string -> unit
val map_module : t -> module_name:string -> block:string -> unit
val map_link : t -> link:string -> channel:string -> kind:channel_kind -> unit

val task_mappings : t -> (string * string) list
val module_mappings : t -> (string * string) list
val link_mappings : t -> (string * string * channel_kind) list

val processors : t -> string list
(** Distinct processor targets, in first-mapping order. *)

val channels : t -> (string * channel_kind) list

val validate : t -> (unit, string list) result
(** Checks the multiplicity rules: a task is mapped at most once, a
    module exactly to one block, no two modules share a block, and a
    link is mapped at most once. Returns the list of violations. *)

val pp : Format.formatter -> t -> unit
