(** Fixed-width text tables for experiment output. *)

type align = Left | Right

val render : header:string list -> ?align:align list -> string list list -> string
(** Renders a table with a header row, a separator, and data rows.
    [align] defaults to left for the first column and right for the
    rest. Rows shorter than the header are padded with empty cells. *)

val print : header:string list -> ?align:align list -> string list list -> unit
(** [render] to stdout. *)

val fmt_ms : float -> string
(** Milliseconds with one decimal, e.g. ["3243.1"]. *)

val fmt_factor : float -> string
(** Ratio with two decimals and a multiplication sign, e.g. ["4.52x"]. *)

val fmt_pct : float -> string
(** Percentage with one decimal, e.g. ["88.8%"]. *)
