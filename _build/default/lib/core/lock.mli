(** Arbitrated mutual-exclusion primitive.

    The concurrency core shared by Shared Objects, buses and
    processors: a single-owner resource whose grant order is decided
    by an {!Arbiter.t}. Holders must be registered once; acquisition
    blocks the calling process until the arbiter selects it. *)

type t
type holder

val create :
  Sim.Kernel.t ->
  name:string ->
  arbiter:Arbiter.t ->
  ?grant_overhead:Sim.Sim_time.t ->
  unit ->
  t
(** [grant_overhead] is simulated time consumed on every successful
    grant (models the arbitration logic latency); default zero. *)

val name : t -> string
val kernel : t -> Sim.Kernel.t

val register : t -> name:string -> ?overhead:Sim.Sim_time.t -> unit -> holder
(** [overhead] is additional per-grant time consumed (while holding
    the lock) whenever this holder is granted — on top of the lock's
    global [grant_overhead]. Default zero. *)

val holder_name : holder -> string
val holder_id : holder -> int
val num_holders : t -> int

val acquire : t -> holder -> unit
(** Blocks the calling process until the lock is granted to this
    holder. Process context only. Re-entrant acquisition by the same
    holder while it already owns the lock is a programming error and
    raises [Invalid_argument]. *)

val release : t -> holder -> unit
(** Raises [Invalid_argument] if this holder does not own the lock. *)

val with_lock : t -> holder -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

(** {1 Statistics} *)

val grants : t -> int
val total_wait : t -> Sim.Sim_time.t
(** Cumulated time holders spent blocked in {!acquire}. *)

val total_held : t -> Sim.Sim_time.t
(** Cumulated time the lock was owned. *)
