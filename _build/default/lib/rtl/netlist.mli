(** Operator-level resource extraction from a VHDL design.

    Walks a {!Vhdl.design} and tallies what an RTL synthesiser would
    have to build: register bits, arithmetic/compare/logic operator
    instances with their widths, register-array access ports
    (dynamically indexed reads need a full read multiplexer, writes a
    decoder — the dominant cost of arrays kept in registers, which is
    exactly why the paper inserts explicit block RAMs), multiplexer
    bits implied by if/case control flow, and the longest
    combinational chain.

    [case] alternatives of a clocked process are treated as FSM
    states: operators and array ports in different alternatives are
    mutually exclusive in time and thus candidates for resource
    sharing. That sharing is how the single-FSM FOSSY output can come
    out smaller (and, through the operand multiplexers it needs,
    slower) than a multi-process reference — the Table 2 effect. *)

type op_kind = Add | Sub | Mul | Compare | Bitwise | Shift

type op_count = { kind : op_kind; width : int; count : int }

type port_count = {
  depth : int;  (** array length *)
  pwidth : int;  (** element width *)
  pcount : int;  (** number of access sites *)
}

type summary = {
  register_bits : int;  (** bits of state: signals/variables in clocked processes *)
  array_bits : int;  (** part of [register_bits] due to array types *)
  state_count : int;  (** FSM states (max case alternatives in a clocked process) *)
  ops_total : op_count list;  (** every operator instance, no sharing *)
  ops_shared : op_count list;
      (** per kind/width: max concurrent across FSM states — the
          post-sharing instance count *)
  reads_total : port_count list;  (** dynamically-indexed array reads *)
  reads_shared : port_count list;
  writes_total : port_count list;
  writes_shared : port_count list;
  mux2_bits : int;  (** 2:1-mux bit equivalents from if/case routing *)
  critical_path_ns : float;  (** longest operator chain, before routing *)
  process_count : int;
}

val of_design : Vhdl.design -> summary

val op_delay_ns : op_kind -> width:int -> float
(** Raw combinational delay of one operator on a Virtex-4 class
    fabric (LUT levels + carry chains). *)

val total_op_luts : op_count list -> int
(** LUT4 cost of a set of operator instances (see {!Area} for the
    cost-table rationale). *)

val read_port_luts : port_count list -> int
(** LUT4 cost of register-array read multiplexers:
    [(depth - 1) * width / 2] per port (two 2:1-mux bits per LUT via
    the F5/F6 muxes). *)

val write_port_luts : port_count list -> int
(** Write-enable decoders: [depth / 2] LUTs per port. *)

val pp_summary : Format.formatter -> summary -> unit
