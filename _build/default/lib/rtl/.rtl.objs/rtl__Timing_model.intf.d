lib/rtl/timing_model.mli: Area Netlist
