lib/rtl/netlist.ml: Format Hashtbl Int List Map Option Stdlib String Vhdl
