lib/rtl/area.mli: Format Netlist
