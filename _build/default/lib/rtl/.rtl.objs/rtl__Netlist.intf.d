lib/rtl/netlist.mli: Format Vhdl
