lib/rtl/vhdl_pp.ml: Buffer Format List Printf String Vhdl
