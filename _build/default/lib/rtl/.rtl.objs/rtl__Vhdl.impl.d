lib/rtl/vhdl.ml:
