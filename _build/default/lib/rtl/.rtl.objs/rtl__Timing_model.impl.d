lib/rtl/timing_model.ml: Area List Netlist Stdlib
