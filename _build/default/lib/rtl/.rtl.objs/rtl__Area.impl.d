lib/rtl/area.ml: Float Format List Netlist Stdlib
