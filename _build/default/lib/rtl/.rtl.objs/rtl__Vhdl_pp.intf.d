lib/rtl/vhdl_pp.mli: Format Vhdl
