lib/rtl/vhdl.mli:
