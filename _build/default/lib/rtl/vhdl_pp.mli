(** VHDL pretty printer.

    Emits synthesisable VHDL text from the {!Vhdl} AST — the final
    artefact of the FOSSY flow ("the resulting VHDL code remains
    human readable"). Also the yardstick for the paper's
    lines-of-code comparison between FOSSY output and the handcrafted
    reference models. *)

val emit : Vhdl.design -> string
(** Full design file: library clauses, entity, architecture. *)

val loc : Vhdl.design -> int
(** Non-blank lines of the emitted text — the LoC metric used in
    Section 4 of the paper. *)

val pp_expr : Format.formatter -> Vhdl.expr -> unit
val pp_type : Format.formatter -> Vhdl.vtype -> unit
