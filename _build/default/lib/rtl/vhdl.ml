type direction = In | Out

type vtype =
  | Std_logic
  | Signed_v of int
  | Unsigned_v of int
  | Integer_range of int * int
  | Enum_ref of string
  | Array_ref of string

type expr =
  | Int_lit of int
  | Bit_lit of char
  | Name of string
  | Indexed of string * expr
  | Binop of string * expr * expr
  | Unop of string * expr
  | Call_e of string * expr list
  | Paren of expr

type seq_stmt =
  | Sig_assign of string * expr
  | Var_assign of string * expr
  | Idx_sig_assign of string * expr * expr
  | Idx_var_assign of string * expr * expr
  | If_s of (expr * seq_stmt list) list * seq_stmt list
  | Case_s of expr * (string * seq_stmt list) list
  | For_s of string * int * int * seq_stmt list
  | Proc_call of string * expr list
  | Return_s of expr
  | Null_s
  | Comment of string

type decl =
  | Signal_d of string * vtype * expr option
  | Variable_d of string * vtype * expr option
  | Constant_d of string * vtype * expr
  | Enum_d of string * string list
  | Array_d of string * int * vtype
  | Function_d of {
      f_name : string;
      f_params : (string * vtype) list;
      f_ret : vtype;
      f_decls : decl list;
      f_body : seq_stmt list;
    }
  | Procedure_d of {
      p_name : string;
      p_params : (string * direction * vtype) list;
      p_decls : decl list;
      p_body : seq_stmt list;
    }

type process = {
  proc_name : string;
  sensitivity : string list;
  proc_decls : decl list;
  proc_body : seq_stmt list;
  clocked : bool;
}

type port = { port_name : string; dir : direction; ptype : vtype }

type entity = { ent_name : string; ports : port list }

type architecture = {
  arch_name : string;
  arch_decls : decl list;
  processes : process list;
}

type design = { entity : entity; architecture : architecture }

let clocked_process ~name ?(decls = []) body =
  {
    proc_name = name;
    sensitivity = [ "clk"; "reset" ];
    proc_decls = decls;
    proc_body = body;
    clocked = true;
  }

let combinational_process ~name ~sensitivity ?(decls = []) body =
  { proc_name = name; sensitivity; proc_decls = decls; proc_body = body; clocked = false }
