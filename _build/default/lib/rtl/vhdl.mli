(** VHDL abstract syntax.

    The target language of FOSSY and the language of the hand-crafted
    reference IDWT models. The subset covers what RTL synthesis flows
    accept: entities, architectures, clocked and combinational
    processes, functions/procedures, signals/variables, if/case/for,
    and the numeric_std operators. *)

type direction = In | Out

type vtype =
  | Std_logic
  | Signed_v of int  (** [signed(width-1 downto 0)] *)
  | Unsigned_v of int
  | Integer_range of int * int
  | Enum_ref of string  (** reference to a declared enumeration type *)
  | Array_ref of string  (** reference to a declared array type *)

type expr =
  | Int_lit of int
  | Bit_lit of char  (** '0' / '1' *)
  | Name of string
  | Indexed of string * expr
  | Binop of string * expr * expr  (** "+", "-", "*", "=", "<", "and", ... *)
  | Unop of string * expr
  | Call_e of string * expr list
  | Paren of expr

type seq_stmt =
  | Sig_assign of string * expr  (** [name <= e] *)
  | Var_assign of string * expr  (** [name := e] *)
  | Idx_sig_assign of string * expr * expr  (** [name(i) <= e] *)
  | Idx_var_assign of string * expr * expr
  | If_s of (expr * seq_stmt list) list * seq_stmt list
      (** if/elsif chain with else branch (possibly empty) *)
  | Case_s of expr * (string * seq_stmt list) list
  | For_s of string * int * int * seq_stmt list
  | Proc_call of string * expr list
  | Return_s of expr
  | Null_s
  | Comment of string

type decl =
  | Signal_d of string * vtype * expr option
  | Variable_d of string * vtype * expr option
  | Constant_d of string * vtype * expr
  | Enum_d of string * string list  (** [type name is (a, b, ...)] *)
  | Array_d of string * int * vtype  (** [type name is array (0 to n-1) of t] *)
  | Function_d of {
      f_name : string;
      f_params : (string * vtype) list;
      f_ret : vtype;
      f_decls : decl list;
      f_body : seq_stmt list;
    }
  | Procedure_d of {
      p_name : string;
      p_params : (string * direction * vtype) list;
      p_decls : decl list;
      p_body : seq_stmt list;
    }

type process = {
  proc_name : string;
  sensitivity : string list;
  proc_decls : decl list;  (** variables local to the process *)
  proc_body : seq_stmt list;
  clocked : bool;  (** rising-edge process (registers) *)
}

type port = { port_name : string; dir : direction; ptype : vtype }

type entity = { ent_name : string; ports : port list }

type architecture = {
  arch_name : string;
  arch_decls : decl list;
  processes : process list;
}

type design = { entity : entity; architecture : architecture }

val clocked_process :
  name:string -> ?decls:decl list -> seq_stmt list -> process
(** Standard synchronous process: sensitivity [clk, reset], body
    wrapped by the caller in the reset/rising-edge idiom. *)

val combinational_process :
  name:string -> sensitivity:string list -> ?decls:decl list -> seq_stmt list -> process
