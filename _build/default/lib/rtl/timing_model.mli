(** Virtex-4 timing model: estimated maximum clock frequency.

    The critical path of a synthesised FSM is the longest operator
    chain of any state, plus FSM decode, plus — in resource-shared
    designs — the operand multiplexers in front of shared operators,
    all inflated by a routing factor. Sharing therefore trades area
    for clock speed, which is exactly the IDWT97 trade-off Table 2
    reports (FOSSY 15 % smaller but 28 % slower). *)

val estimate_mhz : sharing:Area.sharing -> Netlist.summary -> float
(** Estimated post-synthesis f_max in MHz. *)

val critical_path_ns : sharing:Area.sharing -> Netlist.summary -> float
