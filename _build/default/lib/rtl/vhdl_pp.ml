open Vhdl

let pp_type fmt = function
  | Std_logic -> Format.pp_print_string fmt "std_logic"
  | Signed_v w -> Format.fprintf fmt "signed(%d downto 0)" (w - 1)
  | Unsigned_v w -> Format.fprintf fmt "unsigned(%d downto 0)" (w - 1)
  | Integer_range (lo, hi) -> Format.fprintf fmt "integer range %d to %d" lo hi
  | Enum_ref name | Array_ref name -> Format.pp_print_string fmt name

let rec pp_expr fmt = function
  | Int_lit n -> Format.pp_print_int fmt n
  | Bit_lit c -> Format.fprintf fmt "'%c'" c
  | Name n -> Format.pp_print_string fmt n
  | Indexed (n, i) -> Format.fprintf fmt "%s(%a)" n pp_expr i
  | Binop (op, a, b) -> Format.fprintf fmt "%a %s %a" pp_expr a op pp_expr b
  | Unop (op, e) -> Format.fprintf fmt "%s %a" op pp_expr e
  | Call_e (f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      args
  | Paren e -> Format.fprintf fmt "(%a)" pp_expr e

let expr_to_string e = Format.asprintf "%a" pp_expr e
let type_to_string t = Format.asprintf "%a" pp_type t

(* Text emission works on an explicit line buffer so that LoC
   accounting is trivial and indentation stays uniform. *)
type ctx = { buf : Buffer.t; mutable indent : int }

let line ctx fmt =
  Format.kasprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let indented ctx f =
  ctx.indent <- ctx.indent + 1;
  f ();
  ctx.indent <- ctx.indent - 1

let rec emit_stmt ctx = function
  | Sig_assign (n, e) -> line ctx "%s <= %s;" n (expr_to_string e)
  | Var_assign (n, e) -> line ctx "%s := %s;" n (expr_to_string e)
  | Idx_sig_assign (n, i, e) ->
    line ctx "%s(%s) <= %s;" n (expr_to_string i) (expr_to_string e)
  | Idx_var_assign (n, i, e) ->
    line ctx "%s(%s) := %s;" n (expr_to_string i) (expr_to_string e)
  | If_s (branches, else_branch) ->
    List.iteri
      (fun i (cond, body) ->
        line ctx "%s %s then" (if i = 0 then "if" else "elsif") (expr_to_string cond);
        indented ctx (fun () -> List.iter (emit_stmt ctx) body))
      branches;
    if else_branch <> [] then begin
      line ctx "else";
      indented ctx (fun () -> List.iter (emit_stmt ctx) else_branch)
    end;
    line ctx "end if;"
  | Case_s (sel, alts) ->
    line ctx "case %s is" (expr_to_string sel);
    indented ctx (fun () ->
        List.iter
          (fun (label, body) ->
            line ctx "when %s =>" label;
            indented ctx (fun () ->
                if body = [] then line ctx "null;"
                else List.iter (emit_stmt ctx) body))
          alts);
    line ctx "end case;"
  | For_s (var, lo, hi, body) ->
    line ctx "for %s in %d to %d loop" var lo hi;
    indented ctx (fun () -> List.iter (emit_stmt ctx) body);
    line ctx "end loop;"
  | Proc_call (p, args) ->
    line ctx "%s(%s);" p (String.concat ", " (List.map expr_to_string args))
  | Return_s e -> line ctx "return %s;" (expr_to_string e)
  | Null_s -> line ctx "null;"
  | Comment c -> line ctx "-- %s" c

let default_suffix = function
  | None -> ""
  | Some e -> Printf.sprintf " := %s" (expr_to_string e)

let rec emit_decl ctx = function
  | Signal_d (n, t, d) ->
    line ctx "signal %s : %s%s;" n (type_to_string t) (default_suffix d)
  | Variable_d (n, t, d) ->
    line ctx "variable %s : %s%s;" n (type_to_string t) (default_suffix d)
  | Constant_d (n, t, v) ->
    line ctx "constant %s : %s := %s;" n (type_to_string t) (expr_to_string v)
  | Enum_d (n, literals) ->
    line ctx "type %s is (%s);" n (String.concat ", " literals)
  | Array_d (n, len, elem) ->
    line ctx "type %s is array (0 to %d) of %s;" n (len - 1) (type_to_string elem)
  | Function_d f ->
    let params =
      String.concat "; "
        (List.map (fun (n, t) -> Printf.sprintf "%s : %s" n (type_to_string t)) f.f_params)
    in
    line ctx "function %s(%s) return %s is" f.f_name params (type_to_string f.f_ret);
    indented ctx (fun () -> List.iter (emit_decl ctx) f.f_decls);
    line ctx "begin";
    indented ctx (fun () -> List.iter (emit_stmt ctx) f.f_body);
    line ctx "end function;"
  | Procedure_d p ->
    let dir_str = function In -> "in" | Out -> "out" in
    let params =
      String.concat "; "
        (List.map
           (fun (n, d, t) ->
             Printf.sprintf "%s : %s %s" n (dir_str d) (type_to_string t))
           p.p_params)
    in
    line ctx "procedure %s(%s) is" p.p_name params;
    indented ctx (fun () -> List.iter (emit_decl ctx) p.p_decls);
    line ctx "begin";
    indented ctx (fun () -> List.iter (emit_stmt ctx) p.p_body);
    line ctx "end procedure;"

let emit_process ctx p =
  line ctx "%s : process (%s)" p.proc_name (String.concat ", " p.sensitivity);
  indented ctx (fun () -> List.iter (emit_decl ctx) p.proc_decls);
  line ctx "begin";
  indented ctx (fun () -> List.iter (emit_stmt ctx) p.proc_body);
  line ctx "end process;"

let emit design =
  let ctx = { buf = Buffer.create 4096; indent = 0 } in
  line ctx "library ieee;";
  line ctx "use ieee.std_logic_1164.all;";
  line ctx "use ieee.numeric_std.all;";
  line ctx "";
  line ctx "entity %s is" design.entity.ent_name;
  indented ctx (fun () ->
      line ctx "port (";
      indented ctx (fun () ->
          let n = List.length design.entity.ports in
          List.iteri
            (fun i p ->
              line ctx "%s : %s %s%s" p.port_name
                (match p.dir with In -> "in" | Out -> "out")
                (type_to_string p.ptype)
                (if i = n - 1 then "" else ";"))
            design.entity.ports);
      line ctx ");");
  line ctx "end entity;";
  line ctx "";
  line ctx "architecture %s of %s is" design.architecture.arch_name
    design.entity.ent_name;
  indented ctx (fun () -> List.iter (emit_decl ctx) design.architecture.arch_decls);
  line ctx "begin";
  indented ctx (fun () ->
      List.iter
        (fun p ->
          emit_process ctx p;
          line ctx "")
        design.architecture.processes);
  line ctx "end architecture;";
  Buffer.contents ctx.buf

let loc design =
  emit design |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
