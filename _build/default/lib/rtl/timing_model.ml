let routing_factor = 1.45
let lut_level_ns = 0.40
let clock_overhead_ns = 1.1 (* clock-to-out + setup *)

(* RTL synthesis retimes and restructures long arithmetic chains
   (carry-select rewriting, multiplier pipelining within the cycle
   budget); the raw statement-level chain over-estimates the
   achieved path by roughly this factor. *)
let retiming_credit = 0.20

let log2_ceil v =
  let rec bits n acc = if n <= 1 then acc else bits ((n + 1) / 2) (acc + 1) in
  bits (Stdlib.max 1 v) 0

(* State decode: a LUT4 tree absorbs 4 state-register bits per level. *)
let fsm_decode_ns (s : Netlist.summary) =
  let levels = (log2_ceil s.Netlist.state_count + 3) / 4 in
  float_of_int levels *. lut_level_ns

(* Operand-selection muxes in front of shared operators. Only the
   expensive operators (multipliers) are worth sharing at the cost of
   path length, so the penalty follows the multiplier fold ratio. *)
let sharing_mux_levels (s : Netlist.summary) =
  let muls counts =
    List.fold_left
      (fun acc (o : Netlist.op_count) ->
        if o.kind = Netlist.Mul then acc + o.count else acc)
      0 counts
  in
  let total = muls s.Netlist.ops_total in
  let shared = muls s.Netlist.ops_shared in
  if shared = 0 || total <= shared then 0
  else (log2_ceil ((total + shared - 1) / shared) + 1) / 2

let critical_path_ns ~sharing (s : Netlist.summary) =
  let mux_in =
    match sharing with
    | Area.Flat -> 0.0
    | Area.Shared -> float_of_int (sharing_mux_levels s) *. lut_level_ns *. 2.0
  in
  (((s.Netlist.critical_path_ns *. retiming_credit) +. fsm_decode_ns s +. mux_in)
  *. routing_factor)
  +. clock_overhead_ns

let estimate_mhz ~sharing s = 1000.0 /. critical_path_ns ~sharing s
