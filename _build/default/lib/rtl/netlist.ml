open Vhdl

type op_kind = Add | Sub | Mul | Compare | Bitwise | Shift

type op_count = { kind : op_kind; width : int; count : int }

type port_count = { depth : int; pwidth : int; pcount : int }

type summary = {
  register_bits : int;
  array_bits : int;
  state_count : int;
  ops_total : op_count list;
  ops_shared : op_count list;
  reads_total : port_count list;
  reads_shared : port_count list;
  writes_total : port_count list;
  writes_shared : port_count list;
  mux2_bits : int;
  critical_path_ns : float;
  process_count : int;
}

(* -- operator cost tables --------------------------------------------

   Rough Virtex-4 figures: one LUT level ~0.4 ns; ripple carry
   ~0.05 ns/bit on the dedicated chain; multipliers as LUT trees;
   register-array read muxes traverse ~log4(depth) LUT levels thanks
   to the F5/F6 combiners. *)

let op_delay_ns kind ~width =
  let w = float_of_int (Stdlib.max 1 width) in
  match kind with
  | Add | Sub -> 0.8 +. (0.05 *. w)
  | Compare -> 0.7 +. (0.04 *. w)
  | Bitwise -> 0.4
  | Shift -> 0.6
  | Mul -> 2.5 +. (0.15 *. w)

let read_mux_delay_ns ~depth =
  let rec log2 n acc = if n <= 1 then acc else log2 ((n + 1) / 2) (acc + 1) in
  let levels = (log2 (Stdlib.max 1 depth) 0 + 1) / 2 in
  0.4 *. float_of_int levels

let op_luts kind ~width =
  let w = Stdlib.max 1 width in
  match kind with
  | Add | Sub | Compare -> w
  | Bitwise -> (w + 1) / 2
  | Shift -> w
  | Mul -> w * w / 2

let total_op_luts ops =
  List.fold_left (fun acc o -> acc + (o.count * op_luts o.kind ~width:o.width)) 0 ops

let read_port_luts ports =
  List.fold_left
    (fun acc p -> acc + (p.pcount * (p.depth - 1) * p.pwidth / 2))
    0 ports

let write_port_luts ports =
  List.fold_left (fun acc p -> acc + (p.pcount * p.depth / 2)) 0 ports

(* -- multisets keyed by shape ---------------------------------------- *)

module Key_map = Map.Make (struct
  type t = int * int * int (* generic 3-part key *)

  let compare = Stdlib.compare
end)

let op_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Compare -> 3
  | Bitwise -> 4
  | Shift -> 5

let op_of_code = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Compare
  | 4 -> Bitwise
  | _ -> Shift

let add_key key n map =
  Key_map.update key (fun v -> Some (Option.value v ~default:0 + n)) map

let union_sum = Key_map.union (fun _ a b -> Some (a + b))
let union_max = Key_map.union (fun _ a b -> Some (Stdlib.max a b))
let scale n map = Key_map.map (fun c -> c * n) map

let ops_of_map map =
  Key_map.fold
    (fun (code, width, _) count acc ->
      { kind = op_of_code code; width; count } :: acc)
    map []
  |> List.rev

let ports_of_map map =
  Key_map.fold
    (fun (depth, pwidth, _) pcount acc -> { depth; pwidth; pcount } :: acc)
    map []
  |> List.rev

(* -- width environment ------------------------------------------------ *)

type entry = { e_width : int; e_is_array : bool; e_depth : int }

let width_of_type env = function
  | Std_logic -> 1
  | Signed_v w | Unsigned_v w -> w
  | Integer_range (lo, hi) ->
    let span = Stdlib.max (abs lo) (abs hi) in
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    Stdlib.max 1 (bits span 0) + (if lo < 0 then 1 else 0)
  | Enum_ref name | Array_ref name -> (
    match Hashtbl.find_opt env name with Some e -> e.e_width | None -> 8)

let lookup env name = Hashtbl.find_opt env name

let lookup_width env name =
  match lookup env name with Some e -> Some e.e_width | None -> None

(* -- accumulation ------------------------------------------------------ *)

type acc = {
  ops_t : int Key_map.t; (* (op, width, 0) -> instances *)
  ops_c : int Key_map.t; (* concurrent (after cross-state sharing) *)
  rd_t : int Key_map.t; (* (depth, width, 0) -> read sites *)
  rd_c : int Key_map.t;
  wr_t : int Key_map.t;
  wr_c : int Key_map.t;
  mux : int;
  crit : float;
}

let empty_acc =
  {
    ops_t = Key_map.empty;
    ops_c = Key_map.empty;
    rd_t = Key_map.empty;
    rd_c = Key_map.empty;
    wr_t = Key_map.empty;
    wr_c = Key_map.empty;
    mux = 0;
    crit = 0.0;
  }

let merge_seq a b =
  {
    ops_t = union_sum a.ops_t b.ops_t;
    ops_c = union_sum a.ops_c b.ops_c;
    rd_t = union_sum a.rd_t b.rd_t;
    rd_c = union_sum a.rd_c b.rd_c;
    wr_t = union_sum a.wr_t b.wr_t;
    wr_c = union_sum a.wr_c b.wr_c;
    mux = a.mux + b.mux;
    crit = Stdlib.max a.crit b.crit;
  }

(* Case alternatives: hardware for all branches exists, but only one
   is active per cycle, so the concurrent view takes the maximum. *)
let merge_alt a b =
  {
    ops_t = union_sum a.ops_t b.ops_t;
    ops_c = union_max a.ops_c b.ops_c;
    rd_t = union_sum a.rd_t b.rd_t;
    rd_c = union_max a.rd_c b.rd_c;
    wr_t = union_sum a.wr_t b.wr_t;
    wr_c = union_max a.wr_c b.wr_c;
    mux = a.mux + b.mux;
    crit = Stdlib.max a.crit b.crit;
  }

let binop_kind = function
  | "+" -> Some Add
  | "-" -> Some Sub
  | "*" -> Some Mul
  | "=" | "/=" | "<" | "<=" | ">" | ">=" -> Some Compare
  | "and" | "or" | "xor" | "nand" | "nor" -> Some Bitwise
  | "sll" | "srl" | "sla" | "sra" -> Some Shift
  | _ -> None

let rec expr_is_constant = function
  | Int_lit _ | Bit_lit _ -> true
  | Paren e -> expr_is_constant e
  | Call_e (("to_signed" | "to_unsigned" | "resize"), args) ->
    List.for_all expr_is_constant args
  | Binop (_, a, b) -> expr_is_constant a && expr_is_constant b
  | Unop (_, e) -> expr_is_constant e
  | Name _ | Indexed _ | Call_e _ -> false

(* Analysis context: declarations, analysed subprograms, and the
   combinational depth already accumulated on each process variable —
   VHDL variables chain within a clock cycle (reading one continues
   its combinational path), signals read their registered value. *)
type ctx = {
  env : (string, entry) Hashtbl.t;
  funcs : (string, acc * int) Hashtbl.t;
  depths : (string, float) Hashtbl.t;
}

let depth_of ctx n = Option.value (Hashtbl.find_opt ctx.depths n) ~default:0.0

(* Expression analysis: (width, delay, acc). Operator width is the max
   operand width (numeric_std same-size arithmetic). *)
let rec analyse_expr ctx expr =
  match expr with
  | Int_lit _ -> (0, 0.0, empty_acc)
  | Bit_lit _ -> (1, 0.0, empty_acc)
  | Name n ->
    (Option.value (lookup_width ctx.env n) ~default:8, depth_of ctx n, empty_acc)
  | Indexed (n, i) ->
    let _, di, ai = analyse_expr ctx i in
    let entry = lookup ctx.env n in
    let width = match entry with Some e -> e.e_width | None -> 8 in
    let base = Stdlib.max di (depth_of ctx n) in
    if expr_is_constant i then (width, base, ai)
    else begin
      let depth = match entry with Some e when e.e_is_array -> e.e_depth | _ -> 2 in
      let read = { ai with rd_t = add_key (depth, width, 0) 1 ai.rd_t;
                           rd_c = add_key (depth, width, 0) 1 ai.rd_c } in
      (width, base +. read_mux_delay_ns ~depth, read)
    end
  | Paren e -> analyse_expr ctx e
  | Unop ("-", e) ->
    let w, d, a = analyse_expr ctx e in
    ( w,
      d +. op_delay_ns Sub ~width:w,
      { a with ops_t = add_key (op_code Sub, w, 0) 1 a.ops_t;
               ops_c = add_key (op_code Sub, w, 0) 1 a.ops_c } )
  | Unop (_, e) ->
    let w, d, a = analyse_expr ctx e in
    (w, d +. 0.4, a)
  | Call_e (f, args) ->
    let w, d, a =
      List.fold_left
        (fun (w, d, a) arg ->
          let w', d', a' = analyse_expr ctx arg in
          (Stdlib.max w w', Stdlib.max d d', merge_seq a a'))
        (0, 0.0, empty_acc) args
    in
    (match Hashtbl.find_opt ctx.funcs f with
    | Some (body_acc, ret_width) ->
      (ret_width, d +. body_acc.crit, merge_seq a body_acc)
    | None ->
      (* resize / to_integer / shift_right by constant / rising_edge:
         free wiring. Conversions with a literal width argument yield
         that width. *)
      let w =
        match (f, List.rev args) with
        | ("to_signed" | "to_unsigned" | "resize"), Int_lit width :: _ -> width
        | _ -> w
      in
      (w, d, a))
  | Binop (op, a, b) ->
    let wa, da, aa = analyse_expr ctx a in
    let wb, db, ab = analyse_expr ctx b in
    let w = Stdlib.max wa wb in
    let acc = merge_seq aa ab in
    let rec const_value = function
      | Int_lit v -> Some v
      | Paren e -> const_value e
      | Unop ("-", e) -> Option.map Int.neg (const_value e)
      | Call_e (("to_signed" | "to_unsigned"), v :: _) -> const_value v
      | Bit_lit _ | Name _ | Indexed _ | Binop _ | Unop _ | Call_e _ -> None
    in
    let power_of_two_mul =
      op = "*"
      &&
      let is_pow2 e =
        match const_value e with
        | Some v -> v <> 0 && abs v land (abs v - 1) = 0
        | None -> false
      in
      is_pow2 a || is_pow2 b
    in
    (match binop_kind op with
    | Some _ when power_of_two_mul ->
      (* Multiplication by a power of two is wiring. *)
      (w, Stdlib.max da db +. 0.2, acc)
    | Some kind ->
      let out_w = match kind with Compare -> 1 | _ -> w in
      ( out_w,
        Stdlib.max da db +. op_delay_ns kind ~width:w,
        { acc with ops_t = add_key (op_code kind, w, 0) 1 acc.ops_t;
                   ops_c = add_key (op_code kind, w, 0) 1 acc.ops_c } )
    | None -> (w, Stdlib.max da db, acc))

let acc_of_expr ctx e =
  let _, d, a = analyse_expr ctx e in
  { a with crit = Stdlib.max a.crit d }

let expr_delay ctx e =
  let _, d, _ = analyse_expr ctx e in
  d

let target_width ctx name =
  Option.value (lookup_width ctx.env name) ~default:8

let rec assigned_targets stmts =
  List.concat_map
    (function
      | Sig_assign (n, _) | Var_assign (n, _)
      | Idx_sig_assign (n, _, _) | Idx_var_assign (n, _, _) -> [ n ]
      | If_s (branches, els) ->
        List.concat_map (fun (_, body) -> assigned_targets body) branches
        @ assigned_targets els
      | Case_s (_, alts) ->
        List.concat_map (fun (_, body) -> assigned_targets body) alts
      | For_s (_, _, _, body) -> assigned_targets body
      | Proc_call _ | Return_s _ | Null_s | Comment _ -> [])
    stmts

let dedup names = List.sort_uniq String.compare names

let array_write ctx n i acc =
  if expr_is_constant i then acc
  else
    match lookup ctx.env n with
    | Some e when e.e_is_array ->
      let key = (e.e_depth, e.e_width, 0) in
      { acc with wr_t = add_key key 1 acc.wr_t; wr_c = add_key key 1 acc.wr_c }
    | Some _ | None -> acc

let rec analyse_stmt ctx stmt =
  match stmt with
  | Sig_assign (_, e) | Return_s e -> acc_of_expr ctx e
  | Var_assign (n, e) ->
    (* Reading this variable later in the same cycle continues the
       combinational chain ending here. *)
    let acc = acc_of_expr ctx e in
    Hashtbl.replace ctx.depths n acc.crit;
    acc
  | Idx_sig_assign (n, i, e) ->
    let acc = merge_seq (acc_of_expr ctx i) (acc_of_expr ctx e) in
    array_write ctx n i acc
  | Idx_var_assign (n, i, e) ->
    (* Array elements are not depth-tracked: a same-cycle read of
       another element is independent, and element-level tracking
       would be needed to tell them apart. *)
    let acc = merge_seq (acc_of_expr ctx i) (acc_of_expr ctx e) in
    array_write ctx n i acc
  | Null_s | Comment _ -> empty_acc
  | Proc_call (p, args) ->
    let args_acc =
      List.fold_left (fun acc e -> merge_seq acc (acc_of_expr ctx e)) empty_acc args
    in
    (match Hashtbl.find_opt ctx.funcs p with
    | Some (body_acc, _) -> merge_seq args_acc body_acc
    | None -> args_acc)
  | For_s (_, lo, hi, body) ->
    let body_acc = analyse_stmts ctx body in
    let n = Stdlib.max 0 (hi - lo + 1) in
    {
      ops_t = scale n body_acc.ops_t;
      ops_c = scale n body_acc.ops_c;
      rd_t = scale n body_acc.rd_t;
      rd_c = scale n body_acc.rd_c;
      wr_t = scale n body_acc.wr_t;
      wr_c = scale n body_acc.wr_c;
      mux = body_acc.mux * n;
      crit = body_acc.crit;
    }
  | If_s (branches, els) ->
    let cond_delay =
      List.fold_left
        (fun d (cond, _) -> Stdlib.max d (expr_delay ctx cond))
        0.0 branches
    in
    let cond_acc =
      List.fold_left
        (fun acc (cond, _) -> merge_seq acc (acc_of_expr ctx cond))
        empty_acc branches
    in
    let bodies =
      List.map (fun (_, body) -> analyse_stmts ctx body) branches
      @ [ analyse_stmts ctx els ]
    in
    let body_acc = List.fold_left merge_seq empty_acc bodies in
    let n_branches = List.length branches + (if els = [] then 0 else 1) in
    let targets =
      dedup
        (List.concat_map (fun (_, body) -> assigned_targets body) branches
        @ assigned_targets els)
    in
    let mux_bits =
      Stdlib.max 0 (n_branches - 1)
      * List.fold_left (fun acc t -> acc + target_width ctx t) 0 targets
    in
    let acc = merge_seq cond_acc body_acc in
    {
      acc with
      mux = acc.mux + mux_bits;
      crit = Stdlib.max acc.crit (cond_delay +. 0.4);
    }
  | Case_s (sel, alts) ->
    let sel_acc = acc_of_expr ctx sel in
    let alt_bodies = List.map (fun (_, body) -> body) alts in
    (* Every alternative is a fresh clock cycle: variable chains do
       not cross state boundaries. *)
    let incoming = Hashtbl.copy ctx.depths in
    let alt_accs =
      List.map
        (fun body ->
          let ctx' = { ctx with depths = Hashtbl.copy incoming } in
          analyse_stmts ctx' body)
        alt_bodies
    in
    let body_acc = List.fold_left merge_alt empty_acc alt_accs in
    (* Per-register multiplexing: each target needs a mux over the
       alternatives that actually assign it. *)
    let per_target = Hashtbl.create 16 in
    List.iter
      (fun body ->
        List.iter
          (fun t ->
            Hashtbl.replace per_target t
              (1 + Option.value (Hashtbl.find_opt per_target t) ~default:0))
          (dedup (assigned_targets body)))
      alt_bodies;
    let mux_bits =
      Hashtbl.fold
        (fun t n acc -> acc + (Stdlib.max 0 (n - 1) * target_width ctx t))
        per_target 0
    in
    let acc = merge_seq sel_acc body_acc in
    { acc with mux = acc.mux + mux_bits }

and analyse_stmts ctx stmts =
  List.fold_left (fun acc s -> merge_seq acc (analyse_stmt ctx s)) empty_acc stmts

(* -- declarations ------------------------------------------------------ *)

let rec register_decl env funcs arrays (registers, array_bits) decl ~clocked =
  match decl with
  | Signal_d (n, t, _) | Variable_d (n, t, _) ->
    let is_array, depth, elem_width =
      match t with
      | Array_ref name -> (
        match Hashtbl.find_opt arrays name with
        | Some (len, w) -> (true, len, w)
        | None -> (false, 1, width_of_type env t))
      | Std_logic | Signed_v _ | Unsigned_v _ | Integer_range _ | Enum_ref _ ->
        (false, 1, width_of_type env t)
    in
    let bits = depth * elem_width in
    Hashtbl.replace env n { e_width = elem_width; e_is_array = is_array; e_depth = depth };
    if clocked then
      (registers + bits, if is_array then array_bits + bits else array_bits)
    else (registers, array_bits)
  | Constant_d (n, t, _) ->
    Hashtbl.replace env n
      { e_width = width_of_type env t; e_is_array = false; e_depth = 1 };
    (registers, array_bits)
  | Enum_d (n, literals) ->
    let rec bits v acc = if v <= 1 then acc else bits ((v + 1) / 2) (acc + 1) in
    Hashtbl.replace env n
      { e_width = Stdlib.max 1 (bits (List.length literals) 0);
        e_is_array = false;
        e_depth = 1 };
    (registers, array_bits)
  | Array_d (n, len, elem) ->
    Hashtbl.replace arrays n (len, width_of_type env elem);
    (registers, array_bits)
  | Function_d f ->
    List.iter
      (fun (pn, pt) ->
        Hashtbl.replace env pn
          { e_width = width_of_type env pt; e_is_array = false; e_depth = 1 })
      f.f_params;
    ignore
      (List.fold_left
         (fun acc d -> register_decl env funcs arrays acc d ~clocked:false)
         (0, 0) f.f_decls);
    let fctx = { env; funcs; depths = Hashtbl.create 8 } in
    let body_acc = analyse_stmts fctx f.f_body in
    Hashtbl.replace funcs f.f_name (body_acc, width_of_type env f.f_ret);
    (registers, array_bits)
  | Procedure_d p ->
    List.iter
      (fun (pn, _, pt) ->
        Hashtbl.replace env pn
          { e_width = width_of_type env pt; e_is_array = false; e_depth = 1 })
      p.p_params;
    ignore
      (List.fold_left
         (fun acc d -> register_decl env funcs arrays acc d ~clocked:false)
         (0, 0) p.p_decls);
    let pctx = { env; funcs; depths = Hashtbl.create 8 } in
    Hashtbl.replace funcs p.p_name (analyse_stmts pctx p.p_body, 0);
    (registers, array_bits)

let rec max_case_alts stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Case_s (_, alts) ->
        Stdlib.max acc
          (List.fold_left
             (fun a (_, body) -> Stdlib.max a (max_case_alts body))
             (List.length alts) alts)
      | If_s (branches, els) ->
        let inner =
          List.fold_left
            (fun a (_, body) -> Stdlib.max a (max_case_alts body))
            (max_case_alts els) branches
        in
        Stdlib.max acc inner
      | For_s (_, _, _, body) -> Stdlib.max acc (max_case_alts body)
      | Sig_assign _ | Var_assign _ | Idx_sig_assign _ | Idx_var_assign _
      | Proc_call _ | Return_s _ | Null_s | Comment _ -> acc)
    0 stmts

let of_design design =
  let env : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  let arrays : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let funcs : (string, acc * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace env p.port_name
        { e_width = width_of_type env p.ptype; e_is_array = false; e_depth = 1 })
    design.entity.ports;
  let clocked_targets =
    design.architecture.processes
    |> List.filter (fun p -> p.clocked)
    |> List.concat_map (fun p -> assigned_targets p.proc_body)
    |> dedup
  in
  ignore
    (List.fold_left
       (fun acc d -> register_decl env funcs arrays acc d ~clocked:false)
       (0, 0) design.architecture.arch_decls);
  let arch_reg_bits, arch_array_bits =
    List.fold_left
      (fun (regs, arrs) d ->
        match d with
        | Signal_d (n, t, _) when List.mem n clocked_targets ->
          let bits, is_array =
            match t with
            | Array_ref name -> (
              match Hashtbl.find_opt arrays name with
              | Some (len, w) -> (len * w, true)
              | None -> (width_of_type env t, false))
            | Std_logic | Signed_v _ | Unsigned_v _ | Integer_range _
            | Enum_ref _ -> (width_of_type env t, false)
          in
          (regs + bits, if is_array then arrs + bits else arrs)
        | Signal_d _ | Variable_d _ | Constant_d _ | Enum_d _ | Array_d _
        | Function_d _ | Procedure_d _ -> (regs, arrs))
      (0, 0) design.architecture.arch_decls
  in
  let var_reg_bits, var_array_bits, body_acc, state_count =
    List.fold_left
      (fun (regs, arrs, acc, states) p ->
        let regs', arrs' =
          List.fold_left
            (fun bits d -> register_decl env funcs arrays bits d ~clocked:p.clocked)
            (0, 0) p.proc_decls
        in
        let p_acc =
          analyse_stmts { env; funcs; depths = Hashtbl.create 16 } p.proc_body
        in
        let p_states = if p.clocked then max_case_alts p.proc_body else 0 in
        (regs + regs', arrs + arrs', merge_seq acc p_acc, Stdlib.max states p_states))
      (0, 0, empty_acc, 0) design.architecture.processes
  in
  {
    register_bits = arch_reg_bits + var_reg_bits;
    array_bits = arch_array_bits + var_array_bits;
    state_count;
    ops_total = ops_of_map body_acc.ops_t;
    ops_shared = ops_of_map body_acc.ops_c;
    reads_total = ports_of_map body_acc.rd_t;
    reads_shared = ports_of_map body_acc.rd_c;
    writes_total = ports_of_map body_acc.wr_t;
    writes_shared = ports_of_map body_acc.wr_c;
    mux2_bits = body_acc.mux;
    critical_path_ns = body_acc.crit;
    process_count = List.length design.architecture.processes;
  }

let pp_kind fmt = function
  | Add -> Format.pp_print_string fmt "add"
  | Sub -> Format.pp_print_string fmt "sub"
  | Mul -> Format.pp_print_string fmt "mul"
  | Compare -> Format.pp_print_string fmt "cmp"
  | Bitwise -> Format.pp_print_string fmt "logic"
  | Shift -> Format.pp_print_string fmt "shift"

let pp_ops fmt ops =
  List.iter
    (fun o -> Format.fprintf fmt "  %a/%d x%d@," pp_kind o.kind o.width o.count)
    ops

let pp_ports fmt ports =
  List.iter
    (fun p -> Format.fprintf fmt "  %dx%d x%d@," p.depth p.pwidth p.pcount)
    ports

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>registers: %d bits (%d in arrays)@,states: %d@,mux2: %d bits@,\
     critical: %.2f ns@,processes: %d@,ops total:@,%aops shared:@,%a\
     reads total:@,%areads shared:@,%awrites total:@,%a@]"
    s.register_bits s.array_bits s.state_count s.mux2_bits s.critical_path_ns
    s.process_count pp_ops s.ops_total pp_ops s.ops_shared pp_ports
    s.reads_total pp_ports s.reads_shared pp_ports s.writes_total
