type 'a t = {
  name : string;
  capacity : int;
  items : 'a Queue.t;
  inserted : Event.t;
  removed : Event.t;
}

let create kernel ?(name = "mailbox") ?(capacity = 16) () =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity";
  {
    name;
    capacity;
    items = Queue.create ();
    inserted = Event.create kernel ~name:(name ^ ".inserted") ();
    removed = Event.create kernel ~name:(name ^ ".removed") ();
  }

let name t = t.name
let length t = Queue.length t.items
let capacity t = t.capacity

let rec put t v =
  if Queue.length t.items >= t.capacity then begin
    Event.wait t.removed;
    put t v
  end
  else begin
    Queue.push v t.items;
    Event.notify t.inserted
  end

let rec get t =
  match Queue.take_opt t.items with
  | Some v ->
    Event.notify t.removed;
    v
  | None ->
    Event.wait t.inserted;
    get t

let try_get t =
  match Queue.take_opt t.items with
  | Some v ->
    Event.notify t.removed;
    Some v
  | None -> None

let not_empty t = t.inserted
