lib/sim/pqueue.mli:
