lib/sim/trace.mli: Format Kernel Sim_time
