lib/sim/kernel.mli: Sim_time
