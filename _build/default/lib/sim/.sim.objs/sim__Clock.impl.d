lib/sim/clock.ml: Event Kernel Signal Sim_time Stdlib
