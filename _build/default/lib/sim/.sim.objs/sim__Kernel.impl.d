lib/sim/kernel.ml: Effect Hashtbl List Option Pqueue Printf Queue Sim_time String
