lib/sim/trace.ml: Format Kernel List Sim_time String
