lib/sim/mailbox.mli: Event Kernel
