lib/sim/event.mli: Kernel Sim_time
