lib/sim/mailbox.ml: Event Queue
