lib/sim/clock.mli: Event Kernel Signal Sim_time
