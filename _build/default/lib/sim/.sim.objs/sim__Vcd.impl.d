lib/sim/vcd.ml: Buffer Bytes Char Event Format Kernel List Printf Signal Sim_time String
