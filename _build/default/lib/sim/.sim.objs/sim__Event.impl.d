lib/sim/event.ml: Kernel List Queue Sim_time
