(** Lightweight simulation tracing.

    A trace collects timestamped text records during a run; tests and
    examples use it to assert on event ordering without re-running the
    model. Disabled traces cost one branch per record. *)

type t

val create : Kernel.t -> ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> string -> unit
(** Appends a record stamped with the kernel's current time. *)

val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!record} with a format string. The message is only built
    when the trace is enabled. *)

val records : t -> (Sim_time.t * string) list
(** All records, oldest first. *)

val find : t -> string -> Sim_time.t option
(** Time of the first record with exactly the given text. *)

val pp : Format.formatter -> t -> unit
