type t = {
  kernel : Kernel.t;
  mutable enabled : bool;
  mutable entries : (Sim_time.t * string) list; (* newest first *)
}

let create kernel ?(enabled = true) () = { kernel; enabled; entries = [] }
let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let record t msg =
  if t.enabled then t.entries <- (Kernel.now t.kernel, msg) :: t.entries

let recordf t fmt =
  Format.kasprintf
    (fun msg ->
      if t.enabled then t.entries <- (Kernel.now t.kernel, msg) :: t.entries)
    fmt

let records t = List.rev t.entries

let find t msg =
  let rec scan = function
    | [] -> None
    | (time, m) :: rest -> if String.equal m msg then Some time else scan rest
  in
  scan (records t)

let pp fmt t =
  List.iter
    (fun (time, msg) ->
      Format.fprintf fmt "@[<h>%a: %s@]@." Sim_time.pp time msg)
    (records t)
