(** Bounded blocking FIFO between processes (SystemC [sc_fifo]). *)

type 'a t

val create : Kernel.t -> ?name:string -> ?capacity:int -> unit -> 'a t
(** [capacity] defaults to 16; it must be positive. *)

val name : 'a t -> string
val length : 'a t -> int
val capacity : 'a t -> int

val put : 'a t -> 'a -> unit
(** Blocks the calling process while the mailbox is full. *)

val get : 'a t -> 'a
(** Blocks the calling process while the mailbox is empty. *)

val try_get : 'a t -> 'a option
(** Non-blocking read. *)

val not_empty : 'a t -> Event.t
(** Notified whenever an element is inserted. *)
