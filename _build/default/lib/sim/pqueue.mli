(** Binary-heap priority queue used for the simulator calendar.

    Entries are ordered by a primary integer key and, within equal
    keys, by insertion order (FIFO). This stability is what makes the
    whole simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> key:int -> 'a -> unit

val min_key : 'a t -> int option
(** Smallest key currently in the queue, if any. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the entry with the smallest key; ties are
    broken by insertion order. *)

val pop_le : 'a t -> key:int -> 'a option
(** [pop_le q ~key] pops the minimum entry only if its key is
    [<= key]. *)
