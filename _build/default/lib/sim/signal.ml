type 'a t = {
  kernel : Kernel.t;
  name : string;
  equal : 'a -> 'a -> bool;
  mutable current : 'a;
  mutable pending : 'a option;
  changed : Event.t;
}

let create kernel ?(name = "signal") ?(equal = ( = )) init =
  {
    kernel;
    name;
    equal;
    current = init;
    pending = None;
    changed = Event.create kernel ~name:(name ^ ".changed") ();
  }

let name t = t.name
let value t = t.current
let changed t = t.changed

let commit t =
  match t.pending with
  | None -> ()
  | Some v ->
    t.pending <- None;
    if not (t.equal t.current v) then begin
      t.current <- v;
      Event.notify t.changed
    end

let write t v =
  let first_write = t.pending = None in
  t.pending <- Some v;
  if first_write then Kernel.at_update t.kernel (fun () -> commit t)

let wait_change t = Event.wait t.changed

let wait_value t pred =
  let rec loop () =
    if not (pred t.current) then begin
      Event.wait t.changed;
      loop ()
    end
  in
  loop ()
