type probe = {
  p_name : string;
  width : int;
  id : string; (* VCD identifier code *)
  initial : int;
}

type t = {
  kernel : Kernel.t;
  top : string;
  mutable probes : probe list; (* reversed *)
  mutable changes : (Sim_time.t * string * int * int) list; (* reversed: time, id, width, value *)
  mutable next_id : int;
}

let create kernel ?(top = "top") () =
  { kernel; top; probes = []; changes = []; next_id = 0 }

(* VCD identifier codes: printable ASCII 33..126, multi-char beyond. *)
let id_of_index index =
  let base = 94 in
  let rec build i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else build ((i / base) - 1) acc
  in
  build index ""

let probe t ~name ~width project signal =
  if width <= 0 || width > 62 then invalid_arg "Vcd.probe: width";
  if List.exists (fun p -> String.equal p.p_name name) t.probes then
    invalid_arg (Printf.sprintf "Vcd.probe: duplicate name %s" name);
  let id = id_of_index t.next_id in
  t.next_id <- t.next_id + 1;
  t.probes <- { p_name = name; width; id; initial = project (Signal.value signal) } :: t.probes;
  (* Re-arming change listener: callbacks run in scheduler context. *)
  let rec listen () =
    Event.on_next (Signal.changed signal) (fun () ->
        t.changes <-
          (Kernel.now t.kernel, id, width, project (Signal.value signal))
          :: t.changes;
        listen ())
  in
  listen ()

let probe_int t ~name ~width signal = probe t ~name ~width (fun v -> v) signal

let probe_bool t ~name signal =
  probe t ~name ~width:1 (fun b -> if b then 1 else 0) signal

let change_count t = List.length t.changes

let binary_of_value ~width v =
  let bits = Bytes.make width '0' in
  for i = 0 to width - 1 do
    if (v lsr i) land 1 = 1 then Bytes.set bits (width - 1 - i) '1'
  done;
  Bytes.to_string bits

let render t =
  let buf = Buffer.create 1024 in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "$date";
  line "  (simulation)";
  line "$end";
  line "$version";
  line "  osss-jpeg2000 sim kernel";
  line "$end";
  line "$timescale 1ps $end";
  line "$scope module %s $end" t.top;
  let probes = List.rev t.probes in
  List.iter
    (fun p -> line "$var wire %d %s %s $end" p.width p.id p.p_name)
    probes;
  line "$upscope $end";
  line "$enddefinitions $end";
  line "$dumpvars";
  List.iter
    (fun p -> line "b%s %s" (binary_of_value ~width:p.width p.initial) p.id)
    probes;
  line "$end";
  (* Group changes by time, oldest first. *)
  let changes = List.rev t.changes in
  let last_time = ref None in
  List.iter
    (fun (time, id, width, value) ->
      (match !last_time with
      | Some prev when Sim_time.equal prev time -> ()
      | Some _ | None ->
        line "#%d" (Sim_time.to_ps time);
        last_time := Some time);
      line "b%s %s" (binary_of_value ~width value) id)
    changes;
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  output_string oc (render t);
  close_out oc
