type t = {
  kernel : Kernel.t;
  name : string;
  waiters : (unit -> unit) Queue.t;
}

let create kernel ?(name = "event") () =
  { kernel; name; waiters = Queue.create () }

let name t = t.name
let kernel t = t.kernel
let on_next t f = Queue.push f t.waiters

(* Notification captures the waiter set at notify time; waiters
   registered afterwards belong to the next notification. *)
let drain t =
  let woken = Queue.create () in
  Queue.transfer t.waiters woken;
  woken

let deliver woken = Queue.iter (fun f -> f ()) woken

let notify t =
  let woken = drain t in
  if not (Queue.is_empty woken) then
    Kernel.schedule_delta t.kernel (fun () -> deliver woken)

let notify_immediate t =
  let woken = drain t in
  if not (Queue.is_empty woken) then
    Kernel.schedule_now t.kernel (fun () -> deliver woken)

let notify_after t d =
  if Sim_time.is_zero d then notify t
  else
    Kernel.schedule_after t.kernel d (fun () ->
        let woken = drain t in
        deliver woken)

let wait t = Kernel.suspend (fun resume -> on_next t resume)

let wait_any events =
  match events with
  | [] -> invalid_arg "Event.wait_any: empty list"
  | [ e ] -> wait e
  | _ ->
    Kernel.suspend (fun resume ->
        let fired = ref false in
        let once () =
          if not !fired then begin
            fired := true;
            resume ()
          end
        in
        List.iter (fun e -> on_next e once) events)
