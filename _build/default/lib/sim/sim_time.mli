(** Simulated time.

    Time is kept as an integer number of picoseconds, which gives an
    exact representation of clock periods (10 ns at 100 MHz) and a
    range of about 106 days on 63-bit integers — far beyond any model
    in this repository. *)

type t
(** An absolute instant or a duration, in picoseconds. *)

val zero : t

val of_ps : int -> t
(** [of_ps n] is [n] picoseconds. Raises [Invalid_argument] if [n < 0]. *)

val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

val of_ns_float : float -> t
(** [of_ns_float x] rounds [x] nanoseconds to the nearest picosecond. *)

val of_ms_float : float -> t
(** [of_ms_float x] rounds [x] milliseconds to the nearest picosecond. *)

val to_ps : t -> int
val to_float_ns : t -> float
val to_float_us : t -> float
val to_float_ms : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b]. Raises [Invalid_argument] if the result
    would be negative. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val cycles : hz:int -> int -> t
(** [cycles ~hz n] is the duration of [n] clock cycles at [hz] hertz. *)

val period : hz:int -> t
(** [period ~hz] is [cycles ~hz 1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints with the most readable unit, e.g. ["2.5 ms"]. *)

val to_string : t -> string
