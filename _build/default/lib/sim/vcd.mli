(** VCD (Value Change Dump) waveform export.

    Watches {!Signal} values during a simulation run and renders the
    recorded changes as a standard VCD file that any waveform viewer
    (GTKWave, etc.) can open — the workflow a SystemC user gets from
    [sc_trace]. Probes must be added before the simulation runs the
    first write of interest. *)

type t

val create : Kernel.t -> ?top:string -> unit -> t
(** [top] names the VCD scope (default ["top"]). *)

val probe : t -> name:string -> width:int -> ('a -> int) -> 'a Signal.t -> unit
(** Watches a signal. [width] is the bit width rendered in the file;
    the projection maps the signal value to the dumped integer
    (two's complement within [width]). Raises [Invalid_argument] on
    duplicate names or non-positive width. *)

val probe_int : t -> name:string -> width:int -> int Signal.t -> unit
val probe_bool : t -> name:string -> bool Signal.t -> unit

val change_count : t -> int
(** Number of recorded value changes (excluding initial values). *)

val render : t -> string
(** The complete VCD document for the changes recorded so far. *)

val save : t -> string -> unit
