(** Notification events, following SystemC [sc_event] semantics.

    A process waits on an event; a notification wakes every process
    that was waiting {e at the moment of notification}. Processes
    that start waiting between the notification and its delivery are
    not woken — they wait for the next notification. *)

type t

val create : Kernel.t -> ?name:string -> unit -> t
val name : t -> string
val kernel : t -> Kernel.t

val on_next : t -> (unit -> unit) -> unit
(** [on_next e f] runs [f] once, at delivery of the next notification
    of [e]. Callbacks run in scheduler context. *)

val notify : t -> unit
(** Delta notification: current waiters wake in the next delta cycle. *)

val notify_immediate : t -> unit
(** Immediate notification: current waiters wake in the current
    evaluation phase. *)

val notify_after : t -> Sim_time.t -> unit
(** Timed notification delivered after the given delay. *)

val wait : t -> unit
(** Suspends the calling process until the next notification.
    Process context only. *)

val wait_any : t list -> unit
(** Suspends until any of the listed events is notified. *)
