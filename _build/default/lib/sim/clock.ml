type t = {
  c_name : string;
  c_period : Sim_time.t;
  c_signal : bool Signal.t;
  c_posedge : Event.t;
  c_negedge : Event.t;
  mutable c_edges : int;
}

let create kernel ?(name = "clk") ?(duty = 0.5) ?(start_high = false) ?until
    ~period () =
  if Sim_time.is_zero period then invalid_arg "Clock.create: zero period";
  if duty <= 0.0 || duty >= 1.0 then invalid_arg "Clock.create: duty";
  let high =
    Sim_time.of_ps
      (Stdlib.max 1 (int_of_float (duty *. float_of_int (Sim_time.to_ps period))))
  in
  let low = Sim_time.sub period high in
  if Sim_time.is_zero low then invalid_arg "Clock.create: duty too high";
  let t =
    {
      c_name = name;
      c_period = period;
      c_signal = Signal.create kernel ~name start_high;
      c_posedge = Event.create kernel ~name:(name ^ ".posedge") ();
      c_negedge = Event.create kernel ~name:(name ^ ".negedge") ();
      c_edges = 0;
    }
  in
  let expired () =
    match until with
    | None -> false
    | Some horizon -> Sim_time.( >= ) (Kernel.now kernel) horizon
  in
  Kernel.spawn kernel ~name (fun () ->
      let rec run level =
        if not (expired ()) then begin
          if level then begin
            t.c_edges <- t.c_edges + 1;
            Signal.write t.c_signal true;
            Event.notify t.c_posedge;
            Kernel.wait_for high
          end
          else begin
            Signal.write t.c_signal false;
            if t.c_edges > 0 || start_high then Event.notify t.c_negedge;
            Kernel.wait_for low
          end;
          run (not level)
        end
      in
      run (not start_high));
  t

let name t = t.c_name
let period t = t.c_period
let signal t = t.c_signal
let posedge t = t.c_posedge
let negedge t = t.c_negedge
let wait_posedge t = Event.wait t.c_posedge
let wait_negedge t = Event.wait t.c_negedge

let wait_cycles t n =
  for _ = 1 to n do
    wait_posedge t
  done

let edges t = t.c_edges
