(** Periodic clocks (SystemC [sc_clock]).

    A clock drives a boolean {!Signal} between its phases and exposes
    edge events, so clocked models can be written against the same
    machinery as everything else. The generator process only runs
    while someone may observe it: it stops at [until] (default: the
    clock never stops, which keeps the simulation alive — pass a
    horizon to {!Kernel.run} instead). *)

type t

val create :
  Kernel.t ->
  ?name:string ->
  ?duty:float ->
  ?start_high:bool ->
  ?until:Sim_time.t ->
  period:Sim_time.t ->
  unit ->
  t
(** [duty] is the high fraction of the period (default 0.5); must lie
    strictly between 0 and 1. Raises [Invalid_argument] on a zero
    period. *)

val name : t -> string
val period : t -> Sim_time.t
val signal : t -> bool Signal.t

val posedge : t -> Event.t
(** Notified on every rising edge. *)

val negedge : t -> Event.t

val wait_posedge : t -> unit
(** Suspends the calling process until the next rising edge. *)

val wait_negedge : t -> unit

val wait_cycles : t -> int -> unit
(** Suspends for the given number of rising edges. *)

val edges : t -> int
(** Rising edges generated so far. *)
