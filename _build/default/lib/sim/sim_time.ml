type t = int

let zero = 0

let of_ps n =
  if n < 0 then invalid_arg "Sim_time.of_ps: negative" else n

let ps n = of_ps n
let ns n = of_ps (n * 1_000)
let us n = of_ps (n * 1_000_000)
let ms n = of_ps (n * 1_000_000_000)
let s n = of_ps (n * 1_000_000_000_000)

let of_ns_float x =
  if x < 0.0 then invalid_arg "Sim_time.of_ns_float: negative"
  else int_of_float (Float.round (x *. 1_000.0))

let of_ms_float x =
  if x < 0.0 then invalid_arg "Sim_time.of_ms_float: negative"
  else int_of_float (Float.round (x *. 1_000_000_000.0))

let to_ps t = t
let to_float_ns t = float_of_int t /. 1_000.0
let to_float_us t = float_of_int t /. 1_000_000.0
let to_float_ms t = float_of_int t /. 1_000_000_000.0

let add a b = a + b

let sub a b =
  if b > a then invalid_arg "Sim_time.sub: negative result" else a - b

let mul_int t n =
  if n < 0 then invalid_arg "Sim_time.mul_int: negative" else t * n

let div_int t n =
  if n <= 0 then invalid_arg "Sim_time.div_int: non-positive" else t / n

let cycles ~hz n =
  if hz <= 0 then invalid_arg "Sim_time.cycles: non-positive frequency"
  else if n < 0 then invalid_arg "Sim_time.cycles: negative count"
  else n * (1_000_000_000_000 / hz)

let period ~hz = cycles ~hz 1

let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b
let is_zero t = t = 0

let pp fmt t =
  let f = float_of_int t in
  if t = 0 then Format.pp_print_string fmt "0 s"
  else if t mod 1_000_000_000_000 = 0 then
    Format.fprintf fmt "%d s" (t / 1_000_000_000_000)
  else if t >= 1_000_000_000 then
    Format.fprintf fmt "%g ms" (f /. 1_000_000_000.0)
  else if t >= 1_000_000 then Format.fprintf fmt "%g us" (f /. 1_000_000.0)
  else if t >= 1_000 then Format.fprintf fmt "%g ns" (f /. 1_000.0)
  else Format.fprintf fmt "%d ps" t

let to_string t = Format.asprintf "%a" pp t
