(* Per-pass cost in the emitted stream: a u32 length prefix plus the
   codeword bytes (see Codestream.emit_band). *)
let pass_cost pass = 4 + String.length pass

let map_blocks stream f =
  {
    stream with
    Codestream.tiles =
      List.map
        (fun tile ->
          {
            tile with
            Codestream.comps =
              Array.map
                (List.map (fun seg ->
                     {
                       seg with
                       Codestream.seg_blocks =
                         List.map f seg.Codestream.seg_blocks;
                     }))
                tile.Codestream.comps;
          })
        stream.Codestream.tiles;
  }

let all_blocks stream =
  List.concat_map
    (fun tile ->
      Array.to_list tile.Codestream.comps
      |> List.concat_map (List.concat_map (fun seg -> seg.Codestream.seg_blocks)))
    stream.Codestream.tiles

let strip_passes stream =
  map_blocks stream (fun blk -> { blk with Codestream.blk_passes = [] })

let minimum_bytes data =
  String.length (Codestream.emit (strip_passes (Codestream.parse data)))

let shape ~max_bytes data =
  if max_bytes <= 0 then invalid_arg "Rate.shape: max_bytes";
  if String.length data <= max_bytes then data
  else begin
    let stream = Codestream.parse data in
    let base = String.length (Codestream.emit (strip_passes stream)) in
    (* Grant passes in rounds across all blocks while the budget
       lasts. Blocks are visited in stream order, so the allocation
       is deterministic. *)
    let blocks = all_blocks stream in
    let budget = ref (max_bytes - base) in
    let granted = Hashtbl.create 64 in
    let deepest =
      List.fold_left
        (fun acc blk -> Stdlib.max acc (List.length blk.Codestream.blk_passes))
        0 blocks
    in
    List.iteri (fun i _ -> Hashtbl.replace granted i 0) blocks;
    (try
       for round = 0 to deepest - 1 do
         List.iteri
           (fun i blk ->
             match List.nth_opt blk.Codestream.blk_passes round with
             | None -> ()
             | Some pass ->
               let cost = pass_cost pass in
               if cost <= !budget then begin
                 budget := !budget - cost;
                 Hashtbl.replace granted i (round + 1)
               end
               else raise Exit)
           blocks
       done
     with Exit -> ());
    let index = ref (-1) in
    let shaped =
      map_blocks stream (fun blk ->
          incr index;
          let keep = Option.value (Hashtbl.find_opt granted !index) ~default:0 in
          {
            blk with
            Codestream.blk_passes =
              List.filteri (fun i _ -> i < keep) blk.Codestream.blk_passes;
          })
    in
    Codestream.emit shaped
  end
