(** MQ binary arithmetic coder (ISO/IEC 15444-1, Annex C).

    The adaptive arithmetic coder underneath EBCOT: a 47-state
    probability estimation table, conditional MPS/LPS exchange,
    byte-stuffing after [0xFF], and the standard FLUSH termination.
    Contexts carry the adaptive state (table index + current MPS) and
    are shared between the Tier-1 passes exactly as in the standard.

    The encoder and decoder here are mutually consistent by
    construction and are exercised against each other by property
    tests with random context/bit sequences. *)

type context

val context : ?index:int -> ?mps:int -> unit -> context
(** Fresh context, default state (index 0, MPS 0). Raises
    [Invalid_argument] outside index 0..46 or mps 0..1. *)

val reset_context : context -> index:int -> mps:int -> unit
val context_index : context -> int
val context_mps : context -> int

(** {1 Encoding} *)

type encoder

val encoder : unit -> encoder

val encode : encoder -> context -> int -> unit
(** Codes one binary decision (0 or 1) in the given context. *)

val flush : encoder -> string
(** Terminates the codeword (SETBITS + two BYTEOUTs) and returns the
    bytes. The encoder must not be used afterwards. *)

val encoded_bytes : encoder -> int
(** Bytes emitted so far (grows during encoding). *)

(** {1 Decoding} *)

type decoder

val decoder : string -> decoder
(** Initialises decoding over a terminated codeword. Reading past the
    end behaves as if [0xFF] bytes followed, per the standard. *)

val decode : decoder -> context -> int
(** Decodes one binary decision. *)

val consumed_bytes : decoder -> int
