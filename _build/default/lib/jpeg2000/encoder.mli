(** JPEG 2000 encoder (forward chain).

    The paper only needs the decoder, but without the authors'
    proprietary coded images the decoder would have nothing real to
    chew on — so the forward chain is implemented too: DC shift →
    component transform → DWT → quantisation → Tier-1 → codestream.
    Lossless (5/3 + RCT) round-trips bit-exactly; lossy (9/7 + ICT +
    dead-zone quantiser) is tuned by [base_step]. *)

type config = {
  tile_w : int;
  tile_h : int;
  levels : int;  (** wavelet decomposition levels *)
  mode : Codestream.mode;
  base_step : float;  (** lossy quantiser base step *)
  code_block : int;  (** EBCOT code-block size (square) *)
}

val default_lossless : config
(** 128×128 tiles, 3 levels, 32×32 code blocks, 5/3 reversible path. *)

val default_lossy : config
(** 128×128 tiles, 3 levels, 9/7 path, base step 2.0. *)

val encode : config -> Image.t -> string
(** Full encode to a codestream. Raises [Invalid_argument] on
    inconsistent configuration (e.g. non-positive sizes). *)

val encode_tile : Codestream.header -> Tile.t -> Codestream.tile_segment
(** Single-tile forward chain; exposed for tests and for the system
    models that need per-tile workloads. *)

val header_of_config : config -> Image.t -> Codestream.header
