let dc_shift_forward ~bit_depth samples =
  let offset = 1 lsl (bit_depth - 1) in
  Array.iteri (fun i v -> samples.(i) <- v - offset) samples

let dc_shift_inverse ~bit_depth samples =
  let offset = 1 lsl (bit_depth - 1) in
  let top = (1 lsl bit_depth) - 1 in
  Array.iteri
    (fun i v -> samples.(i) <- Stdlib.max 0 (Stdlib.min top (v + offset)))
    samples

let check_lengths a b c name =
  if Array.length a <> Array.length b || Array.length b <> Array.length c then
    invalid_arg (name ^ ": component length mismatch")

(* Reversible component transform (ISO 15444-1 G.1):
   Y = floor((R + 2G + B) / 4); Cb = B - G; Cr = R - G. *)
let rct_forward r g b =
  check_lengths r g b "Colour.rct_forward";
  for i = 0 to Array.length r - 1 do
    let red = r.(i) and green = g.(i) and blue = b.(i) in
    let y =
      (* Arithmetic shift floors also for negative sums. *)
      (red + (2 * green) + blue) asr 2
    in
    r.(i) <- y;
    g.(i) <- blue - green;
    b.(i) <- red - green
  done

let rct_inverse y cb cr =
  check_lengths y cb cr "Colour.rct_inverse";
  for i = 0 to Array.length y - 1 do
    let green = y.(i) - ((cb.(i) + cr.(i)) asr 2) in
    let blue = cb.(i) + green in
    let red = cr.(i) + green in
    y.(i) <- red;
    cb.(i) <- green;
    cr.(i) <- blue
  done

(* Irreversible component transform (ISO 15444-1 G.2). The inverse
   coefficients are derived from the luminance weights rather than
   taken as the spec's 5-digit roundings, so forward∘inverse is exact
   to floating-point precision. *)
let w_r = 0.299
let w_g = 0.587
let w_b = 0.114

let ict_forward r g b =
  if Array.length r <> Array.length g || Array.length g <> Array.length b then
    invalid_arg "Colour.ict_forward: component length mismatch";
  for i = 0 to Array.length r - 1 do
    let red = r.(i) and green = g.(i) and blue = b.(i) in
    let y = (w_r *. red) +. (w_g *. green) +. (w_b *. blue) in
    r.(i) <- y;
    g.(i) <- 0.5 /. (1.0 -. w_b) *. (blue -. y);
    b.(i) <- 0.5 /. (1.0 -. w_r) *. (red -. y)
  done

let ict_inverse y cb cr =
  if Array.length y <> Array.length cb || Array.length cb <> Array.length cr
  then invalid_arg "Colour.ict_inverse: component length mismatch";
  let k_cr = 2.0 *. (1.0 -. w_r) in
  let k_cb = 2.0 *. (1.0 -. w_b) in
  for i = 0 to Array.length y - 1 do
    let lum = y.(i) and u = cb.(i) and v = cr.(i) in
    let red = lum +. (k_cr *. v) in
    let blue = lum +. (k_cb *. u) in
    let green = (lum -. (w_r *. red) -. (w_b *. blue)) /. w_g in
    y.(i) <- red;
    cb.(i) <- green;
    cr.(i) <- blue
  done
