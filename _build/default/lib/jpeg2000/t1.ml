(* Context numbering: 0-8 zero coding, 9-13 sign coding, 14-16
   magnitude refinement, 17 run-length, 18 uniform. *)
let ctx_rl = 17
let ctx_uni = 18
let num_contexts = 19

(* Initial context states, ISO Table D.7. *)
let fresh_contexts () =
  Array.init num_contexts (fun i ->
      if i = 0 then Mq.context ~index:4 ()
      else if i = ctx_rl then Mq.context ~index:3 ()
      else if i = ctx_uni then Mq.context ~index:46 ()
      else Mq.context ())

type blk = {
  w : int;
  h : int;
  orientation : Subband.orientation;
  significant : Bytes.t;
  sign : Bytes.t; (* 0 = non-negative, 1 = negative *)
  became : Bytes.t; (* became significant in the current bit-plane *)
  visited : Bytes.t; (* coded by an earlier pass of this bit-plane *)
  refined : Bytes.t; (* has been magnitude-refined at least once *)
  contexts : Mq.context array;
}

let make_blk ~orientation ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "T1: block size";
  let zeroed () = Bytes.make (w * h) '\000' in
  {
    w;
    h;
    orientation;
    significant = zeroed ();
    sign = zeroed ();
    became = zeroed ();
    visited = zeroed ();
    refined = zeroed ();
    contexts = fresh_contexts ();
  }

let flag b x y = Bytes.get b.significant ((y * b.w) + x) <> '\000'

let get bytes b x y = Bytes.get bytes ((y * b.w) + x) <> '\000'
let set bytes b x y v =
  Bytes.set bytes ((y * b.w) + x) (if v then '\001' else '\000')

let in_block b x y = x >= 0 && x < b.w && y >= 0 && y < b.h
let sig_at b x y = in_block b x y && flag b x y

(* Neighbourhood significance counts: horizontal, vertical, diagonal. *)
let neighbour_counts b x y =
  let s dx dy = if sig_at b (x + dx) (y + dy) then 1 else 0 in
  let h = s (-1) 0 + s 1 0 in
  let v = s 0 (-1) + s 0 1 in
  let d = s (-1) (-1) + s 1 (-1) + s (-1) 1 + s 1 1 in
  (h, v, d)

let neighbourhood_empty b x y =
  let h, v, d = neighbour_counts b x y in
  h + v + d = 0

(* Zero-coding contexts, ISO Table D.1. *)
let zc_primary h v d =
  if h = 2 then 8
  else if h = 1 then (if v >= 1 then 7 else if d >= 1 then 6 else 5)
  else if v = 2 then 4
  else if v = 1 then 3
  else if d >= 2 then 2
  else if d = 1 then 1
  else 0

let zc_hh hv d =
  if d >= 3 then 8
  else if d = 2 then (if hv >= 1 then 7 else 6)
  else if d = 1 then (if hv >= 2 then 5 else if hv = 1 then 4 else 3)
  else if hv >= 2 then 2
  else if hv = 1 then 1
  else 0

let zc_context b x y =
  let h, v, d = neighbour_counts b x y in
  match b.orientation with
  | Subband.LL | Subband.LH -> zc_primary h v d
  | Subband.HL -> zc_primary v h d
  | Subband.HH -> zc_hh (h + v) d

(* Sign-coding context and XOR bit, ISO Tables D.2/D.3. A significant
   neighbour contributes +1 (positive) or -1 (negative); the sums are
   clamped to [-1, 1]. *)
let sign_contribution b x y =
  if not (sig_at b x y) then 0
  else if get b.sign b x y then -1
  else 1

let sc_context b x y =
  let clamp s = Stdlib.max (-1) (Stdlib.min 1 s) in
  let hc = clamp (sign_contribution b (x - 1) y + sign_contribution b (x + 1) y) in
  let vc = clamp (sign_contribution b x (y - 1) + sign_contribution b x (y + 1)) in
  match (hc, vc) with
  | 1, 1 -> (13, 0)
  | 1, 0 -> (12, 0)
  | 1, -1 -> (11, 0)
  | 0, 1 -> (10, 0)
  | 0, 0 -> (9, 0)
  | 0, -1 -> (10, 1)
  | -1, 1 -> (11, 1)
  | -1, 0 -> (12, 1)
  | -1, -1 -> (13, 1)
  | _ -> assert false

(* Magnitude-refinement contexts, ISO Table D.4. *)
let mr_context b x y =
  if get b.refined b x y then 16
  else if neighbourhood_empty b x y then 14
  else 15

(* The bit-level interface that distinguishes encoder and decoder:
   every function codes (or decodes) through the shared MQ state and
   returns the actual bit value so the pass drivers below can be
   written once. *)
type io = {
  coeff_bit : x:int -> y:int -> plane:int -> ctx:int -> int;
      (** zero-coding or refinement bit for one coefficient *)
  sign_bit : x:int -> y:int -> ctx:int -> xor:int -> int;
      (** sign of a newly significant coefficient (0 = positive) *)
  rl_bit : x:int -> y0:int -> plane:int -> int;
      (** run-length decision for a clean stripe column *)
  uni_pos : x:int -> y0:int -> plane:int -> int;
      (** 2-bit position of the first 1 within the column *)
  on_significant : x:int -> y:int -> plane:int -> unit;
      (** magnitude bookkeeping hook (decoder sets the plane bit) *)
  on_refine : x:int -> y:int -> plane:int -> bit:int -> unit;
}

let make_significant b io ~x ~y ~plane =
  let s = io.sign_bit ~x ~y ~ctx:(fst (sc_context b x y))
            ~xor:(snd (sc_context b x y)) in
  set b.sign b x y (s = 1);
  set b.significant b x y true;
  set b.became b x y true;
  io.on_significant ~x ~y ~plane

(* One coefficient of a cleanup or significance pass: zero-coding
   plus sign on a 1 bit. *)
let code_zc b io ~x ~y ~plane =
  let bit = io.coeff_bit ~x ~y ~plane ~ctx:(zc_context b x y) in
  if bit = 1 then make_significant b io ~x ~y ~plane

let significance_pass b io ~plane =
  let stripe = 4 in
  let k = ref 0 in
  while !k < b.h do
    for x = 0 to b.w - 1 do
      for y = !k to Stdlib.min (!k + stripe - 1) (b.h - 1) do
        if (not (flag b x y)) && not (neighbourhood_empty b x y) then begin
          code_zc b io ~x ~y ~plane;
          set b.visited b x y true
        end
      done
    done;
    k := !k + stripe
  done

let refinement_pass b io ~plane =
  let stripe = 4 in
  let k = ref 0 in
  while !k < b.h do
    for x = 0 to b.w - 1 do
      for y = !k to Stdlib.min (!k + stripe - 1) (b.h - 1) do
        if flag b x y && (not (get b.became b x y)) && not (get b.visited b x y)
        then begin
          let ctx = mr_context b x y in
          let bit = io.coeff_bit ~x ~y ~plane ~ctx in
          io.on_refine ~x ~y ~plane ~bit;
          set b.refined b x y true;
          set b.visited b x y true
        end
      done
    done;
    k := !k + stripe
  done

let cleanup_pass b io ~plane =
  let stripe = 4 in
  let k = ref 0 in
  while !k < b.h do
    let y0 = !k in
    let full_column = y0 + stripe <= b.h in
    for x = 0 to b.w - 1 do
      let column_clean =
        full_column
        && (let clean = ref true in
            for y = y0 to y0 + stripe - 1 do
              if flag b x y || get b.visited b x y
                 || not (neighbourhood_empty b x y)
              then clean := false
            done;
            !clean)
      in
      if column_clean then begin
        if io.rl_bit ~x ~y0 ~plane = 1 then begin
          let r = io.uni_pos ~x ~y0 ~plane in
          (* Coefficient y0+r is the first 1: its zero-coding bit is
             implicit; code its sign and continue below it. *)
          make_significant b io ~x ~y:(y0 + r) ~plane;
          for y = y0 + r + 1 to y0 + stripe - 1 do
            code_zc b io ~x ~y ~plane
          done
        end
      end
      else
        for y = y0 to Stdlib.min (y0 + stripe - 1) (b.h - 1) do
          if (not (get b.visited b x y)) && not (flag b x y) then
            code_zc b io ~x ~y ~plane
        done
    done;
    k := !k + stripe
  done

let code_plane b io ~plane ~first =
  if not first then begin
    significance_pass b io ~plane;
    refinement_pass b io ~plane
  end;
  cleanup_pass b io ~plane;
  Bytes.fill b.visited 0 (Bytes.length b.visited) '\000';
  Bytes.fill b.became 0 (Bytes.length b.became) '\000'

(* The same plane schedule expressed as the standard pass sequence:
   the top plane has only its cleanup pass, every lower plane runs
   significance propagation, refinement, cleanup. *)
type pass_kind = Significance | Refinement | Cleanup

let pass_schedule ~planes =
  List.concat
    (List.init planes (fun i ->
         let plane = planes - 1 - i in
         if i = 0 then [ (Cleanup, plane) ]
         else [ (Significance, plane); (Refinement, plane); (Cleanup, plane) ]))

let run_pass b io (kind, plane) =
  (match kind with
  | Significance -> significance_pass b io ~plane
  | Refinement -> refinement_pass b io ~plane
  | Cleanup ->
    cleanup_pass b io ~plane;
    Bytes.fill b.visited 0 (Bytes.length b.visited) '\000';
    Bytes.fill b.became 0 (Bytes.length b.became) '\000');
  ()

let total_passes ~planes = if planes = 0 then 0 else 1 + (3 * (planes - 1))

let num_planes coeffs =
  let m = Array.fold_left (fun acc c -> Stdlib.max acc (abs c)) 0 coeffs in
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits m 0

let check_dims ~w ~h len =
  if w <= 0 || h <= 0 || len <> w * h then invalid_arg "T1: dimensions"

let encode_block ~orientation ~w ~h coeffs =
  check_dims ~w ~h (Array.length coeffs);
  let planes = num_planes coeffs in
  if planes = 0 then (0, "")
  else begin
    let b = make_blk ~orientation ~w ~h in
    let enc = Mq.encoder () in
    let magnitude x y = abs coeffs.((y * w) + x) in
    let bit_of x y plane = (magnitude x y lsr plane) land 1 in
    let io =
      {
        coeff_bit =
          (fun ~x ~y ~plane ~ctx ->
            let bit = bit_of x y plane in
            Mq.encode enc b.contexts.(ctx) bit;
            bit);
        sign_bit =
          (fun ~x ~y ~ctx ~xor ->
            let s = if coeffs.((y * w) + x) < 0 then 1 else 0 in
            Mq.encode enc b.contexts.(ctx) (s lxor xor);
            s);
        rl_bit =
          (fun ~x ~y0 ~plane ->
            let any = ref 0 in
            for y = y0 to y0 + 3 do
              if bit_of x y plane = 1 then any := 1
            done;
            Mq.encode enc b.contexts.(ctx_rl) !any;
            !any);
        uni_pos =
          (fun ~x ~y0 ~plane ->
            let rec first r = if bit_of x (y0 + r) plane = 1 then r else first (r + 1) in
            let r = first 0 in
            Mq.encode enc b.contexts.(ctx_uni) ((r lsr 1) land 1);
            Mq.encode enc b.contexts.(ctx_uni) (r land 1);
            r);
        on_significant = (fun ~x:_ ~y:_ ~plane:_ -> ());
        on_refine = (fun ~x:_ ~y:_ ~plane:_ ~bit:_ -> ());
      }
    in
    for plane = planes - 1 downto 0 do
      code_plane b io ~plane ~first:(plane = planes - 1)
    done;
    (planes, Mq.flush enc)
  end

let decode_block ~orientation ~w ~h ~planes data =
  check_dims ~w ~h (w * h);
  if planes = 0 then Array.make (w * h) 0
  else begin
    let b = make_blk ~orientation ~w ~h in
    let dec = Mq.decoder data in
    let magnitudes = Array.make (w * h) 0 in
    let set_bit x y plane = magnitudes.((y * w) + x) <- magnitudes.((y * w) + x) lor (1 lsl plane) in
    let io =
      {
        coeff_bit =
          (fun ~x:_ ~y:_ ~plane:_ ~ctx -> Mq.decode dec b.contexts.(ctx));
        sign_bit =
          (fun ~x:_ ~y:_ ~ctx ~xor -> Mq.decode dec b.contexts.(ctx) lxor xor);
        rl_bit = (fun ~x:_ ~y0:_ ~plane:_ -> Mq.decode dec b.contexts.(ctx_rl));
        uni_pos =
          (fun ~x:_ ~y0:_ ~plane:_ ->
            let hi = Mq.decode dec b.contexts.(ctx_uni) in
            let lo = Mq.decode dec b.contexts.(ctx_uni) in
            (hi lsl 1) lor lo);
        on_significant = (fun ~x ~y ~plane -> set_bit x y plane);
        on_refine =
          (fun ~x ~y ~plane ~bit -> if bit = 1 then set_bit x y plane);
      }
    in
    for plane = planes - 1 downto 0 do
      code_plane b io ~plane ~first:(plane = planes - 1)
    done;
    Array.init (w * h) (fun i ->
        let x = i mod w and y = i / w in
        let m = magnitudes.(i) in
        if get b.sign b x y then -m else m)
  end


(* -- SNR-scalable variant ---------------------------------------------

   Every coding pass is terminated into its own MQ codeword (the
   standard's RESTART/segmentation option, contexts carried across
   passes), so a codestream can be truncated at any pass boundary and
   still decode exactly up to that pass. *)

let make_encoder_io b enc coeffs w =
  let magnitude x y = abs coeffs.((y * w) + x) in
  let bit_of x y plane = (magnitude x y lsr plane) land 1 in
  {
    coeff_bit =
      (fun ~x ~y ~plane ~ctx ->
        let bit = bit_of x y plane in
        Mq.encode !enc b.contexts.(ctx) bit;
        bit);
    sign_bit =
      (fun ~x ~y ~ctx ~xor ->
        let s = if coeffs.((y * w) + x) < 0 then 1 else 0 in
        Mq.encode !enc b.contexts.(ctx) (s lxor xor);
        s);
    rl_bit =
      (fun ~x ~y0 ~plane ->
        let any = ref 0 in
        for y = y0 to y0 + 3 do
          if bit_of x y plane = 1 then any := 1
        done;
        Mq.encode !enc b.contexts.(ctx_rl) !any;
        !any);
    uni_pos =
      (fun ~x ~y0 ~plane ->
        let rec first r = if bit_of x (y0 + r) plane = 1 then r else first (r + 1) in
        let r = first 0 in
        Mq.encode !enc b.contexts.(ctx_uni) ((r lsr 1) land 1);
        Mq.encode !enc b.contexts.(ctx_uni) (r land 1);
        r);
    on_significant = (fun ~x:_ ~y:_ ~plane:_ -> ());
    on_refine = (fun ~x:_ ~y:_ ~plane:_ ~bit:_ -> ());
  }

let encode_block_scalable ~orientation ~w ~h coeffs =
  check_dims ~w ~h (Array.length coeffs);
  let planes = num_planes coeffs in
  if planes = 0 then (0, [])
  else begin
    let b = make_blk ~orientation ~w ~h in
    let enc = ref (Mq.encoder ()) in
    let io = make_encoder_io b enc coeffs w in
    let segments =
      List.map
        (fun pass ->
          run_pass b io pass;
          let segment = Mq.flush !enc in
          enc := Mq.encoder ();
          segment)
        (pass_schedule ~planes)
    in
    (planes, segments)
  end

let make_decoder_io b dec magnitudes w =
  let set_bit x y plane =
    magnitudes.((y * w) + x) <- magnitudes.((y * w) + x) lor (1 lsl plane)
  in
  {
    coeff_bit = (fun ~x:_ ~y:_ ~plane:_ ~ctx -> Mq.decode !dec b.contexts.(ctx));
    sign_bit = (fun ~x:_ ~y:_ ~ctx ~xor -> Mq.decode !dec b.contexts.(ctx) lxor xor);
    rl_bit = (fun ~x:_ ~y0:_ ~plane:_ -> Mq.decode !dec b.contexts.(ctx_rl));
    uni_pos =
      (fun ~x:_ ~y0:_ ~plane:_ ->
        let hi = Mq.decode !dec b.contexts.(ctx_uni) in
        let lo = Mq.decode !dec b.contexts.(ctx_uni) in
        (hi lsl 1) lor lo);
    on_significant = (fun ~x ~y ~plane -> set_bit x y plane);
    on_refine = (fun ~x ~y ~plane ~bit -> if bit = 1 then set_bit x y plane);
  }

let decode_block_scalable ~orientation ~w ~h ~planes segments =
  check_dims ~w ~h (w * h);
  if planes = 0 then Array.make (w * h) 0
  else begin
    let b = make_blk ~orientation ~w ~h in
    let dec = ref (Mq.decoder "") in
    let magnitudes = Array.make (w * h) 0 in
    let io = make_decoder_io b dec magnitudes w in
    let rec decode_passes schedule segments =
      match (schedule, segments) with
      | _, [] | [], _ -> ()
      | pass :: schedule, segment :: segments ->
        dec := Mq.decoder segment;
        run_pass b io pass;
        decode_passes schedule segments
    in
    decode_passes (pass_schedule ~planes) segments;
    Array.init (w * h) (fun i ->
        let x = i mod w and y = i / w in
        let m = magnitudes.(i) in
        if get b.sign b x y then -m else m)
  end
