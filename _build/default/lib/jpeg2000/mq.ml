(* Probability estimation table, ISO/IEC 15444-1 Table C.2:
   (Qe, NMPS, NLPS, SWITCH) per state. *)
let qe_table =
  [|
    (0x5601, 1, 1, 1);
    (0x3401, 2, 6, 0);
    (0x1801, 3, 9, 0);
    (0x0AC1, 4, 12, 0);
    (0x0521, 5, 29, 0);
    (0x0221, 38, 33, 0);
    (0x5601, 7, 6, 1);
    (0x5401, 8, 14, 0);
    (0x4801, 9, 14, 0);
    (0x3801, 10, 14, 0);
    (0x3001, 11, 17, 0);
    (0x2401, 12, 18, 0);
    (0x1C01, 13, 20, 0);
    (0x1601, 29, 21, 0);
    (0x5601, 15, 14, 1);
    (0x5401, 16, 14, 0);
    (0x5101, 17, 15, 0);
    (0x4801, 18, 16, 0);
    (0x3801, 19, 17, 0);
    (0x3401, 20, 18, 0);
    (0x3001, 21, 19, 0);
    (0x2801, 22, 19, 0);
    (0x2401, 23, 20, 0);
    (0x2201, 24, 21, 0);
    (0x1C01, 25, 22, 0);
    (0x1801, 26, 23, 0);
    (0x1601, 27, 24, 0);
    (0x1401, 28, 25, 0);
    (0x1201, 29, 26, 0);
    (0x1101, 30, 27, 0);
    (0x0AC1, 31, 28, 0);
    (0x09C1, 32, 29, 0);
    (0x08A1, 33, 30, 0);
    (0x0521, 34, 31, 0);
    (0x0441, 35, 32, 0);
    (0x02A1, 36, 33, 0);
    (0x0221, 37, 34, 0);
    (0x0141, 38, 35, 0);
    (0x0111, 39, 36, 0);
    (0x0085, 40, 37, 0);
    (0x0049, 41, 38, 0);
    (0x0025, 42, 39, 0);
    (0x0015, 43, 40, 0);
    (0x0009, 44, 41, 0);
    (0x0005, 45, 42, 0);
    (0x0001, 45, 43, 0);
    (0x5601, 46, 46, 0);
  |]

let qe i = let (v, _, _, _) = qe_table.(i) in v
let nmps i = let (_, v, _, _) = qe_table.(i) in v
let nlps i = let (_, _, v, _) = qe_table.(i) in v
let switch i = let (_, _, _, v) = qe_table.(i) in v

type context = { mutable index : int; mutable mps : int }

let check_state index mps =
  if index < 0 || index >= Array.length qe_table then
    invalid_arg "Mq.context: index";
  if mps <> 0 && mps <> 1 then invalid_arg "Mq.context: mps"

let context ?(index = 0) ?(mps = 0) () =
  check_state index mps;
  { index; mps }

let reset_context ctx ~index ~mps =
  check_state index mps;
  ctx.index <- index;
  ctx.mps <- mps

let context_index ctx = ctx.index
let context_mps ctx = ctx.mps

(* -- Encoder --------------------------------------------------------

   The byte buffer includes a virtual byte at position 0 that absorbs
   a carry out of the first real byte; it is dropped at flush (the
   classic `bp = start - 1` implementation idiom). *)

type encoder = {
  mutable a : int;
  mutable c : int;
  mutable ct : int;
  mutable bytes : Bytes.t;
  mutable len : int; (* bytes used, including the virtual first byte *)
}

let encoder () =
  let bytes = Bytes.make 64 '\000' in
  { a = 0x8000; c = 0; ct = 12; bytes; len = 1 }

let push_byte e v =
  if e.len = Bytes.length e.bytes then begin
    let bigger = Bytes.make (2 * e.len) '\000' in
    Bytes.blit e.bytes 0 bigger 0 e.len;
    e.bytes <- bigger
  end;
  Bytes.set e.bytes e.len (Char.chr (v land 0xFF));
  e.len <- e.len + 1

let last_byte e = Char.code (Bytes.get e.bytes (e.len - 1))

let set_last_byte e v = Bytes.set e.bytes (e.len - 1) (Char.chr (v land 0xFF))

let byteout e =
  if last_byte e = 0xFF then begin
    push_byte e (e.c lsr 20);
    e.c <- e.c land 0xFFFFF;
    e.ct <- 7
  end
  else if e.c land 0x8000000 = 0 then begin
    push_byte e (e.c lsr 19);
    e.c <- e.c land 0x7FFFF;
    e.ct <- 8
  end
  else begin
    set_last_byte e (last_byte e + 1);
    if last_byte e = 0xFF then begin
      e.c <- e.c land 0x7FFFFFF;
      push_byte e (e.c lsr 20);
      e.c <- e.c land 0xFFFFF;
      e.ct <- 7
    end
    else begin
      push_byte e (e.c lsr 19);
      e.c <- e.c land 0x7FFFF;
      e.ct <- 8
    end
  end

let renorm_enc e =
  let continue = ref true in
  while !continue do
    e.a <- (e.a lsl 1) land 0xFFFF;
    e.c <- (e.c lsl 1) land 0xFFFFFFF;
    e.ct <- e.ct - 1;
    if e.ct = 0 then byteout e;
    if e.a land 0x8000 <> 0 then continue := false
  done

let encode e ctx bit =
  if bit <> 0 && bit <> 1 then invalid_arg "Mq.encode: bit";
  let q = qe ctx.index in
  if bit = ctx.mps then begin
    (* CODEMPS *)
    e.a <- e.a - q;
    if e.a land 0x8000 = 0 then begin
      if e.a < q then e.a <- q else e.c <- e.c + q;
      ctx.index <- nmps ctx.index;
      renorm_enc e
    end
    else e.c <- e.c + q
  end
  else begin
    (* CODELPS *)
    e.a <- e.a - q;
    if e.a < q then e.c <- e.c + q else e.a <- q;
    if switch ctx.index = 1 then ctx.mps <- 1 - ctx.mps;
    ctx.index <- nlps ctx.index;
    renorm_enc e
  end

let flush e =
  (* SETBITS *)
  let tempc = e.c + e.a in
  e.c <- e.c lor 0xFFFF;
  if e.c >= tempc then e.c <- e.c - 0x8000;
  e.c <- (e.c lsl e.ct) land 0xFFFFFFF;
  byteout e;
  e.c <- (e.c lsl e.ct) land 0xFFFFFFF;
  byteout e;
  (* Drop a trailing 0xFF (the decoder synthesises it) and the
     virtual first byte. *)
  let stop = if last_byte e = 0xFF then e.len - 1 else e.len in
  Bytes.sub_string e.bytes 1 (stop - 1)

let encoded_bytes e = e.len - 1

(* -- Decoder ------------------------------------------------------- *)

type decoder = {
  data : string;
  mutable pos : int; (* index of the byte B currently in use *)
  mutable d_a : int;
  mutable d_c : int;
  mutable d_ct : int;
}

let byte_at d i =
  if i < String.length d.data then Char.code d.data.[i] else 0xFF

let bytein d =
  if byte_at d d.pos = 0xFF then begin
    if byte_at d (d.pos + 1) > 0x8F then begin
      (* Marker (or synthesised end): feed 1-bits forever. *)
      d.d_c <- d.d_c + 0xFF00;
      d.d_ct <- 8
    end
    else begin
      d.pos <- d.pos + 1;
      d.d_c <- d.d_c + (byte_at d d.pos lsl 9);
      d.d_ct <- 7
    end
  end
  else begin
    d.pos <- d.pos + 1;
    d.d_c <- d.d_c + (byte_at d d.pos lsl 8);
    d.d_ct <- 8
  end

let decoder data =
  let d = { data; pos = 0; d_a = 0; d_c = 0; d_ct = 0 } in
  d.d_c <- byte_at d 0 lsl 16;
  bytein d;
  d.d_c <- (d.d_c lsl 7) land 0xFFFFFFFF;
  d.d_ct <- d.d_ct - 7;
  d.d_a <- 0x8000;
  d

let renorm_dec d =
  let continue = ref true in
  while !continue do
    if d.d_ct = 0 then bytein d;
    d.d_a <- (d.d_a lsl 1) land 0xFFFF;
    d.d_c <- (d.d_c lsl 1) land 0xFFFFFFFF;
    d.d_ct <- d.d_ct - 1;
    if d.d_a land 0x8000 <> 0 then continue := false
  done

let decode d ctx =
  let q = qe ctx.index in
  d.d_a <- d.d_a - q;
  let decision =
    if (d.d_c lsr 16) land 0xFFFF < q then begin
      (* LPS path (chigh < Qe): conditional exchange *)
      let bit =
        if d.d_a < q then begin
          let bit = ctx.mps in
          ctx.index <- nmps ctx.index;
          bit
        end
        else begin
          let bit = 1 - ctx.mps in
          if switch ctx.index = 1 then ctx.mps <- 1 - ctx.mps;
          ctx.index <- nlps ctx.index;
          bit
        end
      in
      d.d_a <- q;
      renorm_dec d;
      bit
    end
    else begin
      d.d_c <- d.d_c - (q lsl 16);
      if d.d_a land 0x8000 = 0 then begin
        let bit =
          if d.d_a < q then begin
            let bit = 1 - ctx.mps in
            if switch ctx.index = 1 then ctx.mps <- 1 - ctx.mps;
            ctx.index <- nlps ctx.index;
            bit
          end
          else begin
            let bit = ctx.mps in
            ctx.index <- nmps ctx.index;
            bit
          end
        in
        renorm_dec d;
        bit
      end
      else ctx.mps
    end
  in
  decision

let consumed_bytes d = d.pos + 1
