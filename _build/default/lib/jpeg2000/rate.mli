(** Post-compression rate shaping.

    A simplified form of EBCOT's PCRD rate allocation: given an
    already-encoded stream, keep only as many coding passes per code
    block as fit a byte budget. Passes are granted in rounds across
    all blocks (pass 1 everywhere, then pass 2, ...), which
    approximates equal-slope allocation because early passes carry
    the most significant bit-planes. The result is a valid stream of
    the same geometry that every decoder entry point accepts. *)

val shape : max_bytes:int -> string -> string
(** [shape ~max_bytes stream] returns a stream no larger than
    [max_bytes] (or the unavoidable minimum: headers plus empty
    blocks, whichever is larger). If the input already fits, it is
    returned unchanged. Raises [Invalid_argument] if [max_bytes <= 0]
    and [Failure] on a malformed stream. *)

val minimum_bytes : string -> int
(** Size of the stream with every coding pass dropped — the floor
    {!shape} cannot go below. *)
