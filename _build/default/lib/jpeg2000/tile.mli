(** Tiling.

    JPEG 2000 processes images as tiles — "small parts of the image,
    more manageable and more adapted to a pipelined computation".
    A tile carries one rectangle of every component plane. *)

type t = {
  index : int;  (** raster order index *)
  x0 : int;
  y0 : int;  (** position of the tile in the image *)
  planes : Image.plane array;  (** one rectangle per component *)
}

val tile_grid : image_w:int -> image_h:int -> tile_w:int -> tile_h:int -> int * int
(** Number of tile columns and rows. *)

val split : Image.t -> tile_w:int -> tile_h:int -> t list
(** Cuts the image into tiles in raster order; border tiles are
    smaller. Raises [Invalid_argument] on non-positive tile size. *)

val assemble :
  width:int -> height:int -> components:int -> ?bit_depth:int -> t list -> Image.t
(** Rebuilds an image from tiles produced by {!split} (any order). *)

val width : t -> int
val height : t -> int
val components : t -> int
val samples : t -> int
(** Total sample count across all components — the serialisation
    payload size of the tile. *)
