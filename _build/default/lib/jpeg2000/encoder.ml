type config = {
  tile_w : int;
  tile_h : int;
  levels : int;
  mode : Codestream.mode;
  base_step : float;
  code_block : int;
}

let default_lossless =
  {
    tile_w = 128;
    tile_h = 128;
    levels = 3;
    mode = Codestream.Lossless;
    base_step = 1.0;
    code_block = 32;
  }

let default_lossy = { default_lossless with mode = Codestream.Lossy; base_step = 2.0 }

let header_of_config config image =
  if config.tile_w <= 0 || config.tile_h <= 0 then
    invalid_arg "Encoder: tile size";
  if config.levels < 0 then invalid_arg "Encoder: levels";
  if config.base_step <= 0.0 then invalid_arg "Encoder: base_step";
  if config.code_block <= 0 then invalid_arg "Encoder: code_block";
  {
    Codestream.width = Image.width image;
    height = Image.height image;
    components = Image.components image;
    tile_w = config.tile_w;
    tile_h = config.tile_h;
    levels = config.levels;
    mode = config.mode;
    bit_depth = image.Image.bit_depth;
    base_step = config.base_step;
    code_block = config.code_block;
  }

let extract_band_int plane band =
  Array.init (band.Subband.w * band.Subband.h) (fun i ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Image.plane_get plane ~x ~y)

let extract_band_float m band =
  Array.init (band.Subband.w * band.Subband.h) (fun i ->
      let x = band.Subband.x0 + (i mod band.Subband.w) in
      let y = band.Subband.y0 + (i / band.Subband.w) in
      Dwt97.matrix_get m ~x ~y)

(* Each subband is partitioned into the header's code-block grid and
   every block is entropy-coded independently (EBCOT: contexts do not
   cross code-block boundaries). *)
let band_segment header band coeffs =
  let bw = band.Subband.w and bh = band.Subband.h in
  let blocks =
    List.map
      (fun (x0, y0, w, h) ->
        let block =
          Array.init (w * h) (fun i ->
              let x = x0 + (i mod w) and y = y0 + (i / w) in
              coeffs.((y * bw) + x))
        in
        let planes, passes =
          T1.encode_block_scalable ~orientation:band.Subband.orientation ~w ~h
            block
        in
        { Codestream.blk_planes = planes; blk_passes = passes })
      (Codestream.block_grid ~code_block:header.Codestream.code_block ~w:bw ~h:bh)
  in
  {
    Codestream.seg_level = band.Subband.level;
    seg_orientation = band.Subband.orientation;
    seg_w = bw;
    seg_h = bh;
    seg_blocks = blocks;
  }

(* Lossless component path: integer plane -> 5/3 DWT -> T1 segments. *)
let encode_component_lossless header plane =
  Dwt53.forward_plane plane ~levels:header.Codestream.levels;
  let bands =
    Subband.decompose ~width:plane.Image.width ~height:plane.Image.height
      ~levels:header.Codestream.levels
  in
  List.map
    (fun band ->
      let coeffs =
        if band.Subband.w = 0 || band.Subband.h = 0 then [||]
        else extract_band_int plane band
      in
      band_segment header band coeffs)
    bands

(* Lossy component path: float matrix -> 9/7 DWT -> quantise -> T1. *)
let encode_component_lossy header m =
  Dwt97.forward m ~levels:header.Codestream.levels;
  let bands =
    Subband.decompose ~width:m.Dwt97.mw ~height:m.Dwt97.mh
      ~levels:header.Codestream.levels
  in
  List.map
    (fun band ->
      let coeffs =
        if band.Subband.w = 0 || band.Subband.h = 0 then [||]
        else
          let step =
            Quant.step_for ~base_step:header.Codestream.base_step
              ~levels:header.Codestream.levels ~level:band.Subband.level
              band.Subband.orientation
          in
          Quant.quantise ~step (extract_band_float m band)
      in
      band_segment header band coeffs)
    bands

let encode_tile header tile =
  let bit_depth = header.Codestream.bit_depth in
  let int_planes =
    Array.map (fun p -> Array.copy p.Image.data) tile.Tile.planes
  in
  Array.iter (Colour.dc_shift_forward ~bit_depth) int_planes;
  let w = Tile.width tile and h = Tile.height tile in
  let comps =
    match header.Codestream.mode with
    | Codestream.Lossless ->
      if Array.length int_planes = 3 then
        Colour.rct_forward int_planes.(0) int_planes.(1) int_planes.(2);
      Array.map
        (fun data ->
          encode_component_lossless header { Image.width = w; height = h; data })
        int_planes
    | Codestream.Lossy ->
      let float_planes =
        Array.map (fun data -> Array.map float_of_int data) int_planes
      in
      if Array.length float_planes = 3 then
        Colour.ict_forward float_planes.(0) float_planes.(1) float_planes.(2);
      Array.map
        (fun values ->
          encode_component_lossy header { Dwt97.mw = w; mh = h; values })
        float_planes
  in
  {
    Codestream.tile_index = tile.Tile.index;
    tile_x0 = tile.Tile.x0;
    tile_y0 = tile.Tile.y0;
    tile_w = w;
    tile_h = h;
    comps;
  }

let encode config image =
  let header = header_of_config config image in
  let tiles = Tile.split image ~tile_w:config.tile_w ~tile_h:config.tile_h in
  let segments = List.map (encode_tile header) tiles in
  Codestream.emit { Codestream.header; tiles = segments }
