type mode = Lossless | Lossy

type header = {
  width : int;
  height : int;
  components : int;
  tile_w : int;
  tile_h : int;
  levels : int;
  mode : mode;
  bit_depth : int;
  base_step : float;
  code_block : int;
}

type block_segment = { blk_planes : int; blk_passes : string list }

type band_segment = {
  seg_level : int;
  seg_orientation : Subband.orientation;
  seg_w : int;
  seg_h : int;
  seg_blocks : block_segment list;
}

type tile_segment = {
  tile_index : int;
  tile_x0 : int;
  tile_y0 : int;
  tile_w : int;
  tile_h : int;
  comps : band_segment list array;
}

type t = { header : header; tiles : tile_segment list }

let magic = "OJ2K"
let version = 1

(* -- binary writer/reader ----------------------------------------- *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let u16 buf v =
  u8 buf (v lsr 8);
  u8 buf v

let u32 buf v =
  u16 buf (v lsr 16);
  u16 buf v

let f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

type reader = { data : string; mutable pos : int }

let fail msg = failwith ("Codestream.parse: " ^ msg)

let r8 r =
  if r.pos >= String.length r.data then fail "truncated";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r16 r =
  let hi = r8 r in
  (hi lsl 8) lor r8 r

let r32 r =
  let hi = r16 r in
  (hi lsl 16) lor r16 r

let rf64 r =
  let bits = ref 0L in
  for _ = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r8 r))
  done;
  Int64.float_of_bits !bits

let rbytes r n =
  if r.pos + n > String.length r.data then fail "truncated payload";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* -- emit ----------------------------------------------------------- *)

let block_grid ~code_block ~w ~h =
  if code_block <= 0 then invalid_arg "Codestream.block_grid: code_block";
  if w <= 0 || h <= 0 then []
  else begin
    let cols = (w + code_block - 1) / code_block in
    let rows = (h + code_block - 1) / code_block in
    List.concat
      (List.init rows (fun by ->
           List.init cols (fun bx ->
               let x0 = bx * code_block and y0 = by * code_block in
               ( x0,
                 y0,
                 Stdlib.min code_block (w - x0),
                 Stdlib.min code_block (h - y0) ))))
  end

let emit_band buf seg =
  u8 buf seg.seg_level;
  u8 buf (Subband.orientation_code seg.seg_orientation);
  u16 buf seg.seg_w;
  u16 buf seg.seg_h;
  u16 buf (List.length seg.seg_blocks);
  List.iter
    (fun blk ->
      u8 buf blk.blk_planes;
      u8 buf (List.length blk.blk_passes);
      List.iter
        (fun pass ->
          u32 buf (String.length pass);
          Buffer.add_string buf pass)
        blk.blk_passes)
    seg.seg_blocks

let emit_tile buf tile =
  u16 buf tile.tile_index;
  u32 buf tile.tile_x0;
  u32 buf tile.tile_y0;
  u16 buf tile.tile_w;
  u16 buf tile.tile_h;
  u8 buf (Array.length tile.comps);
  Array.iter
    (fun bands ->
      u8 buf (List.length bands);
      List.iter (emit_band buf) bands)
    tile.comps

let emit t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  u8 buf version;
  u32 buf t.header.width;
  u32 buf t.header.height;
  u8 buf t.header.components;
  u32 buf t.header.tile_w;
  u32 buf t.header.tile_h;
  u8 buf t.header.levels;
  u8 buf (match t.header.mode with Lossless -> 0 | Lossy -> 1);
  u8 buf t.header.bit_depth;
  f64 buf t.header.base_step;
  u16 buf t.header.code_block;
  u16 buf (List.length t.tiles);
  List.iter (emit_tile buf) t.tiles;
  Buffer.contents buf

(* -- parse ---------------------------------------------------------- *)

let parse_band r =
  let seg_level = r8 r in
  let seg_orientation =
    try Subband.orientation_of_code (r8 r)
    with Invalid_argument _ -> fail "bad orientation"
  in
  let seg_w = r16 r in
  let seg_h = r16 r in
  let nblocks = r16 r in
  let seg_blocks =
    List.init nblocks (fun _ ->
        let blk_planes = r8 r in
        let npasses = r8 r in
        let blk_passes =
          List.init npasses (fun _ ->
              let len = r32 r in
              rbytes r len)
        in
        { blk_planes; blk_passes })
  in
  { seg_level; seg_orientation; seg_w; seg_h; seg_blocks }

let parse_tile r =
  let tile_index = r16 r in
  let tile_x0 = r32 r in
  let tile_y0 = r32 r in
  let tile_w = r16 r in
  let tile_h = r16 r in
  let ncomps = r8 r in
  let comps =
    Array.init ncomps (fun _ ->
        let nbands = r8 r in
        List.init nbands (fun _ -> parse_band r))
  in
  { tile_index; tile_x0; tile_y0; tile_w; tile_h; comps }

let parse data =
  let r = { data; pos = 0 } in
  if String.length data < 5 || rbytes r 4 <> magic then fail "bad magic";
  if r8 r <> version then fail "unsupported version";
  let width = r32 r in
  let height = r32 r in
  let components = r8 r in
  let tile_w = r32 r in
  let tile_h = r32 r in
  let levels = r8 r in
  let mode = match r8 r with 0 -> Lossless | 1 -> Lossy | _ -> fail "bad mode" in
  let bit_depth = r8 r in
  let base_step = rf64 r in
  let code_block = r16 r in
  if width <= 0 || height <= 0 || components <= 0 || tile_w <= 0 || tile_h <= 0
  then fail "bad dimensions";
  if code_block <= 0 then fail "bad code-block size";
  let header =
    {
      width; height; components; tile_w; tile_h; levels; mode; bit_depth;
      base_step; code_block;
    }
  in
  let ntiles = r16 r in
  let tiles = List.init ntiles (fun _ -> parse_tile r) in
  if r.pos <> String.length data then fail "trailing bytes";
  { header; tiles }

let segment_bytes tile =
  Array.fold_left
    (fun acc bands ->
      List.fold_left
        (fun acc seg ->
          List.fold_left
            (fun acc blk ->
              List.fold_left
                (fun acc pass -> acc + String.length pass)
                acc blk.blk_passes)
            acc seg.seg_blocks)
        acc bands)
    0 tile.comps

let pp_mode fmt = function
  | Lossless -> Format.pp_print_string fmt "lossless"
  | Lossy -> Format.pp_print_string fmt "lossy"
