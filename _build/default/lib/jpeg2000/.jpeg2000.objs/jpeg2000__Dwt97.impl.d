lib/jpeg2000/dwt97.ml: Array Float Image List Subband
