lib/jpeg2000/codestream.ml: Array Buffer Char Format Int64 List Stdlib String Subband
