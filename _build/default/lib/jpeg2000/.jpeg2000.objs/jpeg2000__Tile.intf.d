lib/jpeg2000/tile.mli: Image
