lib/jpeg2000/tile.ml: Array Image List Stdlib
