lib/jpeg2000/t1.ml: Array Bytes List Mq Stdlib Subband
