lib/jpeg2000/rate.mli:
