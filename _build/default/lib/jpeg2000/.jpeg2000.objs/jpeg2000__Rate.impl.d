lib/jpeg2000/rate.ml: Array Codestream Hashtbl List Option Stdlib String
