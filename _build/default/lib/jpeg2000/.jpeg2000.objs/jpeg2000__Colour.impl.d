lib/jpeg2000/colour.ml: Array Stdlib
