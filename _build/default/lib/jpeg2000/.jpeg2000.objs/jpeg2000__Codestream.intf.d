lib/jpeg2000/codestream.mli: Format Subband
