lib/jpeg2000/decoder.mli: Codestream Dwt97 Image Subband Tile
