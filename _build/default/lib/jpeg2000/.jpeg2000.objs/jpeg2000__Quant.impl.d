lib/jpeg2000/quant.ml: Array Float Subband
