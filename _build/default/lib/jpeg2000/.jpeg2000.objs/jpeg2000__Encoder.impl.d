lib/jpeg2000/encoder.ml: Array Codestream Colour Dwt53 Dwt97 Image List Quant Subband T1 Tile
