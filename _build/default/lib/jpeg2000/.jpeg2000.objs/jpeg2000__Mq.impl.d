lib/jpeg2000/mq.ml: Array Bytes Char String
