lib/jpeg2000/image.ml: Array Buffer Char List Printf Stdlib String
