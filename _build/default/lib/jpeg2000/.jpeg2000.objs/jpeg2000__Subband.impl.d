lib/jpeg2000/subband.ml: Format List Printf
