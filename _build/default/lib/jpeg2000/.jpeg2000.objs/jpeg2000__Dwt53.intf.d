lib/jpeg2000/dwt53.mli: Image
