lib/jpeg2000/encoder.mli: Codestream Image Tile
