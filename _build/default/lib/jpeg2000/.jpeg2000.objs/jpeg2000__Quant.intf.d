lib/jpeg2000/quant.mli: Subband
