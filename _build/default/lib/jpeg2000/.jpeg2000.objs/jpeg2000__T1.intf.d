lib/jpeg2000/t1.mli: Subband
