lib/jpeg2000/dwt97.mli: Image
