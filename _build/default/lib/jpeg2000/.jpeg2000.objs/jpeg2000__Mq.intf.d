lib/jpeg2000/mq.mli:
