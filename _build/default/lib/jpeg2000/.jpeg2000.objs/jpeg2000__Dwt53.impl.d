lib/jpeg2000/dwt53.ml: Array Image List Subband
