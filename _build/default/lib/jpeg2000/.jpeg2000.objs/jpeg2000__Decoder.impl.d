lib/jpeg2000/decoder.ml: Array Codestream Colour Dwt53 Dwt97 Float Image List Quant Stdlib Subband T1 Tile
