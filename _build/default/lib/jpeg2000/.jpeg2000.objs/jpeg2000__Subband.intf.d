lib/jpeg2000/subband.mli: Format
