lib/jpeg2000/image.mli:
