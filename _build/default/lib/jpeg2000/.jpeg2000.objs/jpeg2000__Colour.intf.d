lib/jpeg2000/colour.mli:
