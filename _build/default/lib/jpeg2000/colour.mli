(** Colour transforms and DC level shift.

    The decoder chain of the paper ends with ICT (inverse component
    transform) and DC shift. Both directions are provided because the
    repository also contains the encoder that produces the decoder's
    input:

    - {!rct_forward}/{!rct_inverse}: the Reversible Component
      Transform used with the 5/3 wavelet (lossless path) — exact
      integer round trip;
    - {!ict_forward}/{!ict_inverse}: the Irreversible Component
      Transform (floating-point RGB↔YCbCr) used with the 9/7 wavelet;
    - {!dc_shift_forward}/{!dc_shift_inverse}: centre samples around
      zero before the wavelet and restore the unsigned range after.

    All array-of-planes functions operate in place on 3 equally sized
    planes of signed coefficients stored as [int array]. *)

val dc_shift_forward : bit_depth:int -> int array -> unit
(** Subtracts [2^(bit_depth-1)] from every sample. *)

val dc_shift_inverse : bit_depth:int -> int array -> unit
(** Adds [2^(bit_depth-1)] and clamps to [0 .. 2^bit_depth - 1]. *)

val rct_forward : int array -> int array -> int array -> unit
(** In-place RGB → (Y, Cb, Cr) reversible transform on three equally
    long arrays. *)

val rct_inverse : int array -> int array -> int array -> unit

val ict_forward : float array -> float array -> float array -> unit
(** In-place RGB → YCbCr irreversible transform. *)

val ict_inverse : float array -> float array -> float array -> unit
