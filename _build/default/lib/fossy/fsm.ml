type action =
  | Do of Hir.lvalue * Hir.expr
  | Do_if of Hir.expr * action list * action list

type next = Goto of int | Branch of Hir.expr * int * int

type state = { actions : action list; next : next }

type t = {
  fsm_name : string;
  inputs : (string * Hir.ty) list;
  outputs : (string * Hir.ty) list;
  vars : (string * Hir.ty) list;
  arrays : (string * Hir.ty * int) list;
  states : state array;
  entry : int;
}

let unroll_limit = 256

(* -- constant substitution for loop unrolling ----------------------- *)

let rec subst_expr name value = function
  | Hir.Const _ as e -> e
  | Hir.Var n -> if String.equal n name then Hir.Const value else Hir.Var n
  | Hir.Arr (n, i) -> Hir.Arr (n, subst_expr name value i)
  | Hir.Bin (op, a, b) -> Hir.Bin (op, subst_expr name value a, subst_expr name value b)
  | Hir.Un (op, e) -> Hir.Un (op, subst_expr name value e)
  | Hir.Call (f, args) -> Hir.Call (f, List.map (subst_expr name value) args)

let subst_lvalue name value = function
  | Hir.Lv_var _ as lv -> lv
  | Hir.Lv_arr (n, i) -> Hir.Lv_arr (n, subst_expr name value i)

let rec subst_stmt name value = function
  | Hir.Assign (lv, e) ->
    Hir.Assign (subst_lvalue name value lv, subst_expr name value e)
  | Hir.If (c, a, b) ->
    Hir.If
      ( subst_expr name value c,
        List.map (subst_stmt name value) a,
        List.map (subst_stmt name value) b )
  | Hir.While (c, body) ->
    Hir.While (subst_expr name value c, List.map (subst_stmt name value) body)
  | Hir.For (iv, lo, hi, body) ->
    if String.equal iv name then Hir.For (iv, lo, hi, body)
    else Hir.For (iv, lo, hi, List.map (subst_stmt name value) body)
  | Hir.Wait -> Hir.Wait
  | Hir.Call_p (p, args) -> Hir.Call_p (p, List.map (subst_expr name value) args)
  | Hir.Return e -> Hir.Return (Option.map (subst_expr name value) e)

(* -- wait-free statement lists compile to pure action lists --------- *)

let rec actions_of_stmts stmts =
  List.concat_map
    (fun stmt ->
      match stmt with
      | Hir.Assign (lv, e) -> [ Do (lv, e) ]
      | Hir.If (c, a, b) -> [ Do_if (c, actions_of_stmts a, actions_of_stmts b) ]
      | Hir.For (iv, lo, hi, body) ->
        if hi - lo + 1 > unroll_limit then failwith "Fsm: unroll limit exceeded";
        List.concat_map
          (fun k -> actions_of_stmts (List.map (subst_stmt iv k) body))
          (List.init (Stdlib.max 0 (hi - lo + 1)) (fun i -> lo + i))
      | Hir.While _ -> failwith "Fsm: wait-free while loop"
      | Hir.Wait -> failwith "Fsm: unexpected wait in action context"
      | Hir.Call_p _ -> failwith "Fsm: residual procedure call (inline first)"
      | Hir.Return _ -> failwith "Fsm: return in process body")
    stmts

(* -- builder --------------------------------------------------------- *)

type build_state = { mutable b_actions : action list (* reversed *); mutable b_next : next option }

type builder = {
  mutable states : build_state array;
  mutable used : int;
  mutable current : int;
}

let new_state b =
  if b.used = Array.length b.states then begin
    let bigger =
      Array.init (Stdlib.max 8 (2 * b.used)) (fun i ->
          if i < b.used then b.states.(i) else { b_actions = []; b_next = None })
    in
    b.states <- bigger
  end;
  b.states.(b.used) <- { b_actions = []; b_next = None };
  b.used <- b.used + 1;
  b.used - 1

let emit b a = b.states.(b.current).b_actions <- a :: b.states.(b.current).b_actions

let close b next =
  (match b.states.(b.current).b_next with
  | Some _ -> failwith "Fsm: state closed twice"
  | None -> ());
  b.states.(b.current).b_next <- Some next

let rec compile b stmts =
  List.iter
    (fun stmt ->
      match stmt with
      | Hir.Wait ->
        let next = new_state b in
        close b (Goto next);
        b.current <- next
      | Hir.Assign (lv, e) -> emit b (Do (lv, e))
      | Hir.If (c, a, e) ->
        if Hir.stmts_contain_wait a || Hir.stmts_contain_wait e then begin
          let then_entry = new_state b in
          let else_entry = new_state b in
          let join = new_state b in
          close b (Branch (c, then_entry, else_entry));
          b.current <- then_entry;
          compile b a;
          close b (Goto join);
          b.current <- else_entry;
          compile b e;
          close b (Goto join);
          b.current <- join
        end
        else emit b (Do_if (c, actions_of_stmts a, actions_of_stmts e))
      | Hir.While (c, body) ->
        if not (Hir.stmts_contain_wait body) then
          failwith "Fsm: wait-free while loop";
        let header = new_state b in
        let body_entry = new_state b in
        let after = new_state b in
        close b (Goto header);
        b.current <- header;
        close b (Branch (c, body_entry, after));
        b.current <- body_entry;
        compile b body;
        close b (Goto header);
        b.current <- after
      | Hir.For (iv, lo, hi, body) ->
        if Hir.stmts_contain_wait body then begin
          (* Clocked loop: rewritten with the counter as a register. *)
          let counter = iv in
          emit b (Do (Hir.Lv_var counter, Hir.Const lo));
          compile b
            [
              Hir.While
                ( Hir.Bin (Hir.Le, Hir.Var counter, Hir.Const hi),
                  body
                  @ [
                      Hir.Assign
                        ( Hir.Lv_var counter,
                          Hir.Bin (Hir.Add, Hir.Var counter, Hir.Const 1) );
                    ] );
            ]
        end
        else
          List.iter (emit b) (actions_of_stmts [ Hir.For (iv, lo, hi, body) ])
      | Hir.Call_p _ -> failwith "Fsm: residual procedure call (inline first)"
      | Hir.Return _ -> failwith "Fsm: return in process body")
    stmts

(* Loop-counter variables of clocked for-loops need declarations,
   sized so that the value [hi + 1] reached by the exit test still
   fits (plus the sign bit numeric comparison wants). *)
let counter_type hi =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  Hir.int_ty (Stdlib.max 2 (bits (Stdlib.max 1 (hi + 1)) 0 + 1))

let rec clocked_for_counters stmts =
  List.concat_map
    (fun stmt ->
      match stmt with
      | Hir.For (iv, _, hi, body) ->
        (if Hir.stmts_contain_wait body then [ (iv, counter_type hi) ] else [])
        @ clocked_for_counters body
      | Hir.If (_, a, b) -> clocked_for_counters a @ clocked_for_counters b
      | Hir.While (_, body) -> clocked_for_counters body
      | Hir.Assign _ | Hir.Wait | Hir.Call_p _ | Hir.Return _ -> [])
    stmts

let of_module (m : Hir.module_def) =
  if m.Hir.m_subprograms <> [] then
    failwith "Fsm: module still has subprograms (inline first)";
  let b = { states = [||]; used = 0; current = 0 } in
  let entry = new_state b in
  b.current <- entry;
  compile b m.Hir.m_body;
  close b (Goto entry);
  let states =
    Array.init b.used (fun i ->
        let bs = b.states.(i) in
        {
          actions = List.rev bs.b_actions;
          next = (match bs.b_next with Some n -> n | None -> Goto entry);
        })
  in
  let inputs =
    List.filter_map
      (fun (n, d, ty) -> if d = Hir.Pin then Some (n, ty) else None)
      m.Hir.m_ports
  in
  let outputs =
    List.filter_map
      (fun (n, d, ty) -> if d = Hir.Pout then Some (n, ty) else None)
      m.Hir.m_ports
  in
  let counters =
    List.sort_uniq
      (fun (a, _) (b, _) -> String.compare a b)
      (clocked_for_counters m.Hir.m_body)
  in
  {
    fsm_name = m.Hir.m_name;
    inputs;
    outputs;
    vars = m.Hir.m_vars @ counters;
    arrays = m.Hir.m_arrays;
    states;
    entry;
  }

let state_count (t : t) = Array.length t.states

let reachable_states (t : t) =
  let seen = Array.make (Array.length t.states) false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      match t.states.(i).next with
      | Goto j -> visit j
      | Branch (_, a, b) ->
        visit a;
        visit b
    end
  in
  visit t.entry;
  seen
