lib/fossy/platgen.ml: Buffer Format List Osss String
