lib/fossy/codegen.mli: Fsm Rtl
