lib/fossy/synthesis.ml: Codegen Fsm Hir Hir_pp Inline Rtl
