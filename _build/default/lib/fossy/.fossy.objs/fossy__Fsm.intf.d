lib/fossy/fsm.mli: Hir
