lib/fossy/sw_codegen.ml: Buffer Format List String
