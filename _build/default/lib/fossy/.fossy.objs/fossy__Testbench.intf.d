lib/fossy/testbench.mli: Fsm Hir Interp
