lib/fossy/hir.ml: Format List String
