lib/fossy/inline.ml: Hir List Option Printf String
