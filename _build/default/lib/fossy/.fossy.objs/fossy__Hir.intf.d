lib/fossy/hir.mli:
