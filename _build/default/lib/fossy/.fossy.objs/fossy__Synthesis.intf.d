lib/fossy/synthesis.mli: Fsm Hir Rtl Stdlib
