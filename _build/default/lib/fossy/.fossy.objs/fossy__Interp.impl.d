lib/fossy/interp.ml: Array Format Fsm Hashtbl Hir Inline List Option
