lib/fossy/sw_codegen.mli:
