lib/fossy/hir_pp.mli: Hir
