lib/fossy/inline.mli: Hir
