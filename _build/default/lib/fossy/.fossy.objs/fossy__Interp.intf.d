lib/fossy/interp.mli: Fsm Hir
