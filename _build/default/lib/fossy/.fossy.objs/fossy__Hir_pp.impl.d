lib/fossy/hir_pp.ml: Buffer Format Hir List Printf String
