lib/fossy/testbench.ml: Buffer Format Fsm Hir Inline Interp List Printf String
