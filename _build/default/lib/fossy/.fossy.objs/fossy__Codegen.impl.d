lib/fossy/codegen.ml: Array Fsm Hir List Option Printf Rtl Stdlib
