lib/fossy/fsm.ml: Array Hir List Option Stdlib String
