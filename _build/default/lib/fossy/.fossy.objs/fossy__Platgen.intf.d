lib/fossy/platgen.mli: Osss
