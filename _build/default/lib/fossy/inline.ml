open Hir

let max_depth = 32

type state = {
  subprograms : (string * subprogram) list;
  mutable counter : int;
  mutable new_vars : (string * ty) list; (* reversed *)
}

let fresh st base ty =
  let name = Printf.sprintf "%s_i%d" base st.counter in
  st.counter <- st.counter + 1;
  st.new_vars <- (name, ty) :: st.new_vars;
  name

(* Variable renaming inside an inlined body (parameters and locals
   only; arrays are module-global and keep their names). *)
let rec rename_expr map = function
  | Const _ as e -> e
  | Var n -> Var (Option.value (List.assoc_opt n map) ~default:n)
  | Arr (n, i) -> Arr (n, rename_expr map i)
  | Bin (op, a, b) -> Bin (op, rename_expr map a, rename_expr map b)
  | Un (op, e) -> Un (op, rename_expr map e)
  | Call (f, args) -> Call (f, List.map (rename_expr map) args)

let rename_lvalue map = function
  | Lv_var n -> Lv_var (Option.value (List.assoc_opt n map) ~default:n)
  | Lv_arr (n, i) -> Lv_arr (n, rename_expr map i)

let rec rename_stmt map = function
  | Assign (lv, e) -> Assign (rename_lvalue map lv, rename_expr map e)
  | If (c, a, b) ->
    If (rename_expr map c, List.map (rename_stmt map) a, List.map (rename_stmt map) b)
  | While (c, body) -> While (rename_expr map c, List.map (rename_stmt map) body)
  | For (iv, lo, hi, body) -> For (iv, lo, hi, List.map (rename_stmt map) body)
  | Wait -> Wait
  | Call_p (p, args) -> Call_p (p, List.map (rename_expr map) args)
  | Return e -> Return (Option.map (rename_expr map) e)

(* Substitution of read-only parameters by argument expressions. *)
let rec subst_expr map = function
  | Const _ as e -> e
  | Var n as e -> (match List.assoc_opt n map with Some arg -> arg | None -> e)
  | Arr (n, i) -> Arr (n, subst_expr map i)
  | Bin (op, a, b) -> Bin (op, subst_expr map a, subst_expr map b)
  | Un (op, e) -> Un (op, subst_expr map e)
  | Call (f, args) -> Call (f, List.map (subst_expr map) args)

let rec subst_stmt map = function
  | Assign (Lv_var n, e) -> Assign (Lv_var n, subst_expr map e)
  | Assign (Lv_arr (n, i), e) ->
    Assign (Lv_arr (n, subst_expr map i), subst_expr map e)
  | If (c, a, b) ->
    If (subst_expr map c, List.map (subst_stmt map) a, List.map (subst_stmt map) b)
  | While (c, body) -> While (subst_expr map c, List.map (subst_stmt map) body)
  | For (iv, lo, hi, body) -> For (iv, lo, hi, List.map (subst_stmt map) body)
  | Wait -> Wait
  | Call_p (p, args) -> Call_p (p, List.map (subst_expr map) args)
  | Return e -> Return (Option.map (subst_expr map) e)

let rec stmts_assign name stmts =
  List.exists
    (function
      | Assign (Lv_var n, _) -> String.equal n name
      | Assign (Lv_arr _, _) | Wait | Call_p _ | Return _ -> false
      | If (_, a, b) -> stmts_assign name a || stmts_assign name b
      | While (_, body) | For (_, _, _, body) -> stmts_assign name body)
    stmts

let rec expr_has_call = function
  | Const _ | Var _ -> false
  | Arr (_, i) -> expr_has_call i
  | Bin (_, a, b) -> expr_has_call a || expr_has_call b
  | Un (_, e) -> expr_has_call e
  | Call _ -> true

(* Rewrites an expression into (prelude statements, call-free expr). *)
let rec flatten_expr st ~depth expr =
  match expr with
  | Const _ | Var _ -> ([], expr)
  | Arr (n, i) ->
    let pre, i' = flatten_expr st ~depth i in
    (pre, Arr (n, i'))
  | Bin (op, a, b) ->
    let pa, a' = flatten_expr st ~depth a in
    let pb, b' = flatten_expr st ~depth b in
    (pa @ pb, Bin (op, a', b'))
  | Un (op, e) ->
    let pe, e' = flatten_expr st ~depth e in
    (pe, Un (op, e'))
  | Call (f, args) ->
    let pre, result = inline_call st ~depth f args in
    (pre, result)

(* Inlines one function call; returns (statements, result expression). *)
and inline_call st ~depth f args =
  if depth > max_depth then failwith ("Inline: recursion limit at " ^ f);
  let sub =
    match List.assoc_opt f st.subprograms with
    | Some s -> s
    | None -> failwith ("Inline: unknown subprogram " ^ f)
  in
  (* Simple, read-only arguments (variables, constants, array reads)
     are substituted into the body directly — no temporary register;
     complex expressions and written-to parameters get a fresh
     temporary, as the real FOSSY's inlining does. *)
  let arg_binds =
    List.map2
      (fun (param, ty) arg ->
        let simple =
          match arg with
          | Var _ | Const _ | Arr (_, (Var _ | Const _)) -> true
          | Arr _ | Bin _ | Un _ | Call _ -> false
        in
        if simple && not (stmts_assign param sub.s_body) then
          `Subst (param, arg)
        else begin
          let pre, arg' = flatten_expr st ~depth arg in
          let tmp = fresh st (f ^ "_" ^ param) ty in
          `Temp (param, tmp, pre @ [ Assign (Lv_var tmp, arg') ])
        end)
      sub.s_params args
  in
  let subst_map =
    List.filter_map
      (function `Subst (p, arg) -> Some (p, arg) | `Temp _ -> None)
      arg_binds
  in
  let param_map =
    List.filter_map
      (function `Temp (p, tmp, _) -> Some (p, tmp) | `Subst _ -> None)
      arg_binds
  in
  let local_map =
    List.map (fun (l, ty) -> (l, fresh st (f ^ "_" ^ l) ty)) sub.s_locals
  in
  let rename = param_map @ local_map in
  let ret_tmp =
    Option.map (fun ty -> fresh st (f ^ "_ret") ty) sub.s_ret
  in
  let translate_return e =
    match (ret_tmp, e) with
    | Some tmp, Some expr -> Assign (Lv_var tmp, expr)
    | None, None -> Assign (Lv_var "__void", Const 0) (* removed below *)
    | _ -> failwith ("Inline: return arity mismatch in " ^ f)
  in
  let body =
    sub.s_body
    |> List.map (rename_stmt rename)
    |> List.map (subst_stmt subst_map)
    |> List.concat_map (fun stmt ->
           match stmt with
           | Return e ->
             if ret_tmp = None && e = None then []
             else [ translate_return e ]
           | other -> [ other ])
  in
  (* The callee body may itself contain calls. *)
  let body = inline_stmts st ~depth:(depth + 1) body in
  let prelude =
    List.concat_map
      (function `Temp (_, _, stmts) -> stmts | `Subst _ -> [])
      arg_binds
    @ body
  in
  match ret_tmp with
  | Some tmp -> (prelude, Var tmp)
  | None -> (prelude, Const 0)

and inline_stmts st ~depth stmts =
  List.concat_map
    (fun stmt ->
      match stmt with
      | Assign (lv, e) ->
        let pi, lv' =
          match lv with
          | Lv_var _ -> ([], lv)
          | Lv_arr (n, i) ->
            let pi, i' = flatten_expr st ~depth i in
            (pi, Lv_arr (n, i'))
        in
        let pe, e' = flatten_expr st ~depth e in
        pi @ pe @ [ Assign (lv', e') ]
      | If (c, a, b) ->
        let pc, c' = flatten_expr st ~depth c in
        pc @ [ If (c', inline_stmts st ~depth a, inline_stmts st ~depth b) ]
      | While (c, body) ->
        if expr_has_call c then
          failwith "Inline: call in while condition is not supported";
        [ While (c, inline_stmts st ~depth body) ]
      | For (iv, lo, hi, body) -> [ For (iv, lo, hi, inline_stmts st ~depth body) ]
      | Wait -> [ Wait ]
      | Call_p (p, args) ->
        let pre, _ = inline_call st ~depth p args in
        pre
      | Return e ->
        let pre, e' =
          match e with
          | None -> ([], None)
          | Some expr ->
            let pre, expr' = flatten_expr st ~depth expr in
            (pre, Some expr')
        in
        pre @ [ Return e' ])
    stmts

let run m =
  let st =
    {
      subprograms = List.map (fun s -> (s.s_name, s)) m.m_subprograms;
      counter = 0;
      new_vars = [];
    }
  in
  let body = inline_stmts st ~depth:0 m.m_body in
  {
    m with
    m_body = body;
    m_vars = m.m_vars @ List.rev st.new_vars;
    m_subprograms = [];
  }
