type stimulus = (string * int list) list
type trace = (string * int list) list

exception Out_of_fuel
exception Runtime_error of string

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

let wrap (ty : Hir.ty) value =
  if ty.Hir.width >= 62 then value
  else begin
    let modulus = 1 lsl ty.Hir.width in
    let v = value land (modulus - 1) in
    if ty.Hir.signed && v >= modulus / 2 then v - modulus else v
  end

(* -- shared machine state ------------------------------------------- *)

type machine = {
  vars : (string, int) Hashtbl.t;
  types : (string, Hir.ty) Hashtbl.t;
  arrays : (string, int array * Hir.ty) Hashtbl.t;
  input_streams : (string, int list ref) Hashtbl.t;
  output_ports : (string, int list ref) Hashtbl.t; (* reversed traces *)
  mutable fuel : int;
  max_outputs : int;
  mutable produced : int;
}

exception Enough_outputs

let make_machine (ports : (string * Hir.port_dir * Hir.ty) list) vars arrays
    stimulus ~fuel ~max_outputs =
  let m =
    {
      vars = Hashtbl.create 32;
      types = Hashtbl.create 32;
      arrays = Hashtbl.create 8;
      input_streams = Hashtbl.create 8;
      output_ports = Hashtbl.create 8;
      fuel;
      max_outputs;
      produced = 0;
    }
  in
  List.iter
    (fun (name, dir, ty) ->
      Hashtbl.replace m.types name ty;
      match dir with
      | Hir.Pin ->
        let stream = Option.value (List.assoc_opt name stimulus) ~default:[ 0 ] in
        Hashtbl.replace m.input_streams name (ref stream)
      | Hir.Pout ->
        Hashtbl.replace m.vars name 0;
        Hashtbl.replace m.output_ports name (ref []))
    ports;
  List.iter
    (fun (name, ty) ->
      Hashtbl.replace m.types name ty;
      Hashtbl.replace m.vars name 0)
    vars;
  List.iter
    (fun (name, ty, len) -> Hashtbl.replace m.arrays name (Array.make len 0, ty))
    arrays;
  m

let burn m =
  m.fuel <- m.fuel - 1;
  if m.fuel <= 0 then raise Out_of_fuel

let read_input m name =
  match Hashtbl.find_opt m.input_streams name with
  | None -> None
  | Some stream ->
    (match !stream with
    | [] -> Some 0
    | [ last ] -> Some last (* exhausted streams repeat their last value *)
    | v :: rest ->
      stream := rest;
      Some v)

let array_ref m name idx =
  match Hashtbl.find_opt m.arrays name with
  | None -> error "unknown array %s" name
  | Some (data, ty) ->
    if idx < 0 || idx >= Array.length data then
      error "array %s index %d out of range" name idx
    else (data, ty, idx)

let store_var m name value =
  let ty =
    match Hashtbl.find_opt m.types name with
    | Some ty -> ty
    | None -> error "store to unknown variable %s" name
  in
  let wrapped = wrap ty value in
  Hashtbl.replace m.vars name wrapped;
  match Hashtbl.find_opt m.output_ports name with
  | None -> ()
  | Some log ->
    log := wrapped :: !log;
    m.produced <- m.produced + 1;
    if m.max_outputs > 0 && m.produced >= m.max_outputs then raise Enough_outputs

(* -- expression evaluation (shared by HIR and FSM) ------------------- *)

let eval_binop op a b =
  match op with
  | Hir.Add -> a + b
  | Hir.Sub -> a - b
  | Hir.Mul -> a * b
  | Hir.Shl -> a lsl (b land 63)
  | Hir.Shr -> a asr (b land 63)
  | Hir.Band -> a land b
  | Hir.Bor -> a lor b
  | Hir.Bxor -> a lxor b
  | Hir.Eq -> if a = b then 1 else 0
  | Hir.Ne -> if a <> b then 1 else 0
  | Hir.Lt -> if a < b then 1 else 0
  | Hir.Le -> if a <= b then 1 else 0
  | Hir.Gt -> if a > b then 1 else 0
  | Hir.Ge -> if a >= b then 1 else 0

(* [call] handles user subprograms (empty for FSM actions, which are
   fully inlined). [locals] is the subprogram frame stack. *)
let rec eval m ~subprograms ~locals expr =
  burn m;
  match expr with
  | Hir.Const n -> n
  | Hir.Var name -> (
    match List.find_map (fun frame -> Hashtbl.find_opt frame name) locals with
    | Some v -> v
    | None -> (
      match read_input m name with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt m.vars name with
        | Some v -> v
        | None -> error "read of unknown variable %s" name)))
  | Hir.Arr (name, idx) ->
    let i = eval m ~subprograms ~locals idx in
    let data, _, i = array_ref m name i in
    data.(i)
  | Hir.Bin (op, a, b) ->
    let va = eval m ~subprograms ~locals a in
    let vb = eval m ~subprograms ~locals b in
    eval_binop op va vb
  | Hir.Un (Hir.Neg, e) -> -eval m ~subprograms ~locals e
  | Hir.Un (Hir.Bnot, e) -> lnot (eval m ~subprograms ~locals e)
  | Hir.Call (f, args) ->
    (* Functions cannot contain waits (validated), so a wait here is
       a hard error. *)
    call_subprogram m ~subprograms ~locals
      ~on_wait:(fun () -> error "wait inside function %s" f)
      f args

and call_subprogram m ~subprograms ~locals ~on_wait f args =
  let sub =
    match List.find_opt (fun s -> s.Hir.s_name = f) subprograms with
    | Some s -> s
    | None -> error "call of unknown subprogram %s" f
  in
  let arg_values = List.map (eval m ~subprograms ~locals) args in
  let frame = Hashtbl.create 8 in
  List.iter2
    (fun (param, ty) value -> Hashtbl.replace frame param (wrap ty value))
    sub.Hir.s_params arg_values;
  List.iter (fun (l, _) -> Hashtbl.replace frame l 0) sub.Hir.s_locals;
  let local_types = Hashtbl.create 8 in
  List.iter
    (fun (n, ty) -> Hashtbl.replace local_types n ty)
    (sub.Hir.s_params @ sub.Hir.s_locals);
  let result = ref 0 in
  (try
     exec_stmts m ~subprograms ~locals:(frame :: locals) ~local_types
       ~on_wait
       ~on_return:(fun v ->
         result := Option.value v ~default:0;
         raise Exit)
       sub.Hir.s_body
   with Exit -> ());
  (match sub.Hir.s_ret with
  | Some ty -> result := wrap ty !result
  | None -> ());
  !result

and assign_lvalue m ~subprograms ~locals ~local_types lv value =
  match lv with
  | Hir.Lv_var name -> (
    match
      List.find_map
        (fun frame -> if Hashtbl.mem frame name then Some frame else None)
        locals
    with
    | Some frame ->
      let ty =
        match Hashtbl.find_opt local_types name with
        | Some ty -> ty
        | None -> { Hir.width = 62; signed = true }
      in
      Hashtbl.replace frame name (wrap ty value)
    | None -> store_var m name value)
  | Hir.Lv_arr (name, idx) ->
    let i = eval m ~subprograms ~locals idx in
    let data, ty, i = array_ref m name i in
    data.(i) <- wrap ty value

and exec_stmts m ~subprograms ~locals ~local_types ~on_wait ~on_return stmts =
  List.iter
    (fun stmt ->
      burn m;
      match stmt with
      | Hir.Assign (lv, e) ->
        let v = eval m ~subprograms ~locals e in
        assign_lvalue m ~subprograms ~locals ~local_types lv v
      | Hir.If (c, a, b) ->
        let branch = if eval m ~subprograms ~locals c <> 0 then a else b in
        exec_stmts m ~subprograms ~locals ~local_types ~on_wait ~on_return branch
      | Hir.While (c, body) ->
        while eval m ~subprograms ~locals c <> 0 do
          exec_stmts m ~subprograms ~locals ~local_types ~on_wait ~on_return body
        done
      | Hir.For (iv, lo, hi, body) ->
        let frame = Hashtbl.create 1 in
        for i = lo to hi do
          Hashtbl.replace frame iv i;
          exec_stmts m ~subprograms ~locals:(frame :: locals) ~local_types
            ~on_wait ~on_return body
        done
      | Hir.Wait -> on_wait ()
      | Hir.Call_p (p, args) ->
        ignore (call_subprogram m ~subprograms ~locals ~on_wait p args)
      | Hir.Return e ->
        on_return (Option.map (eval m ~subprograms ~locals) e))
    stmts

(* -- drivers ---------------------------------------------------------- *)

let collect_trace (md_ports : (string * Hir.port_dir * Hir.ty) list) m =
  List.filter_map
    (fun (name, dir, _) ->
      match dir with
      | Hir.Pout ->
        Some (name, List.rev !(Hashtbl.find m.output_ports name))
      | Hir.Pin -> None)
    md_ports

let run_hir ?(fuel = 10_000_000) ?(max_outputs = 0) (md : Hir.module_def)
    stimulus =
  let m =
    make_machine md.Hir.m_ports md.Hir.m_vars md.Hir.m_arrays stimulus ~fuel
      ~max_outputs
  in
  let local_types = Hashtbl.create 1 in
  (try
     exec_stmts m ~subprograms:md.Hir.m_subprograms ~locals:[] ~local_types
       ~on_wait:(fun () -> ())
       ~on_return:(fun _ -> error "return in process body")
       md.Hir.m_body
   with Enough_outputs -> ());
  collect_trace md.Hir.m_ports m

(* FSM actions contain no calls; a tiny adapter reuses the evaluator. *)
let rec exec_actions m actions =
  List.iter
    (fun action ->
      burn m;
      match action with
      | Fsm.Do (lv, e) ->
        let v = eval m ~subprograms:[] ~locals:[] e in
        assign_lvalue m ~subprograms:[] ~locals:[]
          ~local_types:(Hashtbl.create 1) lv v
      | Fsm.Do_if (c, a, b) ->
        if eval m ~subprograms:[] ~locals:[] c <> 0 then exec_actions m a
        else exec_actions m b)
    actions

let run_fsm ?(fuel = 10_000_000) ?(max_outputs = 0) (fsm : Fsm.t) stimulus =
  let ports =
    List.map (fun (n, ty) -> (n, Hir.Pin, ty)) fsm.Fsm.inputs
    @ List.map (fun (n, ty) -> (n, Hir.Pout, ty)) fsm.Fsm.outputs
  in
  let m = make_machine ports fsm.Fsm.vars fsm.Fsm.arrays stimulus ~fuel ~max_outputs in
  (try
     let current = ref fsm.Fsm.entry in
     let stop = ref false in
     while not !stop do
       burn m;
       let state = fsm.Fsm.states.(!current) in
       exec_actions m state.Fsm.actions;
       let next =
         match state.Fsm.next with
         | Fsm.Goto j -> j
         | Fsm.Branch (c, a, b) ->
           if eval m ~subprograms:[] ~locals:[] c <> 0 then a else b
       in
       (* One trip of the implicit process loop. *)
       if next = fsm.Fsm.entry then stop := true else current := next
     done
   with Enough_outputs -> ());
  collect_trace ports m

let output_port trace name = Option.value (List.assoc_opt name trace) ~default:[]

let equivalent ?fuel ?max_outputs md stimulus =
  let direct = run_hir ?fuel ?max_outputs md stimulus in
  let fsm = Fsm.of_module (Inline.run md) in
  let synthesised = run_fsm ?fuel ?max_outputs fsm stimulus in
  direct = synthesised
