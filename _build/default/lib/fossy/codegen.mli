(** VHDL code generation from the extracted FSM.

    Emits the FOSSY house style: one entity with clock/reset and the
    module's data ports, one clocked process holding every variable
    (all registered), and a single [case] over an enumerated state
    type — "all functions and procedures inlined into a single
    explicit state machine", identifiers preserved. *)

val state_label : int -> string
(** Name of state [i] in the generated enumeration ("s0", "s1", ...). *)

val run : Fsm.t -> Rtl.Vhdl.design
