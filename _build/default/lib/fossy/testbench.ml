let generate (fsm : Fsm.t) ~stimulus ~reference ?(clock_ns = 10) () =
  let buf = Buffer.create 2048 in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let name = fsm.Fsm.fsm_name in
  line "library ieee;";
  line "use ieee.std_logic_1164.all;";
  line "use ieee.numeric_std.all;";
  line "";
  line "entity %s_tb is" name;
  line "end entity;";
  line "";
  line "architecture sim of %s_tb is" name;
  line "  signal clk : std_logic := '0';";
  line "  signal reset : std_logic := '1';";
  List.iter
    (fun (n, ty) -> line "  signal %s : signed(%d downto 0) := (others => '0');" n (ty.Hir.width - 1))
    fsm.Fsm.inputs;
  List.iter
    (fun (n, ty) -> line "  signal %s : signed(%d downto 0);" n (ty.Hir.width - 1))
    fsm.Fsm.outputs;
  line "";
  let vector label values =
    if values = [] then line "  -- %s: no values" label
    else begin
      line "  type %s_t is array (0 to %d) of integer;" label (List.length values - 1);
      line "  constant %s : %s_t := (%s);" label label
        (match values with
        | [ single ] -> Printf.sprintf "0 => %d" single
        | _ -> String.concat ", " (List.map string_of_int values))
    end
  in
  List.iter
    (fun (port, values) -> vector (port ^ "_stimulus") values)
    stimulus;
  List.iter
    (fun (port, values) -> vector (port ^ "_reference") values)
    reference;
  line "begin";
  line "  clk <= not clk after %d ns;" (clock_ns / 2);
  line "  reset <= '0' after %d ns;" (2 * clock_ns);
  line "";
  line "  dut : entity work.%s" name;
  line "    port map (";
  let ports =
    [ "clk => clk"; "reset => reset" ]
    @ List.map (fun (n, _) -> Printf.sprintf "%s => %s" n n) fsm.Fsm.inputs
    @ List.map (fun (n, _) -> Printf.sprintf "%s => %s" n n) fsm.Fsm.outputs
  in
  List.iteri
    (fun i p -> line "      %s%s" p (if i = List.length ports - 1 then "" else ","))
    ports;
  line "    );";
  line "";
  List.iter
    (fun (port, values) ->
      if values <> [] then begin
        line "  -- Drives %s with the values the behavioural model consumed," port;
        line "  -- one per clock (the model may sample several per cycle through";
        line "  -- a wider physical port - adapt the pacing to your interface).";
        line "  drive_%s : process" port;
        line "    variable idx : integer := 0;";
        line "  begin";
        line "    wait until reset = '0';";
        line "    while idx <= %s_stimulus'high loop" port;
        line "      wait until rising_edge(clk);";
        line "      %s <= to_signed(%s_stimulus(idx), %s'length);" port port port;
        line "      idx := idx + 1;";
        line "    end loop;";
        line "    wait;";
        line "  end process;";
        line ""
      end)
    stimulus;
  List.iter
    (fun (port, values) ->
      if values <> [] then begin
        line "  -- Checks %s against the behavioural model's output stream." port;
        line "  check_%s : process" port;
        line "    variable idx : integer := 0;";
        line "  begin";
        line "    wait until reset = '0';";
        line "    while idx <= %s_reference'high loop" port;
        line "      wait on %s;" port;
        line "      assert to_integer(%s) = %s_reference(idx)" port port;
        line "        report \"%s mismatch at index \" & integer'image(idx)" port;
        line "        severity error;";
        line "      idx := idx + 1;";
        line "    end loop;";
        line "    report \"%s: all %d reference values observed\" severity note;"
          port (List.length values);
        line "    wait;";
        line "  end process;";
        line ""
      end)
    reference;
  line "end architecture;";
  Buffer.contents buf

let generate_for_module md ~stimulus ?(max_outputs = 0) ?clock_ns () =
  match Hir.validate md with
  | Error es -> Error es
  | Ok () ->
    let fsm = Fsm.of_module (Inline.run md) in
    let reference = Interp.run_fsm ~max_outputs fsm stimulus in
    Ok (generate fsm ~stimulus ~reference ?clock_ns ())
