(** Printing of the behavioural IR as SystemC-like source.

    Renders a {!Hir.module_def} in the SC_MODULE idiom the paper's
    IDWT models were written in. Used for human inspection and for
    the lines-of-code comparison of Section 4 (SystemC model size vs
    generated VHDL size). *)

val emit : Hir.module_def -> string

val loc : Hir.module_def -> int
(** Non-blank lines of {!emit} — the "synthesisable SystemC model"
    LoC metric. *)
