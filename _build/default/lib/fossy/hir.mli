(** FOSSY's behavioural intermediate representation.

    The synthesisable subset of an OSSS/SystemC module: one clocked
    process described with typed integer variables, arrays, functions
    and procedures, structured control flow, and explicit [Wait]
    clock boundaries. The IDWT cores of the case-study are authored
    in this IR (the "synthesisable SystemC model"); FOSSY inlines all
    subprograms, extracts an explicit FSM at the [Wait] boundaries and
    emits VHDL. *)

type ty = { width : int; signed : bool }

val int_ty : int -> ty
(** Signed integer of the given bit width. *)

val uint_ty : int -> ty

type binop =
  | Add | Sub | Mul
  | Shl | Shr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Bnot

type expr =
  | Const of int
  | Var of string
  | Arr of string * expr
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list

type lvalue = Lv_var of string | Lv_arr of string * expr

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
      (** synthesisable only if the body contains a [Wait] *)
  | For of string * int * int * stmt list
      (** constant bounds, inclusive; unrolled when the body has no
          [Wait], rewritten to a clocked while-loop otherwise *)
  | Wait  (** one clock cycle *)
  | Call_p of string * expr list  (** procedure call *)
  | Return of expr option
      (** only allowed as the last statement of a function body *)

type subprogram = {
  s_name : string;
  s_params : (string * ty) list;
  s_ret : ty option;  (** [None] for procedures *)
  s_locals : (string * ty) list;
  s_body : stmt list;
}

type port_dir = Pin | Pout

type module_def = {
  m_name : string;
  m_ports : (string * port_dir * ty) list;
  m_vars : (string * ty) list;
  m_arrays : (string * ty * int) list;  (** name, element type, length *)
  m_subprograms : subprogram list;
  m_body : stmt list;  (** main process; loops forever *)
}

(** {1 Convenience constructors} *)

val v : string -> expr
val c : int -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( >>: ) : expr -> int -> expr
val ( <<: ) : expr -> int -> expr
val ( =: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val assign : string -> expr -> stmt
val assign_arr : string -> expr -> expr -> stmt

val stmts_contain_wait : stmt list -> bool
(** Whether a statement list contains a clock boundary (recursively). *)

(** {1 Validation} *)

val validate : module_def -> (unit, string list) result
(** Structural checks: unique names, variables declared before use,
    [Return] only at function tails, no [Wait]-free [While] loops,
    array indices on declared arrays, called subprograms defined. *)
