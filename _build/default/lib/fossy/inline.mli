(** Subprogram inlining.

    FOSSY's first transformation: every function and procedure call
    in the module body is replaced by the callee's body, with
    parameters bound to fresh temporaries and locals renamed — "all
    functions and procedures have been inlined into a single explicit
    state machine". After this pass the module has no subprograms and
    no [Call]/[Call_p] nodes; the temporaries join the module's
    variable list (and will become registers, which is part of why
    generated code is bigger than the source). *)

val run : Hir.module_def -> Hir.module_def
(** Raises [Failure] on unsupported shapes: recursion deeper than a
    fixed bound, calls in a [While] condition, or a [Return] that is
    not the tail of its function. Run {!Hir.validate} first for
    better diagnostics. *)
